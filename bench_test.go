package efficientimm

// Benchmark harness: one benchmark family per table and figure of the
// paper's evaluation (see DESIGN.md for the experiment index). Custom
// metrics carry the quantities the paper reports — modeled runtime,
// speedups, cache misses, bitmap-time shares — since wall-clock on a
// small host cannot express 128-way scaling directly.
//
// The full-resolution regeneration lives in cmd/benchharness; these
// benches run the same code at bench-friendly sizes.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/counter"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/imm"
	"repro/internal/ingest"
	"repro/internal/numa"
	"repro/internal/rrr"
	"repro/internal/serve"
)

// benchProfile returns a scale-clamped clone.
func benchProfile(b *testing.B, name string, maxScale int, model graph.Model) *graph.Graph {
	b.Helper()
	p, err := gen.ProfileByName(name)
	if err != nil {
		b.Fatal(err)
	}
	if p.Scale > maxScale {
		p.Scale = maxScale
	}
	g, err := p.Generate(model, 1)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchOpts(engine imm.EngineKind, model graph.Model, workers int) imm.Options {
	o := imm.Defaults()
	o.Engine = engine
	o.Workers = workers
	o.K = 25
	o.Seed = 1
	if model == graph.LT {
		o.MaxTheta = 50000
	} else {
		o.MaxTheta = 5000
	}
	return o
}

// BenchmarkTable1RRRCoverage regenerates the Table I coverage columns
// for every dataset clone.
func BenchmarkTable1RRRCoverage(b *testing.B) {
	for _, p := range gen.Profiles() {
		p := p
		if p.Scale > 10 {
			p.Scale = 10
		}
		b.Run(p.Name, func(b *testing.B) {
			g, err := p.Generate(graph.IC, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var st CoverageStats
			for i := 0; i < b.N; i++ {
				st = MeasureCoverage(g, 200, 2, 1)
			}
			b.ReportMetric(st.AvgCoverage*100, "avgCov%")
			b.ReportMetric(st.MaxCoverage*100, "maxCov%")
		})
	}
}

// BenchmarkFig1RipplesScaling regenerates the Ripples-only strong
// scaling view (Figure 1) on the web-Google clone.
func BenchmarkFig1RipplesScaling(b *testing.B) {
	for _, model := range []graph.Model{graph.LT, graph.IC} {
		g := benchProfile(b, "web-Google", 9, model)
		base := 0.0
		for _, w := range []int{1, 4, 16, 64} {
			b.Run(fmt.Sprintf("%s/w%d", model, w), func(b *testing.B) {
				var modeled float64
				for i := 0; i < b.N; i++ {
					res, err := imm.Run(g, benchOpts(imm.Ripples, model, w))
					if err != nil {
						b.Fatal(err)
					}
					modeled = res.Breakdown.TotalModeled()
				}
				if w == 1 {
					base = modeled
				}
				b.ReportMetric(modeled, "modeled")
				if base > 0 {
					b.ReportMetric(base/modeled, "speedup")
				}
			})
		}
	}
}

// BenchmarkFig2Breakdown regenerates the Ripples runtime breakdown
// (Figure 2): phase shares of modeled time.
func BenchmarkFig2Breakdown(b *testing.B) {
	for _, model := range []graph.Model{graph.IC, graph.LT} {
		g := benchProfile(b, "web-Google", 9, model)
		for _, w := range []int{1, 16, 64} {
			b.Run(fmt.Sprintf("%s/w%d", model, w), func(b *testing.B) {
				var bd imm.Breakdown
				for i := 0; i < b.N; i++ {
					res, err := imm.Run(g, benchOpts(imm.Ripples, model, w))
					if err != nil {
						b.Fatal(err)
					}
					bd = res.Breakdown
				}
				total := bd.TotalModeled()
				b.ReportMetric(100*bd.SamplingModeled/total, "genRRR%")
				b.ReportMetric(100*bd.SelectionModeled/total, "findMIS%")
			})
		}
	}
}

// BenchmarkTable2NUMA regenerates the NUMA placement comparison
// (Table II): share of modeled core time spent on the visited bitmap.
func BenchmarkTable2NUMA(b *testing.B) {
	g := benchProfile(b, "com-YouTube", 10, graph.IC)
	topo := numa.PerlmutterLike()
	for _, placement := range []imm.NUMAPlacement{imm.PlacementOriginal, imm.PlacementAware} {
		b.Run(placement.String(), func(b *testing.B) {
			var rep imm.NUMAReport
			var err error
			for i := 0; i < b.N; i++ {
				rep, err = imm.MeasureNUMAGeneration(g, topo, placement, 150, 64, 1)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.BitmapSharePercent(), "bitmap%")
			b.ReportMetric(rep.Imbalance, "nodeImbalance")
		})
	}
}

// BenchmarkFig5AdaptiveUpdate regenerates the adaptive counter update
// comparison (Figure 5) at high worker count.
func BenchmarkFig5AdaptiveUpdate(b *testing.B) {
	g := benchProfile(b, "com-YouTube", 9, graph.IC)
	for _, strat := range []counter.UpdateStrategy{counter.Decrement, counter.AdaptiveUpdate} {
		b.Run(strat.String(), func(b *testing.B) {
			var modeled float64
			for i := 0; i < b.N; i++ {
				opt := benchOpts(imm.Efficient, graph.IC, 64)
				opt.Update = strat
				res, err := imm.Run(g, opt)
				if err != nil {
					b.Fatal(err)
				}
				modeled = res.Breakdown.SelectionModeled
			}
			b.ReportMetric(modeled, "selModeled")
		})
	}
}

// BenchmarkTable3BestRuntime regenerates the engine comparison behind
// Table III on two representative clones.
func BenchmarkTable3BestRuntime(b *testing.B) {
	for _, name := range []string{"web-Google", "com-Amazon"} {
		for _, model := range []graph.Model{graph.IC, graph.LT} {
			g := benchProfile(b, name, 9, model)
			for _, engine := range []imm.EngineKind{imm.Ripples, imm.Efficient} {
				b.Run(fmt.Sprintf("%s/%s/%s", name, model, engine), func(b *testing.B) {
					var modeled float64
					for i := 0; i < b.N; i++ {
						res, err := imm.Run(g, benchOpts(engine, model, 64))
						if err != nil {
							b.Fatal(err)
						}
						modeled = res.Breakdown.TotalModeled()
					}
					b.ReportMetric(modeled, "modeled@64w")
				})
			}
		}
	}
}

// benchScaling regenerates the normalized strong-scaling curves of
// Figures 6 (LT) and 7 (IC).
func benchScaling(b *testing.B, model graph.Model) {
	g := benchProfile(b, "web-Google", 9, model)
	rip1 := 0.0
	for _, engine := range []imm.EngineKind{imm.Ripples, imm.Efficient} {
		for _, w := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/w%d", engine, w), func(b *testing.B) {
				var modeled float64
				for i := 0; i < b.N; i++ {
					res, err := imm.Run(g, benchOpts(engine, model, w))
					if err != nil {
						b.Fatal(err)
					}
					modeled = res.Breakdown.TotalModeled()
				}
				if engine == imm.Ripples && w == 1 {
					rip1 = modeled
				}
				if rip1 > 0 {
					b.ReportMetric(rip1/modeled, "speedupVsRipples1")
				}
			})
		}
	}
}

// BenchmarkFig6ScalingLT regenerates Figure 6 (LT model).
func BenchmarkFig6ScalingLT(b *testing.B) { benchScaling(b, graph.LT) }

// BenchmarkFig7ScalingIC regenerates Figure 7 (IC model).
func BenchmarkFig7ScalingIC(b *testing.B) { benchScaling(b, graph.IC) }

// BenchmarkTable4CacheMisses regenerates the simulated L1+L2 miss
// comparison (Table IV).
func BenchmarkTable4CacheMisses(b *testing.B) {
	g := benchProfile(b, "com-YouTube", 10, graph.IC)
	for _, engine := range []imm.EngineKind{imm.Ripples, imm.Efficient} {
		b.Run(engine.String(), func(b *testing.B) {
			var misses int64
			for i := 0; i < b.N; i++ {
				rep := imm.TraceSelection(g, engine, 10, 300, 64, 1)
				misses = rep.Stats.CombinedMisses()
			}
			b.ReportMetric(float64(misses), "L1+L2misses")
		})
	}
}

// BenchmarkAblation measures each §IV design choice in isolation at 64
// workers on the web-Google clone (the design-choice index in
// DESIGN.md).
func BenchmarkAblation(b *testing.B) {
	g := benchProfile(b, "web-Google", 9, graph.IC)
	variants := []struct {
		name   string
		mutate func(*imm.Options)
	}{
		{"full", func(*imm.Options) {}},
		{"no-fusion", func(o *imm.Options) { o.Fusion = false }},
		{"no-adaptive-rep", func(o *imm.Options) { o.AdaptiveRep = false }},
		{"decrement-only", func(o *imm.Options) { o.Update = counter.Decrement }},
		{"rebuild-only", func(o *imm.Options) { o.Update = counter.Rebuild }},
		{"static-schedule", func(o *imm.Options) { o.DynamicBalance = false }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var modeled float64
			for i := 0; i < b.N; i++ {
				opt := benchOpts(imm.Efficient, graph.IC, 64)
				v.mutate(&opt)
				res, err := imm.Run(g, opt)
				if err != nil {
					b.Fatal(err)
				}
				modeled = res.Breakdown.TotalModeled()
			}
			b.ReportMetric(modeled, "modeled")
		})
	}
}

// BenchmarkDistributed tracks the simulated MPI extension from PR 1
// onward: wall-clock of a full distributed run plus the metered
// communication volume per rank count, the comm-volume/scaling
// trajectory the future real-MPI backend will be judged against.
func BenchmarkDistributed(b *testing.B) {
	g := benchProfile(b, "web-Google", 9, graph.IC)
	for _, ranks := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ranks%d", ranks), func(b *testing.B) {
			dopt := DefaultDistOptions()
			dopt.Options = benchOpts(imm.Efficient, graph.IC, 2)
			dopt.Ranks = ranks
			var res *DistResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = RunDistributed(g, dopt)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Comm.BytesSent), "commBytes")
			b.ReportMetric(float64(res.Comm.Messages), "commMsgs")
			b.ReportMetric(float64(res.Comm.SetGather.BytesSent), "gatherBytes")
		})
	}
}

// BenchmarkEndToEnd measures real wall-clock of a complete Run on this
// machine — the sanity check that the optimized engine also wins in
// practice at the physical core count. The Efficient engine runs under
// both generation kernels, so the fused/materialized wall-clock and
// allocation gap is visible in the same table as the engine gap.
func BenchmarkEndToEnd(b *testing.B) {
	g := benchProfile(b, "web-Google", 10, graph.IC)
	variants := []struct {
		name   string
		engine imm.EngineKind
		kernel imm.KernelKind
	}{
		{"ripples", imm.Ripples, imm.KernelFused}, // kernel ignored by the baseline
		{"efficientimm/fused", imm.Efficient, imm.KernelFused},
		{"efficientimm/materialized", imm.Efficient, imm.KernelMaterialized},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opt := benchOpts(v.engine, graph.IC, 2)
				opt.Kernel = v.kernel
				if _, err := imm.Run(g, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGenerationKernel isolates the generation path: filling the
// same pool slots through the materialized GenerateSlots (per-set copy +
// header) versus the fused GenerateSlotsFused (arena storage, counter
// folded into the emit). allocs/op is the headline: the fused path's
// per-set allocation rate is amortized zero, ≥10x below materialized.
// The list policy is pinned because bitmap-represented sets allocate
// identically under both kernels.
func BenchmarkGenerationKernel(b *testing.B) {
	g := benchProfile(b, "web-Google", 10, graph.IC)
	opt := benchOpts(imm.Efficient, graph.IC, 1)
	opt.AdaptiveRep = false
	policy := imm.PolicyFromOptions(opt)
	const slots = 4096
	out := make([]rrr.Set, slots)

	b.Run("materialized", func(b *testing.B) {
		b.ReportAllocs()
		cnt := counter.New(g.N)
		for i := 0; i < b.N; i++ {
			imm.GenerateSlots(g, policy, opt.Seed, 0, out)
			for _, s := range out {
				s.ForEach(func(v int32) { cnt.Inc(v) })
			}
		}
	})
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		arena := rrr.NewArena()
		cnt := counter.New(g.N)
		for i := 0; i < b.N; i++ {
			arena.Reset() // steady state: storage reused across rounds
			imm.GenerateSlotsFused(g, policy, opt.Seed, 0, out, arena, cnt)
		}
	})
}

// BenchmarkCompressedPool measures the PR-2 compressed pool: resident
// set bytes of each representation on the same workload, with the
// compression ratio against the raw []int32-slice pool as the metric
// the CI bench gate tracks.
func BenchmarkCompressedPool(b *testing.B) {
	for _, model := range []graph.Model{graph.IC, graph.LT} {
		g := benchProfile(b, "web-Google", 10, model)
		for _, pool := range []imm.PoolKind{imm.PoolSlices, imm.PoolCompressed} {
			b.Run(fmt.Sprintf("%s/%s", model, pool), func(b *testing.B) {
				var fp imm.PoolFootprint
				for i := 0; i < b.N; i++ {
					opt := benchOpts(imm.Efficient, model, 4)
					opt.Pool = pool
					res, err := imm.Run(g, opt)
					if err != nil {
						b.Fatal(err)
					}
					fp = res.Pool
				}
				b.ReportMetric(float64(fp.SetBytes), "poolBytes")
				b.ReportMetric(float64(fp.IndexBytes), "indexBytes")
				b.ReportMetric(fp.CompressionRatio(), "ratioVsSlices")
			})
		}
	}
}

// BenchmarkCELFSelect compares the two selection kernels at a high
// simulated worker count: modeled selection ops (the scaling quantity)
// and real wall-clock per full run.
func BenchmarkCELFSelect(b *testing.B) {
	for _, model := range []graph.Model{graph.IC, graph.LT} {
		g := benchProfile(b, "web-Google", 10, model)
		for _, sel := range []imm.SelectionKind{imm.SelectScan, imm.SelectCELF} {
			b.Run(fmt.Sprintf("%s/%s", model, sel), func(b *testing.B) {
				var modeled float64
				for i := 0; i < b.N; i++ {
					opt := benchOpts(imm.Efficient, model, 64)
					opt.Selection = sel
					res, err := imm.Run(g, opt)
					if err != nil {
						b.Fatal(err)
					}
					modeled = res.Breakdown.SelectionModeled
				}
				b.ReportMetric(modeled, "selModeled@64w")
			})
		}
	}
}

// BenchmarkIngest measures the parallel edge-list pipeline and the
// snapshot reload at several worker counts, reporting MB/s and edges/s
// as custom metrics (the ingest_sweep.csv quantities at bench size).
func BenchmarkIngest(b *testing.B) {
	g, err := gen.RMAT(gen.DefaultRMAT(13, 8), graph.IC, 1)
	if err != nil {
		b.Fatal(err)
	}
	var text bytes.Buffer
	if err := graph.WriteEdgeList(&text, g); err != nil {
		b.Fatal(err)
	}
	data := text.Bytes()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("edgelist/workers=%d", w), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			var st ingest.Stats
			for i := 0; i < b.N; i++ {
				_, s, err := ingest.Bytes(data, ingest.Options{Workers: w, Model: graph.IC, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				st = s
			}
			b.ReportMetric(st.MBPerSec(), "MB/s")
			b.ReportMetric(st.EdgesPerSec(), "edges/s")
		})
	}
	ingested, _, err := ingest.Bytes(data, ingest.Options{Workers: 4, Model: graph.IC, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	var snap bytes.Buffer
	if err := ingest.WriteSnapshot(&snap, ingested, 1); err != nil {
		b.Fatal(err)
	}
	b.Run("snapshot/reload", func(b *testing.B) {
		b.SetBytes(int64(snap.Len()))
		for i := 0; i < b.N; i++ {
			if _, _, err := ingest.ReadSnapshot(bytes.NewReader(snap.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServeCold measures the per-query cost when every query pays
// full RRR generation — a fresh server per iteration, the
// sample-from-scratch baseline the warm-pool service amortizes away.
func BenchmarkServeCold(b *testing.B) {
	g := benchProfile(b, "web-Google", 10, graph.IC)
	req := serve.QueryRequest{Graph: "g", K: 25, Epsilon: 0.5, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := serve.NewServer(serve.Options{Workers: 4, MaxTheta: 5000})
		if _, err := s.AddGraph("g", g, 1); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Query(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeBatch measures a concurrent mixed-k burst on one warm
// pool through the batched planner: the whole burst shares at most one
// θ-extension (here zero — the pool is pre-warmed past every member),
// so per-burst cost is pure prefix selection. sharedSets reports the
// same-batch sample reuse the planner's gather window buys.
func BenchmarkServeBatch(b *testing.B) {
	g := benchProfile(b, "web-Google", 10, graph.IC)
	ks := []int{5, 10, 15, 20, 25}
	s := serve.NewServer(serve.Options{
		Workers: 4, MaxTheta: 5000,
		QueryWorkers: len(ks), GatherWindow: 2 * time.Millisecond,
	})
	if _, err := s.AddGraph("g", g, 1); err != nil {
		b.Fatal(err)
	}
	// Pre-warm with the largest member so every burst is extension-free.
	if _, err := s.Query(serve.QueryRequest{Graph: "g", K: 25, Epsilon: 0.5, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for _, k := range ks {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				res, err := s.Query(serve.QueryRequest{Graph: "g", K: k, Epsilon: 0.5, Seed: 1})
				if err != nil {
					b.Error(err)
					return
				}
				if res.GeneratedSets != 0 {
					b.Errorf("warm burst member k=%d regenerated %d sets", k, res.GeneratedSets)
				}
			}(k)
		}
		wg.Wait()
	}
	b.StopTimer()
	st := s.Stats()
	b.ReportMetric(float64(st.BatchedQueries)/float64(b.N), "batchedQ/burst")
	b.ReportMetric(float64(st.MaxBatchSize), "maxBatch")
}

// BenchmarkServeWarm measures the steady-state served query: the pool
// is warm after the first query, so every iteration is selection-only.
// Compare against BenchmarkServeCold for the amortization win the
// serve_sweep.csv rows quantify.
func BenchmarkServeWarm(b *testing.B) {
	g := benchProfile(b, "web-Google", 10, graph.IC)
	s := serve.NewServer(serve.Options{Workers: 4, MaxTheta: 5000})
	if _, err := s.AddGraph("g", g, 1); err != nil {
		b.Fatal(err)
	}
	req := serve.QueryRequest{Graph: "g", K: 25, Epsilon: 0.5, Seed: 1}
	if _, err := s.Query(req); err != nil { // warm the pool outside the timer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var reused int64
	for i := 0; i < b.N; i++ {
		res, err := s.Query(req)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Warm || res.GeneratedSets != 0 {
			b.Fatalf("warm query regenerated: %+v", res)
		}
		reused = res.ReusedSets
	}
	b.ReportMetric(float64(reused), "reusedSets")
}
