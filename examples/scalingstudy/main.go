// Scaling study: reproduce the shape of the paper's Figures 6/7 on one
// dataset clone from the public API — both engines swept across worker
// counts, modeled runtime normalized to single-worker Ripples. The
// Ripples curve flattens (its selection kernel makes every worker scan
// every RRR set), while EfficientIMM keeps scaling.
//
//	go run ./examples/scalingstudy
package main

import (
	"fmt"
	"log"

	efficientimm "repro"
)

func main() {
	p := efficientimm.Profiles()[6] // web-Google
	p.Scale = 10
	fmt.Printf("dataset: %s clone (2^%d vertices)\n\n", p.Name, p.Scale)

	for _, modelName := range []string{"LT", "IC"} {
		model, _ := efficientimm.ParseModel(modelName)
		g, err := p.Generate(model, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s diffusion model ==\n", modelName)
		fmt.Printf("%10s %22s %22s\n", "workers", "ripples speedup", "efficientimm speedup")

		base := map[string]float64{}
		for _, w := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
			line := fmt.Sprintf("%10d", w)
			for _, engineName := range []string{"ripples", "efficientimm"} {
				engine, _ := efficientimm.ParseEngine(engineName)
				opt := efficientimm.Defaults()
				opt.Engine = engine
				opt.K = 25
				opt.Workers = w
				opt.Seed = 1
				if model == efficientimm.LT {
					opt.MaxTheta = 50000
				} else {
					opt.MaxTheta = 10000
				}
				res, err := efficientimm.Run(g, opt)
				if err != nil {
					log.Fatal(err)
				}
				modeled := res.Breakdown.TotalModeled()
				if w == 1 && engineName == "ripples" {
					base["ref"] = modeled
				}
				line += fmt.Sprintf(" %21.2fx", base["ref"]/modeled)
			}
			fmt.Println(line)
		}
		fmt.Println()
	}
	fmt.Println("speedups are modeled critical-path work normalized to ripples @ 1")
	fmt.Println("worker — the Figure 6/7 methodology (see DESIGN.md).")
}
