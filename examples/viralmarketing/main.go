// Viral marketing: the paper's motivating scenario. A brand can give
// free products to k customers of a social network and wants to maximize
// word-of-mouth reach. This example compares three seeding strategies on
// a preferential-attachment network — IMM, highest-degree, and random —
// and shows the budget/reach curve that makes the greedy approximation
// guarantee concrete.
//
//	go run ./examples/viralmarketing
package main

import (
	"fmt"
	"log"
	"runtime"
	"sort"

	efficientimm "repro"
)

func main() {
	// An R-MAT network mirrors real follower graphs: a few hubs whose
	// neighborhoods overlap heavily. Weighted-cascade transmission
	// (p = 1/indegree) keeps cascades sub-viral so seeding actually
	// matters; uniform probabilities would light up the whole giant
	// component from any single seed.
	g, err := efficientimm.GenerateRMAT(14, 8, efficientimm.IC, 2024)
	if err != nil {
		log.Fatal(err)
	}
	efficientimm.UseWeightedCascade(g)
	workers := runtime.NumCPU()
	fmt.Printf("social network: %d customers, %d follow edges\n\n", g.N, g.M)

	var lastIMM, lastDeg, lastRnd float64
	fmt.Printf("%8s %12s %12s %12s\n", "budget k", "IMM", "top-degree", "random")
	for _, k := range []int{1, 5, 10, 25, 50} {
		opt := efficientimm.Defaults()
		opt.K = k
		opt.Workers = workers
		opt.MaxTheta = 20000
		res, err := efficientimm.Run(g, opt)
		if err != nil {
			log.Fatal(err)
		}
		lastIMM = efficientimm.EstimateSpread(g, res.Seeds, 1000, workers, 5)
		lastDeg = efficientimm.EstimateSpread(g, topDegree(g, k), 1000, workers, 5)
		lastRnd = efficientimm.EstimateSpread(g, firstK(g.N, k), 1000, workers, 5)
		fmt.Printf("%8d %11.0f %12.0f %12.0f\n", k, lastIMM, lastDeg, lastRnd)
	}
	fmt.Printf("\nat the full budget IMM reaches %.2fx the top-degree heuristic\n", lastIMM/lastDeg)
	fmt.Printf("and %.2fx untargeted seeding: degree picks redundant hubs whose\n", lastIMM/lastRnd)
	fmt.Println("audiences overlap, while IMM optimizes marginal coverage directly.")
}

// topDegree returns the k vertices with the highest out-degree.
func topDegree(g *efficientimm.Graph, k int) []int32 {
	type dv struct {
		v int32
		d int64
	}
	all := make([]dv, g.N)
	for v := int32(0); v < g.N; v++ {
		all[v] = dv{v, g.OutDegree(v)}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d > all[j].d })
	seeds := make([]int32, k)
	for i := 0; i < k; i++ {
		seeds[i] = all[i].v
	}
	return seeds
}

// firstK returns an arbitrary deterministic seed set (ids spread across
// the vertex space) standing in for an untargeted campaign.
func firstK(n int32, k int) []int32 {
	seeds := make([]int32, k)
	for i := range seeds {
		seeds[i] = int32(i) * n / int32(k+1)
	}
	return seeds
}
