// Outbreak detection: the dual reading of influence maximization from
// Leskovec et al. (KDD'07), cited by the paper's introduction. Placing k
// monitors to detect contagions is influence maximization on the
// TRANSPOSE graph: a cascade from source s reaches monitor m exactly
// when m "reverse-influences" s. So we run EfficientIMM on the reversed
// contact network, and the selection-phase coverage statistic becomes an
// exact prediction of the field detection rate — which this example then
// verifies with forward outbreak simulations on the original network.
//
//	go run ./examples/outbreakdetection
package main

import (
	"fmt"
	"log"
	"runtime"

	efficientimm "repro"
)

func main() {
	// A planted-community graph mimics households/workplaces bridged by
	// occasional contacts; IC probabilities are per-contact transmission
	// rates.
	g, err := efficientimm.GenerateProfile("com-DBLP", efficientimm.IC, 7)
	if err != nil {
		log.Fatal(err)
	}
	workers := runtime.NumCPU()
	fmt.Printf("contact network: %d people, %d interactions (IC model)\n\n", g.N, g.M)

	// Monitors that detect best are the vertices most *influenced*, i.e.
	// the most influential vertices of the transpose.
	reversed, err := efficientimm.Transpose(g)
	if err != nil {
		log.Fatal(err)
	}
	opt := efficientimm.Defaults()
	opt.K = 20
	opt.Workers = workers
	opt.MaxTheta = 10000
	res, err := efficientimm.Run(reversed, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed %d monitors after sampling %d reverse cascades\n", len(res.Seeds), res.Theta)
	fmt.Printf("monitors: %v\n\n", res.Seeds)

	// Field trial: random single-source outbreaks on the ORIGINAL
	// network; a monitor detects the outbreak if the cascade reaches it.
	monitors := map[int32]bool{}
	for _, m := range res.Seeds {
		monitors[m] = true
	}
	const outbreaks = 500
	detected := 0
	for i := 0; i < outbreaks; i++ {
		src := (int32(i) * 7919) % g.N // spread sources across communities
		if cascadeHitsMonitor(g, src, monitors, uint64(i)) {
			detected++
		}
	}
	rate := float64(detected) / outbreaks
	fmt.Printf("random-source outbreaks detected: %d/%d (%.1f%%)\n", detected, outbreaks, 100*rate)
	fmt.Printf("IMM coverage prediction:          %.1f%%\n", 100*res.Coverage)
	fmt.Println("\nthe transpose-IMM coverage statistic predicts the detection rate:")
	fmt.Println("that equivalence is the reverse-influence-sampling duality.")
}

// cascadeHitsMonitor runs one forward IC cascade from src and reports
// whether any monitor was activated.
func cascadeHitsMonitor(g *efficientimm.Graph, src int32, monitors map[int32]bool, seed uint64) bool {
	if monitors[src] {
		return true
	}
	active := map[int32]bool{src: true}
	frontier := []int32{src}
	r := newRand(seed)
	for len(frontier) > 0 {
		var next []int32
		for _, u := range frontier {
			neighbors := g.OutNeighbors(u)
			base := g.OutIndex[u]
			for i, v := range neighbors {
				if active[v] {
					continue
				}
				if r.Float32() < g.OutProb[base+int64(i)] {
					active[v] = true
					next = append(next, v)
					if monitors[v] {
						return true
					}
				}
			}
		}
		frontier = next
	}
	return false
}

// splitmix is a tiny SplitMix64-based generator, local to the example so
// it does not reach into internal packages.
type splitmix struct{ s uint64 }

func newRand(seed uint64) *splitmix { return &splitmix{s: seed*0x9e3779b97f4a7c15 + 1} }

func (r *splitmix) Float32() float32 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float32(z>>40) / (1 << 24)
}
