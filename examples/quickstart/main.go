// Quickstart: generate a small social-like graph, pick the 10 most
// influential vertices with EfficientIMM, and verify the selection with
// a forward Monte-Carlo spread estimate.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"runtime"

	efficientimm "repro"
)

func main() {
	// An R-MAT graph with Graph500 skew is a good stand-in for a social
	// network: heavy-tailed degrees and one giant connected core.
	g, err := efficientimm.GenerateRMAT(12, 8, efficientimm.IC, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges (IC model)\n", g.N, g.M)

	opt := efficientimm.Defaults() // k=50, eps=0.5, all optimizations on
	opt.K = 10
	opt.Workers = runtime.NumCPU()
	opt.MaxTheta = 20000 // keep the demo snappy

	res, err := efficientimm.Run(g, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled %d RRR sets (%d stored as bitmaps, %d as lists)\n",
		res.Theta, res.SetStats.Bitmaps, res.SetStats.Lists)
	fmt.Printf("seeds: %v\n", res.Seeds)
	fmt.Printf("these %d seeds cover %.1f%% of all sampled reverse-reachable sets\n",
		len(res.Seeds), 100*res.Coverage)

	// Cross-check with the forward simulation: how many vertices does a
	// cascade from the seeds actually reach, on average?
	spread := efficientimm.EstimateSpread(g, res.Seeds, 2000, runtime.NumCPU(), 7)
	fmt.Printf("estimated spread σ(S) = %.0f vertices (%.1f%% of the graph)\n",
		spread, 100*spread/float64(g.N))

	fmt.Printf("phases: sampling %v, selection %v\n",
		res.Breakdown.SamplingWall.Round(1e6), res.Breakdown.SelectionWall.Round(1e6))
}
