// Command benchharness regenerates every table and figure from the
// paper's evaluation section, writing CSVs (plus the artifact-style JSON
// logs and speedup summaries) to the output directory and a human-
// readable digest to stdout.
//
// Usage:
//
//	benchharness -out results              # full suite at default sizes
//	benchharness -exp table4 -out results  # one experiment
//	benchharness -quick -out results       # smoke-test sizes
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/profiling"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: table1|fig1|fig2|table2|fig5|table3|fig6|fig7|table4|ablations|dist|mem|kernel|ingest|serve|tier|load|churn|ci|all")
		ingScale   = flag.Int("ingest-scale", 0, "ingest experiment: log2 vertices of the generated graph (0 = 17 for ~1M+ edges, or 13 with -quick)")
		srvScale   = flag.Int("serve-scale", 0, "serve experiment: log2 vertices of the generated graph (0 = 16, the CI dataset shape, or 12 with -quick)")
		tierScale  = flag.Int("tier-scale", 0, "tier experiment: log2 vertices of the generated graph (0 = 14, or 11 with -quick)")
		loadScale  = flag.Int("load-scale", 0, "load experiment: log2 vertices of the generated graph (0 = 13, or 10 with -quick)")
		churnScale = flag.Int("churn-scale", 0, "churn experiment: log2 vertices of the generated graph (0 = 14, or 11 with -quick)")
		out        = flag.String("out", "results", "output directory for CSVs and JSON logs")
		quick      = flag.Bool("quick", false, "small sizes for a fast smoke run")
		scale      = flag.Int("scale", 0, "clamp profile scale (0 = config default)")
		dataset    = flag.String("datasets", "", "comma-separated dataset filter")
		baseline   = flag.String("baseline", "", "BENCH_baseline.json to gate the ci experiment against (fail on >tolerance regressions)")
		tol        = flag.Float64("tolerance", 0.10, "allowed fractional drift for the ci gate")
	)
	prof := profiling.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchharness:", err)
		os.Exit(1)
	}
	defer stopProf()

	cfg := harness.DefaultConfig()
	if *quick {
		cfg = harness.QuickConfig()
		cfg.Workers = []int{1, 4, 16}
	}
	cfg.OutDir = *out
	if *scale > 0 {
		cfg.MaxScale = *scale
	}
	if *dataset != "" {
		cfg.Datasets = strings.Split(*dataset, ",")
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("== %s ==\n", name)
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "benchharness: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("   done in %.1fs\n\n", time.Since(start).Seconds())
	}

	run("table1", func() error {
		rows, err := harness.Table1(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %9s %10s %8s %8s %10s %10s\n", "dataset", "nodes", "edges", "avgCov", "maxCov", "paperAvg", "paperMax")
		for _, r := range rows {
			fmt.Printf("%-12s %9d %10d %7.1f%% %7.1f%% %9.1f%% %9.1f%%\n",
				r.Dataset, r.Nodes, r.Edges, 100*r.AvgCoverage, 100*r.MaxCoverage,
				100*r.PaperAvgCoverage, 100*r.PaperMaxCoverage)
		}
		return nil
	})

	run("fig1", func() error {
		// Figure 1 is the Ripples-only scaling view; the sweep emits both
		// engines, and the fig CSVs retain everything.
		for _, model := range []graph.Model{graph.LT, graph.IC} {
			cfgG := cfg
			cfgG.Datasets = pick(cfg.Datasets, "web-Google")
			points, err := harness.ScalingSweep(cfgG, model)
			if err != nil {
				return err
			}
			fmt.Printf("Ripples strong scaling, %v (speedup vs 1 worker):\n", model)
			for _, pt := range points {
				if pt.Engine != "ripples" {
					continue
				}
				fmt.Printf("  w=%-4d speedup=%.2f\n", pt.Workers, pt.SpeedupVs1)
			}
		}
		return nil
	})

	run("fig2", func() error {
		points, err := harness.Fig2Breakdown(cfg)
		if err != nil {
			return err
		}
		for _, pt := range points {
			fmt.Printf("%-3s w=%-4d Generate_RRRsets=%5.1f%%  Find_Most_Influential=%5.1f%%\n",
				pt.Model, pt.Workers, pt.SamplingPct, pt.SelectionPct)
		}
		return nil
	})

	run("table2", func() error {
		rows, err := harness.Table2(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %10s %10s %8s | paper: %6s %6s %5s\n", "dataset", "original", "aware", "improve", "orig", "aware", "impr")
		for _, r := range rows {
			fmt.Printf("%-12s %9.1f%% %9.1f%% %7.1f%% | %9.1f%% %5.1f%% %4.0f%%\n",
				r.Dataset, r.OriginalPct, r.AwarePct, r.ImprovementPct,
				r.PaperOriginalPct, r.PaperAwarePct, r.PaperImprovementPct)
		}
		return nil
	})

	run("fig5", func() error {
		rows, err := harness.Fig5AdaptiveUpdate(cfg, nil)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("%-12s decrement=%12.0f adaptive=%12.0f speedup=%.1fx\n",
				r.Dataset, r.DecrementOnly, r.Adaptive, r.RelativeSpeedup)
		}
		return nil
	})

	run("table3", func() error {
		rows, err := harness.Table3(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %-3s %14s %14s %8s %6s\n", "dataset", "mod", "ripplesBest", "efficientBest", "speedup", "OOM")
		for _, r := range rows {
			oom := ""
			if r.RipplesOOM {
				oom = "OOM"
			}
			fmt.Printf("%-12s %-3s %14.0f %14.0f %7.2fx %6s\n",
				r.Dataset, r.Model, r.RipplesBest, r.EfficientBest, r.Speedup, oom)
		}
		return nil
	})

	run("fig6", func() error { return sweepDigest(cfg, graph.LT) })
	run("fig7", func() error { return sweepDigest(cfg, graph.IC) })

	run("table4", func() error {
		rows, err := harness.Table4(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %14s %14s %10s | paper: %9s\n", "dataset", "ripples", "efficientimm", "reduction", "reduction")
		for _, r := range rows {
			fmt.Printf("%-12s %14d %14d %9.1fx | %12.1fx\n",
				r.Dataset, r.RipplesMisses, r.EfficientMisses, r.Reduction, r.PaperReduction)
		}
		return nil
	})

	run("ablations", func() error {
		rows, err := harness.Ablations(cfg)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("%-18s modeled=%14.0f penalty=%.2fx\n", r.Variant, r.Modeled, r.Penalty)
		}
		return nil
	})

	run("mem", func() error {
		rows, err := harness.MemorySweep(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %-3s %-15s %10s %10s %10s %7s %12s %12s %6s\n",
			"dataset", "mod", "variant", "setBytes", "idxBytes", "rawBytes", "ratio", "selCELF", "selScan", "match")
		for _, r := range rows {
			fmt.Printf("%-12s %-3s %-15s %10d %10d %10d %6.2fx %12.0f %12.0f %6v\n",
				r.Dataset, r.Model, r.Variant, r.SetBytes, r.IndexBytes, r.RawBytes,
				r.CompressionRatio, r.SelectionCELF, r.SelectionScan, r.SeedsMatch)
		}
		return nil
	})

	run("kernel", func() error {
		rows, err := harness.KernelSweep(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %-3s %4s %10s %10s %8s %12s %12s %10s %6s\n",
			"dataset", "mod", "w", "fused_ms", "mat_ms", "speedup", "genAllocF", "genAllocM", "reduction", "match")
		for _, r := range rows {
			fmt.Printf("%-12s %-3s %4d %10.1f %10.1f %7.2fx %12.4f %12.4f %9.1fx %6v\n",
				r.Dataset, r.Model, r.Workers, r.FusedWallMS, r.MatWallMS, r.WallSpeedup,
				r.GenAllocsFused, r.GenAllocsMat, r.AllocReduction, r.SeedsMatch)
		}
		return nil
	})

	run("ingest", func() error {
		scale := *ingScale
		if scale == 0 && *quick {
			scale = 13
		}
		rows, err := harness.IngestSweep(cfg, scale, nil)
		if err != nil {
			return err
		}
		fmt.Printf("%7s %9s %10s %10s %10s %12s %9s %6s\n",
			"workers", "nodes", "edges", "wall_ms", "MB/s", "edges/s", "speedup", "ident")
		for _, r := range rows {
			fmt.Printf("%7d %9d %10d %10.1f %10.1f %12.0f %8.2fx %6v\n",
				r.Workers, r.Nodes, r.Edges, r.WallMS, r.MBPerSec, r.EdgesPerSec, r.SpeedupVs1, r.Identical)
		}
		if len(rows) > 0 {
			fmt.Printf("snapshot: %d bytes, reload %.1fms, identical=%v\n",
				rows[0].SnapshotBytes, rows[0].SnapshotLoadMS, rows[0].SnapshotIdentical)
		}
		return nil
	})

	run("serve", func() error {
		scale := *srvScale
		if scale == 0 && *quick {
			scale = 12
		}
		rows, err := harness.ServeSweep(cfg, scale)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %4s %5s %10s %8s %10s %10s %12s %9s %6s\n",
			"phase", "k", "eps", "wall_ms", "theta", "reused", "generated", "reusedB", "speedup", "match")
		for _, r := range rows {
			fmt.Printf("%-14s %4d %5.2f %10.1f %8d %10d %10d %12d %8.2fx %6v\n",
				r.Phase, r.K, r.Epsilon, r.WallMS, r.Theta, r.ReusedSets, r.GeneratedSets,
				r.ReusedBytes, r.SpeedupVsCold, r.SeedsMatch)
		}
		return nil
	})

	run("tier", func() error {
		scale := *tierScale
		if scale == 0 && *quick {
			scale = 11
		}
		rows, err := harness.TierSweep(cfg, scale)
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %13s %8s %6s %10s %8s %6s %10s %6s\n",
			"phase", "budget_bytes", "tenants", "held", "wall_ms", "theta", "warm", "generated", "match")
		for _, r := range rows {
			fmt.Printf("%-20s %13d %8d %6d %10.1f %8d %6v %10d %6v\n",
				r.Phase, r.BudgetBytes, r.Tenants, r.TenantsHeld, r.WallMS,
				r.Theta, r.Warm, r.GeneratedSets, r.SeedsMatch)
		}
		return nil
	})

	run("load", func() error {
		scale := *loadScale
		if scale == 0 && *quick {
			scale = 10
		}
		rows, err := harness.LoadSweep(cfg, scale)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %7s %5s %10s %8s %8s %9s %8s %8s %11s %10s %6s\n",
			"config", "queries", "pools", "wall_ms", "qps", "batches", "maxBatch", "shExt", "shSets", "generated", "coalesced", "match")
		for _, r := range rows {
			fmt.Printf("%-8s %7d %5d %10.1f %8.1f %8d %9d %8d %8d %11d %10d %6v\n",
				r.Config, r.Queries, r.Pools, r.WallMS, r.QPS, r.Batches, r.MaxBatchSize,
				r.SharedExtensions, r.SharedSets, r.GeneratedSets, r.Coalesced, r.SeedsMatch)
		}
		return nil
	})

	run("churn", func() error {
		scale := *churnScale
		if scale == 0 && *quick {
			scale = 11
		}
		rows, err := harness.ChurnSweep(cfg, scale)
		if err != nil {
			return err
		}
		fmt.Printf("%-11s %7s %7s %7s %10s %10s %10s %8s %7s %6s\n",
			"update_rate", "adds", "removes", "dirty", "resampled", "repair_ms", "cold_ms", "speedup", "wins", "match")
		for _, r := range rows {
			fmt.Printf("%-11g %7d %7d %7d %10d %10.1f %10.1f %7.2fx %7v %6v\n",
				r.UpdateRate, r.AddEdges, r.RemEdges, r.DirtyVertices, r.SetsResampled,
				r.RepairMS+r.RepairQueryMS, r.ColdMS, r.Speedup, r.RepairWins, r.SeedsMatch)
		}
		return nil
	})

	run("ci", func() error {
		digest, err := harness.CIBench()
		if err != nil {
			return err
		}
		path := filepath.Join(cfg.OutDir, "BENCH_ci.json")
		if err := harness.WriteCIDigest(path, digest); err != nil {
			return err
		}
		for _, m := range digest.Metrics {
			fmt.Printf("%-45s theta=%-6d sampling=%12.0f selection=%12.0f poolB=%8d idxB=%8d ratio=%5.2f\n",
				m.Key, m.Theta, m.SamplingModeled, m.SelectionModeled, m.PoolSetBytes, m.PoolIndexBytes, m.CompressionRatio)
		}
		if in := digest.Ingest; in != nil {
			fmt.Printf("%-45s theta=%-6d nodes=%d edges=%d snapshotB=%d (%.1f MB/s, not gated)\n",
				"ingest (text->pipeline->snapshot->run)", in.Theta, in.Nodes, in.Edges, in.SnapshotBytes, in.MBPerSec)
		}
		if kn := digest.Kernel; kn != nil {
			fmt.Printf("%-45s theta=%-6d match=%v sampling=%12.0f allocs/set=%.3f reduction=%.0fx speedup=%.2fx\n",
				"kernel (fused vs materialized)", kn.Theta, kn.SeedsMatch, kn.FusedSamplingModeled,
				kn.GenAllocsFused, kn.AllocReduction, kn.WallSpeedup)
		}
		fmt.Printf("digest written to %s\n", path)
		if *baseline == "" {
			return nil
		}
		base, err := harness.LoadCIDigest(*baseline)
		if err != nil {
			return fmt.Errorf("load baseline: %w", err)
		}
		if regressions := harness.CompareCI(base, digest, *tol); len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", r)
			}
			return fmt.Errorf("%d regression(s) vs %s at %.0f%% tolerance", len(regressions), *baseline, 100**tol)
		}
		fmt.Printf("no regressions vs %s at %.0f%% tolerance\n", *baseline, 100**tol)
		return nil
	})

	run("dist", func() error {
		points, err := harness.DistSweep(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %6s %12s %8s %12s %12s %6s\n", "dataset", "ranks", "bytesSent", "msgs", "gatherB", "counterB", "match")
		for _, pt := range points {
			fmt.Printf("%-12s %6d %12d %8d %12d %12d %6v\n",
				pt.Dataset, pt.Ranks, pt.BytesSent, pt.Messages, pt.SetGatherB, pt.CounterRedB, pt.SeedsMatch)
		}
		return nil
	})

	if *exp == "all" {
		if _, err := harness.ExtractResults(cfg.OutDir); err != nil {
			fmt.Fprintf(os.Stderr, "benchharness: extract: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("speedup summaries written under %s/results\n", cfg.OutDir)
	}
}

// sweepDigest prints the normalized scaling table for one model.
func sweepDigest(cfg harness.Config, model graph.Model) error {
	points, err := harness.ScalingSweep(cfg, model)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-13s %5s %10s %10s\n", "dataset", "engine", "w", "vsRip@1", "vsRip@8")
	for _, pt := range points {
		fmt.Printf("%-12s %-13s %5d %9.2fx %9.2fx\n", pt.Dataset, pt.Engine, pt.Workers, pt.SpeedupVs1, pt.SpeedupVs8)
	}
	return nil
}

// pick returns base if it already filters, else just the named dataset.
func pick(base []string, name string) []string {
	if base != nil {
		return base
	}
	return []string{name}
}
