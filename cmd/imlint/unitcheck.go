package main

// The go vet driver protocol: for each package in the build, the go
// command materializes a JSON "vet config" naming the sources, the
// import map, and the export-data file of every dependency, then
// invokes the vet tool with that file as its sole argument. The tool
// type-checks from those ingredients (no go list, no network), runs
// its analyzers, prints findings to stderr, writes its (here: empty)
// facts file, and exits 2 when it found anything.
//
// This is the same contract golang.org/x/tools/go/analysis/unitchecker
// implements; rebuilding it here keeps the module stdlib-only.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"repro/internal/analysis/checker"
	"repro/internal/analysis/load"
	"repro/internal/analysis/suite"
)

// vetConfig mirrors the fields of cmd/go's vet config that imlint
// consumes. Unknown fields are ignored by encoding/json.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imlint: reading vet config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "imlint: parsing vet config %s: %v\n", cfgPath, err)
		return 1
	}
	// The driver requires a facts file regardless of outcome; imlint
	// uses no cross-package facts, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "imlint: writing facts: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "imlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "imlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &load.Package{
		PkgPath:   cfg.ImportPath,
		Name:      tpkg.Name(),
		Dir:       cfg.Dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	findings, err := checker.Run([]*load.Package{pkg}, suite.Analyzers(), suite.DefaultScope())
	if err != nil {
		fmt.Fprintf(os.Stderr, "imlint: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [%s]\n", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
