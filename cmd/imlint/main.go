// Command imlint runs the repo's invariant analyzers (internal/analysis)
// over Go packages. It speaks two protocols:
//
// Standalone (what CI and `scripts/lint.sh` use):
//
//	imlint ./...
//	imlint ./internal/serve ./internal/route
//
// loads, type-checks, and lints the matched packages in one process
// and exits nonzero if any diagnostic survives suppression.
//
// Vet tool (the go vet driver protocol):
//
//	go build -o /usr/local/bin/imlint ./cmd/imlint
//	go vet -vettool=$(which imlint) ./...
//
// where the go command invokes imlint once per package with a
// vet.cfg describing sources and export data. Both modes run the same
// suite with the same package scoping, so the two invocations agree
// diagnostic-for-diagnostic.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis/checker"
	"repro/internal/analysis/load"
	"repro/internal/analysis/suite"
)

func main() {
	// The go vet driver probes its -vettool with -V=full (version for
	// cache keys) and -flags (supported flag inventory) before any
	// real work; both must answer on stdout and exit 0.
	progName := "imlint"
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			// The go command parses this line as
			//   <argv0> version devel ... buildID=<id>
			// and uses <id> as the vet cache key, so it must change
			// whenever the tool's behavior does: hash our own binary.
			id := "unknown"
			if exe, err := os.Executable(); err == nil {
				if data, err := os.ReadFile(exe); err == nil {
					sum := sha256.Sum256(data)
					id = fmt.Sprintf("%x", sum[:16])
				}
			}
			fmt.Printf("%s version devel imlint buildID=%s\n", os.Args[0], id)
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}

	listFlag := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-list] [package patterns]\n   or: go vet -vettool=$(which %s) ./...\n", progName, progName)
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, a := range suite.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	pkgs, err := load.Packages(".", args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	findings, err := checker.Run(pkgs, suite.Analyzers(), suite.DefaultScope())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "imlint: %d finding(s)\n", len(findings))
		os.Exit(2)
	}
}
