// Command immrouter is the sharding front-end for a fleet of immserver
// nodes: it owns no graphs and no pools, only a consistent-hash ring
// mapping each (graph, rngSeed) warm-pool key onto one node, so every
// query for a pool always lands where that pool is warm and the
// fleet's aggregate pool capacity scales with node count.
//
// Usage:
//
//	immrouter -listen :8370 -node http://10.0.0.1:8377 -node http://10.0.0.2:8377
//	immrouter -node http://127.0.0.1:7601,http://127.0.0.1:7602,http://127.0.0.1:7603
//
// The router serves the same /v1 (and legacy) HTTP surface as the
// nodes. /query and /batch shard by pool key (batch members fan out to
// their owners and reassemble in order), /jobs route by pool key with
// node-prefixed job ids ("n2-job-7"), /graphs unions the fleet's
// registries, /stats reports per-node counters, /healthz probes the
// fleet. Identical concurrent queries are deduplicated single-flight
// before any backend connection is opened.
//
// Every answer is byte-identical to asking any single node directly —
// sharding is a placement decision, never a semantic one. A node that
// cannot be reached yields the unified error envelope with code
// "node_unavailable" (HTTP 503, Retry-After set) for the keys it owns;
// keys owned by healthy nodes keep serving.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	efficientimm "repro"
)

func main() {
	var nodes []string
	var (
		listen  = flag.String("listen", ":8370", "address to serve HTTP on")
		vnodes  = flag.Int("vnodes", 0, "virtual nodes per backend on the hash ring (0 = default 128)")
		timeout = flag.Duration("timeout", 0, "per-forwarded-request timeout (0 = default 10m; cold pool builds can be slow)")
	)
	flag.Func("node", "backend immserver base URL, e.g. http://127.0.0.1:8377 (repeatable; commas split)", func(v string) error {
		for _, n := range strings.Split(v, ",") {
			if n = strings.TrimSpace(n); n != "" {
				nodes = append(nodes, n)
			}
		}
		return nil
	})
	flag.Parse()

	if len(nodes) == 0 {
		fatal(fmt.Errorf("at least one -node URL is required"))
	}
	rt, err := efficientimm.NewRouter(efficientimm.RouterOptions{
		Nodes:        nodes,
		VirtualNodes: *vnodes,
		Timeout:      *timeout,
	})
	fatalIf(err)

	httpSrv := &http.Server{Addr: *listen, Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "immrouter: routing %d nodes on %s\n", len(nodes), *listen)
	for i, n := range nodes {
		fmt.Fprintf(os.Stderr, "immrouter: node %d: %s\n", i, n)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-sig:
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		fmt.Fprintln(os.Stderr, "immrouter: shut down")
	}
}

func fatalIf(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "immrouter:", err)
	os.Exit(1)
}
