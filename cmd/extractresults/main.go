// Command extractresults mirrors the artifact's extract_results.py: it
// scans the strong-scaling-logs-* directories produced by benchharness
// (or the efficientimm CLI) and writes speedup_ic.csv / speedup_lt.csv
// summaries comparing EfficientIMM against Ripples.
//
// Usage:
//
//	extractresults -dir results
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	dir := flag.String("dir", "results", "directory containing strong-scaling-logs-*")
	flag.Parse()

	rows, err := harness.ExtractResults(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "extractresults:", err)
		os.Exit(1)
	}
	for _, model := range []string{"ic", "lt"} {
		rs := rows[model]
		if len(rs) == 0 {
			continue
		}
		fmt.Printf("== %s ==\n", model)
		fmt.Printf("%-12s %8s %14s %14s %8s %8s\n", "Dataset", "Speedup", "EfficientIMM", "Ripples", "RipBest", "EffBest")
		for _, r := range rs {
			fmt.Printf("%-12s %7.2fx %14.3f %14.3f %8d %8d\n",
				r.Dataset, r.Speedup, r.EfficientTimeS, r.RipplesTimeS,
				r.RipplesBestThreads, r.EfficientBestThreads)
		}
	}
	fmt.Printf("CSV summaries written under %s/results\n", *dir)
}
