package main

import (
	"strings"
	"testing"
)

func TestValidateClusterFlags(t *testing.T) {
	setOf := func(names ...string) map[string]bool {
		m := make(map[string]bool)
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	peers3 := []string{"root:0", "h1:9401", "h2:9402"}
	cases := []struct {
		name    string
		v       clusterFlags
		wantErr string // substring; empty = valid
	}{
		{
			// Booting empty is valid since the graph-lifecycle API:
			// graphs register at runtime via POST /v1/graphs.
			name: "no loads single node",
			v:    clusterFlags{set: setOf()},
		},
		{
			name: "root single node",
			v:    clusterFlags{loads: 1, set: setOf("load")},
		},
		{
			name:    "rank without peers",
			v:       clusterFlags{rank: 1, set: setOf("rank")},
			wantErr: "-rank requires -peers",
		},
		{
			name:    "rank out of range",
			v:       clusterFlags{rank: 3, peers: peers3, set: setOf("rank", "peers")},
			wantErr: "out of range",
		},
		{
			name:    "negative rank",
			v:       clusterFlags{rank: -1, peers: peers3, set: setOf("rank", "peers")},
			wantErr: "out of range",
		},
		{
			name:    "duplicate peers",
			v:       clusterFlags{rank: 1, peers: []string{"root:0", "h1:9401", "h1:9401"}, set: setOf("rank", "peers")},
			wantErr: "share address",
		},
		{
			name: "worker clean",
			v:    clusterFlags{rank: 2, peers: peers3, set: setOf("rank", "peers")},
		},
		{
			name:    "worker with load",
			v:       clusterFlags{rank: 1, peers: peers3, loads: 1, set: setOf("rank", "peers", "load")},
			wantErr: "by broadcast from rank 0",
		},
		{
			name:    "worker with listen",
			v:       clusterFlags{rank: 1, peers: peers3, set: setOf("rank", "peers", "listen")},
			wantErr: "-listen only applies to the root",
		},
		{
			name:    "worker with query-workers",
			v:       clusterFlags{rank: 1, peers: peers3, set: setOf("rank", "peers", "query-workers")},
			wantErr: "-query-workers only applies to the root",
		},
		{
			name: "root cluster mode",
			v:    clusterFlags{rank: 0, peers: peers3, loads: 1, set: setOf("rank", "peers", "load", "listen")},
		},
		{
			name: "root cluster mode without loads",
			v:    clusterFlags{rank: 0, peers: peers3, set: setOf("peers")},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateClusterFlags(c.v)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %v does not contain %q", err, c.wantErr)
			}
		})
	}
}

func TestParsePeers(t *testing.T) {
	got := parsePeers(" root:0,h1:9401, ,h2:9402 ")
	want := []string{"root:0", "h1:9401", "h2:9402"}
	if len(got) != len(want) {
		t.Fatalf("parsePeers = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("parsePeers = %v, want %v", got, want)
		}
	}
	if parsePeers("") != nil {
		t.Fatal("parsePeers(\"\") should be nil")
	}
}
