package main

import (
	"fmt"
	"strings"

	efficientimm "repro"
)

// clusterFlags captures the -rank/-peers placement flags plus which
// other flags the user set explicitly (flag.Visit): a worker rank runs
// no HTTP front-end and loads no graphs, so explicitly-set serving
// flags on a worker are contradictions to reject, not noise to
// silently ignore.
type clusterFlags struct {
	rank  int
	peers []string
	loads int // number of -load specs given

	// explicitly set flags, by name
	set map[string]bool
}

// servingFlags configure the HTTP warm-pool service and are meaningless
// on a worker rank, which serves generation rounds over the wire and
// receives its graphs by broadcast from the root.
var servingFlags = []string{
	"listen", "model", "workers", "pool", "selection", "max-theta",
	"pool-budget-mb", "ingest-seed", "query-workers", "queue-depth",
	"gather-window", "drain-timeout",
}

// validateClusterFlags rejects inconsistent -rank/-peers combinations
// with actionable errors. Root mode (rank 0, with or without peers)
// may boot with zero -load specs — since the graph-lifecycle API,
// graphs register at runtime via POST /v1/graphs; worker mode requires
// -peers and forbids every serving flag.
func validateClusterFlags(v clusterFlags) error {
	if v.set["rank"] && len(v.peers) == 0 {
		return fmt.Errorf("-rank requires -peers: the peer list tells rank %d where to listen", v.rank)
	}
	if len(v.peers) > 0 {
		cfg := efficientimm.ClusterConfig{Rank: v.rank, Peers: v.peers}
		if err := cfg.Validate(); err != nil {
			return err
		}
	}
	if v.rank > 0 {
		if v.loads > 0 {
			return fmt.Errorf("-load only applies to the root: rank %d receives its graphs by broadcast from rank 0", v.rank)
		}
		for _, f := range servingFlags {
			if v.set[f] {
				return fmt.Errorf("-%s only applies to the root: rank %d serves generation rounds over the wire, not HTTP queries", f, v.rank)
			}
		}
		return nil
	}
	return nil
}

// parsePeers splits a comma-separated -peers value into trimmed,
// non-empty wire addresses; ClusterConfig.Validate catches duplicates
// and empties.
func parsePeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
