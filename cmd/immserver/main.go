// Command immserver is the warm-pool influence-maximization query
// service: it loads one or more graphs (binary .imsnap snapshots or
// edge lists) into an in-memory registry and serves seed-set queries
// over HTTP/JSON, reusing per-graph RRR pools across queries so repeat
// and refined queries skip the sample-from-scratch cost. Concurrent
// queries on the same pool are gathered into batches that share a
// single θ-extension, and a bounded admission queue sheds overload
// with 429 + Retry-After instead of collapsing.
//
// Usage:
//
//	immserver -listen :8377 -load social=web-Google.imsnap -load rmat=rmat16.imsnap
//	immserver -listen :8377                       # boot empty; register via POST /v1/graphs
//	immserver -load graph.imsnap                  # name from the file stem
//	immserver -load edges=graph.txt -model IC     # edge-list ingestion at startup
//	immserver -load g.imsnap -query-workers 8 -queue-depth 512 -gather-window 5ms
//
// Cluster usage — worker ranks serve generation rounds over the framed
// TCP wire protocol (no HTTP, no -load; graphs arrive by broadcast),
// the rank-0 root serves HTTP and sources warm-pool slot chunks from
// the workers, falling back to local generation per chunk when a worker
// is unreachable:
//
//	immserver -rank 1 -peers root:0,h1:9401,h2:9402      # worker, listens on h1:9401
//	immserver -rank 2 -peers root:0,h1:9401,h2:9402      # worker, listens on h2:9402
//	immserver -load g.imsnap -peers root:0,h1:9401,h2:9402   # root (rank 0)
//
// With -pool-dir the warm-pool LRU becomes two-tier: pools squeezed
// out by the byte budget are demoted to .impool snapshots instead of
// destroyed and promoted back via mmap on their next query, POST
// /v1/pools/save freezes every resident pool to disk, and a restart
// rehydrates the directory so the first post-restart query answers
// warm (zero generated sets, byte-identical seeds) — even after
// kill -9:
//
//	immserver -load g.imsnap -pool-budget-mb 1024 -pool-dir /var/lib/immserver/pools
//
// Endpoints (the versioned /v1 prefix is canonical; the unprefixed
// aliases of the original query surface still answer but are
// deprecated — they carry Deprecation + Successor-Version headers and
// count in /v1/stats legacy_requests; see README "Legacy paths" for
// the removal timeline):
//
//	GET    /v1/healthz                             liveness + graph count
//	GET    /v1/graphs                              registered graphs ({"graphs":[...]})
//	GET    /v1/stats                               query/reuse/batch/eviction/tier/delta counters
//	GET    /v1/query?graph=G&k=K&eps=E&seed=S      one seed-set query
//	POST   /v1/query  {"graph":G,"k":K,"epsilon":E,"seed":S}
//	POST   /v1/batch  {"queries":[...]}            many queries, one round-trip
//	POST   /v1/jobs   {"graph":G,"k":K,...}        async query → job id (202)
//	GET    /v1/jobs/{id}                           job state + result when done
//	POST   /v1/pools/save {"dir":D?}               freeze resident pools to .impool snapshots
//
// Graph lifecycle (/v1 only) — graphs can be registered, updated with
// streaming edge deltas, and dropped without a restart. Each delta
// produces a new graph epoch (visible in graph infos) and repairs the
// resident warm pools in place: only RRR sets touching changed
// vertices are resampled, and the repaired pools stay byte-identical
// to pools built cold on the post-delta graph:
//
//	POST   /v1/graphs  {"name":N,"snapshot":path}  register from .imsnap (201)
//	POST   /v1/graphs  {"name":N,"model":M,"edges":[[u,v],...]}   inline register
//	GET    /v1/graphs/{name}                       one graph's info + epoch
//	DELETE /v1/graphs/{name}                       unregister + evict its pools
//	POST   /v1/graphs/{name}/edges {"add":[[u,v],...],"remove":[...],"seed":S}
//	POST   /v1/graphs/{name}/edges {"file":path.imdelta}   batch delta from disk
//
// Every error response carries the unified JSON envelope
// {"error":{"code":"...","message":"..."}}: 404 (unknown_graph,
// unknown_job, not_found), 400 (invalid_query, invalid_delta), 405
// (method_not_allowed), 409 (graph_exists), 429 with Retry-After
// (overloaded), 503 (shutting_down); 500 (internal) is reserved for
// genuine engine failures.
//
// Served answers are byte-identical to `efficientimm -graph G.imsnap -k
// K -eps E -seed S` with the same engine settings; the CI smoke job
// pins exactly that, including a concurrent mixed-k burst sharing one
// θ-extension.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	efficientimm "repro"
)

func main() {
	var loads []string
	var (
		listen       = flag.String("listen", ":8377", "address to serve HTTP on")
		modelName    = flag.String("model", "IC", "diffusion model for edge-list loads (snapshots carry their own)")
		workers      = flag.Int("workers", runtime.NumCPU(), "parallel workers per query")
		poolName     = flag.String("pool", "slices", "RRR pool representation: slices or compressed")
		selName      = flag.String("selection", "celf", "selection kernel: celf or scan")
		maxTheta     = flag.Int64("max-theta", 0, "cap on RRR sets per query (0 = per-theory)")
		budgetMB     = flag.Int64("pool-budget-mb", 1024, "resident warm-pool byte budget across graphs, in MiB")
		poolDir      = flag.String("pool-dir", "", "directory for .impool pool snapshots: enables disk demotion under budget pressure, POST /v1/pools/save, and instant-warm rehydration at boot")
		seed         = flag.Uint64("ingest-seed", 1, "weight-assignment seed for edge-list loads")
		queryWorkers = flag.Int("query-workers", 0, "max concurrently executing queries (0 = 4x GOMAXPROCS)")
		queueDepth   = flag.Int("queue-depth", 0, "max queries waiting for a worker before 429 (0 = default 256, negative = reject immediately)")
		gatherWindow = flag.Duration("gather-window", 0, "how long a query waits to batch with concurrent queries on its pool (0 = default 2ms, negative = off)")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight and queued work")
		rank         = flag.Int("rank", 0, "cluster rank: 0 serves HTTP as the root, >0 runs a wire-protocol generation worker (requires -peers)")
		peers        = flag.String("peers", "", "comma-separated wire addresses of the cluster; entry 0 names the root, entry i is rank i's worker listen address")
	)
	flag.Func("load", "graph to register, as name=path or a bare path (repeatable); .imsnap loads the snapshot, anything else ingests an edge list", func(v string) error {
		loads = append(loads, v)
		return nil
	})
	flag.Parse()

	setFlags := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	peerList := parsePeers(*peers)
	fatalIf(validateClusterFlags(clusterFlags{
		rank:  *rank,
		peers: peerList,
		loads: len(loads),
		set:   setFlags,
	}))

	if *rank > 0 {
		runWorker(*rank, peerList)
		return
	}

	model, err := efficientimm.ParseModel(*modelName)
	fatalIf(err)
	pool, err := efficientimm.ParsePool(*poolName)
	fatalIf(err)
	selection, err := efficientimm.ParseSelection(*selName)
	fatalIf(err)

	opt := efficientimm.ServeOptions{
		Workers:         *workers,
		Pool:            pool,
		Selection:       selection,
		MaxTheta:        *maxTheta,
		PoolBudgetBytes: *budgetMB << 20,
		PoolDir:         *poolDir,
		QueryWorkers:    *queryWorkers,
		QueueDepth:      *queueDepth,
		GatherWindow:    *gatherWindow,
	}
	if len(peerList) > 0 {
		cl, cerr := efficientimm.ConnectCluster(
			efficientimm.ClusterConfig{Rank: 0, Peers: peerList},
			efficientimm.DefaultClusterOptions())
		fatalIf(cerr)
		defer cl.Close()
		opt = efficientimm.ClusterServeOptions(opt, cl)
		fmt.Fprintf(os.Stderr, "immserver: root of a %d-rank cluster (%d wire workers)\n",
			len(peerList), len(peerList)-1)
	}
	srv := efficientimm.NewServer(opt)
	for _, spec := range loads {
		name, path, found := strings.Cut(spec, "=")
		if !found {
			path = spec
			name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		}
		info, err := loadGraph(srv, name, path, model, *seed)
		fatalIf(err)
		fmt.Fprintf(os.Stderr, "immserver: registered %q: %d nodes, %d edges, model %s\n",
			info.Name, info.Nodes, info.Edges, info.Model)
	}
	if *poolDir != "" {
		// Rehydrate saved pools for the graphs registered above: entries
		// appear disk-only and promote via mmap on first touch, so the
		// first post-restart query answers warm with zero generated sets.
		n, err := srv.LoadPools()
		fatalIf(err)
		if n > 0 {
			fmt.Fprintf(os.Stderr, "immserver: rehydrated %d pool snapshot(s) from %s\n", n, *poolDir)
		}
	}

	httpSrv := &http.Server{Addr: *listen, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "immserver: serving on %s\n", *listen)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-sig:
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Two-stage drain: stop the listener (in-flight HTTP requests —
		// and the planner batches answering them — finish), then drain
		// the planner itself so queued admission waiters are rejected
		// cleanly and async jobs run to completion; finished /jobs
		// results stay readable until the listener closes.
		_ = httpSrv.Shutdown(ctx)
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "immserver: drain incomplete: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "immserver: drained and shut down")
	}
}

// runWorker is the non-root rank's main loop: listen on this rank's
// peer address and serve generation rounds until a signal arrives. The
// worker holds no pools and answers no HTTP — its entire state is the
// graph cache the root broadcasts.
func runWorker(rank int, peers []string) {
	rs, err := efficientimm.ListenRank(peers[rank], efficientimm.DefaultClusterOptions())
	fatalIf(err)
	fmt.Fprintf(os.Stderr, "immserver: rank %d worker listening on %s\n", rank, rs.Addr())

	errc := make(chan error, 1)
	go func() { errc <- rs.Serve() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatalIf(err)
	case <-sig:
		_ = rs.Close()
		sent, recv, msgs := rs.MeterTotals()
		fmt.Fprintf(os.Stderr, "immserver: rank %d worker shut down (%d B sent, %d B received, %d frames)\n",
			rank, sent, recv, msgs)
	}
}

// loadGraph registers one -load spec: snapshots through the binary
// codec, everything else through the parallel edge-list pipeline.
func loadGraph(srv *efficientimm.Server, name, path string, model efficientimm.Model, seed uint64) (efficientimm.GraphInfo, error) {
	if strings.HasSuffix(path, efficientimm.SnapshotExt) {
		return srv.AddSnapshot(name, path)
	}
	g, _, err := efficientimm.IngestFile(path, efficientimm.IngestOptions{Model: model, Seed: seed})
	if err != nil {
		return efficientimm.GraphInfo{}, err
	}
	return srv.AddGraph(name, g, seed)
}

func fatalIf(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "immserver:", err)
	os.Exit(1)
}
