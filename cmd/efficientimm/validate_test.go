package main

import (
	"strings"
	"testing"
)

func TestResolveFormat(t *testing.T) {
	cases := []struct {
		file, format string
		want         string
		wantErr      bool
	}{
		{"g.txt", "auto", "edgelist", false},
		{"g.imsnap", "auto", "snapshot", false},
		{"g.imsnap", "edgelist", "edgelist", false}, // explicit beats extension
		{"g.txt", "snapshot", "snapshot", false},
		{"g.txt", "imsnap", "", true},
	}
	for _, c := range cases {
		got, err := resolveFormat(c.file, c.format)
		if (err != nil) != c.wantErr || got != c.want {
			t.Fatalf("resolveFormat(%q, %q) = %q, %v; want %q, err=%v", c.file, c.format, got, err, c.want, c.wantErr)
		}
	}
}

func TestParsePeers(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"root:0", []string{"root:0"}},
		{"root:0, h1:9401 ,h2:9402", []string{"root:0", "h1:9401", "h2:9402"}},
		{",root:0,,h1:9401,", []string{"root:0", "h1:9401"}},
	}
	for _, c := range cases {
		got := parsePeers(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("parsePeers(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("parsePeers(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestValidateFlags(t *testing.T) {
	setOf := func(names ...string) map[string]bool {
		m := make(map[string]bool)
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	cases := []struct {
		name    string
		v       cliFlags
		wantErr string // substring; empty = valid
	}{
		{
			name:    "no input",
			v:       cliFlags{set: setOf()},
			wantErr: "one of -dataset or -graph",
		},
		{
			name:    "dataset and graph together",
			v:       cliFlags{dataset: "web-Google", graphFile: "g.txt", format: "edgelist", set: setOf("dataset", "graph")},
			wantErr: "mutually exclusive",
		},
		{
			name:    "save-snapshot of snapshot input",
			v:       cliFlags{graphFile: "g.imsnap", format: "snapshot", saveSnap: "out.imsnap", set: setOf("graph", "save-snapshot")},
			wantErr: "already is the snapshot",
		},
		{
			name: "save-snapshot of edge list is the point",
			v:    cliFlags{graphFile: "g.txt", format: "edgelist", saveSnap: "out.imsnap", set: setOf("graph", "save-snapshot")},
		},
		{
			name:    "undirected with snapshot input",
			v:       cliFlags{graphFile: "g.imsnap", format: "snapshot", set: setOf("graph", "undirected")},
			wantErr: "edge-list ingestion",
		},
		{
			name:    "ingest-workers with snapshot input",
			v:       cliFlags{graphFile: "g.imsnap", format: "snapshot", set: setOf("graph", "ingest-workers")},
			wantErr: "edge-list ingestion",
		},
		{
			name: "ingest-workers with edge list",
			v:    cliFlags{graphFile: "g.txt", format: "edgelist", set: setOf("graph", "ingest-workers")},
		},
		{
			name:    "format with dataset",
			v:       cliFlags{dataset: "web-Google", set: setOf("dataset", "format")},
			wantErr: "only applies to -graph",
		},
		{
			name:    "undirected with dataset",
			v:       cliFlags{dataset: "web-Google", set: setOf("dataset", "undirected")},
			wantErr: "only applies to -graph",
		},
		{
			name:    "scale with graph",
			v:       cliFlags{graphFile: "g.txt", format: "edgelist", set: setOf("graph", "scale")},
			wantErr: "only applies to -dataset",
		},
		{
			name: "scale with dataset",
			v:    cliFlags{dataset: "web-Google", set: setOf("dataset", "scale")},
		},
		{
			name:    "explicit scan selection with ranks",
			v:       cliFlags{dataset: "web-Google", ranks: 4, selectionScan: true, set: setOf("dataset", "ranks", "selection")},
			wantErr: "CELF kernel only",
		},
		{
			name: "default selection with ranks",
			v:    cliFlags{dataset: "web-Google", ranks: 4, set: setOf("dataset", "ranks")},
		},
		{
			name: "explicit celf selection with ranks",
			v:    cliFlags{dataset: "web-Google", ranks: 4, selectionScan: false, set: setOf("dataset", "ranks", "selection")},
		},
		{
			name: "scan selection without ranks",
			v:    cliFlags{dataset: "web-Google", selectionScan: true, set: setOf("dataset", "selection")},
		},
		{
			name:    "negative ranks",
			v:       cliFlags{dataset: "web-Google", ranks: -1, set: setOf("dataset", "ranks")},
			wantErr: ">= 0",
		},
		{
			name:    "peers without ranks",
			v:       cliFlags{dataset: "web-Google", peers: []string{"root:0", "h1:9401"}, set: setOf("dataset", "peers")},
			wantErr: "-peers requires -ranks",
		},
		{
			name:    "peers shorter than ranks",
			v:       cliFlags{dataset: "web-Google", ranks: 3, peers: []string{"root:0", "h1:9401"}, set: setOf("dataset", "ranks", "peers")},
			wantErr: "lists 2 addresses but -ranks is 3",
		},
		{
			name: "peers matching ranks",
			v:    cliFlags{dataset: "web-Google", ranks: 3, peers: []string{"root:0", "h1:9401", "h2:9402"}, set: setOf("dataset", "ranks", "peers")},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateFlags(c.v)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %v does not contain %q", err, c.wantErr)
			}
		})
	}
}
