package main

import (
	"fmt"
	"strings"

	efficientimm "repro"
)

// cliFlags captures the flag values whose combinations need cross
// validation, plus which of them the user set explicitly (flag.Visit):
// several combinations are only contradictory when both sides were
// actually requested rather than defaulted.
type cliFlags struct {
	dataset   string
	graphFile string
	format    string // resolved: "edgelist" or "snapshot" (never "auto")
	saveSnap  string
	ranks     int
	peers     []string
	// selectionScan reports that -selection resolved to the scan kernel.
	selectionScan bool

	// explicitly set flags, by name
	set map[string]bool
}

// resolveFormat maps the -format flag to a concrete input format, keying
// "auto" on the .imsnap extension exactly like the loader does.
func resolveFormat(graphFile, format string) (string, error) {
	if format == "auto" {
		if strings.HasSuffix(graphFile, efficientimm.SnapshotExt) {
			return "snapshot", nil
		}
		return "edgelist", nil
	}
	if format != "edgelist" && format != "snapshot" {
		return "", fmt.Errorf("unknown -format %q (want auto, edgelist or snapshot)", format)
	}
	return format, nil
}

// validateFlags rejects mutually inconsistent flag combinations with
// actionable errors instead of silently ignoring one side. It runs
// after format resolution, so "-format auto" contradictions are caught
// on the resolved format.
func validateFlags(v cliFlags) error {
	switch {
	case v.dataset == "" && v.graphFile == "":
		return fmt.Errorf("one of -dataset or -graph is required")
	case v.dataset != "" && v.graphFile != "":
		return fmt.Errorf("-dataset %q and -graph %q are mutually exclusive: profiles are generated, not loaded", v.dataset, v.graphFile)
	}

	if v.dataset != "" {
		// Loader-only flags are contradictions against a generated profile.
		for _, f := range []string{"format", "undirected", "ingest-workers"} {
			if v.set[f] {
				return fmt.Errorf("-%s only applies to -graph input; -dataset %q is generated, not loaded", f, v.dataset)
			}
		}
	} else {
		if v.set["scale"] {
			return fmt.Errorf("-scale only applies to -dataset profiles; the size of -graph %q is fixed by its contents", v.graphFile)
		}
		if v.format == "snapshot" {
			if v.saveSnap != "" {
				return fmt.Errorf("-save-snapshot is redundant with snapshot input %q: the input already is the snapshot (load an edge list to create one)", v.graphFile)
			}
			for _, f := range []string{"undirected", "ingest-workers"} {
				if v.set[f] {
					return fmt.Errorf("-%s only applies to edge-list ingestion; snapshot %q already encodes the final graph", f, v.graphFile)
				}
			}
		}
	}

	if v.ranks < 0 {
		return fmt.Errorf("-ranks must be >= 0, got %d", v.ranks)
	}
	if v.ranks > 0 && v.set["selection"] && v.selectionScan {
		return fmt.Errorf("-selection scan is incompatible with -ranks: the distributed runtime selects through the CELF kernel only")
	}
	if v.set["peers"] {
		if v.ranks == 0 {
			return fmt.Errorf("-peers requires -ranks: the peer list describes a networked cluster, and -ranks names its size")
		}
		if len(v.peers) != v.ranks {
			return fmt.Errorf("-peers lists %d addresses but -ranks is %d; entry 0 is this root process, entries 1..N-1 are immserver -rank workers", len(v.peers), v.ranks)
		}
	}
	return nil
}

// parsePeers splits a comma-separated -peers value into trimmed,
// non-empty wire addresses; ClusterConfig.Validate catches duplicates
// and empties at connect time.
func parsePeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
