// Command efficientimm runs influence maximization on a generated or
// loaded graph with either engine and emits a JSON log in the format the
// paper's artifact scripts consume.
//
// Usage:
//
//	efficientimm -dataset web-Google -model IC -k 50 -eps 0.5 -workers 8
//	efficientimm -graph edges.txt -undirected -model LT -engine ripples
//	efficientimm -graph edges.txt -ingest-workers 8 -save-snapshot g.imsnap
//	efficientimm -graph g.imsnap              # reload in milliseconds
//	efficientimm -graph g.imsnap -delta d.imdelta
//	                                          # apply an edge-delta batch
//	                                          # after loading
//	efficientimm -dataset com-DBLP -ranks 4   # simulated distributed run
//	efficientimm -graph g.imsnap -ranks 3 -peers root:0,h1:9401,h2:9402
//	                                          # networked run against
//	                                          # immserver -rank workers
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	efficientimm "repro"
	"repro/internal/profiling"
)

func main() {
	var (
		dataset    = flag.String("dataset", "", "SNAP-clone profile name (see -list)")
		graphFile  = flag.String("graph", "", "graph file to load instead of a profile (edge list or .imsnap snapshot)")
		format     = flag.String("format", "auto", "graph file format: auto | edgelist | snapshot (auto keys on the .imsnap extension)")
		ingWorkers = flag.Int("ingest-workers", runtime.NumCPU(), "parallel workers for edge-list ingestion")
		saveSnap   = flag.String("save-snapshot", "", "after loading, save the graph as a .imsnap snapshot to this path")
		undirected = flag.Bool("undirected", false, "treat the edge list as undirected")
		modelName  = flag.String("model", "IC", "diffusion model: IC or LT")
		engineName = flag.String("engine", "efficientimm", "engine: efficientimm or ripples")
		poolName   = flag.String("pool", "slices", "RRR pool representation: slices or compressed")
		selName    = flag.String("selection", "celf", "selection kernel: celf or scan")
		kernName   = flag.String("kernel", "fused", "generation kernel: fused (streaming) or materialized (legacy reference)")
		k          = flag.Int("k", 50, "seed set size")
		eps        = flag.Float64("eps", 0.5, "approximation parameter epsilon")
		workers    = flag.Int("workers", runtime.NumCPU(), "parallel workers")
		ranks      = flag.Int("ranks", 0, "simulated message-passing ranks (0 = shared-memory run)")
		peers      = flag.String("peers", "", "comma-separated wire addresses for a networked distributed run: entry 0 names the root, entries 1..N-1 must host `immserver -rank` workers; requires -ranks to match the list length")
		seed       = flag.Uint64("seed", 1, "RNG seed")
		maxTheta   = flag.Int64("max-theta", 0, "cap on RRR sets (0 = per-theory)")
		scale      = flag.Int("scale", 0, "clamp profile scale (log2 vertices, 0 = profile default)")
		spreadRuns = flag.Int("spread-runs", 0, "forward Monte-Carlo runs to estimate seed spread (0 = skip)")
		outPath    = flag.String("out", "", "write the JSON result to this file instead of stdout")
		list       = flag.Bool("list", false, "list available dataset profiles and exit")

		deltaFiles  multiFlag
		deltaStrict = flag.Bool("delta-strict", false, "fail if a delta contains self-loops, duplicates, or removals of absent edges")
	)
	flag.Var(&deltaFiles, "delta", ".imdelta edge-delta batch to apply after loading the graph (repeatable, applied in order)")
	prof := profiling.Register(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, p := range efficientimm.Profiles() {
			fmt.Printf("%-12s kind=%-9s clone=2^%d nodes (paper: %d nodes, %d edges)\n",
				p.Name, p.Kind, p.Scale, p.PaperNodes, p.PaperEdges)
		}
		return
	}

	model, err := efficientimm.ParseModel(*modelName)
	fatalIf(err)
	engine, err := efficientimm.ParseEngine(*engineName)
	fatalIf(err)
	pool, err := efficientimm.ParsePool(*poolName)
	fatalIf(err)
	selection, err := efficientimm.ParseSelection(*selName)
	fatalIf(err)
	kernel, err := efficientimm.ParseKernel(*kernName)
	fatalIf(err)

	stopProf, err := prof.Start()
	fatalIf(err)
	defer stopProf()

	setFlags := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	modelFlagSet := setFlags["model"]

	fmtName := ""
	if *graphFile != "" {
		var ferr error
		if fmtName, ferr = resolveFormat(*graphFile, *format); ferr != nil {
			fatalIf(ferr)
		}
	}
	peerList := parsePeers(*peers)
	fatalIf(validateFlags(cliFlags{
		dataset:       *dataset,
		graphFile:     *graphFile,
		format:        fmtName,
		saveSnap:      *saveSnap,
		ranks:         *ranks,
		peers:         peerList,
		selectionScan: selection == efficientimm.SelectScan,
		set:           setFlags,
	}))

	var g *efficientimm.Graph
	var ingStats *efficientimm.IngestStats
	// weightSeed is what -save-snapshot records as weight provenance: the
	// -seed flag normally, but the original seed when the weights were
	// adopted from a snapshot (so re-snapshotting stays canonical).
	weightSeed := *seed
	switch {
	case *graphFile != "":
		switch fmtName {
		case "edgelist":
			var st efficientimm.IngestStats
			g, st, err = efficientimm.IngestFile(*graphFile, efficientimm.IngestOptions{
				Workers: *ingWorkers, Undirected: *undirected, Model: model, Seed: *seed,
			})
			fatalIf(err)
			ingStats = &st
		case "snapshot":
			var info efficientimm.SnapshotInfo
			g, info, err = efficientimm.ReadSnapshotFile(*graphFile)
			fatalIf(err)
			// The snapshot carries its model and weights; an explicit
			// conflicting -model is a mistake, not a request.
			if modelFlagSet && info.Model != model {
				fatalIf(fmt.Errorf("snapshot %s holds a %v graph but -model=%v was requested", *graphFile, info.Model, model))
			}
			model = info.Model
			weightSeed = info.Seed
		}
	case *dataset != "":
		profiles := efficientimm.Profiles()
		found := false
		for _, p := range profiles {
			if p.Name == *dataset {
				if *scale > 0 && p.Scale > *scale {
					p.Scale = *scale
				}
				g, err = p.Generate(model, *seed)
				fatalIf(err)
				found = true
				break
			}
		}
		if !found {
			fatalIf(fmt.Errorf("unknown dataset %q (use -list)", *dataset))
		}
	default:
		fatalIf(fmt.Errorf("one of -dataset or -graph is required"))
	}

	// Deltas apply after load, in flag order; each produces a new CSR
	// epoch, so the run (and any -save-snapshot) answers for the final
	// post-delta graph — the cold reference that repaired warm pools
	// (immserver's delta endpoint) must reproduce byte-for-byte.
	var deltaAdded, deltaRemoved int64
	deltaDirty := 0
	for _, path := range deltaFiles {
		d, _, derr := efficientimm.ReadDeltaFile(path)
		fatalIf(derr)
		ng, rep, derr := efficientimm.ApplyDelta(g, d, efficientimm.DeltaApplyOptions{Strict: *deltaStrict})
		fatalIf(derr)
		g = ng
		deltaAdded += rep.Added
		deltaRemoved += rep.Removed
		deltaDirty += len(rep.Dirty)
	}

	if *saveSnap != "" {
		fatalIf(efficientimm.WriteSnapshotFile(*saveSnap, g, weightSeed))
		fmt.Fprintf(os.Stderr, "efficientimm: snapshot saved to %s\n", *saveSnap)
	}

	opt := efficientimm.Defaults()
	opt.Engine = engine
	opt.Pool = pool
	opt.Selection = selection
	opt.Kernel = kernel
	opt.K = *k
	opt.Epsilon = *eps
	opt.Workers = *workers
	opt.Seed = *seed
	opt.MaxTheta = *maxTheta

	start := time.Now()
	var res *efficientimm.Result
	var comm *efficientimm.DistResult
	if *ranks > 0 {
		// The distributed runtime selects through the CELF kernel only;
		// an explicit -selection scan was already rejected by
		// validateFlags, so the flag can only hold the default here.
		selection = efficientimm.SelectCELF
		dopt := efficientimm.DefaultDistOptions()
		dopt.Options = opt
		dopt.Ranks = *ranks
		var dres *efficientimm.DistResult
		var derr error
		if len(peerList) > 0 {
			cl, cerr := efficientimm.ConnectCluster(efficientimm.ClusterConfig{Rank: 0, Peers: peerList}, efficientimm.DefaultClusterOptions())
			fatalIf(cerr)
			dres, derr = efficientimm.RunClusterDistributed(g, dopt, cl)
			cl.Close()
		} else {
			dres, derr = efficientimm.RunDistributed(g, dopt)
		}
		fatalIf(derr)
		res, comm = &dres.Result, dres
	} else {
		res, err = efficientimm.Run(g, opt)
		fatalIf(err)
	}
	elapsed := time.Since(start)

	out := map[string]any{
		"dataset":           *dataset,
		"graph_file":        *graphFile,
		"engine":            res.Engine.String(),
		"model":             model.String(),
		"nodes":             g.N,
		"edges":             g.M,
		"k":                 *k,
		"epsilon":           *eps,
		"workers":           *workers,
		"theta":             res.Theta,
		"coverage":          res.Coverage,
		"seeds":             res.Seeds,
		"wall_ms":           float64(elapsed) / float64(time.Millisecond),
		"sampling_wall_ms":  float64(res.Breakdown.SamplingWall) / float64(time.Millisecond),
		"selection_wall_ms": float64(res.Breakdown.SelectionWall) / float64(time.Millisecond),
		"sampling_modeled":  res.Breakdown.SamplingModeled,
		"selection_modeled": res.Breakdown.SelectionModeled,
		"rrr_bytes":         res.SetStats.TotalBytes,
		"rrr_bitmaps":       res.SetStats.Bitmaps,
		"rrr_lists":         res.SetStats.Lists,
		"rrr_compressed":    res.SetStats.Compressed,
		"pool":              pool.String(),
		"selection":         selection.String(),
		"kernel":            kernel.String(),
		// Peak pool footprint: resident set bytes, the inverted-index
		// bytes CELF selection adds, and the raw []int32-slice cost the
		// compression ratio is measured against.
		"pool_set_bytes":         res.Pool.SetBytes,
		"pool_index_bytes":       res.Pool.IndexBytes,
		"pool_raw_bytes":         res.Pool.RawBytes,
		"pool_total_bytes":       res.Pool.TotalBytes(),
		"pool_compression_ratio": res.Pool.CompressionRatio(),
	}
	if len(deltaFiles) > 0 {
		out["deltas_applied"] = len(deltaFiles)
		out["delta_edges_added"] = deltaAdded
		out["delta_edges_removed"] = deltaRemoved
		out["delta_dirty_vertices"] = deltaDirty
	}
	if ingStats != nil {
		out["ingest_workers"] = ingStats.Workers
		out["ingest_ms"] = float64(ingStats.TotalWall) / float64(time.Millisecond)
		out["ingest_mb_per_s"] = ingStats.MBPerSec()
		out["ingest_self_loops"] = ingStats.SelfLoops
		out["ingest_duplicates"] = ingStats.Duplicates
	}
	if comm != nil {
		out["ranks"] = comm.Ranks
		out["comm_bytes_sent"] = comm.Comm.BytesSent
		out["comm_bytes_received"] = comm.Comm.BytesReceived
		out["comm_messages"] = comm.Comm.Messages
		out["comm_set_gather_bytes"] = comm.Comm.SetGather.BytesSent
		out["comm_counter_reduce_bytes"] = comm.Comm.CounterReduce.BytesSent
		// Measured bytes-on-the-wire: zero for simulated (-ranks only)
		// runs, the framed-TCP transport totals for -peers runs.
		out["comm_measured_bytes_sent"] = comm.Comm.MeasuredBytesSent
		out["comm_measured_bytes_received"] = comm.Comm.MeasuredBytesReceived
		out["comm_measured_messages"] = comm.Comm.MeasuredMessages
		out["comm_failovers"] = comm.Comm.Failovers
	}
	if *spreadRuns > 0 {
		out["estimated_spread"] = efficientimm.EstimateSpread(g, res.Seeds, *spreadRuns, *workers, *seed)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	fatalIf(err)
	if *outPath != "" {
		fatalIf(os.WriteFile(*outPath, data, 0o644))
		return
	}
	fmt.Println(string(data))
}

// multiFlag collects a repeatable string flag in order.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "efficientimm:", err)
		os.Exit(1)
	}
}
