// Command graphgen emits synthetic graphs as SNAP-style edge lists
// and/or binary .imsnap snapshots: either a calibrated dataset clone or
// a raw generator family.
//
// Usage:
//
//	graphgen -profile web-Google -out web-google.txt
//	graphgen -kind rmat -scale 14 -edgefactor 8 -out rmat.txt
//	graphgen -kind ba -n 100000 -k 4 -out ba.txt
//	graphgen -kind rmat -scale 16 -out g.txt -snapshot g.imsnap
//	graphgen -kind rmat -scale 16 -snapshot g.imsnap -delta-out d.imdelta
//
// A -snapshot written alongside -out describes the canonical
// reingestion of that edge list (ids densified, self-loops and
// duplicates dropped, weights drawn from -seed), so running the engine
// on either file produces identical seeds — the equivalence the CI
// datasets job pins every run.
//
// A -delta-out writes a deterministic .imdelta batch derived from the
// same graph: -delta-removes existing edges and -delta-adds absent
// edges, both chosen by -delta-seed. The CI immserver-smoke job streams
// this delta at a warm server and pins the repaired pools against a
// cold `efficientimm -delta` run.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"

	efficientimm "repro"
	"repro/internal/gen"
)

func main() {
	var (
		profile    = flag.String("profile", "", "dataset clone to generate (see efficientimm -list)")
		kind       = flag.String("kind", "", "raw generator: rmat | ba | er | ws")
		scale      = flag.Int("scale", 12, "rmat: log2 vertex count; also clamps -profile")
		edgeFactor = flag.Float64("edgefactor", 8, "rmat: edges per vertex")
		n          = flag.Int("n", 10000, "ba/er/ws: vertex count")
		k          = flag.Int("k", 3, "ba: links per new vertex; ws: neighbors per side")
		m          = flag.Int64("m", 50000, "er: edge count")
		beta       = flag.Float64("beta", 0.05, "ws: rewiring probability")
		modelName  = flag.String("model", "IC", "diffusion model for -snapshot weights: IC or LT")
		seed       = flag.Uint64("seed", 1, "RNG seed (generation and snapshot weights)")
		outPath    = flag.String("out", "", "edge-list output file (default stdout when -snapshot unset)")
		snapPath   = flag.String("snapshot", "", "also write a binary .imsnap snapshot of the canonical reingestion")
		version    = flag.Bool("version", false, "print the generator version (CI cache key) and exit")

		deltaOut     = flag.String("delta-out", "", "also write a deterministic .imdelta edge-delta batch derived from the graph")
		deltaAdds    = flag.Int("delta-adds", 64, "delta-out: number of absent edges to add")
		deltaRemoves = flag.Int("delta-removes", 32, "delta-out: number of existing edges to remove")
		deltaSeed    = flag.Uint64("delta-seed", 7, "delta-out: seed for edge choice and added-edge weights")
	)
	flag.Parse()

	if *version {
		fmt.Println(gen.Version)
		return
	}

	model, err := efficientimm.ParseModel(*modelName)
	fatalIf(err)

	var g *efficientimm.Graph
	switch {
	case *profile != "":
		for _, p := range efficientimm.Profiles() {
			if p.Name == *profile {
				if *scale > 0 && p.Scale > *scale {
					p.Scale = *scale
				}
				g, err = p.Generate(model, *seed)
			}
		}
		if g == nil && err == nil {
			err = fmt.Errorf("unknown profile %q", *profile)
		}
	case *kind == "rmat":
		g, err = efficientimm.GenerateRMAT(*scale, *edgeFactor, model, *seed)
	case *kind == "ba":
		g, err = efficientimm.GenerateBarabasiAlbert(int32(*n), *k, model, *seed)
	case *kind == "er":
		g, err = efficientimm.GenerateErdosRenyi(int32(*n), *m, model, *seed)
	case *kind == "ws":
		g, err = efficientimm.GenerateWattsStrogatz(int32(*n), *k, *beta, model, *seed)
	default:
		err = fmt.Errorf("one of -profile or -kind is required")
	}
	fatalIf(err)

	// canonical is the graph a loader of the emitted files sees: the
	// reingestion of the edge-list text when a snapshot is written (the
	// round trip densifies ids and drops isolated vertices), the raw
	// generator output otherwise.
	canonical := g
	if *snapPath != "" {
		// Snapshot the canonical reingestion of the edge list rather than
		// the generator's raw graph: the text round trip drops isolated
		// vertices, and the snapshot must describe the same graph a
		// loader of the .txt sees.
		var buf bytes.Buffer
		fatalIf(efficientimm.WriteEdgeList(&buf, g))
		ing, st, err := efficientimm.Ingest(&buf, efficientimm.IngestOptions{
			Workers: runtime.NumCPU(), Model: model, Seed: *seed,
		})
		fatalIf(err)
		fatalIf(efficientimm.WriteSnapshotFile(*snapPath, ing, *seed))
		fmt.Fprintf(os.Stderr, "graphgen: wrote snapshot of %d nodes, %d edges to %s\n", st.Nodes, st.Edges, *snapPath)
		canonical = ing
	}

	if *deltaOut != "" {
		d := makeDelta(canonical, *deltaAdds, *deltaRemoves, *deltaSeed)
		fatalIf(efficientimm.WriteDeltaFile(*deltaOut, d))
		fmt.Fprintf(os.Stderr, "graphgen: wrote delta of +%d/-%d edges to %s\n", len(d.Add), len(d.Remove), *deltaOut)
	}

	switch {
	case *outPath != "":
		fatalIf(efficientimm.WriteEdgeListFile(*outPath, g))
		fmt.Fprintf(os.Stderr, "graphgen: wrote %d nodes, %d edges to %s\n", g.N, g.M, *outPath)
	case *snapPath == "":
		fatalIf(efficientimm.WriteEdgeList(os.Stdout, g))
	}
}

// makeDelta derives a deterministic edge delta from g: removes
// distinct existing edges and adds absent non-self-loop pairs, both
// drawn from an xorshift stream seeded by seed. The same (graph, seed)
// always yields the same batch, so CI can regenerate it bit-for-bit.
func makeDelta(g *efficientimm.Graph, adds, removes int, seed uint64) efficientimm.Delta {
	type pair [2]int32
	present := make(map[pair]bool, g.M)
	edges := make([]pair, 0, g.M)
	for u := int32(0); u < g.N; u++ {
		for p := g.OutIndex[u]; p < g.OutIndex[u+1]; p++ {
			e := pair{u, g.OutEdges[p]}
			present[e] = true
			edges = append(edges, e)
		}
	}
	x := seed ^ 0x9e3779b97f4a7c15
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	d := efficientimm.Delta{Seed: seed}
	chosen := make(map[pair]bool, removes)
	for len(edges) > 0 && len(d.Remove) < removes && len(chosen) < len(edges) {
		e := edges[next()%uint64(len(edges))]
		if chosen[e] {
			continue
		}
		chosen[e] = true
		d.Remove = append(d.Remove, efficientimm.Edge{Src: e[0], Dst: e[1]})
	}
	for g.N > 1 && len(d.Add) < adds {
		u, v := int32(next()%uint64(g.N)), int32(next()%uint64(g.N))
		e := pair{u, v}
		if u == v || present[e] {
			continue
		}
		present[e] = true
		d.Add = append(d.Add, efficientimm.Edge{Src: u, Dst: v})
	}
	return d
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}
