// Command graphgen emits synthetic graphs as SNAP-style edge lists
// and/or binary .imsnap snapshots: either a calibrated dataset clone or
// a raw generator family.
//
// Usage:
//
//	graphgen -profile web-Google -out web-google.txt
//	graphgen -kind rmat -scale 14 -edgefactor 8 -out rmat.txt
//	graphgen -kind ba -n 100000 -k 4 -out ba.txt
//	graphgen -kind rmat -scale 16 -out g.txt -snapshot g.imsnap
//
// A -snapshot written alongside -out describes the canonical
// reingestion of that edge list (ids densified, self-loops and
// duplicates dropped, weights drawn from -seed), so running the engine
// on either file produces identical seeds — the equivalence the CI
// datasets job pins every run.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"

	efficientimm "repro"
	"repro/internal/gen"
)

func main() {
	var (
		profile    = flag.String("profile", "", "dataset clone to generate (see efficientimm -list)")
		kind       = flag.String("kind", "", "raw generator: rmat | ba | er | ws")
		scale      = flag.Int("scale", 12, "rmat: log2 vertex count; also clamps -profile")
		edgeFactor = flag.Float64("edgefactor", 8, "rmat: edges per vertex")
		n          = flag.Int("n", 10000, "ba/er/ws: vertex count")
		k          = flag.Int("k", 3, "ba: links per new vertex; ws: neighbors per side")
		m          = flag.Int64("m", 50000, "er: edge count")
		beta       = flag.Float64("beta", 0.05, "ws: rewiring probability")
		modelName  = flag.String("model", "IC", "diffusion model for -snapshot weights: IC or LT")
		seed       = flag.Uint64("seed", 1, "RNG seed (generation and snapshot weights)")
		outPath    = flag.String("out", "", "edge-list output file (default stdout when -snapshot unset)")
		snapPath   = flag.String("snapshot", "", "also write a binary .imsnap snapshot of the canonical reingestion")
		version    = flag.Bool("version", false, "print the generator version (CI cache key) and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(gen.Version)
		return
	}

	model, err := efficientimm.ParseModel(*modelName)
	fatalIf(err)

	var g *efficientimm.Graph
	switch {
	case *profile != "":
		for _, p := range efficientimm.Profiles() {
			if p.Name == *profile {
				if *scale > 0 && p.Scale > *scale {
					p.Scale = *scale
				}
				g, err = p.Generate(model, *seed)
			}
		}
		if g == nil && err == nil {
			err = fmt.Errorf("unknown profile %q", *profile)
		}
	case *kind == "rmat":
		g, err = efficientimm.GenerateRMAT(*scale, *edgeFactor, model, *seed)
	case *kind == "ba":
		g, err = efficientimm.GenerateBarabasiAlbert(int32(*n), *k, model, *seed)
	case *kind == "er":
		g, err = efficientimm.GenerateErdosRenyi(int32(*n), *m, model, *seed)
	case *kind == "ws":
		g, err = efficientimm.GenerateWattsStrogatz(int32(*n), *k, *beta, model, *seed)
	default:
		err = fmt.Errorf("one of -profile or -kind is required")
	}
	fatalIf(err)

	if *snapPath != "" {
		// Snapshot the canonical reingestion of the edge list rather than
		// the generator's raw graph: the text round trip drops isolated
		// vertices, and the snapshot must describe the same graph a
		// loader of the .txt sees.
		var buf bytes.Buffer
		fatalIf(efficientimm.WriteEdgeList(&buf, g))
		ing, st, err := efficientimm.Ingest(&buf, efficientimm.IngestOptions{
			Workers: runtime.NumCPU(), Model: model, Seed: *seed,
		})
		fatalIf(err)
		fatalIf(efficientimm.WriteSnapshotFile(*snapPath, ing, *seed))
		fmt.Fprintf(os.Stderr, "graphgen: wrote snapshot of %d nodes, %d edges to %s\n", st.Nodes, st.Edges, *snapPath)
	}

	switch {
	case *outPath != "":
		fatalIf(efficientimm.WriteEdgeListFile(*outPath, g))
		fmt.Fprintf(os.Stderr, "graphgen: wrote %d nodes, %d edges to %s\n", g.N, g.M, *outPath)
	case *snapPath == "":
		fatalIf(efficientimm.WriteEdgeList(os.Stdout, g))
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}
