// Command graphgen emits synthetic graphs as SNAP-style edge lists:
// either a calibrated dataset clone or a raw generator family.
//
// Usage:
//
//	graphgen -profile web-Google -out web-google.txt
//	graphgen -kind rmat -scale 14 -edgefactor 8 -out rmat.txt
//	graphgen -kind ba -n 100000 -k 4 -out ba.txt
package main

import (
	"flag"
	"fmt"
	"os"

	efficientimm "repro"
)

func main() {
	var (
		profile    = flag.String("profile", "", "dataset clone to generate (see efficientimm -list)")
		kind       = flag.String("kind", "", "raw generator: rmat | ba | er | ws")
		scale      = flag.Int("scale", 12, "rmat: log2 vertex count; also clamps -profile")
		edgeFactor = flag.Float64("edgefactor", 8, "rmat: edges per vertex")
		n          = flag.Int("n", 10000, "ba/er/ws: vertex count")
		k          = flag.Int("k", 3, "ba: links per new vertex; ws: neighbors per side")
		m          = flag.Int64("m", 50000, "er: edge count")
		beta       = flag.Float64("beta", 0.05, "ws: rewiring probability")
		seed       = flag.Uint64("seed", 1, "RNG seed")
		outPath    = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var g *efficientimm.Graph
	var err error
	switch {
	case *profile != "":
		for _, p := range efficientimm.Profiles() {
			if p.Name == *profile {
				if *scale > 0 && p.Scale > *scale {
					p.Scale = *scale
				}
				g, err = p.Generate(efficientimm.IC, *seed)
			}
		}
		if g == nil && err == nil {
			err = fmt.Errorf("unknown profile %q", *profile)
		}
	case *kind == "rmat":
		g, err = efficientimm.GenerateRMAT(*scale, *edgeFactor, efficientimm.IC, *seed)
	case *kind == "ba":
		g, err = efficientimm.GenerateBarabasiAlbert(int32(*n), *k, efficientimm.IC, *seed)
	case *kind == "er":
		g, err = efficientimm.GenerateErdosRenyi(int32(*n), *m, efficientimm.IC, *seed)
	case *kind == "ws":
		g, err = efficientimm.GenerateWattsStrogatz(int32(*n), *k, *beta, efficientimm.IC, *seed)
	default:
		err = fmt.Errorf("one of -profile or -kind is required")
	}
	fatalIf(err)

	if *outPath == "" {
		fatalIf(efficientimm.WriteEdgeList(os.Stdout, g))
		return
	}
	fatalIf(efficientimm.WriteEdgeListFile(*outPath, g))
	fmt.Fprintf(os.Stderr, "graphgen: wrote %d nodes, %d edges to %s\n", g.N, g.M, *outPath)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}
