package efficientimm

// The warm-pool query service (internal/serve), re-exported. A Server
// amortizes RRR-set generation across queries: it keeps one sharded
// pool warm per (graph, RNG seed), gathers concurrent queries on the
// same pool into batches that share a single θ-extension, extends θ
// incrementally otherwise (never regenerating), deduplicates identical
// concurrent queries, sheds overload with bounded admission queues, and
// bounds resident pool bytes with LRU eviction — while every answer
// stays byte-identical to a cold Run with the same options. See
// DESIGN.md "Serving architecture" and "Batched planning & admission
// control", and cmd/immserver for the HTTP front-end.

import (
	"repro/internal/serve"
)

type (
	// Server is the warm-pool query service: a registry of graphs plus
	// a byte-budgeted cache of warm RRR pools behind a batched query
	// planner with admission control. Safe for concurrent use; drain
	// with Server.Shutdown.
	Server = serve.Server
	// ServeOptions configures NewServer; per-query parameters travel in
	// QueryRequest. QueryWorkers/QueueDepth bound concurrent execution
	// (overflow is rejected with ErrServerOverloaded), GatherWindow
	// tunes how long concurrent queries wait to share one θ-extension.
	ServeOptions = serve.Options
	// QueryRequest identifies one (graph, model, k, epsilon, rngSeed)
	// seed-set query.
	QueryRequest = serve.QueryRequest
	// QueryResult is a served answer plus its reuse accounting (warm or
	// cold, batch size, sets reused/generated/shared, pool bytes).
	QueryResult = serve.QueryResult
	// ServeStats are the service counters (queries, warm hits, batches,
	// shared extensions, admission rejections, evictions, job counts).
	ServeStats = serve.Stats
	// GraphInfo describes one graph registered with a Server.
	GraphInfo = serve.GraphInfo
	// BatchItem is one member's outcome in a Server.QueryBatch answer.
	BatchItem = serve.BatchItem
	// ServeJob is the public view of one async query submitted with
	// Server.SubmitJob and polled with Server.Job.
	ServeJob = serve.Job
	// ServeJobState is a ServeJob lifecycle state (queued, running,
	// done, failed).
	ServeJobState = serve.JobState
)

// The Server error sentinels, re-exported for errors.Is dispatch; the
// HTTP front-end maps them to 404/400/429/503.
var (
	ErrUnknownGraph       = serve.ErrUnknownGraph
	ErrInvalidQuery       = serve.ErrInvalidQuery
	ErrServerOverloaded   = serve.ErrOverloaded
	ErrServerShuttingDown = serve.ErrShuttingDown
	ErrUnknownJob         = serve.ErrUnknownJob
)

// DefaultPoolBudgetBytes is the resident warm-pool byte budget applied
// when ServeOptions.PoolBudgetBytes is zero.
const DefaultPoolBudgetBytes = serve.DefaultPoolBudgetBytes

// NewServer returns an empty warm-pool query service. Register graphs
// with Server.AddGraph or Server.AddSnapshot, then answer queries with
// Server.Query / Server.QueryBatch / Server.SubmitJob (or serve
// Server.Handler over HTTP — that is what cmd/immserver does).
func NewServer(opt ServeOptions) *Server { return serve.NewServer(opt) }
