package efficientimm

// The warm-pool query service (internal/serve), re-exported. A Server
// amortizes RRR-set generation across queries: it keeps one sharded
// pool warm per (graph, RNG seed), extends θ incrementally when a query
// needs more samples, deduplicates identical concurrent queries, and
// bounds resident pool bytes with LRU eviction — while every answer
// stays byte-identical to a cold Run with the same options. See
// DESIGN.md "Serving architecture" and cmd/immserver for the HTTP
// front-end.

import (
	"repro/internal/serve"
)

type (
	// Server is the warm-pool query service: a registry of graphs plus
	// a byte-budgeted cache of warm RRR pools. Safe for concurrent use.
	Server = serve.Server
	// ServeOptions configures NewServer; per-query parameters travel in
	// QueryRequest.
	ServeOptions = serve.Options
	// QueryRequest identifies one (graph, model, k, epsilon, rngSeed)
	// seed-set query.
	QueryRequest = serve.QueryRequest
	// QueryResult is a served answer plus its reuse accounting (warm or
	// cold, sets reused versus generated, pool bytes).
	QueryResult = serve.QueryResult
	// ServeStats are the service counters (queries, warm hits, cold
	// misses, coalesced queries, evictions, reuse volume).
	ServeStats = serve.Stats
	// GraphInfo describes one graph registered with a Server.
	GraphInfo = serve.GraphInfo
)

// DefaultPoolBudgetBytes is the resident warm-pool byte budget applied
// when ServeOptions.PoolBudgetBytes is zero.
const DefaultPoolBudgetBytes = serve.DefaultPoolBudgetBytes

// NewServer returns an empty warm-pool query service. Register graphs
// with Server.AddGraph or Server.AddSnapshot, then answer queries with
// Server.Query (or serve Server.Handler over HTTP — that is what
// cmd/immserver does).
func NewServer(opt ServeOptions) *Server { return serve.NewServer(opt) }
