package efficientimm

// The warm-pool query service (internal/serve), re-exported. A Server
// amortizes RRR-set generation across queries: it keeps one sharded
// pool warm per (graph, RNG seed), gathers concurrent queries on the
// same pool into batches that share a single θ-extension, extends θ
// incrementally otherwise (never regenerating), deduplicates identical
// concurrent queries, sheds overload with bounded admission queues, and
// bounds resident pool bytes with LRU eviction — while every answer
// stays byte-identical to a cold Run with the same options. See
// DESIGN.md "Serving architecture" and "Batched planning & admission
// control", and cmd/immserver for the HTTP front-end.

import (
	"repro/internal/graph"
	"repro/internal/imm"
	"repro/internal/route"
	"repro/internal/serve"
)

type (
	// Server is the warm-pool query service: a registry of graphs plus
	// a byte-budgeted cache of warm RRR pools behind a batched query
	// planner with admission control. Safe for concurrent use; drain
	// with Server.Shutdown.
	Server = serve.Server
	// ServeOptions configures NewServer; per-query parameters travel in
	// QueryRequest. QueryWorkers/QueueDepth bound concurrent execution
	// (overflow is rejected with ErrServerOverloaded), GatherWindow
	// tunes how long concurrent queries wait to share one θ-extension.
	ServeOptions = serve.Options
	// QueryRequest identifies one (graph, model, k, epsilon, rngSeed)
	// seed-set query.
	QueryRequest = serve.QueryRequest
	// QueryResult is a served answer plus its reuse accounting (warm or
	// cold, batch size, sets reused/generated/shared, pool bytes).
	QueryResult = serve.QueryResult
	// ServeStats are the service counters (queries, warm hits, batches,
	// shared extensions, admission rejections, evictions, job counts).
	ServeStats = serve.Stats
	// GraphInfo describes one graph registered with a Server, including
	// its delta epoch and last-update time.
	GraphInfo = serve.GraphInfo
	// ServeDeltaResult reports one Server.ApplyDelta call: the
	// post-delta graph shape, what changed, and the warm-pool repair
	// accounting (pools repaired in place, sets resampled, full
	// resamples).
	ServeDeltaResult = serve.DeltaResult
	// BatchItem is one member's outcome in a Server.QueryBatch answer.
	BatchItem = serve.BatchItem
	// ServeJob is the public view of one async query submitted with
	// Server.SubmitJob and polled with Server.Job.
	ServeJob = serve.Job
	// ServeJobState is a ServeJob lifecycle state (queued, running,
	// done, failed).
	ServeJobState = serve.JobState
)

// The Server error sentinels, re-exported for errors.Is dispatch; the
// HTTP front-end maps them to 404/400/429/503.
var (
	ErrUnknownGraph       = serve.ErrUnknownGraph
	ErrInvalidQuery       = serve.ErrInvalidQuery
	ErrServerOverloaded   = serve.ErrOverloaded
	ErrServerShuttingDown = serve.ErrShuttingDown
	ErrUnknownJob         = serve.ErrUnknownJob
	ErrGraphExists        = serve.ErrGraphExists
	ErrInvalidDelta       = serve.ErrInvalidDelta
)

// DefaultPoolBudgetBytes is the resident warm-pool byte budget applied
// when ServeOptions.PoolBudgetBytes is zero.
const DefaultPoolBudgetBytes = serve.DefaultPoolBudgetBytes

// NewServer returns an empty warm-pool query service. Register graphs
// with Server.AddGraph or Server.AddSnapshot, then answer queries with
// Server.Query / Server.QueryBatch / Server.SubmitJob (or serve
// Server.Handler over HTTP — that is what cmd/immserver does).
func NewServer(opt ServeOptions) *Server { return serve.NewServer(opt) }

type (
	// Router is the sharding query router: a pool-less HTTP front-end
	// that maps each (graph, rngSeed) warm-pool key onto one node of an
	// immserver fleet via consistent hashing, fans batches out to the
	// owners, dedups identical concurrent queries single-flight, and
	// fails node outages with the node_unavailable error envelope while
	// healthy nodes keep serving. Routing never changes an answer —
	// every node serves byte-identical results — it only preserves
	// pool warmth.
	Router = route.Router
	// RouterOptions configures NewRouter: the backend node URLs, ring
	// multiplicity, and forwarding timeout.
	RouterOptions = route.Options
)

// NewRouter validates opt, builds the consistent-hash ring, and returns
// the router. Mount Router.Handler over HTTP — that is what
// cmd/immrouter does.
func NewRouter(opt RouterOptions) (*Router, error) { return route.New(opt) }

// ClusterServeOptions wires a connected Cluster into serve options:
// every newly built warm pool sources its slot chunks from the
// cluster's worker ranks (falling back to local generation per chunk
// when a worker is unreachable), and Stats reports the transport's
// measured bytes-on-the-wire plus the failover count. Answers stay
// byte-identical to a single-node server — slot determinism makes
// remote generation a pure placement decision. This is the one glue
// point cmd/immserver's cluster mode uses.
func ClusterServeOptions(opt ServeOptions, cl *Cluster) ServeOptions {
	opt.RemoteGen = func(name string, g *graph.Graph, o imm.Options) imm.SlotGenerator {
		return cl.PoolGenerator(name, g, imm.PolicyFromOptions(o), o.Seed)
	}
	opt.WireMeter = cl.MeterTotals
	opt.RemoteFailovers = cl.Failovers
	return opt
}
