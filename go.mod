module repro

// Dependency pin: this module deliberately requires nothing beyond the
// standard library. In particular, the imlint analyzer suite
// (cmd/imlint, internal/analysis) is built on go/ast + go/types + the
// gc export-data importer rather than golang.org/x/tools/go/analysis,
// with the same Analyzer/Pass/Diagnostic shape, so the passes port
// mechanically if x/tools is ever vendored. Adding a requirement here
// is an API decision, not a convenience — see DESIGN.md "Static
// invariant enforcement".
go 1.22
