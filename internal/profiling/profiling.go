// Package profiling wires the standard runtime/pprof and runtime/trace
// collectors behind the conventional -cpuprofile / -memprofile / -trace
// CLI flags, so every command in the repo exposes profiling with the
// same three lines and identical flag semantics as `go test`.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the collector destinations a command registered.
type Flags struct {
	CPUProfile string
	MemProfile string
	Trace      string
}

// Register declares -cpuprofile, -memprofile and -trace on fs (the
// command's flag set, typically flag.CommandLine) and returns the
// destination holder to Start after fs is parsed.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	fs.StringVar(&f.Trace, "trace", "", "write a runtime execution trace to this file")
	return f
}

// Start begins every requested collector and returns the stop function
// the caller must defer: it stops the CPU profile and trace and takes
// the exit heap snapshot (after a GC, so the profile shows live bytes
// rather than garbage). With no flags set it is a no-op returning a
// no-op stop.
func (f *Flags) Start() (stop func(), err error) {
	var cpuFile, traceFile *os.File
	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
	}

	if f.CPUProfile != "" {
		if cpuFile, err = os.Create(f.CPUProfile); err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err = pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
	}
	if f.Trace != "" {
		if traceFile, err = os.Create(f.Trace); err != nil {
			cleanup()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err = trace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			cleanup()
			return nil, fmt.Errorf("profiling: start trace: %w", err)
		}
	}

	return func() {
		cleanup()
		if f.MemProfile != "" {
			mf, merr := os.Create(f.MemProfile)
			if merr != nil {
				fmt.Fprintln(os.Stderr, "profiling:", merr)
				return
			}
			defer mf.Close()
			runtime.GC()
			if merr := pprof.WriteHeapProfile(mf); merr != nil {
				fmt.Fprintln(os.Stderr, "profiling: write heap profile:", merr)
			}
		}
	}, nil
}
