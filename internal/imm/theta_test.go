package imm

// Tests of the martingale θ-estimation behaviour (Tang et al.'s bounds
// as implemented in Run), checked through observable Run outputs.

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func thetaFor(t *testing.T, g *graph.Graph, mutate func(*Options)) int64 {
	t.Helper()
	opt := Defaults()
	opt.K = 10
	opt.Workers = 2
	opt.Seed = 3
	mutate(&opt)
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res.Theta
}

func TestThetaShrinksWithEpsilon(t *testing.T) {
	// λ* ∝ 1/ε², so a looser ε must need fewer samples.
	g := testGraph(t, 9, graph.IC)
	tight := thetaFor(t, g, func(o *Options) { o.Epsilon = 0.3 })
	loose := thetaFor(t, g, func(o *Options) { o.Epsilon = 0.7 })
	if loose >= tight {
		t.Fatalf("theta(ε=0.7)=%d not below theta(ε=0.3)=%d", loose, tight)
	}
}

func TestThetaGrowsWithK(t *testing.T) {
	// log C(n,k) grows with k (k << n), so θ must too — unless the
	// larger seed set raises the OPT lower bound enough to cancel it;
	// on a skewed graph with small k the logCNK term dominates.
	g := testGraph(t, 9, graph.IC)
	small := thetaFor(t, g, func(o *Options) { o.K = 2 })
	large := thetaFor(t, g, func(o *Options) { o.K = 40 })
	if large <= small/2 {
		t.Fatalf("theta(k=40)=%d collapsed versus theta(k=2)=%d", large, small)
	}
}

func TestThetaDeterministicAcrossEngines(t *testing.T) {
	g := testGraph(t, 9, graph.IC)
	rip := thetaFor(t, g, func(o *Options) { o.Engine = Ripples })
	eff := thetaFor(t, g, func(o *Options) { o.Engine = Efficient })
	if rip != eff {
		t.Fatalf("engines disagree on theta: %d vs %d", rip, eff)
	}
}

func TestLBWithinValidRange(t *testing.T) {
	g := testGraph(t, 9, graph.IC)
	opt := Defaults()
	opt.K = 10
	opt.Workers = 2
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	// The OPT lower bound can never exceed n, nor be below 1.
	if res.LB < 1 || res.LB > float64(g.N) {
		t.Fatalf("LB = %v outside [1, %d]", res.LB, g.N)
	}
	if res.Rounds < 1 {
		t.Fatalf("estimation executed %d rounds", res.Rounds)
	}
}

func TestCoverageMonotoneInK(t *testing.T) {
	// More seeds can only cover more RRR sets.
	g := testGraph(t, 9, graph.IC)
	cov := func(k int) float64 {
		opt := Defaults()
		opt.K = k
		opt.Workers = 2
		opt.Seed = 5
		opt.MaxTheta = 3000
		res, err := Run(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.Coverage
	}
	c1, c5, c20 := cov(1), cov(5), cov(20)
	if !(c1 <= c5 && c5 <= c20) {
		t.Fatalf("coverage not monotone in k: %v %v %v", c1, c5, c20)
	}
}

func TestDenserGraphLowersTheta(t *testing.T) {
	// Denser IC graphs have higher OPT, hence a larger LB and smaller θ.
	sparse := testGraph(t, 9, graph.IC) // edge factor 6 via testGraph
	g2, err := genDense(10)
	if err != nil {
		t.Fatal(err)
	}
	tSparse := thetaFor(t, sparse, func(o *Options) {})
	tDense := thetaFor(t, g2, func(o *Options) {})
	// Not a strict theorem at fixed n (different graphs), but with the
	// same generator family and doubled density the effect is robust.
	if tDense > tSparse*2 {
		t.Fatalf("dense graph theta %d unexpectedly above sparse %d", tDense, tSparse)
	}
}

func genDense(scale int) (*graph.Graph, error) {
	return gen.RMAT(gen.DefaultRMAT(scale, 12), graph.IC, 42)
}
