package imm

import (
	"repro/internal/cachesim"
	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/memmodel"
	"repro/internal/numa"
	"repro/internal/rng"
	"repro/internal/rrr"
)

// This file contains the instrumented kernel variants that feed the NUMA
// cost model (Table II) and the cache simulator (Table IV). They
// re-execute the hot loops of the two engines while recording every
// memory access against a logical address space; the plain engines stay
// uninstrumented so production runs pay nothing.

// ---------------------------------------------------------------------
// Table II: NUMA placement of the Generate_RRRsets working set.
// ---------------------------------------------------------------------

// NUMAPlacement selects the data placement under test.
type NUMAPlacement int

const (
	// PlacementOriginal models the unoptimized baseline: the loading
	// thread first-touches everything, so graph, bitmaps and RRR buffers
	// all live on node 0.
	PlacementOriginal NUMAPlacement = iota
	// PlacementAware models EFFICIENTIMM: the graph is interleaved
	// across nodes; each worker's visited bitmap and RRR output live on
	// the worker's own node (mbind).
	PlacementAware
)

func (p NUMAPlacement) String() string {
	if p == PlacementAware {
		return "numa-aware"
	}
	return "original"
}

// NUMAReport is the outcome of one instrumented generation run.
type NUMAReport struct {
	Placement NUMAPlacement
	// BitmapCost / TotalCost is the Table II "percentage of core time
	// spent checking the bitmap".
	BitmapCost    float64
	EdgeCost      float64
	OutputCost    float64
	TotalCost     float64
	LocalFraction float64 // fraction of node-local accesses
	Imbalance     float64 // max/mean node traffic
}

// BitmapSharePercent returns the Table II metric.
func (r NUMAReport) BitmapSharePercent() float64 {
	if r.TotalCost == 0 {
		return 0
	}
	return 100 * r.BitmapCost / r.TotalCost
}

// numaProbe adapts diffusion.Probe to the NUMA accessor with separate
// cost accumulators per structure.
type numaProbe struct {
	acc                  *numa.Accessor
	visitedRegion        memmodel.Region
	edgeRegion           memmodel.Region
	outRegion            memmodel.Region
	bitmapCost, edgeCost float64
	outputCost           float64
	outCursor            int64
	// bitmapCacheFactor discounts bitmap-touch cost when the placement
	// keeps the per-worker bitmap cache-resident (§IV.B: EFFICIENTIMM
	// "caches key data structures such as RRR sets and bitmaps to place
	// them closer to the processor"). 1 = always DRAM.
	bitmapCacheFactor float64
}

func (p *numaProbe) TouchVisited(word int64) {
	p.bitmapCost += p.acc.Touch(p.visitedRegion.Addr(word)) * p.bitmapCacheFactor
}

func (p *numaProbe) TouchEdge(edge int64) {
	p.edgeCost += p.acc.Touch(p.edgeRegion.Addr(edge))
}

func (p *numaProbe) TouchOutput(int64) {
	p.outputCost += p.acc.Touch(p.outRegion.Addr(p.outCursor % int64(p.outRegion.Length)))
	p.outCursor++
}

// MeasureNUMAGeneration runs an instrumented Generate_RRRsets of samples
// sets across workers simulated cores on topo, under the given
// placement, and reports where the modeled time went. It reproduces the
// methodology behind Table II.
func MeasureNUMAGeneration(g *graph.Graph, topo numa.Topology, placement NUMAPlacement, samples, workers int, seed uint64) (NUMAReport, error) {
	sys, err := numa.NewSystem(topo)
	if err != nil {
		return NUMAReport{}, err
	}
	if workers < 1 {
		workers = 1
	}
	space := memmodel.NewSpace()
	edgeRegion := space.Alloc("in-edges", g.M, 4)
	switch placement {
	case PlacementAware:
		sys.Place(edgeRegion, numa.Interleave, 0)
	default:
		sys.Place(edgeRegion, numa.NodeZero, 0)
	}

	report := NUMAReport{Placement: placement}
	// Workers run sequentially over their sample share: contention and
	// placement effects come from the cost model, not wall-clock
	// concurrency, so this stays deterministic.
	probes := make([]*numaProbe, workers)
	for w := 0; w < workers; w++ {
		core := w * topo.TotalCores() / workers // spread across nodes
		acc := sys.NewAccessor(core)
		visitedRegion := space.Alloc("visited", int64(g.N)/64+1, 8)
		outRegion := space.Alloc("rrrout", int64(g.N), 4)
		switch placement {
		case PlacementAware:
			sys.Place(visitedRegion, numa.Local, topo.NodeOfCore(core))
			sys.Place(outRegion, numa.Local, topo.NodeOfCore(core))
		default:
			sys.Place(visitedRegion, numa.NodeZero, 0)
			sys.Place(outRegion, numa.NodeZero, 0)
		}
		cacheFactor := 1.0
		if placement == PlacementAware {
			// A node-local, mbind-pinned bitmap stays hot in the private
			// caches; most probes cost an L1/L2 hit, not a DRAM access.
			cacheFactor = 1.0 / 3
		}
		probes[w] = &numaProbe{
			acc: acc, visitedRegion: visitedRegion, edgeRegion: edgeRegion,
			outRegion: outRegion, bitmapCacheFactor: cacheFactor,
		}
	}
	for w := 0; w < workers; w++ {
		smp := diffusion.NewSampler(g)
		smp.Probe = probes[w]
		var buf []int32
		for i := w; i < samples; i += workers {
			r := rng.NewStream(seed, i)
			buf = smp.SampleUniformRoot(r, buf[:0])
		}
		probes[w].acc.Flush()
	}
	var localAcc, totalAcc float64
	for _, p := range probes {
		report.BitmapCost += p.bitmapCost
		report.EdgeCost += p.edgeCost
		report.OutputCost += p.outputCost
		localAcc += p.acc.LocalFraction() * float64(p.acc.Accesses)
		totalAcc += float64(p.acc.Accesses)
	}
	report.TotalCost = report.BitmapCost + report.EdgeCost + report.OutputCost
	if totalAcc > 0 {
		report.LocalFraction = localAcc / totalAcc
	}
	report.Imbalance = sys.LoadImbalance()
	return report, nil
}

// ---------------------------------------------------------------------
// Table IV: cache misses of the two Find_Most_Influential_Set kernels.
// ---------------------------------------------------------------------

// CacheReport carries the simulated miss counts of one traced selection.
type CacheReport struct {
	Engine   EngineKind
	Stats    cachesim.Stats
	Accesses int64
}

// TraceSelection replays the selection kernel of the chosen engine over
// a freshly sampled pool of nsets RRR sets, feeding every memory access
// through an EPYC-like L1+L2 hierarchy, and returns the miss counts.
// Both engines trace over identical pools (same seed ⇒ same sets), so
// the returned numbers are directly comparable, which is exactly the
// Table IV methodology.
//
// simWorkers is the number of threads whose access streams are replayed.
// In Ripples every thread re-probes every set (its binary searches are
// redundant across threads), so its aggregate miss count grows with the
// thread count; the set-partitioned kernel touches each set exactly once
// in total regardless of thread count. The paper profiles on a 128-core
// machine, which is where the 22-357x reductions come from.
func TraceSelection(g *graph.Graph, kind EngineKind, k, nsets, simWorkers int, seed uint64) CacheReport {
	// Sample the pool once, list representation for both engines so the
	// data layout is identical; the engines differ only in access
	// pattern. (Ripples always uses lists; for the traced comparison the
	// efficient engine's wins must come from its traversal order, not
	// its representation, making the comparison conservative.)
	pool := newSetPool(g.N)
	pool.grow(int64(nsets))
	smp := diffusion.NewSampler(g)
	var buf []int32
	for i := 0; i < nsets; i++ {
		r := rng.NewStream(seed, i)
		buf = smp.SampleUniformRoot(r, buf[:0])
		pool.sets[i] = buildSet(g.N, rrr.ListOnlyPolicy(), buf)
		pool.totalMembers += int64(len(buf))
	}

	space := memmodel.NewSpace()
	// One contiguous region for all set payloads, as a slab allocator
	// would lay them out.
	slab := space.Alloc("rrr-slab", pool.totalMembers, 4)
	offsets := make([]int64, nsets+1)
	for i, s := range pool.sets {
		offsets[i+1] = offsets[i] + int64(s.Size())
	}
	countersRegion := space.Alloc("counters", int64(g.N), 8)

	h := cachesim.EPYCLike()
	touchMember := func(si int, j int) { h.Access(slab.Addr(offsets[si] + int64(j))) }
	touchCounter := func(v int32) { h.Access(countersRegion.Addr(int64(v))) }

	if simWorkers < 1 {
		simWorkers = 1
	}
	if kind == Ripples {
		traceRipplesSelection(g, pool, k, simWorkers, touchMember, touchCounter, h, countersRegion)
	} else {
		traceEfficientSelection(g, pool, k, touchMember, touchCounter, h, countersRegion)
	}
	st := h.Stats()
	return CacheReport{Engine: kind, Stats: st, Accesses: st.Accesses()}
}

// traceRipplesSelection replays the vertex-partitioned kernel's access
// stream as one trace: for each simulated worker's vertex range, walk
// every set (binary search bounds, then the in-range members), then per
// selection round repeat containment checks and decrements.
func traceRipplesSelection(g *graph.Graph, pool *setPool, k, simWorkers int,
	touchMember func(int, int), touchCounter func(int32), h *cachesim.Hierarchy, countersRegion memmodel.Region) {

	n := int(g.N)
	counts := make([]int64, n)
	for w := 0; w < simWorkers; w++ {
		vl, vh := w*n/simWorkers, (w+1)*n/simWorkers
		for si, set := range pool.sets {
			raw := set.(*rrr.ListSet).Raw()
			lo, hi := traceBinarySearchRange(raw, int32(vl), int32(vh), si, touchMember)
			for j := lo; j < hi; j++ {
				touchMember(si, j)
				counts[raw[j]]++
				touchCounter(raw[j])
			}
		}
	}
	covered := make([]bool, len(pool.sets))
	for round := 0; round < k; round++ {
		v := argMaxPlain(counts, 1)
		if v < 0 {
			break
		}
		counts[v] = -1
		// Argmax scan over the counter array, same as the efficient
		// kernel's reduction read.
		h.AccessRange(countersRegion.Addr(0), int64(n)*8)
		for w := 0; w < simWorkers; w++ {
			vl, vh := w*n/simWorkers, (w+1)*n/simWorkers
			for si, set := range pool.sets {
				// Sets covered in earlier rounds are skipped; sets being
				// covered this round are marked only after the last
				// simulated worker has processed them.
				if covered[si] {
					continue
				}
				ls := set.(*rrr.ListSet)
				raw := ls.Raw()
				if !traceContains(raw, v, si, touchMember) {
					continue
				}
				lo, hi := traceBinarySearchRange(raw, int32(vl), int32(vh), si, touchMember)
				for j := lo; j < hi; j++ {
					touchMember(si, j)
					if u := raw[j]; counts[u] >= 0 {
						counts[u]--
						touchCounter(u)
					}
				}
				if w == simWorkers-1 {
					covered[si] = true
				}
			}
		}
	}
}
