package imm

// Tests of the freeze/thaw seam: a thawed engine must answer
// byte-identically to both the engine that was frozen and a cold Run on
// the same graph, across pool representations and selection kernels —
// and thaw must reject any binding mismatch with ErrPoolIncompatible
// rather than serve a silently-wrong pool.

import (
	"errors"
	"testing"

	"repro/internal/graph"
)

func TestFreezeThawMatchesColdRun(t *testing.T) {
	for _, pool := range []PoolKind{PoolSlices, PoolCompressed} {
		for _, sel := range []SelectionKind{SelectCELF, SelectScan} {
			label := pool.String() + "/" + sel.String()
			g := testGraph(t, 8, graph.IC)
			opt := Defaults()
			opt.Workers = 2
			opt.Seed = 7
			opt.MaxTheta = 8000
			opt.Pool = pool
			opt.Selection = sel

			we, err := NewWarmEngine(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			qopt := opt
			qopt.K = 8
			qopt.Epsilon = 0.5
			before := runWarm(t, g, we, qopt)

			st, err := we.Freeze(5)
			if err != nil {
				t.Fatal(err)
			}
			if st.Epoch != 5 || st.Seed != 7 || st.Count != we.PhysicalSets() {
				t.Fatalf("%s: frozen metadata %+v does not match engine", label, st)
			}

			thawed, err := ThawWarmEngine(g, opt, st)
			if err != nil {
				t.Fatalf("%s: thaw: %v", label, err)
			}
			if thawed.PhysicalSets() != we.PhysicalSets() {
				t.Fatalf("%s: thawed pool holds %d sets, frozen held %d", label, thawed.PhysicalSets(), we.PhysicalSets())
			}
			after := runWarm(t, g, thawed, qopt)
			assertWarmEqualsCold(t, label+" (thawed repeat)", after, before)

			cold, err := Run(g, qopt)
			if err != nil {
				t.Fatal(err)
			}
			assertWarmEqualsCold(t, label+" (thawed vs cold)", after, cold)

			// A larger query on the thawed engine must extend the adopted
			// pool and still match a cold run exactly.
			bigOpt := opt
			bigOpt.K = 16
			bigOpt.Epsilon = 0.4
			bigWarm := runWarm(t, g, thawed, bigOpt)
			bigCold, err := Run(g, bigOpt)
			if err != nil {
				t.Fatal(err)
			}
			assertWarmEqualsCold(t, label+" (thawed extension)", bigWarm, bigCold)
		}
	}
}

func TestThawRejectsBindingMismatch(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	opt := Defaults()
	opt.Workers = 2
	opt.Seed = 7
	opt.MaxTheta = 8000
	we, err := NewWarmEngine(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	qopt := opt
	qopt.K = 8
	qopt.Epsilon = 0.5
	runWarm(t, g, we, qopt)
	st, err := we.Freeze(0)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		g    *graph.Graph
		opt  Options
	}{
		{"wrong seed", g, func() Options { o := opt; o.Seed = 8; return o }()},
		{"wrong pool kind", g, func() Options { o := opt; o.Pool = PoolCompressed; return o }()},
		{"wrong adaptive flag", g, func() Options { o := opt; o.AdaptiveRep = !o.AdaptiveRep; return o }()},
		{"different graph", testGraph(t, 7, graph.IC), opt},
		{"different model", testGraph(t, 8, graph.LT), opt},
	}
	for _, tc := range cases {
		if _, err := ThawWarmEngine(tc.g, tc.opt, st); !errors.Is(err, ErrPoolIncompatible) {
			t.Fatalf("%s: got %v, want ErrPoolIncompatible", tc.name, err)
		}
	}

	// Same graph, same options: still accepted.
	if _, err := ThawWarmEngine(g, opt, st); err != nil {
		t.Fatalf("matching thaw rejected: %v", err)
	}

	// Same shape and model but different edge content: the fingerprint
	// must catch it even though (N, M, model) can collide.
	st2 := *st
	st2.GraphSum++
	if _, err := ThawWarmEngine(g, opt, &st2); !errors.Is(err, ErrPoolIncompatible) {
		t.Fatalf("fingerprint mismatch: got %v, want ErrPoolIncompatible", err)
	}

	// Truncated shard payload: structural damage surfaces as a typed
	// error, never a panic.
	st3 := *st
	for s := range st3.Shards {
		if len(st3.Shards[s].ListData) > 0 {
			st3.Shards[s].ListData = st3.Shards[s].ListData[:len(st3.Shards[s].ListData)-1]
			break
		}
	}
	if _, err := ThawWarmEngine(g, opt, &st3); !errors.Is(err, ErrPoolIncompatible) {
		t.Fatalf("truncated payload: got %v, want ErrPoolIncompatible", err)
	}
}
