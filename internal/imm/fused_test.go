package imm

import (
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// The differential harness for the two generation kernels. The fused
// streaming kernel (the default) and the retained materialized kernel
// must be observationally identical: same seeds, same θ trajectory,
// same pool statistics and footprint, and bit-identical per-shard
// inverted-index CSR arrays.

// fuzzGraphs caches the small differential graphs across fuzz
// executions — graph construction dominates each exec otherwise.
var fuzzGraphs sync.Map // graph.Model -> *graph.Graph

func diffGraph(t testing.TB, model graph.Model) *graph.Graph {
	if g, ok := fuzzGraphs.Load(model); ok {
		return g.(*graph.Graph)
	}
	g, err := gen.RMAT(gen.DefaultRMAT(8, 6), model, 42)
	if err != nil {
		t.Fatal(err)
	}
	fuzzGraphs.Store(model, g)
	return g
}

// runKernel runs a full martingale trajectory on its own engine and
// returns the result plus the engine for index inspection.
func runKernel(t testing.TB, g *graph.Graph, opt Options) (*Result, *efficientEngine) {
	t.Helper()
	if err := opt.normalize(g); err != nil {
		t.Fatal(err)
	}
	eng := newEfficientEngine(g, opt)
	res, err := RunEngine(g, opt, eng)
	if err != nil {
		t.Fatal(err)
	}
	return res, eng
}

func compareKernels(t *testing.T, model graph.Model, workers int, seed uint64, compressed bool) {
	t.Helper()
	g := diffGraph(t, model)
	opt := Defaults()
	opt.K = 8
	opt.Workers = workers
	opt.Seed = seed
	opt.MaxTheta = 3000
	if compressed {
		opt.Pool = PoolCompressed
	}

	opt.Kernel = KernelFused
	fused, fe := runKernel(t, g, opt)
	opt.Kernel = KernelMaterialized
	mat, me := runKernel(t, g, opt)

	if fused.Theta != mat.Theta || fused.Rounds != mat.Rounds {
		t.Fatalf("model=%v w=%d: trajectory diverged: fused θ=%d/%d rounds, materialized θ=%d/%d",
			model, workers, fused.Theta, fused.Rounds, mat.Theta, mat.Rounds)
	}
	if len(fused.Seeds) != len(mat.Seeds) {
		t.Fatalf("model=%v w=%d: seed counts diverged", model, workers)
	}
	for i := range fused.Seeds {
		if fused.Seeds[i] != mat.Seeds[i] {
			t.Fatalf("model=%v w=%d: seed %d diverged: fused=%v materialized=%v",
				model, workers, i, fused.Seeds, mat.Seeds)
		}
	}
	if fused.Coverage != mat.Coverage {
		t.Fatalf("model=%v w=%d: coverage diverged: %v vs %v", model, workers, fused.Coverage, mat.Coverage)
	}
	if fused.SetStats != mat.SetStats {
		t.Fatalf("model=%v w=%d: pool stats diverged:\nfused:        %+v\nmaterialized: %+v",
			model, workers, fused.SetStats, mat.SetStats)
	}
	if fused.Pool != mat.Pool {
		t.Fatalf("model=%v w=%d: pool footprint diverged: %+v vs %+v", model, workers, fused.Pool, mat.Pool)
	}

	// Inverted-index postings must be bit-identical shard for shard:
	// the fused Stage-B merge and the lazy ensureIndexed build must
	// arrive at the same CSR arrays.
	for s := range fe.p.shards {
		fs, ms := &fe.p.shards[s], &me.p.shards[s]
		if fs.indexed != ms.indexed || fs.postCount != ms.postCount {
			t.Fatalf("model=%v w=%d shard %d: index extent diverged: %d/%d vs %d/%d",
				model, workers, s, fs.indexed, fs.postCount, ms.indexed, ms.postCount)
		}
		if len(fs.postIdx) != len(ms.postIdx) || len(fs.postData) != len(ms.postData) {
			t.Fatalf("model=%v w=%d shard %d: CSR shapes diverged", model, workers, s)
		}
		for v := range fs.postIdx {
			if fs.postIdx[v] != ms.postIdx[v] {
				t.Fatalf("model=%v w=%d shard %d: postIdx[%d] = %d vs %d",
					model, workers, s, v, fs.postIdx[v], ms.postIdx[v])
			}
		}
		for i := range fs.postData {
			if fs.postData[i] != ms.postData[i] {
				t.Fatalf("model=%v w=%d shard %d: postData[%d] = %d vs %d",
					model, workers, s, i, fs.postData[i], ms.postData[i])
			}
		}
	}
}

// FuzzFusedVsMaterialized pins the fused and materialized kernels
// against each other. The seed corpus covers both models × workers ∈
// {1,2,4,8} (those cases therefore run on every plain `go test`);
// fuzzing additionally explores RNG seeds, worker counts, and the
// compressed pool.
func FuzzFusedVsMaterialized(f *testing.F) {
	for _, model := range []byte{0, 1} {
		for _, w := range []byte{1, 2, 4, 8} {
			f.Add(model, w, uint16(7), false)
		}
	}
	f.Add(byte(0), byte(3), uint16(99), true)
	f.Fuzz(func(t *testing.T, modelByte, workerByte byte, seed16 uint16, compressed bool) {
		model := graph.IC
		if modelByte%2 == 1 {
			model = graph.LT
		}
		workers := int(workerByte%8) + 1
		seed := uint64(seed16)%64 + 1
		compareKernels(t, model, workers, seed, compressed)
	})
}

// TestFusedSteadyStateAllocs caps the fused path's per-set allocation
// rate at (amortized) zero: once the engine's samplers, arenas, and
// index are warm, extending the pool must not allocate per set — only
// per call (job scheduling, CSR merge scratch), which vanishes against
// thousands of sets. The materialized kernel pays 2+ allocations per
// list set (vertex copy + header), so this is also what the ≥10x
// allocation reduction rests on.
func TestFusedSteadyStateAllocs(t *testing.T) {
	g := diffGraph(t, graph.IC)
	opt := Defaults()
	opt.Workers = 1 // AllocsPerRun requires a deterministic single-goroutine hot path
	opt.AdaptiveRep = false
	opt.Seed = 7
	if err := opt.normalize(g); err != nil {
		t.Fatal(err)
	}
	eng := newEfficientEngine(g, opt)

	const step = 2048
	target := int64(step) // warm-up: allocate samplers, arenas, first index
	eng.Generate(target)
	eng.p.indexNewSets(opt.Workers)

	perRun := testing.AllocsPerRun(5, func() {
		target += step
		eng.Generate(target)
	})
	if perSet := perRun / step; perSet > 0.25 {
		t.Fatalf("fused steady-state allocations: %.1f per Generate call = %.3f per set (want amortized zero, <= 0.25)",
			perRun, perSet)
	}
}

// TestWarmServedAnswersKernelIdentical pins the warm θ-extension replay:
// a warm engine generating with the fused kernel serves byte-identical
// answers to one running the materialized kernel, across worker counts.
func TestWarmServedAnswersKernelIdentical(t *testing.T) {
	g := diffGraph(t, graph.IC)
	for _, workers := range []int{1, 4} {
		base := Defaults()
		base.K = 6
		base.Workers = workers
		base.Seed = 7
		base.MaxTheta = 3000

		answers := make(map[KernelKind][][]int32)
		for _, kernel := range []KernelKind{KernelFused, KernelMaterialized} {
			opt := base
			opt.Kernel = kernel
			w, err := NewWarmEngine(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			// Three queries of shrinking sampling requirement exercise
			// extension, full reuse, and truncated-view replay.
			for _, eps := range []float64{0.4, 0.5, 0.6} {
				q := opt
				q.Epsilon = eps
				w.BeginQuery()
				res, err := RunEngine(g, q, w)
				if err != nil {
					t.Fatal(err)
				}
				answers[kernel] = append(answers[kernel], res.Seeds)
			}
		}
		for qi := range answers[KernelFused] {
			f, m := answers[KernelFused][qi], answers[KernelMaterialized][qi]
			if len(f) != len(m) {
				t.Fatalf("workers=%d query %d: answer lengths diverged", workers, qi)
			}
			for i := range f {
				if f[i] != m[i] {
					t.Fatalf("workers=%d query %d: served answer diverged: fused=%v materialized=%v",
						workers, qi, f, m)
				}
			}
		}
	}
}
