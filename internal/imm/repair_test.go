package imm

// Differential tests of warm-pool repair: after graph.ApplyDelta, a
// repaired pool must be indistinguishable — slot contents, fused
// counter, and every future answer — from a pool generated cold on the
// post-delta graph, across models × kernels × selection × workers.

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// randomDelta derives a deterministic delta from seed: nAdd random
// additions (possibly duplicates or self-loops — ApplyDelta's silent
// mode drops them), nRemove removals of existing edges, and, when grow
// is set, one addition that extends the vertex set.
func randomDelta(g *graph.Graph, seed uint64, nAdd, nRemove int, grow bool) graph.Delta {
	r := rng.New(seed)
	d := graph.Delta{Seed: seed ^ 0x9e3779b97f4a7c15}
	for i := 0; i < nAdd; i++ {
		src := int32(r.Uint32n(uint32(g.N)))
		dst := int32(r.Uint32n(uint32(g.N)))
		d.Add = append(d.Add, graph.Edge{Src: src, Dst: dst})
	}
	for i := 0; i < nRemove && g.M > 0; i++ {
		e := int64(r.Uint32n(uint32(g.M)))
		src := int32(sort.Search(int(g.N), func(v int) bool { return g.OutIndex[v+1] > e }))
		d.Remove = append(d.Remove, graph.Edge{Src: src, Dst: g.OutEdges[e]})
	}
	if grow {
		d.Add = append(d.Add, graph.Edge{Src: 0, Dst: g.N + 1})
	}
	return d
}

// slotMembers collects slot i's members in representation order.
func slotMembers(e *efficientEngine, i int64) []int32 {
	out := []int32{}
	e.p.get(i).ForEach(func(v int32) { out = append(out, v) })
	return out
}

// assertPoolsEqual pins per-slot content and representation equality
// over the first count slots of both engines.
func assertPoolsEqual(t *testing.T, label string, warm, cold *efficientEngine, count int64) {
	t.Helper()
	for i := int64(0); i < count; i++ {
		ws, cs := warm.p.get(i), cold.p.get(i)
		if !reflect.DeepEqual(slotMembers(warm, i), slotMembers(cold, i)) {
			t.Fatalf("%s: slot %d members diverge after repair", label, i)
		}
		if ws.Bytes() != cs.Bytes() || ws.Size() != cs.Size() {
			t.Fatalf("%s: slot %d representation diverges (bytes %d vs %d)", label, i, ws.Bytes(), cs.Bytes())
		}
	}
	if warm.p.totalMembers != cold.p.totalMembers {
		t.Fatalf("%s: totalMembers %d != cold %d", label, warm.p.totalMembers, cold.p.totalMembers)
	}
}

// checkRepairDifferential is the shared scenario: warm a pool with one
// query, apply a delta with repair, and require byte-identity with a
// cold engine on the post-delta graph — pool slots, fused counter, and
// the served answer.
func checkRepairDifferential(t *testing.T, label string, g *graph.Graph, opt Options, d graph.Delta) {
	t.Helper()
	we, err := NewWarmEngine(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	runWarm(t, g, we, opt)

	ng, drep, err := graph.ApplyDelta(g, d, graph.DeltaOptions{})
	if err != nil {
		t.Fatalf("%s: ApplyDelta: %v", label, err)
	}
	rr, err := we.ApplyDelta(ng, drep)
	if err != nil {
		t.Fatalf("%s: repair: %v", label, err)
	}
	if ng.N > g.N && rr.Slots > 0 && !rr.FullResample {
		t.Fatalf("%s: vertex growth must force a full resample", label)
	}

	cold, err := NewWarmEngine(ng, opt)
	if err != nil {
		t.Fatal(err)
	}
	cold.BeginQuery()
	cold.Generate(we.PhysicalSets())
	assertPoolsEqual(t, label, we.inner, cold.inner, we.PhysicalSets())
	if we.inner.baseFresh && cold.inner.baseFresh {
		if !reflect.DeepEqual(we.inner.base.Raw(), cold.inner.base.Raw()) {
			t.Fatalf("%s: fused counter diverges after repair", label)
		}
	}

	warmRes := runWarm(t, ng, we, opt)
	coldRes, err := Run(ng, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertWarmEqualsCold(t, label, warmRes, coldRes)
}

// TestRepairMatchesColdAcrossMatrix sweeps the full configuration
// matrix with a mixed add/remove delta.
func TestRepairMatchesColdAcrossMatrix(t *testing.T) {
	for _, model := range []graph.Model{graph.IC, graph.LT} {
		for _, kernel := range []KernelKind{KernelFused, KernelMaterialized} {
			for _, sel := range []SelectionKind{SelectCELF, SelectScan} {
				for _, workers := range []int{1, 3} {
					g := testGraph(t, 7, model)
					opt := Defaults()
					opt.K = 8
					opt.Seed = 11
					opt.Workers = workers
					opt.MaxTheta = 4000
					opt.Kernel = kernel
					opt.Selection = sel
					d := randomDelta(g, 99, 6, 4, false)
					label := model.String() + "/" + kernel.String() + "/" + sel.String() + "/w" + string(rune('0'+workers))
					checkRepairDifferential(t, label, g, opt, d)
				}
			}
		}
	}
}

// TestRepairVertexGrowth pins the CSR-growth path: a delta that adds a
// brand-new max vertex id invalidates every slot (the root draw depends
// on N) and still lands byte-identical to cold.
func TestRepairVertexGrowth(t *testing.T) {
	g := testGraph(t, 7, graph.IC)
	opt := Defaults()
	opt.K = 6
	opt.Seed = 5
	opt.MaxTheta = 3000
	opt.Workers = 2
	checkRepairDifferential(t, "grow", g, opt, randomDelta(g, 17, 3, 2, true))
}

// TestRepairCompressedPool exercises the delta-varint representation
// through a repair.
func TestRepairCompressedPool(t *testing.T) {
	g := testGraph(t, 7, graph.LT)
	opt := Defaults()
	opt.K = 6
	opt.Seed = 13
	opt.MaxTheta = 3000
	opt.Workers = 2
	opt.Pool = PoolCompressed
	checkRepairDifferential(t, "compressed", g, opt, randomDelta(g, 23, 5, 3, false))
}

// TestRepairScanModeKeepsIndexUnbuilt pins that repairing a scan-mode
// pool does not build an inverted index as a side effect: the
// footprint must keep reporting IndexBytes 0, like a cold scan pool.
func TestRepairScanModeKeepsIndexUnbuilt(t *testing.T) {
	g := testGraph(t, 7, graph.IC)
	opt := Defaults()
	opt.K = 6
	opt.Seed = 3
	opt.MaxTheta = 3000
	opt.Selection = SelectScan
	we, err := NewWarmEngine(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	runWarm(t, g, we, opt)
	ng, drep, err := graph.ApplyDelta(g, randomDelta(g, 7, 4, 2, false), graph.DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := we.ApplyDelta(ng, drep); err != nil {
		t.Fatal(err)
	}
	if fp := we.PhysicalFootprint(); fp.IndexBytes != 0 {
		t.Fatalf("scan-mode repair built an index: IndexBytes = %d", fp.IndexBytes)
	}
}

// TestRepairPartialInvalidation pins the point of the whole exercise:
// a small delta must resample strictly fewer slots than the pool holds
// (otherwise repair is cold regeneration with extra steps).
func TestRepairPartialInvalidation(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	opt := Defaults()
	opt.K = 8
	opt.Seed = 21
	opt.MaxTheta = 6000
	we, err := NewWarmEngine(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	runWarm(t, g, we, opt)
	// One removed edge dirties one vertex; only sets containing it are
	// invalid.
	var src int32 = -1
	for v := int32(0); v < g.N; v++ {
		if g.OutDegree(v) > 0 {
			src = v
			break
		}
	}
	if src < 0 {
		t.Fatal("test graph has no edges")
	}
	d := graph.Delta{Remove: []graph.Edge{{Src: src, Dst: g.OutEdges[g.OutIndex[src]]}}, Seed: 2}
	ng, drep, err := graph.ApplyDelta(g, d, graph.DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !drep.Changed() {
		t.Skip("delta was a no-op on this graph")
	}
	rr, err := we.ApplyDelta(ng, drep)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Resampled >= rr.Slots {
		t.Fatalf("single-edge delta resampled the whole pool: %d of %d", rr.Resampled, rr.Slots)
	}
	res := runWarm(t, ng, we, opt)
	coldRes, err := Run(ng, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertWarmEqualsCold(t, "partial", res, coldRes)
}

// FuzzRepairDifferential is the fuzz form of the differential check:
// arbitrary (seed, delta shape, configuration) tuples must all land
// byte-identical to cold.
func FuzzRepairDifferential(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(2), uint8(0))
	f.Add(uint64(2), uint8(0), uint8(0), uint8(1))
	f.Add(uint64(3), uint8(12), uint8(6), uint8(2))
	f.Add(uint64(4), uint8(1), uint8(0), uint8(3))
	f.Add(uint64(5), uint8(7), uint8(7), uint8(4))
	f.Add(uint64(6), uint8(3), uint8(1), uint8(5))
	f.Add(uint64(7), uint8(9), uint8(0), uint8(6))
	f.Add(uint64(8), uint8(0), uint8(5), uint8(7))
	f.Fuzz(func(t *testing.T, seed uint64, nAdd, nRemove, cfg uint8) {
		model := graph.IC
		if cfg&1 != 0 {
			model = graph.LT
		}
		opt := Defaults()
		opt.K = 6
		opt.Seed = seed | 1
		opt.MaxTheta = 2000
		opt.Workers = 1 + int(cfg>>4&3)
		if cfg&2 != 0 {
			opt.Kernel = KernelMaterialized
		}
		if cfg&4 != 0 {
			opt.Selection = SelectScan
		}
		if cfg&8 != 0 {
			opt.Pool = PoolCompressed
		}
		g := testGraph(t, 6, model)
		d := randomDelta(g, seed, int(nAdd), int(nRemove), cfg&64 != 0)
		checkRepairDifferential(t, "fuzz", g, opt, d)
	})
}
