package imm

import (
	"sort"

	"repro/internal/cachesim"
	"repro/internal/graph"
	"repro/internal/memmodel"
	"repro/internal/rrr"
)

// traceBinarySearchRange performs the sorted-list range location used by
// the Ripples kernel and feeds each probed element into the trace.
func traceBinarySearchRange(raw []int32, vl, vh int32, si int, touch func(int, int)) (int, int) {
	lo := sort.Search(len(raw), func(i int) bool {
		touch(si, i)
		return raw[i] >= vl
	})
	hi := lo + sort.Search(len(raw)-lo, func(i int) bool {
		touch(si, lo+i)
		return raw[lo+i] >= vh
	})
	return lo, hi
}

// traceContains performs a traced binary-search membership probe.
func traceContains(raw []int32, v int32, si int, touch func(int, int)) bool {
	i := sort.Search(len(raw), func(i int) bool {
		touch(si, i)
		return raw[i] >= v
	})
	return i < len(raw) && raw[i] == v
}

// traceEfficientSelection replays EFFICIENTIMM's set-partitioned kernel:
// one streaming pass over the partitioned sets to build the global
// counter, then per round a single containment probe per surviving set
// and a decrement walk over only the newly covered sets (decrement
// strategy; the rebuild path would touch even less on the skewed cases).
func traceEfficientSelection(g *graph.Graph, pool *setPool, k int,
	touchMember func(int, int), touchCounter func(int32), h *cachesim.Hierarchy, countersRegion memmodel.Region) {

	n := int(g.N)
	counts := make([]int64, n)
	// Fused/streaming count: each set is touched exactly once, in slab
	// order — the cache-friendly pattern partitioning buys.
	for si, set := range pool.sets {
		raw := set.(*rrr.ListSet).Raw()
		for j, v := range raw {
			touchMember(si, j)
			counts[v]++
			touchCounter(v)
		}
	}
	covered := make([]bool, len(pool.sets))
	for round := 0; round < k; round++ {
		v := argMaxPlain(counts, 1)
		if v < 0 {
			break
		}
		counts[v] = -1
		// Regional-maxima reduction reads the counter array once.
		h.AccessRange(countersRegion.Addr(0), int64(n)*8)
		for si, set := range pool.sets {
			if covered[si] {
				continue
			}
			raw := set.(*rrr.ListSet).Raw()
			if !traceContains(raw, v, si, touchMember) {
				continue
			}
			covered[si] = true
			for j, u := range raw {
				touchMember(si, j)
				if counts[u] >= 0 {
					counts[u]--
					touchCounter(u)
				}
			}
		}
	}
}
