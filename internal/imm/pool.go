package imm

import (
	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/rrr"
	"repro/internal/sched"
)

// poolStore is the write side of an RRR pool: generation fills
// pre-grown slots by global set id. Two implementations exist — the flat
// setPool the Ripples baseline and the instrumented traces keep, and the
// sharded pool (shardpool.go) behind the Efficient engine. Slots are
// written at most once and by one worker, so put needs no locking.
type poolStore interface {
	vertexCount() int32
	put(i int64, set rrr.Set)
	addMembers(perWorker []int64)
}

// setPool holds the RRR sets generated so far. Generation appends;
// selection never mutates it, so the pool can keep growing across the
// θ-estimation iterations exactly as Algorithm 1 requires.
type setPool struct {
	n            int32
	sets         []rrr.Set
	totalMembers int64
}

func newSetPool(n int32) *setPool { return &setPool{n: n} }

// grow extends the pool with empty slots up to target and returns the
// previous length.
func (p *setPool) grow(target int64) (from, to int64) {
	from = int64(len(p.sets))
	if target <= from {
		return from, from
	}
	p.sets = append(p.sets, make([]rrr.Set, target-from)...)
	return from, target
}

func (p *setPool) vertexCount() int32       { return p.n }
func (p *setPool) put(i int64, set rrr.Set) { p.sets[i] = set }
func (p *setPool) stats() rrr.Stats         { return rrr.Summarize(p.n, p.sets) }

// buildSet finalizes one sampled vertex list into a Set. Representation
// choice lives in rrr.Policy.BuildScratch — the one dispatch shared with
// every other front-end — which sorts only when a list or compressed
// representation is chosen (the paper's baseline sorts every set;
// EFFICIENTIMM skips the sort for bitmaps).
func buildSet(n int32, policy rrr.Policy, buf []int32) rrr.Set {
	return policy.BuildScratch(n, buf)
}

// generateInto is the one slot-sampling loop every generation path goes
// through: it fills out[i] with the set for global slot lo+int64(i). RNG
// streams are derived from the slot index, so pool contents are
// identical for any worker count, schedule, engine, and rank
// partitioning — which is what lets the tests compare engines and the
// distributed runtime seed-for-seed.
func generateInto(n int32, policy rrr.Policy, seed uint64, s *diffusion.Sampler, lo int64, out []rrr.Set) (members int64) {
	var buf []int32
	for i := range out {
		r := rng.NewStream(seed, int(lo+int64(i)))
		buf = s.SampleUniformRoot(r, buf[:0])
		out[i] = buildSet(n, policy, buf)
		members += int64(len(buf))
	}
	return members
}

// generateJob fills pool slots [start, end) from the slot-indexed RNG
// streams, writing each finished set through the store.
func generateJob(store poolStore, policy rrr.Policy, seed uint64, s *diffusion.Sampler, start, end int64) (members int64) {
	n := store.vertexCount()
	var buf []int32
	for i := start; i < end; i++ {
		r := rng.NewStream(seed, int(i))
		buf = s.SampleUniformRoot(r, buf[:0])
		store.put(i, buildSet(n, policy, buf))
		members += int64(len(buf))
	}
	return members
}

// GenerateSlots fills out[i] with the RRR set for global slot lo+int64(i),
// drawing each set from the slot-indexed RNG stream that makes pool
// contents identical across worker counts, schedules, and engines. It is
// the generation hook for distributed front-ends (internal/dist): a rank
// owning slots [lo, lo+len(out)) produces exactly the sets a
// shared-memory Run would have placed there. Returns the produced member
// count and the edges visited (the sampling work metric).
func GenerateSlots(g *graph.Graph, policy rrr.Policy, seed uint64, lo int64, out []rrr.Set) (members, edges int64) {
	smp := diffusion.NewSampler(g)
	members = generateInto(g.N, policy, seed, smp, lo, out)
	return members, smp.EdgesVisited
}

// ModeledSortCost is the modeled comparison cost of building setCount
// sets totaling memberCount members under policy: list sets are sorted
// at |R|·log2(avg|R|) comparisons, and under an adaptive policy only the
// sub-threshold (list) share is charged — bitmap construction needs no
// order. Shared by the engines and the distributed runtime so their
// SamplingModeled figures stay comparable.
func ModeledSortCost(policy rrr.Policy, n int32, memberCount, setCount int64) int64 {
	if setCount < 1 {
		setCount = 1
	}
	sortable := memberCount
	if policy.Adaptive {
		cut := int64(float64(n) * policy.DensityThreshold * float64(setCount))
		if sortable > cut {
			sortable = cut
		}
	}
	avg := float64(memberCount) / float64(setCount)
	return int64(float64(sortable) * log2f(avg+2))
}

// generateStatic is the baseline generation schedule: the new range is
// split into p contiguous chunks, one per worker (OpenMP static). Set
// sizes vary wildly, so the slowest chunk gates the phase — the
// imbalance the paper's dynamic balancing removes.
// Returns per-worker edge-visit counts (the sampling work metric) and
// the per-worker produced member counts.
func generateStatic(g *graph.Graph, pool poolStore, policy rrr.Policy, seed uint64, workers int, from, to int64) (edges, members []int64) {
	count := int(to - from)
	edges = make([]int64, workers)
	members = make([]int64, workers)
	if count <= 0 {
		return edges, members
	}
	sched.Static(workers, count, func(w, s0, e0 int) {
		smp := diffusion.NewSampler(g)
		m := generateJob(pool, policy, seed, smp, from+int64(s0), from+int64(e0))
		edges[w] += smp.EdgesVisited
		members[w] += m
	})
	pool.addMembers(members)
	return edges, members
}

// generateDynamic is EFFICIENTIMM's producer/consumer schedule: the new
// range is cut into batch-sized jobs spread over per-worker deques with
// stealing. onSet, when non-nil, runs in the producing worker right
// after each set is built — the kernel-fusion hook that folds the
// global-counter update into generation.
//
// The returned edges/members are per executing worker (wall-clock
// accounting on the physical machine). maxJob is the costliest single
// job (edge visits plus build work), which together with the total cost
// gives the greedy-scheduling critical-path bound total/p + maxJob that
// the modeled runtime uses — per-executor sums would reflect the number
// of physical cores the goroutines happened to run on, not the worker
// count being simulated.
func generateDynamic(g *graph.Graph, pool poolStore, policy rrr.Policy, seed uint64, workers, batch int, from, to int64, onSet func(worker int, set rrr.Set)) (edges, members []int64, maxJob int64) {
	count := to - from
	edges = make([]int64, workers)
	members = make([]int64, workers)
	if count <= 0 {
		return edges, members, 0
	}
	if batch < 1 {
		batch = 1
	}
	jobs := (count + int64(batch) - 1) / int64(batch)
	// samplers[w] and jobMax[w] are only ever touched by worker w, so
	// lazy initialization needs no lock.
	samplers := make([]*diffusion.Sampler, workers)
	jobMax := make([]int64, workers)
	sched.WorkStealing(workers, jobs, func(w int, job int64) {
		if samplers[w] == nil {
			samplers[w] = diffusion.NewSampler(g)
		}
		smp := samplers[w]
		s0 := from + job*int64(batch)
		e0 := s0 + int64(batch)
		if e0 > to {
			e0 = to
		}
		edgesBefore := smp.EdgesVisited
		var jobMembers int64
		var buf []int32
		n := pool.vertexCount()
		for i := s0; i < e0; i++ {
			r := rng.NewStream(seed, int(i))
			buf = smp.SampleUniformRoot(r, buf[:0])
			set := buildSet(n, policy, buf)
			pool.put(i, set)
			members[w] += int64(len(buf))
			jobMembers += int64(len(buf))
			if onSet != nil {
				onSet(w, set)
			}
		}
		if cost := (smp.EdgesVisited - edgesBefore) + 3*jobMembers; cost > jobMax[w] {
			jobMax[w] = cost
		}
	})
	for w, smp := range samplers {
		if smp != nil {
			edges[w] = smp.EdgesVisited
		}
	}
	pool.addMembers(members)
	return edges, members, maxOf(jobMax)
}

func (p *setPool) addMembers(perWorker []int64) {
	for _, m := range perWorker {
		p.totalMembers += m
	}
}

// maxOf returns the maximum element, the critical-path reduction used by
// the modeled runtime.
func maxOf(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func sumOf(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}
