package imm

import (
	"repro/internal/bitset"
	"repro/internal/rrr"
	"repro/internal/sched"
)

// The sharded RRR pool behind the Efficient engine. Set ids are struck
// round-robin across a fixed number of shards (fixed so that nothing
// about the pool layout — and therefore nothing about selection —
// depends on the worker count). Each shard owns:
//
//   - the sets themselves, in whatever representation the policy chose
//     (plain lists, delta-encoded compressed lists, or bitset rows);
//   - an inverted index mapping vertex → ids of the shard's sets that
//     contain it, extended incrementally as the pool grows, so coverage
//     updates during selection walk compact postings instead of
//     re-scanning (and, for compressed sets, re-decoding) every set;
//   - a coverage scratch bitset reused across selection calls.
//
// Shards give the two expensive maintenance passes — index extension
// after generation and posting walks during selection — a natural
// parallel grain that is independent of the simulated worker count.

// poolShards is the fixed shard count. A power of two keeps the id
// mapping a mask/shift; 16 shards keep per-shard postings balanced (ids
// are striped) while giving up to 16 workers independent work.
const poolShards = 16

// PoolFootprint reports where an engine's RRR pool memory went.
// SetBytes is the resident representation (the paper's Table III
// quantity), IndexBytes the inverted-index postings that CELF selection
// walks, RawBytes the 4-bytes-per-member cost of holding the
// same pool as plain []int32 slices — the compression baseline.
type PoolFootprint struct {
	SetBytes   int64
	IndexBytes int64
	RawBytes   int64
}

// TotalBytes is the full resident footprint, sets plus index.
func (f PoolFootprint) TotalBytes() int64 { return f.SetBytes + f.IndexBytes }

// CompressionRatio is raw-slice bytes over resident set bytes (>1 means
// the representation beats plain slices).
func (f PoolFootprint) CompressionRatio() float64 {
	if f.SetBytes == 0 {
		return 1
	}
	return float64(f.RawBytes) / float64(f.SetBytes)
}

// poolShard is one stripe of the pool. Entry j holds global set id
// j*poolShards + (shard index).
type poolShard struct {
	sets []rrr.Set

	// Inverted index over sets[:indexed] in CSR layout: the local entry
	// ids whose set contains v are postData[postIdx[v]:postIdx[v+1]], in
	// ascending order. One flat payload array per shard replaces the
	// per-vertex posting slices the pool used to keep, so index growth
	// costs two allocations per shard per extension instead of one per
	// touched vertex, and posting walks stream a contiguous array. Once
	// built, selection works entirely on postings and never touches (or,
	// for compressed sets, decodes) a set representation again.
	postIdx  []int32 // len n+1 once built
	postData []int32
	covered  *bitset.Bitset // selection scratch over entries, reset per call
	indexed  int

	postCount int64 // total postings (one per member)
}

// postings returns the local entry ids of sets[:indexed] containing v,
// ascending. Nil until the index is first built.
func (s *poolShard) postings(v int32) []int32 {
	if s.postIdx == nil {
		return nil
	}
	return s.postData[s.postIdx[v]:s.postIdx[v+1]]
}

// extend indexes entries [indexed, len(sets)) and returns the member
// count absorbed — the modeled work of the pass (a decode step and a
// posting append per member). The new postings are merged into the CSR
// layout by counting sort: one pass counts per-vertex additions, a
// prefix sum over old+new segment lengths sizes the merged payload, and
// a copy pass fills it using the offset array as write cursors (shifted
// back into place afterwards). Entry ids stay ascending within each
// vertex segment because old postings precede new ones and new entries
// are absorbed in ascending local id order — the invariant the
// truncated-view binary search (postPrefix) relies on.
func (s *poolShard) extend(n int32) (members int64) {
	if s.indexed == len(s.sets) {
		if s.covered == nil {
			s.covered = bitset.New(s.indexed)
		}
		return 0
	}
	nn := int(n)
	off := make([]int32, nn+1)
	count := func(v int32) { off[v+1]++ } // hoisted: one closure per pass, not per set
	for j := s.indexed; j < len(s.sets); j++ {
		set := s.sets[j]
		set.ForEach(count)
		members += int64(set.Size())
	}
	// Turn counts into merged segment starts: off[v+1] becomes
	// start(v+1) = start(v) + oldLen(v) + newCount(v).
	if s.postIdx == nil {
		for v := 0; v < nn; v++ {
			off[v+1] += off[v]
		}
	} else {
		for v := 0; v < nn; v++ {
			off[v+1] += off[v] + (s.postIdx[v+1] - s.postIdx[v])
		}
	}
	data := make([]int32, off[nn])
	// Fill, advancing off[v] as the segment-v write cursor: old postings
	// first, then the new entries in ascending id order.
	if s.postIdx != nil {
		for v := 0; v < nn; v++ {
			seg := s.postData[s.postIdx[v]:s.postIdx[v+1]]
			copy(data[off[v]:], seg)
			off[v] += int32(len(seg))
		}
	}
	var jj int32
	fill := func(v int32) { data[off[v]] = jj; off[v]++ }
	for j := s.indexed; j < len(s.sets); j++ {
		jj = int32(j)
		s.sets[j].ForEach(fill)
	}
	// Each cursor now sits at its segment's end == the next segment's
	// start; shift right to recover the CSR index in place.
	copy(off[1:], off[:nn])
	off[0] = 0
	s.postIdx, s.postData = off, data
	s.postCount += members
	s.indexed = len(s.sets)
	if s.covered == nil {
		s.covered = bitset.New(s.indexed)
	} else {
		s.covered.Grow(s.indexed)
	}
	return members
}

// shardedPool is the Efficient engine's pool: grow/put during
// generation, ensureIndexed + CELF during selection.
type shardedPool struct {
	n            int32
	count        int64
	totalMembers int64
	shards       [poolShards]poolShard
	// flat caches the id-ordered view for scan-mode selection. Slots
	// are write-once, so the cache only ever extends — never
	// invalidates.
	flat []rrr.Set
	// bytePrefix[i] / memberPrefix[i] hold the summed Bytes()/Size() of
	// sets [0, i), extended lazily like flat. They make the footprint
	// and truncated-view accounting O(1) per query instead of an
	// O(pool) rescan — the warm-serving hot path asks for both on every
	// request. Guarded by the same serialization as selection (the
	// engine runs one query at a time).
	bytePrefix   []int64
	memberPrefix []int64
	// gainScratch/versionScratch are the CELF kernel's per-call vertex
	// arrays, retained across selections so a batch of prefix answers
	// on a warm pool (many selections per round trip) does not
	// re-allocate 12 bytes per vertex per estimation round. Guarded by
	// the same one-query-at-a-time serialization as selection.
	gainScratch    []int64
	versionScratch []int32
}

func newShardedPool(n int32) *shardedPool { return &shardedPool{n: n} }

// shardOf maps a global set id to (shard, local entry id).
func shardOf(i int64) (int, int) { return int(i % poolShards), int(i / poolShards) }

// localLimit returns how many of shard s's entries hold global ids below
// limit — the per-shard horizon of a logically truncated pool view. Ids
// are striped round-robin, so shard s holds ids s, s+poolShards, ...
func localLimit(s int, limit int64) int {
	if int64(s) >= limit {
		return 0
	}
	return int((limit-1-int64(s))/poolShards) + 1
}

func (p *shardedPool) vertexCount() int32 { return p.n }
func (p *shardedPool) len() int64         { return p.count }

// grow pre-sizes every shard for ids up to target and returns the
// previous and new pool lengths.
func (p *shardedPool) grow(target int64) (from, to int64) {
	from = p.count
	if target <= from {
		return from, from
	}
	for s := range p.shards {
		// Entries shard s must hold for ids < target.
		need := int((target - int64(s) + poolShards - 1) / poolShards)
		sh := &p.shards[s]
		if need > len(sh.sets) {
			sh.sets = append(sh.sets, make([]rrr.Set, need-len(sh.sets))...)
		}
	}
	p.count = target
	return from, target
}

// put stores the set for global id i. Distinct ids map to distinct
// slots, so concurrent generation workers need no locking.
func (p *shardedPool) put(i int64, set rrr.Set) {
	s, j := shardOf(i)
	p.shards[s].sets[j] = set
}

// get returns the set for global id i.
func (p *shardedPool) get(i int64) rrr.Set {
	s, j := shardOf(i)
	return p.shards[s].sets[j]
}

func (p *shardedPool) addMembers(perWorker []int64) {
	for _, m := range perWorker {
		p.totalMembers += m
	}
}

// ensureIndexed extends every shard's inverted index over the entries
// generated since the last selection, in parallel across shards, and
// charges the decode-and-append work (2 ops per member) to the
// executing workers. Idempotent and cheap when nothing is new.
func (p *shardedPool) ensureIndexed(workers int, ops []int64) {
	sched.Static(workers, poolShards, func(w, s0, s1 int) {
		for s := s0; s < s1; s++ {
			ops[w] += 2 * p.shards[s].extend(p.n)
		}
	})
}

// stats summarizes the pool in one walk over the shards.
func (p *shardedPool) stats() rrr.Stats { return p.statsUpTo(p.count) }

// statsUpTo summarizes the logically truncated view holding only global
// set ids below limit — what a pool that had stopped growing at θ=limit
// would report. The warm-serving engine uses it so a reused pool's
// result statistics match a cold run's exactly.
func (p *shardedPool) statsUpTo(limit int64) rrr.Stats {
	if limit > p.count {
		limit = p.count
	}
	var st rrr.Stats
	for i := int64(0); i < limit; i++ {
		st.Add(p.get(i))
	}
	st.Finalize(p.n)
	return st
}

// extendPrefixes grows the lazy byte/member prefix sums to cover set
// ids below limit. Amortized O(new sets) across a pool's lifetime.
func (p *shardedPool) extendPrefixes(limit int64) {
	if p.bytePrefix == nil {
		p.bytePrefix = []int64{0}
		p.memberPrefix = []int64{0}
	}
	for int64(len(p.bytePrefix)) <= limit {
		i := int64(len(p.bytePrefix)) - 1
		set := p.get(i)
		p.bytePrefix = append(p.bytePrefix, p.bytePrefix[i]+set.Bytes())
		p.memberPrefix = append(p.memberPrefix, p.memberPrefix[i]+int64(set.Size()))
	}
}

// membersUpTo returns Σ|R| over global set ids below limit.
func (p *shardedPool) membersUpTo(limit int64) int64 {
	if limit >= p.count {
		return p.totalMembers
	}
	p.extendPrefixes(limit)
	return p.memberPrefix[limit]
}

// bytesUpTo returns the summed set representation bytes below limit.
func (p *shardedPool) bytesUpTo(limit int64) int64 {
	if limit > p.count {
		limit = p.count
	}
	p.extendPrefixes(limit)
	return p.bytePrefix[limit]
}

// footprint reports resident pool bytes as they stand: set payloads for
// the whole pool, index bytes only for what selection actually indexed.
// A scan-mode run therefore reports IndexBytes 0 — it never builds the
// inverted view — which is the memory/selection-speed trade-off the
// harness sweep measures.
func (p *shardedPool) footprint() PoolFootprint {
	f := PoolFootprint{SetBytes: p.bytesUpTo(p.count)}
	for s := range p.shards {
		// Postings payload: 4 bytes per member. The index really is CSR
		// now (postIdx/postData); the n+1 offset array is a fixed
		// per-shard overhead excluded here so the figure stays
		// comparable across pool sizes.
		f.IndexBytes += 4 * p.shards[s].postCount
	}
	f.RawBytes = 4 * p.totalMembers
	return f
}

// footprintUpTo reports the footprint of the truncated view over global
// set ids below limit, as a cold pool of that size would have reported
// it after a CELF selection (index fully built over the view).
func (p *shardedPool) footprintUpTo(limit int64) PoolFootprint {
	if limit >= p.count {
		return p.footprint()
	}
	f := PoolFootprint{SetBytes: p.bytesUpTo(limit)}
	members := p.membersUpTo(limit)
	// Charge index bytes only when selection actually built the inverted
	// view (a scan-mode pool never does and reports IndexBytes 0, the
	// same trade-off the full footprint reports).
	for s := range p.shards {
		if p.shards[s].indexed > 0 {
			f.IndexBytes = 4 * members
			break
		}
	}
	f.RawBytes = 4 * members
	return f
}

// flatten returns the id-ordered []rrr.Set view the scan-mode selection
// and the round-trip tests consume, extending the cached view over any
// sets generated since the last call. Callers must not mutate it.
func (p *shardedPool) flatten() []rrr.Set {
	for i := int64(len(p.flat)); i < p.count; i++ {
		p.flat = append(p.flat, p.get(i))
	}
	return p.flat
}
