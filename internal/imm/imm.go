// Package imm implements Influence Maximization via Martingales (Tang et
// al., SIGMOD'15) with two interchangeable parallel engines:
//
//   - EngineRipples: a faithful Go port of the Ripples framework's
//     parallelization (Minutoli et al., CLUSTER'19) — static sampling
//     partitions, sorted RRR set lists, and a vertex-partitioned seed
//     selection in which every worker scans every RRR set with binary
//     search. This is the paper's baseline, bottlenecks included.
//
//   - EngineEfficient: the paper's EFFICIENTIMM — RRR-set partitioning
//     with a global atomic occurrence counter, kernel fusion of
//     generation and counting, adaptive set representation, adaptive
//     counter updates, and dynamic job balancing. Each optimization can
//     be toggled independently for ablation studies.
//
// The driver (Run) performs the martingale θ estimation shared by both
// engines and reports a per-phase wall-clock and modeled-work breakdown.
package imm

import (
	"fmt"
	"math"
	"time"

	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/rrr"
	"repro/internal/stats"
)

// EngineKind selects the parallel implementation.
type EngineKind int

const (
	// Ripples is the baseline engine.
	Ripples EngineKind = iota
	// Efficient is the optimized engine (the paper's contribution).
	Efficient
)

func (e EngineKind) String() string {
	switch e {
	case Ripples:
		return "ripples"
	case Efficient:
		return "efficientimm"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(e))
	}
}

// ParseEngine converts an engine name to an EngineKind.
func ParseEngine(s string) (EngineKind, error) {
	switch s {
	case "ripples":
		return Ripples, nil
	case "efficient", "efficientimm", "eimm":
		return Efficient, nil
	}
	return 0, fmt.Errorf("imm: unknown engine %q (want ripples or efficientimm)", s)
}

// PoolKind selects the RRR pool representation of the Efficient engine
// (and the distributed runtime, which builds its rank pools under the
// same policy).
type PoolKind int

const (
	// PoolSlices stores sub-threshold sets as plain sorted []int32
	// lists — the original representation.
	PoolSlices PoolKind = iota
	// PoolCompressed stores sub-threshold sets as delta-varint-encoded
	// member lists; dense sets still become bitset rows under
	// AdaptiveRep. Set contents are identical, so seeds are unaffected.
	PoolCompressed
)

func (p PoolKind) String() string {
	if p == PoolCompressed {
		return "compressed"
	}
	return "slices"
}

// ParsePool converts a pool name ("slices" or "compressed") to a
// PoolKind.
func ParsePool(s string) (PoolKind, error) {
	switch s {
	case "slices", "slice", "lists":
		return PoolSlices, nil
	case "compressed", "compress", "delta":
		return PoolCompressed, nil
	}
	return 0, fmt.Errorf("imm: unknown pool %q (want slices or compressed)", s)
}

// SelectionKind selects the Efficient engine's seed-selection kernel.
// Both kernels return byte-identical seed sequences; they differ only in
// how much work they do to find each argmax.
type SelectionKind int

const (
	// SelectCELF is the parallel lazy-greedy selection over the pool's
	// inverted index — the default.
	SelectCELF SelectionKind = iota
	// SelectScan is the eager argmax-and-update kernel with the
	// decrement/rebuild counter strategies (the Figure 5 ablation path).
	SelectScan
)

func (s SelectionKind) String() string {
	if s == SelectScan {
		return "scan"
	}
	return "celf"
}

// ParseSelection converts a selection name ("celf" or "scan") to a
// SelectionKind.
func ParseSelection(s string) (SelectionKind, error) {
	switch s {
	case "celf", "lazy":
		return SelectCELF, nil
	case "scan", "eager":
		return SelectScan, nil
	}
	return 0, fmt.Errorf("imm: unknown selection %q (want celf or scan)", s)
}

// KernelKind selects the Efficient engine's generation kernel. Both
// kernels produce byte-identical pools, seeds, and θ trajectories (slot
// indexed RNG streams and a shared representation dispatch); they differ
// in how many passes and allocations each produced set costs.
type KernelKind int

const (
	// KernelFused is the streaming kernel (fused.go): traversal emits
	// each member through the visitor seam directly into per-worker
	// arena storage, the fusion counter, and the per-shard inverted
	// index — no intermediate per-set allocation. The default.
	KernelFused KernelKind = iota
	// KernelMaterialized is the legacy produce-then-scan pipeline,
	// retained as the differential-testing reference.
	KernelMaterialized
)

func (k KernelKind) String() string {
	if k == KernelMaterialized {
		return "materialized"
	}
	return "fused"
}

// ParseKernel converts a kernel name ("fused" or "materialized") to a
// KernelKind.
func ParseKernel(s string) (KernelKind, error) {
	switch s {
	case "fused", "streaming":
		return KernelFused, nil
	case "materialized", "legacy":
		return KernelMaterialized, nil
	}
	return 0, fmt.Errorf("imm: unknown kernel %q (want fused or materialized)", s)
}

// Options configures a Run. The zero value is not valid; use Defaults and
// override.
type Options struct {
	K       int     // seed set size
	Epsilon float64 // approximation parameter ε
	Ell     float64 // failure-probability exponent (quality 1 - n^-Ell)
	Workers int     // parallel workers
	Seed    uint64  // base RNG seed; runs are reproducible per seed
	Engine  EngineKind

	// EngineEfficient optimization switches (ignored by Ripples). All
	// default to enabled via Defaults; ablation benches disable one at a
	// time.
	Fusion         bool                   // fold counter build into generation
	AdaptiveRep    bool                   // bitmap representation for dense sets
	Update         counter.UpdateStrategy // seed-retirement counter maintenance
	DynamicBalance bool                   // work-stealing generation
	RepThreshold   float64                // density threshold for AdaptiveRep (0 = default)

	// Pool selects the RRR storage representation (PoolSlices or
	// PoolCompressed). Ignored by Ripples, which always stores plain
	// lists.
	Pool PoolKind
	// Selection selects the Efficient engine's selection kernel
	// (SelectCELF or SelectScan). Seeds are identical either way.
	Selection SelectionKind
	// Kernel selects the Efficient engine's generation kernel
	// (KernelFused or KernelMaterialized). Pools and seeds are
	// byte-identical either way; the fused kernel streams each set into
	// storage, counter, and index in one pass.
	Kernel KernelKind

	// BatchSize is the generation job granularity in RRR sets.
	BatchSize int
	// MaxTheta caps the number of RRR sets, guarding pathological LT
	// runs on tiny lower bounds. 0 means uncapped.
	MaxTheta int64
	// TargetCoverage, when in (0,1], enables OPIM-style early
	// termination (Tang et al., SIGMOD'18, discussed in the paper's
	// related work): sampling stops as soon as an estimation round's
	// seed set already covers the requested fraction of the sampled RRR
	// sets. The (1-1/e-ε) guarantee is then waived in exchange for a
	// much smaller θ — the resource-constrained trade the OPIM line of
	// work targets.
	TargetCoverage float64
}

// Defaults returns the options used throughout the paper's evaluation:
// k=50, ε=0.5, all optimizations on.
func Defaults() Options {
	return Options{
		K:              50,
		Epsilon:        0.5,
		Ell:            1,
		Workers:        1,
		Seed:           1,
		Engine:         Efficient,
		Fusion:         true,
		AdaptiveRep:    true,
		Update:         counter.AdaptiveUpdate,
		DynamicBalance: true,
		Pool:           PoolSlices,
		Selection:      SelectCELF,
		Kernel:         KernelFused,
		BatchSize:      64,
	}
}

func (o *Options) normalize(g *graph.Graph) error {
	if g == nil || g.N == 0 {
		return fmt.Errorf("imm: empty graph")
	}
	if o.K <= 0 {
		return fmt.Errorf("imm: K must be positive, got %d", o.K)
	}
	if o.K > int(g.N) {
		o.K = int(g.N)
	}
	if !(o.Epsilon > 0 && o.Epsilon < 1) { // also rejects NaN
		return fmt.Errorf("imm: Epsilon must lie in (0,1), got %v", o.Epsilon)
	}
	if o.Ell <= 0 {
		o.Ell = 1
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.BatchSize < 1 {
		o.BatchSize = 64
	}
	if o.Pool != PoolSlices && o.Pool != PoolCompressed {
		return fmt.Errorf("imm: unknown pool kind %d", int(o.Pool))
	}
	if o.Selection != SelectCELF && o.Selection != SelectScan {
		return fmt.Errorf("imm: unknown selection kind %d", int(o.Selection))
	}
	if o.Kernel != KernelFused && o.Kernel != KernelMaterialized {
		return fmt.Errorf("imm: unknown kernel kind %d", int(o.Kernel))
	}
	return nil
}

// Breakdown is the per-phase cost report. Wall durations are measured;
// Modeled values are critical-path work in abstract cost units (the
// maximum over workers of their accounted operations, summed across
// phase invocations), which is how the scaling figures extrapolate
// beyond the physical core count.
type Breakdown struct {
	SamplingWall  time.Duration
	SelectionWall time.Duration
	TotalWall     time.Duration

	SamplingModeled  float64
	SelectionModeled float64
}

// OtherWall returns driver overhead outside the two kernels.
func (b Breakdown) OtherWall() time.Duration {
	o := b.TotalWall - b.SamplingWall - b.SelectionWall
	if o < 0 {
		return 0
	}
	return o
}

// TotalModeled returns the summed modeled cost.
func (b Breakdown) TotalModeled() float64 { return b.SamplingModeled + b.SelectionModeled }

// Result is the outcome of a Run.
type Result struct {
	Seeds    []int32
	Coverage float64 // fraction of final RRR sets covered by Seeds
	Theta    int64   // final number of RRR sets
	Rounds   int     // θ-estimation iterations executed
	LB       float64 // OPT lower bound from the estimation loop

	Breakdown Breakdown
	SetStats  rrr.Stats
	// Pool is the peak resident footprint of the RRR pool: set bytes,
	// inverted-index bytes, and the plain-slice baseline the compression
	// ratio is measured against.
	Pool PoolFootprint

	Engine  EngineKind
	Workers int
}

// Engine is the contract the θ-estimation driver programs against. It is
// exported so alternative front-ends — in particular the simulated
// distributed-memory runtime in internal/dist — can drive their own pool
// management through exactly the same martingale loop as Run, which is
// what guarantees their θ trajectory (rounds, lower bound, final θ)
// matches the shared-memory engines sample for sample.
type Engine interface {
	// Generate extends the pool to at least target sets.
	Generate(target int64)
	// SelectSeeds greedily picks k seeds without consuming the pool and
	// returns them with the covered fraction.
	SelectSeeds(k int) ([]int32, float64)
	// SetCount returns the current pool size.
	SetCount() int64
	// Stats summarizes the pool representations.
	Stats() rrr.Stats
	// PoolFootprint reports the resident pool bytes (sets, index, and
	// the raw-slice baseline).
	PoolFootprint() PoolFootprint
	// Breakdown returns accumulated phase costs.
	Breakdown() Breakdown
}

// NewEngine constructs the shared-memory engine selected by opt.Engine.
func NewEngine(g *graph.Graph, opt Options) (Engine, error) {
	switch opt.Engine {
	case Ripples:
		return newRipplesEngine(g, opt), nil
	case Efficient:
		return newEfficientEngine(g, opt), nil
	default:
		return nil, fmt.Errorf("imm: unknown engine %v", opt.Engine)
	}
}

// Run executes IMM on g and returns the selected seeds.
func Run(g *graph.Graph, opt Options) (*Result, error) {
	if err := opt.normalize(g); err != nil {
		return nil, err
	}
	eng, err := NewEngine(g, opt)
	if err != nil {
		return nil, err
	}
	return RunEngine(g, opt, eng)
}

// thetaParams bundles the (n, k, ε, ℓ)-derived constants of the
// martingale θ estimation. They are extracted from RunEngine so the
// batched serving planner can rank queries by their sampling
// requirement (λ′ scales every estimation round's sample target, and —
// modulo the adaptive lower bound — the final θ) without duplicating
// the formulas. The arithmetic must stay expression-identical to the
// historical inline version: the CI bench gate pins θ exactly.
type thetaParams struct {
	n        float64
	l        float64 // union-bound-adjusted failure exponent (Tang et al., §4.2)
	logCNK   float64
	epsPrime float64
	// lambdaPrime is the numerator of every estimation round's target:
	// round i samples ceil(λ′ / x_i) sets with x_i = n/2^i.
	lambdaPrime float64
}

func newThetaParams(nodes int32, k int, ell, eps float64) thetaParams {
	tp := thetaParams{n: float64(nodes)}
	// Union-bound adjustment so the final guarantee holds across the
	// estimation iterations (Tang et al., §4.2).
	tp.l = ell * (1 + math.Ln2/math.Log(tp.n))
	tp.logCNK = stats.LogCNK(int64(nodes), int64(k))
	tp.epsPrime = math.Sqrt2 * eps
	term := tp.logCNK + tp.l*math.Log(tp.n) + math.Log(math.Max(math.Log2(tp.n), 1))
	tp.lambdaPrime = (2 + 2.0/3.0*tp.epsPrime) * term * tp.n / (tp.epsPrime * tp.epsPrime)
	return tp
}

// lambdaStar is the final sampling bound: θ = ceil(λ* / LB).
func (tp thetaParams) lambdaStar(eps float64) float64 {
	alpha := math.Sqrt(tp.l*math.Log(tp.n) + math.Ln2)
	beta := math.Sqrt((1 - 1/math.E) * (tp.logCNK + tp.l*math.Log(tp.n) + math.Ln2))
	return 2 * tp.n * math.Pow((1-1/math.E)*alpha+beta, 2) / (eps * eps)
}

// samplingRequirement ranks a (k, ε) query by how many RRR sets its
// trajectory asks for relative to other queries on the same graph: λ′
// is monotone in the per-round targets, and in practice orders the
// final θ too (smaller ε and larger k both demand more samples). The
// batch planner executes members in descending requirement so the
// largest member's extension covers the rest.
func samplingRequirement(g *graph.Graph, k int, ell, eps float64) float64 {
	if k > int(g.N) {
		k = int(g.N) // mirror Options.normalize's clamp
	}
	return newThetaParams(g.N, k, ell, eps).lambdaPrime
}

// RunEngine executes the IMM driver — iterative-doubling θ estimation
// followed by the final λ*-sized sampling and selection — against a
// caller-supplied Engine. Run delegates here; internal/dist supplies its
// rank-partitioned engine to inherit the identical sampling trajectory.
func RunEngine(g *graph.Graph, opt Options, eng Engine) (*Result, error) {
	if err := opt.normalize(g); err != nil {
		return nil, err
	}
	t0 := time.Now()

	tp := newThetaParams(g.N, opt.K, opt.Ell, opt.Epsilon)
	n := tp.n
	k := opt.K
	epsPrime := tp.epsPrime

	// Sampling phase: iterative doubling to bound OPT from below.
	lb := 1.0
	rounds := 0
	if g.N > 1 {
		lambdaPrime := tp.lambdaPrime
		maxIter := int(math.Log2(n))
		for i := 1; i < maxIter; i++ {
			x := n / math.Pow(2, float64(i))
			thetaI := int64(math.Ceil(lambdaPrime / x))
			capped := false
			if opt.MaxTheta > 0 && thetaI > opt.MaxTheta {
				thetaI = opt.MaxTheta
				capped = true
			}
			eng.Generate(thetaI)
			rounds++
			seeds, cov := eng.SelectSeeds(k)
			if opt.TargetCoverage > 0 && cov >= opt.TargetCoverage {
				// OPIM-style early exit: the sample already certifies
				// the requested coverage.
				bd := eng.Breakdown()
				bd.TotalWall = time.Since(t0)
				return &Result{
					Seeds: seeds, Coverage: cov, Theta: eng.SetCount(),
					Rounds: rounds, LB: n * cov / (1 + epsPrime),
					Breakdown: bd, SetStats: eng.Stats(), Pool: eng.PoolFootprint(),
					Engine: opt.Engine, Workers: opt.Workers,
				}, nil
			}
			if n*cov >= (1+epsPrime)*x {
				lb = n * cov / (1 + epsPrime)
				break
			}
			if capped {
				// Cannot sample further; accept the current estimate.
				lb = math.Max(1, n*cov/(1+epsPrime))
				break
			}
		}
	}

	// Final θ from the martingale bound λ*.
	theta := int64(math.Ceil(tp.lambdaStar(opt.Epsilon) / lb))
	if theta < 1 {
		theta = 1
	}
	if opt.MaxTheta > 0 && theta > opt.MaxTheta {
		theta = opt.MaxTheta
	}
	eng.Generate(theta)

	// Selection phase.
	seeds, cov := eng.SelectSeeds(k)

	bd := eng.Breakdown()
	bd.TotalWall = time.Since(t0)
	return &Result{
		Seeds:     seeds,
		Coverage:  cov,
		Theta:     eng.SetCount(),
		Rounds:    rounds,
		LB:        lb,
		Breakdown: bd,
		SetStats:  eng.Stats(),
		Pool:      eng.PoolFootprint(),
		Engine:    opt.Engine,
		Workers:   opt.Workers,
	}, nil
}
