package imm

import (
	"testing"

	"repro/internal/counter"
	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
)

// testGraph builds a small RMAT social-like graph.
func testGraph(t testing.TB, scale int, model graph.Model) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(scale, 6), model, 42)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testOpts(engine EngineKind, workers int) Options {
	o := Defaults()
	o.Engine = engine
	o.Workers = workers
	o.K = 10
	o.Seed = 7
	o.MaxTheta = 20000
	return o
}

func TestRunBasicBothEngines(t *testing.T) {
	g := testGraph(t, 9, graph.IC)
	for _, kind := range []EngineKind{Ripples, Efficient} {
		res, err := Run(g, testOpts(kind, 2))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(res.Seeds) != 10 {
			t.Fatalf("%v: %d seeds, want 10", kind, len(res.Seeds))
		}
		seen := map[int32]bool{}
		for _, s := range res.Seeds {
			if s < 0 || s >= g.N {
				t.Fatalf("%v: seed %d out of range", kind, s)
			}
			if seen[s] {
				t.Fatalf("%v: duplicate seed %d", kind, s)
			}
			seen[s] = true
		}
		if res.Theta <= 0 {
			t.Fatalf("%v: theta = %d", kind, res.Theta)
		}
		if res.Coverage <= 0 || res.Coverage > 1 {
			t.Fatalf("%v: coverage = %v", kind, res.Coverage)
		}
	}
}

// TestEnginesAgreeSeedForSeed exploits per-set RNG streams: both engines
// sample identical RRR sets, so the greedy selections (with identical
// deterministic tie-breaks) must return identical seed sequences.
func TestEnginesAgreeSeedForSeed(t *testing.T) {
	for _, model := range []graph.Model{graph.IC, graph.LT} {
		g := testGraph(t, 9, model)
		optR := testOpts(Ripples, 2)
		optE := testOpts(Efficient, 3)
		// Force identical representations: adaptive bitmaps change no
		// content, only storage, so seeds must match even with adaptive
		// rep enabled.
		r1, err := Run(g, optR)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Run(g, optE)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Theta != r2.Theta {
			t.Fatalf("%v: theta diverged: %d vs %d", model, r1.Theta, r2.Theta)
		}
		if len(r1.Seeds) != len(r2.Seeds) {
			t.Fatalf("%v: seed counts diverged", model)
		}
		for i := range r1.Seeds {
			if r1.Seeds[i] != r2.Seeds[i] {
				t.Fatalf("%v: seed %d diverged: ripples=%d efficient=%d\nripples: %v\nefficient: %v",
					model, i, r1.Seeds[i], r2.Seeds[i], r1.Seeds, r2.Seeds)
			}
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	var ref []int32
	for _, w := range []int{1, 2, 4, 8} {
		res, err := Run(g, testOpts(Efficient, w))
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res.Seeds
			continue
		}
		for i := range ref {
			if res.Seeds[i] != ref[i] {
				t.Fatalf("workers=%d changed seed %d: %v vs %v", w, i, res.Seeds, ref)
			}
		}
	}
}

// TestSeedQualityVsGreedy verifies the (1-1/e-ε) guarantee empirically:
// the IMM seed spread must be close to the exhaustive greedy spread on a
// small graph.
func TestSeedQualityVsGreedy(t *testing.T) {
	g, err := gen.BarabasiAlbert(120, 2, graph.IC, 3)
	if err != nil {
		t.Fatal(err)
	}
	opt := Defaults()
	opt.K = 5
	opt.Workers = 2
	opt.Seed = 11
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	immSpread := diffusion.EstimateSpread(g, res.Seeds, 3000, 2, 5)
	greedy := diffusion.GreedySpread(g, 5, 300, 2, 5)
	greedySpread := diffusion.EstimateSpread(g, greedy, 3000, 2, 5)
	// IMM guarantees (1-1/e-ε)·OPT ≈ 0.13·OPT at ε=0.5; in practice it
	// lands within a few percent of greedy. Require 80% to keep the test
	// robust to Monte-Carlo noise.
	if immSpread < 0.8*greedySpread {
		t.Fatalf("IMM spread %.1f below 80%% of greedy %.1f", immSpread, greedySpread)
	}
}

func TestSeedsBeatRandomAndMatchDegreeHeuristic(t *testing.T) {
	g := testGraph(t, 9, graph.IC)
	opt := testOpts(Efficient, 2)
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	immSpread := diffusion.EstimateSpread(g, res.Seeds, 2000, 2, 5)
	random := []int32{1, 3, 5, 7, 9, 11, 13, 15, 17, 19}
	randSpread := diffusion.EstimateSpread(g, random, 2000, 2, 5)
	if immSpread <= randSpread {
		t.Fatalf("IMM spread %.1f not better than arbitrary vertices %.1f", immSpread, randSpread)
	}
}

func TestLTThetaLargerSetsSmaller(t *testing.T) {
	// §III.A: under LT, θ is larger and sets are smaller than IC.
	gIC := testGraph(t, 9, graph.IC)
	gLT := testGraph(t, 9, graph.LT)
	optIC := testOpts(Efficient, 2)
	optIC.MaxTheta = 0
	optLT := optIC
	rIC, err := Run(gIC, optIC)
	if err != nil {
		t.Fatal(err)
	}
	rLT, err := Run(gLT, optLT)
	if err != nil {
		t.Fatal(err)
	}
	if rLT.Theta <= rIC.Theta {
		t.Fatalf("LT theta %d not above IC theta %d", rLT.Theta, rIC.Theta)
	}
	avgIC := float64(rIC.SetStats.TotalSize) / float64(rIC.SetStats.Count)
	avgLT := float64(rLT.SetStats.TotalSize) / float64(rLT.SetStats.Count)
	if avgLT >= avgIC {
		t.Fatalf("LT avg set size %.1f not below IC %.1f", avgLT, avgIC)
	}
}

func TestAblationFlagsPreserveSeeds(t *testing.T) {
	// Every optimization is semantics-preserving: toggling them must not
	// change the selected seeds.
	g := testGraph(t, 8, graph.IC)
	base := testOpts(Efficient, 3)
	ref, err := Run(g, base)
	if err != nil {
		t.Fatal(err)
	}
	variants := []func(*Options){
		func(o *Options) { o.Fusion = false },
		func(o *Options) { o.AdaptiveRep = false },
		func(o *Options) { o.DynamicBalance = false },
		func(o *Options) { o.Update = counter.Decrement },
		func(o *Options) { o.Update = counter.Rebuild },
		func(o *Options) { o.BatchSize = 1 },
	}
	for i, mutate := range variants {
		opt := base
		mutate(&opt)
		res, err := Run(g, opt)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if len(res.Seeds) != len(ref.Seeds) {
			t.Fatalf("variant %d changed seed count", i)
		}
		for j := range ref.Seeds {
			if res.Seeds[j] != ref.Seeds[j] {
				t.Fatalf("variant %d changed seed %d: %v vs %v", i, j, res.Seeds, ref.Seeds)
			}
		}
	}
}

func TestBreakdownAccounting(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	res, err := Run(g, testOpts(Efficient, 2))
	if err != nil {
		t.Fatal(err)
	}
	bd := res.Breakdown
	if bd.SamplingWall <= 0 || bd.SelectionWall <= 0 {
		t.Fatalf("phase walls not recorded: %+v", bd)
	}
	if bd.TotalWall < bd.SamplingWall+bd.SelectionWall {
		t.Fatalf("total wall below phase sum: %+v", bd)
	}
	if bd.SamplingModeled <= 0 || bd.SelectionModeled <= 0 {
		t.Fatalf("modeled costs missing: %+v", bd)
	}
	if bd.TotalModeled() != bd.SamplingModeled+bd.SelectionModeled {
		t.Fatal("TotalModeled mismatch")
	}
	_ = bd.OtherWall() // must not panic or go negative
}

// TestEfficientSelectionModeledScales is the heart of Figures 1/6/7: as
// workers grow, the efficient engine's modeled selection cost must keep
// dropping, while the Ripples baseline saturates because every worker
// still scans all θ sets. The paper observes LT saturating first (≈4
// threads, vs ≈32 for IC) because tiny LT sets make the redundant
// all-sets scan dominate immediately — so LT at 16 workers is where the
// contrast is sharpest.
func TestEfficientSelectionModeledScales(t *testing.T) {
	g := testGraph(t, 10, graph.LT)
	sel := func(kind EngineKind, w int) float64 {
		opt := testOpts(kind, w)
		res, err := Run(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.Breakdown.SelectionModeled
	}
	eff1, eff16 := sel(Efficient, 1), sel(Efficient, 16)
	rip1, rip16 := sel(Ripples, 1), sel(Ripples, 16)
	effSpeedup := eff1 / eff16
	ripSpeedup := rip1 / rip16
	if effSpeedup < 4 {
		t.Fatalf("efficient selection speedup at 16 workers = %.2f, want >= 4", effSpeedup)
	}
	if ripSpeedup > effSpeedup/2 {
		t.Fatalf("ripples selection speedup %.2f not clearly below efficient %.2f", ripSpeedup, effSpeedup)
	}
}

func TestAdaptiveRepUsesBitmapsOnDenseGraphs(t *testing.T) {
	g := testGraph(t, 9, graph.IC) // IC on RMAT: giant SCC, dense sets
	res, err := Run(g, testOpts(Efficient, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.SetStats.Bitmaps == 0 {
		t.Fatal("adaptive representation never chose a bitmap on a dense-IC workload")
	}
	// And it must save memory vs list-only.
	optList := testOpts(Efficient, 2)
	optList.AdaptiveRep = false
	resList, err := Run(g, optList)
	if err != nil {
		t.Fatal(err)
	}
	if res.SetStats.TotalBytes >= resList.SetStats.TotalBytes {
		t.Fatalf("adaptive bytes %d not below list-only %d", res.SetStats.TotalBytes, resList.SetStats.TotalBytes)
	}
}

func TestOptionValidation(t *testing.T) {
	g := testGraph(t, 6, graph.IC)
	bad := []Options{
		{K: 0, Epsilon: 0.5, Workers: 1},
		{K: 5, Epsilon: 0, Workers: 1},
		{K: 5, Epsilon: 1.5, Workers: 1},
	}
	for i, o := range bad {
		if _, err := Run(g, o); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
	if _, err := Run(nil, Defaults()); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestKLargerThanN(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}, graph.IC, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt := Defaults()
	opt.K = 100
	opt.Workers = 2
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) > 4 {
		t.Fatalf("returned %d seeds for a 4-vertex graph", len(res.Seeds))
	}
}

func TestMaxThetaCap(t *testing.T) {
	g := testGraph(t, 8, graph.LT)
	opt := testOpts(Efficient, 2)
	opt.MaxTheta = 500
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Theta > 500 {
		t.Fatalf("theta %d exceeds cap 500", res.Theta)
	}
}

func TestParseEngine(t *testing.T) {
	if k, err := ParseEngine("ripples"); err != nil || k != Ripples {
		t.Fatal("ParseEngine(ripples)")
	}
	if k, err := ParseEngine("efficientimm"); err != nil || k != Efficient {
		t.Fatal("ParseEngine(efficientimm)")
	}
	if _, err := ParseEngine("x"); err == nil {
		t.Fatal("bad engine accepted")
	}
	if Ripples.String() != "ripples" || Efficient.String() != "efficientimm" {
		t.Fatal("String() wrong")
	}
}

func TestOPIMEarlyTermination(t *testing.T) {
	g := testGraph(t, 9, graph.IC)
	full, err := Run(g, testOpts(Efficient, 2))
	if err != nil {
		t.Fatal(err)
	}
	early := testOpts(Efficient, 2)
	early.TargetCoverage = 0.3 // IC coverage with k=10 clears this in round 1
	res, err := Run(g, early)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage < 0.3 {
		t.Fatalf("early exit below target: %v", res.Coverage)
	}
	if res.Theta >= full.Theta {
		t.Fatalf("early termination did not reduce theta: %d vs %d", res.Theta, full.Theta)
	}
	if len(res.Seeds) != len(full.Seeds) {
		t.Fatalf("early exit changed seed count")
	}
	// Quality stays in the same league: coverage (an unbiased spread
	// proxy) within 25% of the full run's.
	if res.Coverage < 0.75*full.Coverage {
		t.Fatalf("early coverage %.3f too far below full %.3f", res.Coverage, full.Coverage)
	}
}

func TestSingleVertexGraph(t *testing.T) {
	g, err := graph.FromEdges(2, []graph.Edge{{Src: 0, Dst: 1}}, graph.IC, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt := Defaults()
	opt.K = 1
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 1 {
		t.Fatalf("seeds = %v", res.Seeds)
	}
}
