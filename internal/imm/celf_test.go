package imm

import (
	"fmt"
	"testing"

	"repro/internal/counter"
	"repro/internal/graph"
)

// generatePool builds a pool of nsets through the Efficient engine's
// generation path under opt and returns the engine (its pool fully
// generated, selection untouched).
func generatePool(t *testing.T, g *graph.Graph, opt Options, nsets int64) *efficientEngine {
	t.Helper()
	if err := opt.normalize(g); err != nil {
		t.Fatal(err)
	}
	e := newEfficientEngine(g, opt)
	e.Generate(nsets)
	if e.SetCount() != nsets {
		t.Fatalf("generated %d sets, want %d", e.SetCount(), nsets)
	}
	return e
}

// TestCompressedPoolRoundTrip pins that the compressed pool holds
// exactly the same sets as the slice pool: every slot decodes to the
// identical member list, only the representation (and its byte cost)
// differs.
func TestCompressedPoolRoundTrip(t *testing.T) {
	for _, model := range []graph.Model{graph.IC, graph.LT} {
		g := testGraph(t, 9, model)
		const nsets = 600
		optS := testOpts(Efficient, 3)
		optS.Pool = PoolSlices
		optC := optS
		optC.Pool = PoolCompressed
		slices := generatePool(t, g, optS, nsets).p.flatten()
		compressed := generatePool(t, g, optC, nsets).p.flatten()
		var sawCompressed bool
		for i := range slices {
			a := slices[i].Vertices(nil)
			b := compressed[i].Vertices(nil)
			if len(a) != len(b) {
				t.Fatalf("%v set %d: size %d vs %d", model, i, len(a), len(b))
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("%v set %d member %d: %d vs %d", model, i, j, a[j], b[j])
				}
			}
			if compressed[i].Size() != len(a) {
				t.Fatalf("%v set %d: Size %d != %d", model, i, compressed[i].Size(), len(a))
			}
			if compressed[i].Kind() == "compressed" {
				sawCompressed = true
			}
		}
		if !sawCompressed {
			t.Fatalf("%v: compressed pool built no compressed sets", model)
		}
	}
}

// TestCELFMatchesScanAcrossWorkers is the selection-equivalence pin: the
// lazy-greedy kernel must return byte-identical seeds to the eager scan
// at every worker count, on both pool representations, with and without
// a fused base counter.
func TestCELFMatchesScanAcrossWorkers(t *testing.T) {
	for _, model := range []graph.Model{graph.IC, graph.LT} {
		g := testGraph(t, 9, model)
		for _, pool := range []PoolKind{PoolSlices, PoolCompressed} {
			for _, fusion := range []bool{true, false} {
				opt := testOpts(Efficient, 2)
				opt.Pool = pool
				opt.Fusion = fusion
				opt.Selection = SelectScan
				ref, err := Run(g, opt)
				if err != nil {
					t.Fatal(err)
				}
				for _, w := range []int{1, 2, 4, 8} {
					o := opt
					o.Workers = w
					o.Selection = SelectCELF
					res, err := Run(g, o)
					if err != nil {
						t.Fatal(err)
					}
					if fmt.Sprint(res.Seeds) != fmt.Sprint(ref.Seeds) {
						t.Fatalf("%v pool=%v fusion=%v workers=%d: CELF %v != scan %v",
							model, pool, fusion, w, res.Seeds, ref.Seeds)
					}
					if res.Coverage != ref.Coverage {
						t.Fatalf("%v pool=%v workers=%d: coverage %v != %v", model, pool, w, res.Coverage, ref.Coverage)
					}
				}
			}
		}
	}
}

// TestSelectOnSetsIsCELF pins the exported kernel over an explicit flat
// slice — the distributed runtime's call shape — against the eager scan.
func TestSelectOnSetsIsCELF(t *testing.T) {
	g := testGraph(t, 9, graph.IC)
	opt := testOpts(Efficient, 2)
	e := generatePool(t, g, opt, 800)
	sets := e.p.flatten()
	refSeeds, refCov, _ := SelectOnSetsScan(g.N, sets, e.p.totalMembers, nil, 1, counter.AdaptiveUpdate, 12)
	for _, w := range []int{1, 3, 8} {
		seeds, cov, ops := SelectOnSets(g.N, sets, e.p.totalMembers, nil, w, counter.AdaptiveUpdate, 12)
		if fmt.Sprint(seeds) != fmt.Sprint(refSeeds) {
			t.Fatalf("workers=%d: %v != %v", w, seeds, refSeeds)
		}
		if cov != refCov {
			t.Fatalf("workers=%d: coverage %v != %v", w, cov, refCov)
		}
		if ops <= 0 {
			t.Fatalf("workers=%d: no modeled ops", w)
		}
	}
}

// TestCompressedPoolShrinksResidentBytes is the acceptance pin: against
// the []int32-slice pool the tentpole replaces (list representation for
// every set), the compressed pool's resident set bytes must shrink at
// least 2x on the default harness clone. CompressionRatio measures
// exactly that quotient.
func TestCompressedPoolShrinksResidentBytes(t *testing.T) {
	g := testGraph(t, 10, graph.IC)
	opt := testOpts(Efficient, 2)
	opt.Pool = PoolCompressed
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pool.SetBytes <= 0 || res.Pool.RawBytes <= 0 {
		t.Fatalf("footprint not reported: %+v", res.Pool)
	}
	if ratio := res.Pool.CompressionRatio(); ratio < 2 {
		t.Fatalf("compression ratio %.2f vs the slice pool, want >= 2", ratio)
	}
	// And it must not be worse than the adaptive slices pool either.
	optS := opt
	optS.Pool = PoolSlices
	resS, err := Run(g, optS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pool.SetBytes > resS.Pool.SetBytes {
		t.Fatalf("compressed set bytes %d above slices %d", res.Pool.SetBytes, resS.Pool.SetBytes)
	}
}

// TestScanModeSkipsIndex pins the memory trade-off: scan-mode selection
// never builds the inverted index, CELF does.
func TestScanModeSkipsIndex(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	scan := testOpts(Efficient, 2)
	scan.Selection = SelectScan
	res, err := Run(g, scan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pool.IndexBytes != 0 {
		t.Fatalf("scan mode built an index: %+v", res.Pool)
	}
	celf := testOpts(Efficient, 2)
	resC, err := Run(g, celf)
	if err != nil {
		t.Fatal(err)
	}
	if resC.Pool.IndexBytes <= 0 {
		t.Fatalf("CELF mode reported no index: %+v", resC.Pool)
	}
	if resC.Pool.IndexBytes != resC.Pool.RawBytes {
		t.Fatalf("index bytes %d != 4 bytes/member %d", resC.Pool.IndexBytes, resC.Pool.RawBytes)
	}
}

// TestParsePoolAndSelection covers the new option parsers.
func TestParsePoolAndSelection(t *testing.T) {
	if p, err := ParsePool("slices"); err != nil || p != PoolSlices {
		t.Fatal("ParsePool(slices)")
	}
	if p, err := ParsePool("compressed"); err != nil || p != PoolCompressed {
		t.Fatal("ParsePool(compressed)")
	}
	if _, err := ParsePool("x"); err == nil {
		t.Fatal("bad pool accepted")
	}
	if s, err := ParseSelection("celf"); err != nil || s != SelectCELF {
		t.Fatal("ParseSelection(celf)")
	}
	if s, err := ParseSelection("scan"); err != nil || s != SelectScan {
		t.Fatal("ParseSelection(scan)")
	}
	if _, err := ParseSelection("x"); err == nil {
		t.Fatal("bad selection accepted")
	}
	if PoolCompressed.String() != "compressed" || PoolSlices.String() != "slices" {
		t.Fatal("PoolKind.String")
	}
	if SelectCELF.String() != "celf" || SelectScan.String() != "scan" {
		t.Fatal("SelectionKind.String")
	}
}

// TestCELFSelectionScalesWithWorkers mirrors the Figure 6/7 claim for
// the lazy kernel: modeled selection cost must keep dropping with the
// worker count up to the shard grain.
func TestCELFSelectionScalesWithWorkers(t *testing.T) {
	g := testGraph(t, 10, graph.LT)
	sel := func(w int) float64 {
		opt := testOpts(Efficient, w)
		res, err := Run(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.Breakdown.SelectionModeled
	}
	s1, s8 := sel(1), sel(8)
	if speedup := s1 / s8; speedup < 3 {
		t.Fatalf("CELF selection speedup at 8 workers = %.2f, want >= 3", speedup)
	}
}
