package imm

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/counter"
	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/rrr"
	"repro/internal/sched"
)

// Warm-pool repair after a graph delta (the dynamic-graph tentpole).
//
// Pool contents are a pure function of (graph, policy, seed, slot): slot
// i is drawn from rng.NewStream(seed, i). After graph.ApplyDelta, a
// slot's replay on the post-delta graph differs from its resident
// content only if the traversal would observe a changed in-segment —
// and the traversal reads exactly the in-segments of the vertices it
// visits, which are exactly the set's members (IC emits each first
// visit; the LT walk's chain is the set). So a resident set disjoint
// from the delta's dirty-vertex set D (vertices whose in-segment
// changed) consumes identical RNG draws on the post-delta graph and
// replays bit-identically; only sets intersecting D must be resampled.
// The per-shard inverted vertex→set index lists the intersecting slots
// directly — one posting walk per dirty vertex instead of a pool scan.
//
// The one global dependency is the root draw, Uint32n(N): if the delta
// grew the vertex set, every slot's root changes and repair degenerates
// to a whole-pool resample — still byte-identical to cold, just not
// cheaper.
//
// After repair the pool is indistinguishable (set contents, index,
// fused counter, footprint accounting) from a pool generated cold on
// the post-delta graph to the same physical length, which is what the
// differential fuzz test pins across models × kernels × workers.

// RepairReport describes one warm-pool repair.
type RepairReport struct {
	// Slots is the physical pool length at repair time.
	Slots int64
	// Resampled counts slots that were invalidated and regenerated.
	Resampled int64
	// FullResample reports that vertex growth forced a whole-pool
	// resample (the root draw depends on N).
	FullResample bool
}

// ApplyDelta repairs the warm pool for the post-delta graph ng,
// described by rep (the report graph.ApplyDelta produced alongside
// ng). Only slots whose sets intersect the dirty-vertex set are
// resampled; everything else — sets, index postings, fused counts,
// arenas — is retained. The engine serves the new graph afterwards,
// and every future answer is byte-identical to a cold engine built on
// ng. Like all WarmEngine methods, callers must serialize.
func (w *WarmEngine) ApplyDelta(ng *graph.Graph, rep *graph.DeltaReport) (RepairReport, error) {
	if ng == nil || rep == nil {
		return RepairReport{}, fmt.Errorf("imm: repair needs a post-delta graph and its report")
	}
	if ng.Model() != w.g.Model() {
		return RepairReport{}, fmt.Errorf("imm: repair cannot change the diffusion model (%v -> %v)", w.g.Model(), ng.Model())
	}
	r := w.inner.repair(ng, rep)
	w.g = ng
	w.limit = 0
	return r, nil
}

// repair swaps the engine onto ng and patches the pool in place.
func (e *efficientEngine) repair(ng *graph.Graph, rep *graph.DeltaReport) RepairReport {
	count := e.p.len()
	r := RepairReport{Slots: count}
	grew := ng.N != e.g.N
	e.g = ng
	// The per-worker samplers hold visited bitmaps sized to the old
	// graph; rebind them (arenas and emit closures survive — neither
	// references the graph).
	for _, gw := range e.gen {
		gw.smp = diffusion.NewSampler(ng)
	}
	// A remote slot generator was constructed against the old graph;
	// detach it and let the owner re-attach one for the new epoch.
	// Local kernels are always a correct fallback.
	e.remote = nil

	if grew {
		// Root draws changed everywhere: drop the pool and regenerate
		// its full length cold on the new graph. The fused counter is
		// resized along the way.
		e.p = newShardedPool(ng.N)
		e.base = counter.New(ng.N)
		e.baseFresh = false
		if count > 0 {
			r.Resampled = count
			r.FullResample = true
			e.Generate(count)
		}
		return r
	}
	if count == 0 || len(rep.Dirty) == 0 {
		return r
	}

	invalid := e.invalidSlots(rep.Dirty)
	r.Resampled = int64(len(invalid))
	if len(invalid) == 0 {
		return r
	}

	// Retire the invalidated sets from the fused occurrence counter
	// before their contents are replaced; the re-increment below makes
	// the counter exactly what cold fusion on ng would have produced.
	maintainBase := e.opt.Fusion && e.baseFresh
	if maintainBase {
		for _, i := range invalid {
			e.p.get(i).ForEach(func(v int32) { e.base.Dec(v) })
		}
	}

	// Resample the invalidated slots from their slot-indexed streams on
	// the new graph, in parallel. BuildScratch allocates fresh backing
	// (the old arena storage cannot be reclaimed piecemeal); the set
	// contents — the byte-identity quantity — are representation-equal
	// to what cold arena generation builds.
	newSets := make([]rrr.Set, len(invalid))
	workers := e.opt.Workers
	if workers > len(invalid) {
		workers = len(invalid)
	}
	sched.Static(workers, len(invalid), func(w, s0, s1 int) {
		smp := diffusion.NewSampler(ng)
		var buf []int32
		var x rng.Xoshiro256
		for j := s0; j < s1; j++ {
			x.SeedStream(e.opt.Seed, int(invalid[j]))
			buf = smp.SampleUniformRoot(&x, buf[:0])
			newSets[j] = buildSet(e.p.n, e.policy, buf)
		}
	})

	var oldMembers, newMembers int64
	for j, i := range invalid {
		old := e.p.get(i)
		oldMembers += int64(old.Size())
		set := newSets[j]
		newMembers += int64(set.Size())
		e.p.put(i, set)
		if i < int64(len(e.p.flat)) {
			e.p.flat[i] = set
		}
		if maintainBase {
			set.ForEach(func(v int32) { e.base.Inc(v) })
		}
	}
	e.p.totalMembers += newMembers - oldMembers
	// The byte/member prefixes are derived caches; drop them and let
	// them rebuild lazily over the repaired contents.
	e.p.bytePrefix, e.p.memberPrefix = nil, nil

	e.rebuildTouchedIndexes(invalid)
	return r
}

// invalidSlots returns, in ascending order, the global ids of pool
// slots whose sets intersect the dirty vertices. Indexed entries are
// found by walking the inverted index's postings; the un-indexed tail
// (scan-mode pools never index) falls back to membership probes.
func (e *efficientEngine) invalidSlots(dirty []int32) []int64 {
	p := e.p
	marked := bitset.New(int(p.count))
	for s := range p.shards {
		sh := &p.shards[s]
		if sh.postIdx != nil {
			for _, v := range dirty {
				for _, j := range sh.postings(v) {
					marked.Set(int(j)*poolShards + s)
				}
			}
		}
		for j := sh.indexed; j < len(sh.sets); j++ {
			gid := j*poolShards + s
			if int64(gid) >= p.count {
				break
			}
			set := sh.sets[j]
			for _, v := range dirty {
				if set.Contains(v) {
					marked.Set(gid)
					break
				}
			}
		}
	}
	ids := make([]int64, 0, marked.Count())
	marked.ForEach(func(i int) { ids = append(ids, int64(i)) })
	return ids
}

// rebuildTouchedIndexes rebuilds the inverted index of every shard that
// had one and holds a repaired slot. Untouched shards keep their
// postings; scan-mode shards (never indexed) stay unindexed so the
// footprint accounting still reports IndexBytes 0.
func (e *efficientEngine) rebuildTouchedIndexes(invalid []int64) {
	var touched [poolShards]bool
	for _, i := range invalid {
		s, _ := shardOf(i)
		touched[s] = true
	}
	var rebuild []int
	for s := range touched {
		if touched[s] && e.p.shards[s].indexed > 0 {
			rebuild = append(rebuild, s)
		}
	}
	if len(rebuild) == 0 {
		return
	}
	workers := e.opt.Workers
	if workers > len(rebuild) {
		workers = len(rebuild)
	}
	sched.Static(workers, len(rebuild), func(w, s0, s1 int) {
		for k := s0; k < s1; k++ {
			sh := &e.p.shards[rebuild[k]]
			sh.postIdx, sh.postData = nil, nil
			sh.postCount = 0
			sh.indexed = 0
			sh.covered = nil
			// extend re-indexes every resident set; selection kept the
			// pre-repair horizon at len(sets), so coverage is unchanged.
			sh.extend(e.p.n)
		}
	})
}
