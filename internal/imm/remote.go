package imm

import (
	"time"

	"repro/internal/rrr"
)

// SlotGenerator supplies the RRR sets for a contiguous slot range from
// somewhere other than the local sampler — the seam that lets a warm
// serving engine source its pool extensions from a networked cluster
// (internal/dist fans the range across worker ranks and gathers the
// chunks over the wire).
//
// The contract is the slot-determinism contract of the pool itself:
// out[i] must be exactly the set a local generation would have placed in
// slot lo+int64(i) — same member sequence, built under the engine's own
// representation policy — so attaching or detaching a generator can
// never change a served answer. Implementations return an error (or
// leave slots nil) to decline; the engine then regenerates the whole
// range locally.
type SlotGenerator interface {
	GenerateSlots(lo int64, out []rrr.Set) (members, edges int64, err error)
}

// SetRemote attaches (or, with nil, detaches) a distributed slot
// generator to the warm engine. Calls must not overlap the engine's
// queries — set it right after NewWarmEngine, or between batches under
// the caller's engine lock (internal/serve holds its pool mutex).
func (w *WarmEngine) SetRemote(gen SlotGenerator) { w.inner.remote = gen }

// generateRemote fills slots [from, to) through the attached remote
// generator. Pool and counter state are touched only after the whole
// range arrived intact, so a false return (transport failure, decode
// failure, a declined range) leaves the engine exactly as it was and the
// caller falls back to the local kernels.
func (e *efficientEngine) generateRemote(from, to int64) bool {
	start := time.Now()
	out := make([]rrr.Set, to-from)
	members, edges, err := e.remote.GenerateSlots(from, out)
	if err != nil {
		return false
	}
	for _, s := range out {
		if s == nil {
			return false
		}
	}
	for i, s := range out {
		e.p.put(from+int64(i), s)
	}
	var fused int64
	if e.opt.Fusion {
		for _, s := range out {
			s.ForEach(func(v int32) { e.base.Inc(v) })
		}
		fused = members
		e.baseFresh = true
	} else {
		e.baseFresh = false
	}
	e.p.addMembers([]int64{members})
	e.bd.SamplingWall += time.Since(start)
	e.bd.SamplingModeled += float64(edges + ModeledSortCost(e.policy, e.p.n, members, to-from) + 2*fused)
	return true
}
