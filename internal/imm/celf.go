package imm

import (
	"sort"

	"repro/internal/counter"
	"repro/internal/rrr"
	"repro/internal/sched"
)

// postPrefix returns how many of post's ascending local entry ids lie
// below lim — a vertex's occurrence count within a truncated pool view.
func postPrefix(post []int32, lim int32) int {
	if len(post) == 0 || post[0] >= lim {
		return 0
	}
	if post[len(post)-1] < lim {
		return len(post)
	}
	return sort.Search(len(post), func(i int) bool { return post[i] >= lim })
}

// Parallel lazy-greedy (CELF) seed selection over the sharded pool's
// inverted index.
//
// The eager kernel (SelectOnSetsScan) re-establishes the exact marginal
// gain of every vertex after every seed; CELF exploits submodularity —
// marginal coverage gain never increases as coverage grows — to keep
// cached gains as upper bounds in per-shard max heaps and recompute only
// the candidates that actually surface. A candidate is selected the
// moment its cached gain is known to be current, because every other
// cached gain is an upper bound that the heap order already places below
// it.
//
// Determinism: the heap order and the cross-heap reduction both use
// (gain desc, vertex asc) — counter.GainLess — which is exactly the
// tie-break of the eager argmax. Gains are integers, shard layout is
// fixed (poolShards does not depend on the worker count), and the
// parallel passes only partition read-only postings, so the selected
// seed sequence is byte-identical to SelectOnSetsScan at any worker
// count. The tests pin this across workers ∈ {1,2,4,8} and both pool
// representations.
func (p *shardedPool) selectCELF(base *counter.Counter, workers, k int) (seeds []int32, coverage float64, modeledOps float64) {
	return p.selectCELFLimited(base, workers, k, p.count)
}

// selectCELFLimited is selectCELF restricted to the logically truncated
// pool view of global set ids below limit — the warm-serving seam. A
// pool physically grown to θ_max answers a query whose own trajectory
// stopped at θ = limit ≤ θ_max with exactly the seeds a cold pool of
// limit sets would have returned: postings are appended in ascending
// local-id order, so each shard's view is the prefix below
// localLimit(s, limit), and every gain computation, stale recompute,
// and coverage retirement stops at that horizon. base is only consulted
// for the full view; a truncated view derives its gains from posting
// prefixes (equal to the fused counts a cold run would have passed,
// because fusion merely pre-aggregates occurrence counts of the same
// sets).
func (p *shardedPool) selectCELFLimited(base *counter.Counter, workers, k int, limit int64) (seeds []int32, coverage float64, modeledOps float64) {
	if limit > p.count {
		limit = p.count
	}
	nsets := limit
	full := limit == p.count
	if !full {
		base = nil
	}
	var localLim [poolShards]int32
	for s := range localLim {
		localLim[s] = int32(localLimit(s, limit))
	}
	n := int(p.n)
	w := workers
	if w < 1 {
		w = 1
	}
	if nsets == 0 || k == 0 {
		return nil, 0, 0
	}

	ops := make([]int64, w)
	var serial int64 // critical-path work of the sequential heap machinery

	// Bring the inverted index up to date with the pool (no-op unless
	// the pool grew since the last selection) and clear the coverage
	// scratch.
	p.ensureIndexed(w, ops)
	sched.Static(w, poolShards, func(wk, s0, s1 int) {
		for s := s0; s < s1; s++ {
			p.shards[s].covered.Reset()
			ops[wk] += int64(p.shards[s].indexed)/64 + 1
		}
	})

	// Initial gains: the fused base counter when it is fresh (a
	// streaming copy), else a posting-length sum — both equal each
	// vertex's occurrence count over the whole pool. Both branches
	// overwrite every slot, so the scratch needs no clearing.
	if cap(p.gainScratch) < n {
		p.gainScratch = make([]int64, n)
	}
	gains := p.gainScratch[:n]
	if base != nil {
		src := base.Raw()
		sched.Static(w, n, func(wk, lo, hi int) {
			copy(gains[lo:hi], src[lo:hi])
			ops[wk] += int64(hi-lo)/8 + 1
		})
	} else {
		sched.Static(w, n, func(wk, lo, hi int) {
			for v := lo; v < hi; v++ {
				var g int64
				for s := range p.shards {
					if full {
						g += int64(len(p.shards[s].postings(int32(v))))
					} else {
						g += int64(postPrefix(p.shards[s].postings(int32(v)), localLim[s]))
					}
				}
				gains[v] = g
			}
			ops[wk] += int64(hi - lo)
		})
	}

	// Per-shard max-gain heaps over fixed contiguous vertex regions.
	regions := poolShards
	if regions > n {
		regions = n
	}
	heaps := make([]*counter.GainHeap, regions)
	sched.Static(w, regions, func(wk, r0, r1 int) {
		for r := r0; r < r1; r++ {
			lo, hi := r*n/regions, (r+1)*n/regions
			h := counter.NewGainHeap(hi - lo)
			for v := lo; v < hi; v++ {
				h.Append(gains[v], int32(v))
			}
			h.Init()
			heaps[r] = h
			ops[wk] += int64(hi - lo)
		}
	})

	// version[v] is the selection round v's cached gain was computed at;
	// a cached gain is exact iff nothing has been covered since. Round 0
	// gains are exact by construction, so the scratch must start zeroed.
	if cap(p.versionScratch) < n {
		p.versionScratch = make([]int32, n)
	}
	version := p.versionScratch[:n]
	clear(version)
	shardWork := make([]int64, poolShards)
	seeds = make([]int32, 0, k)
	var coveredCount int64

	for len(seeds) < k && len(seeds) < n {
		round := int32(len(seeds))
		chosen := int32(-1)
		for {
			// Reduce the per-shard heap tops under the heap's own order.
			bestR := -1
			var best counter.GainItem
			for r, h := range heaps {
				if top, ok := h.Top(); ok {
					if bestR < 0 || counter.GainLess(top, best) {
						bestR, best = r, top
					}
				}
			}
			serial += int64(len(heaps))
			if bestR < 0 {
				break // every vertex already selected
			}
			if version[best.Vertex] == round {
				// Exact gain on top: it dominates every cached upper
				// bound under (gain desc, id asc), so it is the argmax.
				heaps[bestR].Pop()
				serial += int64(log2i(heaps[bestR].Len() + 1))
				chosen = best.Vertex
				break
			}
			// Stale: recompute the true gain by counting uncovered
			// postings, shard-parallel with a deterministic reduction.
			v := best.Vertex
			sched.Static(w, poolShards, func(wk, s0, s1 int) {
				for s := s0; s < s1; s++ {
					sh := &p.shards[s]
					var g, walked int64
					for _, j := range sh.postings(v) {
						if j >= localLim[s] {
							break // beyond the view's horizon
						}
						walked++
						if !sh.covered.Test(int(j)) {
							g++
						}
					}
					shardWork[s] = g
					ops[wk] += walked + 1
				}
			})
			var g int64
			for s := range shardWork {
				g += shardWork[s]
			}
			version[v] = round
			heaps[bestR].UpdateTop(g)
			serial += int64(log2i(heaps[bestR].Len() + 1))
		}
		if chosen < 0 {
			break
		}
		seeds = append(seeds, chosen)

		// Retire the seed's coverage: walk its postings per shard and
		// mark the newly covered entries. This is the whole counter
		// maintenance — no decrement/rebuild pass over set members.
		sched.Static(w, poolShards, func(wk, s0, s1 int) {
			for s := s0; s < s1; s++ {
				sh := &p.shards[s]
				var newly, walked int64
				for _, j := range sh.postings(chosen) {
					if j >= localLim[s] {
						break
					}
					walked++
					if !sh.covered.Test(int(j)) {
						sh.covered.Set(int(j))
						newly++
					}
				}
				shardWork[s] = newly
				ops[wk] += walked + 1
			}
		})
		for s := range shardWork {
			coveredCount += shardWork[s]
		}
	}
	return seeds, float64(coveredCount) / float64(nsets), float64(maxOf(ops)) + float64(serial)
}

// Selector is an incremental Find_Most_Influential_Set front-end over
// an externally owned, append-only set collection: Extend absorbs new
// sets into the sharded inverted index, Select runs the parallel CELF
// kernel over everything absorbed so far. Front-ends whose pool grows
// across θ-estimation rounds (the distributed runtime's gathered rank-0
// pool) index each set exactly once instead of rebuilding per round,
// matching the shared-memory engine's incremental accounting.
type Selector struct {
	p *shardedPool
}

// NewSelector returns an empty Selector over an n-vertex graph.
func NewSelector(n int32) *Selector { return &Selector{p: newShardedPool(n)} }

// Extend appends sets to the selector's pool. Sets already absorbed
// must not be passed again; callers feed each θ round's new slice.
//
// The sets are retained by reference, not copied: arena-backed sets
// (rrr.Policy.BuildArena) must come from an arena that outlives the
// selector. A caller that resets or reuses its arena between rounds must
// pass rrr.ListSet.Detach()ed copies instead — see the ownership
// contract on rrr.ListSet.Raw.
func (s *Selector) Extend(sets []rrr.Set, workers int) {
	from := s.p.count
	s.p.grow(from + int64(len(sets)))
	w := workers
	if w < 1 {
		w = 1
	}
	members := make([]int64, w)
	sched.Static(w, len(sets), func(wk, lo, hi int) {
		for i := lo; i < hi; i++ {
			s.p.put(from+int64(i), sets[i])
			members[wk] += int64(sets[i].Size())
		}
	})
	s.p.addMembers(members)
}

// Select runs the CELF kernel over every set absorbed so far. Semantics
// and determinism match SelectOnSets.
func (s *Selector) Select(base *counter.Counter, workers, k int) (seeds []int32, coverage float64, modeledOps float64) {
	return s.p.selectCELF(base, workers, k)
}

// SelectOnSets is the Find_Most_Influential_Set kernel over an explicit
// pool: it builds a transient sharded inverted index over sets and runs
// the parallel CELF selection, so front-ends that gather flat set slices
// inherit the lazy-greedy path unchanged (growing pools should hold a
// Selector instead and pay the indexing once). base, when non-nil, must
// already hold the occurrence counts of every member of sets (the fused
// counter; in the distributed runtime, the allreduced per-rank
// counters); when nil the gains are read off the index. totalMembers is
// Σ|R| over sets.
//
// The update strategy is accepted for signature compatibility with the
// eager kernel but is not consulted: CELF retires coverage by walking
// postings, making the decrement/rebuild trade-off moot. Callers that
// specifically want the adaptive-update kernel (the Figure 5 ablation)
// use SelectOnSetsScan.
//
// The kernel is deterministic for a given pool regardless of workers, so
// any front-end selecting over the same sets returns the same seeds —
// the property the distributed runtime's bit-identical guarantee rests
// on.
func SelectOnSets(n32 int32, sets []rrr.Set, totalMembers int64, base *counter.Counter, workers int, update counter.UpdateStrategy, k int) (result []int32, coverage float64, modeledOps float64) {
	_ = update
	_ = totalMembers // recomputed by Extend from the sets themselves
	s := NewSelector(n32)
	s.Extend(sets, workers)
	return s.Select(base, workers, k)
}
