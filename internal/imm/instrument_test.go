package imm

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numa"
)

func TestMeasureNUMAGenerationPlacements(t *testing.T) {
	g := testGraph(t, 10, graph.IC)
	topo := numa.PerlmutterLike()
	orig, err := MeasureNUMAGeneration(g, topo, PlacementOriginal, 200, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	aware, err := MeasureNUMAGeneration(g, topo, PlacementAware, 200, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Table II's headline: the NUMA-aware placement spends a smaller
	// share of core time on the bitmap check and less total time.
	if aware.BitmapSharePercent() >= orig.BitmapSharePercent() {
		t.Fatalf("aware bitmap share %.1f%% not below original %.1f%%",
			aware.BitmapSharePercent(), orig.BitmapSharePercent())
	}
	if aware.TotalCost >= orig.TotalCost {
		t.Fatalf("aware total cost %.0f not below original %.0f", aware.TotalCost, orig.TotalCost)
	}
	if aware.LocalFraction <= orig.LocalFraction {
		t.Fatalf("aware local fraction %.2f not above original %.2f", aware.LocalFraction, orig.LocalFraction)
	}
	if aware.Imbalance >= orig.Imbalance {
		t.Fatalf("aware imbalance %.2f not below original %.2f", aware.Imbalance, orig.Imbalance)
	}
	if orig.Placement.String() != "original" || aware.Placement.String() != "numa-aware" {
		t.Fatal("placement names wrong")
	}
}

func TestMeasureNUMADeterministic(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	topo := numa.PerlmutterLike()
	a, err := MeasureNUMAGeneration(g, topo, PlacementAware, 50, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureNUMAGeneration(g, topo, PlacementAware, 50, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCost != b.TotalCost || a.BitmapCost != b.BitmapCost {
		t.Fatal("instrumented run not deterministic")
	}
}

func TestTraceSelectionEfficientFewerMisses(t *testing.T) {
	// Table IV: on identical pools, the set-partitioned kernel must
	// produce far fewer L1+L2 misses than the vertex-partitioned one.
	g, err := gen.RMAT(gen.DefaultRMAT(11, 6), graph.IC, 9)
	if err != nil {
		t.Fatal(err)
	}
	rip := TraceSelection(g, Ripples, 10, 400, 32, 5)
	eff := TraceSelection(g, Efficient, 10, 400, 32, 5)
	ripMiss := rip.Stats.CombinedMisses()
	effMiss := eff.Stats.CombinedMisses()
	if effMiss == 0 || ripMiss == 0 {
		t.Fatalf("degenerate trace: ripples=%d efficient=%d", ripMiss, effMiss)
	}
	if ratio := float64(ripMiss) / float64(effMiss); ratio < 3 {
		t.Fatalf("miss reduction = %.2fx at 32 threads, want >= 3x (paper reports 22-357x at 128)", ratio)
	}
}

func TestTraceSelectionGapGrowsWithThreads(t *testing.T) {
	// The redundancy is per-thread, so the miss ratio must widen as the
	// simulated thread count grows — the reason the paper's 128-core
	// machine shows such large reductions.
	g := testGraph(t, 10, graph.IC)
	ratioAt := func(workers int) float64 {
		rip := TraceSelection(g, Ripples, 5, 200, workers, 5)
		eff := TraceSelection(g, Efficient, 5, 200, workers, 5)
		return float64(rip.Stats.CombinedMisses()) / float64(eff.Stats.CombinedMisses())
	}
	if r8, r64 := ratioAt(8), ratioAt(64); r64 <= r8 {
		t.Fatalf("miss ratio did not grow with threads: 8→%.2f 64→%.2f", r8, r64)
	}
}

func TestTraceSelectionDeterministic(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	a := TraceSelection(g, Efficient, 5, 100, 8, 7)
	b := TraceSelection(g, Efficient, 5, 100, 8, 7)
	if a.Stats != b.Stats {
		t.Fatal("trace not deterministic")
	}
}
