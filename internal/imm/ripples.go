package imm

import (
	"sort"
	"time"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/rrr"
	"repro/internal/sched"
)

// ripplesEngine reproduces the Ripples framework's parallelization and
// its documented bottlenecks:
//
//   - Generation: static θ/p partitioning; every set is sorted into a
//     vertex list regardless of density.
//   - Selection (Find_Most_Influential_Set): vertices are partitioned
//     across workers; every worker traverses ALL RRR sets, using binary
//     search to locate its vertex range inside each sorted set, both for
//     the initial occurrence count and for every per-seed decrement
//     round. Per-worker work therefore contains a θ·log|R| term that
//     does not shrink with the worker count — the scalability wall in
//     the paper's Figures 1 and 2.
type ripplesEngine struct {
	g   *graph.Graph
	opt Options
	p   *setPool
	bd  Breakdown
}

func newRipplesEngine(g *graph.Graph, opt Options) *ripplesEngine {
	return &ripplesEngine{g: g, opt: opt, p: newSetPool(g.N)}
}

func (e *ripplesEngine) SetCount() int64      { return int64(len(e.p.sets)) }
func (e *ripplesEngine) Stats() rrr.Stats     { return e.p.stats() }
func (e *ripplesEngine) Breakdown() Breakdown { return e.bd }

// PoolFootprint reports the baseline's flat list pool: every byte is set
// payload (4 per member), there is no index, and the raw-slice baseline
// is by definition the same figure.
func (e *ripplesEngine) PoolFootprint() PoolFootprint {
	var set int64
	for _, s := range e.p.sets {
		set += s.Bytes()
	}
	return PoolFootprint{SetBytes: set, RawBytes: 4 * e.p.totalMembers}
}

func (e *ripplesEngine) Generate(target int64) {
	from, to := e.p.grow(target)
	if from == to {
		return
	}
	start := time.Now()
	edges, members := generateStatic(e.g, e.p, rrr.ListOnlyPolicy(), e.opt.Seed, e.opt.Workers, from, to)
	e.bd.SamplingWall += time.Since(start)
	// Modeled cost: edge traversals plus the per-set sort, charged at
	// |R|·log2|R| comparisons against the worker's average set size. The
	// static schedule's critical path is the slowest worker.
	setsPer := maxI64(1, (to-from)/int64(len(edges)))
	perWorker := make([]int64, len(edges))
	for w := range perWorker {
		avg := float64(members[w]) / float64(setsPer)
		perWorker[w] = edges[w] + int64(float64(members[w])*log2f(avg+2))
	}
	e.bd.SamplingModeled += float64(maxOf(perWorker))
}

// SelectSeeds implements Ripples' vertex-partitioned greedy selection.
func (e *ripplesEngine) SelectSeeds(k int) ([]int32, float64) {
	start := time.Now()
	defer func() { e.bd.SelectionWall += time.Since(start) }()

	nsets := len(e.p.sets)
	n := int(e.g.N)
	p := e.opt.Workers
	if nsets == 0 || k == 0 {
		return nil, 0
	}

	counts := make([]int64, n) // written only by the range owner
	ops := make([]int64, p)

	// Initial occurrence count: every worker walks every set, binary
	// searching for the bounds of its own vertex range.
	sched.Static(p, n, func(w, vl, vh int) {
		var o int64
		for _, set := range e.p.sets {
			raw := set.(*rrr.ListSet).Raw()
			lo := sort.Search(len(raw), func(i int) bool { return raw[i] >= int32(vl) })
			hi := lo + sort.Search(len(raw)-lo, func(i int) bool { return raw[lo+i] >= int32(vh) })
			o += int64(log2i(len(raw))) * 2
			for _, v := range raw[lo:hi] {
				counts[v]++
			}
			o += int64(hi - lo)
		}
		ops[w] += o
	})

	covered := bitset.New(nsets) // read-only inside passes, updated between rounds
	coveredCount := 0
	pClamped := p
	if pClamped > n {
		pClamped = n
	}
	newly := make([][]int32, pClamped)
	seeds := make([]int32, 0, k)
	for len(seeds) < k && len(seeds) < n {
		v := argMaxPlain(counts, p)
		seeds = append(seeds, v)
		counts[v] = -1 // retire from future argmax rounds

		// Retirement: every worker again scans every live set; if it
		// contains v, decrement this worker's vertex range. Every worker
		// redundantly recomputes containment — that redundancy is the
		// Ripples cost structure being reproduced. Newly covered ids are
		// collected per worker (all workers compute the same list) and
		// folded into `covered` after the barrier.
		for w := range newly {
			newly[w] = newly[w][:0]
		}
		sched.Static(p, n, func(w, vl, vh int) {
			var o int64
			for si, set := range e.p.sets {
				if covered.Test(si) {
					continue
				}
				ls := set.(*rrr.ListSet)
				raw := ls.Raw()
				o += int64(log2i(len(raw)))
				if !ls.Contains(v) {
					continue
				}
				newly[w] = append(newly[w], int32(si))
				lo := sort.Search(len(raw), func(i int) bool { return raw[i] >= int32(vl) })
				hi := lo + sort.Search(len(raw)-lo, func(i int) bool { return raw[lo+i] >= int32(vh) })
				o += int64(log2i(len(raw))) * 2
				for _, u := range raw[lo:hi] {
					if counts[u] >= 0 {
						counts[u]--
					}
				}
				o += int64(hi - lo)
			}
			ops[w] += o
		})
		for _, si := range newly[0] {
			covered.Set(int(si))
		}
		coveredCount += len(newly[0])
		if coveredCount == nsets {
			// Everything covered: remaining seeds add nothing; fill with
			// the highest remaining degree-0 counts deterministically.
			for len(seeds) < k && len(seeds) < n {
				v := argMaxPlain(counts, p)
				if v < 0 {
					break
				}
				seeds = append(seeds, v)
				counts[v] = -1
			}
			break
		}
	}
	// Argmax rounds cost n/p per worker per round.
	for w := range ops {
		ops[w] += int64(len(seeds)) * int64(n/p+1)
	}
	e.bd.SelectionModeled += float64(maxOf(ops))
	return seeds, float64(coveredCount) / float64(nsets)
}

// argMaxPlain is a deterministic parallel argmax over a plain slice;
// entries of -1 are retired. Returns -1 if every entry is retired.
func argMaxPlain(counts []int64, p int) int32 {
	n := len(counts)
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	type reg struct {
		v int32
		c int64
	}
	regions := make([]reg, p)
	sched.Static(p, n, func(w, lo, hi int) {
		best := reg{v: -1, c: -1}
		for v := lo; v < hi; v++ {
			if counts[v] > best.c {
				best = reg{v: int32(v), c: counts[v]}
			}
		}
		regions[w] = best
	})
	// Regions arrive in ascending vertex order, so strict > keeps the
	// lowest vertex id on ties — deterministic across worker counts.
	best := reg{v: -1, c: -1}
	for _, r := range regions {
		if r.v >= 0 && r.c > best.c {
			best = r
		}
	}
	return best.v
}

func log2i(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

func log2f(x float64) float64 {
	if x < 2 {
		return 1
	}
	b := 0.0
	for x >= 2 {
		x /= 2
		b++
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
