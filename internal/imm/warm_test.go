package imm

// Tests of the warm-reuse seam: a WarmEngine serving a sequence of
// queries must return, for every query, exactly what a cold Run with the
// same options returns — seeds, θ, rounds, coverage, LB, set stats, and
// pool footprint — regardless of what earlier queries left in the pool.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// runWarm serves one query through a warm engine via the same RunEngine
// driver the serving layer uses.
func runWarm(t *testing.T, g *graph.Graph, we *WarmEngine, opt Options) *Result {
	t.Helper()
	we.BeginQuery()
	res, err := RunEngine(g, opt, we)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertWarmEqualsCold compares every deterministic Result field (the
// Breakdown is intentionally excluded: warm queries do less work).
func assertWarmEqualsCold(t *testing.T, label string, warm, cold *Result) {
	t.Helper()
	if !reflect.DeepEqual(warm.Seeds, cold.Seeds) {
		t.Fatalf("%s: warm seeds %v != cold seeds %v", label, warm.Seeds, cold.Seeds)
	}
	if warm.Theta != cold.Theta || warm.Rounds != cold.Rounds {
		t.Fatalf("%s: warm theta/rounds %d/%d != cold %d/%d", label, warm.Theta, warm.Rounds, cold.Theta, cold.Rounds)
	}
	if warm.Coverage != cold.Coverage || warm.LB != cold.LB {
		t.Fatalf("%s: warm coverage/LB %v/%v != cold %v/%v", label, warm.Coverage, warm.LB, cold.Coverage, cold.LB)
	}
	if warm.SetStats != cold.SetStats {
		t.Fatalf("%s: warm set stats %+v != cold %+v", label, warm.SetStats, cold.SetStats)
	}
	if warm.Pool != cold.Pool {
		t.Fatalf("%s: warm pool footprint %+v != cold %+v", label, warm.Pool, cold.Pool)
	}
}

// queryShape is one (k, epsilon) point of a served sequence.
type queryShape struct {
	k   int
	eps float64
}

// TestWarmEngineMatchesColdRun drives a warm engine through query
// sequences that shrink, grow, and revisit θ, across both models, both
// pool representations, and both selection kernels, pinning every
// answer against a cold Run.
func TestWarmEngineMatchesColdRun(t *testing.T) {
	shapes := []queryShape{
		{k: 10, eps: 0.5}, // cold
		{k: 10, eps: 0.5}, // exact repeat: full reuse
		{k: 4, eps: 0.7},  // smaller query: truncated view
		{k: 20, eps: 0.4}, // larger query: θ extension
		{k: 10, eps: 0.5}, // back to the original: still identical
	}
	for _, model := range []graph.Model{graph.IC, graph.LT} {
		for _, pool := range []PoolKind{PoolSlices, PoolCompressed} {
			for _, sel := range []SelectionKind{SelectCELF, SelectScan} {
				g := testGraph(t, 8, model)
				opt := Defaults()
				opt.Workers = 2
				opt.Seed = 7
				opt.MaxTheta = 8000
				opt.Pool = pool
				opt.Selection = sel
				we, err := NewWarmEngine(g, opt)
				if err != nil {
					t.Fatal(err)
				}
				for i, q := range shapes {
					o := opt
					o.K = q.k
					o.Epsilon = q.eps
					warm := runWarm(t, g, we, o)
					cold, err := Run(g, o)
					if err != nil {
						t.Fatal(err)
					}
					label := string(rune('0'+i)) + "/" + model.String() + "/" + pool.String() + "/" + sel.String()
					assertWarmEqualsCold(t, label, warm, cold)
				}
			}
		}
	}
}

// TestWarmEngineMatchesColdAcrossWorkers pins that warm reuse composes
// with the existing worker-count invariance: the pool may be generated
// at one worker count and the query served at another.
func TestWarmEngineMatchesColdAcrossWorkers(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	base := Defaults()
	base.K = 8
	base.Seed = 3
	base.MaxTheta = 6000
	cold, err := Run(g, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		opt := base
		opt.Workers = w
		we, err := NewWarmEngine(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		// Pre-warm with a larger query so the serve is fully truncated.
		pre := opt
		pre.K = 30
		pre.Epsilon = 0.35
		runWarm(t, g, we, pre)
		warm := runWarm(t, g, we, opt)
		if !reflect.DeepEqual(warm.Seeds, cold.Seeds) || warm.Theta != cold.Theta {
			t.Fatalf("workers=%d: warm %v/θ=%d != cold %v/θ=%d", w, warm.Seeds, warm.Theta, cold.Seeds, cold.Theta)
		}
	}
}

// TestWarmEngineReusesPool pins the amortization itself: an exact repeat
// generates nothing, a smaller query generates nothing, and a larger
// query only extends.
func TestWarmEngineReusesPool(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	opt := Defaults()
	opt.K = 10
	opt.Workers = 2
	opt.Seed = 7
	opt.MaxTheta = 8000
	we, err := NewWarmEngine(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	runWarm(t, g, we, opt)
	phys := we.PhysicalSets()
	if phys == 0 {
		t.Fatal("cold query generated no sets")
	}

	runWarm(t, g, we, opt)
	if got := we.PhysicalSets(); got != phys {
		t.Fatalf("exact repeat grew the pool: %d -> %d", phys, got)
	}

	small := opt
	small.K = 3
	small.Epsilon = 0.8
	res := runWarm(t, g, we, small)
	if got := we.PhysicalSets(); got != phys {
		t.Fatalf("smaller query grew the pool: %d -> %d", phys, got)
	}
	if res.Theta > phys {
		t.Fatalf("smaller query θ=%d exceeds pool %d", res.Theta, phys)
	}

	large := opt
	large.K = 25
	large.Epsilon = 0.35
	res = runWarm(t, g, we, large)
	if got := we.PhysicalSets(); got < phys || got != res.Theta && got < res.Theta {
		t.Fatalf("larger query pool %d vs previous %d, θ=%d", got, phys, res.Theta)
	}
}

// TestAnswerBatchMatchesColdRun pins the batched multi-answer seam:
// every member of a mixed-(k, ε) batch must be byte-identical to a cold
// Run with the same options — across models, pool representations,
// selection kernels, and worker counts, and regardless of what an
// earlier batch left in the pool.
func TestAnswerBatchMatchesColdRun(t *testing.T) {
	batch := []BatchQuery{
		{K: 10, Epsilon: 0.5},
		{K: 4, Epsilon: 0.7},
		{K: 20, Epsilon: 0.4},
		{K: 7, Epsilon: 0.6},
	}
	for _, model := range []graph.Model{graph.IC, graph.LT} {
		for _, pool := range []PoolKind{PoolSlices, PoolCompressed} {
			for _, sel := range []SelectionKind{SelectCELF, SelectScan} {
				for _, workers := range []int{1, 4} {
					g := testGraph(t, 8, model)
					opt := Defaults()
					opt.Workers = workers
					opt.Seed = 7
					opt.MaxTheta = 8000
					opt.Pool = pool
					opt.Selection = sel
					we, err := NewWarmEngine(g, opt)
					if err != nil {
						t.Fatal(err)
					}
					label := model.String() + "/" + pool.String() + "/" + sel.String()
					// Round 1 runs on a cold pool, round 2 on the pool
					// round 1 left behind: both must match cold runs.
					for round := 0; round < 2; round++ {
						rep, err := we.AnswerBatch(opt, batch)
						if err != nil {
							t.Fatal(err)
						}
						if len(rep.Answers) != len(batch) {
							t.Fatalf("%s: %d answers for %d queries", label, len(rep.Answers), len(batch))
						}
						var generated int64
						for i, q := range batch {
							o := opt
							o.K = q.K
							o.Epsilon = q.Epsilon
							cold, err := Run(g, o)
							if err != nil {
								t.Fatal(err)
							}
							assertWarmEqualsCold(t, fmt.Sprintf("%s round %d member %d w%d", label, round, i, workers), rep.Answers[i].Res, cold)
							generated += rep.Answers[i].GeneratedSets
						}
						if round == 0 && (rep.Extensions == 0 || generated == 0) {
							t.Fatalf("%s: cold batch performed no extension (%d ext, %d generated)", label, rep.Extensions, generated)
						}
						if round == 1 && (rep.Extensions != 0 || generated != 0) {
							t.Fatalf("%s: repeat batch re-extended the pool (%d ext, %d generated)", label, rep.Extensions, generated)
						}
					}
				}
			}
		}
	}
}

// TestAnswerBatchSharedExtension pins the amortization the planner
// advertises: on a warm pool, a batch of distinct-k queries performs
// exactly one physical extension — the largest member generates, every
// other member is a pure prefix read that consumes the shared samples.
func TestAnswerBatchSharedExtension(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	opt := Defaults()
	opt.Workers = 2
	opt.Seed = 7
	opt.MaxTheta = 8000
	we, err := NewWarmEngine(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pool with a small query.
	small := opt
	small.K = 3
	small.Epsilon = 0.8
	runWarm(t, g, we, small)
	physStart := we.PhysicalSets()
	if physStart == 0 {
		t.Fatal("warm-up generated nothing")
	}

	batch := []BatchQuery{
		{K: 4, Epsilon: 0.6},
		{K: 20, Epsilon: 0.4}, // largest requirement: the one extender
		{K: 8, Epsilon: 0.5},
		{K: 12, Epsilon: 0.5},
	}
	rep, err := we.AnswerBatch(opt, batch)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Extensions != 1 {
		t.Fatalf("batch performed %d extensions, want exactly 1", rep.Extensions)
	}
	var generators, shared int
	for i, a := range rep.Answers {
		if a.GeneratedSets > 0 {
			generators++
			if batch[i].K != 20 {
				t.Fatalf("member %d (k=%d) generated %d sets; want only k=20 to extend", i, batch[i].K, a.GeneratedSets)
			}
		}
		if a.SharedSets > 0 {
			shared++
			if a.ReusedSets <= physStart && a.GeneratedSets == 0 {
				t.Fatalf("member %d reports shared sets %d but reused only %d of %d pre-batch sets", i, a.SharedSets, a.ReusedSets, physStart)
			}
		}
	}
	if generators != 1 {
		t.Fatalf("%d members generated sets, want exactly 1", generators)
	}
	if shared == 0 {
		t.Fatal("no member consumed shared (same-batch) samples")
	}
	if rep.PoolBytes <= 0 {
		t.Fatalf("batch reports non-positive pool bytes %d", rep.PoolBytes)
	}
}

// TestNewWarmEngineRejectsRipples pins the seam's contract: only the
// Efficient engine supports warm reuse.
func TestNewWarmEngineRejectsRipples(t *testing.T) {
	g := testGraph(t, 7, graph.IC)
	opt := Defaults()
	opt.Engine = Ripples
	if _, err := NewWarmEngine(g, opt); err == nil {
		t.Fatal("NewWarmEngine accepted the Ripples engine")
	}
}
