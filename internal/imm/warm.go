package imm

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/rrr"
)

// WarmEngine is the pool-reuse seam around RunEngine that the serving
// layer (internal/serve) is built on. It wraps the Efficient engine and
// keeps its sharded RRR pool — and, under kernel fusion, the global
// occurrence counter — alive across queries, so a query only pays for
// the sets its θ trajectory needs beyond what earlier queries already
// generated.
//
// Correctness rests on two properties of the underlying engine:
//
//   - Pool contents are a pure function of (graph, policy, seed, slot):
//     set i is drawn from the slot-indexed RNG stream rng.NewStream(seed,
//     i), so "the first θ sets" are identical whether they were generated
//     by this query, a previous one, or a cold Run.
//
//   - Selection is non-destructive and, through the limited-view seam
//     (selectCELFLimited / the flattened prefix for the scan kernel),
//     can be restricted to exactly the first θ sets, ignoring any sets a
//     previous larger query left behind.
//
// Together these make a warm answer byte-identical to a cold Run with
// the same (graph, Options): the θ-estimation trajectory in RunEngine
// observes the same coverage at every round, lands on the same final θ,
// and selects the same seeds. The tests in warm_test.go pin this across
// models, pool representations, selection kernels, worker counts, and
// arbitrary query orders.
//
// A WarmEngine serves one query at a time: Generate/SelectSeeds share
// the logical-limit state and the pool's selection scratch. Callers that
// serve concurrent queries must serialize access (internal/serve holds
// one mutex per warm engine).
type WarmEngine struct {
	g     *graph.Graph
	inner *efficientEngine
	// limit is the in-flight query's logical pool length: the largest
	// Generate target seen since BeginQuery. Selection and all result
	// statistics are restricted to the first limit sets even when the
	// physical pool is larger.
	limit int64
}

// NewWarmEngine returns a reusable engine for g under opt. Only the
// Efficient engine supports warm reuse (the Ripples baseline keeps no
// incremental index); opt's per-query fields (K, Epsilon) are ignored —
// each query's RunEngine call carries its own. The fields that shape
// pool bytes (Pool, AdaptiveRep, RepThreshold) and the RNG seed must
// stay fixed for the engine's lifetime: they define which pool this is.
func NewWarmEngine(g *graph.Graph, opt Options) (*WarmEngine, error) {
	if err := opt.normalize(g); err != nil {
		return nil, err
	}
	if opt.Engine != Efficient {
		return nil, fmt.Errorf("imm: warm reuse requires the Efficient engine, got %v", opt.Engine)
	}
	return &WarmEngine{g: g, inner: newEfficientEngine(g, opt)}, nil
}

// BeginQuery resets the logical pool view for a new query. The physical
// pool (and the fused counter) are retained — that is the reuse.
func (w *WarmEngine) BeginQuery() { w.limit = 0 }

// Generate extends the logical view to target sets, physically
// generating only the slots no earlier query produced.
func (w *WarmEngine) Generate(target int64) {
	if target > w.limit {
		w.limit = target
	}
	w.inner.Generate(target) // no-op when target ≤ physical size
}

// SelectSeeds selects k seeds over the logical view only. When the view
// covers the whole physical pool and fusion kept the base counter
// current, the fused counts seed the gains exactly as in a cold run;
// a truncated view derives the same counts from posting prefixes.
func (w *WarmEngine) SelectSeeds(k int) ([]int32, float64) {
	e := w.inner
	start := time.Now()
	defer func() { e.bd.SelectionWall += time.Since(start) }()

	var base *counter.Counter
	if w.limit == e.p.len() && e.baseFresh {
		base = e.base
	}
	var seeds []int32
	var cov float64
	var ops float64
	if e.opt.Selection == SelectScan {
		sets := e.p.flatten()[:w.limit]
		seeds, cov, ops = SelectOnSetsScan(e.g.N, sets, e.p.membersUpTo(w.limit), base, e.opt.Workers, e.opt.Update, k)
	} else {
		seeds, cov, ops = e.p.selectCELFLimited(base, e.opt.Workers, k, w.limit)
	}
	e.bd.SelectionModeled += ops
	return seeds, cov
}

// SetCount returns the logical pool length — what a cold run's pool
// size would be at this point of the query's trajectory.
func (w *WarmEngine) SetCount() int64 { return w.limit }

// Stats summarizes the set representations of the logical view.
func (w *WarmEngine) Stats() rrr.Stats { return w.inner.p.statsUpTo(w.limit) }

// PoolFootprint reports the resident bytes of the logical view, matching
// what a cold run of the same query would report.
func (w *WarmEngine) PoolFootprint() PoolFootprint { return w.inner.p.footprintUpTo(w.limit) }

// Breakdown returns the accumulated phase costs. Unlike seeds, θ, and
// coverage, the breakdown is not byte-identical to a cold run's: a warm
// query charges only the generation it actually performed.
func (w *WarmEngine) Breakdown() Breakdown { return w.inner.bd }

// PhysicalSets returns the number of sets resident in the underlying
// pool, across all queries served so far.
func (w *WarmEngine) PhysicalSets() int64 { return w.inner.p.len() }

// PhysicalFootprint reports the resident bytes of the whole physical
// pool — the quantity the serving layer's LRU byte budget accounts.
func (w *WarmEngine) PhysicalFootprint() PoolFootprint { return w.inner.p.footprint() }

// OverheadBytes reports the engine-resident memory outside the pool
// representation itself: the fused occurrence counter (8 bytes per
// vertex), the per-shard coverage scratch (one bit per set), and the
// fused kernel's generation-arena slack (capacity not covered by live
// sets — live arena bytes are already counted as set bytes). The
// serving layer adds it to the pool footprint so its byte budget bounds
// what a warm engine actually keeps resident.
func (w *WarmEngine) OverheadBytes() int64 {
	return 8*int64(w.g.N) + w.inner.p.len()/8 + w.inner.arenaSlackBytes()
}

// FootprintUpTo reports the resident bytes of the first n sets — the
// serving layer uses it to meter how many pool bytes a query reused.
func (w *WarmEngine) FootprintUpTo(n int64) PoolFootprint { return w.inner.p.footprintUpTo(n) }

// BatchQuery is one member of a shared-extension batch: the per-query
// parameters that vary across members. Everything else — graph, RNG
// seed, pool policy, MaxTheta — comes from the batch's base Options and
// is shared by construction (members of one batch serve one pool).
type BatchQuery struct {
	K       int
	Epsilon float64
}

// BatchAnswer is one member's answer plus its reuse accounting.
type BatchAnswer struct {
	Res *Result
	// ReusedSets counts the sets the member consumed without generating
	// them (min(θ, pool size when the member ran)); GeneratedSets the
	// sets its own trajectory added; SharedSets the reused sets that did
	// not exist when the batch started — samples another member of the
	// same batch generated on this member's behalf, the quantity the
	// serving layer reports as shared-extension savings.
	ReusedSets    int64
	GeneratedSets int64
	SharedSets    int64
	// ReusedBytes is the resident footprint of the reused prefix.
	ReusedBytes int64
}

// BatchReport is the outcome of AnswerBatch.
type BatchReport struct {
	// Answers holds one entry per query, in input order.
	Answers []BatchAnswer
	// Extensions counts the members whose trajectory physically grew the
	// pool. Members execute in descending sampling requirement, so on a
	// pool that is either cold or uniformly smaller than the largest
	// member's needs this is 1 (0 when the pool already covers everyone)
	// — the "one shared θ-extension" the batched planner advertises. A
	// smaller-requirement member can still extend when the adaptive
	// lower bound turns the λ′ ordering around; correctness never
	// depends on the count.
	Extensions int
	// PoolBytes is the engine's full resident footprint after the batch
	// (physical pool plus engine overhead) — the byte-budget quantity.
	PoolBytes int64
}

// AnswerBatch answers every query of a batch over the shared pool in
// one engine pass. Members run in descending sampling-requirement
// order (λ′ of their (k, ε), ties broken toward larger k, then smaller
// ε, then input order), so the most demanding member performs the one
// physical θ-extension and every other member is answered from its own
// θ-prefix of the grown pool via the logical-view seam. Each member's
// answer is byte-identical to a cold Run with the same (graph, Options,
// k, ε): the limited view replays exactly the cold trajectory, and pool
// contents are slot-deterministic, so execution order cannot leak into
// any member's result.
//
// base carries the engine-shaping options (its K and Epsilon are
// overridden per member). Like the rest of WarmEngine, AnswerBatch
// serves one batch at a time: callers must serialize.
func (w *WarmEngine) AnswerBatch(base Options, queries []BatchQuery) (*BatchReport, error) {
	rep := &BatchReport{Answers: make([]BatchAnswer, len(queries))}
	if len(queries) == 0 {
		rep.PoolBytes = w.PhysicalFootprint().TotalBytes() + w.OverheadBytes()
		return rep, nil
	}

	order := make([]int, len(queries))
	req := make([]float64, len(queries))
	for i, q := range queries {
		order[i] = i
		req[i] = samplingRequirement(w.g, q.K, base.Ell, q.Epsilon)
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		qa, qb := queries[ia], queries[ib]
		if req[ia] != req[ib] && !math.IsNaN(req[ia]) && !math.IsNaN(req[ib]) {
			return req[ia] > req[ib]
		}
		if qa.K != qb.K {
			return qa.K > qb.K
		}
		return qa.Epsilon < qb.Epsilon
	})

	physStart := w.PhysicalSets()
	for _, i := range order {
		o := base
		o.K = queries[i].K
		o.Epsilon = queries[i].Epsilon
		physBefore := w.PhysicalSets()
		w.BeginQuery()
		res, err := RunEngine(w.g, o, w)
		if err != nil {
			return nil, err
		}
		if w.PhysicalSets() > physBefore {
			rep.Extensions++
		}
		reused := res.Theta
		if physBefore < reused {
			reused = physBefore
		}
		shared := reused - physStart
		if shared < 0 {
			shared = 0
		}
		rep.Answers[i] = BatchAnswer{
			Res:           res,
			ReusedSets:    reused,
			GeneratedSets: w.PhysicalSets() - physBefore,
			SharedSets:    shared,
			ReusedBytes:   w.FootprintUpTo(reused).TotalBytes(),
		}
	}
	rep.PoolBytes = w.PhysicalFootprint().TotalBytes() + w.OverheadBytes()
	return rep, nil
}
