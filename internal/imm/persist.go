package imm

// Warm-pool freeze/thaw: the serialization seam behind the .impool
// snapshot format (internal/ingest) and the serving layer's disk tier
// (internal/serve). Freeze flattens a WarmEngine's sharded pool into a
// PoolState — per-shard set payloads in their resident representations,
// the inverted-index postings, and the (seed, slot-count) RNG metadata
// that makes the pool reproducible — bound to the graph it was built on
// by shape, model, delta epoch, and a content fingerprint. Thaw rebuilds
// a WarmEngine around those payloads without resampling anything.
//
// Correctness rests on the same slot determinism the warm seam relies
// on: pool slot i is a pure function of (graph, policy, seed, i), so a
// thawed pool whose binding checks pass is byte-for-byte the pool a cold
// Run would have generated on the same graph epoch — and every answer
// served from it is byte-identical to both the pre-freeze engine's and a
// cold Run's.

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/rrr"
	"repro/internal/sched"
)

// ErrPoolIncompatible reports a freeze/thaw binding mismatch: the pool
// state was built under a different graph, seed, or pool-shaping option
// than the thaw target. Callers treat it as "regenerate cold", never as
// corruption.
var ErrPoolIncompatible = errors.New("imm: pool state incompatible with thaw target")

// Set-kind tags used by PoolShardState.Kinds. They are part of the
// .impool wire format and must not be renumbered.
const (
	PoolSetList       = 0 // rrr.ListSet: Sizes[j] members in ListData
	PoolSetCompressed = 1 // rrr.CompressedSet: CompLens[j] bytes in CompData
	PoolSetBitmap     = 2 // rrr.BitmapSet: (n+63)/64 words in BitmapData
)

// PoolShardState is one shard's flattened payload. Per-set metadata
// lives in three parallel arrays (Kinds/Sizes/CompLens); the members
// themselves are concatenated into one blob per representation, so each
// blob keeps a fixed element size and can be aliased straight out of a
// 64-byte-aligned snapshot section (or an mmap of one) without decoding.
// Entry j's payload starts where entries 0..j-1 of the same kind end.
type PoolShardState struct {
	Kinds    []uint8 // PoolSetList/PoolSetCompressed/PoolSetBitmap per local entry
	Sizes    []int32 // member count per entry
	CompLens []int32 // encoded byte length per entry (0 unless compressed)

	ListData   []int32  // concatenated sorted member lists
	CompData   []byte   // concatenated delta-varint payloads
	BitmapData []uint64 // concatenated word rows, (N+63)/64 words each

	// PostIdx/PostData are the shard's CSR inverted index over all
	// entries, or nil when the shard was never indexed (scan-mode pools).
	PostIdx  []int32 // len N+1 when present
	PostData []int32
}

// PoolState is a frozen warm pool plus everything needed to decide
// whether a thaw target may adopt it: the graph binding (shape, model,
// delta epoch, content fingerprint) and the pool-shaping options (RNG
// seed, representation policy) that define which pool this is.
type PoolState struct {
	// Graph binding.
	N        int32
	M        int64
	Model    graph.Model
	Epoch    int64  // graph delta epoch the pool was frozen at
	GraphSum uint64 // GraphChecksum of the frozen-against graph

	// Pool identity: the RNG-slot metadata. Slot i of the pool is drawn
	// from the seed-indexed stream (graph, policy, Seed, i), so Seed plus
	// Count fully determine the θ-trajectory contents below Count.
	Seed         uint64
	Pool         PoolKind
	AdaptiveRep  bool
	RepThreshold float64

	Count        int64 // physical pool length (slots generated)
	TotalMembers int64 // Σ|R| over all Count sets

	Shards [poolShards]PoolShardState
}

// ShardCount returns the fixed pool shard count the state is striped
// over — part of the .impool format contract.
func (st *PoolState) ShardCount() int { return poolShards }

// GraphChecksum fingerprints a graph's full CSR content (shape, model,
// adjacency, and edge parameters) with FNV-1a over the array elements.
// The pool snapshot binds to it so a snapshot whose (N, M, model, epoch)
// happen to match a different graph is still rejected at thaw.
func GraphChecksum(g *graph.Graph) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		h ^= x
		h *= prime
	}
	mix(uint64(g.N))
	mix(uint64(g.M))
	mix(uint64(g.Model()))
	for _, x := range g.OutIndex {
		mix(uint64(x))
	}
	for _, v := range g.OutEdges {
		mix(uint64(uint32(v)))
	}
	for _, p := range g.OutProb {
		mix(uint64(math.Float32bits(p)))
	}
	for _, x := range g.InIndex {
		mix(uint64(x))
	}
	for _, v := range g.InEdges {
		mix(uint64(uint32(v)))
	}
	for _, p := range g.InProb {
		mix(uint64(math.Float32bits(p)))
	}
	for _, p := range g.InAccum {
		mix(uint64(math.Float32bits(p)))
	}
	return h
}

// Freeze flattens the engine's physical pool into a PoolState bound to
// the given graph delta epoch. Shards with pending (generated but not
// yet indexed) entries are indexed first, so the frozen index always
// covers the whole shard — the same invariant selection maintains.
//
// The returned state's ListData/CompData/BitmapData blobs are freshly
// owned copies (list sets may alias arena blocks that die with the
// engine), but PostIdx/PostData alias the live index arrays: the state
// is valid only until the engine serves again. Callers that persist the
// state (the .impool writer) consume it before releasing the engine's
// query lock.
func (w *WarmEngine) Freeze(epoch int64) (*PoolState, error) {
	e := w.inner
	p := e.p
	st := &PoolState{
		N:            p.n,
		M:            w.g.M,
		Model:        w.g.Model(),
		Epoch:        epoch,
		GraphSum:     GraphChecksum(w.g),
		Seed:         e.opt.Seed,
		Pool:         e.opt.Pool,
		AdaptiveRep:  e.opt.AdaptiveRep,
		RepThreshold: e.opt.RepThreshold,
		Count:        p.count,
		TotalMembers: p.totalMembers,
	}
	for s := range p.shards {
		sh := &p.shards[s]
		if sh.indexed > 0 && sh.indexed < len(sh.sets) {
			sh.extend(p.n)
		}
		out := &st.Shards[s]
		out.Kinds = make([]uint8, len(sh.sets))
		out.Sizes = make([]int32, len(sh.sets))
		out.CompLens = make([]int32, len(sh.sets))
		for j, set := range sh.sets {
			switch v := set.(type) {
			case *rrr.ListSet:
				out.Kinds[j] = PoolSetList
				out.Sizes[j] = int32(v.Size())
				out.ListData = append(out.ListData, v.Raw()...)
			case *rrr.CompressedSet:
				out.Kinds[j] = PoolSetCompressed
				out.Sizes[j] = int32(v.Size())
				enc := v.Encoded()
				out.CompLens[j] = int32(len(enc))
				out.CompData = append(out.CompData, enc...)
			case *rrr.BitmapSet:
				out.Kinds[j] = PoolSetBitmap
				out.Sizes[j] = int32(v.Size())
				out.BitmapData = append(out.BitmapData, v.Words()...)
			default:
				return nil, fmt.Errorf("imm: freeze: shard %d entry %d has unknown set representation %T", s, j, set)
			}
		}
		if sh.indexed == len(sh.sets) && sh.postIdx != nil {
			out.PostIdx = sh.postIdx
			out.PostData = sh.postData
		}
	}
	return st, nil
}

// ThawWarmEngine rebuilds a WarmEngine for g under opt from a frozen
// pool state, adopting the state's payload slices without copying (they
// may alias a memory-mapped snapshot; the engine never writes to them).
// The state must have been structurally validated by its producer (the
// .impool reader validates sortedness, ranges, blob extents, and index
// shape); ThawWarmEngine checks only the binding: graph shape, model,
// and content fingerprint, plus the pool-shaping options. Epoch policy
// is the caller's decision — a serving layer compares st.Epoch against
// its registry before calling.
//
// Under kernel fusion the global occurrence counter is rebuilt from the
// adopted sets in parallel, so a thawed engine answers exactly like the
// engine that was frozen — and like a cold Run on the same graph epoch.
func ThawWarmEngine(g *graph.Graph, opt Options, st *PoolState) (*WarmEngine, error) {
	if err := opt.normalize(g); err != nil {
		return nil, err
	}
	if opt.Engine != Efficient {
		return nil, fmt.Errorf("imm: warm reuse requires the Efficient engine, got %v", opt.Engine)
	}
	if g.N != st.N || g.M != st.M || g.Model() != st.Model {
		return nil, fmt.Errorf("%w: graph shape/model (%d, %d, %v) vs frozen (%d, %d, %v)",
			ErrPoolIncompatible, g.N, g.M, g.Model(), st.N, st.M, st.Model)
	}
	if sum := GraphChecksum(g); sum != st.GraphSum {
		return nil, fmt.Errorf("%w: graph content fingerprint %#x vs frozen %#x", ErrPoolIncompatible, sum, st.GraphSum)
	}
	if opt.Seed != st.Seed || opt.Pool != st.Pool || opt.AdaptiveRep != st.AdaptiveRep || opt.RepThreshold != st.RepThreshold {
		return nil, fmt.Errorf("%w: pool options (seed %d, pool %d, adaptive %v, threshold %v) vs frozen (%d, %d, %v, %v)",
			ErrPoolIncompatible, opt.Seed, int(opt.Pool), opt.AdaptiveRep, opt.RepThreshold,
			st.Seed, int(st.Pool), st.AdaptiveRep, st.RepThreshold)
	}
	if st.Count < 0 {
		return nil, fmt.Errorf("%w: negative pool length %d", ErrPoolIncompatible, st.Count)
	}

	e := newEfficientEngine(g, opt)
	p := e.p
	p.grow(st.Count)
	words := (int(st.N) + 63) / 64
	var members int64
	for s := range st.Shards {
		in := &st.Shards[s]
		sh := &p.shards[s]
		if len(in.Kinds) != len(sh.sets) || len(in.Sizes) != len(sh.sets) || len(in.CompLens) != len(sh.sets) {
			return nil, fmt.Errorf("%w: shard %d holds %d entries, pool length %d needs %d",
				ErrPoolIncompatible, s, len(in.Kinds), st.Count, len(sh.sets))
		}
		var lc, bc int
		var cc int
		for j := range sh.sets {
			size := int(in.Sizes[j])
			if size < 0 {
				return nil, fmt.Errorf("%w: shard %d entry %d has negative size", ErrPoolIncompatible, s, j)
			}
			switch in.Kinds[j] {
			case PoolSetList:
				if lc+size > len(in.ListData) {
					return nil, fmt.Errorf("%w: shard %d list payload overrun", ErrPoolIncompatible, s)
				}
				sh.sets[j] = rrr.AdoptSortedList(in.ListData[lc : lc+size : lc+size])
				lc += size
			case PoolSetCompressed:
				cl := int(in.CompLens[j])
				if cl < 0 || cc+cl > len(in.CompData) {
					return nil, fmt.Errorf("%w: shard %d compressed payload overrun", ErrPoolIncompatible, s)
				}
				sh.sets[j] = rrr.AdoptCompressed(in.CompData[cc:cc+cl:cc+cl], in.Sizes[j])
				cc += cl
			case PoolSetBitmap:
				if bc+words > len(in.BitmapData) {
					return nil, fmt.Errorf("%w: shard %d bitmap payload overrun", ErrPoolIncompatible, s)
				}
				sh.sets[j] = rrr.AdoptBitmap(st.N, in.BitmapData[bc:bc+words:bc+words], size)
				bc += words
			default:
				return nil, fmt.Errorf("%w: shard %d entry %d has unknown set kind %d", ErrPoolIncompatible, s, j, in.Kinds[j])
			}
			members += int64(size)
		}
		if lc != len(in.ListData) || cc != len(in.CompData) || bc != len(in.BitmapData) {
			return nil, fmt.Errorf("%w: shard %d payload blobs larger than entries consume", ErrPoolIncompatible, s)
		}
		if in.PostIdx != nil {
			if len(in.PostIdx) != int(st.N)+1 {
				return nil, fmt.Errorf("%w: shard %d index has %d offsets, want %d", ErrPoolIncompatible, s, len(in.PostIdx), int(st.N)+1)
			}
			sh.postIdx = in.PostIdx
			sh.postData = in.PostData
			sh.postCount = int64(len(in.PostData))
			sh.indexed = len(sh.sets)
		}
	}
	if members != st.TotalMembers {
		return nil, fmt.Errorf("%w: member sum %d vs frozen total %d", ErrPoolIncompatible, members, st.TotalMembers)
	}
	p.totalMembers = st.TotalMembers

	// Rebuild the fused occurrence counter from the adopted sets: atomic
	// increments commute, so the parallel rebuild lands on exactly the
	// counts incremental fusion would have accumulated.
	if opt.Fusion && p.count > 0 {
		rebuildBase(e.base, p, opt.Workers)
		e.baseFresh = true
	}
	return &WarmEngine{g: g, inner: e}, nil
}

// rebuildBase folds every pool member into base in parallel over the
// global slot range.
func rebuildBase(base *counter.Counter, p *shardedPool, workers int) {
	sched.Static(workers, int(p.count), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			p.get(int64(i)).ForEach(func(v int32) { base.Inc(v) })
		}
	})
}
