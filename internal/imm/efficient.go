package imm

import (
	"time"

	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/rrr"
	"repro/internal/sched"
)

// efficientEngine implements EFFICIENTIMM (§IV of the paper):
//
//   - RRRsets partitioning: selection work is split over the sets, not
//     the vertices, so per-worker selection cost is Σ|R|/p and shrinks
//     with the worker count (Algorithm 2).
//   - Concurrent global counter: occurrence counts live in one shared
//     array updated with 64-bit atomic adds; the argmax is the two-step
//     regional/global parallel reduction.
//   - Kernel fusion: each set increments the global counter immediately
//     after generation while it is still hot (Algorithm 3 lines 14-16).
//   - Adaptive representation: dense sets become bitmaps, sparse sets
//     stay sorted lists.
//   - Adaptive counter update: seed retirement either decrements covered
//     sets or rebuilds from survivors, whichever touches less data.
//   - Dynamic job balancing: generation jobs are spread over
//     work-stealing deques.
type efficientEngine struct {
	g   *graph.Graph
	opt Options
	p   *shardedPool
	bd  Breakdown

	policy rrr.Policy
	// base holds occurrence counts over the whole pool, maintained
	// incrementally by kernel fusion (or rebuilt per selection when
	// fusion is disabled).
	base *counter.Counter
	// baseMembers tracks how many members base has absorbed, to detect
	// staleness when fusion is off.
	baseFresh bool
	// gen holds the fused kernel's per-worker samplers, arenas, and emit
	// callbacks (fused.go), persistent across Generate calls.
	gen []*genWorker
	// remote, when non-nil, sources pool extensions from a distributed
	// slot generator (remote.go); local kernels are the fallback.
	remote SlotGenerator
}

// PolicyFromOptions derives the RRR representation policy the Efficient
// engine uses for opt. Exported so internal/dist can build rank-local
// pools that are byte-identical to what Run would have produced. The
// compressed pool kind switches sub-threshold sets to delta-encoded
// lists; AdaptiveRep independently governs the dense→bitset-row switch.
func PolicyFromOptions(opt Options) rrr.Policy {
	policy := rrr.ListOnlyPolicy()
	if opt.AdaptiveRep {
		policy = rrr.DefaultPolicy()
		if opt.RepThreshold > 0 {
			policy.DensityThreshold = opt.RepThreshold
		}
	}
	if opt.Pool == PoolCompressed {
		policy.Compress = true
	}
	return policy
}

func newEfficientEngine(g *graph.Graph, opt Options) *efficientEngine {
	policy := PolicyFromOptions(opt)
	return &efficientEngine{
		g:      g,
		opt:    opt,
		p:      newShardedPool(g.N),
		policy: policy,
		base:   counter.New(g.N),
	}
}

func (e *efficientEngine) SetCount() int64              { return e.p.len() }
func (e *efficientEngine) Stats() rrr.Stats             { return e.p.stats() }
func (e *efficientEngine) Breakdown() Breakdown         { return e.bd }
func (e *efficientEngine) PoolFootprint() PoolFootprint { return e.p.footprint() }

func (e *efficientEngine) Generate(target int64) {
	from, to := e.p.grow(target)
	if from == to {
		return
	}
	if e.remote != nil && e.generateRemote(from, to) {
		return
	}
	if e.opt.Kernel == KernelFused {
		e.generateFused(from, to)
		return
	}
	start := time.Now()

	fusionCounts := make([]int64, e.opt.Workers) // fused counter-update ops per worker
	var onSet func(w int, set rrr.Set)
	if e.opt.Fusion {
		onSet = func(w int, set rrr.Set) {
			set.ForEach(func(v int32) { e.base.Inc(v) })
			fusionCounts[w] += int64(set.Size())
		}
		e.baseFresh = true
	} else {
		e.baseFresh = false
	}

	var edges, members []int64
	var maxJob int64
	dynamic := e.opt.DynamicBalance
	if dynamic {
		// Keep at least ~8 jobs per worker so stealing can balance; cap
		// at the configured batch for locality on large pools.
		batch := e.opt.BatchSize
		if fair := int((to - from) / int64(8*e.opt.Workers)); fair < batch {
			batch = fair
		}
		if batch < 1 {
			batch = 1
		}
		edges, members, maxJob = generateDynamic(e.g, e.p, e.policy, e.opt.Seed, e.opt.Workers, batch, from, to, onSet)
	} else {
		edges, members = generateStatic(e.g, e.p, e.policy, e.opt.Seed, e.opt.Workers, from, to)
		if e.opt.Fusion {
			// Static schedule with fusion: fold counts in a second
			// static pass (still set-partitioned, still atomic).
			count := int(to - from)
			sched.Static(e.opt.Workers, count, func(w, s0, e0 int) {
				for i := s0; i < e0; i++ {
					set := e.p.get(from + int64(i))
					set.ForEach(func(v int32) { e.base.Inc(v) })
					fusionCounts[w] += int64(set.Size())
				}
			})
		}
	}
	e.bd.SamplingWall += time.Since(start)

	// Modeled cost: edge traversals plus sorting of list sets (bitmap
	// sets skip the sort — the adaptive-representation win) plus the
	// fused atomic updates (charged double for the lock prefix).
	totalSets := to - from
	sortCost := func(memberCount, setCount int64) int64 {
		return ModeledSortCost(e.policy, e.p.n, memberCount, setCount)
	}
	if dynamic {
		// Dynamic balancing spreads batch jobs across the simulated
		// workers; the critical path follows the greedy-scheduling bound
		// total/p + costliest job, independent of how many physical
		// cores executed the goroutines.
		total := sumOf(edges) + sortCost(sumOf(members), totalSets) + 2*sumOf(fusionCounts)
		e.bd.SamplingModeled += float64(total)/float64(e.opt.Workers) + float64(maxJob)
	} else {
		// Static schedule: the slowest worker's chunk gates the phase.
		setsPer := maxI64(1, totalSets/int64(len(edges)))
		perWorker := make([]int64, len(edges))
		for w := range perWorker {
			perWorker[w] = edges[w] + sortCost(members[w], setsPer) + 2*fusionCounts[w]
		}
		e.bd.SamplingModeled += float64(maxOf(perWorker))
	}
}

// SelectSeeds runs Find_Most_Influential_Set over the sharded pool. The
// default path is the parallel lazy-greedy selection over the inverted
// index (selectCELF); SelectScan falls back to the eager
// argmax-and-update kernel with the Figure 5 counter strategies. Both
// are non-destructive — coverage marks live in per-call scratch and the
// base counter is only read — so the pool can keep growing across
// θ-estimation rounds, and both return byte-identical seed sequences.
func (e *efficientEngine) SelectSeeds(k int) ([]int32, float64) {
	start := time.Now()
	defer func() { e.bd.SelectionWall += time.Since(start) }()

	var base *counter.Counter
	if e.baseFresh {
		base = e.base
	}
	var seeds []int32
	var cov float64
	var ops float64
	if e.opt.Selection == SelectScan {
		seeds, cov, ops = SelectOnSetsScan(e.g.N, e.p.flatten(), e.p.totalMembers, base, e.opt.Workers, e.opt.Update, k)
	} else {
		seeds, cov, ops = e.p.selectCELF(base, e.opt.Workers, k)
	}
	e.bd.SelectionModeled += ops
	return seeds, cov
}

// SelectOnSetsScan is the eager Find_Most_Influential_Set kernel over an
// explicit pool: set-partitioned containment probes, the global
// occurrence counter, and the adaptive decrement/rebuild update. base,
// when non-nil, must already hold the occurrence counts of every member
// of sets (the fused counter — in the distributed runtime, the allreduced
// per-rank counters); when nil the counter is rebuilt from the sets.
// totalMembers is Σ|R| over sets. The returned modeledOps is the
// critical-path cost the Breakdown accounts under SelectionModeled.
//
// This is the reference selection the CELF path (SelectOnSets) is pinned
// against, and the kernel the counter-update ablations exercise; it is
// deterministic for a given pool regardless of workers: argmax ties
// break toward the lower vertex id and counter updates commute.
func SelectOnSetsScan(n32 int32, sets []rrr.Set, totalMembers int64, base *counter.Counter, workers int, update counter.UpdateStrategy, k int) (result []int32, coverage float64, modeledOps float64) {
	nsets := len(sets)
	n := int(n32)
	p := workers
	if p < 1 {
		p = 1
	}
	if nsets == 0 || k == 0 {
		return nil, 0, 0
	}

	work := counter.New(n32)
	ops := make([]int64, p)
	if base != nil {
		// Copy the fused base counts; a streaming O(n/p) pass.
		src := base.Raw()
		dst := work.Raw()
		sched.Static(p, n, func(w, lo, hi int) {
			copy(dst[lo:hi], src[lo:hi])
			ops[w] += int64(hi-lo) / 8
		})
	} else {
		// No fusion: build the counter now by partitioning the sets
		// across workers and broadcasting members into the global
		// counter atomically (Figure 3's pattern).
		sched.Static(p, nsets, func(w, s0, e0 int) {
			var o int64
			for si := s0; si < e0; si++ {
				set := sets[si]
				set.ForEach(func(v int32) { work.Inc(v) })
				o += 2 * int64(set.Size())
			}
			ops[w] += o
		})
	}

	covered := make([]bool, nsets)
	coveredCount := 0
	surviving := totalMembers
	seeds := make([]int32, 0, k)
	raw := work.Raw()

	newly := make([][]int32, p)
	newlyMembers := make([]int64, p)

	for len(seeds) < k && len(seeds) < n {
		best := work.ArgMax(p)
		if best.Vertex < 0 || raw[best.Vertex] < 0 {
			break
		}
		v := best.Vertex
		seeds = append(seeds, v)
		raw[v] = -1 // sentinel: never re-selected
		for w := range ops {
			ops[w] += int64(n/p + 1) // argmax regional scan
		}

		// Phase A: each worker probes containment only in its own set
		// partition (set-partitioned, no redundancy) and collects the
		// newly covered sets.
		for w := range newly {
			newly[w] = newly[w][:0]
			newlyMembers[w] = 0
		}
		sched.Static(p, nsets, func(w, s0, e0 int) {
			var o int64
			for si := s0; si < e0; si++ {
				if covered[si] {
					continue
				}
				set := sets[si]
				o++ // membership probe: O(1) bitmap or O(log) list
				if _, isList := set.(*rrr.ListSet); isList {
					o += int64(log2i(set.Size()))
				}
				if set.Contains(v) {
					newly[w] = append(newly[w], int32(si))
					newlyMembers[w] += int64(set.Size())
				}
			}
			ops[w] += o
		})
		var coveredMembers int64
		newCovered := 0
		for w := range newly {
			coveredMembers += newlyMembers[w]
			newCovered += len(newly[w])
		}

		// Phase B: fix the counter. Adaptive update compares the work of
		// decrementing the covered sets against rebuilding from the
		// survivors (§IV.C).
		strategy := update
		if strategy == counter.AdaptiveUpdate {
			if counter.ChooseRebuild(coveredMembers, surviving-coveredMembers, int64(n)) {
				strategy = counter.Rebuild
			} else {
				strategy = counter.Decrement
			}
		}
		switch strategy {
		case counter.Decrement:
			sched.Static(p, p, func(w, s0, e0 int) {
				var o int64
				for slot := s0; slot < e0; slot++ {
					for _, si := range newly[slot] {
						covered[si] = true
						sets[si].ForEach(func(u int32) {
							// Atomic read: retired sentinels (-1) are
							// stable during the phase, live counts may
							// be decremented concurrently but never
							// below zero (each occurrence decrements
							// once).
							if work.Get(u) >= 0 {
								work.Dec(u)
							}
						})
						o += 2 * int64(sets[si].Size())
					}
				}
				ops[w] += o
			})
		case counter.Rebuild:
			for w := range newly {
				for _, si := range newly[w] {
					covered[si] = true
				}
			}
			work.Reset()
			sched.Static(p, nsets, func(w, s0, e0 int) {
				var o int64
				for si := s0; si < e0; si++ {
					if covered[si] {
						continue
					}
					sets[si].ForEach(func(u int32) { work.Inc(u) })
					o += 2 * int64(sets[si].Size())
				}
				ops[w] += o + int64(n/p)/8
			})
			// Restore retirement sentinels lost in the reset.
			for _, s := range seeds {
				raw[s] = -1
			}
		}
		surviving -= coveredMembers
		coveredCount += newCovered
		if coveredCount == nsets {
			for len(seeds) < k && len(seeds) < n {
				next := work.ArgMax(p)
				if next.Vertex < 0 || raw[next.Vertex] < 0 {
					break
				}
				seeds = append(seeds, next.Vertex)
				raw[next.Vertex] = -1
			}
			break
		}
	}
	return seeds, float64(coveredCount) / float64(nsets), float64(maxOf(ops))
}
