package imm

import (
	"sync"
	"time"

	"repro/internal/counter"
	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/numa"
	"repro/internal/rng"
	"repro/internal/rrr"
	"repro/internal/sched"
)

// The fused streaming generation kernel (KernelFused, the default).
//
// The materialized kernel is a produce-then-scan pipeline: diffusion
// traverses into a scratch buffer, rrr copies the buffer into a fresh
// per-set allocation, the pool stores it, and the fusion counter and the
// inverted index each re-walk what was just written. The fused kernel
// collapses those passes around diffusion's visitor seam
// (Sampler.SampleEmit):
//
//   - Stage A (sampling): each worker owns a genWorker — a reusable
//     sampler, an rrr.Arena, and an emit callback built once. The
//     traversal emits every member straight into the worker's buffer and
//     (when fusion is on) increments the global occurrence counter in
//     the same step; the finished set is then carved out of the worker's
//     arena (Policy.BuildArena), eliminating the per-set vertex copy and
//     header allocations. Scheduling (work stealing or static) and slot
//     RNG streams are identical to the materialized kernel, so pool
//     contents are byte-identical.
//
//   - Stage B (index merge): while the new sets are still hot, each pool
//     shard's CSR inverted index absorbs them on the shard's pinned
//     owner worker (numa.Topology.PinShards — single writer per shard,
//     owners spread across NUMA nodes to match the pool's interleaved
//     placement). Afterwards ensureIndexed is a no-op; selection starts
//     on a current index. Scan-mode selection never reads the index, so
//     the stage is skipped and IndexBytes stays zero, like the lazy
//     materialized path.
//
// Arenas live exactly as long as the engine (and therefore the pool), so
// arena-backed sets never outlive their storage; see rrr.Arena and the
// ListSet.Raw ownership contract for the aliasing rules.

// genWorker is one worker's persistent fused-kernel state.
type genWorker struct {
	smp   *diffusion.Sampler
	arena *rrr.Arena
	buf   []int32
	emit  func(v int32)  // built once; appends to buf (+ counter when fused)
	rng   rng.Xoshiro256 // re-seeded per slot (SeedStream) instead of allocated
}

// ensureGenWorkers grows the engine's per-worker kernel state to cover
// workers. Worker state persists across Generate calls, so warm
// θ-extension rounds re-enter the kernel without re-allocating samplers
// or arenas.
func (e *efficientEngine) ensureGenWorkers(workers int) {
	for len(e.gen) < workers {
		gw := &genWorker{smp: diffusion.NewSampler(e.g), arena: rrr.NewArena()}
		if e.opt.Fusion {
			gw.emit = func(v int32) {
				gw.buf = append(gw.buf, v)
				e.base.Inc(v)
			}
		} else {
			gw.emit = func(v int32) { gw.buf = append(gw.buf, v) }
		}
		e.gen = append(e.gen, gw)
	}
}

// fusedRange samples slots [s0, e0) on worker w through the visitor
// seam and returns the job's critical-path cost (edge visits plus build
// work), matching generateDynamic's per-job accounting.
func (e *efficientEngine) fusedRange(w int, s0, e0 int64, members []int64) int64 {
	gw := e.gen[w]
	smp := gw.smp
	edgesBefore := smp.EdgesVisited
	var jobMembers int64
	for i := s0; i < e0; i++ {
		gw.rng.SeedStream(e.opt.Seed, int(i))
		gw.buf = gw.buf[:0]
		smp.SampleUniformRootEmit(&gw.rng, gw.emit)
		e.p.put(i, e.policy.BuildArena(e.p.n, gw.buf, gw.arena))
		jobMembers += int64(len(gw.buf))
	}
	members[w] += jobMembers
	return (smp.EdgesVisited - edgesBefore) + 3*jobMembers
}

// generateFused fills pool slots [from, to) with the fused kernel. The
// modeled cost mirrors the materialized kernel's formulas exactly
// (greedy critical-path bound under dynamic balancing, slowest chunk
// under static), plus the Stage-B index-merge critical path that the
// materialized kernel would otherwise charge lazily via ensureIndexed.
func (e *efficientEngine) generateFused(from, to int64) {
	start := time.Now()
	workers := e.opt.Workers
	e.ensureGenWorkers(workers)
	e.baseFresh = e.opt.Fusion

	members := make([]int64, workers)
	edgeStart := make([]int64, workers)
	for w := 0; w < workers; w++ {
		edgeStart[w] = e.gen[w].smp.EdgesVisited
	}

	totalSets := to - from
	var maxJob int64
	dynamic := e.opt.DynamicBalance
	if dynamic {
		// Same job sizing as the materialized kernel: at least ~8 jobs
		// per worker so stealing can balance, capped at the configured
		// batch for locality.
		batch := e.opt.BatchSize
		if fair := int(totalSets / int64(8*workers)); fair < batch {
			batch = fair
		}
		if batch < 1 {
			batch = 1
		}
		b := int64(batch)
		jobs := (totalSets + b - 1) / b
		jobMax := make([]int64, workers)
		sched.WorkStealing(workers, jobs, func(w int, job int64) {
			s0 := from + job*b
			e0 := s0 + b
			if e0 > to {
				e0 = to
			}
			if cost := e.fusedRange(w, s0, e0, members); cost > jobMax[w] {
				jobMax[w] = cost
			}
		})
		maxJob = maxOf(jobMax)
	} else {
		sched.Static(workers, int(totalSets), func(w, s0, e0 int) {
			e.fusedRange(w, from+int64(s0), from+int64(e0), members)
		})
	}
	e.p.addMembers(members)

	// Stage B. Skipped for scan-mode selection, which never walks the
	// index (and whose footprint reporting pins IndexBytes at zero).
	var indexCritical int64
	if e.opt.Selection == SelectCELF {
		indexCritical = e.p.indexNewSets(workers)
	}
	e.bd.SamplingWall += time.Since(start)

	edges := make([]int64, workers)
	fusionCounts := make([]int64, workers)
	for w := 0; w < workers; w++ {
		edges[w] = e.gen[w].smp.EdgesVisited - edgeStart[w]
		if e.opt.Fusion {
			fusionCounts[w] = members[w]
		}
	}
	sortCost := func(memberCount, setCount int64) int64 {
		return ModeledSortCost(e.policy, e.p.n, memberCount, setCount)
	}
	if dynamic {
		total := sumOf(edges) + sortCost(sumOf(members), totalSets) + 2*sumOf(fusionCounts)
		e.bd.SamplingModeled += float64(total)/float64(workers) + float64(maxJob)
	} else {
		setsPer := maxI64(1, totalSets/int64(workers))
		perWorker := make([]int64, workers)
		for w := range perWorker {
			perWorker[w] = edges[w] + sortCost(members[w], setsPer) + 2*fusionCounts[w]
		}
		e.bd.SamplingModeled += float64(maxOf(perWorker))
	}
	e.bd.SamplingModeled += float64(indexCritical)
}

// arenaSlackBytes is the generation arenas' unused capacity — the fused
// kernel's contribution to a warm engine's memory overhead beyond what
// the resident sets account for.
func (e *efficientEngine) arenaSlackBytes() int64 {
	var b int64
	for _, gw := range e.gen {
		b += gw.arena.SlackBytes()
	}
	return b
}

// indexNewSets merges every shard's un-absorbed sets into its CSR
// inverted index, each shard on its pinned owner worker (single writer
// per shard), and returns the critical path — the costliest owner's
// decode-and-append work (2 ops per member), the same charge
// ensureIndexed bills per shard. Idempotent: a second call (including
// ensureIndexed during selection) finds nothing new.
func (p *shardedPool) indexNewSets(workers int) int64 {
	pins := numa.PerlmutterLike().PinShards(poolShards, workers)
	ops := make([]int64, len(pins))
	var wg sync.WaitGroup
	for w := range pins {
		if len(pins[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var o int64
			for _, s := range pins[w] {
				o += 2 * p.shards[s].extend(p.n)
			}
			ops[w] = o
		}(w)
	}
	wg.Wait()
	return maxOf(ops)
}

// GenerateSlotsFused is GenerateSlots' streaming variant, the per-rank
// half of the fused kernel for distributed front-ends: each member is
// emitted through the visitor seam into arena storage and incremented
// into cnt as it is produced, replacing the rank's post-pass over the
// finished sets. Set contents are byte-identical to GenerateSlots (slot
// indexed RNG streams), so gathered rank outputs still match a
// shared-memory pool. The arena must outlive the returned sets; cnt may
// be nil to skip counting.
func GenerateSlotsFused(g *graph.Graph, policy rrr.Policy, seed uint64, lo int64, out []rrr.Set, arena *rrr.Arena, cnt *counter.Counter) (members, edges int64) {
	smp := diffusion.NewSampler(g)
	var buf []int32
	var emit func(v int32)
	if cnt != nil {
		emit = func(v int32) {
			buf = append(buf, v)
			cnt.Inc(v)
		}
	} else {
		emit = func(v int32) { buf = append(buf, v) }
	}
	var r rng.Xoshiro256
	for i := range out {
		r.SeedStream(seed, int(lo+int64(i)))
		buf = buf[:0]
		smp.SampleUniformRootEmit(&r, emit)
		out[i] = policy.BuildArena(g.N, buf, arena)
		members += int64(len(buf))
	}
	return members, smp.EdgesVisited
}
