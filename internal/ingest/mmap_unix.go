//go:build unix

package ingest

import (
	"fmt"
	"hash/crc32"
	"os"
	"syscall"
	"unsafe"

	"repro/internal/imm"
)

// hostLittleEndian reports whether this machine's byte order matches the
// on-disk format. On the (rare) big-endian host the zero-copy aliasing
// below would read garbage, so mapping falls back to the streaming
// decoder, which byte-swaps explicitly.
var hostLittleEndian = func() bool {
	probe := uint16(1)
	return *(*byte)(unsafe.Pointer(&probe)) == 1
}()

// MapPoolSnapshotFile memory-maps a .impool file read-only and returns a
// PoolState whose payload slices alias the mapping — no copy of the set
// data is made, which is what makes promoting a demoted pool back to the
// hot tier cheap: the page cache already holds the bytes if the demotion
// was recent, and a cold promotion faults pages in on demand as the
// selection kernel touches them.
//
// Header, section table, and every section checksum are verified against
// the mapping before anything aliases it, exactly as the streaming
// reader would, so a corrupt file is rejected up front rather than
// discovered mid-query. (The CRC pass also happens to pre-fault the
// pages sequentially, the fastest way to pull the file in.)
//
// The mapping is intentionally never munmapped. Thawed engine sets alias
// it with no back-reference to a handle, so unmapping would require
// tracking every derived slice; instead the mapping lives for the
// process. That costs address space, not memory: the pages are
// file-backed and clean, so the OS reclaims them under pressure — which
// is precisely the disk tier's contract.
//
// When mapping is not possible (empty file, big-endian host, mmap
// failure) it falls back to the streaming reader transparently.
func MapPoolSnapshotFile(path string) (*imm.PoolState, PoolSnapshotInfo, error) {
	if !hostLittleEndian {
		return ReadPoolSnapshotFile(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, PoolSnapshotInfo{}, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, PoolSnapshotInfo{}, err
	}
	size := fi.Size()
	if size < snapHeaderSize+poolTableSize {
		f.Close()
		return nil, PoolSnapshotInfo{}, fmt.Errorf("%w: %d-byte file cannot hold a header", ErrPoolSnapshot, size)
	}
	if size > int64(int(^uint(0)>>1)) {
		f.Close()
		return ReadPoolSnapshotFile(path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	f.Close() // the mapping outlives the descriptor
	if err != nil {
		return ReadPoolSnapshotFile(path)
	}
	st, info, err := poolStateFromMapping(data)
	if err != nil {
		syscall.Munmap(data)
		return nil, info, err
	}
	return st, info, nil
}

// poolStateFromMapping decodes and validates a full .impool image,
// aliasing payload sections in place.
func poolStateFromMapping(data []byte) (*imm.PoolState, PoolSnapshotInfo, error) {
	secs, info, err := parsePoolHeader(data[:snapHeaderSize+poolTableSize])
	if err != nil {
		return nil, info, err
	}
	if info.Bytes > int64(len(data)) {
		return nil, info, fmt.Errorf("%w: sections need %d bytes, file holds %d", ErrPoolSnapshot, info.Bytes, len(data))
	}
	for i, sec := range secs {
		got := crc32.Checksum(data[sec.offset:sec.offset+sec.byteLen], castagnoli)
		if got != sec.crc {
			return nil, info, fmt.Errorf("%w: section %d checksum mismatch", ErrPoolSnapshot, i)
		}
	}
	meta := aliasI64(data, secs[0])
	if err := applyPoolMeta(meta, &info); err != nil {
		return nil, info, err
	}
	st := poolStateShell(info)
	for s := range st.Shards {
		sh := &st.Shards[s]
		base := 1 + s*poolSecPerShard
		sh.Kinds = aliasU8(data, secs[base+poolSecKinds])
		sh.Sizes = aliasI32(data, secs[base+poolSecSizes])
		sh.CompLens = aliasI32(data, secs[base+poolSecCompLens])
		sh.ListData = aliasI32(data, secs[base+poolSecListData])
		sh.CompData = aliasU8(data, secs[base+poolSecCompData])
		sh.BitmapData = aliasU64(data, secs[base+poolSecBitmapData])
		if secs[base+poolSecPostIdx].byteLen > 0 {
			sh.PostIdx = aliasI32(data, secs[base+poolSecPostIdx])
			sh.PostData = aliasI32(data, secs[base+poolSecPostData])
		}
	}
	if err := validatePoolState(st); err != nil {
		return nil, info, err
	}
	return st, info, nil
}

// The alias helpers reinterpret a section of the mapping in place.
// parsePoolHeader has already proven byteLen is an element multiple and
// the offset 64-byte aligned (for non-empty sections), which satisfies
// every element type's alignment.

func aliasU8(data []byte, sec snapSection) []byte {
	if sec.byteLen == 0 {
		return nil
	}
	return data[sec.offset : sec.offset+sec.byteLen : sec.offset+sec.byteLen]
}

func aliasI32(data []byte, sec snapSection) []int32 {
	if sec.byteLen == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&data[sec.offset])), sec.byteLen/4)
}

func aliasI64(data []byte, sec snapSection) []int64 {
	if sec.byteLen == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&data[sec.offset])), sec.byteLen/8)
}

func aliasU64(data []byte, sec snapSection) []uint64 {
	if sec.byteLen == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&data[sec.offset])), sec.byteLen/8)
}
