package ingest

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// messyEdgeList is a deliberately hostile input: comments in both
// styles, blank lines, CRLF endings, sparse out-of-order ids, tabs,
// duplicate edges and a self-loop.
const messyEdgeList = "# SNAP-style comment\n" +
	"%%MatrixMarket-style banner\n" +
	"\n" +
	"900000000 7\r\n" +
	"7\t13\n" +
	"13 900000000\n" +
	"13 900000000\n" + // duplicate
	"5 5\n" + // self-loop
	"7 13\n" + // duplicate
	"   13   5   \n" +
	"5 7" // no trailing newline

func TestIngestMatchesLegacyLoaderAcrossWorkers(t *testing.T) {
	for _, model := range []graph.Model{graph.IC, graph.LT} {
		for _, undirected := range []bool{false, true} {
			legacy, err := graph.LoadEdgeList(strings.NewReader(messyEdgeList), undirected, model, 7)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{1, 2, 3, 4, 8} {
				g, st, err := Bytes([]byte(messyEdgeList), Options{Workers: w, Undirected: undirected, Model: model, Seed: 7})
				if err != nil {
					t.Fatalf("model=%v undirected=%v workers=%d: %v", model, undirected, w, err)
				}
				if !graph.Equal(legacy, g) {
					t.Fatalf("model=%v undirected=%v workers=%d: graph differs from sequential reference", model, undirected, w)
				}
				if st.Edges != g.M || st.Nodes != g.N {
					t.Fatalf("stats shape %d/%d vs graph %d/%d", st.Nodes, st.Edges, g.N, g.M)
				}
				if st.SelfLoops == 0 || st.Duplicates == 0 {
					t.Fatalf("dedupe counters not populated: %+v", st)
				}
			}
		}
	}
}

func TestIngestDensificationIsSortBased(t *testing.T) {
	// Ids appear in descending order; ranks must follow the sorted id
	// set (5→0, 7→1, 900000000→2), not first appearance.
	g, _, err := Bytes([]byte("900000000 7\n7 5\n"), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.M != 2 {
		t.Fatalf("N=%d M=%d", g.N, g.M)
	}
	if !g.HasEdge(2, 1) || !g.HasEdge(1, 0) {
		t.Fatal("rank densification not by ascending raw id")
	}
}

func TestIngestGeneratedGraphAcrossWorkers(t *testing.T) {
	// A bigger, skewed graph: the R-MAT clone exercises heavy-degree
	// vertices and isolated-vertex dropping through the text round trip.
	src, err := gen.RMAT(gen.DefaultRMAT(10, 6), graph.IC, 3)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := graph.WriteEdgeList(&sb, src); err != nil {
		t.Fatal(err)
	}
	data := []byte(sb.String())
	ref, _, err := Bytes(data, Options{Workers: 1, Model: graph.LT, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := graph.LoadEdgeList(strings.NewReader(sb.String()), false, graph.LT, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(ref, legacy) {
		t.Fatal("workers=1 pipeline differs from sequential reference")
	}
	for _, w := range []int{2, 4, 8} {
		g, _, err := Bytes(data, Options{Workers: w, Model: graph.LT, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if !graph.Equal(ref, g) {
			t.Fatalf("workers=%d: graph differs from workers=1", w)
		}
	}
}

func TestIngestFileMatchesBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edges.txt")
	if err := os.WriteFile(path, []byte(messyEdgeList), 0o644); err != nil {
		t.Fatal(err)
	}
	fromFile, stFile, err := File(path, Options{Workers: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	fromBytes, _, err := Bytes([]byte(messyEdgeList), Options{Workers: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(fromFile, fromBytes) {
		t.Fatal("File and Bytes disagree")
	}
	if stFile.Bytes != int64(len(messyEdgeList)) {
		t.Fatalf("Bytes stat = %d, want %d", stFile.Bytes, len(messyEdgeList))
	}
}

func TestIngestStrictDedupe(t *testing.T) {
	if _, _, err := Bytes([]byte("1 2\n1 2\n"), Options{Dedupe: DedupeStrict}); err == nil {
		t.Fatal("duplicate edge not rejected under strict dedupe")
	} else if !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("unhelpful strict error: %v", err)
	}
	if _, _, err := Bytes([]byte("3 3\n"), Options{Dedupe: DedupeStrict}); err == nil {
		t.Fatal("self-loop not rejected under strict dedupe")
	}
	// Clean input passes strict.
	if _, _, err := Bytes([]byte("1 2\n2 3\n"), Options{Dedupe: DedupeStrict}); err != nil {
		t.Fatal(err)
	}
}

func TestIngestErrors(t *testing.T) {
	cases := map[string]string{
		"one field":        "5\n",
		"three fields":     "10 10 57\n", // MatrixMarket size line shape
		"alpha src":        "a 2\n",
		"alpha dst":        "1 b\n",
		"negative id":      "-1 2\n",
		"trailing garbage": "1 2x\n",
		"overflow":         "99999999999999999999 1\n",
	}
	for name, input := range cases {
		if _, _, err := Bytes([]byte(input), Options{}); err == nil {
			t.Errorf("%s (%q): expected error", name, input)
		}
	}
	// Error line numbers are absolute and deterministic even when the
	// bad line lands in a later chunk.
	input := strings.Repeat("1 2\n", 40) + "bad line\n" + strings.Repeat("3 4\n", 40)
	for _, w := range []int{1, 4} {
		_, _, err := Bytes([]byte(input), Options{Workers: w})
		if err == nil || !strings.Contains(err.Error(), "line 41") {
			t.Errorf("workers=%d: error %v does not name line 41", w, err)
		}
	}
}

func TestIngestOversizedLine(t *testing.T) {
	long := strings.Repeat("9", graph.MaxLineLen+10) + " 1\n"
	if _, _, err := Bytes([]byte(long), Options{}); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized line not rejected: %v", err)
	}
}

func TestIngestEmptyAndCommentOnly(t *testing.T) {
	for _, input := range []string{"", "# only\n% comments\n\n"} {
		g, st, err := Bytes([]byte(input), Options{Workers: 3})
		if err != nil {
			t.Fatalf("%q: %v", input, err)
		}
		if g.N != 0 || g.M != 0 || st.Edges != 0 {
			t.Fatalf("%q: non-empty graph %d/%d", input, g.N, g.M)
		}
	}
}

func TestIngestTooManyVertices(t *testing.T) {
	// Cheap guard check: fake a block count without building 2^31 ids is
	// not possible through the public API, so just assert sparse huge
	// ids stay in range.
	g, _, err := Bytes([]byte(fmt.Sprintf("%d 1\n", int64(1)<<40)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 2 {
		t.Fatalf("N=%d, want 2", g.N)
	}
}
