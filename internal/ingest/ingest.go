// Package ingest is the parallel graph-ingestion subsystem: a chunked,
// worker-parallel edge-list pipeline plus a versioned binary snapshot
// codec (snapshot.go), so a billion-edge SNAP file is parsed once and
// reloaded in milliseconds thereafter.
//
// The pipeline splits the input into byte ranges aligned to line
// boundaries, parses chunks concurrently into per-worker edge blocks
// with local max-id tallies, then runs a deterministic two-pass CSR
// construction: a parallel degree histogram, prefix-summed offsets, and
// a parallel scatter fill with per-chunk write cursors (no atomics).
// Vertex ids are densified by ascending raw id (graph.DensifyIDs), a
// pure function of the id set, so the resulting *graph.Graph — CSR
// arrays and diffusion weights alike — is byte-identical at every
// worker count and to the sequential graph.LoadEdgeList reference
// loader. The tests pin exactly that.
package ingest

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
)

// Dedupe selects the self-loop/duplicate-edge policy.
type Dedupe int

const (
	// DedupeSilent drops self-loops and duplicate directed edges during
	// CSR construction — the Builder semantics every loader in this
	// repository has always applied. The drop counts are reported in
	// Stats.
	DedupeSilent Dedupe = iota
	// DedupeStrict fails ingestion when the input contains any self-loop
	// or duplicate directed edge, for pipelines that treat them as data
	// corruption rather than preprocessing noise.
	DedupeStrict
)

// Options configures one ingestion run. The zero value ingests a
// directed IC graph with seed 0 on all CPUs under the silent dedupe
// policy.
type Options struct {
	// Workers is the parse/scatter parallelism. <= 0 means
	// runtime.NumCPU(). Workers = 1 is the fully sequential path; every
	// worker count produces a byte-identical graph.
	Workers int
	// Undirected adds both directions of every edge, matching the
	// undirected com-* SNAP graphs.
	Undirected bool
	// Model and Seed select the diffusion parameter assignment
	// (graph.AssignIC / graph.AssignLT), exactly as in Builder.Build.
	Model graph.Model
	Seed  uint64
	// Dedupe is the self-loop/duplicate policy; see the Dedupe constants.
	Dedupe Dedupe
}

// Stats reports what one ingestion run did.
type Stats struct {
	Bytes      int64 // input size
	RawEdges   int64 // directed edges parsed (after undirected doubling)
	Edges      int64 // final M after dedupe
	Nodes      int32
	SelfLoops  int64 // directed self-loop records dropped (or found, under strict)
	Duplicates int64 // directed duplicate records dropped (or found, under strict)
	Workers    int

	ParseWall  time.Duration // chunked parse (+ id densification)
	BuildWall  time.Duration // two-pass CSR construction
	AssignWall time.Duration // diffusion-parameter assignment
	TotalWall  time.Duration
}

// MBPerSec is the end-to-end ingest throughput in MiB/s.
func (s Stats) MBPerSec() float64 {
	if s.TotalWall <= 0 {
		return 0
	}
	return float64(s.Bytes) / (1 << 20) / s.TotalWall.Seconds()
}

// EdgesPerSec is the end-to-end ingest throughput in parsed edges/s.
func (s Stats) EdgesPerSec() float64 {
	if s.TotalWall <= 0 {
		return 0
	}
	return float64(s.RawEdges) / s.TotalWall.Seconds()
}

// File ingests an edge-list file. Regular files are read into memory
// by all workers in parallel (disjoint ReadAt ranges), then handed to
// Bytes; non-regular inputs (FIFOs, /dev/stdin) have no meaningful
// size or ReadAt and fall back to the streaming Reader path.
func File(path string, opt Options) (*graph.Graph, Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Stats{}, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, Stats{}, err
	}
	if !fi.Mode().IsRegular() {
		return Reader(f, opt)
	}
	size := fi.Size()
	data := make([]byte, size)
	workers := clampWorkers(opt.Workers, size)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		lo, hi := size*int64(w)/int64(workers), size*int64(w+1)/int64(workers)
		wg.Add(1)
		go func(w int, lo, hi int64) {
			defer wg.Done()
			if lo == hi {
				return
			}
			if _, err := f.ReadAt(data[lo:hi], lo); err != nil {
				errs[w] = err
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, Stats{}, fmt.Errorf("ingest: reading %s: %w", path, err)
		}
	}
	return Bytes(data, opt)
}

// Reader ingests an edge list from r (read fully into memory first;
// prefer File for large inputs, which reads in parallel).
func Reader(r io.Reader, opt Options) (*graph.Graph, Stats, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("ingest: reading edge list: %w", err)
	}
	return Bytes(data, opt)
}

// Bytes runs the full pipeline over an in-memory edge list.
func Bytes(data []byte, opt Options) (*graph.Graph, Stats, error) {
	start := time.Now()
	workers := clampWorkers(opt.Workers, int64(len(data)))
	st := Stats{Bytes: int64(len(data)), Workers: workers}

	// ---- stage 1: chunked parallel parse -------------------------------
	bounds := chunkBounds(data, workers)
	blocks := make([]parseBlock, len(bounds)-1)
	var wg sync.WaitGroup
	for c := range blocks {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			blocks[c] = parseChunk(data, bounds[c], bounds[c+1])
		}(c)
	}
	wg.Wait()
	// Deterministic error reporting: the earliest offending byte wins,
	// regardless of which worker hit it first.
	for _, b := range blocks {
		if b.err != nil {
			line := 1 + countNewlines(data[:b.errOff])
			return nil, st, fmt.Errorf("ingest: line %d: %v", line, b.err)
		}
	}

	// ---- stage 2: sort-based id densification --------------------------
	// Each chunk's ids arrive sorted and unique (parseChunk); a k-way
	// merge yields the global ranking. The result depends only on the id
	// set, so it is invariant under the chunking.
	ids := mergeSortedUnique(blocks)
	if int64(len(ids)) > int64(1)<<31-1 {
		return nil, st, fmt.Errorf("ingest: %d distinct vertex ids exceed int32 range", len(ids))
	}
	n := int32(len(ids))
	st.ParseWall = time.Since(start)

	// ---- stage 3: remap raw ids, expand undirected, drop self-loops ----
	buildStart := time.Now()
	dense := make([][]graph.Edge, len(blocks))
	loops := make([]int64, len(blocks))
	for c := range blocks {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			dense[c], loops[c] = remapBlock(blocks[c].edges, ids, opt.Undirected)
		}(c)
	}
	wg.Wait()
	for c := range blocks {
		st.SelfLoops += loops[c]
		st.RawEdges += int64(len(blocks[c].edges))
		blocks[c].edges = nil
	}
	if opt.Undirected {
		st.RawEdges *= 2
	}

	// ---- stage 4: two-pass CSR construction ----------------------------
	outIndex, outEdges, dups, err := buildOutCSR(n, dense, workers)
	if err != nil {
		return nil, st, err
	}
	st.Duplicates = dups
	st.Edges = outIndex[n]
	st.Nodes = n
	if opt.Dedupe == DedupeStrict && (st.SelfLoops > 0 || st.Duplicates > 0) {
		return nil, st, fmt.Errorf("ingest: strict dedupe: input contains %d self-loop(s) and %d duplicate edge(s)", st.SelfLoops, st.Duplicates)
	}
	inIndex, inEdges := buildInCSR(n, outIndex, outEdges, workers)
	g, err := graph.FromCSRTopology(n, outIndex[n], outIndex, outEdges, inIndex, inEdges)
	if err != nil {
		return nil, st, fmt.Errorf("ingest: %w", err)
	}
	st.BuildWall = time.Since(buildStart)

	// ---- stage 5: diffusion parameters ---------------------------------
	assignStart := time.Now()
	switch opt.Model {
	case graph.IC:
		graph.AssignIC(g, opt.Seed)
	case graph.LT:
		graph.AssignLT(g, opt.Seed)
	default:
		return nil, st, fmt.Errorf("ingest: unknown model %v", opt.Model)
	}
	st.AssignWall = time.Since(assignStart)
	st.TotalWall = time.Since(start)
	return g, st, nil
}

func clampWorkers(w int, size int64) int {
	if w <= 0 {
		w = runtime.NumCPU()
	}
	// No point splitting tiny inputs into empty chunks.
	if max := int(size/1024) + 1; w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// chunkBounds splits data into (roughly) equal byte ranges whose
// boundaries sit just after a newline, so every line lives in exactly
// one chunk. Bounds are monotone; chunks may be empty on tiny inputs.
func chunkBounds(data []byte, workers int) []int {
	bounds := make([]int, workers+1)
	bounds[workers] = len(data)
	for i := 1; i < workers; i++ {
		p := len(data) * i / workers
		if p < bounds[i-1] {
			p = bounds[i-1]
		}
		for p < len(data) && data[p] != '\n' {
			p++
		}
		if p < len(data) {
			p++ // one past the newline
		}
		bounds[i] = p
	}
	return bounds
}

type rawEdge struct{ src, dst int64 }

type parseBlock struct {
	edges  []rawEdge
	ids    []int64 // sorted unique raw ids of this chunk
	err    error
	errOff int // absolute byte offset of the offending line
}

// parseChunk parses data[lo:hi) line by line under the shared policy
// (graph.ParseEdgeLine) and pre-sorts the chunk's ids for the merge.
func parseChunk(data []byte, lo, hi int) parseBlock {
	var b parseBlock
	i := lo
	for i < hi {
		j := i
		for j < hi && data[j] != '\n' {
			j++
		}
		line := data[i:j]
		if len(line) > graph.MaxLineLen {
			b.err = fmt.Errorf("line exceeds %d bytes", graph.MaxLineLen)
			b.errOff = i
			return b
		}
		src, dst, skip, err := graph.ParseEdgeLine(line)
		if err != nil {
			b.err = err
			b.errOff = i
			return b
		}
		if !skip {
			b.edges = append(b.edges, rawEdge{src, dst})
		}
		i = j + 1
	}
	b.ids = make([]int64, 0, 2*len(b.edges))
	for _, e := range b.edges {
		b.ids = append(b.ids, e.src, e.dst)
	}
	b.ids = graph.DensifyIDs(b.ids)
	return b
}

func countNewlines(data []byte) int {
	n := 0
	for _, c := range data {
		if c == '\n' {
			n++
		}
	}
	return n
}

// mergeSortedUnique merges the per-chunk sorted unique id lists into the
// global sorted unique id ranking.
func mergeSortedUnique(blocks []parseBlock) []int64 {
	total := 0
	for _, b := range blocks {
		total += len(b.ids)
	}
	out := make([]int64, 0, total)
	cursors := make([]int, len(blocks))
	for {
		best := int64(0)
		found := false
		for c, b := range blocks {
			if cursors[c] < len(b.ids) {
				if v := b.ids[cursors[c]]; !found || v < best {
					best, found = v, true
				}
			}
		}
		if !found {
			return out
		}
		out = append(out, best)
		for c, b := range blocks {
			if cursors[c] < len(b.ids) && b.ids[cursors[c]] == best {
				cursors[c]++
			}
		}
	}
}

// remapBlock converts raw ids to dense ranks by binary search over the
// global ranking, expands undirected edges, and drops self-loops
// (counting them).
func remapBlock(edges []rawEdge, ids []int64, undirected bool) ([]graph.Edge, int64) {
	out := make([]graph.Edge, 0, len(edges)*expand(undirected))
	var loops int64
	for _, e := range edges {
		if e.src == e.dst {
			loops += int64(expand(undirected))
			continue
		}
		s, d := graph.RankID(ids, e.src), graph.RankID(ids, e.dst)
		out = append(out, graph.Edge{Src: s, Dst: d})
		if undirected {
			out = append(out, graph.Edge{Src: d, Dst: s})
		}
	}
	return out, loops
}

func expand(undirected bool) int {
	if undirected {
		return 2
	}
	return 1
}

// buildOutCSR lays out the forward CSR in two passes: a parallel
// per-chunk degree histogram whose prefix sums give every chunk a
// private write cursor per vertex (scatter without atomics), then a
// parallel per-segment sort + dedupe + compaction. The result is the
// sorted, duplicate-free CSR — a pure function of the edge set,
// independent of chunking.
func buildOutCSR(n int32, blocks [][]graph.Edge, workers int) (index []int64, edges []int32, dups int64, err error) {
	// Pass 1a: per-chunk out-degree histograms.
	counts := make([][]int32, len(blocks))
	var wg sync.WaitGroup
	for c := range blocks {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cnt := make([]int32, n)
			for _, e := range blocks[c] {
				cnt[e.Src]++
			}
			counts[c] = cnt
		}(c)
	}
	wg.Wait()

	// Pass 1b: global offsets and per-chunk cursors.
	dupIndex := make([]int64, n+1)
	cursors := make([][]int64, len(blocks))
	for c := range cursors {
		cursors[c] = make([]int64, n)
	}
	var total int64
	for u := int32(0); u < n; u++ {
		dupIndex[u] = total
		for c := range blocks {
			cursors[c][u] = total
			total += int64(counts[c][u])
		}
	}
	dupIndex[n] = total

	// Pass 1c: parallel scatter — each chunk owns disjoint cursor ranges.
	scattered := make([]int32, total)
	for c := range blocks {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cur := cursors[c]
			for _, e := range blocks[c] {
				scattered[cur[e.Src]] = e.Dst
				cur[e.Src]++
			}
		}(c)
	}
	wg.Wait()

	// Pass 2a: parallel per-segment sort + unique count over contiguous
	// vertex ranges.
	uniq := make([]int64, n)
	parallelRanges(int(n), workers, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			seg := scattered[dupIndex[u]:dupIndex[u+1]]
			sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
			var k int64
			for i, v := range seg {
				if i == 0 || v != seg[i-1] {
					k++
				}
			}
			uniq[u] = k
		}
	})

	// Pass 2b: final offsets and parallel compaction.
	index = make([]int64, n+1)
	var m int64
	for u := int32(0); u < n; u++ {
		index[u] = m
		m += uniq[u]
	}
	index[n] = m
	edges = make([]int32, m)
	parallelRanges(int(n), workers, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			seg := scattered[dupIndex[u]:dupIndex[u+1]]
			w := index[u]
			for i, v := range seg {
				if i == 0 || v != seg[i-1] {
					edges[w] = v
					w++
				}
			}
		}
	})
	return index, edges, total - m, nil
}

// buildInCSR derives the transpose CSR from the final forward CSR with
// the same histogram/prefix/scatter discipline: contiguous source
// ranges per worker, per-range cursor bases, so in-segments come out
// sorted by source without any post-sort.
func buildInCSR(n int32, outIndex []int64, outEdges []int32, workers int) ([]int64, []int32) {
	parts := workers
	if parts > int(n) && n > 0 {
		parts = int(n)
	}
	if parts < 1 {
		parts = 1
	}
	counts := make([][]int32, parts)
	var wg sync.WaitGroup
	for p := 0; p < parts; p++ {
		lo, hi := int32(int(n)*p/parts), int32(int(n)*(p+1)/parts)
		wg.Add(1)
		go func(p int, lo, hi int32) {
			defer wg.Done()
			cnt := make([]int32, n)
			for k := outIndex[lo]; k < outIndex[hi]; k++ {
				cnt[outEdges[k]]++
			}
			counts[p] = cnt
		}(p, lo, hi)
	}
	wg.Wait()

	inIndex := make([]int64, n+1)
	cursors := make([][]int64, parts)
	for p := range cursors {
		cursors[p] = make([]int64, n)
	}
	var total int64
	for v := int32(0); v < n; v++ {
		inIndex[v] = total
		for p := 0; p < parts; p++ {
			cursors[p][v] = total
			total += int64(counts[p][v])
		}
	}
	inIndex[n] = total

	inEdges := make([]int32, total)
	for p := 0; p < parts; p++ {
		lo, hi := int32(int(n)*p/parts), int32(int(n)*(p+1)/parts)
		wg.Add(1)
		go func(p int, lo, hi int32) {
			defer wg.Done()
			cur := cursors[p]
			for u := lo; u < hi; u++ {
				for k := outIndex[u]; k < outIndex[u+1]; k++ {
					v := outEdges[k]
					inEdges[cur[v]] = u
					cur[v]++
				}
			}
		}(p, lo, hi)
	}
	wg.Wait()
	return inIndex, inEdges
}

// parallelRanges runs fn over contiguous [lo, hi) partitions of [0, n).
func parallelRanges(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for p := 0; p < workers; p++ {
		lo, hi := n*p/workers, n*(p+1)/workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
