package ingest

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/bits"
	"os"

	"repro/internal/compress"
	"repro/internal/graph"
	"repro/internal/imm"
)

// The .impool binary pool-snapshot format, version 1 — the warm-pool
// persistence companion to .imsnap/.imdelta. All integers are
// little-endian. Like its siblings it is a fixed header, a section
// table, and raw payloads at 64-byte-aligned offsets, CRC32-C-checked
// per section and over the header, so a reader can either stream-decode
// or mmap the file and alias every section in place.
//
//	offset  size  field
//	0       8     magic "IMPOOL\x1a\x00"
//	8       4     format version (1)
//	12      4     flags (bit 0: compressed pool kind, bit 1: adaptive representation)
//	16      8     pool RNG seed
//	24      8     N (vertices of the bound graph)
//	32      8     pool length (slots generated)
//	40      4     section count (129)
//	44      4     CRC32-C of bytes [0,44) + the section table
//	48      129×32 section table (same entry shape as .imsnap)
//	…             payloads, 64-byte aligned, zero-padded between
//
// Section 0 is the metadata block: 7 little-endian int64 words — graph
// edge count M, graph delta epoch, total pool members Σ|R|, the
// GraphChecksum content fingerprint, the representation density
// threshold (float64 bits), the diffusion model, and the shard count
// (fixed at 16 in version 1; anything else is rejected). Then 8
// sections per shard, in shard order: Kinds (u8 per entry), Sizes
// (i32), CompLens (i32), ListData (i32), CompData (u8), BitmapData
// (u64), PostIdx (i32, N+1 offsets or empty when the shard is
// unindexed), PostData (i32). Together with the header's (seed, N,
// count) these reconstruct an imm.PoolState exactly; the encoding is
// canonical — the same state always produces identical bytes, which
// FuzzPoolSnapshotRoundTrip pins.
//
// Every structural defect — bad magic or version, a checksum mismatch,
// a non-canonical section table, payload extents that disagree with the
// per-entry metadata, unsorted or out-of-range members, a representation
// that contradicts the frozen policy — surfaces as an error wrapping
// ErrPoolSnapshot, never a panic and never a silently-wrong pool.
// Binding staleness (a snapshot frozen at an older graph epoch or
// against different graph content) is a separate condition, reported by
// ValidatePoolGraph as ErrPoolStale so callers can fall back to cold
// regeneration instead of treating the file as corrupt.

// PoolSnapshotVersion is the current .impool format version.
const PoolSnapshotVersion = 1

// PoolSnapshotExt is the conventional file extension.
const PoolSnapshotExt = ".impool"

var poolMagic = [8]byte{'I', 'M', 'P', 'O', 'O', 'L', 0x1a, 0x00}

// ErrPoolSnapshot is wrapped by every structural .impool failure:
// corruption, truncation, checksum mismatches, and invalid pool
// payloads.
var ErrPoolSnapshot = errors.New("ingest: invalid pool snapshot")

// ErrPoolStale is wrapped when a structurally valid snapshot does not
// bind to the graph a caller wants to thaw it against — wrong delta
// epoch, shape, model, or content fingerprint. Stale snapshots are
// safe to discard and regenerate, not corrupt.
var ErrPoolStale = errors.New("ingest: pool snapshot stale")

const (
	poolShardsV1       = 16
	poolSecPerShard    = 8
	poolSectionN       = 1 + poolShardsV1*poolSecPerShard
	poolMetaWords      = 7
	poolFlagCompressed = 1 << 0
	poolFlagAdaptive   = 1 << 1
	poolTableSize      = poolSectionN * snapEntrySize
	poolPayloadBase    = (snapHeaderSize + poolTableSize + snapAlign - 1) / snapAlign * snapAlign
)

// Per-shard section kinds, in file order.
const (
	poolSecKinds = iota
	poolSecSizes
	poolSecCompLens
	poolSecListData
	poolSecCompData
	poolSecBitmapData
	poolSecPostIdx
	poolSecPostData
)

// poolElemSizes maps a per-shard section kind to its element size.
var poolElemSizes = [poolSecPerShard]uint32{1, 4, 4, 4, 1, 8, 4, 4}

// PoolSnapshotInfo describes a pool snapshot's header and metadata
// block — everything needed to decide whether to thaw it, without
// touching the payloads.
type PoolSnapshotInfo struct {
	Version      uint32
	Seed         uint64
	N            int32
	M            int64
	Model        graph.Model
	Epoch        int64
	Count        int64
	TotalMembers int64
	GraphSum     uint64
	Compressed   bool
	Adaptive     bool
	RepThreshold float64
	Bytes        int64 // total snapshot size
}

// shardEntries returns how many pool slots shard s holds when the pool
// is count slots long (ids are striped round-robin).
func shardEntries(s int, count int64) int {
	if int64(s) >= count {
		return 0
	}
	return int((count-1-int64(s))/poolShardsV1) + 1
}

// poolLayout computes the canonical section table for a state's
// payload lengths.
func poolLayout(st *imm.PoolState) []snapSection {
	secs := make([]snapSection, 0, poolSectionN)
	secs = append(secs, snapSection{id: 0, elemSize: 8, byteLen: 8 * poolMetaWords})
	for s := range st.Shards {
		sh := &st.Shards[s]
		lens := [poolSecPerShard]int64{
			int64(len(sh.Kinds)),
			4 * int64(len(sh.Sizes)),
			4 * int64(len(sh.CompLens)),
			4 * int64(len(sh.ListData)),
			int64(len(sh.CompData)),
			8 * int64(len(sh.BitmapData)),
			4 * int64(len(sh.PostIdx)),
			4 * int64(len(sh.PostData)),
		}
		for k := 0; k < poolSecPerShard; k++ {
			secs = append(secs, snapSection{
				id:       uint32(1 + s*poolSecPerShard + k),
				elemSize: poolElemSizes[k],
				byteLen:  lens[k],
			})
		}
	}
	off := int64(poolPayloadBase)
	for i := range secs {
		if secs[i].byteLen > 0 {
			off = alignUp(off)
		}
		secs[i].offset = off
		off += secs[i].byteLen
	}
	return secs
}

func poolMeta(st *imm.PoolState) []int64 {
	return []int64{
		st.M,
		st.Epoch,
		st.TotalMembers,
		int64(st.GraphSum),
		int64(math.Float64bits(st.RepThreshold)),
		int64(st.Model),
		int64(st.ShardCount()),
	}
}

func poolPayloads(st *imm.PoolState) []payload {
	out := make([]payload, 0, poolSectionN)
	out = append(out, payload{i64: poolMeta(st)})
	for s := range st.Shards {
		sh := &st.Shards[s]
		out = append(out,
			payload{u8: sh.Kinds},
			payload{i32: sh.Sizes},
			payload{i32: sh.CompLens},
			payload{i32: sh.ListData},
			payload{u8: sh.CompData},
			payload{u64: sh.BitmapData},
			payload{i32: sh.PostIdx},
			payload{i32: sh.PostData},
		)
	}
	return out
}

// PoolSnapshotSize returns the exact .impool size for st without
// writing it.
func PoolSnapshotSize(st *imm.PoolState) int64 {
	secs := poolLayout(st)
	last := secs[len(secs)-1]
	return last.offset + last.byteLen
}

// WritePoolSnapshot writes st as a version-1 .impool stream. The output
// is canonical — the same state always produces identical bytes.
func WritePoolSnapshot(w io.Writer, st *imm.PoolState) error {
	if st == nil {
		return fmt.Errorf("%w: nil pool state", ErrPoolSnapshot)
	}
	if st.ShardCount() != poolShardsV1 {
		return fmt.Errorf("%w: %d shards, format holds %d", ErrPoolSnapshot, st.ShardCount(), poolShardsV1)
	}
	if st.Count < 0 || st.N < 0 {
		return fmt.Errorf("%w: negative shape (n=%d count=%d)", ErrPoolSnapshot, st.N, st.Count)
	}
	secs := poolLayout(st)
	payloads := poolPayloads(st)
	for i := range secs {
		secs[i].crc = payloads[i].crc()
	}

	header := make([]byte, snapHeaderSize+poolTableSize)
	copy(header[0:8], poolMagic[:])
	le := binary.LittleEndian
	le.PutUint32(header[8:], PoolSnapshotVersion)
	flags := uint32(0)
	if st.Pool == imm.PoolCompressed {
		flags |= poolFlagCompressed
	}
	if st.AdaptiveRep {
		flags |= poolFlagAdaptive
	}
	le.PutUint32(header[12:], flags)
	le.PutUint64(header[16:], st.Seed)
	le.PutUint64(header[24:], uint64(st.N))
	le.PutUint64(header[32:], uint64(st.Count))
	le.PutUint32(header[40:], poolSectionN)
	for i, s := range secs {
		e := header[snapHeaderSize+i*snapEntrySize:]
		le.PutUint32(e[0:], s.id)
		le.PutUint32(e[4:], s.elemSize)
		le.PutUint64(e[8:], uint64(s.offset))
		le.PutUint64(e[16:], uint64(s.byteLen))
		le.PutUint32(e[24:], s.crc)
		le.PutUint32(e[28:], 0)
	}
	hcrc := crc32.Checksum(header[:44], castagnoli)
	hcrc = crc32.Update(hcrc, castagnoli, header[snapHeaderSize:])
	le.PutUint32(header[44:], hcrc)

	bw := bufio.NewWriterSize(w, snapChunk)
	if _, err := bw.Write(header); err != nil {
		return err
	}
	pos := int64(len(header))
	for i, s := range secs {
		if err := writePad(bw, s.offset-pos); err != nil {
			return err
		}
		if err := payloads[i].writeTo(bw); err != nil {
			return err
		}
		pos = s.offset + s.byteLen
	}
	return bw.Flush()
}

// WritePoolSnapshotFile creates path and writes the snapshot.
func WritePoolSnapshotFile(path string, st *imm.PoolState) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WritePoolSnapshot(f, st); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parsePoolHeader validates the fixed header plus section table and
// returns the canonical section list with the header-derived info
// fields filled in. header must hold snapHeaderSize+poolTableSize bytes.
func parsePoolHeader(header []byte) ([]snapSection, PoolSnapshotInfo, error) {
	var info PoolSnapshotInfo
	if [8]byte(header[0:8]) != poolMagic {
		return nil, info, fmt.Errorf("%w: bad magic %q", ErrPoolSnapshot, header[0:8])
	}
	le := binary.LittleEndian
	info.Version = le.Uint32(header[8:])
	if info.Version != PoolSnapshotVersion {
		return nil, info, fmt.Errorf("%w: unsupported version %d (want %d)", ErrPoolSnapshot, info.Version, PoolSnapshotVersion)
	}
	flags := le.Uint32(header[12:])
	if flags&^uint32(poolFlagCompressed|poolFlagAdaptive) != 0 {
		return nil, info, fmt.Errorf("%w: unknown flags %#x", ErrPoolSnapshot, flags)
	}
	info.Compressed = flags&poolFlagCompressed != 0
	info.Adaptive = flags&poolFlagAdaptive != 0
	info.Seed = le.Uint64(header[16:])
	n := int64(le.Uint64(header[24:]))
	count := int64(le.Uint64(header[32:]))
	if n < 0 || n > math.MaxInt32 || count < 0 || count > math.MaxInt64/16 {
		return nil, info, fmt.Errorf("%w: invalid shape n=%d count=%d", ErrPoolSnapshot, n, count)
	}
	info.N, info.Count = int32(n), count
	if secCount := le.Uint32(header[40:]); secCount != poolSectionN {
		return nil, info, fmt.Errorf("%w: %d sections, want %d (16-shard pools only)", ErrPoolSnapshot, secCount, poolSectionN)
	}
	wantCRC := le.Uint32(header[44:])
	gotCRC := crc32.Checksum(header[:44], castagnoli)
	gotCRC = crc32.Update(gotCRC, castagnoli, header[snapHeaderSize:])
	if gotCRC != wantCRC {
		return nil, info, fmt.Errorf("%w: header checksum mismatch", ErrPoolSnapshot)
	}

	// The table's byteLens are data-dependent (unlike .imsnap, whose
	// layout is implied by the graph shape), so canonicality means: ids
	// ordinal, element sizes fixed per slot, lengths that are element
	// multiples and agree with the header's entry counts, and offsets
	// that re-derive exactly from the lengths.
	secs := make([]snapSection, poolSectionN)
	off := int64(poolPayloadBase)
	for i := range secs {
		e := header[snapHeaderSize+i*snapEntrySize:]
		secs[i] = snapSection{
			id:       le.Uint32(e[0:]),
			elemSize: le.Uint32(e[4:]),
			offset:   int64(le.Uint64(e[8:])),
			byteLen:  int64(le.Uint64(e[16:])),
			crc:      le.Uint32(e[24:]),
		}
		sec := &secs[i]
		wantElem := uint32(8)
		if i > 0 {
			wantElem = poolElemSizes[(i-1)%poolSecPerShard]
		}
		if sec.id != uint32(i) || sec.elemSize != wantElem {
			return nil, info, fmt.Errorf("%w: section %d table entry mismatch", ErrPoolSnapshot, i)
		}
		if sec.byteLen < 0 || sec.byteLen%int64(wantElem) != 0 {
			return nil, info, fmt.Errorf("%w: section %d byte length %d not a multiple of %d", ErrPoolSnapshot, i, sec.byteLen, wantElem)
		}
		if sec.byteLen > 0 {
			off = alignUp(off)
		}
		if sec.offset != off {
			return nil, info, fmt.Errorf("%w: section %d offset %d breaks canonical layout (want %d)", ErrPoolSnapshot, i, sec.offset, off)
		}
		off += sec.byteLen
	}
	if secs[0].byteLen != 8*poolMetaWords {
		return nil, info, fmt.Errorf("%w: metadata section holds %d bytes, want %d", ErrPoolSnapshot, secs[0].byteLen, 8*poolMetaWords)
	}
	for s := 0; s < poolShardsV1; s++ {
		entries := int64(shardEntries(s, count))
		base := 1 + s*poolSecPerShard
		if secs[base+poolSecKinds].byteLen != entries ||
			secs[base+poolSecSizes].byteLen != 4*entries ||
			secs[base+poolSecCompLens].byteLen != 4*entries {
			return nil, info, fmt.Errorf("%w: shard %d metadata sections disagree with pool length %d", ErrPoolSnapshot, s, count)
		}
		if pl := secs[base+poolSecPostIdx].byteLen; pl != 0 && pl != 4*(n+1) {
			return nil, info, fmt.Errorf("%w: shard %d index holds %d offset bytes, want 0 or %d", ErrPoolSnapshot, s, pl, 4*(n+1))
		}
		if secs[base+poolSecPostIdx].byteLen == 0 && secs[base+poolSecPostData].byteLen != 0 {
			return nil, info, fmt.Errorf("%w: shard %d has postings without an offset table", ErrPoolSnapshot, s)
		}
	}
	info.Bytes = off
	return secs, info, nil
}

// applyPoolMeta folds the decoded metadata section into info and
// validates it.
func applyPoolMeta(meta []int64, info *PoolSnapshotInfo) error {
	if len(meta) != poolMetaWords {
		return fmt.Errorf("%w: metadata section holds %d words, want %d", ErrPoolSnapshot, len(meta), poolMetaWords)
	}
	info.M = meta[0]
	info.Epoch = meta[1]
	info.TotalMembers = meta[2]
	info.GraphSum = uint64(meta[3])
	info.RepThreshold = math.Float64frombits(uint64(meta[4]))
	if info.M < 0 || info.Epoch < 0 || info.TotalMembers < 0 {
		return fmt.Errorf("%w: negative metadata (m=%d epoch=%d members=%d)", ErrPoolSnapshot, info.M, info.Epoch, info.TotalMembers)
	}
	if math.IsNaN(info.RepThreshold) || math.IsInf(info.RepThreshold, 0) || info.RepThreshold < 0 {
		return fmt.Errorf("%w: invalid density threshold %v", ErrPoolSnapshot, info.RepThreshold)
	}
	if meta[5] != int64(graph.IC) && meta[5] != int64(graph.LT) {
		return fmt.Errorf("%w: unknown model %d", ErrPoolSnapshot, meta[5])
	}
	info.Model = graph.Model(meta[5])
	if meta[6] != poolShardsV1 {
		return fmt.Errorf("%w: %d shards, want %d", ErrPoolSnapshot, meta[6], poolShardsV1)
	}
	return nil
}

func poolStateShell(info PoolSnapshotInfo) *imm.PoolState {
	st := &imm.PoolState{
		N:            info.N,
		M:            info.M,
		Model:        info.Model,
		Epoch:        info.Epoch,
		GraphSum:     info.GraphSum,
		Seed:         info.Seed,
		Pool:         imm.PoolSlices,
		AdaptiveRep:  info.Adaptive,
		RepThreshold: info.RepThreshold,
		Count:        info.Count,
		TotalMembers: info.TotalMembers,
	}
	if info.Compressed {
		st.Pool = imm.PoolCompressed
	}
	return st
}

// ReadPoolSnapshot reads a version-1 .impool stream, verifying magic,
// version, header checksum, canonical section layout, every section
// checksum, and the full structural validity of the pool payloads.
// Allocation is bounded by the bytes actually read.
func ReadPoolSnapshot(r io.Reader) (*imm.PoolState, PoolSnapshotInfo, error) {
	header := make([]byte, snapHeaderSize+poolTableSize)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, PoolSnapshotInfo{}, fmt.Errorf("%w: truncated header: %v", ErrPoolSnapshot, err)
	}
	secs, info, err := parsePoolHeader(header)
	if err != nil {
		return nil, info, err
	}

	var meta []int64
	var st *imm.PoolState
	pos := int64(len(header))
	for i, sec := range secs {
		if err := discard(r, sec.offset-pos); err != nil {
			return nil, info, fmt.Errorf("%w: truncated before section %d: %v", ErrPoolSnapshot, i, err)
		}
		var crc uint32
		var err error
		if i == 0 {
			meta, crc, err = readI64Section(r, sec.byteLen)
			if err == nil {
				if merr := applyPoolMeta(meta, &info); merr != nil {
					return nil, info, merr
				}
				st = poolStateShell(info)
			}
		} else {
			sh := &st.Shards[(i-1)/poolSecPerShard]
			switch (i - 1) % poolSecPerShard {
			case poolSecKinds:
				sh.Kinds, crc, err = readU8Section(r, sec.byteLen)
			case poolSecSizes:
				sh.Sizes, crc, err = readI32Section(r, sec.byteLen)
			case poolSecCompLens:
				sh.CompLens, crc, err = readI32Section(r, sec.byteLen)
			case poolSecListData:
				sh.ListData, crc, err = readI32Section(r, sec.byteLen)
			case poolSecCompData:
				sh.CompData, crc, err = readU8Section(r, sec.byteLen)
			case poolSecBitmapData:
				sh.BitmapData, crc, err = readU64Section(r, sec.byteLen)
			case poolSecPostIdx:
				sh.PostIdx, crc, err = readI32Section(r, sec.byteLen)
			case poolSecPostData:
				sh.PostData, crc, err = readI32Section(r, sec.byteLen)
			}
		}
		if err != nil {
			return nil, info, fmt.Errorf("%w: truncated section %d: %v", ErrPoolSnapshot, i, err)
		}
		if crc != sec.crc {
			return nil, info, fmt.Errorf("%w: section %d checksum mismatch", ErrPoolSnapshot, i)
		}
		pos = sec.offset + sec.byteLen
	}
	if err := validatePoolState(st); err != nil {
		return nil, info, err
	}
	return st, info, nil
}

// ReadPoolSnapshotFile opens path and delegates to ReadPoolSnapshot.
func ReadPoolSnapshotFile(path string) (*imm.PoolState, PoolSnapshotInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, PoolSnapshotInfo{}, err
	}
	defer f.Close()
	return ReadPoolSnapshot(bufio.NewReaderSize(f, snapChunk))
}

// ReadPoolSnapshotInfo reads only the header, section table, and
// metadata block — enough to decide whether a snapshot is worth
// thawing — without touching the payload sections.
func ReadPoolSnapshotInfo(r io.Reader) (PoolSnapshotInfo, error) {
	header := make([]byte, snapHeaderSize+poolTableSize)
	if _, err := io.ReadFull(r, header); err != nil {
		return PoolSnapshotInfo{}, fmt.Errorf("%w: truncated header: %v", ErrPoolSnapshot, err)
	}
	secs, info, err := parsePoolHeader(header)
	if err != nil {
		return info, err
	}
	if err := discard(r, secs[0].offset-int64(len(header))); err != nil {
		return info, fmt.Errorf("%w: truncated before metadata: %v", ErrPoolSnapshot, err)
	}
	meta, crc, err := readI64Section(r, secs[0].byteLen)
	if err != nil {
		return info, fmt.Errorf("%w: truncated metadata: %v", ErrPoolSnapshot, err)
	}
	if crc != secs[0].crc {
		return info, fmt.Errorf("%w: metadata checksum mismatch", ErrPoolSnapshot)
	}
	if err := applyPoolMeta(meta, &info); err != nil {
		return info, err
	}
	return info, nil
}

// ReadPoolSnapshotInfoFile opens path and delegates to
// ReadPoolSnapshotInfo.
func ReadPoolSnapshotInfoFile(path string) (PoolSnapshotInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return PoolSnapshotInfo{}, err
	}
	defer f.Close()
	return ReadPoolSnapshotInfo(bufio.NewReaderSize(f, snapChunk))
}

// ValidatePoolGraph checks a decoded pool state against the graph (and
// graph delta epoch) a caller wants to thaw it on. A mismatch returns
// ErrPoolStale: the snapshot is internally consistent but was frozen
// against different graph content, so thawing it would serve wrong
// answers — the caller regenerates cold (or repairs) instead.
func ValidatePoolGraph(st *imm.PoolState, g *graph.Graph, epoch int64) error {
	if st.Epoch != epoch {
		return fmt.Errorf("%w: frozen at graph epoch %d, graph is at %d", ErrPoolStale, st.Epoch, epoch)
	}
	if g.N != st.N || g.M != st.M || g.Model() != st.Model {
		return fmt.Errorf("%w: graph shape/model (%d, %d, %v) vs frozen (%d, %d, %v)",
			ErrPoolStale, g.N, g.M, g.Model(), st.N, st.M, st.Model)
	}
	if sum := imm.GraphChecksum(g); sum != st.GraphSum {
		return fmt.Errorf("%w: graph content fingerprint %#x vs frozen %#x", ErrPoolStale, sum, st.GraphSum)
	}
	return nil
}

// validatePoolState performs the full structural audit of a decoded
// state: per-entry metadata consistent with the blobs, every member
// list sorted and in range, bitmap rows exactly (N+63)/64 words with
// clear tail bits and a popcount matching the cached size, every
// representation the one the frozen policy dictates, and the inverted
// index a well-formed CSR over the shard. Nothing downstream (thaw,
// selection) re-validates, so everything that could panic or silently
// corrupt an answer is rejected here.
func validatePoolState(st *imm.PoolState) error {
	policy := imm.PolicyFromOptions(imm.Options{
		Pool:         st.Pool,
		AdaptiveRep:  st.AdaptiveRep,
		RepThreshold: st.RepThreshold,
	})
	n := st.N
	words := (int(n) + 63) / 64
	var members int64
	for s := range st.Shards {
		sh := &st.Shards[s]
		entries := shardEntries(s, st.Count)
		if len(sh.Kinds) != entries || len(sh.Sizes) != entries || len(sh.CompLens) != entries {
			return fmt.Errorf("%w: shard %d holds %d entries, pool length %d needs %d", ErrPoolSnapshot, s, len(sh.Kinds), st.Count, entries)
		}
		var lc, cc, bc int
		for j := 0; j < entries; j++ {
			size := int(sh.Sizes[j])
			if size < 0 || size > int(n) {
				return fmt.Errorf("%w: shard %d entry %d size %d out of range [0, %d]", ErrPoolSnapshot, s, j, size, n)
			}
			wantBitmap := policy.Adaptive && n > 0 && float64(size) >= policy.DensityThreshold*float64(n)
			wantKind := uint8(imm.PoolSetList)
			switch {
			case wantBitmap:
				wantKind = imm.PoolSetBitmap
			case policy.Compress:
				wantKind = imm.PoolSetCompressed
			}
			if sh.Kinds[j] != wantKind {
				return fmt.Errorf("%w: shard %d entry %d stored as kind %d, policy dictates %d", ErrPoolSnapshot, s, j, sh.Kinds[j], wantKind)
			}
			if sh.Kinds[j] != imm.PoolSetCompressed && sh.CompLens[j] != 0 {
				return fmt.Errorf("%w: shard %d entry %d carries a compressed length but is not compressed", ErrPoolSnapshot, s, j)
			}
			switch sh.Kinds[j] {
			case imm.PoolSetList:
				if lc+size > len(sh.ListData) {
					return fmt.Errorf("%w: shard %d list payload overrun at entry %d", ErrPoolSnapshot, s, j)
				}
				prev := int32(-1)
				for _, v := range sh.ListData[lc : lc+size] {
					if v <= prev || v >= n {
						return fmt.Errorf("%w: shard %d entry %d member %d unsorted or out of range", ErrPoolSnapshot, s, j, v)
					}
					prev = v
				}
				lc += size
			case imm.PoolSetCompressed:
				cl := int(sh.CompLens[j])
				if cl < 0 || cc+cl > len(sh.CompData) {
					return fmt.Errorf("%w: shard %d compressed payload overrun at entry %d", ErrPoolSnapshot, s, j)
				}
				data := sh.CompData[cc : cc+cl]
				got := 0
				prev := int32(-1)
				bad := false
				if err := compress.ForEachPlain(data, func(v int32) {
					if v <= prev || v >= n {
						bad = true
					}
					prev = v
					got++
				}); err != nil || bad || got != size {
					return fmt.Errorf("%w: shard %d entry %d compressed payload invalid", ErrPoolSnapshot, s, j)
				}
				cc += cl
			case imm.PoolSetBitmap:
				if bc+words > len(sh.BitmapData) {
					return fmt.Errorf("%w: shard %d bitmap payload overrun at entry %d", ErrPoolSnapshot, s, j)
				}
				row := sh.BitmapData[bc : bc+words]
				pop := 0
				for _, w := range row {
					pop += bits.OnesCount64(w)
				}
				if tail := int(n) % 64; tail != 0 && words > 0 && row[words-1]>>uint(tail) != 0 {
					return fmt.Errorf("%w: shard %d entry %d bitmap has bits beyond vertex %d", ErrPoolSnapshot, s, j, n)
				}
				if pop != size {
					return fmt.Errorf("%w: shard %d entry %d bitmap popcount %d != size %d", ErrPoolSnapshot, s, j, pop, size)
				}
				bc += words
			default:
				return fmt.Errorf("%w: shard %d entry %d has unknown set kind %d", ErrPoolSnapshot, s, j, sh.Kinds[j])
			}
			members += int64(size)
		}
		if lc != len(sh.ListData) || cc != len(sh.CompData) || bc != len(sh.BitmapData) {
			return fmt.Errorf("%w: shard %d payload blobs larger than its entries consume", ErrPoolSnapshot, s)
		}
		if sh.PostIdx != nil {
			if len(sh.PostIdx) != int(n)+1 {
				return fmt.Errorf("%w: shard %d index holds %d offsets, want %d", ErrPoolSnapshot, s, len(sh.PostIdx), int(n)+1)
			}
			if sh.PostIdx[0] != 0 || int(sh.PostIdx[n]) != len(sh.PostData) {
				return fmt.Errorf("%w: shard %d index bounds do not cover its postings", ErrPoolSnapshot, s)
			}
			for v := int32(0); v < n; v++ {
				lo, hi := sh.PostIdx[v], sh.PostIdx[v+1]
				if lo > hi {
					return fmt.Errorf("%w: shard %d index offsets decrease at vertex %d", ErrPoolSnapshot, s, v)
				}
				prev := int32(-1)
				for _, id := range sh.PostData[lo:hi] {
					if id <= prev || int(id) >= entries {
						return fmt.Errorf("%w: shard %d posting %d at vertex %d unsorted or out of range", ErrPoolSnapshot, s, id, v)
					}
					prev = id
				}
			}
		} else if len(sh.PostData) != 0 {
			return fmt.Errorf("%w: shard %d has postings without an offset table", ErrPoolSnapshot, s)
		}
	}
	if members != st.TotalMembers {
		return fmt.Errorf("%w: member sum %d != recorded total %d", ErrPoolSnapshot, members, st.TotalMembers)
	}
	return nil
}
