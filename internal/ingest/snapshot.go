package ingest

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/graph"
)

// The .imsnap binary snapshot format, version 1. All integers are
// little-endian. The layout is a fixed header, a section table, and the
// raw CSR payloads at 64-byte-aligned offsets — each section is the
// exact in-memory array layout, so a future reader can mmap the file
// and alias the sections directly instead of copying.
//
//	offset  size  field
//	0       8     magic "IMSNAP\x1a\x00"
//	8       4     format version (1)
//	12      4     diffusion model (0 = IC, 1 = LT)
//	16      8     weight-assignment seed (provenance)
//	24      8     N (vertices)
//	32      8     M (directed edges)
//	40      4     section count (7)
//	44      4     CRC32-C of bytes [0,44) + the section table
//	48      7×32  section table
//	…             payloads, 64-byte aligned, zero-padded between
//
// Section table entry (32 bytes): section id u32, element size u32,
// file offset u64, payload byte length u64, payload CRC32-C u32, pad
// u32. Sections appear in id order and cover, in order: OutIndex
// (int64×N+1), OutEdges (int32×M), OutProb (float32×M), InIndex
// (int64×N+1), InEdges (int32×M), InProb (float32×M), InAccum
// (float32×M for LT, empty for IC).
//
// Every array the snapshot stores is adopted verbatim on read
// (graph.FromCSR), so write→read reproduces a byte-identical graph and
// therefore identical seeds through Run and RunDistributed.

// SnapshotVersion is the current .imsnap format version.
const SnapshotVersion = 1

// SnapshotExt is the conventional file extension.
const SnapshotExt = ".imsnap"

var snapMagic = [8]byte{'I', 'M', 'S', 'N', 'A', 'P', 0x1a, 0x00}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	snapHeaderSize  = 48
	snapEntrySize   = 32
	snapSectionN    = 7
	snapAlign       = 64
	snapChunk       = 64 << 10
	secOutIndex     = 0
	secOutEdges     = 1
	secOutProb      = 2
	secInIndex      = 3
	secInEdges      = 4
	secInProb       = 5
	secInAccum      = 6
	snapTableSize   = snapSectionN * snapEntrySize
	snapPayloadBase = (snapHeaderSize + snapTableSize + snapAlign - 1) / snapAlign * snapAlign
)

// SnapshotInfo describes a snapshot's header.
type SnapshotInfo struct {
	Version uint32
	Model   graph.Model
	Seed    uint64
	N       int32
	M       int64
	Bytes   int64 // total snapshot size
}

type snapSection struct {
	id       uint32
	elemSize uint32
	offset   int64
	byteLen  int64
	crc      uint32
}

// snapLayout computes the section table for a graph's shape.
func snapLayout(n int32, m int64, model graph.Model) []snapSection {
	accumLen := int64(0)
	if model == graph.LT {
		accumLen = 4 * m
	}
	secs := []snapSection{
		{id: secOutIndex, elemSize: 8, byteLen: 8 * (int64(n) + 1)},
		{id: secOutEdges, elemSize: 4, byteLen: 4 * m},
		{id: secOutProb, elemSize: 4, byteLen: 4 * m},
		{id: secInIndex, elemSize: 8, byteLen: 8 * (int64(n) + 1)},
		{id: secInEdges, elemSize: 4, byteLen: 4 * m},
		{id: secInProb, elemSize: 4, byteLen: 4 * m},
		{id: secInAccum, elemSize: 4, byteLen: accumLen},
	}
	// Non-empty sections land on 64-byte-aligned offsets (the mmap
	// contract); empty sections take the current position so the file
	// never ends in unchecksummed padding.
	off := int64(snapPayloadBase)
	for i := range secs {
		if secs[i].byteLen > 0 {
			off = alignUp(off)
		}
		secs[i].offset = off
		off += secs[i].byteLen
	}
	return secs
}

func alignUp(x int64) int64 { return (x + snapAlign - 1) / snapAlign * snapAlign }

// SnapshotSize returns the exact .imsnap size for g without writing it.
func SnapshotSize(g *graph.Graph) int64 {
	secs := snapLayout(g.N, g.M, g.Model())
	last := secs[len(secs)-1]
	return last.offset + last.byteLen
}

// WriteSnapshot writes g as a version-1 .imsnap stream. seed records
// the weight-assignment seed for provenance (it is not re-used on read:
// the stored weights are). The output is canonical — the same graph
// always produces identical bytes.
func WriteSnapshot(w io.Writer, g *graph.Graph, seed uint64) error {
	if g == nil {
		return fmt.Errorf("ingest: nil graph")
	}
	secs := snapLayout(g.N, g.M, g.Model())
	payloads := snapPayloads(g)
	for i := range secs {
		secs[i].crc = payloads[i].crc()
	}

	header := make([]byte, snapHeaderSize+snapTableSize)
	copy(header[0:8], snapMagic[:])
	le := binary.LittleEndian
	le.PutUint32(header[8:], SnapshotVersion)
	le.PutUint32(header[12:], uint32(g.Model()))
	le.PutUint64(header[16:], seed)
	le.PutUint64(header[24:], uint64(g.N))
	le.PutUint64(header[32:], uint64(g.M))
	le.PutUint32(header[40:], snapSectionN)
	for i, s := range secs {
		e := header[snapHeaderSize+i*snapEntrySize:]
		le.PutUint32(e[0:], s.id)
		le.PutUint32(e[4:], s.elemSize)
		le.PutUint64(e[8:], uint64(s.offset))
		le.PutUint64(e[16:], uint64(s.byteLen))
		le.PutUint32(e[24:], s.crc)
		le.PutUint32(e[28:], 0)
	}
	hcrc := crc32.Checksum(header[:44], castagnoli)
	hcrc = crc32.Update(hcrc, castagnoli, header[snapHeaderSize:])
	le.PutUint32(header[44:], hcrc)

	bw := bufio.NewWriterSize(w, snapChunk)
	if _, err := bw.Write(header); err != nil {
		return err
	}
	pos := int64(len(header))
	for i, s := range secs {
		if err := writePad(bw, s.offset-pos); err != nil {
			return err
		}
		if err := payloads[i].writeTo(bw); err != nil {
			return err
		}
		pos = s.offset + s.byteLen
	}
	return bw.Flush()
}

// WriteSnapshotFile creates path and writes the snapshot.
func WriteSnapshotFile(path string, g *graph.Graph, seed uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteSnapshot(f, g, seed); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// payload adapts one typed array to streaming encode. Each instance
// populates exactly one field; the u8/u64 variants exist for the
// .impool pool-snapshot sections.
type payload struct {
	i64 []int64
	f32 []float32
	i32 []int32
	u8  []byte
	u64 []uint64
}

func snapPayloads(g *graph.Graph) [snapSectionN]payload {
	return [snapSectionN]payload{
		{i64: g.OutIndex},
		{i32: g.OutEdges},
		{f32: g.OutProb},
		{i64: g.InIndex},
		{i32: g.InEdges},
		{f32: g.InProb},
		{f32: g.InAccum},
	}
}

// writeTo streams the payload's typed slices. Its bytes ARE checksum
// covered: payload.crc() below re-derives the identical byte stream to
// compute the section CRC recorded in the table, so the checksum pairs
// with this write without touching the writer path.
//
//imlint:ignore endian section CRC computed by the parallel payload.crc over the identical byte stream
func (p payload) writeTo(w io.Writer) error {
	buf := make([]byte, 0, snapChunk)
	flush := func(force bool) error {
		if len(buf) >= snapChunk-8 || (force && len(buf) > 0) {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
		return nil
	}
	for _, v := range p.i64 {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		if err := flush(false); err != nil {
			return err
		}
	}
	for _, v := range p.i32 {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		if err := flush(false); err != nil {
			return err
		}
	}
	for _, v := range p.f32 {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		if err := flush(false); err != nil {
			return err
		}
	}
	for _, v := range p.u64 {
		buf = binary.LittleEndian.AppendUint64(buf, v)
		if err := flush(false); err != nil {
			return err
		}
	}
	if len(p.u8) > 0 {
		if err := flush(true); err != nil {
			return err
		}
		if _, err := w.Write(p.u8); err != nil {
			return err
		}
	}
	return flush(true)
}

func (p payload) crc() uint32 {
	buf := make([]byte, 0, snapChunk)
	crc := uint32(0)
	flush := func() {
		if len(buf) >= snapChunk-8 {
			crc = crc32.Update(crc, castagnoli, buf)
			buf = buf[:0]
		}
	}
	for _, v := range p.i64 {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		flush()
	}
	for _, v := range p.i32 {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		flush()
	}
	for _, v := range p.f32 {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		flush()
	}
	for _, v := range p.u64 {
		buf = binary.LittleEndian.AppendUint64(buf, v)
		flush()
	}
	crc = crc32.Update(crc, castagnoli, buf)
	return crc32.Update(crc, castagnoli, p.u8)
}

// writePad emits the zero padding that 64-byte-aligns sections. The
// pad bytes sit between sections and are deliberately outside every
// CRC's coverage (the table records per-section checksums over payload
// bytes only), so there is no checksum to pair with.
//
//imlint:ignore endian inter-section alignment padding is outside CRC coverage by format design
func writePad(w io.Writer, n int64) error {
	if n < 0 {
		return fmt.Errorf("ingest: snapshot layout error (negative pad)")
	}
	pad := make([]byte, n)
	_, err := w.Write(pad)
	return err
}

// ReadSnapshot reads a version-1 .imsnap stream, verifying magic,
// version, header checksum and every section checksum, and returns the
// reconstructed graph plus the header metadata. Allocation is bounded
// by the bytes actually read, so corrupt headers claiming absurd sizes
// fail cleanly instead of exhausting memory.
func ReadSnapshot(r io.Reader) (*graph.Graph, SnapshotInfo, error) {
	var info SnapshotInfo
	header := make([]byte, snapHeaderSize+snapTableSize)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, info, fmt.Errorf("ingest: snapshot: truncated header: %w", err)
	}
	if [8]byte(header[0:8]) != snapMagic {
		return nil, info, fmt.Errorf("ingest: snapshot: bad magic %q", header[0:8])
	}
	le := binary.LittleEndian
	info.Version = le.Uint32(header[8:])
	if info.Version != SnapshotVersion {
		return nil, info, fmt.Errorf("ingest: snapshot: unsupported version %d (want %d)", info.Version, SnapshotVersion)
	}
	model := le.Uint32(header[12:])
	if model != uint32(graph.IC) && model != uint32(graph.LT) {
		return nil, info, fmt.Errorf("ingest: snapshot: unknown model %d", model)
	}
	info.Model = graph.Model(model)
	info.Seed = le.Uint64(header[16:])
	n := int64(le.Uint64(header[24:]))
	m := int64(le.Uint64(header[32:]))
	if n < 0 || n > math.MaxInt32 || m < 0 {
		return nil, info, fmt.Errorf("ingest: snapshot: invalid shape n=%d m=%d", n, m)
	}
	info.N, info.M = int32(n), m
	if count := le.Uint32(header[40:]); count != snapSectionN {
		return nil, info, fmt.Errorf("ingest: snapshot: %d sections, want %d", count, snapSectionN)
	}
	wantCRC := le.Uint32(header[44:])
	gotCRC := crc32.Checksum(header[:44], castagnoli)
	gotCRC = crc32.Update(gotCRC, castagnoli, header[snapHeaderSize:])
	if gotCRC != wantCRC {
		return nil, info, fmt.Errorf("ingest: snapshot: header checksum mismatch")
	}

	// The section table must match the canonical layout for this shape
	// exactly — offsets, lengths and element sizes are all implied by
	// (n, m, model), so anything else is corruption.
	want := snapLayout(int32(n), m, info.Model)
	secs := make([]snapSection, snapSectionN)
	for i := range secs {
		e := header[snapHeaderSize+i*snapEntrySize:]
		secs[i] = snapSection{
			id:       le.Uint32(e[0:]),
			elemSize: le.Uint32(e[4:]),
			offset:   int64(le.Uint64(e[8:])),
			byteLen:  int64(le.Uint64(e[16:])),
			crc:      le.Uint32(e[24:]),
		}
		w := want[i]
		if secs[i].id != w.id || secs[i].elemSize != w.elemSize || secs[i].offset != w.offset || secs[i].byteLen != w.byteLen {
			return nil, info, fmt.Errorf("ingest: snapshot: section %d layout mismatch (corrupt table)", i)
		}
	}
	info.Bytes = secs[snapSectionN-1].offset + secs[snapSectionN-1].byteLen

	// Decode each section straight into its typed array as it streams —
	// no intermediate byte copies, so peak memory is the arrays
	// themselves, not 2× the snapshot.
	pos := int64(len(header))
	var outIndex, inIndex []int64
	var outEdges, inEdges []int32
	var outProb, inProb, inAccum []float32
	for i, s := range secs {
		if err := discard(r, s.offset-pos); err != nil {
			return nil, info, fmt.Errorf("ingest: snapshot: truncated before section %d: %w", i, err)
		}
		var crc uint32
		var err error
		switch s.id {
		case secOutIndex:
			outIndex, crc, err = readI64Section(r, s.byteLen)
		case secOutEdges:
			outEdges, crc, err = readI32Section(r, s.byteLen)
		case secOutProb:
			outProb, crc, err = readF32Section(r, s.byteLen)
		case secInIndex:
			inIndex, crc, err = readI64Section(r, s.byteLen)
		case secInEdges:
			inEdges, crc, err = readI32Section(r, s.byteLen)
		case secInProb:
			inProb, crc, err = readF32Section(r, s.byteLen)
		case secInAccum:
			inAccum, crc, err = readF32Section(r, s.byteLen)
		}
		if err != nil {
			return nil, info, fmt.Errorf("ingest: snapshot: truncated section %d: %w", i, err)
		}
		if crc != s.crc {
			return nil, info, fmt.Errorf("ingest: snapshot: section %d checksum mismatch", i)
		}
		pos = s.offset + s.byteLen
	}

	g, err := graph.FromCSR(info.Model, int32(n), m,
		outIndex, outEdges, outProb, inIndex, inEdges, inProb, inAccum)
	if err != nil {
		return nil, info, fmt.Errorf("ingest: snapshot: %w", err)
	}
	return g, info, nil
}

// ReadSnapshotFile opens path and delegates to ReadSnapshot.
func ReadSnapshotFile(path string) (*graph.Graph, SnapshotInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, SnapshotInfo{}, err
	}
	defer f.Close()
	return ReadSnapshot(bufio.NewReaderSize(f, snapChunk))
}

// readChunks reads exactly byteLen bytes in snapChunk pieces, handing
// each piece to fn and computing the CRC32-C on the fly. snapChunk is a
// multiple of every element size, so pieces always split on element
// boundaries. Callers grow their arrays as pieces arrive, which keeps
// allocation bounded by the bytes actually read — a header lying about
// its size cannot force a huge upfront allocation.
func readChunks(r io.Reader, byteLen int64, fn func([]byte)) (uint32, error) {
	crc := uint32(0)
	chunk := make([]byte, snapChunk)
	for remaining := byteLen; remaining > 0; {
		k := int64(len(chunk))
		if k > remaining {
			k = remaining
		}
		if _, err := io.ReadFull(r, chunk[:k]); err != nil {
			return 0, err
		}
		crc = crc32.Update(crc, castagnoli, chunk[:k])
		fn(chunk[:k])
		remaining -= k
	}
	return crc, nil
}

func initialCap(byteLen, elemSize int64) int64 {
	elems := byteLen / elemSize
	if max := int64(snapChunk) / elemSize; elems > max {
		elems = max
	}
	return elems
}

func readI64Section(r io.Reader, byteLen int64) ([]int64, uint32, error) {
	out := make([]int64, 0, initialCap(byteLen, 8))
	crc, err := readChunks(r, byteLen, func(b []byte) {
		for i := 0; i < len(b); i += 8 {
			out = append(out, int64(binary.LittleEndian.Uint64(b[i:])))
		}
	})
	return out, crc, err
}

func readI32Section(r io.Reader, byteLen int64) ([]int32, uint32, error) {
	out := make([]int32, 0, initialCap(byteLen, 4))
	crc, err := readChunks(r, byteLen, func(b []byte) {
		for i := 0; i < len(b); i += 4 {
			out = append(out, int32(binary.LittleEndian.Uint32(b[i:])))
		}
	})
	return out, crc, err
}

func readF32Section(r io.Reader, byteLen int64) ([]float32, uint32, error) {
	if byteLen == 0 {
		return nil, 0, nil
	}
	out := make([]float32, 0, initialCap(byteLen, 4))
	crc, err := readChunks(r, byteLen, func(b []byte) {
		for i := 0; i < len(b); i += 4 {
			out = append(out, math.Float32frombits(binary.LittleEndian.Uint32(b[i:])))
		}
	})
	return out, crc, err
}

func readU8Section(r io.Reader, byteLen int64) ([]byte, uint32, error) {
	out := make([]byte, 0, initialCap(byteLen, 1))
	crc, err := readChunks(r, byteLen, func(b []byte) {
		out = append(out, b...)
	})
	return out, crc, err
}

func readU64Section(r io.Reader, byteLen int64) ([]uint64, uint32, error) {
	out := make([]uint64, 0, initialCap(byteLen, 8))
	crc, err := readChunks(r, byteLen, func(b []byte) {
		for i := 0; i < len(b); i += 8 {
			out = append(out, binary.LittleEndian.Uint64(b[i:]))
		}
	})
	return out, crc, err
}

func discard(r io.Reader, n int64) error {
	if n < 0 {
		return fmt.Errorf("overlapping sections")
	}
	_, err := io.CopyN(io.Discard, r, n)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return err
}
