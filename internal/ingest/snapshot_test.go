package ingest

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func snapshotFixture(t *testing.T, model graph.Model) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(8, 6), model, 5)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, model := range []graph.Model{graph.IC, graph.LT} {
		g := snapshotFixture(t, model)
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, g, 5); err != nil {
			t.Fatal(err)
		}
		if got, want := int64(buf.Len()), SnapshotSize(g); got != want {
			t.Fatalf("%v: snapshot size %d, SnapshotSize predicts %d", model, got, want)
		}
		g2, info, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !graph.Equal(g, g2) {
			t.Fatalf("%v: round trip not byte-identical", model)
		}
		if info.Model != model || info.Seed != 5 || info.N != g.N || info.M != g.M || info.Version != SnapshotVersion {
			t.Fatalf("header metadata wrong: %+v", info)
		}
	}
}

func TestSnapshotCanonicalBytes(t *testing.T) {
	g := snapshotFixture(t, graph.IC)
	var a, b bytes.Buffer
	if err := WriteSnapshot(&a, g, 5); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(&b, g, 5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("snapshot encoding is not canonical")
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	g := snapshotFixture(t, graph.LT)
	path := filepath.Join(t.TempDir(), "g"+SnapshotExt)
	if err := WriteSnapshotFile(path, g, 5); err != nil {
		t.Fatal(err)
	}
	g2, info, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(g, g2) {
		t.Fatal("file round trip not byte-identical")
	}
	if info.Bytes != SnapshotSize(g) {
		t.Fatalf("info.Bytes = %d, want %d", info.Bytes, SnapshotSize(g))
	}
}

func TestSnapshotCorruption(t *testing.T) {
	g := snapshotFixture(t, graph.IC)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g, 5); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	corrupt := func(off int, flip byte) []byte {
		c := append([]byte(nil), valid...)
		c[off] ^= flip
		return c
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"bad magic", corrupt(0, 0xff), "bad magic"},
		{"wrong version", corrupt(8, 0x02), "version"},
		{"header bit flip", corrupt(24, 0x01), "checksum"}, // n changed → header crc fails first
		{"table bit flip", corrupt(snapHeaderSize+8, 0x01), "checksum"},
		{"payload bit flip", corrupt(snapPayloadBase+3, 0x40), "section 0 checksum"},
		{"last payload bit flip", corrupt(len(valid)-1, 0x40), "checksum"},
		{"truncated header", valid[:20], "truncated"},
		{"truncated payload", valid[:len(valid)-100], "truncated"},
		{"empty", nil, "truncated"},
	}
	for _, c := range cases {
		_, _, err := ReadSnapshot(bytes.NewReader(c.data))
		if err == nil {
			t.Errorf("%s: corruption not detected", c.name)
			continue
		}
		if c.want != "" && !bytes.Contains([]byte(err.Error()), []byte(c.want)) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestSnapshotOfIngestedGraph(t *testing.T) {
	// The full loop the CI datasets job exercises: text → ingest →
	// snapshot → reload is byte-identical to the ingested graph.
	g, _, err := Bytes([]byte(messyEdgeList), Options{Workers: 4, Model: graph.LT, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g, 9); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(g, g2) {
		t.Fatal("ingest→snapshot→reload changed the graph")
	}
}
