package ingest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/imm"
)

// poolFixture runs a small warm query and freezes the resulting pool,
// returning the graph it is bound to alongside the state.
func poolFixture(t testing.TB, pool imm.PoolKind, adaptive bool, epoch int64) (*graph.Graph, imm.Options, *imm.PoolState) {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(6, 5), graph.IC, 3)
	if err != nil {
		t.Fatal(err)
	}
	opt := imm.Defaults()
	opt.Workers = 2
	opt.Seed = 11
	opt.MaxTheta = 4000
	opt.Pool = pool
	opt.AdaptiveRep = adaptive
	we, err := imm.NewWarmEngine(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := we.AnswerBatch(opt, []imm.BatchQuery{{K: 4, Epsilon: 0.5}}); err != nil {
		t.Fatal(err)
	}
	st, err := we.Freeze(epoch)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count == 0 {
		t.Fatal("fixture froze an empty pool")
	}
	return g, opt, st
}

func i32eq(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// equalPoolState compares two states field by field, treating nil and
// empty slices as equal (the reader yields nil for empty sections).
func equalPoolState(a, b *imm.PoolState) bool {
	if a.N != b.N || a.M != b.M || a.Model != b.Model || a.Epoch != b.Epoch ||
		a.GraphSum != b.GraphSum || a.Seed != b.Seed || a.Pool != b.Pool ||
		a.AdaptiveRep != b.AdaptiveRep || a.RepThreshold != b.RepThreshold ||
		a.Count != b.Count || a.TotalMembers != b.TotalMembers {
		return false
	}
	for s := range a.Shards {
		x, y := &a.Shards[s], &b.Shards[s]
		if !bytes.Equal(x.Kinds, y.Kinds) || !i32eq(x.Sizes, y.Sizes) ||
			!i32eq(x.CompLens, y.CompLens) || !i32eq(x.ListData, y.ListData) ||
			!bytes.Equal(x.CompData, y.CompData) ||
			!i32eq(x.PostIdx, y.PostIdx) || !i32eq(x.PostData, y.PostData) {
			return false
		}
		if len(x.BitmapData) != len(y.BitmapData) {
			return false
		}
		for i := range x.BitmapData {
			if x.BitmapData[i] != y.BitmapData[i] {
				return false
			}
		}
	}
	return true
}

func TestPoolSnapshotRoundTrip(t *testing.T) {
	cases := []struct {
		name     string
		pool     imm.PoolKind
		adaptive bool
	}{
		{"lists", imm.PoolSlices, false},
		{"compressed", imm.PoolCompressed, false},
		{"adaptive", imm.PoolSlices, true},
	}
	for _, c := range cases {
		g, opt, st := poolFixture(t, c.pool, c.adaptive, 4)
		var buf bytes.Buffer
		if err := WritePoolSnapshot(&buf, st); err != nil {
			t.Fatalf("%s: write: %v", c.name, err)
		}
		if got, want := int64(buf.Len()), PoolSnapshotSize(st); got != want {
			t.Fatalf("%s: snapshot is %d bytes, PoolSnapshotSize predicts %d", c.name, got, want)
		}
		got, info, err := ReadPoolSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: read: %v", c.name, err)
		}
		if !equalPoolState(st, got) {
			t.Fatalf("%s: round trip changed the pool state", c.name)
		}
		if info.Seed != st.Seed || info.N != st.N || info.M != st.M || info.Epoch != 4 ||
			info.Count != st.Count || info.TotalMembers != st.TotalMembers ||
			info.Model != st.Model || info.GraphSum != st.GraphSum ||
			info.Bytes != int64(buf.Len()) {
			t.Fatalf("%s: info %+v does not match state", c.name, info)
		}
		if info.Compressed != (c.pool == imm.PoolCompressed) || info.Adaptive != c.adaptive {
			t.Fatalf("%s: info flags %+v wrong", c.name, info)
		}

		// Canonical: a second encode of the same state is byte-identical.
		var buf2 bytes.Buffer
		if err := WritePoolSnapshot(&buf2, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("%s: encoding is not canonical", c.name)
		}

		// The decoded state must bind and thaw against its own graph.
		if err := ValidatePoolGraph(got, g, 4); err != nil {
			t.Fatalf("%s: decoded state rejected by its own graph: %v", c.name, err)
		}
		if _, err := imm.ThawWarmEngine(g, opt, got); err != nil {
			t.Fatalf("%s: decoded state failed to thaw: %v", c.name, err)
		}
	}
}

func TestPoolSnapshotFileAndInfo(t *testing.T) {
	_, _, st := poolFixture(t, imm.PoolCompressed, true, 2)
	path := filepath.Join(t.TempDir(), "p"+PoolSnapshotExt)
	if err := WritePoolSnapshotFile(path, st); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadPoolSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !equalPoolState(st, got) {
		t.Fatal("file round trip changed the pool state")
	}
	info, err := ReadPoolSnapshotInfoFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 2 || info.Count != st.Count || info.Seed != st.Seed ||
		!info.Compressed || !info.Adaptive || info.Bytes != PoolSnapshotSize(st) {
		t.Fatalf("header-only info %+v does not match state", info)
	}
}

func TestPoolSnapshotMmap(t *testing.T) {
	for _, pool := range []imm.PoolKind{imm.PoolSlices, imm.PoolCompressed} {
		g, opt, st := poolFixture(t, pool, true, 0)
		path := filepath.Join(t.TempDir(), "p"+PoolSnapshotExt)
		if err := WritePoolSnapshotFile(path, st); err != nil {
			t.Fatal(err)
		}
		mapped, info, err := MapPoolSnapshotFile(path)
		if err != nil {
			t.Fatalf("%v: map: %v", pool, err)
		}
		if !equalPoolState(st, mapped) {
			t.Fatalf("%v: mapped state differs from frozen state", pool)
		}
		if info.Count != st.Count {
			t.Fatalf("%v: mapped info %+v wrong", pool, info)
		}
		// The mapped (possibly aliased, read-only) state must thaw into a
		// working engine: this is the promotion path.
		if _, err := imm.ThawWarmEngine(g, opt, mapped); err != nil {
			t.Fatalf("%v: mapped state failed to thaw: %v", pool, err)
		}
	}
}

func TestPoolSnapshotMmapRejectsCorruption(t *testing.T) {
	_, _, st := poolFixture(t, imm.PoolSlices, false, 0)
	var buf bytes.Buffer
	if err := WritePoolSnapshot(&buf, st); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	dir := t.TempDir()

	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-1] ^= 0x40
	for name, data := range map[string][]byte{
		"flip.impool":  flipped,
		"trunc.impool": raw[:len(raw)-64],
		"tiny.impool":  raw[:16],
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := MapPoolSnapshotFile(path); !errors.Is(err, ErrPoolSnapshot) {
			t.Fatalf("%s: got %v, want ErrPoolSnapshot", name, err)
		}
	}
}

// rewriteHeaderCRC recomputes the header+table checksum in place so a
// test can alter header fields and still reach the deeper checks.
func rewriteHeaderCRC(data []byte) {
	crc := crc32.Checksum(data[:44], castagnoli)
	crc = crc32.Update(crc, castagnoli, data[snapHeaderSize:snapHeaderSize+poolTableSize])
	binary.LittleEndian.PutUint32(data[44:], crc)
}

// rewriteMetaWord alters one int64 of the metadata section and repairs
// the section CRC in its table entry plus the header CRC, so only the
// semantic metadata check can reject the result.
func rewriteMetaWord(data []byte, word int, v int64) {
	off := int64(binary.LittleEndian.Uint64(data[snapHeaderSize+8:]))
	binary.LittleEndian.PutUint64(data[off+int64(8*word):], uint64(v))
	crc := crc32.Checksum(data[off:off+8*poolMetaWords], castagnoli)
	binary.LittleEndian.PutUint32(data[snapHeaderSize+24:], crc)
	rewriteHeaderCRC(data)
}

func TestPoolSnapshotCorruption(t *testing.T) {
	_, _, st := poolFixture(t, imm.PoolSlices, true, 3)
	var buf bytes.Buffer
	if err := WritePoolSnapshot(&buf, st); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	mutate := func(fn func(data []byte)) []byte {
		c := append([]byte(nil), valid...)
		fn(c)
		return c
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "truncated"},
		{"truncated header", valid[:20], "truncated"},
		{"truncated table", valid[:snapHeaderSize+poolTableSize/2], "truncated"},
		{"truncated payload", valid[:len(valid)-32], "truncated"},
		{"bad magic", mutate(func(d []byte) { d[0] ^= 0xff }), "bad magic"},
		{"wrong version", mutate(func(d []byte) { binary.LittleEndian.PutUint32(d[8:], 9) }), "version"},
		{"unknown flags", mutate(func(d []byte) {
			d[12] |= 0x04
			rewriteHeaderCRC(d)
		}), "unknown flags"},
		{"header bit flip", mutate(func(d []byte) { d[17] ^= 0x01 }), "checksum"},
		{"table bit flip", mutate(func(d []byte) { d[snapHeaderSize+40] ^= 0x01 }), "checksum"},
		{"payload bit flip", mutate(func(d []byte) { d[len(d)-1] ^= 0x40 }), "checksum"},
		{"shard count mismatch (header)", mutate(func(d []byte) {
			binary.LittleEndian.PutUint32(d[40:], 130)
			rewriteHeaderCRC(d)
		}), "16-shard"},
		{"shard count mismatch (meta)", mutate(func(d []byte) { rewriteMetaWord(d, 6, 8) }), "shards"},
		{"unknown model", mutate(func(d []byte) { rewriteMetaWord(d, 5, 42) }), "model"},
		{"negative members", mutate(func(d []byte) { rewriteMetaWord(d, 2, -1) }), "negative"},
		{"member sum mismatch", mutate(func(d []byte) { rewriteMetaWord(d, 2, st.TotalMembers+1) }), "member sum"},
		{"non-canonical offset", mutate(func(d []byte) {
			// Shift the last section's recorded offset: layout check fires.
			e := snapHeaderSize + (poolSectionN-1)*snapEntrySize
			off := binary.LittleEndian.Uint64(d[e+8:])
			binary.LittleEndian.PutUint64(d[e+8:], off+64)
			rewriteHeaderCRC(d)
		}), "canonical"},
	}
	for _, c := range cases {
		_, _, err := ReadPoolSnapshot(bytes.NewReader(c.data))
		if !errors.Is(err, ErrPoolSnapshot) {
			t.Errorf("%s: got %v, want ErrPoolSnapshot", c.name, err)
			continue
		}
		if c.want != "" && !bytes.Contains([]byte(err.Error()), []byte(c.want)) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
		// The header-only info reader must reject header/meta damage the
		// same way (payload damage is beyond what it reads).
		if _, err := ReadPoolSnapshotInfo(bytes.NewReader(c.data)); err == nil &&
			c.name != "payload bit flip" && c.name != "member sum mismatch" &&
			c.name != "truncated payload" && c.name != "non-canonical offset" {
			t.Errorf("%s: info reader accepted corrupt header", c.name)
		}
	}
}

func TestPoolSnapshotStaleBinding(t *testing.T) {
	g, _, st := poolFixture(t, imm.PoolSlices, false, 0)
	var buf bytes.Buffer
	if err := WritePoolSnapshot(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadPoolSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	if err := ValidatePoolGraph(got, g, 0); err != nil {
		t.Fatalf("fresh snapshot rejected: %v", err)
	}

	// A snapshot frozen at epoch 0 must be rejected once the graph has
	// advanced past it — this is the delta-advanced restart scenario.
	if err := ValidatePoolGraph(got, g, 1); !errors.Is(err, ErrPoolStale) {
		t.Fatalf("epoch advance: got %v, want ErrPoolStale", err)
	}

	// Even at a matching epoch number, different graph content (here:
	// the same graph with one extra edge) must be caught by the
	// fingerprint, not served silently wrong.
	g2, _, err := graph.ApplyDelta(g, graph.Delta{Add: []graph.Edge{{Src: 0, Dst: int32(g.N - 1)}}}, graph.DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePoolGraph(got, g2, 0); !errors.Is(err, ErrPoolStale) {
		t.Fatalf("content change: got %v, want ErrPoolStale", err)
	}

	// Stale is not corrupt: the two sentinels must stay distinct so
	// callers can regenerate on stale but alert on corrupt.
	if errors.Is(ErrPoolStale, ErrPoolSnapshot) || errors.Is(ErrPoolSnapshot, ErrPoolStale) {
		t.Fatal("ErrPoolStale and ErrPoolSnapshot must be distinct")
	}
}

// FuzzPoolSnapshotRoundTrip feeds arbitrary bytes to the pool-snapshot
// reader. It must reject garbage with a typed error — never panic or
// over-allocate — and any accepted input must re-encode to its own
// bytes and re-decode to the same state.
func FuzzPoolSnapshotRoundTrip(f *testing.F) {
	for _, pool := range []imm.PoolKind{imm.PoolSlices, imm.PoolCompressed} {
		_, _, st := poolFixture(f, pool, pool == imm.PoolCompressed, 1)
		var buf bytes.Buffer
		if err := WritePoolSnapshot(&buf, st); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2]) // truncation seed
	}
	f.Add([]byte("IMPOOL\x1a\x00 not a real pool snapshot"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		st, _, err := ReadPoolSnapshot(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrPoolSnapshot) {
				t.Fatalf("rejection is not typed: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := WritePoolSnapshot(&buf, st); err != nil {
			t.Fatalf("re-encode of accepted snapshot failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data[:len(buf.Bytes())]) {
			t.Fatal("accepted snapshot does not re-encode to its own bytes")
		}
		st2, _, err := ReadPoolSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !equalPoolState(st, st2) {
			t.Fatal("round trip changed the pool state")
		}
	})
}
