package ingest

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/graph"
)

// The .imdelta binary edge-delta format, version 1 — the batch mutation
// companion to .imsnap. All integers are little-endian. Like the
// snapshot format it is a fixed header, a section table, and raw
// payloads at 64-byte-aligned offsets, CRC32-C-checked per section and
// over the header.
//
//	offset  size  field
//	0       8     magic "IMDELTA\x1a"
//	8       4     format version (1)
//	12      4     flags (bit 0: explicit add probabilities present)
//	16      8     weight-derivation seed
//	24      8     add count
//	32      8     remove count
//	40      4     section count (3)
//	44      4     CRC32-C of bytes [0,44) + the section table
//	48      3×32  section table (same entry shape as .imsnap)
//	…             payloads, 64-byte aligned, zero-padded between
//
// Sections, in id order: Add (int32 src,dst pairs ×addCount), AddProb
// (float32 ×addCount when flag bit 0 is set, empty otherwise), Remove
// (int32 src,dst pairs ×removeCount). The encoding is canonical for a
// given Delta value — write→read round-trips every field exactly,
// which FuzzDeltaRoundTrip pins.

// DeltaVersion is the current .imdelta format version.
const DeltaVersion = 1

// DeltaExt is the conventional file extension.
const DeltaExt = ".imdelta"

var deltaMagic = [8]byte{'I', 'M', 'D', 'E', 'L', 'T', 'A', 0x1a}

const (
	deltaSectionN    = 3
	deltaFlagProbs   = 1 << 0
	deltaSecAdd      = 0
	deltaSecAddProb  = 1
	deltaSecRemove   = 2
	deltaTableSize   = deltaSectionN * snapEntrySize
	deltaPayloadBase = (snapHeaderSize + deltaTableSize + snapAlign - 1) / snapAlign * snapAlign
)

// DeltaInfo describes a delta stream's header.
type DeltaInfo struct {
	Version  uint32
	Seed     uint64
	Adds     int64
	Removes  int64
	Explicit bool // explicit IC probabilities accompany the additions
	Bytes    int64
}

// DeltaOptions maps an ingestion dedupe policy onto the apply-time
// strictness knob: DedupeStrict fails on self-loops, duplicate adds,
// and absent removals, exactly as it fails edge-list ingestion.
func (d Dedupe) DeltaOptions() graph.DeltaOptions {
	return graph.DeltaOptions{Strict: d == DedupeStrict}
}

// deltaLayout computes the canonical section table for a delta shape.
func deltaLayout(adds, removes int64, explicit bool) []snapSection {
	probLen := int64(0)
	if explicit {
		probLen = 4 * adds
	}
	secs := []snapSection{
		{id: deltaSecAdd, elemSize: 4, byteLen: 8 * adds},
		{id: deltaSecAddProb, elemSize: 4, byteLen: probLen},
		{id: deltaSecRemove, elemSize: 4, byteLen: 8 * removes},
	}
	off := int64(deltaPayloadBase)
	for i := range secs {
		if secs[i].byteLen > 0 {
			off = alignUp(off)
		}
		secs[i].offset = off
		off += secs[i].byteLen
	}
	return secs
}

// flattenEdges lays out edges as interleaved (src, dst) int32 pairs.
func flattenEdges(edges []graph.Edge) []int32 {
	out := make([]int32, 0, 2*len(edges))
	for _, e := range edges {
		out = append(out, e.Src, e.Dst)
	}
	return out
}

// WriteDelta writes d as a version-1 .imdelta stream. The delta is
// written verbatim — no dedup or validation happens here; that is
// ApplyDelta's job at application time, under the applier's policy.
func WriteDelta(w io.Writer, d graph.Delta) error {
	if len(d.AddProb) != 0 && len(d.AddProb) != len(d.Add) {
		return fmt.Errorf("ingest: delta AddProb length %d does not match Add length %d", len(d.AddProb), len(d.Add))
	}
	explicit := len(d.AddProb) != 0
	secs := deltaLayout(int64(len(d.Add)), int64(len(d.Remove)), explicit)
	payloads := [deltaSectionN]payload{
		{i32: flattenEdges(d.Add)},
		{f32: d.AddProb},
		{i32: flattenEdges(d.Remove)},
	}
	for i := range secs {
		secs[i].crc = payloads[i].crc()
	}

	header := make([]byte, snapHeaderSize+deltaTableSize)
	copy(header[0:8], deltaMagic[:])
	le := binary.LittleEndian
	le.PutUint32(header[8:], DeltaVersion)
	flags := uint32(0)
	if explicit {
		flags |= deltaFlagProbs
	}
	le.PutUint32(header[12:], flags)
	le.PutUint64(header[16:], d.Seed)
	le.PutUint64(header[24:], uint64(len(d.Add)))
	le.PutUint64(header[32:], uint64(len(d.Remove)))
	le.PutUint32(header[40:], deltaSectionN)
	for i, s := range secs {
		e := header[snapHeaderSize+i*snapEntrySize:]
		le.PutUint32(e[0:], s.id)
		le.PutUint32(e[4:], s.elemSize)
		le.PutUint64(e[8:], uint64(s.offset))
		le.PutUint64(e[16:], uint64(s.byteLen))
		le.PutUint32(e[24:], s.crc)
		le.PutUint32(e[28:], 0)
	}
	hcrc := crc32.Checksum(header[:44], castagnoli)
	hcrc = crc32.Update(hcrc, castagnoli, header[snapHeaderSize:])
	le.PutUint32(header[44:], hcrc)

	bw := bufio.NewWriterSize(w, snapChunk)
	if _, err := bw.Write(header); err != nil {
		return err
	}
	pos := int64(len(header))
	for i, s := range secs {
		if err := writePad(bw, s.offset-pos); err != nil {
			return err
		}
		if err := payloads[i].writeTo(bw); err != nil {
			return err
		}
		pos = s.offset + s.byteLen
	}
	return bw.Flush()
}

// WriteDeltaFile creates path and writes the delta.
func WriteDeltaFile(path string, d graph.Delta) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteDelta(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadDelta reads a version-1 .imdelta stream, verifying magic,
// version, header checksum, canonical section layout, and every
// section checksum. Allocation is bounded by the bytes actually read.
func ReadDelta(r io.Reader) (graph.Delta, DeltaInfo, error) {
	var d graph.Delta
	var info DeltaInfo
	header := make([]byte, snapHeaderSize+deltaTableSize)
	if _, err := io.ReadFull(r, header); err != nil {
		return d, info, fmt.Errorf("ingest: delta: truncated header: %w", err)
	}
	if [8]byte(header[0:8]) != deltaMagic {
		return d, info, fmt.Errorf("ingest: delta: bad magic %q", header[0:8])
	}
	le := binary.LittleEndian
	info.Version = le.Uint32(header[8:])
	if info.Version != DeltaVersion {
		return d, info, fmt.Errorf("ingest: delta: unsupported version %d (want %d)", info.Version, DeltaVersion)
	}
	flags := le.Uint32(header[12:])
	if flags&^uint32(deltaFlagProbs) != 0 {
		return d, info, fmt.Errorf("ingest: delta: unknown flags %#x", flags)
	}
	info.Explicit = flags&deltaFlagProbs != 0
	info.Seed = le.Uint64(header[16:])
	adds := int64(le.Uint64(header[24:]))
	removes := int64(le.Uint64(header[32:]))
	if adds < 0 || removes < 0 || adds > math.MaxInt64/16 || removes > math.MaxInt64/16 {
		return d, info, fmt.Errorf("ingest: delta: invalid shape adds=%d removes=%d", adds, removes)
	}
	info.Adds, info.Removes = adds, removes
	if count := le.Uint32(header[40:]); count != deltaSectionN {
		return d, info, fmt.Errorf("ingest: delta: %d sections, want %d", count, deltaSectionN)
	}
	wantCRC := le.Uint32(header[44:])
	gotCRC := crc32.Checksum(header[:44], castagnoli)
	gotCRC = crc32.Update(gotCRC, castagnoli, header[snapHeaderSize:])
	if gotCRC != wantCRC {
		return d, info, fmt.Errorf("ingest: delta: header checksum mismatch")
	}

	want := deltaLayout(adds, removes, info.Explicit)
	secs := make([]snapSection, deltaSectionN)
	for i := range secs {
		e := header[snapHeaderSize+i*snapEntrySize:]
		secs[i] = snapSection{
			id:       le.Uint32(e[0:]),
			elemSize: le.Uint32(e[4:]),
			offset:   int64(le.Uint64(e[8:])),
			byteLen:  int64(le.Uint64(e[16:])),
			crc:      le.Uint32(e[24:]),
		}
		w := want[i]
		if secs[i].id != w.id || secs[i].elemSize != w.elemSize || secs[i].offset != w.offset || secs[i].byteLen != w.byteLen {
			return d, info, fmt.Errorf("ingest: delta: section %d layout mismatch (corrupt table)", i)
		}
	}
	info.Bytes = secs[deltaSectionN-1].offset + secs[deltaSectionN-1].byteLen

	pos := int64(len(header))
	var addFlat, removeFlat []int32
	var addProb []float32
	for i, s := range secs {
		if err := discard(r, s.offset-pos); err != nil {
			return d, info, fmt.Errorf("ingest: delta: truncated before section %d: %w", i, err)
		}
		var crc uint32
		var err error
		switch s.id {
		case deltaSecAdd:
			addFlat, crc, err = readI32Section(r, s.byteLen)
		case deltaSecAddProb:
			addProb, crc, err = readF32Section(r, s.byteLen)
		case deltaSecRemove:
			removeFlat, crc, err = readI32Section(r, s.byteLen)
		}
		if err != nil {
			return d, info, fmt.Errorf("ingest: delta: truncated section %d: %w", i, err)
		}
		if crc != s.crc {
			return d, info, fmt.Errorf("ingest: delta: section %d checksum mismatch", i)
		}
		pos = s.offset + s.byteLen
	}

	d.Seed = info.Seed
	d.Add = unflattenEdges(addFlat)
	d.AddProb = addProb
	d.Remove = unflattenEdges(removeFlat)
	return d, info, nil
}

// ReadDeltaFile opens path and delegates to ReadDelta.
func ReadDeltaFile(path string) (graph.Delta, DeltaInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return graph.Delta{}, DeltaInfo{}, err
	}
	defer f.Close()
	return ReadDelta(bufio.NewReaderSize(f, snapChunk))
}

func unflattenEdges(flat []int32) []graph.Edge {
	if len(flat) == 0 {
		return nil
	}
	out := make([]graph.Edge, len(flat)/2)
	for i := range out {
		out[i] = graph.Edge{Src: flat[2*i], Dst: flat[2*i+1]}
	}
	return out
}
