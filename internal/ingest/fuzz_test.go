package ingest

import (
	"bytes"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// FuzzSnapshotRoundTrip feeds arbitrary bytes to the snapshot reader.
// The reader must never panic or over-allocate; when the input does
// parse (corpus mutations that keep every checksum valid), re-encoding
// the graph must reproduce the canonical bytes exactly.
func FuzzSnapshotRoundTrip(f *testing.F) {
	for _, model := range []graph.Model{graph.IC, graph.LT} {
		g, err := gen.RMAT(gen.DefaultRMAT(5, 4), model, 3)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, g, 3); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2]) // truncation seed
	}
	f.Add([]byte("IMSNAP\x1a\x00 not a real snapshot"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		g, info, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs only need to fail cleanly
		}
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, g, info.Seed); err != nil {
			t.Fatalf("re-encode of accepted snapshot failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data[:len(buf.Bytes())]) {
			t.Fatal("accepted snapshot does not re-encode to its own bytes")
		}
		g2, _, err := ReadSnapshot(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !graph.Equal(g, g2) {
			t.Fatal("round trip changed the graph")
		}
	})
}
