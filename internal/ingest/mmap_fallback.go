//go:build !unix

package ingest

import "repro/internal/imm"

// MapPoolSnapshotFile on platforms without a usable mmap delegates to
// the streaming reader; the decoded state owns copies instead of
// aliasing the file, which is slower to promote but identical in
// behaviour.
func MapPoolSnapshotFile(path string) (*imm.PoolState, PoolSnapshotInfo, error) {
	return ReadPoolSnapshotFile(path)
}
