package ingest

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"repro/internal/graph"
)

func TestDeltaRoundTrip(t *testing.T) {
	cases := []graph.Delta{
		{},
		{Seed: 99},
		{Add: []graph.Edge{{Src: 1, Dst: 2}, {Src: 3, Dst: 4}}, Seed: 7},
		{Add: []graph.Edge{{Src: 1, Dst: 2}}, AddProb: []float32{0.5}, Seed: 7},
		{Remove: []graph.Edge{{Src: 9, Dst: 0}}},
		{
			Add:     []graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 2}, {Src: 5, Dst: 5}},
			AddProb: []float32{0, 0.25, 1},
			Remove:  []graph.Edge{{Src: 1, Dst: 0}, {Src: 1, Dst: 0}},
			Seed:    ^uint64(0),
		},
	}
	for i, d := range cases {
		var buf bytes.Buffer
		if err := WriteDelta(&buf, d); err != nil {
			t.Fatalf("case %d: write: %v", i, err)
		}
		got, info, err := ReadDelta(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("case %d: read: %v", i, err)
		}
		if !reflect.DeepEqual(normalizeDelta(got), normalizeDelta(d)) {
			t.Fatalf("case %d: round trip diverged:\n got %+v\nwant %+v", i, got, d)
		}
		if info.Seed != d.Seed || info.Adds != int64(len(d.Add)) || info.Removes != int64(len(d.Remove)) {
			t.Fatalf("case %d: info %+v does not match delta", i, info)
		}
		if info.Bytes != int64(buf.Len()) {
			t.Fatalf("case %d: info.Bytes %d != stream length %d", i, info.Bytes, buf.Len())
		}
		// Canonical: re-encoding the decoded value reproduces the bytes.
		var buf2 bytes.Buffer
		if err := WriteDelta(&buf2, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("case %d: encoding is not canonical", i)
		}
	}
}

// normalizeDelta maps empty slices to nil so DeepEqual compares values,
// not allocation accidents.
func normalizeDelta(d graph.Delta) graph.Delta {
	if len(d.Add) == 0 {
		d.Add = nil
	}
	if len(d.AddProb) == 0 {
		d.AddProb = nil
	}
	if len(d.Remove) == 0 {
		d.Remove = nil
	}
	return d
}

func TestDeltaFileRoundTrip(t *testing.T) {
	d := graph.Delta{
		Add:    []graph.Edge{{Src: 1, Dst: 2}, {Src: 3, Dst: 4}},
		Remove: []graph.Edge{{Src: 0, Dst: 1}},
		Seed:   11,
	}
	path := t.TempDir() + "/t" + DeltaExt
	if err := WriteDeltaFile(path, d); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadDeltaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeDelta(got), normalizeDelta(d)) {
		t.Fatalf("file round trip diverged: %+v", got)
	}
}

func TestDeltaCorruptionDetected(t *testing.T) {
	d := graph.Delta{Add: []graph.Edge{{Src: 1, Dst: 2}}, Remove: []graph.Edge{{Src: 3, Dst: 4}}, Seed: 5}
	var buf bytes.Buffer
	if err := WriteDelta(&buf, d); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip one payload byte: the section CRC must catch it.
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-1] ^= 0x40
	if _, _, err := ReadDelta(bytes.NewReader(flipped)); err == nil {
		t.Fatal("payload corruption went undetected")
	}

	// Flip a header byte (seed field): the header CRC must catch it.
	flipped = append([]byte(nil), raw...)
	flipped[17] ^= 0x01
	if _, _, err := ReadDelta(bytes.NewReader(flipped)); err == nil {
		t.Fatal("header corruption went undetected")
	}

	// Truncation must fail cleanly.
	if _, _, err := ReadDelta(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Fatal("truncated stream went undetected")
	}

	// Wrong magic.
	flipped = append([]byte(nil), raw...)
	flipped[0] = 'X'
	if _, _, err := ReadDelta(bytes.NewReader(flipped)); err == nil {
		t.Fatal("bad magic went undetected")
	}

	// Unknown version.
	flipped = append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(flipped[8:], 99)
	if _, _, err := ReadDelta(bytes.NewReader(flipped)); err == nil {
		t.Fatal("unknown version went undetected")
	}
}

func TestDedupeDeltaOptions(t *testing.T) {
	if !DedupeStrict.DeltaOptions().Strict {
		t.Fatal("DedupeStrict must map to strict delta application")
	}
	if DedupeSilent.DeltaOptions().Strict {
		t.Fatal("DedupeSilent must map to non-strict delta application")
	}
}

// FuzzDeltaRoundTrip feeds arbitrary bytes to the reader (it must fail
// cleanly or parse) and, when the bytes decode, requires
// decode→encode→decode to be a fixed point; it also round-trips
// structured deltas built from the fuzz input.
func FuzzDeltaRoundTrip(f *testing.F) {
	var seedBuf bytes.Buffer
	_ = WriteDelta(&seedBuf, graph.Delta{
		Add:     []graph.Edge{{Src: 1, Dst: 2}},
		AddProb: []float32{0.5},
		Remove:  []graph.Edge{{Src: 3, Dst: 4}},
		Seed:    7,
	})
	f.Add(seedBuf.Bytes())
	f.Add([]byte("IMDELTA\x1a"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, _, err := ReadDelta(bytes.NewReader(data))
		if err == nil {
			var buf bytes.Buffer
			if err := WriteDelta(&buf, d); err != nil {
				t.Fatalf("re-encode of decoded delta failed: %v", err)
			}
			d2, _, err := ReadDelta(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if !reflect.DeepEqual(normalizeDelta(d), normalizeDelta(d2)) {
				t.Fatal("decode→encode→decode is not a fixed point")
			}
		}

		// Structured round trip: carve edges out of the raw bytes.
		var sd graph.Delta
		for i := 0; i+8 <= len(data) && len(sd.Add) < 64; i += 8 {
			sd.Add = append(sd.Add, graph.Edge{
				Src: int32(binary.LittleEndian.Uint32(data[i:])),
				Dst: int32(binary.LittleEndian.Uint32(data[i+4:])),
			})
		}
		if len(data) > 0 {
			sd.Seed = uint64(data[0]) | uint64(len(data))<<8
		}
		var buf bytes.Buffer
		if err := WriteDelta(&buf, sd); err != nil {
			t.Fatalf("structured write failed: %v", err)
		}
		got, _, err := ReadDelta(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("structured read failed: %v", err)
		}
		if !reflect.DeepEqual(normalizeDelta(got), normalizeDelta(sd)) {
			t.Fatal("structured round trip diverged")
		}
	})
}
