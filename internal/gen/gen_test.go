package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestRMATBasic(t *testing.T) {
	g, err := RMAT(DefaultRMAT(10, 8), graph.IC, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 1024 {
		t.Fatalf("N = %d", g.N)
	}
	if g.M < int64(float64(g.N)*4) {
		t.Fatalf("M = %d unexpectedly small", g.M)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a, err := RMAT(DefaultRMAT(8, 4), graph.IC, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RMAT(DefaultRMAT(8, 4), graph.IC, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.M != b.M {
		t.Fatalf("same seed produced different edge counts %d vs %d", a.M, b.M)
	}
	for i := range a.OutEdges {
		if a.OutEdges[i] != b.OutEdges[i] {
			t.Fatal("same seed produced different edges")
		}
	}
}

func TestRMATSkewed(t *testing.T) {
	g, err := RMAT(DefaultRMAT(12, 8), graph.IC, 7)
	if err != nil {
		t.Fatal(err)
	}
	st := g.Degrees()
	if st.GiniOut < 0.4 {
		t.Fatalf("R-MAT Gini = %v, expected heavy skew (> 0.4)", st.GiniOut)
	}
	if float64(st.MaxOut) < 8*st.MeanOut {
		t.Fatalf("R-MAT max degree %d not heavy-tailed vs mean %v", st.MaxOut, st.MeanOut)
	}
}

func TestRMATRejectsBadParams(t *testing.T) {
	if _, err := RMAT(RMATParams{Scale: 0}, graph.IC, 1); err == nil {
		t.Fatal("scale 0 accepted")
	}
	p := DefaultRMAT(5, 2)
	p.A = 0.9 // now sums > 1
	if _, err := RMAT(p, graph.IC, 1); err == nil {
		t.Fatal("non-normalized quadrants accepted")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g, err := BarabasiAlbert(2000, 3, graph.IC, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 2000 {
		t.Fatalf("N = %d", g.N)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// BA graphs are connected when treated as undirected.
	_, wcc := g.WCC()
	if wcc != 1 {
		t.Fatalf("BA graph has %d weak components, want 1", wcc)
	}
	st := g.Degrees()
	if st.GiniOut < 0.3 {
		t.Fatalf("BA Gini = %v, expected skew", st.GiniOut)
	}
}

func TestBarabasiAlbertRejectsBadParams(t *testing.T) {
	if _, err := BarabasiAlbert(3, 5, graph.IC, 1); err == nil {
		t.Fatal("n <= k accepted")
	}
}

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi(500, 3000, graph.IC, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.M < 2500 || g.M > 3000 {
		t.Fatalf("M = %d, want near 3000 (minus collisions)", g.M)
	}
	st := g.Degrees()
	if st.GiniOut > 0.5 {
		t.Fatalf("ER Gini = %v, expected near-uniform degrees", st.GiniOut)
	}
}

func TestErdosRenyiRejectsTooManyEdges(t *testing.T) {
	if _, err := ErdosRenyi(3, 100, graph.IC, 1); err == nil {
		t.Fatal("impossible edge count accepted")
	}
}

func TestWattsStrogatz(t *testing.T) {
	g, err := WattsStrogatz(1000, 3, 0.05, graph.IC, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	st := g.Degrees()
	// Lattice-like: degrees concentrated near 2k.
	if st.GiniOut > 0.3 {
		t.Fatalf("WS Gini = %v, expected low skew", st.GiniOut)
	}
	_, wcc := g.WCC()
	if wcc != 1 {
		t.Fatalf("WS graph has %d weak components", wcc)
	}
}

func TestWattsStrogatzRejectsBadParams(t *testing.T) {
	if _, err := WattsStrogatz(10, 5, 0.1, graph.IC, 1); err == nil {
		t.Fatal("2k >= n accepted")
	}
	if _, err := WattsStrogatz(100, 2, 1.5, graph.IC, 1); err == nil {
		t.Fatal("beta > 1 accepted")
	}
}

func TestCommunityPlanted(t *testing.T) {
	g, err := CommunityPlanted(1024, 16, 3, 64, graph.IC, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M == 0 {
		t.Fatal("no edges generated")
	}
}

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 8 {
		t.Fatalf("%d profiles, want 8 (Table I datasets)", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		if names[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		names[p.Name] = true
		if p.PaperNodes <= 0 || p.PaperEdges <= 0 {
			t.Fatalf("profile %q missing paper scale", p.Name)
		}
		if p.ScaleFactor() < 1 {
			t.Fatalf("profile %q clone larger than original", p.Name)
		}
	}
	for _, want := range []string{"com-Amazon", "com-YouTube", "com-DBLP", "com-LJ", "soc-Pokec", "as-Skitter", "web-Google", "twitter7"} {
		if !names[want] {
			t.Fatalf("missing profile %q", want)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("web-Google")
	if err != nil || p.Name != "web-Google" {
		t.Fatalf("ProfileByName failed: %v", err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

// TestProfilesGenerate generates the small profiles end to end and
// verifies CSR validity plus rough density calibration.
func TestProfilesGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("profile generation is slow in -short mode")
	}
	for _, p := range Profiles() {
		if p.Scale > 13 {
			continue // keep unit tests fast; larger clones exercised in benches
		}
		g, err := p.Generate(graph.IC, 1)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		wantDensity := float64(p.PaperEdges) / float64(p.PaperNodes)
		gotDensity := float64(g.M) / float64(g.N)
		if gotDensity < wantDensity*0.4 || gotDensity > wantDensity*2.5 {
			t.Errorf("%s: clone density %.2f vs paper %.2f out of tolerance", p.Name, gotDensity, wantDensity)
		}
	}
}

func TestProfileGenerateDeterministicPerName(t *testing.T) {
	p, _ := ProfileByName("com-Amazon")
	a, err := p.Generate(graph.IC, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Generate(graph.IC, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.M != b.M {
		t.Fatal("profile generation not deterministic")
	}
}
