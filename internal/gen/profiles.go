package gen

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Version identifies the generator family's output. Bump it whenever a
// change alters the edges or weights any generator emits for a given
// seed — including changes to internal/rng, which both the generators
// and the weight assignment draw from. The CI datasets job keys its
// materialized-graph cache on this value (plus a hash of the gen,
// graph, ingest and rng sources), so a bump invalidates cached graphs.
const Version = "gen-v1"

// Profile describes a calibrated synthetic clone of one of the paper's
// SNAP datasets. PaperNodes/PaperEdges record the original scale for the
// footprint analyses; Nodes/Edges are the reduced scale actually
// generated. Kind selects the generator family whose structure best
// matches the original (R-MAT for skewed social/web graphs, Watts-
// Strogatz for the low-expansion as-Skitter topology, community-planted
// for the com-* graphs with crisp community structure).
type Profile struct {
	Name       string
	PaperNodes int64
	PaperEdges int64
	Kind       string // "rmat", "ws", "community", "ba"
	Scale      int    // rmat: log2 nodes
	EdgeFactor float64
	Undirected bool
	// WSK overrides the Watts-Strogatz neighbors-per-side. as-Skitter
	// needs a near-ring lattice (k=1) to reproduce its sub-critical RRR
	// percolation — the one dataset in Table I with tiny coverage — at
	// the cost of under-shooting its edge density.
	WSK int
	// Paper-reported RRRset coverage under IC, ε=0.5 (Table I), kept for
	// the experiment report.
	PaperAvgCoverage float64
	PaperMaxCoverage float64
}

// Profiles returns the eight dataset clones in the order of Table I.
// Sizes are scaled down ~32-64x so the full benchmark suite runs on a
// laptop; the generator parameters were chosen so density (edges/node)
// matches the original within ~20% and the degree distribution keeps the
// original's giant-SCC behaviour.
func Profiles() []Profile {
	return []Profile{
		{Name: "com-Amazon", PaperNodes: 334_863, PaperEdges: 925_872, Kind: "community",
			Scale: 13, EdgeFactor: 2.8, Undirected: true, PaperAvgCoverage: 0.613, PaperMaxCoverage: 0.796},
		{Name: "com-YouTube", PaperNodes: 1_134_890, PaperEdges: 2_987_624, Kind: "rmat",
			Scale: 14, EdgeFactor: 2.6, Undirected: true, PaperAvgCoverage: 0.327, PaperMaxCoverage: 0.599},
		{Name: "com-DBLP", PaperNodes: 317_080, PaperEdges: 1_049_866, Kind: "community",
			Scale: 13, EdgeFactor: 3.3, Undirected: true, PaperAvgCoverage: 0.514, PaperMaxCoverage: 0.789},
		{Name: "com-LJ", PaperNodes: 3_997_962, PaperEdges: 34_681_189, Kind: "rmat",
			Scale: 15, EdgeFactor: 8.7, Undirected: true, PaperAvgCoverage: 0.680, PaperMaxCoverage: 0.841},
		{Name: "soc-Pokec", PaperNodes: 1_632_803, PaperEdges: 30_622_564, Kind: "rmat",
			Scale: 14, EdgeFactor: 18.8, Undirected: false, PaperAvgCoverage: 0.601, PaperMaxCoverage: 0.785},
		{Name: "as-Skitter", PaperNodes: 1_696_415, PaperEdges: 11_095_298, Kind: "ws",
			Scale: 14, EdgeFactor: 6.5, Undirected: true, WSK: 1, PaperAvgCoverage: 0.016, PaperMaxCoverage: 0.054},
		{Name: "web-Google", PaperNodes: 875_713, PaperEdges: 5_105_039, Kind: "rmat",
			Scale: 14, EdgeFactor: 5.8, Undirected: false, PaperAvgCoverage: 0.174, PaperMaxCoverage: 0.548},
		{Name: "twitter7", PaperNodes: 41_652_230, PaperEdges: 1_468_365_182, Kind: "rmat",
			Scale: 16, EdgeFactor: 35.3, Undirected: false, PaperAvgCoverage: 0.598, PaperMaxCoverage: 0.880},
	}
}

// ProfileByName finds a profile by its SNAP dataset name
// (case-sensitive).
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	names := make([]string, 0, 8)
	for _, p := range Profiles() {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return Profile{}, fmt.Errorf("gen: unknown profile %q (have %v)", name, names)
}

// Nodes returns the clone's vertex count.
func (p Profile) Nodes() int32 { return 1 << uint(p.Scale) }

// Edges returns the approximate clone edge count before dedup.
func (p Profile) Edges() int64 { return int64(p.EdgeFactor * float64(p.Nodes())) }

// ScaleFactor returns how many times smaller the clone is than the
// original dataset, by node count.
func (p Profile) ScaleFactor() float64 {
	return float64(p.PaperNodes) / float64(p.Nodes())
}

// Generate materializes the clone with the given diffusion model. Seeds
// are derived from the profile name so each dataset clone is stable
// across runs regardless of generation order.
func (p Profile) Generate(model graph.Model, seed uint64) (*graph.Graph, error) {
	seed ^= nameHash(p.Name)
	switch p.Kind {
	case "rmat":
		params := DefaultRMAT(p.Scale, p.EdgeFactor)
		if p.Undirected {
			return rmatSymmetric(params, model, seed)
		}
		return RMAT(params, model, seed)
	case "ws":
		n := p.Nodes()
		k := p.WSK
		if k < 1 {
			k = int(p.EdgeFactor / 2)
		}
		if k < 1 {
			k = 1
		}
		return WattsStrogatz(n, k, 0.05, model, seed)
	case "community":
		n := p.Nodes()
		// At least two intra-community links per vertex keep the
		// communities above the IC percolation threshold, preserving the
		// giant-SCC coverage the paper's com-* graphs exhibit.
		inDeg := int(p.EdgeFactor / 2)
		if inDeg < 2 {
			inDeg = 2
		}
		return CommunityPlanted(n, int(n)/64, inDeg, int(n)/16, model, seed)
	case "ba":
		k := int(p.EdgeFactor / 2)
		if k < 1 {
			k = 1
		}
		return BarabasiAlbert(p.Nodes(), k, model, seed)
	default:
		return nil, fmt.Errorf("gen: profile %q has unknown kind %q", p.Name, p.Kind)
	}
}

// rmatSymmetric generates an R-MAT edge set and mirrors it, cloning the
// undirected SNAP graphs.
func rmatSymmetric(params RMATParams, model graph.Model, seed uint64) (*graph.Graph, error) {
	// Halve the factor since mirroring doubles the count.
	params.EdgeFactor /= 2
	g, err := RMAT(params, model, seed)
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(g.N)
	for u := int32(0); u < g.N; u++ {
		for _, v := range g.OutNeighbors(u) {
			b.AddUndirected(u, v)
		}
	}
	return b.Build(model, seed+2)
}

func nameHash(s string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
