// Package gen synthesizes graphs with the structural properties that
// drive IMM performance: heavy-tailed degree distributions, a giant
// strongly connected component, and community structure.
//
// The paper evaluates on eight SNAP datasets that are not redistributable
// inside this offline module, so each dataset is replaced by a calibrated
// synthetic clone (see Profiles) that matches its density, degree skew
// and connectivity at a reduced scale. The generators themselves — R-MAT,
// Barabási–Albert, Erdős–Rényi and Watts–Strogatz — are full
// implementations usable on their own through the public API.
package gen

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// RMATParams configures the recursive-matrix (Kronecker-like) generator
// of Chakrabarti et al., the standard synthetic stand-in for web and
// social graphs. A, B, C, D are the quadrant probabilities (D is implied
// as 1-A-B-C at generation time but kept explicit for clarity).
type RMATParams struct {
	Scale      int     // number of vertices = 2^Scale
	EdgeFactor float64 // edges ≈ EdgeFactor * 2^Scale
	A, B, C, D float64
	Noise      float64 // per-level probability perturbation, breaks grid artifacts
}

// DefaultRMAT mirrors the Graph500 parameter set (A=0.57, B=C=0.19),
// which produces the skewed, SCC-heavy structure of real social networks.
func DefaultRMAT(scale int, edgeFactor float64) RMATParams {
	return RMATParams{Scale: scale, EdgeFactor: edgeFactor, A: 0.57, B: 0.19, C: 0.19, D: 0.05, Noise: 0.1}
}

// RMAT generates a directed R-MAT graph.
func RMAT(p RMATParams, model graph.Model, seed uint64) (*graph.Graph, error) {
	if p.Scale < 1 || p.Scale > 30 {
		return nil, fmt.Errorf("gen: RMAT scale %d out of range [1,30]", p.Scale)
	}
	total := p.A + p.B + p.C + p.D
	if math.Abs(total-1) > 1e-6 {
		return nil, fmt.Errorf("gen: RMAT quadrant probabilities sum to %v, want 1", total)
	}
	n := int32(1) << uint(p.Scale)
	m := int64(p.EdgeFactor * float64(n))
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for e := int64(0); e < m; e++ {
		var u, v int32
		for level := p.Scale - 1; level >= 0; level-- {
			a, bb, c := p.A, p.B, p.C
			if p.Noise > 0 {
				// Multiplicative noise per level, renormalized.
				na := a * (1 - p.Noise + 2*p.Noise*r.Float64())
				nb := bb * (1 - p.Noise + 2*p.Noise*r.Float64())
				nc := c * (1 - p.Noise + 2*p.Noise*r.Float64())
				nd := p.D * (1 - p.Noise + 2*p.Noise*r.Float64())
				s := na + nb + nc + nd
				a, bb, c = na/s, nb/s, nc/s
			}
			x := r.Float64()
			switch {
			case x < a:
				// top-left: no bits
			case x < a+bb:
				v |= 1 << uint(level)
			case x < a+bb+c:
				u |= 1 << uint(level)
			default:
				u |= 1 << uint(level)
				v |= 1 << uint(level)
			}
		}
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Build(model, seed+1)
}

// BarabasiAlbert generates a preferential-attachment graph: each new
// vertex attaches k undirected edges to existing vertices chosen
// proportionally to degree. The result is a connected graph with a
// power-law tail, the canonical viral-marketing topology.
func BarabasiAlbert(n int32, k int, model graph.Model, seed uint64) (*graph.Graph, error) {
	if n < int32(k)+1 || k < 1 {
		return nil, fmt.Errorf("gen: BarabasiAlbert needs n > k >= 1 (got n=%d k=%d)", n, k)
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	// Repeated-endpoints list: choosing a uniform element of `ends` is
	// exactly degree-proportional selection.
	ends := make([]int32, 0, int(n)*k*2)
	// Seed clique over the first k+1 vertices.
	for i := 0; i <= k; i++ {
		for j := 0; j < i; j++ {
			b.AddUndirected(int32(i), int32(j))
			ends = append(ends, int32(i), int32(j))
		}
	}
	for v := int32(k + 1); v < n; v++ {
		chosen := map[int32]bool{}
		for len(chosen) < k {
			t := ends[r.Intn(len(ends))]
			if t != v {
				chosen[t] = true
			}
		}
		for t := range chosen {
			b.AddUndirected(v, t)
			ends = append(ends, v, t)
		}
	}
	return b.Build(model, seed+1)
}

// ErdosRenyi generates a directed G(n, m) graph with m edges drawn
// uniformly (duplicates removed by the builder).
func ErdosRenyi(n int32, m int64, model graph.Model, seed uint64) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: ErdosRenyi needs n >= 2")
	}
	maxM := int64(n) * int64(n-1)
	if m > maxM {
		return nil, fmt.Errorf("gen: requested %d edges exceeds %d possible", m, maxM)
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for e := int64(0); e < m; e++ {
		u := int32(r.Intn(int(n)))
		v := int32(r.Intn(int(n)))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Build(model, seed+1)
}

// WattsStrogatz generates a small-world ring lattice over n vertices with
// k nearest neighbors per side and rewiring probability beta. With small
// beta it resembles the low-expansion road-network structure of
// as-Skitter (the one paper dataset with tiny RRR coverage).
func WattsStrogatz(n int32, k int, beta float64, model graph.Model, seed uint64) (*graph.Graph, error) {
	if k < 1 || int32(2*k) >= n {
		return nil, fmt.Errorf("gen: WattsStrogatz needs 1 <= k and 2k < n")
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("gen: rewiring probability %v out of [0,1]", beta)
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for u := int32(0); u < n; u++ {
		for j := 1; j <= k; j++ {
			v := (u + int32(j)) % n
			if r.Bernoulli(beta) {
				for {
					cand := int32(r.Intn(int(n)))
					if cand != u {
						v = cand
						break
					}
				}
			}
			b.AddUndirected(u, v)
		}
	}
	return b.Build(model, seed+1)
}

// CommunityPlanted generates c dense communities of size n/c connected by
// sparse random bridges. It models the com-* SNAP graphs' explicit
// community structure and is used by the outbreak-detection example.
func CommunityPlanted(n int32, c int, inDeg, bridges int, model graph.Model, seed uint64) (*graph.Graph, error) {
	if c < 1 || int32(c) > n {
		return nil, fmt.Errorf("gen: community count %d out of range", c)
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	size := int(n) / c
	if size < 2 {
		return nil, fmt.Errorf("gen: communities of size %d too small", size)
	}
	for ci := 0; ci < c; ci++ {
		lo := int32(ci * size)
		hi := lo + int32(size)
		if ci == c-1 {
			hi = n
		}
		span := int(hi - lo)
		for v := lo; v < hi; v++ {
			for d := 0; d < inDeg; d++ {
				u := lo + int32(r.Intn(span))
				if u != v {
					b.AddUndirected(u, v)
				}
			}
		}
	}
	for i := 0; i < bridges; i++ {
		u := int32(r.Intn(int(n)))
		v := int32(r.Intn(int(n)))
		if u != v {
			b.AddUndirected(u, v)
		}
	}
	return b.Build(model, seed+1)
}
