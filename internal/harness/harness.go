// Package harness reproduces the paper's evaluation: one entry point per
// table and figure, each returning typed rows and optionally writing CSV
// files mirroring the artifact's extract_results.py output.
//
// Sizing: the SNAP clones are generated at a scale chosen by
// Config.MaxScale so the whole suite runs on a small machine. Wall-clock
// numbers therefore differ from the paper's, but the comparisons inside
// every experiment (who wins, how scaling bends, where the crossover sits)
// are produced by the same algorithms under the same workloads.
package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/imm"
)

// Config controls experiment sizing.
type Config struct {
	// MaxScale clamps each profile's log2 vertex count. 0 keeps profile
	// defaults (laptop-sized); tests use 8-9.
	MaxScale int
	// Workers is the strong-scaling sweep. Defaults to the paper's
	// 1..128 doubling.
	Workers []int
	// K and Epsilon follow the paper's k=50, ε=0.5 unless overridden.
	K       int
	Epsilon float64
	Seed    uint64
	// MaxThetaIC / MaxThetaLT cap sampling effort per model (0 = none).
	MaxThetaIC int64
	MaxThetaLT int64
	// CoverageSamples is the Table I sample count.
	CoverageSamples int
	// TraceSets / TraceWorkers size the Table IV cache traces.
	TraceSets    int
	TraceWorkers int
	// NUMASamples sizes the Table II instrumented generation runs.
	NUMASamples int
	// OutDir receives CSV/JSON artifacts; empty disables writing.
	OutDir string
	// Datasets restricts the profile list by name; nil means all eight.
	Datasets []string
}

// DefaultConfig returns the full evaluation configuration at a scale a
// 2-core container completes in minutes. The worker sweep keeps the
// paper's 1..128 range with a coarser grid; θ caps bound the LT runs
// whose baseline-engine wall-clock grows with the simulated worker count
// (every simulated Ripples worker really executes its redundant scan).
func DefaultConfig() Config {
	return Config{
		MaxScale:        10,
		Workers:         []int{1, 2, 8, 32, 128},
		K:               50,
		Epsilon:         0.5,
		Seed:            1,
		MaxThetaIC:      10000,
		MaxThetaLT:      20000,
		CoverageSamples: 1000,
		TraceSets:       1000,
		TraceWorkers:    128,
		NUMASamples:     300,
	}
}

// QuickConfig returns a configuration small enough for unit tests.
func QuickConfig() Config {
	return Config{
		MaxScale:        8,
		Workers:         []int{1, 4},
		K:               10,
		Epsilon:         0.5,
		Seed:            1,
		MaxThetaIC:      2000,
		MaxThetaLT:      5000,
		CoverageSamples: 200,
		TraceSets:       150,
		TraceWorkers:    16,
		NUMASamples:     60,
	}
}

// profiles returns the dataset clones selected by the config, scale-
// clamped.
func (c Config) profiles() []gen.Profile {
	var out []gen.Profile
	for _, p := range gen.Profiles() {
		if c.Datasets != nil && !contains(c.Datasets, p.Name) {
			continue
		}
		if c.MaxScale > 0 && p.Scale > c.MaxScale {
			p.Scale = c.MaxScale
		}
		out = append(out, p)
	}
	return out
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func (c Config) maxTheta(model graph.Model) int64 {
	if model == graph.LT {
		return c.MaxThetaLT
	}
	return c.MaxThetaIC
}

// options builds imm options for one run.
func (c Config) options(engine imm.EngineKind, model graph.Model, workers int) imm.Options {
	o := imm.Defaults()
	o.Engine = engine
	o.Workers = workers
	o.K = c.K
	o.Epsilon = c.Epsilon
	o.Seed = c.Seed
	o.MaxTheta = c.maxTheta(model)
	return o
}

// RunRecord is one (dataset, engine, model, workers) measurement, also
// serialized as the JSON log format the artifact's scripts consume.
type RunRecord struct {
	Dataset string  `json:"dataset"`
	Engine  string  `json:"engine"`
	Model   string  `json:"model"`
	Workers int     `json:"workers"`
	WallMS  float64 `json:"wall_ms"`
	Modeled float64 `json:"modeled"`
	// Phase splits of the modeled cost.
	SamplingModeled  float64 `json:"sampling_modeled"`
	SelectionModeled float64 `json:"selection_modeled"`
	SamplingWallMS   float64 `json:"sampling_wall_ms"`
	SelectionWallMS  float64 `json:"selection_wall_ms"`
	Theta            int64   `json:"theta"`
	Coverage         float64 `json:"coverage"`
	Seeds            []int32 `json:"seeds"`
	// Pool footprint (the memory dimension of the sweep).
	PoolSetBytes   int64   `json:"pool_set_bytes"`
	PoolIndexBytes int64   `json:"pool_index_bytes"`
	PoolRawBytes   int64   `json:"pool_raw_bytes"`
	PoolRatio      float64 `json:"pool_compression_ratio"`
}

// runOne executes a single IMM run and converts the result.
func runOne(g *graph.Graph, name string, opt imm.Options) (RunRecord, error) {
	res, err := imm.Run(g, opt)
	if err != nil {
		return RunRecord{}, fmt.Errorf("harness: %s/%v/%v: %w", name, opt.Engine, g.Model(), err)
	}
	return RunRecord{
		Dataset:          name,
		Engine:           opt.Engine.String(),
		Model:            g.Model().String(),
		Workers:          opt.Workers,
		WallMS:           float64(res.Breakdown.TotalWall) / float64(time.Millisecond),
		Modeled:          res.Breakdown.TotalModeled(),
		SamplingModeled:  res.Breakdown.SamplingModeled,
		SelectionModeled: res.Breakdown.SelectionModeled,
		SamplingWallMS:   float64(res.Breakdown.SamplingWall) / float64(time.Millisecond),
		SelectionWallMS:  float64(res.Breakdown.SelectionWall) / float64(time.Millisecond),
		Theta:            res.Theta,
		Coverage:         res.Coverage,
		Seeds:            res.Seeds,
		PoolSetBytes:     res.Pool.SetBytes,
		PoolIndexBytes:   res.Pool.IndexBytes,
		PoolRawBytes:     res.Pool.RawBytes,
		PoolRatio:        res.Pool.CompressionRatio(),
	}, nil
}

// writeCSV writes rows (first row = header) to OutDir/name when OutDir is
// set.
func (c Config) writeCSV(name string, rows [][]string) error {
	if c.OutDir == "" {
		return nil
	}
	if err := os.MkdirAll(c.OutDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(c.OutDir, name))
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeJSONLog appends a run record under OutDir in the artifact's
// strong-scaling-logs-<model>-<engine> directory layout.
func (c Config) writeJSONLog(rec RunRecord) error {
	if c.OutDir == "" {
		return nil
	}
	short := "eimm"
	if rec.Engine == "ripples" {
		short = "ripples"
	}
	dir := filepath.Join(c.OutDir, fmt.Sprintf("strong-scaling-logs-%s-%s", lower(rec.Model), short))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s_%dt.json", rec.Dataset, rec.Workers))
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func lower(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func i64(v int64) string   { return fmt.Sprintf("%d", v) }
func itoa(v int) string    { return fmt.Sprintf("%d", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
