package harness

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/imm"
	"repro/internal/serve"
)

// ---------------------------------------------------------------------
// Load sweep — mixed-traffic behavior of the batched query planner.
// ---------------------------------------------------------------------

// LoadRow is one traffic configuration of the mixed-traffic load sweep.
type LoadRow struct {
	// Config names the planner shape: "serial" answers the burst one
	// query at a time (one worker, no gather window — the pre-planner
	// convoy), "batched" gathers it into shared-extension batches.
	Config  string
	Queries int
	Pools   int

	WallMS float64
	QPS    float64

	// Planner counters after the burst (see serve.Stats).
	Batches          int64
	MaxBatchSize     int
	BatchedQueries   int64
	SharedExtensions int64
	SharedSets       int64
	GeneratedSets    int64
	ReusedSets       int64
	Coalesced        int64

	// SeedsMatch pins the tentpole guarantee under concurrency: every
	// answer of the burst equals a cold imm.Run with the same options.
	SeedsMatch bool
}

// loadMix builds the mixed burst: distinct (k, ε) shapes across two
// RRR pools plus exact repeats (which coalesce or warm-hit), the
// traffic shape the batched planner exists for.
func loadMix(cfg Config, name string) []serve.QueryRequest {
	base := serve.QueryRequest{Graph: name, K: cfg.K, Epsilon: cfg.Epsilon, Seed: cfg.Seed}
	var mix []serve.QueryRequest
	for _, seed := range []uint64{cfg.Seed, cfg.Seed + 1} {
		for _, shape := range []struct {
			k   int
			eps float64
		}{
			{max(1, cfg.K/2), min(0.9, cfg.Epsilon*1.4)},
			{cfg.K, cfg.Epsilon},
			{cfg.K * 2, cfg.Epsilon * 0.8},
		} {
			req := base
			req.Seed = seed
			req.K = shape.k
			req.Epsilon = shape.eps
			mix = append(mix, req)
		}
		// Exact repeat: exercises single-flight coalescing inside the
		// burst (or a warm hit when it lands after its twin finished).
		req := base
		req.Seed = seed
		mix = append(mix, req)
	}
	return mix
}

// LoadSweep fires the same concurrent mixed-k/mixed-ε burst at two
// planner configurations on an R-MAT graph at the given scale (log2
// vertices; <= 0 means 13) and reports wall clock plus the planner's
// batch/shared-extension counters: the "serial" row is the convoy the
// pre-planner server degraded to, the "batched" row shows the burst
// gathered onto shared θ-extensions. Every answer is verified
// byte-identical against a cold imm.Run. Results land in
// load_sweep.csv.
func LoadSweep(cfg Config, scale int) ([]LoadRow, error) {
	if scale <= 0 {
		scale = 13
	}
	g, err := gen.RMAT(gen.DefaultRMAT(scale, 8), graph.IC, cfg.Seed)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("rmat%d", scale)
	engineOpt := serve.Options{Workers: runtime.NumCPU(), MaxTheta: cfg.MaxThetaIC}
	mix := loadMix(cfg, name)

	// Cold references, one per distinct query shape.
	refs := make(map[serve.QueryRequest]*imm.Result)
	for _, req := range mix {
		if refs[req] != nil {
			continue
		}
		o := engineOpt.EngineOptions()
		o.K = req.K
		o.Epsilon = req.Epsilon
		o.Seed = req.Seed
		ref, err := imm.Run(g, o)
		if err != nil {
			return nil, fmt.Errorf("harness: load reference: %w", err)
		}
		refs[req] = ref
	}

	configs := []struct {
		name string
		opt  serve.Options
	}{
		{"serial", serve.Options{
			Workers: engineOpt.Workers, MaxTheta: engineOpt.MaxTheta,
			QueryWorkers: 1, GatherWindow: -1,
		}},
		{"batched", serve.Options{
			Workers: engineOpt.Workers, MaxTheta: engineOpt.MaxTheta,
			QueryWorkers: len(mix), GatherWindow: 50 * time.Millisecond,
		}},
	}

	var rows []LoadRow
	for _, c := range configs {
		s := serve.NewServer(c.opt)
		if _, err := s.AddGraph(name, g, cfg.Seed); err != nil {
			return nil, err
		}
		results := make([]*serve.QueryResult, len(mix))
		errs := make([]error, len(mix))
		var wg sync.WaitGroup
		start := time.Now()
		for i := range mix {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = s.Query(mix[i])
			}(i)
		}
		wg.Wait()
		wall := time.Since(start)

		match := true
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("harness: load %s query %d: %w", c.name, i, err)
			}
			ref := refs[mix[i]]
			if !reflect.DeepEqual(results[i].Seeds, ref.Seeds) || results[i].Theta != ref.Theta {
				match = false
			}
		}
		st := s.Stats()
		wallMS := float64(wall) / float64(time.Millisecond)
		rows = append(rows, LoadRow{
			Config:  c.name,
			Queries: len(mix),
			Pools:   st.Pools,
			WallMS:  wallMS,
			QPS:     safeDiv(float64(len(mix)), float64(wall)/float64(time.Second)),

			Batches:          st.Batches,
			MaxBatchSize:     st.MaxBatchSize,
			BatchedQueries:   st.BatchedQueries,
			SharedExtensions: st.SharedExtensions,
			SharedSets:       st.SharedSets,
			GeneratedSets:    st.GeneratedSets,
			ReusedSets:       st.ReusedSets,
			Coalesced:        st.Coalesced,

			SeedsMatch: match,
		})
	}

	csv := [][]string{{
		"config", "queries", "pools", "wall_ms", "qps",
		"batches", "max_batch_size", "batched_queries",
		"shared_extensions", "shared_sets", "generated_sets", "reused_sets",
		"coalesced", "seeds_match",
	}}
	for _, r := range rows {
		csv = append(csv, []string{
			r.Config, itoa(r.Queries), itoa(r.Pools), f2(r.WallMS), f2(r.QPS),
			i64(r.Batches), itoa(r.MaxBatchSize), i64(r.BatchedQueries),
			i64(r.SharedExtensions), i64(r.SharedSets), i64(r.GeneratedSets), i64(r.ReusedSets),
			i64(r.Coalesced), fmt.Sprintf("%v", r.SeedsMatch),
		})
	}
	return rows, cfg.writeCSV("load_sweep.csv", csv)
}
