package harness

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// quick returns a test config restricted to two small datasets.
func quick(t *testing.T, withOut bool) Config {
	t.Helper()
	cfg := QuickConfig()
	cfg.Datasets = []string{"com-Amazon", "web-Google"}
	if withOut {
		cfg.OutDir = t.TempDir()
	}
	return cfg
}

func TestTable1(t *testing.T) {
	cfg := quick(t, true)
	rows, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Nodes == 0 || r.Edges == 0 {
			t.Fatalf("%s: empty graph", r.Dataset)
		}
		if r.AvgCoverage < 0 || r.AvgCoverage > 1 || r.MaxCoverage < r.AvgCoverage {
			t.Fatalf("%s: bad coverage %v/%v", r.Dataset, r.AvgCoverage, r.MaxCoverage)
		}
		if r.PaperAvgCoverage == 0 {
			t.Fatalf("%s: paper reference missing", r.Dataset)
		}
	}
	if _, err := os.Stat(filepath.Join(cfg.OutDir, "table1_coverage.csv")); err != nil {
		t.Fatalf("csv not written: %v", err)
	}
}

func TestScalingSweepAndExtract(t *testing.T) {
	cfg := quick(t, true)
	cfg.Datasets = []string{"web-Google"}
	points, err := ScalingSweep(cfg, graph.IC)
	if err != nil {
		t.Fatal(err)
	}
	// 1 dataset × 2 engines × 2 worker counts.
	if len(points) != 4 {
		t.Fatalf("%d points, want 4", len(points))
	}
	for _, pt := range points {
		if pt.Modeled <= 0 {
			t.Fatalf("point %+v has no modeled cost", pt)
		}
		if pt.Workers == cfg.Workers[0] && pt.Engine == "ripples" && pt.SpeedupVs1 != 1 {
			t.Fatalf("ripples baseline point not normalized to 1: %+v", pt)
		}
	}
	// JSON logs must round-trip through the extract step.
	rows, err := ExtractResults(cfg.OutDir)
	if err != nil {
		t.Fatal(err)
	}
	ic := rows["ic"]
	if len(ic) != 1 {
		t.Fatalf("extract found %d ic rows, want 1", len(ic))
	}
	if ic[0].Speedup <= 0 {
		t.Fatalf("speedup = %v", ic[0].Speedup)
	}
	if _, err := os.Stat(filepath.Join(cfg.OutDir, "results", "speedup_ic.csv")); err != nil {
		t.Fatalf("speedup csv not written: %v", err)
	}
}

func TestEfficientWinsOnSweep(t *testing.T) {
	cfg := quick(t, false)
	cfg.Datasets = []string{"web-Google"}
	cfg.Workers = []int{1, 16}
	points, err := ScalingSweep(cfg, graph.LT)
	if err != nil {
		t.Fatal(err)
	}
	var ripBest, effBest float64
	for _, pt := range points {
		switch pt.Engine {
		case "ripples":
			if ripBest == 0 || pt.Modeled < ripBest {
				ripBest = pt.Modeled
			}
		default:
			if effBest == 0 || pt.Modeled < effBest {
				effBest = pt.Modeled
			}
		}
	}
	if effBest >= ripBest {
		t.Fatalf("efficient best %.0f not below ripples best %.0f", effBest, ripBest)
	}
}

func TestFig2Breakdown(t *testing.T) {
	cfg := quick(t, true)
	points, err := Fig2Breakdown(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*len(cfg.Workers) {
		t.Fatalf("%d points", len(points))
	}
	for _, pt := range points {
		sum := pt.SamplingPct + pt.SelectionPct
		if sum < 99.9 || sum > 100.1 {
			t.Fatalf("shares don't sum to 100: %+v", pt)
		}
	}
}

func TestTable2(t *testing.T) {
	cfg := quick(t, true)
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no Table II rows")
	}
	for _, r := range rows {
		if r.AwarePct >= r.OriginalPct {
			t.Fatalf("%s: aware %.1f%% not below original %.1f%%", r.Dataset, r.AwarePct, r.OriginalPct)
		}
		if r.ImprovementPct <= 0 {
			t.Fatalf("%s: no improvement", r.Dataset)
		}
	}
}

func TestFig5(t *testing.T) {
	cfg := quick(t, true)
	rows, err := Fig5AdaptiveUpdate(cfg, []string{"com-Amazon"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].RelativeSpeedup < 1 {
		t.Fatalf("adaptive update slower than decrement: %+v", rows[0])
	}
}

func TestTable3(t *testing.T) {
	cfg := quick(t, true)
	cfg.Datasets = []string{"web-Google"}
	rows, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // IC and LT
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 1 {
			t.Fatalf("%s/%s: EfficientIMM speedup %.2f not above 1", r.Dataset, r.Model, r.Speedup)
		}
		if r.RipplesFootprint <= r.EfficientFootprint {
			t.Fatalf("%s: footprint model inverted", r.Dataset)
		}
	}
}

func TestTable3TwitterOOM(t *testing.T) {
	cfg := quick(t, false)
	cfg.Datasets = []string{"twitter7"}
	cfg.MaxScale = 8
	rows, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	foundOOM := false
	for _, r := range rows {
		if r.Model == "IC" && r.RipplesOOM {
			foundOOM = true
		}
	}
	if !foundOOM {
		t.Fatal("Twitter7 IC row does not flag Ripples OOM at paper scale")
	}
}

func TestTable4(t *testing.T) {
	cfg := quick(t, true)
	// The miss-ratio gap needs the pool to exceed the L2 capacity; at
	// MaxScale 8 everything is cache-resident and both kernels miss only
	// on cold lines. Use a slightly larger clone and trace pool.
	cfg.MaxScale = 10
	cfg.TraceSets = 400
	cfg.Datasets = []string{"web-Google"}
	rows, err := Table4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no Table IV rows")
	}
	for _, r := range rows {
		if r.Reduction <= 1 {
			t.Fatalf("%s: miss reduction %.2f not above 1", r.Dataset, r.Reduction)
		}
	}
}

func TestAblations(t *testing.T) {
	cfg := quick(t, true)
	rows, err := Ablations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d ablation rows, want 10", len(rows))
	}
	if rows[0].Variant != "full" || rows[0].Penalty != 1 {
		t.Fatalf("first row must be the full configuration: %+v", rows[0])
	}
	for _, r := range rows[1:] {
		if r.Variant == "ripples-baseline" && r.Penalty <= 1 {
			t.Fatalf("baseline not slower than full: %+v", r)
		}
	}
}

func TestConfigProfileFiltering(t *testing.T) {
	cfg := QuickConfig()
	cfg.Datasets = []string{"com-DBLP"}
	ps := cfg.profiles()
	if len(ps) != 1 || ps[0].Name != "com-DBLP" {
		t.Fatalf("filtering failed: %v", ps)
	}
	if ps[0].Scale > cfg.MaxScale {
		t.Fatal("scale clamp not applied")
	}
}

func TestDistSweep(t *testing.T) {
	cfg := quick(t, true)
	cfg.Datasets = []string{"web-Google"}
	points, err := DistSweep(cfg, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points, want 3", len(points))
	}
	var prev int64 = -1
	for _, pt := range points {
		if !pt.SeedsMatch {
			t.Fatalf("ranks=%d: distributed seeds diverged from shared run", pt.Ranks)
		}
		if pt.BytesSent <= prev {
			t.Fatalf("ranks=%d: bytes %d not above previous %d", pt.Ranks, pt.BytesSent, prev)
		}
		prev = pt.BytesSent
		// ranks>1 go over real loopback TCP: the measured column must be
		// populated; at ranks=1 there is no wire, so it must be zero.
		if pt.Ranks == 1 {
			if pt.MeasuredSent != 0 || pt.MeasuredMsgs != 0 {
				t.Fatalf("ranks=1: unexpected measured traffic (%d B, %d msgs)", pt.MeasuredSent, pt.MeasuredMsgs)
			}
		} else {
			if pt.MeasuredSent == 0 || pt.MeasuredRecv == 0 || pt.MeasuredMsgs == 0 {
				t.Fatalf("ranks=%d: measured wire traffic missing (%d/%d B, %d msgs)",
					pt.Ranks, pt.MeasuredSent, pt.MeasuredRecv, pt.MeasuredMsgs)
			}
		}
		if pt.Failovers != 0 {
			t.Fatalf("ranks=%d: unexpected failovers: %d", pt.Ranks, pt.Failovers)
		}
	}
	if _, err := os.Stat(filepath.Join(cfg.OutDir, "dist_comm_sweep.csv")); err != nil {
		t.Fatalf("csv not written: %v", err)
	}
}

func TestMemorySweep(t *testing.T) {
	cfg := quick(t, true)
	rows, err := MemorySweep(cfg, []string{"web-Google"})
	if err != nil {
		t.Fatal(err)
	}
	// 1 dataset x 2 models x 3 variants.
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	byKey := map[string]MemoryRow{}
	for _, r := range rows {
		if !r.SeedsMatch {
			t.Fatalf("%s/%s/%s: seeds diverged from the slice baseline", r.Dataset, r.Model, r.Variant)
		}
		if r.SetBytes <= 0 || r.RawBytes <= 0 {
			t.Fatalf("footprint missing: %+v", r)
		}
		byKey[r.Model+"/"+r.Variant] = r
	}
	for _, model := range []string{"IC", "LT"} {
		raw := byKey[model+"/slice-list"]
		comp := byKey[model+"/compressed"]
		adaptive := byKey[model+"/slice-adaptive"]
		if comp.SetBytes > adaptive.SetBytes {
			t.Fatalf("%s: compressed %dB above adaptive slices %dB", model, comp.SetBytes, adaptive.SetBytes)
		}
		if comp.CompressionRatio <= 1 {
			t.Fatalf("%s: no compression vs slice pool: %.2f", model, comp.CompressionRatio)
		}
		if raw.SetBytes != raw.RawBytes {
			t.Fatalf("%s: slice-list pool must cost exactly 4B/member: %d vs %d", model, raw.SetBytes, raw.RawBytes)
		}
	}
	// The acceptance pin: >= 2x reduction vs the []int32-slice pool on
	// the default harness clone under IC (the memory-pressure model).
	if r := byKey["IC/compressed"]; r.CompressionRatio < 2 {
		t.Fatalf("IC compressed ratio %.2f, want >= 2", r.CompressionRatio)
	}
	if _, err := os.Stat(filepath.Join(cfg.OutDir, "memory_selection_sweep.csv")); err != nil {
		t.Fatalf("csv not written: %v", err)
	}
}

func TestIngestSweep(t *testing.T) {
	cfg := quick(t, true)
	rows, err := IngestSweep(cfg, 10, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if !r.Identical {
			t.Fatalf("workers=%d: ingested graph differs from the sequential reference", r.Workers)
		}
		if !r.SnapshotIdentical {
			t.Fatalf("workers=%d: snapshot reload differs", r.Workers)
		}
		if r.Edges == 0 || r.InputBytes == 0 || r.MBPerSec <= 0 {
			t.Fatalf("empty measurement: %+v", r)
		}
		if r.SnapshotBytes == 0 {
			t.Fatalf("snapshot size missing: %+v", r)
		}
	}
	if rows[0].Workers != 1 || rows[0].SpeedupVs1 != 1 {
		t.Fatalf("first row not the workers=1 baseline: %+v", rows[0])
	}
	if _, err := os.Stat(filepath.Join(cfg.OutDir, "ingest_sweep.csv")); err != nil {
		t.Fatalf("csv not written: %v", err)
	}
}

func TestCIBenchDeterministicAndComparable(t *testing.T) {
	a, err := CIBench()
	if err != nil {
		t.Fatal(err)
	}
	b, err := CIBench()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Metrics) != 6 { // 2 models x (ripples + efficient x 2 pools)
		t.Fatalf("%d metrics, want 6", len(a.Metrics))
	}
	if a.Ingest == nil || a.Ingest.Edges == 0 || a.Ingest.SnapshotBytes == 0 || a.Ingest.Seeds == "" {
		t.Fatalf("ingest leg missing or empty: %+v", a.Ingest)
	}
	if regs := CompareCI(a, b, 0); len(regs) != 0 {
		t.Fatalf("two identical runs diverge: %v", regs)
	}
	// Round-trip through the JSON the CI job ships.
	path := filepath.Join(t.TempDir(), "BENCH_ci.json")
	if err := WriteCIDigest(path, a); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCIDigest(path)
	if err != nil {
		t.Fatal(err)
	}
	if regs := CompareCI(loaded, b, 0); len(regs) != 0 {
		t.Fatalf("JSON round trip diverges: %v", regs)
	}
}

func TestCompareCIFlagsRegressions(t *testing.T) {
	base := CIDigest{Config: ciConfigTag, Metrics: []CIMetric{{
		Key: "k", Theta: 100, SamplingModeled: 1000, SelectionModeled: 500,
		PoolSetBytes: 4000, PoolIndexBytes: 0, CompressionRatio: 3, Seeds: "[1 2]",
	}}}
	cur := base
	cur.Metrics = append([]CIMetric(nil), base.Metrics...)
	if regs := CompareCI(base, cur, 0.1); len(regs) != 0 {
		t.Fatalf("identical digests flagged: %v", regs)
	}
	// Within tolerance: +5% sampling passes.
	cur.Metrics[0].SamplingModeled = 1050
	if regs := CompareCI(base, cur, 0.1); len(regs) != 0 {
		t.Fatalf("within-tolerance drift flagged: %v", regs)
	}
	// Beyond tolerance: +20% sampling fails.
	cur.Metrics[0].SamplingModeled = 1200
	if regs := CompareCI(base, cur, 0.1); len(regs) != 1 {
		t.Fatalf("sampling regression not flagged: %v", regs)
	}
	// Seeds drift fails regardless of costs.
	cur.Metrics[0].SamplingModeled = 1000
	cur.Metrics[0].Seeds = "[1 3]"
	if regs := CompareCI(base, cur, 0.1); len(regs) != 1 {
		t.Fatalf("seed drift not flagged: %v", regs)
	}
	// Compression-ratio collapse fails.
	cur.Metrics[0].Seeds = "[1 2]"
	cur.Metrics[0].CompressionRatio = 1.5
	if regs := CompareCI(base, cur, 0.1); len(regs) != 1 {
		t.Fatalf("ratio regression not flagged: %v", regs)
	}
	// Missing metric fails.
	cur.Metrics = nil
	if regs := CompareCI(base, cur, 0.1); len(regs) != 1 {
		t.Fatalf("missing metric not flagged: %v", regs)
	}
	// Config mismatch fails fast.
	cur = base
	cur.Config = "other"
	if regs := CompareCI(base, cur, 0.1); len(regs) != 1 {
		t.Fatalf("config mismatch not flagged: %v", regs)
	}
}

func TestCompareCIFlagsIngestRegressions(t *testing.T) {
	base := CIDigest{Config: ciConfigTag, Ingest: &CIIngest{
		Nodes: 100, Edges: 500, SnapshotBytes: 10000, Theta: 42, Seeds: "[1 2]", MBPerSec: 123,
	}}
	clone := func() CIDigest {
		d := base
		in := *base.Ingest
		d.Ingest = &in
		return d
	}
	if regs := CompareCI(base, clone(), 0.1); len(regs) != 0 {
		t.Fatalf("identical ingest legs flagged: %v", regs)
	}
	// Throughput drift alone never fails (hardware-dependent).
	cur := clone()
	cur.Ingest.MBPerSec = 1
	if regs := CompareCI(base, cur, 0.1); len(regs) != 0 {
		t.Fatalf("throughput drift flagged: %v", regs)
	}
	// Snapshot growth beyond tolerance fails.
	cur = clone()
	cur.Ingest.SnapshotBytes = 12000
	if regs := CompareCI(base, cur, 0.1); len(regs) != 1 {
		t.Fatalf("snapshot growth not flagged: %v", regs)
	}
	// Seed or θ drift through the ingested graph fails exactly.
	cur = clone()
	cur.Ingest.Seeds = "[1 3]"
	if regs := CompareCI(base, cur, 0.1); len(regs) != 1 {
		t.Fatalf("ingest seed drift not flagged: %v", regs)
	}
	cur = clone()
	cur.Ingest.Theta = 43
	if regs := CompareCI(base, cur, 0.1); len(regs) != 1 {
		t.Fatalf("ingest theta drift not flagged: %v", regs)
	}
	// Missing leg fails.
	cur = clone()
	cur.Ingest = nil
	if regs := CompareCI(base, cur, 0.1); len(regs) != 1 {
		t.Fatalf("missing ingest leg not flagged: %v", regs)
	}
}

func TestKernelSweep(t *testing.T) {
	cfg := quick(t, true)
	rows, err := KernelSweep(cfg, []string{"com-Amazon"})
	if err != nil {
		t.Fatal(err)
	}
	// 1 dataset x 2 models x worker grid {1, top}.
	want := 2
	if cfg.Workers[len(cfg.Workers)-1] > 1 {
		want = 4
	}
	if len(rows) != want {
		t.Fatalf("%d kernel rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if !r.SeedsMatch {
			t.Fatalf("%s/%s w=%d: fused and materialized kernels disagree", r.Dataset, r.Model, r.Workers)
		}
		if r.Theta <= 0 || r.GenSets <= 0 {
			t.Fatalf("%s/%s w=%d: empty measurement: %+v", r.Dataset, r.Model, r.Workers, r)
		}
		if r.AllocReduction < 10 {
			t.Fatalf("%s/%s w=%d: generation alloc reduction %.1fx below 10x", r.Dataset, r.Model, r.Workers, r.AllocReduction)
		}
	}
	if _, err := os.Stat(filepath.Join(cfg.OutDir, "kernel_sweep.csv")); err != nil {
		t.Fatalf("kernel_sweep.csv not written: %v", err)
	}
}

func TestCompareCIFlagsKernelRegressions(t *testing.T) {
	base := CIDigest{Config: ciConfigTag, Kernel: &CIKernel{
		Theta: 2000, Seeds: "[1 2]", SeedsMatch: true,
		FusedSamplingModeled: 1e6, MatSamplingModeled: 1e6,
		GenSets: 4096, GenAllocsFused: 0.01, GenAllocsMat: 4, AllocReduction: 400,
		WallSpeedup: 1.1,
	}}
	clone := func() CIDigest {
		d := base
		k := *base.Kernel
		d.Kernel = &k
		return d
	}
	if regs := CompareCI(base, clone(), 0.1); len(regs) != 0 {
		t.Fatalf("identical kernel legs flagged: %v", regs)
	}
	// θ or seed drift fails exactly.
	cur := clone()
	cur.Kernel.Theta = 2001
	if regs := CompareCI(base, cur, 0.1); len(regs) != 1 {
		t.Fatalf("kernel theta drift not flagged: %v", regs)
	}
	cur = clone()
	cur.Kernel.Seeds = "[1 3]"
	if regs := CompareCI(base, cur, 0.1); len(regs) != 1 {
		t.Fatalf("kernel seed drift not flagged: %v", regs)
	}
	// In-run kernel disagreement fails even with a matching baseline.
	cur = clone()
	cur.Kernel.SeedsMatch = false
	if regs := CompareCI(base, cur, 0.1); len(regs) != 1 {
		t.Fatalf("in-run kernel mismatch not flagged: %v", regs)
	}
	// Fused alloc rate is capped absolutely, not relative to baseline.
	cur = clone()
	cur.Kernel.GenAllocsFused = 0.2 // 20x baseline but under the cap
	if regs := CompareCI(base, cur, 0.1); len(regs) != 0 {
		t.Fatalf("sub-cap fused alloc jitter flagged: %v", regs)
	}
	cur.Kernel.GenAllocsFused = 0.3
	if regs := CompareCI(base, cur, 0.1); len(regs) != 1 {
		t.Fatalf("fused alloc cap breach not flagged: %v", regs)
	}
	// Losing the allocation win fails.
	cur = clone()
	cur.Kernel.AllocReduction = 5
	if regs := CompareCI(base, cur, 0.1); len(regs) != 1 {
		t.Fatalf("alloc reduction collapse not flagged: %v", regs)
	}
	// Wall speedup has only a loose sanity floor.
	cur = clone()
	cur.Kernel.WallSpeedup = 0.8
	if regs := CompareCI(base, cur, 0.1); len(regs) != 0 {
		t.Fatalf("hardware wall jitter flagged: %v", regs)
	}
	cur.Kernel.WallSpeedup = 0.4
	if regs := CompareCI(base, cur, 0.1); len(regs) != 1 {
		t.Fatalf("wall sanity floor breach not flagged: %v", regs)
	}
	// Missing leg fails.
	cur = clone()
	cur.Kernel = nil
	if regs := CompareCI(base, cur, 0.1); len(regs) != 1 {
		t.Fatalf("missing kernel leg not flagged: %v", regs)
	}
}
