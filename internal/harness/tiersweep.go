package harness

import (
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/imm"
	"repro/internal/serve"
)

// ---------------------------------------------------------------------
// Tier sweep — the two-tier (RAM + disk) pool LRU of the query service.
// ---------------------------------------------------------------------

// TierRow is one measurement of the tier sweep: a latency phase (cold
// build vs promote-from-disk vs hot RAM hit on the same pool) or a
// capacity phase (tenants answerable without regeneration at a fixed
// byte budget, with and without the disk tier).
type TierRow struct {
	Phase       string // cold, hot, promote, promote-at-capacity, ram-capacity, disk-capacity
	BudgetBytes int64
	Tenants     int
	// TenantsHeld counts tenants the server can still answer without
	// regenerating their pool: resident entries, plus demoted entries
	// the disk tier promotes back on touch.
	TenantsHeld int

	WallMS        float64
	Theta         int64
	Warm          bool
	GeneratedSets int64
	// SeedsMatch pins the tier contract: however the pool was served —
	// cold, hot, or promoted from an .impool snapshot — the answer is
	// byte-identical to a cold imm.Run.
	SeedsMatch bool
}

// TierSweep measures the two-tier pool LRU on an R-MAT graph at the
// given scale (log2 vertices; <= 0 means 14). The latency phases serve
// one pool three ways — built cold, hot from RAM, and promoted from a
// demoted .impool snapshot via mmap — and the capacity phases count how
// many tenants (distinct query seeds) a fixed byte budget can hold
// warm-answerable with and without a pool directory: RAM-only eviction
// drops pools to fit, the disk tier keeps every tenant serveable.
// Results land in tier_sweep.csv.
func TierSweep(cfg Config, scale int) ([]TierRow, error) {
	if scale <= 0 {
		scale = 14
	}
	g, err := gen.RMAT(gen.DefaultRMAT(scale, 8), graph.IC, cfg.Seed)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("rmat%d", scale)
	opt := serve.Options{Workers: runtime.NumCPU(), MaxTheta: cfg.MaxThetaIC}
	req := serve.QueryRequest{Graph: name, K: cfg.K, Epsilon: cfg.Epsilon, Seed: cfg.Seed}

	// Cold reference answer every tier of the same pool must reproduce.
	refOpt := opt.EngineOptions()
	refOpt.K = req.K
	refOpt.Epsilon = req.Epsilon
	refOpt.Seed = req.Seed
	ref, err := imm.Run(g, refOpt)
	if err != nil {
		return nil, err
	}

	poolDir, err := os.MkdirTemp("", "impool-sweep-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(poolDir)

	// Probe: one unbounded server measures a single pool's footprint so
	// the budget below can be sized to hold exactly two pools.
	probe := serve.NewServer(opt)
	if _, err := probe.AddGraph(name, g, cfg.Seed); err != nil {
		return nil, err
	}
	probeRes, err := probe.Query(req)
	if err != nil {
		return nil, err
	}
	onePool := probeRes.PoolBytes
	if onePool == 0 {
		return nil, fmt.Errorf("harness: tier probe pool has no resident bytes")
	}
	budget := 2*onePool + onePool/2

	tierOpt := opt
	tierOpt.PoolBudgetBytes = budget
	tierOpt.PoolDir = poolDir
	s := serve.NewServer(tierOpt)
	if _, err := s.AddGraph(name, g, cfg.Seed); err != nil {
		return nil, err
	}

	serveTimed := func(phase string, srv *serve.Server, q serve.QueryRequest, tenants, held int) (TierRow, error) {
		start := time.Now()
		res, err := srv.Query(q)
		if err != nil {
			return TierRow{}, fmt.Errorf("harness: tier %s: %w", phase, err)
		}
		match := q != req || (reflect.DeepEqual(res.Seeds, ref.Seeds) && res.Theta == ref.Theta)
		return TierRow{
			Phase:         phase,
			BudgetBytes:   budget,
			Tenants:       tenants,
			TenantsHeld:   held,
			WallMS:        float64(time.Since(start)) / float64(time.Millisecond),
			Theta:         res.Theta,
			Warm:          res.Warm,
			GeneratedSets: res.GeneratedSets,
			SeedsMatch:    match,
		}, nil
	}

	var rows []TierRow
	cold, err := serveTimed("cold", s, req, 1, 1)
	if err != nil {
		return nil, err
	}
	rows = append(rows, cold)
	hot, err := serveTimed("hot", s, req, 1, 1)
	if err != nil {
		return nil, err
	}
	if !hot.Warm || hot.GeneratedSets != 0 {
		return nil, fmt.Errorf("harness: tier hot row not served from RAM: %+v", hot)
	}
	rows = append(rows, hot)

	// Two more tenants overflow the two-pool budget and demote the first
	// pool; its comeback is the promote measurement.
	for off := uint64(1); off <= 2; off++ {
		q := req
		q.Seed = cfg.Seed + off
		if _, err := s.Query(q); err != nil {
			return nil, err
		}
	}
	if st := s.Stats(); st.Demotions == 0 {
		return nil, fmt.Errorf("harness: tier pressure demoted nothing (%+v)", st)
	}
	promote, err := serveTimed("promote", s, req, 3, 3)
	if err != nil {
		return nil, err
	}
	if !promote.Warm || promote.GeneratedSets != 0 || !promote.SeedsMatch {
		return nil, fmt.Errorf("harness: tier promote row regenerated or diverged: %+v", promote)
	}
	rows = append(rows, promote)

	// Capacity at a fixed budget: the same tenant parade against a
	// RAM-only server (evicted tenants must regenerate — they are lost)
	// and a tiered one (demoted tenants stay answerable from disk).
	const tenants = 20
	ramOpt := opt
	ramOpt.PoolBudgetBytes = budget
	for _, leg := range []struct {
		phase string
		opt   serve.Options
	}{
		{"ram-capacity", ramOpt},
		{"disk-capacity", tierOpt},
	} {
		srv := serve.NewServer(leg.opt)
		if _, err := srv.AddGraph(name, g, cfg.Seed); err != nil {
			return nil, err
		}
		start := time.Now()
		for off := uint64(0); off < tenants; off++ {
			q := req
			q.Seed = cfg.Seed + off
			if _, err := srv.Query(q); err != nil {
				return nil, err
			}
		}
		wallMS := float64(time.Since(start)) / float64(time.Millisecond)
		st := srv.Stats()
		rows = append(rows, TierRow{
			Phase:       leg.phase,
			BudgetBytes: budget,
			Tenants:     tenants,
			TenantsHeld: st.Pools,
			WallMS:      wallMS,
			SeedsMatch:  true,
		})
		if leg.phase == "disk-capacity" {
			if st.Pools != tenants {
				return nil, fmt.Errorf("harness: disk tier lost tenants: held %d of %d (%+v)", st.Pools, tenants, st)
			}
			// Prove a held tenant really answers warm: the oldest pool
			// has been on disk the longest.
			back, err := serveTimed("promote-at-capacity", srv, req, tenants, tenants)
			if err != nil {
				return nil, err
			}
			if !back.Warm || back.GeneratedSets != 0 || !back.SeedsMatch {
				return nil, fmt.Errorf("harness: tenant promoted at capacity regenerated or diverged: %+v", back)
			}
			rows = append(rows, back)
		}
	}

	csv := [][]string{{"phase", "budget_bytes", "tenants", "tenants_held", "wall_ms", "theta", "warm", "generated_sets", "seeds_match"}}
	for _, r := range rows {
		csv = append(csv, []string{
			r.Phase, i64(r.BudgetBytes), itoa(r.Tenants), itoa(r.TenantsHeld),
			f2(r.WallMS), i64(r.Theta), fmt.Sprintf("%v", r.Warm),
			i64(r.GeneratedSets), fmt.Sprintf("%v", r.SeedsMatch),
		})
	}
	return rows, cfg.writeCSV("tier_sweep.csv", csv)
}
