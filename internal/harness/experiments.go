package harness

import (
	"fmt"

	"repro/internal/counter"
	"repro/internal/diffusion"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/imm"
	"repro/internal/numa"
	"repro/internal/rrr"
)

// ---------------------------------------------------------------------
// Table I — input graph and RRRset characteristics.
// ---------------------------------------------------------------------

// Table1Row mirrors one row of Table I, with the paper's values attached
// for the side-by-side in EXPERIMENTS.md.
type Table1Row struct {
	Dataset     string
	Nodes       int32
	Edges       int64
	AvgCoverage float64
	MaxCoverage float64
	SCCFraction float64

	PaperNodes       int64
	PaperEdges       int64
	PaperAvgCoverage float64
	PaperMaxCoverage float64
}

// Table1 measures RRR coverage under IC with ε=0.5 weights, as in the
// paper's Table I.
func Table1(cfg Config) ([]Table1Row, error) {
	var rows []Table1Row
	for _, p := range cfg.profiles() {
		g, err := p.Generate(graph.IC, cfg.Seed)
		if err != nil {
			return nil, err
		}
		st := diffusion.MeasureCoverage(g, cfg.CoverageSamples, 2, cfg.Seed)
		rows = append(rows, Table1Row{
			Dataset:          p.Name,
			Nodes:            g.N,
			Edges:            g.M,
			AvgCoverage:      st.AvgCoverage,
			MaxCoverage:      st.MaxCoverage,
			SCCFraction:      g.LargestSCCFraction(),
			PaperNodes:       p.PaperNodes,
			PaperEdges:       p.PaperEdges,
			PaperAvgCoverage: p.PaperAvgCoverage,
			PaperMaxCoverage: p.PaperMaxCoverage,
		})
	}
	csv := [][]string{{"dataset", "nodes", "edges", "avg_coverage", "max_coverage", "scc_fraction", "paper_avg_coverage", "paper_max_coverage"}}
	for _, r := range rows {
		csv = append(csv, []string{r.Dataset, itoa(int(r.Nodes)), i64(r.Edges), pct(r.AvgCoverage), pct(r.MaxCoverage), pct(r.SCCFraction), pct(r.PaperAvgCoverage), pct(r.PaperMaxCoverage)})
	}
	return rows, cfg.writeCSV("table1_coverage.csv", csv)
}

// ---------------------------------------------------------------------
// Figures 1, 6, 7 — strong scaling.
// ---------------------------------------------------------------------

// ScalingPoint is one point of a strong-scaling curve.
type ScalingPoint struct {
	Dataset string
	Engine  string
	Model   string
	Workers int
	WallMS  float64
	Modeled float64
	// SpeedupVs1 and SpeedupVs8 normalize modeled runtime to the
	// Ripples 1-thread and 8-thread baselines, as in Figures 6 and 7.
	SpeedupVs1 float64
	SpeedupVs8 float64
}

// ScalingSweep runs both engines across the worker sweep for every
// selected dataset under the given model, producing the data behind
// Figures 1 (ripples-only view), 6 (LT) and 7 (IC).
func ScalingSweep(cfg Config, model graph.Model) ([]ScalingPoint, error) {
	var points []ScalingPoint
	for _, p := range cfg.profiles() {
		g, err := p.Generate(model, cfg.Seed)
		if err != nil {
			return nil, err
		}
		recs := map[string]map[int]RunRecord{"ripples": {}, "efficientimm": {}}
		for _, engine := range []imm.EngineKind{imm.Ripples, imm.Efficient} {
			for _, w := range cfg.Workers {
				rec, err := runOne(g, p.Name, cfg.options(engine, model, w))
				if err != nil {
					return nil, err
				}
				recs[rec.Engine][w] = rec
				if err := cfg.writeJSONLog(rec); err != nil {
					return nil, err
				}
			}
		}
		base1 := recs["ripples"][cfg.Workers[0]].Modeled
		base8 := base1
		if r, ok := recs["ripples"][8]; ok {
			base8 = r.Modeled
		}
		for _, engine := range []string{"ripples", "efficientimm"} {
			for _, w := range cfg.Workers {
				rec := recs[engine][w]
				points = append(points, ScalingPoint{
					Dataset: p.Name, Engine: engine, Model: model.String(), Workers: w,
					WallMS: rec.WallMS, Modeled: rec.Modeled,
					SpeedupVs1: safeDiv(base1, rec.Modeled),
					SpeedupVs8: safeDiv(base8, rec.Modeled),
				})
			}
		}
	}
	name := fmt.Sprintf("fig_scaling_%s.csv", lower(model.String()))
	csv := [][]string{{"dataset", "engine", "model", "workers", "wall_ms", "modeled", "speedup_vs_ripples1", "speedup_vs_ripples8"}}
	for _, pt := range points {
		csv = append(csv, []string{pt.Dataset, pt.Engine, pt.Model, itoa(pt.Workers), f2(pt.WallMS), f2(pt.Modeled), f2(pt.SpeedupVs1), f2(pt.SpeedupVs8)})
	}
	return points, cfg.writeCSV(name, csv)
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// ---------------------------------------------------------------------
// Figure 2 — Ripples runtime breakdown.
// ---------------------------------------------------------------------

// BreakdownPoint is one stacked bar of Figure 2.
type BreakdownPoint struct {
	Model        string
	Workers      int
	SamplingPct  float64 // Generate_RRRsets share of modeled time
	SelectionPct float64 // Find_Most_Influential_Set share
}

// Fig2Breakdown reproduces the Ripples runtime breakdown on the
// web-Google clone for both models.
func Fig2Breakdown(cfg Config) ([]BreakdownPoint, error) {
	prof, err := gen.ProfileByName("web-Google")
	if err != nil {
		return nil, err
	}
	if cfg.MaxScale > 0 && prof.Scale > cfg.MaxScale {
		prof.Scale = cfg.MaxScale
	}
	var points []BreakdownPoint
	for _, model := range []graph.Model{graph.IC, graph.LT} {
		g, err := prof.Generate(model, cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, w := range cfg.Workers {
			rec, err := runOne(g, prof.Name, cfg.options(imm.Ripples, model, w))
			if err != nil {
				return nil, err
			}
			total := rec.SamplingModeled + rec.SelectionModeled
			points = append(points, BreakdownPoint{
				Model: model.String(), Workers: w,
				SamplingPct:  100 * safeDiv(rec.SamplingModeled, total),
				SelectionPct: 100 * safeDiv(rec.SelectionModeled, total),
			})
		}
	}
	csv := [][]string{{"model", "workers", "generate_rrrsets_pct", "find_most_influential_pct"}}
	for _, pt := range points {
		csv = append(csv, []string{pt.Model, itoa(pt.Workers), f1(pt.SamplingPct), f1(pt.SelectionPct)})
	}
	return points, cfg.writeCSV("fig2_breakdown.csv", csv)
}

// ---------------------------------------------------------------------
// Table II — NUMA-aware data structure placement.
// ---------------------------------------------------------------------

// Table2Row compares bitmap-check time share under the two placements.
type Table2Row struct {
	Dataset        string
	OriginalPct    float64
	AwarePct       float64
	ImprovementPct float64 // (orig-aware)/orig, the paper's "Percentage Improvement"

	PaperOriginalPct    float64
	PaperAwarePct       float64
	PaperImprovementPct float64
}

// table2Paper holds the published Table II values for the report.
var table2Paper = map[string][3]float64{
	"com-Amazon":  {38.2, 23.8, 38},
	"com-YouTube": {38.6, 23.9, 38},
	"soc-Pokec":   {44.9, 16.6, 63},
	"com-LJ":      {46.3, 18.5, 60},
	"web-Google":  {29.0, 13.6, 53},
}

// Table2 runs the instrumented generation kernel under both placements
// on the paper's five datasets.
func Table2(cfg Config) ([]Table2Row, error) {
	topo := numa.PerlmutterLike()
	var rows []Table2Row
	for _, p := range cfg.profiles() {
		paper, ok := table2Paper[p.Name]
		if !ok {
			continue
		}
		g, err := p.Generate(graph.IC, cfg.Seed)
		if err != nil {
			return nil, err
		}
		workers := cfg.Workers[len(cfg.Workers)-1]
		orig, err := imm.MeasureNUMAGeneration(g, topo, imm.PlacementOriginal, cfg.NUMASamples, workers, cfg.Seed)
		if err != nil {
			return nil, err
		}
		aware, err := imm.MeasureNUMAGeneration(g, topo, imm.PlacementAware, cfg.NUMASamples, workers, cfg.Seed)
		if err != nil {
			return nil, err
		}
		op, ap := orig.BitmapSharePercent(), aware.BitmapSharePercent()
		rows = append(rows, Table2Row{
			Dataset:             p.Name,
			OriginalPct:         op,
			AwarePct:            ap,
			ImprovementPct:      100 * (op - ap) / op,
			PaperOriginalPct:    paper[0],
			PaperAwarePct:       paper[1],
			PaperImprovementPct: paper[2],
		})
	}
	csv := [][]string{{"dataset", "original_bitmap_pct", "numa_aware_bitmap_pct", "improvement_pct", "paper_original", "paper_aware", "paper_improvement"}}
	for _, r := range rows {
		csv = append(csv, []string{r.Dataset, f1(r.OriginalPct), f1(r.AwarePct), f1(r.ImprovementPct), f1(r.PaperOriginalPct), f1(r.PaperAwarePct), f1(r.PaperImprovementPct)})
	}
	return rows, cfg.writeCSV("table2_numa.csv", csv)
}

// ---------------------------------------------------------------------
// Figure 5 — adaptive counter update ablation.
// ---------------------------------------------------------------------

// Fig5Row compares selection cost with and without the adaptive update.
type Fig5Row struct {
	Dataset         string
	Model           string
	DecrementOnly   float64 // modeled selection cost
	Adaptive        float64
	RelativeSpeedup float64
}

// Fig5AdaptiveUpdate measures the adaptive-counter-update win at the
// maximum worker count on skew-heavy datasets.
func Fig5AdaptiveUpdate(cfg Config, datasets []string) ([]Fig5Row, error) {
	if datasets == nil {
		datasets = []string{"com-Amazon", "com-YouTube", "com-LJ", "soc-Pokec"}
	}
	workers := cfg.Workers[len(cfg.Workers)-1]
	var rows []Fig5Row
	for _, name := range datasets {
		p, err := gen.ProfileByName(name)
		if err != nil {
			return nil, err
		}
		if cfg.MaxScale > 0 && p.Scale > cfg.MaxScale {
			p.Scale = cfg.MaxScale
		}
		g, err := p.Generate(graph.IC, cfg.Seed)
		if err != nil {
			return nil, err
		}
		// The adaptive counter update is a property of the eager scan
		// kernel (CELF retires coverage through postings and never runs a
		// decrement/rebuild pass), so the ablation pins Selection to it.
		optDec := cfg.options(imm.Efficient, graph.IC, workers)
		optDec.Update = counter.Decrement
		optDec.Selection = imm.SelectScan
		recDec, err := runOne(g, p.Name, optDec)
		if err != nil {
			return nil, err
		}
		optAd := cfg.options(imm.Efficient, graph.IC, workers)
		optAd.Update = counter.AdaptiveUpdate
		optAd.Selection = imm.SelectScan
		recAd, err := runOne(g, p.Name, optAd)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig5Row{
			Dataset: p.Name, Model: "IC",
			DecrementOnly:   recDec.SelectionModeled,
			Adaptive:        recAd.SelectionModeled,
			RelativeSpeedup: safeDiv(recDec.SelectionModeled, recAd.SelectionModeled),
		})
	}
	csv := [][]string{{"dataset", "model", "decrement_selection_modeled", "adaptive_selection_modeled", "relative_speedup"}}
	for _, r := range rows {
		csv = append(csv, []string{r.Dataset, r.Model, f2(r.DecrementOnly), f2(r.Adaptive), f2(r.RelativeSpeedup)})
	}
	return rows, cfg.writeCSV("fig5_adaptive_update.csv", csv)
}

// ---------------------------------------------------------------------
// Table III — best runtime and the Twitter7 OOM analysis.
// ---------------------------------------------------------------------

// Table3Row is one dataset/model row: best runtime of each engine over
// the worker sweep plus the speedup.
type Table3Row struct {
	Dataset            string
	Model              string
	RipplesBest        float64 // modeled
	RipplesBestWorkers int
	EfficientBest      float64
	EffBestWorkers     int
	Speedup            float64
	// Paper-scale memory footprints (bytes) for the OOM analysis.
	RipplesFootprint   int64
	EfficientFootprint int64
	RipplesOOM         bool
}

// paperMemoryBudget is the evaluation machine's 512 GB.
const paperMemoryBudget = int64(512) << 30

// Table3 derives best-runtime rows from fresh scaling sweeps and adds
// the analytic paper-scale footprint comparison that explains the
// Twitter7 OOM row.
func Table3(cfg Config) ([]Table3Row, error) {
	var rows []Table3Row
	for _, model := range []graph.Model{graph.IC, graph.LT} {
		points, err := ScalingSweep(cfg, model)
		if err != nil {
			return nil, err
		}
		best := map[string]*Table3Row{}
		order := []string{}
		for _, pt := range points {
			r, ok := best[pt.Dataset]
			if !ok {
				r = &Table3Row{Dataset: pt.Dataset, Model: model.String()}
				best[pt.Dataset] = r
				order = append(order, pt.Dataset)
			}
			switch pt.Engine {
			case "ripples":
				if r.RipplesBest == 0 || pt.Modeled < r.RipplesBest {
					r.RipplesBest = pt.Modeled
					r.RipplesBestWorkers = pt.Workers
				}
			default:
				if r.EfficientBest == 0 || pt.Modeled < r.EfficientBest {
					r.EfficientBest = pt.Modeled
					r.EffBestWorkers = pt.Workers
				}
			}
		}
		for _, name := range order {
			r := best[name]
			r.Speedup = safeDiv(r.RipplesBest, r.EfficientBest)
			p, err := gen.ProfileByName(name)
			if err != nil {
				return nil, err
			}
			// Paper-scale footprint: θ dense sets at the paper's coverage.
			meanSize := p.PaperAvgCoverage * float64(p.PaperNodes)
			thetaIC := int64(10000) // IC θ magnitude from §III.A
			r.RipplesFootprint = rrr.ListOnlyPolicy().FootprintBytes(int32(min64(p.PaperNodes, 1<<31-1)), thetaIC, meanSize)
			r.EfficientFootprint = rrr.DefaultPolicy().FootprintBytes(int32(min64(p.PaperNodes, 1<<31-1)), thetaIC, meanSize)
			r.RipplesOOM = model == graph.IC && r.RipplesFootprint > paperMemoryBudget
			rows = append(rows, *r)
		}
	}
	csv := [][]string{{"dataset", "model", "ripples_best_modeled", "ripples_best_workers", "efficientimm_best_modeled", "efficientimm_best_workers", "speedup", "ripples_paper_footprint_gb", "efficientimm_paper_footprint_gb", "ripples_oom"}}
	for _, r := range rows {
		csv = append(csv, []string{
			r.Dataset, r.Model, f2(r.RipplesBest), itoa(r.RipplesBestWorkers),
			f2(r.EfficientBest), itoa(r.EffBestWorkers), f2(r.Speedup),
			f2(float64(r.RipplesFootprint) / float64(1<<30)), f2(float64(r.EfficientFootprint) / float64(1<<30)),
			fmt.Sprintf("%v", r.RipplesOOM),
		})
	}
	return rows, cfg.writeCSV("table3_best_runtime.csv", csv)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------
// Distributed extension — communication volume versus rank count.
// ---------------------------------------------------------------------

// DistPoint is one point of the distributed rank sweep: how much
// communication the MPI-style extension costs at a given rank count,
// with the determinism check (seeds identical to the shared-memory run)
// folded into the measurement. The Bytes*/Messages figures are the
// modeled account; Measured* are actual bytes-on-the-wire from running
// the same rank count against real loopback TCP workers (zero at
// ranks=1, where no wire exists).
type DistPoint struct {
	Dataset       string
	Ranks         int
	BytesSent     int64
	Messages      int64
	SetGatherB    int64
	CounterRedB   int64
	ThetaExchB    int64
	SeedBcastB    int64
	MeasuredSent  int64
	MeasuredRecv  int64
	MeasuredMsgs  int64
	Failovers     int64
	Theta         int64
	SamplingMod   float64
	SeedsMatch    bool // distributed seeds == shared-memory seeds
	BytesPerTheta float64
}

// DistSweep runs the distributed engine across rank counts on every
// selected dataset, verifying bit-identical seeds against the
// shared-memory run and recording the communication volume — the
// comm-volume/scaling trajectory of the paper's future-work MPI
// extension. Rank counts above 1 run networked: the sweep boots
// ranks-1 in-process wire workers on loopback TCP, so the modeled
// column can be checked against measured bytes actually moved.
func DistSweep(cfg Config, rankCounts []int) ([]DistPoint, error) {
	if rankCounts == nil {
		rankCounts = []int{1, 2, 4, 8}
	}
	var points []DistPoint
	for _, p := range cfg.profiles() {
		g, err := p.Generate(graph.IC, cfg.Seed)
		if err != nil {
			return nil, err
		}
		opt := cfg.options(imm.Efficient, graph.IC, 2)
		shared, err := imm.Run(g, opt)
		if err != nil {
			return nil, fmt.Errorf("harness: %s shared baseline: %w", p.Name, err)
		}
		for _, ranks := range rankCounts {
			dopt := dist.Options{Options: opt, Ranks: ranks}
			res, err := distRunWired(g, dopt)
			if err != nil {
				return nil, fmt.Errorf("harness: %s ranks=%d: %w", p.Name, ranks, err)
			}
			match := len(res.Seeds) == len(shared.Seeds)
			for i := range shared.Seeds {
				if !match || res.Seeds[i] != shared.Seeds[i] {
					match = false
					break
				}
			}
			points = append(points, DistPoint{
				Dataset:       p.Name,
				Ranks:         ranks,
				BytesSent:     res.Comm.BytesSent,
				Messages:      res.Comm.Messages,
				SetGatherB:    res.Comm.SetGather.BytesSent,
				CounterRedB:   res.Comm.CounterReduce.BytesSent,
				ThetaExchB:    res.Comm.ThetaExchange.BytesSent,
				SeedBcastB:    res.Comm.SeedBroadcast.BytesSent,
				MeasuredSent:  res.Comm.MeasuredBytesSent,
				MeasuredRecv:  res.Comm.MeasuredBytesReceived,
				MeasuredMsgs:  res.Comm.MeasuredMessages,
				Failovers:     res.Comm.Failovers,
				Theta:         res.Theta,
				SamplingMod:   res.Breakdown.SamplingModeled,
				SeedsMatch:    match,
				BytesPerTheta: safeDiv(float64(res.Comm.BytesSent), float64(res.Theta)),
			})
		}
	}
	csv := [][]string{{"dataset", "ranks", "bytes_sent", "messages", "set_gather_bytes", "counter_reduce_bytes", "theta_exchange_bytes", "seed_bcast_bytes", "measured_bytes_sent", "measured_bytes_received", "measured_messages", "failovers", "theta", "sampling_modeled", "seeds_match", "bytes_per_theta"}}
	for _, pt := range points {
		csv = append(csv, []string{
			pt.Dataset, itoa(pt.Ranks), i64(pt.BytesSent), i64(pt.Messages),
			i64(pt.SetGatherB), i64(pt.CounterRedB), i64(pt.ThetaExchB), i64(pt.SeedBcastB),
			i64(pt.MeasuredSent), i64(pt.MeasuredRecv), i64(pt.MeasuredMsgs), i64(pt.Failovers),
			i64(pt.Theta), f2(pt.SamplingMod), fmt.Sprintf("%v", pt.SeedsMatch), f2(pt.BytesPerTheta),
		})
	}
	return points, cfg.writeCSV("dist_comm_sweep.csv", csv)
}

// distRunWired executes one distributed run; rank counts above 1 go
// over real loopback TCP (ranks-1 in-process workers, torn down after
// the run) so the result carries measured bytes-on-the-wire next to the
// modeled account. Seeds are byte-identical either way.
func distRunWired(g *graph.Graph, dopt dist.Options) (*dist.Result, error) {
	if dopt.Ranks <= 1 {
		return dist.Run(g, dopt)
	}
	copt := dist.DefaultClusterOptions()
	peers := []string{"harness-root.invalid:0"}
	workers := make([]*dist.RankServer, 0, dopt.Ranks-1)
	defer func() {
		for _, rs := range workers {
			rs.Close()
		}
	}()
	for i := 1; i < dopt.Ranks; i++ {
		rs, err := dist.ListenRank("127.0.0.1:0", copt)
		if err != nil {
			return nil, err
		}
		workers = append(workers, rs)
		peers = append(peers, rs.Addr())
		go rs.Serve()
	}
	cl, err := dist.Connect(dist.ClusterConfig{Rank: 0, Peers: peers}, copt)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	return dist.RunCluster(g, dopt, cl)
}

// ---------------------------------------------------------------------
// Table IV — cache misses of Find_Most_Influential_Set.
// ---------------------------------------------------------------------

// Table4Row compares simulated L1+L2 misses between engines.
type Table4Row struct {
	Dataset         string
	RipplesMisses   int64
	EfficientMisses int64
	Reduction       float64

	PaperRipples   int64
	PaperEfficient int64
	PaperReduction float64
}

var table4Paper = map[string][3]float64{
	"com-Amazon":  {283963507, 10947324, 25.94},
	"web-Google":  {406351077, 18139797, 22.40},
	"soc-Pokec":   {48114540, 516602, 93.14},
	"com-YouTube": {135802513, 379979, 357.39},
	"com-LJ":      {69299959, 687345, 100.82},
}

// Table4 traces both selection kernels through the cache simulator on
// the paper's five datasets.
func Table4(cfg Config) ([]Table4Row, error) {
	var rows []Table4Row
	for _, p := range cfg.profiles() {
		paper, ok := table4Paper[p.Name]
		if !ok {
			continue
		}
		g, err := p.Generate(graph.IC, cfg.Seed)
		if err != nil {
			return nil, err
		}
		rip := imm.TraceSelection(g, imm.Ripples, cfg.K, cfg.TraceSets, cfg.TraceWorkers, cfg.Seed)
		eff := imm.TraceSelection(g, imm.Efficient, cfg.K, cfg.TraceSets, cfg.TraceWorkers, cfg.Seed)
		rm, em := rip.Stats.CombinedMisses(), eff.Stats.CombinedMisses()
		rows = append(rows, Table4Row{
			Dataset:         p.Name,
			RipplesMisses:   rm,
			EfficientMisses: em,
			Reduction:       safeDiv(float64(rm), float64(em)),
			PaperRipples:    int64(paper[0]),
			PaperEfficient:  int64(paper[1]),
			PaperReduction:  paper[2],
		})
	}
	csv := [][]string{{"dataset", "ripples_misses", "efficientimm_misses", "reduction_x", "paper_ripples", "paper_efficientimm", "paper_reduction_x"}}
	for _, r := range rows {
		csv = append(csv, []string{r.Dataset, i64(r.RipplesMisses), i64(r.EfficientMisses), f2(r.Reduction), i64(r.PaperRipples), i64(r.PaperEfficient), f2(r.PaperReduction)})
	}
	return rows, cfg.writeCSV("table4_cache_misses.csv", csv)
}

// ---------------------------------------------------------------------
// Ablations — each §IV design choice toggled independently.
// ---------------------------------------------------------------------

// AblationRow reports the modeled cost with one optimization disabled.
type AblationRow struct {
	Variant string
	Modeled float64
	Penalty float64 // Modeled / full-optimized Modeled
}

// Ablations measures the contribution of each optimization on the
// web-Google clone under IC at the top worker count.
func Ablations(cfg Config) ([]AblationRow, error) {
	prof, err := gen.ProfileByName("web-Google")
	if err != nil {
		return nil, err
	}
	if cfg.MaxScale > 0 && prof.Scale > cfg.MaxScale {
		prof.Scale = cfg.MaxScale
	}
	g, err := prof.Generate(graph.IC, cfg.Seed)
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers[len(cfg.Workers)-1]
	full := cfg.options(imm.Efficient, graph.IC, workers)
	variants := []struct {
		name   string
		mutate func(*imm.Options)
	}{
		{"full", func(*imm.Options) {}},
		{"no-fusion", func(o *imm.Options) { o.Fusion = false }},
		{"no-adaptive-rep", func(o *imm.Options) { o.AdaptiveRep = false }},
		{"compressed-pool", func(o *imm.Options) { o.Pool = imm.PoolCompressed }},
		{"scan-selection", func(o *imm.Options) { o.Selection = imm.SelectScan }},
		{"scan-decrement", func(o *imm.Options) { o.Selection = imm.SelectScan; o.Update = counter.Decrement }},
		{"scan-rebuild", func(o *imm.Options) { o.Selection = imm.SelectScan; o.Update = counter.Rebuild }},
		{"static-schedule", func(o *imm.Options) { o.DynamicBalance = false }},
		{"materialized-kernel", func(o *imm.Options) { o.Kernel = imm.KernelMaterialized }},
		{"ripples-baseline", func(o *imm.Options) { o.Engine = imm.Ripples }},
	}
	var rows []AblationRow
	var fullModeled float64
	for _, v := range variants {
		opt := full
		v.mutate(&opt)
		rec, err := runOne(g, prof.Name, opt)
		if err != nil {
			return nil, err
		}
		if v.name == "full" {
			fullModeled = rec.Modeled
		}
		rows = append(rows, AblationRow{Variant: v.name, Modeled: rec.Modeled, Penalty: safeDiv(rec.Modeled, fullModeled)})
	}
	csv := [][]string{{"variant", "modeled", "penalty_vs_full"}}
	for _, r := range rows {
		csv = append(csv, []string{r.Variant, f2(r.Modeled), f2(r.Penalty)})
	}
	return rows, cfg.writeCSV("ablations.csv", csv)
}
