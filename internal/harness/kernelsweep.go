package harness

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/counter"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/imm"
	"repro/internal/rrr"
)

// ---------------------------------------------------------------------
// Kernel sweep — the fused streaming generation kernel against the
// materialized reference.
// ---------------------------------------------------------------------

// KernelRow compares the two generation kernels on one (dataset, model,
// workers) cell. The full-run columns come from complete imm.Run calls
// (so they include selection, which is kernel-independent); the GenAllocs
// columns isolate the generation path itself — allocations of producing
// θ sets through GenerateSlots versus GenerateSlotsFused — which is
// where the arena/visitor refactor removes the per-set copies.
type KernelRow struct {
	Dataset string
	Model   string
	Workers int
	Theta   int64

	FusedWallMS float64
	MatWallMS   float64
	WallSpeedup float64 // materialized wall / fused wall

	FusedAllocs uint64 // full-run heap allocations
	MatAllocs   uint64

	GenSets        int64 // generation-path measurement size
	GenAllocsFused float64
	GenAllocsMat   float64 // per-set allocations of each generation path
	AllocReduction float64 // materialized / fused, generation path

	SeedsMatch bool // fused and materialized runs selected identical seeds
}

// mallocsAround reports the heap allocations f performs.
func mallocsAround(f func()) uint64 {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	f()
	runtime.ReadMemStats(&m1)
	return m1.Mallocs - m0.Mallocs
}

// generationAllocs measures the per-set allocation rate of both
// generation paths over sets slots, away from any selection or
// θ-estimation noise. The measurement pins the list representation
// (AdaptiveRep off): bitmap-represented sets heap-allocate their words
// identically under both kernels, so an adaptive mix would dilute the
// comparison with a representation cost the kernels share — the arena
// refactor's win is precisely the list path's per-set copy and header.
func generationAllocs(g *graph.Graph, opt imm.Options, sets int64) (fusedPerSet, matPerSet float64) {
	opt.AdaptiveRep = false
	policy := imm.PolicyFromOptions(opt)
	out := make([]rrr.Set, sets)
	arena := rrr.NewArena()
	cnt := counter.New(g.N)
	fused := mallocsAround(func() {
		imm.GenerateSlotsFused(g, policy, opt.Seed, 0, out, arena, cnt)
	})
	clear(out)
	mat := mallocsAround(func() {
		imm.GenerateSlots(g, policy, opt.Seed, 0, out)
		for _, s := range out {
			s.ForEach(func(v int32) { cnt.Inc(v) })
		}
	})
	return float64(fused) / float64(sets), float64(mat) / float64(sets)
}

// KernelSweep runs both kernels across the given datasets (default: the
// two canonical clones), both models, at 1 and the configured top worker
// count, recording wall-clock, allocation behavior, and the byte-
// identity of the selected seeds. Results land in kernel_sweep.csv.
func KernelSweep(cfg Config, datasets []string) ([]KernelRow, error) {
	if datasets == nil {
		datasets = []string{"web-Google", "com-Amazon"}
	}
	workerGrid := []int{1, cfg.Workers[len(cfg.Workers)-1]}
	if workerGrid[1] == 1 {
		workerGrid = workerGrid[:1]
	}
	const genSets = 4096
	var rows []KernelRow
	for _, name := range datasets {
		p, err := gen.ProfileByName(name)
		if err != nil {
			return nil, err
		}
		if cfg.MaxScale > 0 && p.Scale > cfg.MaxScale {
			p.Scale = cfg.MaxScale
		}
		for _, model := range []graph.Model{graph.IC, graph.LT} {
			g, err := p.Generate(model, cfg.Seed)
			if err != nil {
				return nil, err
			}
			for _, workers := range workerGrid {
				opt := cfg.options(imm.Efficient, model, workers)

				opt.Kernel = imm.KernelFused
				var fusedRes *imm.Result
				fusedAllocs := mallocsAround(func() {
					fusedRes, err = imm.Run(g, opt)
				})
				if err != nil {
					return nil, fmt.Errorf("harness: kernel sweep %s/%v/w=%d: %w", name, model, workers, err)
				}

				opt.Kernel = imm.KernelMaterialized
				var matRes *imm.Result
				matAllocs := mallocsAround(func() {
					matRes, err = imm.Run(g, opt)
				})
				if err != nil {
					return nil, err
				}

				genFused, genMat := generationAllocs(g, opt, genSets)
				fw := float64(fusedRes.Breakdown.TotalWall) / float64(time.Millisecond)
				mw := float64(matRes.Breakdown.TotalWall) / float64(time.Millisecond)
				rows = append(rows, KernelRow{
					Dataset: name, Model: model.String(), Workers: workers,
					Theta:          fusedRes.Theta,
					FusedWallMS:    fw,
					MatWallMS:      mw,
					WallSpeedup:    safeDiv(mw, fw),
					FusedAllocs:    fusedAllocs,
					MatAllocs:      matAllocs,
					GenSets:        genSets,
					GenAllocsFused: genFused,
					GenAllocsMat:   genMat,
					AllocReduction: safeDiv(genMat, genFused),
					SeedsMatch:     fusedRes.Theta == matRes.Theta && sameSeeds(fusedRes.Seeds, matRes.Seeds),
				})
			}
		}
	}
	csv := [][]string{{"dataset", "model", "workers", "theta",
		"fused_wall_ms", "materialized_wall_ms", "wall_speedup",
		"fused_run_allocs", "materialized_run_allocs",
		"gen_sets", "gen_allocs_per_set_fused", "gen_allocs_per_set_materialized", "gen_alloc_reduction",
		"seeds_match"}}
	for _, r := range rows {
		csv = append(csv, []string{
			r.Dataset, r.Model, fmt.Sprint(r.Workers), i64(r.Theta),
			f2(r.FusedWallMS), f2(r.MatWallMS), f2(r.WallSpeedup),
			fmt.Sprint(r.FusedAllocs), fmt.Sprint(r.MatAllocs),
			i64(r.GenSets), f2(r.GenAllocsFused), f2(r.GenAllocsMat), f2(r.AllocReduction),
			fmt.Sprintf("%v", r.SeedsMatch),
		})
	}
	return rows, cfg.writeCSV("kernel_sweep.csv", csv)
}
