package harness

import (
	"os"
	"path/filepath"
	"testing"
)

func TestChurnSweep(t *testing.T) {
	cfg := quick(t, true)
	rows, err := ChurnSweep(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(churnRates) {
		t.Fatalf("got %d rows, want %d", len(rows), len(churnRates))
	}
	for i, r := range rows {
		if !r.SeedsMatch {
			t.Fatalf("row %d (rate %g): repaired answer diverged from cold", i, r.UpdateRate)
		}
		if r.SetsResampled == 0 && r.FullResamples == 0 {
			t.Fatalf("row %d (rate %g): delta repaired nothing: %+v", i, r.UpdateRate, r)
		}
		if i > 0 && r.UpdateRate <= rows[i-1].UpdateRate {
			t.Fatalf("rates not increasing at row %d", i)
		}
	}
	// The resample count must grow with the update rate across the
	// ladder (individual adjacent rows may tie on a tiny graph).
	if first, last := rows[0], rows[len(rows)-1]; last.SetsResampled <= first.SetsResampled {
		t.Fatalf("resamples did not grow with churn: %d (rate %g) vs %d (rate %g)",
			first.SetsResampled, first.UpdateRate, last.SetsResampled, last.UpdateRate)
	}
	data, err := os.ReadFile(filepath.Join(cfg.OutDir, "churn_sweep.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("churn_sweep.csv is empty")
	}
}
