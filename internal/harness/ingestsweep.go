package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ingest"
)

// ---------------------------------------------------------------------
// Ingest sweep — parallel ingestion throughput and snapshot reload.
// ---------------------------------------------------------------------

// IngestRow is one worker count of the ingest sweep, plus the snapshot
// columns (constant across rows: one snapshot per sweep).
type IngestRow struct {
	Workers    int
	Nodes      int32
	Edges      int64 // final M after dedupe
	InputBytes int64

	WallMS      float64
	MBPerSec    float64
	EdgesPerSec float64
	SpeedupVs1  float64
	// Identical pins the tentpole guarantee: the graph (CSR arrays and
	// weights) is byte-identical to the sequential reference loader.
	Identical bool

	SnapshotBytes     int64
	SnapshotLoadMS    float64
	SnapshotIdentical bool
}

// IngestSweep generates an R-MAT edge list at the given scale (log2
// vertices; <= 0 means 17, ~1M+ edges), writes it to disk, and ingests
// it at each worker count, measuring end-to-end throughput and checking
// byte-identity against the sequential graph.LoadEdgeListFile
// reference. The workers=1 graph is then snapshotted and reloaded to
// time the binary path and verify its identity too. Results land in
// ingest_sweep.csv.
func IngestSweep(cfg Config, scale int, workersList []int) ([]IngestRow, error) {
	if scale <= 0 {
		scale = 17
	}
	if workersList == nil {
		workersList = []int{1, 2, 4, 8}
	}
	g, err := gen.RMAT(gen.DefaultRMAT(scale, 10), graph.IC, cfg.Seed)
	if err != nil {
		return nil, err
	}
	dir := cfg.OutDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "ingest-sweep")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, fmt.Sprintf("ingest_rmat%d.txt", scale))
	if err := graph.WriteEdgeListFile(path, g); err != nil {
		return nil, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}

	ref, err := graph.LoadEdgeListFile(path, false, graph.IC, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("harness: sequential reference load: %w", err)
	}

	snapPath := filepath.Join(dir, fmt.Sprintf("ingest_rmat%d.imsnap", scale))
	if err := ingest.WriteSnapshotFile(snapPath, ref, cfg.Seed); err != nil {
		return nil, err
	}
	snapStart := time.Now()
	reloaded, info, err := ingest.ReadSnapshotFile(snapPath)
	if err != nil {
		return nil, err
	}
	snapLoadMS := float64(time.Since(snapStart)) / float64(time.Millisecond)
	snapIdentical := graph.Equal(ref, reloaded)

	var rows []IngestRow
	var base float64
	for _, w := range workersList {
		gi, st, err := ingest.File(path, ingest.Options{Workers: w, Model: graph.IC, Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("harness: ingest workers=%d: %w", w, err)
		}
		wallMS := float64(st.TotalWall) / float64(time.Millisecond)
		if base == 0 {
			base = wallMS
		}
		rows = append(rows, IngestRow{
			Workers:           w,
			Nodes:             st.Nodes,
			Edges:             st.Edges,
			InputBytes:        fi.Size(),
			WallMS:            wallMS,
			MBPerSec:          st.MBPerSec(),
			EdgesPerSec:       st.EdgesPerSec(),
			SpeedupVs1:        safeDiv(base, wallMS),
			Identical:         graph.Equal(ref, gi),
			SnapshotBytes:     info.Bytes,
			SnapshotLoadMS:    snapLoadMS,
			SnapshotIdentical: snapIdentical,
		})
	}
	csv := [][]string{{"workers", "nodes", "edges", "input_bytes", "wall_ms", "mb_per_s", "edges_per_s", "speedup_vs_1", "identical", "snapshot_bytes", "snapshot_load_ms", "snapshot_identical"}}
	for _, r := range rows {
		csv = append(csv, []string{
			itoa(r.Workers), itoa(int(r.Nodes)), i64(r.Edges), i64(r.InputBytes),
			f2(r.WallMS), f2(r.MBPerSec), f2(r.EdgesPerSec), f2(r.SpeedupVs1), fmt.Sprintf("%v", r.Identical),
			i64(r.SnapshotBytes), f2(r.SnapshotLoadMS), fmt.Sprintf("%v", r.SnapshotIdentical),
		})
	}
	return rows, cfg.writeCSV("ingest_sweep.csv", csv)
}
