package harness

import (
	"os"
	"path/filepath"
	"testing"
)

func TestServeSweep(t *testing.T) {
	cfg := quick(t, true)
	rows, err := ServeSweep(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	if rows[0].Phase != "cold" || rows[0].Warm || rows[0].ReusedSets != 0 {
		t.Fatalf("cold row = %+v", rows[0])
	}
	for i, r := range rows {
		if !r.SeedsMatch {
			t.Fatalf("row %d (%s): served seeds diverged from cold Run", i, r.Phase)
		}
	}
	for _, r := range rows[1:5] {
		if !r.Warm {
			t.Fatalf("%s row not warm: %+v", r.Phase, r)
		}
	}
	if rows[1].ReusedSets != rows[1].Theta || rows[1].GeneratedSets != 0 {
		t.Fatalf("warm-repeat did not fully reuse the pool: %+v", rows[1])
	}
	if last := rows[len(rows)-1]; last.Warm || last.GeneratedSets == 0 {
		t.Fatalf("cold-evicted row was served warm: %+v", last)
	}
	data, err := os.ReadFile(filepath.Join(cfg.OutDir, "serve_sweep.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("serve_sweep.csv is empty")
	}
}
