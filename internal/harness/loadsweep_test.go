package harness

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadSweep(t *testing.T) {
	cfg := quick(t, true)
	rows, err := LoadSweep(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (serial, batched)", len(rows))
	}
	for _, r := range rows {
		if !r.SeedsMatch {
			t.Fatalf("%s config: served seeds diverged from cold Run", r.Config)
		}
		if r.Queries == 0 || r.Pools != 2 {
			t.Fatalf("%s row = %+v", r.Config, r)
		}
	}
	serial, batched := rows[0], rows[1]
	if serial.Config != "serial" || batched.Config != "batched" {
		t.Fatalf("unexpected config order: %q, %q", serial.Config, batched.Config)
	}
	// The serial convoy answers one query per drain: no multi-member
	// batches, no shared extensions.
	if serial.MaxBatchSize != 1 || serial.BatchedQueries != 0 || serial.SharedExtensions != 0 {
		t.Fatalf("serial config formed batches: %+v", serial)
	}
	// The batched config must actually gather the burst.
	if batched.MaxBatchSize < 2 || batched.BatchedQueries == 0 {
		t.Fatalf("batched config gathered nothing: %+v", batched)
	}
	// Both configs answer the same traffic from the same cold state, so
	// total generation is bounded by the same per-pool maxima.
	if batched.GeneratedSets == 0 || serial.GeneratedSets == 0 {
		t.Fatalf("cold bursts generated nothing: serial=%+v batched=%+v", serial, batched)
	}

	data, err := os.ReadFile(filepath.Join(cfg.OutDir, "load_sweep.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("load_sweep.csv is empty")
	}
}
