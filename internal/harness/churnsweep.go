package harness

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/serve"
)

// ---------------------------------------------------------------------
// Churn sweep — incremental warm-pool repair vs cold regeneration.
// ---------------------------------------------------------------------

// ChurnRow is one update rate of the sweep: a deterministic edge delta
// touching ~rate·M edges, applied once through the serving layer's
// in-place pool repair and once as a cold rebuild on the post-delta
// graph.
type ChurnRow struct {
	// UpdateRate is the delta size as a fraction of the edge count
	// (adds + removes over M).
	UpdateRate float64
	AddEdges   int
	RemEdges   int

	// Repair accounting from serve.Server.ApplyDelta.
	DirtyVertices int
	SetsResampled int64
	FullResamples int64

	// RepairMS is the incremental path: ApplyDelta (CSR rebuild + pool
	// repair) plus the warm query that reads the repaired pool. ColdMS
	// is the alternative: graph.ApplyDelta plus a from-scratch pool
	// build and query on a fresh server.
	RepairMS      float64
	RepairQueryMS float64
	ColdMS        float64

	// Speedup is ColdMS over the full incremental path; RepairWins is
	// Speedup > 1. Low rates should win and high rates approach (or
	// cross) parity — the crossover the sweep exists to locate.
	Speedup    float64
	RepairWins bool

	// SeedsMatch pins the tentpole guarantee: the repaired pool's
	// answer is byte-identical to the cold post-delta answer.
	SeedsMatch bool
}

// churnRates are the swept update rates (fraction of M changed). The
// ladder spans four orders of magnitude because invalidation is
// set-size-biased: a dirty hub vertex sits in most large RRR sets, so
// even modest deltas invalidate a large share of the generation cost
// and the repair-vs-cold crossover lands at rates well below 1%.
var churnRates = []float64{0.00002, 0.0001, 0.0005, 0.002, 0.01, 0.05, 0.2}

// ChurnSweep measures incremental warm-pool repair against cold
// regeneration on an R-MAT graph at the given scale (log2 vertices;
// <= 0 means 14). Each row starts from the pristine graph, warms a
// pool, applies a deterministic delta of ~rate·M edges through
// serve.Server.ApplyDelta (which repairs the pool in place), and
// compares the wall time — delta apply plus warm query — against a
// cold server that rebuilds the pool from scratch on the post-delta
// graph. Every row checks the repaired answer byte-identical to the
// cold one and fails the sweep otherwise. Results land in
// churn_sweep.csv.
func ChurnSweep(cfg Config, scale int) ([]ChurnRow, error) {
	if scale <= 0 {
		scale = 14
	}
	g, err := gen.RMAT(gen.DefaultRMAT(scale, 8), graph.IC, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// Weighted cascade (p = 1/indeg) is the churn regime worth measuring:
	// under uniform [0,1) IC at edge factor 8 the cascade is supercritical,
	// so nearly every RRR set spans the giant reverse-reachable component
	// and any dirty vertex inside it invalidates them all — repair
	// degenerates to a cold rebuild regardless of rate. WC keeps sets
	// local, which is what makes incremental repair pay off at all.
	graph.AssignWC(g)
	opt := serve.Options{
		Workers:  runtime.NumCPU(),
		MaxTheta: cfg.MaxThetaIC,
	}
	name := fmt.Sprintf("rmat%d", scale)
	base := serve.QueryRequest{Graph: name, K: cfg.K, Epsilon: cfg.Epsilon, Seed: cfg.Seed}

	var rows []ChurnRow
	for i, rate := range churnRates {
		// Rows are independent: each starts from the pristine graph so
		// rates are comparable (deltas don't compound).
		adds := max(1, int(rate*float64(g.M))/2)
		rems := max(1, int(rate*float64(g.M))/2)
		d := churnDelta(g, adds, rems, cfg.Seed+uint64(i)*1009+11)

		row, err := runChurnRate(g, opt, name, base, rate, d)
		if err != nil {
			return nil, fmt.Errorf("harness: churn rate %.4f: %w", rate, err)
		}
		rows = append(rows, row)
	}

	csv := [][]string{{"update_rate", "add_edges", "rem_edges", "dirty_vertices", "sets_resampled", "full_resamples", "repair_ms", "repair_query_ms", "cold_ms", "speedup", "repair_wins", "seeds_match"}}
	for _, r := range rows {
		csv = append(csv, []string{
			fmt.Sprintf("%g", r.UpdateRate), itoa(r.AddEdges), itoa(r.RemEdges),
			itoa(r.DirtyVertices), i64(r.SetsResampled), i64(r.FullResamples),
			f2(r.RepairMS), f2(r.RepairQueryMS), f2(r.ColdMS),
			f2(r.Speedup), fmt.Sprintf("%v", r.RepairWins), fmt.Sprintf("%v", r.SeedsMatch),
		})
	}
	return rows, cfg.writeCSV("churn_sweep.csv", csv)
}

// runChurnRate measures one update rate: warm a pool on the pristine
// graph, time the incremental path (ApplyDelta repair + warm query),
// then time the cold path (graph.ApplyDelta + fresh server + cold
// query) and compare answers.
func runChurnRate(g *graph.Graph, opt serve.Options, name string, base serve.QueryRequest, rate float64, d graph.Delta) (ChurnRow, error) {
	s := serve.NewServer(opt)
	if _, err := s.AddGraph(name, g, base.Seed); err != nil {
		return ChurnRow{}, err
	}
	if _, err := s.Query(base); err != nil {
		return ChurnRow{}, fmt.Errorf("warm-up query: %w", err)
	}

	start := time.Now()
	res, err := s.ApplyDelta(name, d, graph.DeltaOptions{})
	if err != nil {
		return ChurnRow{}, fmt.Errorf("apply delta: %w", err)
	}
	repairMS := float64(time.Since(start)) / float64(time.Millisecond)
	if !res.Changed {
		return ChurnRow{}, fmt.Errorf("delta of +%d/-%d edges changed nothing", len(d.Add), len(d.Remove))
	}

	start = time.Now()
	warm, err := s.Query(base)
	if err != nil {
		return ChurnRow{}, fmt.Errorf("repaired query: %w", err)
	}
	queryMS := float64(time.Since(start)) / float64(time.Millisecond)
	if !warm.Warm {
		return ChurnRow{}, fmt.Errorf("post-repair query was served cold")
	}

	// Cold alternative: apply the same delta to the pristine graph and
	// pay a from-scratch pool build on a fresh server.
	start = time.Now()
	ng, _, err := graph.ApplyDelta(g, d, graph.DeltaOptions{})
	if err != nil {
		return ChurnRow{}, fmt.Errorf("cold graph apply: %w", err)
	}
	cold := serve.NewServer(opt)
	if _, err := cold.AddGraph(name, ng, base.Seed); err != nil {
		return ChurnRow{}, err
	}
	coldRes, err := cold.Query(base)
	if err != nil {
		return ChurnRow{}, fmt.Errorf("cold query: %w", err)
	}
	coldMS := float64(time.Since(start)) / float64(time.Millisecond)

	match := reflect.DeepEqual(warm.Seeds, coldRes.Seeds) && warm.Theta == coldRes.Theta
	if !match {
		return ChurnRow{}, fmt.Errorf("repaired answer diverged from cold post-delta answer: %v (θ=%d) vs %v (θ=%d)",
			warm.Seeds, warm.Theta, coldRes.Seeds, coldRes.Theta)
	}

	total := repairMS + queryMS
	return ChurnRow{
		UpdateRate:    rate,
		AddEdges:      len(d.Add),
		RemEdges:      len(d.Remove),
		DirtyVertices: res.DirtyVertices,
		SetsResampled: res.SetsResampled,
		FullResamples: res.FullResamples,
		RepairMS:      repairMS,
		RepairQueryMS: queryMS,
		ColdMS:        coldMS,
		Speedup:       safeDiv(coldMS, total),
		RepairWins:    coldMS > total,
		SeedsMatch:    match,
	}, nil
}

// churnDelta derives a deterministic edge delta touching ~adds+rems
// edges of g: distinct existing edges to remove and absent
// non-self-loop pairs to add, both drawn from an xorshift stream (the
// same derivation cmd/graphgen's -delta-out uses, so harness rows and
// CI deltas are comparable).
func churnDelta(g *graph.Graph, adds, rems int, seed uint64) graph.Delta {
	type pair [2]int32
	present := make(map[pair]bool, g.M)
	edges := make([]pair, 0, g.M)
	for u := int32(0); u < g.N; u++ {
		for p := g.OutIndex[u]; p < g.OutIndex[u+1]; p++ {
			e := pair{u, g.OutEdges[p]}
			present[e] = true
			edges = append(edges, e)
		}
	}
	x := seed ^ 0x9e3779b97f4a7c15
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	d := graph.Delta{Seed: seed}
	chosen := make(map[pair]bool, rems)
	for len(edges) > 0 && len(d.Remove) < rems && len(chosen) < len(edges) {
		e := edges[next()%uint64(len(edges))]
		if chosen[e] {
			continue
		}
		chosen[e] = true
		d.Remove = append(d.Remove, graph.Edge{Src: e[0], Dst: e[1]})
	}
	for g.N > 1 && len(d.Add) < adds {
		u, v := int32(next()%uint64(g.N)), int32(next()%uint64(g.N))
		e := pair{u, v}
		if u == v || present[e] {
			continue
		}
		present[e] = true
		d.Add = append(d.Add, graph.Edge{Src: u, Dst: v})
	}
	return d
}
