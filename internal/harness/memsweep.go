package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/imm"
	"repro/internal/ingest"
)

// ---------------------------------------------------------------------
// Memory/selection sweep — the compressed-pool and CELF trade-offs.
// ---------------------------------------------------------------------

// MemoryRow measures one (dataset, model, pool variant) cell: resident
// pool bytes under that representation plus the modeled selection cost
// of both kernels over it. SeedsMatch confirms the variant selected the
// same seeds as the slice-pool baseline (representation and kernel are
// semantics-preserving).
type MemoryRow struct {
	Dataset string
	Model   string
	Variant string // slice-list | slice-adaptive | compressed
	Theta   int64

	SetBytes         int64
	IndexBytes       int64
	RawBytes         int64
	CompressionRatio float64 // raw []int32-slice bytes / SetBytes

	SelectionCELF float64 // modeled ops, lazy-greedy kernel
	SelectionScan float64 // modeled ops, eager kernel
	SeedsMatch    bool
}

// memoryVariants are the three pool configurations the sweep compares:
// the []int32-slice pool the compressed pool replaces, the adaptive
// list/bitmap pool, and the compressed pool.
var memoryVariants = []struct {
	name   string
	mutate func(*imm.Options)
}{
	{"slice-list", func(o *imm.Options) { o.Pool = imm.PoolSlices; o.AdaptiveRep = false }},
	{"slice-adaptive", func(o *imm.Options) { o.Pool = imm.PoolSlices }},
	{"compressed", func(o *imm.Options) { o.Pool = imm.PoolCompressed }},
}

// MemorySweep runs the Efficient engine across the pool variants on the
// given datasets (default: the two canonical clones), recording resident
// footprint and the CELF-versus-scan selection cost. Results land in
// memory_selection_sweep.csv.
func MemorySweep(cfg Config, datasets []string) ([]MemoryRow, error) {
	if datasets == nil {
		datasets = []string{"web-Google", "com-Amazon"}
	}
	workers := cfg.Workers[len(cfg.Workers)-1]
	var rows []MemoryRow
	for _, name := range datasets {
		p, err := gen.ProfileByName(name)
		if err != nil {
			return nil, err
		}
		if cfg.MaxScale > 0 && p.Scale > cfg.MaxScale {
			p.Scale = cfg.MaxScale
		}
		for _, model := range []graph.Model{graph.IC, graph.LT} {
			g, err := p.Generate(model, cfg.Seed)
			if err != nil {
				return nil, err
			}
			var baseline []int32
			for _, v := range memoryVariants {
				celf := cfg.options(imm.Efficient, model, workers)
				v.mutate(&celf)
				celf.Selection = imm.SelectCELF
				resCELF, err := imm.Run(g, celf)
				if err != nil {
					return nil, fmt.Errorf("harness: memory sweep %s/%v/%s: %w", name, model, v.name, err)
				}
				scan := celf
				scan.Selection = imm.SelectScan
				resScan, err := imm.Run(g, scan)
				if err != nil {
					return nil, err
				}
				if baseline == nil {
					baseline = resCELF.Seeds
				}
				rows = append(rows, MemoryRow{
					Dataset: name, Model: model.String(), Variant: v.name,
					Theta:            resCELF.Theta,
					SetBytes:         resCELF.Pool.SetBytes,
					IndexBytes:       resCELF.Pool.IndexBytes,
					RawBytes:         resCELF.Pool.RawBytes,
					CompressionRatio: resCELF.Pool.CompressionRatio(),
					SelectionCELF:    resCELF.Breakdown.SelectionModeled,
					SelectionScan:    resScan.Breakdown.SelectionModeled,
					SeedsMatch:       sameSeeds(baseline, resCELF.Seeds) && sameSeeds(baseline, resScan.Seeds),
				})
			}
		}
	}
	csv := [][]string{{"dataset", "model", "variant", "theta", "set_bytes", "index_bytes", "raw_bytes", "compression_ratio", "selection_celf_modeled", "selection_scan_modeled", "seeds_match"}}
	for _, r := range rows {
		csv = append(csv, []string{
			r.Dataset, r.Model, r.Variant, i64(r.Theta),
			i64(r.SetBytes), i64(r.IndexBytes), i64(r.RawBytes), f2(r.CompressionRatio),
			f2(r.SelectionCELF), f2(r.SelectionScan), fmt.Sprintf("%v", r.SeedsMatch),
		})
	}
	return rows, cfg.writeCSV("memory_selection_sweep.csv", csv)
}

func sameSeeds(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------
// CI bench digest — the regression gate's fixed measurement.
// ---------------------------------------------------------------------

// CIMetric is one gated configuration. Every field is deterministic for
// a given source tree: modeled ops are integer work counts, pool bytes
// are exact, and Seeds fingerprints the selection output — so the CI
// comparison needs no statistical smoothing, only a drift tolerance for
// intentional cost-model tweaks.
type CIMetric struct {
	Key              string  `json:"key"` // dataset/model/engine/pool
	Theta            int64   `json:"theta"`
	SamplingModeled  float64 `json:"sampling_modeled"`
	SelectionModeled float64 `json:"selection_modeled"`
	PoolSetBytes     int64   `json:"pool_set_bytes"`
	PoolIndexBytes   int64   `json:"pool_index_bytes"`
	CompressionRatio float64 `json:"compression_ratio"`
	Seeds            string  `json:"seeds"`
}

// CIIngest is the ingestion leg of the digest: the pinned graph is
// written as text, re-ingested through the parallel pipeline, and
// snapshotted. Edges/Nodes/Theta/Seeds/SnapshotBytes are deterministic
// and gated; MBPerSec is wall-clock throughput, recorded for the
// artifact trail but never gated (runner hardware varies).
type CIIngest struct {
	Nodes         int32   `json:"nodes"`
	Edges         int64   `json:"edges"`
	SnapshotBytes int64   `json:"snapshot_bytes"`
	Theta         int64   `json:"theta"`
	Seeds         string  `json:"seeds"`
	MBPerSec      float64 `json:"ingest_mb_per_s"`
}

// CIKernel is the generation-kernel leg of the digest: the fused
// streaming kernel differentially against the materialized reference on
// the pinned IC configuration at one worker. Theta/Seeds/SeedsMatch and
// the modeled sampling cost are deterministic and gated; the generation-
// path allocation rates are measured over a fixed slot count with a
// single-threaded run (runtime jitter is a handful of allocations
// against thousands, well inside the gate tolerance). WallSpeedup is
// hardware-dependent: it is gated only by a loose in-run sanity floor,
// never against the baseline.
type CIKernel struct {
	Theta      int64  `json:"theta"`
	Seeds      string `json:"seeds"`
	SeedsMatch bool   `json:"seeds_match"` // fused == materialized, in-run

	FusedSamplingModeled float64 `json:"fused_sampling_modeled"`
	MatSamplingModeled   float64 `json:"materialized_sampling_modeled"`

	GenSets        int64   `json:"gen_sets"`
	GenAllocsFused float64 `json:"gen_allocs_per_set_fused"`
	GenAllocsMat   float64 `json:"gen_allocs_per_set_materialized"`
	AllocReduction float64 `json:"gen_alloc_reduction"`

	WallSpeedup float64 `json:"wall_speedup"` // materialized / fused, not baseline-gated
}

// CIDigest is the BENCH_ci.json payload: a self-describing config tag
// plus the gated metrics.
type CIDigest struct {
	Config  string     `json:"config"`
	Metrics []CIMetric `json:"metrics"`
	Ingest  *CIIngest  `json:"ingest,omitempty"`
	Kernel  *CIKernel  `json:"kernel,omitempty"`
}

// ciConfigTag names the pinned measurement configuration; bump it when
// the CIBench setup changes so stale baselines fail loudly instead of
// comparing apples to oranges.
const ciConfigTag = "web-Google@9 k=25 w=4 seed=1 thetaIC=4000 thetaLT=8000 v3+ingest+kernel"

// CIBench runs the fixed small configuration the bench-regression CI
// job gates on: the web-Google clone at scale 9, both models, the
// Ripples baseline plus the Efficient engine over both pools. Roughly
// two seconds of work, fully deterministic.
func CIBench() (CIDigest, error) {
	digest := CIDigest{Config: ciConfigTag}
	prof, err := gen.ProfileByName("web-Google")
	if err != nil {
		return digest, err
	}
	prof.Scale = 9
	for _, model := range []graph.Model{graph.IC, graph.LT} {
		g, err := prof.Generate(model, 1)
		if err != nil {
			return digest, err
		}
		type cell struct {
			engine imm.EngineKind
			pool   imm.PoolKind
		}
		for _, c := range []cell{
			{imm.Ripples, imm.PoolSlices},
			{imm.Efficient, imm.PoolSlices},
			{imm.Efficient, imm.PoolCompressed},
		} {
			opt := imm.Defaults()
			opt.Engine = c.engine
			opt.Pool = c.pool
			opt.Workers = 4
			opt.K = 25
			opt.Seed = 1
			if model == graph.LT {
				opt.MaxTheta = 8000
			} else {
				opt.MaxTheta = 4000
			}
			res, err := imm.Run(g, opt)
			if err != nil {
				return digest, err
			}
			digest.Metrics = append(digest.Metrics, CIMetric{
				Key:              fmt.Sprintf("web-Google/%s/%s/%s", model, c.engine, c.pool),
				Theta:            res.Theta,
				SamplingModeled:  res.Breakdown.SamplingModeled,
				SelectionModeled: res.Breakdown.SelectionModeled,
				PoolSetBytes:     res.Pool.SetBytes,
				PoolIndexBytes:   res.Pool.IndexBytes,
				CompressionRatio: res.Pool.CompressionRatio(),
				Seeds:            fmt.Sprint(res.Seeds),
			})
		}
	}

	// Ingestion leg: text → parallel ingest → snapshot → Run. The
	// snapshot size and the seeds through the ingested graph guard the
	// loader and the codec the same way the metrics above guard the
	// engines.
	gIC, err := prof.Generate(graph.IC, 1)
	if err != nil {
		return digest, err
	}
	var text bytes.Buffer
	if err := graph.WriteEdgeList(&text, gIC); err != nil {
		return digest, err
	}
	ing, st, err := ingest.Reader(&text, ingest.Options{Workers: 4, Model: graph.IC, Seed: 1})
	if err != nil {
		return digest, err
	}
	var snap bytes.Buffer
	if err := ingest.WriteSnapshot(&snap, ing, 1); err != nil {
		return digest, err
	}
	snapBytes := int64(snap.Len())
	reloaded, _, err := ingest.ReadSnapshot(bytes.NewReader(snap.Bytes()))
	if err != nil {
		return digest, err
	}
	if !graph.Equal(ing, reloaded) {
		return digest, fmt.Errorf("harness: snapshot round trip changed the CI graph")
	}
	opt := imm.Defaults()
	opt.Workers = 4
	opt.K = 25
	opt.Seed = 1
	opt.MaxTheta = 4000
	res, err := imm.Run(reloaded, opt)
	if err != nil {
		return digest, err
	}
	digest.Ingest = &CIIngest{
		Nodes:         st.Nodes,
		Edges:         st.Edges,
		SnapshotBytes: snapBytes,
		Theta:         res.Theta,
		Seeds:         fmt.Sprint(res.Seeds),
		MBPerSec:      st.MBPerSec(),
	}

	// Kernel leg: fused vs materialized on the pinned IC graph at one
	// worker (single-threaded so allocation counts are reproducible).
	kopt := imm.Defaults()
	kopt.Workers = 1
	kopt.K = 25
	kopt.Seed = 1
	kopt.MaxTheta = 4000
	kopt.Kernel = imm.KernelFused
	fusedRes, err := imm.Run(gIC, kopt)
	if err != nil {
		return digest, err
	}
	kopt.Kernel = imm.KernelMaterialized
	matRes, err := imm.Run(gIC, kopt)
	if err != nil {
		return digest, err
	}
	const kernelGenSets = 4096
	genFused, genMat := generationAllocs(gIC, kopt, kernelGenSets)
	digest.Kernel = &CIKernel{
		Theta:                fusedRes.Theta,
		Seeds:                fmt.Sprint(fusedRes.Seeds),
		SeedsMatch:           fusedRes.Theta == matRes.Theta && sameSeeds(fusedRes.Seeds, matRes.Seeds),
		FusedSamplingModeled: fusedRes.Breakdown.SamplingModeled,
		MatSamplingModeled:   matRes.Breakdown.SamplingModeled,
		GenSets:              kernelGenSets,
		GenAllocsFused:       genFused,
		GenAllocsMat:         genMat,
		AllocReduction:       safeDiv(genMat, genFused),
		WallSpeedup: safeDiv(float64(matRes.Breakdown.TotalWall),
			float64(fusedRes.Breakdown.TotalWall)),
	}
	return digest, nil
}

// WriteCIDigest writes the digest as indented JSON.
func WriteCIDigest(path string, d CIDigest) error {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadCIDigest reads a digest written by WriteCIDigest.
func LoadCIDigest(path string) (CIDigest, error) {
	var d CIDigest
	data, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	return d, json.Unmarshal(data, &d)
}

// CompareCI checks cur against base and returns one message per
// regression; empty means the gate passes. Cost metrics (modeled ops,
// pool bytes) may grow at most tol (e.g. 0.10 for 10%); the compression
// ratio may shrink at most tol; θ and seeds must match exactly — those
// change only when the algorithm changes, which is precisely when the
// baseline must be regenerated deliberately.
func CompareCI(base, cur CIDigest, tol float64) []string {
	var regressions []string
	if base.Config != cur.Config {
		regressions = append(regressions, fmt.Sprintf("config mismatch: baseline %q vs current %q (regenerate BENCH_baseline.json)", base.Config, cur.Config))
		return regressions
	}
	curByKey := map[string]CIMetric{}
	for _, m := range cur.Metrics {
		curByKey[m.Key] = m
	}
	grew := func(now, was float64) bool { return was > 0 && now > was*(1+tol) }
	for _, b := range base.Metrics {
		c, ok := curByKey[b.Key]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: metric missing from current run", b.Key))
			continue
		}
		if c.Theta != b.Theta {
			regressions = append(regressions, fmt.Sprintf("%s: theta %d != baseline %d", b.Key, c.Theta, b.Theta))
		}
		if c.Seeds != b.Seeds {
			regressions = append(regressions, fmt.Sprintf("%s: seeds diverged from baseline", b.Key))
		}
		if grew(c.SamplingModeled, b.SamplingModeled) {
			regressions = append(regressions, fmt.Sprintf("%s: sampling modeled %+.1f%% (%.0f -> %.0f)",
				b.Key, 100*(c.SamplingModeled/b.SamplingModeled-1), b.SamplingModeled, c.SamplingModeled))
		}
		if grew(c.SelectionModeled, b.SelectionModeled) {
			regressions = append(regressions, fmt.Sprintf("%s: selection modeled %+.1f%% (%.0f -> %.0f)",
				b.Key, 100*(c.SelectionModeled/b.SelectionModeled-1), b.SelectionModeled, c.SelectionModeled))
		}
		if grew(float64(c.PoolSetBytes), float64(b.PoolSetBytes)) {
			regressions = append(regressions, fmt.Sprintf("%s: pool set bytes %+.1f%% (%d -> %d)",
				b.Key, 100*(float64(c.PoolSetBytes)/float64(b.PoolSetBytes)-1), b.PoolSetBytes, c.PoolSetBytes))
		}
		if grew(float64(c.PoolIndexBytes), float64(b.PoolIndexBytes)) {
			regressions = append(regressions, fmt.Sprintf("%s: pool index bytes %+.1f%% (%d -> %d)",
				b.Key, 100*(float64(c.PoolIndexBytes)/float64(b.PoolIndexBytes)-1), b.PoolIndexBytes, c.PoolIndexBytes))
		}
		if b.CompressionRatio > 0 && c.CompressionRatio < b.CompressionRatio*(1-tol) {
			regressions = append(regressions, fmt.Sprintf("%s: compression ratio %.2f below baseline %.2f",
				b.Key, c.CompressionRatio, b.CompressionRatio))
		}
	}
	// Ingestion gate: shape, θ and seeds are deterministic and must
	// match exactly; the snapshot may grow at most tol. Throughput
	// (MBPerSec) is hardware-dependent and deliberately not gated.
	if base.Ingest != nil {
		b, c := base.Ingest, cur.Ingest
		switch {
		case c == nil:
			regressions = append(regressions, "ingest: leg missing from current run")
		default:
			if c.Nodes != b.Nodes || c.Edges != b.Edges {
				regressions = append(regressions, fmt.Sprintf("ingest: shape %d/%d != baseline %d/%d", c.Nodes, c.Edges, b.Nodes, b.Edges))
			}
			if c.Theta != b.Theta {
				regressions = append(regressions, fmt.Sprintf("ingest: theta %d != baseline %d", c.Theta, b.Theta))
			}
			if c.Seeds != b.Seeds {
				regressions = append(regressions, "ingest: seeds through the ingested graph diverged from baseline")
			}
			if grew(float64(c.SnapshotBytes), float64(b.SnapshotBytes)) {
				regressions = append(regressions, fmt.Sprintf("ingest: snapshot bytes %+.1f%% (%d -> %d)",
					100*(float64(c.SnapshotBytes)/float64(b.SnapshotBytes)-1), b.SnapshotBytes, c.SnapshotBytes))
			}
		}
	}
	// Kernel gate: the fused kernel must stay observationally identical
	// to the materialized reference (θ, seeds, in-run match), its modeled
	// sampling cost may grow at most tol, and the generation path must
	// keep its allocation win — the fused per-set rate stays under an
	// absolute cap and the fused-over-materialized reduction may not fall
	// below 10x (the refactor's headline guarantee; the measured margin
	// is far larger). WallSpeedup only has an in-run sanity floor: a fused
	// kernel slower than half the reference signals a real regression on
	// any hardware.
	if base.Kernel != nil {
		b, c := base.Kernel, cur.Kernel
		switch {
		case c == nil:
			regressions = append(regressions, "kernel: leg missing from current run")
		default:
			if c.Theta != b.Theta {
				regressions = append(regressions, fmt.Sprintf("kernel: theta %d != baseline %d", c.Theta, b.Theta))
			}
			if c.Seeds != b.Seeds {
				regressions = append(regressions, "kernel: fused seeds diverged from baseline")
			}
			if !c.SeedsMatch {
				regressions = append(regressions, "kernel: fused and materialized kernels disagree in-run")
			}
			if grew(c.FusedSamplingModeled, b.FusedSamplingModeled) {
				regressions = append(regressions, fmt.Sprintf("kernel: fused sampling modeled %+.1f%% (%.0f -> %.0f)",
					100*(c.FusedSamplingModeled/b.FusedSamplingModeled-1), b.FusedSamplingModeled, c.FusedSamplingModeled))
			}
			// The fused rate hovers near zero, so a relative gate would
			// amplify runtime jitter; the absolute cap matches the
			// steady-state unit test's bar.
			if c.GenAllocsFused > 0.25 {
				regressions = append(regressions, fmt.Sprintf("kernel: fused generation allocs/set %.3f above the 0.25 cap (baseline %.3f)",
					c.GenAllocsFused, b.GenAllocsFused))
			}
			if c.AllocReduction < 10 {
				regressions = append(regressions, fmt.Sprintf("kernel: generation alloc reduction %.1fx below the 10x floor", c.AllocReduction))
			}
			if c.WallSpeedup < 0.5 {
				regressions = append(regressions, fmt.Sprintf("kernel: fused kernel ran at %.2fx the materialized wall-clock (sanity floor 0.5)", c.WallSpeedup))
			}
		}
	}
	return regressions
}
