package harness

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/imm"
	"repro/internal/serve"
)

// ---------------------------------------------------------------------
// Serve sweep — warm-pool amortization of the query service.
// ---------------------------------------------------------------------

// ServeRow is one served query of the sweep.
type ServeRow struct {
	Phase   string // what the query exercises: cold, warm-repeat, warm-shrink, warm-extend, cold-evicted
	K       int
	Epsilon float64
	Seed    uint64

	WallMS        float64
	Theta         int64
	Warm          bool
	ReusedSets    int64
	GeneratedSets int64
	ReusedBytes   int64
	PoolBytes     int64

	// SpeedupVsCold is the cold query's wall time over this one.
	SpeedupVsCold float64
	// SeedsMatch pins the tentpole guarantee: the served answer equals a
	// cold imm.Run with the same options.
	SeedsMatch bool
	// HitRatio is the serving server's warm-hit ratio as of this row
	// (the cold-evicted row reports its own tiny-budget server's).
	HitRatio float64
}

// ServeSweep measures the warm-pool query service on an R-MAT graph at
// the given scale (log2 vertices; <= 0 means 16, the CI dataset shape):
// a cold query pays full generation, an exact repeat and a smaller
// query are pure pool reuse, a tighter query extends θ incrementally,
// and every answer is checked byte-identical against a cold imm.Run.
// The final row re-runs the cold query against a byte-budget so small
// that the pool was evicted — the regeneration cost the budget trades
// for memory. Results land in serve_sweep.csv; the summary row reports
// the service counters (hit ratio, reuse volume).
func ServeSweep(cfg Config, scale int) ([]ServeRow, error) {
	if scale <= 0 {
		scale = 16
	}
	g, err := gen.RMAT(gen.DefaultRMAT(scale, 8), graph.IC, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// Physical parallelism: the sweep measures real warm-vs-cold latency
	// (not simulated scaling), and seeds are worker-invariant anyway.
	opt := serve.Options{
		Workers:  runtime.NumCPU(),
		MaxTheta: cfg.MaxThetaIC,
	}
	s := serve.NewServer(opt)
	name := fmt.Sprintf("rmat%d", scale)
	if _, err := s.AddGraph(name, g, cfg.Seed); err != nil {
		return nil, err
	}

	base := serve.QueryRequest{Graph: name, K: cfg.K, Epsilon: cfg.Epsilon, Seed: cfg.Seed}
	smaller := base
	smaller.K = max(1, cfg.K/2)
	smaller.Epsilon = min(0.9, cfg.Epsilon*1.4)
	tighter := base
	tighter.K = cfg.K * 2
	tighter.Epsilon = cfg.Epsilon * 0.8

	phases := []struct {
		phase string
		req   serve.QueryRequest
	}{
		{"cold", base},
		{"warm-repeat", base},
		{"warm-shrink", smaller},
		{"warm-extend", tighter},
		{"warm-repeat-2", base},
	}

	// The cold references are memoized per query shape: four of the six
	// rows share the base request, and a full-scale imm.Run reference is
	// the expensive part of the sweep.
	refs := make(map[serve.QueryRequest]*imm.Result)

	var rows []ServeRow
	var coldMS float64
	for _, ph := range phases {
		row, err := runServeQuery(s, g, opt, ph.phase, ph.req, refs)
		if err != nil {
			return nil, err
		}
		if ph.phase == "cold" {
			coldMS = row.WallMS
		}
		row.SpeedupVsCold = safeDiv(coldMS, row.WallMS)
		rows = append(rows, row)
	}

	// Eviction leg: a budget below one pool forces regeneration. The
	// budget never evicts the pool its own query just populated (that
	// was the self-eviction churn bug — see the serve package's
	// regression test), so a query against a second pool provides the
	// LRU pressure that actually drops the first one.
	tiny := serve.NewServer(serve.Options{Workers: opt.Workers, MaxTheta: opt.MaxTheta, PoolBudgetBytes: 1})
	if _, err := tiny.AddGraph(name, g, cfg.Seed); err != nil {
		return nil, err
	}
	if _, err := tiny.Query(base); err != nil {
		return nil, err
	}
	evictor := smaller
	evictor.Seed = cfg.Seed + 1
	if _, err := tiny.Query(evictor); err != nil {
		return nil, err
	}
	if st := tiny.Stats(); st.Evictions == 0 {
		return nil, fmt.Errorf("harness: serve eviction leg: LRU pressure evicted nothing (%+v)", st)
	}
	row, err := runServeQuery(tiny, g, opt, "cold-evicted", base, refs)
	if err != nil {
		return nil, err
	}
	if row.Warm {
		return nil, fmt.Errorf("harness: serve cold-evicted row was served warm")
	}
	row.SpeedupVsCold = safeDiv(coldMS, row.WallMS)
	rows = append(rows, row)

	csv := [][]string{{"phase", "k", "epsilon", "seed", "wall_ms", "theta", "warm", "reused_sets", "generated_sets", "reused_bytes", "pool_bytes", "speedup_vs_cold", "seeds_match", "hit_ratio"}}
	for _, r := range rows {
		csv = append(csv, []string{
			r.Phase, itoa(r.K), f2(r.Epsilon), fmt.Sprintf("%d", r.Seed),
			f2(r.WallMS), i64(r.Theta), fmt.Sprintf("%v", r.Warm),
			i64(r.ReusedSets), i64(r.GeneratedSets), i64(r.ReusedBytes), i64(r.PoolBytes),
			f2(r.SpeedupVsCold), fmt.Sprintf("%v", r.SeedsMatch), f2(r.HitRatio),
		})
	}
	return rows, cfg.writeCSV("serve_sweep.csv", csv)
}

// runServeQuery serves one query and verifies it against a cold Run
// (memoized in refs: identical query shapes share one reference).
func runServeQuery(s *serve.Server, g *graph.Graph, opt serve.Options, phase string, req serve.QueryRequest, refs map[serve.QueryRequest]*imm.Result) (ServeRow, error) {
	start := time.Now()
	res, err := s.Query(req)
	if err != nil {
		return ServeRow{}, fmt.Errorf("harness: serve %s: %w", phase, err)
	}
	wallMS := float64(time.Since(start)) / float64(time.Millisecond)

	cold := refs[req]
	if cold == nil {
		o := opt.EngineOptions()
		o.K = req.K
		o.Epsilon = req.Epsilon
		o.Seed = req.Seed
		if cold, err = imm.Run(g, o); err != nil {
			return ServeRow{}, fmt.Errorf("harness: serve %s reference: %w", phase, err)
		}
		refs[req] = cold
	}

	return ServeRow{
		Phase:         phase,
		K:             req.K,
		Epsilon:       req.Epsilon,
		Seed:          req.Seed,
		WallMS:        wallMS,
		Theta:         res.Theta,
		Warm:          res.Warm,
		ReusedSets:    res.ReusedSets,
		GeneratedSets: res.GeneratedSets,
		ReusedBytes:   res.ReusedBytes,
		PoolBytes:     res.PoolBytes,
		SeedsMatch:    reflect.DeepEqual(res.Seeds, cold.Seeds) && res.Theta == cold.Theta,
		HitRatio:      s.Stats().HitRatio(),
	}, nil
}
