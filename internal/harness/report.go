package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ExtractResults mirrors the artifact's extract_results.py: it scans the
// strong-scaling-logs-* directories under dir, finds each dataset's best
// run per engine, and writes speedup_ic.csv and speedup_lt.csv with the
// same columns the paper's script emits. It returns the rows keyed by
// model name ("ic", "lt").
func ExtractResults(dir string) (map[string][]SpeedupRow, error) {
	recs, err := loadLogs(dir)
	if err != nil {
		return nil, err
	}
	out := map[string][]SpeedupRow{}
	for _, model := range []string{"ic", "lt"} {
		rows := summarize(recs, model)
		out[model] = rows
		if len(rows) == 0 {
			continue
		}
		csv := [][]string{{"Dataset", "Speedup", "EfficientIMM Time (s)", "Ripples Time (s)", "Ripples Best #Threads", "EfficientIMM Best #Threads"}}
		for _, r := range rows {
			csv = append(csv, []string{
				r.Dataset, f2(r.Speedup), f2(r.EfficientTimeS), f2(r.RipplesTimeS),
				itoa(r.RipplesBestThreads), itoa(r.EfficientBestThreads),
			})
		}
		cfg := Config{OutDir: filepath.Join(dir, "results")}
		if err := cfg.writeCSV("speedup_"+model+".csv", csv); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SpeedupRow is one line of speedup_<model>.csv.
type SpeedupRow struct {
	Dataset              string
	Speedup              float64
	EfficientTimeS       float64
	RipplesTimeS         float64
	RipplesBestThreads   int
	EfficientBestThreads int
}

func loadLogs(dir string) ([]RunRecord, error) {
	var recs []RunRecord
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "strong-scaling-logs-") {
			continue
		}
		sub := filepath.Join(dir, e.Name())
		files, err := os.ReadDir(sub)
		if err != nil {
			return nil, err
		}
		for _, f := range files {
			if f.IsDir() || !strings.HasSuffix(f.Name(), ".json") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(sub, f.Name()))
			if err != nil {
				return nil, err
			}
			var rec RunRecord
			if err := json.Unmarshal(data, &rec); err != nil {
				return nil, fmt.Errorf("harness: parsing %s: %w", f.Name(), err)
			}
			recs = append(recs, rec)
		}
	}
	return recs, nil
}

func summarize(recs []RunRecord, model string) []SpeedupRow {
	type best struct {
		time    float64
		threads int
	}
	rip := map[string]best{}
	eff := map[string]best{}
	for _, r := range recs {
		if lower(r.Model) != model {
			continue
		}
		// "Time" follows the artifact semantics: the run's duration. The
		// modeled cost is scaled to pseudo-seconds so the CSV shape
		// matches extract_results.py output.
		t := r.Modeled / 1e6
		m := rip
		if r.Engine != "ripples" {
			m = eff
		}
		if b, ok := m[r.Dataset]; !ok || t < b.time {
			m[r.Dataset] = best{time: t, threads: r.Workers}
		}
	}
	var names []string
	for name := range rip {
		if _, ok := eff[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var rows []SpeedupRow
	for _, name := range names {
		r, e := rip[name], eff[name]
		rows = append(rows, SpeedupRow{
			Dataset:              name,
			Speedup:              safeDiv(r.time, e.time),
			EfficientTimeS:       e.time,
			RipplesTimeS:         r.time,
			RipplesBestThreads:   r.threads,
			EfficientBestThreads: e.threads,
		})
	}
	return rows
}
