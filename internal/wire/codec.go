package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/compress"
)

// Payload codecs. Every message body is a flat little-endian byte layout
// built from three primitives: uvarints, length-prefixed strings, and
// raw byte runs. RRR set lists reuse the pool's delta-varint plain
// coding (internal/compress), counters go dense (8 bytes per vertex —
// the same volume the simulated CounterReduce phase models), and graphs
// go as .imsnap snapshot bytes, so nothing on the wire has a private
// serialization that could drift from the in-memory formats.

// Hello opens a session. Tag names the dialing process for logs and
// error messages (e.g. "root@host:port").
type Hello struct {
	Tag string
}

// Round asks a rank to generate the RRR sets for slots [Lo, Lo+Count) of
// the named graph under the given sampling seed. WantCounter additionally
// requests the rank's dense occurrence counter over its chunk — the
// allreduce contribution.
//
// No representation policy crosses the wire: the member sequence of a
// slot is representation-independent (the sorted unique vertex list), so
// the worker samples with the cheapest representation and the root
// rebuilds each set under its own policy, byte-identical to local
// generation.
type Round struct {
	Graph       string
	Seed        uint64
	Lo          int64
	Count       int64
	WantCounter bool
}

// RoundReply carries a rank's generation round back to the root: the
// per-slot member lists in slot order (plain delta-varint payloads),
// the sampling work metric, and optionally the dense counter.
type RoundReply struct {
	Members int64
	Edges   int64
	// Sets[i] is the plain coding (compress.AppendPlain) of slot Lo+i's
	// sorted member list; the slices alias the decoded frame payload.
	Sets [][]byte
	// Counts is the rank's dense occurrence counter (len = graph N), nil
	// when not requested.
	Counts []int64
}

// Seeds broadcasts a selection result: the seed vertices in selection
// order plus the achieved coverage, so every rank can evaluate the
// stopping rule exactly as the simulated runtime models.
type Seeds struct {
	Seeds    []int32
	Coverage float64
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// reader is a bounds-checked forward scanner over a frame payload; the
// first malformed field latches err and turns every later read into a
// zero-value no-op, so codecs can decode straight-line and check once.
type reader struct {
	b   []byte
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated %s", what)
	}
}

func (r *reader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) u64(what string) uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) bytes(n uint64, what string) []byte {
	if r.err != nil {
		return nil
	}
	if uint64(len(r.b)) < n {
		r.fail(what)
		return nil
	}
	v := r.b[:n:n]
	r.b = r.b[n:]
	return v
}

func (r *reader) string(what string) string {
	n := r.uvarint(what)
	return string(r.bytes(n, what))
}

func (r *reader) done(msg string) error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("wire: %s payload has %d trailing bytes", msg, len(r.b))
	}
	return nil
}

// EncodeHello encodes a Hello or HelloAck payload.
func EncodeHello(h Hello) []byte { return appendString(nil, h.Tag) }

// DecodeHello decodes a Hello or HelloAck payload.
func DecodeHello(b []byte) (Hello, error) {
	r := reader{b: b}
	h := Hello{Tag: r.string("hello tag")}
	return h, r.done("hello")
}

// EncodeGraph encodes a graph broadcast: the registry name followed by
// the .imsnap snapshot bytes (ingest.WriteSnapshot output).
func EncodeGraph(name string, snapshot []byte) []byte {
	dst := appendString(make([]byte, 0, len(name)+len(snapshot)+8), name)
	return append(dst, snapshot...)
}

// DecodeGraph splits a graph broadcast into name and snapshot bytes (a
// view into b).
func DecodeGraph(b []byte) (name string, snapshot []byte, err error) {
	r := reader{b: b}
	name = r.string("graph name")
	if r.err != nil {
		return "", nil, r.err
	}
	return name, r.b, nil
}

// EncodeRound encodes a generation-round request.
func EncodeRound(rd Round) []byte {
	dst := appendString(nil, rd.Graph)
	dst = binary.LittleEndian.AppendUint64(dst, rd.Seed)
	dst = binary.AppendUvarint(dst, uint64(rd.Lo))
	dst = binary.AppendUvarint(dst, uint64(rd.Count))
	flag := byte(0)
	if rd.WantCounter {
		flag = 1
	}
	return append(dst, flag)
}

// DecodeRound decodes a generation-round request.
func DecodeRound(b []byte) (Round, error) {
	r := reader{b: b}
	rd := Round{
		Graph: r.string("round graph"),
		Seed:  r.u64("round seed"),
		Lo:    int64(r.uvarint("round lo")),
		Count: int64(r.uvarint("round count")),
	}
	flag := r.bytes(1, "round flags")
	if r.err == nil {
		rd.WantCounter = flag[0]&1 != 0
	}
	return rd, r.done("round")
}

// AppendSet appends one slot's plain-coded member list (already encoded
// with compress.AppendPlain) as a length-prefixed run.
func AppendSet(dst, plain []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(plain)))
	return append(dst, plain...)
}

// EncodeRoundReply encodes a generation-round reply. rep.Sets must hold
// the plain codings in slot order; rep.Counts may be nil.
func EncodeRoundReply(rep RoundReply) []byte {
	size := 32
	for _, s := range rep.Sets {
		size += len(s) + 4
	}
	if rep.Counts != nil {
		size += 8 * len(rep.Counts)
	}
	dst := make([]byte, 0, size)
	dst = binary.AppendUvarint(dst, uint64(rep.Members))
	dst = binary.AppendUvarint(dst, uint64(rep.Edges))
	dst = binary.AppendUvarint(dst, uint64(len(rep.Sets)))
	for _, s := range rep.Sets {
		dst = AppendSet(dst, s)
	}
	if rep.Counts == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = binary.AppendUvarint(dst, uint64(len(rep.Counts)))
	for _, c := range rep.Counts {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(c))
	}
	return dst
}

// DecodeRoundReply decodes a generation-round reply. Sets and Counts
// alias b.
func DecodeRoundReply(b []byte) (RoundReply, error) {
	r := reader{b: b}
	rep := RoundReply{
		Members: int64(r.uvarint("reply members")),
		Edges:   int64(r.uvarint("reply edges")),
	}
	nsets := r.uvarint("reply set count")
	if r.err == nil && nsets > uint64(len(r.b)) {
		// Each set payload costs at least its one length byte, so a count
		// beyond the remaining bytes is corrupt; reject before allocating.
		return rep, fmt.Errorf("wire: reply claims %d sets in %d bytes", nsets, len(r.b))
	}
	if r.err == nil {
		rep.Sets = make([][]byte, 0, nsets)
		for i := uint64(0); i < nsets && r.err == nil; i++ {
			n := r.uvarint("reply set length")
			rep.Sets = append(rep.Sets, r.bytes(n, "reply set payload"))
		}
	}
	flag := r.bytes(1, "reply counter flag")
	if r.err == nil && flag[0]&1 != 0 {
		n := r.uvarint("reply counter length")
		raw := r.bytes(8*n, "reply counter payload")
		if r.err == nil {
			rep.Counts = make([]int64, n)
			for i := range rep.Counts {
				rep.Counts[i] = int64(binary.LittleEndian.Uint64(raw[8*i:]))
			}
		}
	}
	return rep, r.done("round reply")
}

// DecodeSetMembers decodes one plain-coded set payload from a RoundReply
// into a freshly sized member slice.
func DecodeSetMembers(plain []byte) ([]int32, error) {
	count, err := compress.PlainCount(plain)
	if err != nil {
		return nil, err
	}
	return compress.DecodePlain(plain, make([]int32, 0, count))
}

// EncodeSeeds encodes a seed broadcast.
func EncodeSeeds(s Seeds) []byte {
	dst := binary.AppendUvarint(make([]byte, 0, 4*len(s.Seeds)+16), uint64(len(s.Seeds)))
	for _, v := range s.Seeds {
		dst = binary.AppendUvarint(dst, uint64(uint32(v)))
	}
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.Coverage))
}

// DecodeSeeds decodes a seed broadcast.
func DecodeSeeds(b []byte) (Seeds, error) {
	r := reader{b: b}
	n := r.uvarint("seeds count")
	if r.err == nil && n > uint64(len(r.b)) {
		return Seeds{}, fmt.Errorf("wire: seed broadcast claims %d seeds in %d bytes", n, len(r.b))
	}
	var s Seeds
	if r.err == nil {
		s.Seeds = make([]int32, 0, n)
		for i := uint64(0); i < n && r.err == nil; i++ {
			s.Seeds = append(s.Seeds, int32(uint32(r.uvarint("seed id"))))
		}
	}
	s.Coverage = math.Float64frombits(r.u64("seeds coverage"))
	return s, r.done("seeds")
}

// EncodeError encodes an in-protocol error reply.
func EncodeError(code, message string) []byte {
	return appendString(appendString(nil, code), message)
}

// DecodeError decodes an in-protocol error reply.
func DecodeError(b []byte) (code, message string, err error) {
	r := reader{b: b}
	code = r.string("error code")
	message = r.string("error message")
	return code, message, r.done("error")
}
