package wire

import (
	"bytes"
	"encoding/binary"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/compress"
)

// memConn is an in-memory net.Conn over a byte buffer: whatever is
// written can be read back. Deadlines are accepted and ignored.
type memConn struct {
	buf bytes.Buffer
}

func (m *memConn) Read(p []byte) (int, error)       { return m.buf.Read(p) }
func (m *memConn) Write(p []byte) (int, error)      { return m.buf.Write(p) }
func (m *memConn) Close() error                     { return nil }
func (m *memConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (m *memConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (m *memConn) SetDeadline(time.Time) error      { return nil }
func (m *memConn) SetReadDeadline(time.Time) error  { return nil }
func (m *memConn) SetWriteDeadline(time.Time) error { return nil }

func TestFrameRoundTrip(t *testing.T) {
	mc := &memConn{}
	var meter Meter
	c := NewConn(mc, time.Second, &meter)
	payload := []byte("the quick brown fox")
	if err := c.WriteFrame(MsgRound, payload); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	typ, got, err := c.ReadFrame()
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if typ != MsgRound || !bytes.Equal(got, payload) {
		t.Fatalf("round trip mismatch: type=%v payload=%q", typ, got)
	}
	sent, recv, msgs := meter.Totals()
	want := int64(headerSize + len(payload))
	if sent != want || recv != want || msgs != 2 {
		t.Fatalf("meter = (%d, %d, %d), want (%d, %d, 2)", sent, recv, msgs, want, want)
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	encode := func(payload []byte) []byte {
		mc := &memConn{}
		c := NewConn(mc, 0, nil)
		if err := c.WriteFrame(MsgSeeds, payload); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		return mc.buf.Bytes()
	}
	read := func(raw []byte) error {
		mc := &memConn{}
		mc.buf.Write(raw)
		_, _, err := NewConn(mc, 0, nil).ReadFrame()
		return err
	}

	base := encode([]byte("payload bytes here"))
	if err := read(base); err != nil {
		t.Fatalf("clean frame rejected: %v", err)
	}

	cases := []struct {
		name    string
		corrupt func([]byte)
		want    string
	}{
		{"magic", func(b []byte) { b[0] ^= 0xff }, "bad magic"},
		{"version", func(b []byte) { b[2] = Version + 1 }, "protocol version"},
		{"payload", func(b []byte) { b[headerSize+3] ^= 0x10 }, "checksum mismatch"},
		{"crc", func(b []byte) { b[8] ^= 0x01 }, "checksum mismatch"},
		{"length", func(b []byte) { binary.LittleEndian.PutUint32(b[4:8], 1<<30) }, "read seeds payload"},
	}
	for _, tc := range cases {
		raw := append([]byte(nil), base...)
		tc.corrupt(raw)
		err := read(raw)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s corruption: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestFrameLengthBound(t *testing.T) {
	c := NewConn(&memConn{}, 0, nil)
	c.SetMaxFrame(16)
	if err := c.WriteFrame(MsgGraph, make([]byte, 17)); err == nil {
		t.Fatal("oversized write accepted")
	}
}

func TestCallMapsRemoteError(t *testing.T) {
	mc := &memConn{}
	// Pre-load the reply the peer would have sent.
	reply := NewConn(mc, 0, nil)
	if err := reply.WriteFrame(MsgError, EncodeError("unknown_graph", "no such graph")); err != nil {
		t.Fatal(err)
	}
	pre := mc.buf.Bytes()
	mc2 := &memConn{}
	mc2.buf.Write(pre)
	c := NewConn(mc2, 0, nil)
	_, err := c.Call(MsgRound, EncodeRound(Round{Graph: "g"}), MsgRoundReply)
	var re *RemoteError
	if !errorsAs(err, &re) || re.Code != "unknown_graph" {
		t.Fatalf("Call error = %v, want RemoteError{unknown_graph}", err)
	}
}

func errorsAs(err error, target *(*RemoteError)) bool {
	re, ok := err.(*RemoteError)
	if ok {
		*target = re
	}
	return ok
}

func TestCodecRoundTrips(t *testing.T) {
	h, err := DecodeHello(EncodeHello(Hello{Tag: "root@127.0.0.1:9000"}))
	if err != nil || h.Tag != "root@127.0.0.1:9000" {
		t.Fatalf("hello: %+v, %v", h, err)
	}

	name, snap, err := DecodeGraph(EncodeGraph("rmat16", []byte{1, 2, 3, 4}))
	if err != nil || name != "rmat16" || !bytes.Equal(snap, []byte{1, 2, 3, 4}) {
		t.Fatalf("graph: %q %v %v", name, snap, err)
	}

	rd := Round{Graph: "g", Seed: 42, Lo: 1 << 33, Count: 4096, WantCounter: true}
	got, err := DecodeRound(EncodeRound(rd))
	if err != nil || got != rd {
		t.Fatalf("round: %+v, %v", got, err)
	}

	sets := [][]int32{{0, 5, 9}, {}, {7}, {1, 2, 3, 1 << 30}}
	rep := RoundReply{Members: 7, Edges: 123456}
	for _, s := range sets {
		rep.Sets = append(rep.Sets, compress.AppendPlain(nil, s))
	}
	rep.Counts = []int64{0, 3, 0, 0, 0, 1, 0, 0, 0, 2}
	dec, err := DecodeRoundReply(EncodeRoundReply(rep))
	if err != nil {
		t.Fatalf("round reply: %v", err)
	}
	if dec.Members != rep.Members || dec.Edges != rep.Edges || !reflect.DeepEqual(dec.Counts, rep.Counts) {
		t.Fatalf("round reply fields: %+v", dec)
	}
	for i, s := range sets {
		members, err := DecodeSetMembers(dec.Sets[i])
		if err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
		if len(members) == 0 && len(s) == 0 {
			continue
		}
		if !reflect.DeepEqual(members, s) {
			t.Fatalf("set %d: got %v want %v", i, members, s)
		}
	}

	// Counter-free reply.
	dec, err = DecodeRoundReply(EncodeRoundReply(RoundReply{Sets: rep.Sets}))
	if err != nil || dec.Counts != nil {
		t.Fatalf("counter-free reply: %+v, %v", dec, err)
	}

	sd := Seeds{Seeds: []int32{9, 0, 1 << 29}, Coverage: 0.875}
	gotSeeds, err := DecodeSeeds(EncodeSeeds(sd))
	if err != nil || !reflect.DeepEqual(gotSeeds.Seeds, sd.Seeds) || gotSeeds.Coverage != sd.Coverage {
		t.Fatalf("seeds: %+v, %v", gotSeeds, err)
	}

	code, msg, err := DecodeError(EncodeError("overloaded", "queue full"))
	if err != nil || code != "overloaded" || msg != "queue full" {
		t.Fatalf("error: %q %q %v", code, msg, err)
	}
}

func TestDecodersRejectTruncation(t *testing.T) {
	full := EncodeRoundReply(RoundReply{
		Members: 3,
		Edges:   9,
		Sets:    [][]byte{compress.AppendPlain(nil, []int32{1, 2, 3})},
		Counts:  []int64{1, 1, 1},
	})
	for i := 0; i < len(full); i++ {
		if _, err := DecodeRoundReply(full[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	if _, err := DecodeRoundReply(append(append([]byte(nil), full...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// FuzzWireFrame exercises both directions of the framing layer: (a)
// every (type, payload) writes and reads back identically, and (b)
// arbitrary byte streams never panic the reader and never yield a frame
// that a fresh write wouldn't have produced.
func FuzzWireFrame(f *testing.F) {
	f.Add(uint8(MsgRound), []byte("hello"))
	f.Add(uint8(MsgError), []byte{})
	f.Add(uint8(0xff), []byte{0x69, 0x77, 1, 1, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, typ uint8, payload []byte) {
		mc := &memConn{}
		c := NewConn(mc, 0, nil)
		if err := c.WriteFrame(MsgType(typ), payload); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		gotType, got, err := c.ReadFrame()
		if err != nil {
			t.Fatalf("ReadFrame after write: %v", err)
		}
		if gotType != MsgType(typ) || !bytes.Equal(got, payload) {
			t.Fatalf("round trip mismatch: %v %q", gotType, got)
		}

		// Feed the raw fuzz bytes straight into a reader: must not panic,
		// and any accepted frame must satisfy the header invariants.
		mc2 := &memConn{}
		mc2.buf.Write(payload)
		c2 := NewConn(mc2, 0, nil)
		c2.SetMaxFrame(1 << 20)
		if typ2, body, err := c2.ReadFrame(); err == nil {
			if typ2 == 0 && len(body) == 0 && len(payload) < headerSize {
				t.Fatal("reader accepted a short frame")
			}
		}

		// Structured decoders must be total over arbitrary input.
		_, _ = DecodeHello(payload)
		_, _, _ = DecodeGraph(payload)
		_, _ = DecodeRound(payload)
		if rep, err := DecodeRoundReply(payload); err == nil {
			for _, s := range rep.Sets {
				_, _ = DecodeSetMembers(s)
			}
		}
		_, _ = DecodeSeeds(payload)
		_, _, _ = DecodeError(payload)
	})
}
