// Package wire is the cluster transport of the networked distributed
// runtime (internal/dist): length-prefixed framed messages over TCP,
// CRC-checked payloads, per-frame read/write deadlines, and actual
// bytes-on-the-wire metering.
//
// A frame is
//
//	magic   uint16  little-endian 0x6977 ("iw")
//	version uint8   protocol version (Version)
//	type    uint8   message type (MsgType)
//	length  uint32  payload byte count
//	crc     uint32  CRC32-C of the payload
//	payload [length]byte
//
// The payload codecs live in codec.go; they serialize exactly the
// objects the simulated runtime already models — delta-varint RRR set
// lists (the internal/compress plain coding), dense occurrence
// counters, seed vectors, and .imsnap graph snapshots — so the measured
// wire volume is directly comparable to the modeled Comm accounting.
//
// Conn is not safe for concurrent use; callers serialize each
// request/reply exchange (internal/dist holds one mutex per peer).
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync/atomic"
	"time"
)

// Version is the protocol version carried by every frame. Peers reject
// frames from a different version at read time, so a mixed-version
// cluster fails loudly at the handshake instead of misdecoding payloads.
const Version = 1

const (
	magic      = 0x6977 // "iw", little-endian
	headerSize = 12
	// MaxFrameBytes bounds one frame's payload so a corrupt or hostile
	// length field cannot drive an arbitrary allocation. Large enough
	// for a multi-gigabyte-graph snapshot broadcast; tighten per conn
	// with Conn.SetMaxFrame if the deployment never ships graphs.
	MaxFrameBytes = 1 << 31
)

// MsgType identifies a frame's payload codec.
type MsgType uint8

const (
	// MsgHello opens a session (root → worker): protocol version check
	// plus a free-form tag naming the dialer.
	MsgHello MsgType = iota + 1
	// MsgHelloAck confirms the session (worker → root).
	MsgHelloAck
	// MsgGraph ships a named graph as a .imsnap snapshot payload.
	MsgGraph
	// MsgGraphAck confirms a graph was decoded and registered.
	MsgGraphAck
	// MsgRound asks the receiving rank to generate a slot range.
	MsgRound
	// MsgRoundReply carries the rank's serialized sets (and, when
	// requested, its dense occurrence counter) back to the root.
	MsgRoundReply
	// MsgSeeds broadcasts a selection round's seed set and coverage.
	MsgSeeds
	// MsgSeedsAck confirms a seed broadcast.
	MsgSeedsAck
	// MsgError reports a failure instead of the expected reply.
	MsgError
)

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgHelloAck:
		return "hello_ack"
	case MsgGraph:
		return "graph"
	case MsgGraphAck:
		return "graph_ack"
	case MsgRound:
		return "round"
	case MsgRoundReply:
		return "round_reply"
	case MsgSeeds:
		return "seeds"
	case MsgSeedsAck:
		return "seeds_ack"
	case MsgError:
		return "error"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Meter accumulates actual bytes-on-the-wire totals — frame headers
// included, because the interconnect carries them too. Safe for
// concurrent use; read with Totals.
type Meter struct {
	bytesSent     atomic.Int64
	bytesReceived atomic.Int64
	msgsSent      atomic.Int64
	msgsReceived  atomic.Int64
}

// Totals returns the accumulated (bytesSent, bytesReceived, messages)
// where messages counts sent and received frames together — matching
// the simulated Comm convention that every message is booked once.
func (m *Meter) Totals() (bytesSent, bytesReceived, messages int64) {
	return m.bytesSent.Load(), m.bytesReceived.Load(), m.msgsSent.Load() + m.msgsReceived.Load()
}

// Conn wraps one TCP connection with framing, checksums, deadlines, and
// metering. Not safe for concurrent use.
type Conn struct {
	c            net.Conn
	readTimeout  time.Duration
	writeTimeout time.Duration
	meter        *Meter
	maxFrame     int64
	hdr          [headerSize]byte
}

// NewConn wraps c. timeout bounds each frame read and write (0 means no
// deadline); meter, when non-nil, receives the measured byte totals.
func NewConn(c net.Conn, timeout time.Duration, meter *Meter) *Conn {
	return &Conn{c: c, readTimeout: timeout, writeTimeout: timeout, meter: meter, maxFrame: MaxFrameBytes}
}

// SetReadTimeout overrides the per-frame read deadline (0 disables it).
// Servers waiting for the next request on a long-lived connection
// disable the read deadline while idle; writes keep theirs.
func (c *Conn) SetReadTimeout(d time.Duration) { c.readTimeout = d }

// SetMaxFrame tightens the per-frame payload bound.
func (c *Conn) SetMaxFrame(n int64) {
	if n > 0 {
		c.maxFrame = n
	}
}

// RemoteAddr names the peer for error reporting.
func (c *Conn) RemoteAddr() string { return c.c.RemoteAddr().String() }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// WriteFrame sends one frame under the write deadline and meters it.
func (c *Conn) WriteFrame(t MsgType, payload []byte) error {
	if int64(len(payload)) > c.maxFrame {
		return fmt.Errorf("wire: frame payload %d bytes exceeds limit %d", len(payload), c.maxFrame)
	}
	if c.writeTimeout > 0 {
		if err := c.c.SetWriteDeadline(time.Now().Add(c.writeTimeout)); err != nil {
			return err
		}
	}
	hdr := c.hdr[:]
	binary.LittleEndian.PutUint16(hdr[0:2], magic)
	hdr[2] = Version
	hdr[3] = byte(t)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.Checksum(payload, castagnoli))
	if _, err := c.c.Write(hdr); err != nil {
		return fmt.Errorf("wire: write %v header: %w", t, err)
	}
	if len(payload) > 0 {
		if _, err := c.c.Write(payload); err != nil {
			return fmt.Errorf("wire: write %v payload: %w", t, err)
		}
	}
	if c.meter != nil {
		c.meter.bytesSent.Add(int64(headerSize + len(payload)))
		c.meter.msgsSent.Add(1)
	}
	return nil
}

// ReadFrame receives one frame under the read deadline, verifies magic,
// version, and checksum, and meters it. The returned payload is freshly
// allocated and owned by the caller.
func (c *Conn) ReadFrame() (MsgType, []byte, error) {
	if c.readTimeout > 0 {
		if err := c.c.SetReadDeadline(time.Now().Add(c.readTimeout)); err != nil {
			return 0, nil, err
		}
	}
	hdr := c.hdr[:]
	if _, err := io.ReadFull(c.c, hdr); err != nil {
		return 0, nil, fmt.Errorf("wire: read header: %w", err)
	}
	if m := binary.LittleEndian.Uint16(hdr[0:2]); m != magic {
		return 0, nil, fmt.Errorf("wire: bad magic 0x%04x", m)
	}
	if v := hdr[2]; v != Version {
		return 0, nil, fmt.Errorf("wire: protocol version %d, want %d", v, Version)
	}
	t := MsgType(hdr[3])
	length := int64(binary.LittleEndian.Uint32(hdr[4:8]))
	if length > c.maxFrame {
		return 0, nil, fmt.Errorf("wire: frame payload %d bytes exceeds limit %d", length, c.maxFrame)
	}
	want := binary.LittleEndian.Uint32(hdr[8:12])
	payload := make([]byte, length)
	if _, err := io.ReadFull(c.c, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: read %v payload: %w", t, err)
	}
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return 0, nil, fmt.Errorf("wire: %v payload checksum mismatch (got %08x want %08x)", t, got, want)
	}
	if c.meter != nil {
		c.meter.bytesReceived.Add(int64(headerSize + length))
		c.meter.msgsReceived.Add(1)
	}
	return t, payload, nil
}

// Call performs one request/reply exchange, mapping an MsgError reply to
// a Go error and rejecting replies of an unexpected type.
func (c *Conn) Call(req MsgType, payload []byte, want MsgType) ([]byte, error) {
	if err := c.WriteFrame(req, payload); err != nil {
		return nil, err
	}
	t, body, err := c.ReadFrame()
	if err != nil {
		return nil, err
	}
	if t == MsgError {
		code, msg, derr := DecodeError(body)
		if derr != nil {
			return nil, fmt.Errorf("wire: undecodable error reply to %v", req)
		}
		return nil, &RemoteError{Code: code, Message: msg}
	}
	if t != want {
		return nil, fmt.Errorf("wire: reply to %v has type %v, want %v", req, t, want)
	}
	return body, nil
}

// RemoteError is a failure the remote side reported in-protocol (as
// opposed to a transport failure).
type RemoteError struct {
	Code    string
	Message string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("wire: remote error %s: %s", e.Code, e.Message)
}
