package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 1234567 from the public-domain C
	// implementation of SplitMix64.
	s := NewSplitMix64(1234567)
	want := []uint64{
		0x599ed017fb08fc85, 0x2c73f08458540fa5, 0x883ebce5a3f27c77,
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("SplitMix64(1234567) step %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestXoshiroDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestXoshiroSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	seen := map[uint64]int{}
	for w := 0; w < 16; w++ {
		s := NewStream(7, w)
		for i := 0; i < 64; i++ {
			v := s.Uint64()
			if prev, dup := seen[v]; dup {
				t.Fatalf("streams %d and %d emitted identical value %#x", prev, w, v)
			}
			seen[v] = w
		}
	}
}

func TestStreamReproducible(t *testing.T) {
	a := NewStream(99, 3)
	b := NewStream(99, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("stream not reproducible at step %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	x := New(5)
	for i := 0; i < 100000; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	x := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += x.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want about 0.5", mean)
	}
}

func TestUint32nBounds(t *testing.T) {
	x := New(17)
	for _, n := range []uint32{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 2000; i++ {
			if v := x.Uint32n(n); v >= n {
				t.Fatalf("Uint32n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint32nUniform(t *testing.T) {
	x := New(23)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[x.Uint32n(n)]++
	}
	want := float64(draws) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d has %d draws, want about %.0f", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBernoulliEdges(t *testing.T) {
	x := New(3)
	for i := 0; i < 100; i++ {
		if x.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !x.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	x := New(31)
	const p, n = 0.3, 100000
	hits := 0
	for i := 0; i < n; i++ {
		if x.Bernoulli(p) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) rate = %v", p, rate)
	}
}

func TestJumpDisjoint(t *testing.T) {
	a := New(77)
	b := New(77)
	b.Jump()
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[a.Uint64()] = true
	}
	for i := 0; i < 1000; i++ {
		if seen[b.Uint64()] {
			t.Fatalf("jumped stream collided with base stream at step %d", i)
		}
	}
}

func TestIntnRangeProperty(t *testing.T) {
	x := New(41)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := x.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroStateRecovery(t *testing.T) {
	var x Xoshiro256
	x.Seed(0) // SplitMix64(0) yields nonzero words, but guard anyway
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		t.Fatal("seeded generator has all-zero state")
	}
	out := x.Uint64()
	_ = out
}

func BenchmarkUint64(b *testing.B) {
	x := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = x.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	x := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = x.Float64()
	}
	_ = sink
}

func TestSeedStreamMatchesNewStream(t *testing.T) {
	var x Xoshiro256
	for _, slot := range []int{0, 1, 7, 123456} {
		fresh := NewStream(99, slot)
		x.SeedStream(99, slot) // in-place reuse across slots
		for i := 0; i < 16; i++ {
			if a, b := fresh.Uint64(), x.Uint64(); a != b {
				t.Fatalf("slot %d draw %d: SeedStream %d != NewStream %d", slot, i, b, a)
			}
		}
	}
}
