// Package rng provides small, fast, deterministic pseudo-random number
// generators for parallel workloads.
//
// The IMM sampling phase draws billions of random numbers from many
// workers at once. Sharing math/rand's global source would serialize the
// workers on its lock and destroy reproducibility, so each worker owns an
// independent xoshiro256** stream seeded through SplitMix64, following the
// recommendation of the xoshiro authors. Streams with distinct seeds are
// statistically independent for our purposes and a (seed, worker) pair
// always yields the same sequence, which keeps every experiment in this
// repository replayable.
package rng

import "math"

// SplitMix64 is the seeding generator recommended for initializing
// xoshiro state. It is also a decent standalone 64-bit generator.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoshiro256 implements the xoshiro256** 1.0 generator of Blackman and
// Vigna. It has a 2^256-1 period and passes BigCrush; the zero value is
// invalid and must be seeded through New or Seed.
type Xoshiro256 struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64, per the
// reference implementation's seeding procedure.
func New(seed uint64) *Xoshiro256 {
	var x Xoshiro256
	x.Seed(seed)
	return &x
}

// NewStream returns the worker'th independent stream for a base seed.
// Distinct workers receive generators whose state words are derived from
// disjoint SplitMix64 sequences, so their outputs do not overlap in
// practice.
func NewStream(seed uint64, worker int) *Xoshiro256 {
	var x Xoshiro256
	x.SeedStream(seed, worker)
	return &x
}

// SeedStream re-initializes x in place to the exact state NewStream
// (seed, worker) constructs. Hot paths that draw one short stream per
// work item (the fused generation kernel seeds one per RRR slot) reuse
// a single generator through this instead of allocating per item.
func (x *Xoshiro256) SeedStream(seed uint64, worker int) {
	sm := NewSplitMix64(seed ^ (0xa0761d6478bd642f * (uint64(worker) + 1)))
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	x.ensureNonZero()
}

// Seed resets the generator state from seed.
func (x *Xoshiro256) Seed(seed uint64) {
	sm := NewSplitMix64(seed)
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	x.ensureNonZero()
}

func (x *Xoshiro256) ensureNonZero() {
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15 // all-zero state is the one forbidden point
	}
}

func rotl(v uint64, k uint) uint64 { return v<<k | v>>(64-k) }

// Uint64 returns the next 64 random bits.
func (x *Xoshiro256) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 random bits,
// using the standard shift-and-scale construction.
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform value in [0, 1) with 24 random bits.
func (x *Xoshiro256) Float32() float32 {
	return float32(x.Uint64()>>40) / (1 << 24)
}

// Uint32n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method, which avoids the modulo bias of naive `% n` and the
// division of the classic bounded draw.
func (x *Xoshiro256) Uint32n(n uint32) uint32 {
	if n == 0 {
		panic("rng: Uint32n with n == 0")
	}
	v := uint32(x.Uint64())
	prod := uint64(v) * uint64(n)
	low := uint32(prod)
	if low < n {
		thresh := -n % n
		for low < thresh {
			v = uint32(x.Uint64())
			prod = uint64(v) * uint64(n)
			low = uint32(prod)
		}
	}
	return uint32(prod >> 32)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	if n <= math.MaxUint32 {
		return int(x.Uint32n(uint32(n)))
	}
	// Rare large-range path: rejection sample over 64 bits.
	mask := uint64(1)<<bitsFor(uint64(n)) - 1
	for {
		v := x.Uint64() & mask
		if v < uint64(n) {
			return int(v)
		}
	}
}

// Bernoulli reports true with probability p.
func (x *Xoshiro256) Bernoulli(p float64) bool {
	switch {
	case p <= 0:
		return false
	case p >= 1:
		return true
	}
	return x.Float64() < p
}

// Jump advances the generator by 2^128 steps, equivalent to 2^128 calls
// to Uint64. It can be used to carve non-overlapping subsequences out of
// a single seed when stream independence must be provable rather than
// statistical.
func (x *Xoshiro256) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= x.s[0]
				s1 ^= x.s[1]
				s2 ^= x.s[2]
				s3 ^= x.s[3]
			}
			x.Uint64()
		}
	}
	x.s[0], x.s[1], x.s[2], x.s[3] = s0, s1, s2, s3
}

func bitsFor(v uint64) uint {
	var b uint
	for v != 0 {
		v >>= 1
		b++
	}
	return b
}
