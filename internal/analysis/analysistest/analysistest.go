// Package analysistest runs one analyzer over testdata packages and
// compares its findings against // want annotations — the same
// contract as golang.org/x/tools/go/analysis/analysistest, rebuilt on
// the repo's stdlib-only framework.
//
// Layout mirrors the x/tools harness: testdata/src/<pkg>/... holds
// ordinary compilable Go files (violations included — they must still
// type-check). A line expecting a diagnostic carries a trailing
// comment of one or more quoted regular expressions:
//
//	for k := range m { // want `map iteration order`
//
// Each reported diagnostic must match an unconsumed expectation on its
// exact file and line, and every expectation must be consumed.
// Because findings flow through the checker, //imlint:ignore
// suppression is active in tests too — a file can assert the
// round-trip by carrying a violation, a suppression, and no want.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/checker"
	"repro/internal/analysis/load"
)

// wantRe extracts the quoted regexps of a // want comment. Both
// backquotes and double quotes delimit.
var wantRe = regexp.MustCompile("`[^`]*`|\"[^\"]*\"")

// Run loads testdata/src/<pkg> for each named package, applies the
// analyzer through the checker (suppressions active, no scope), and
// diffs findings against // want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgNames ...string) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module imlinttest\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(testdata, "src")
	var patterns []string
	for _, name := range pkgNames {
		if err := copyTree(filepath.Join(src, name), filepath.Join(dir, name)); err != nil {
			t.Fatalf("copying testdata package %s: %v", name, err)
		}
		patterns = append(patterns, "./"+name+"/...")
	}
	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages loaded from %s", testdata)
	}
	findings, err := checker.Run(pkgs, []*analysis.Analyzer{a}, nil)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, pkgs)
	for _, f := range findings {
		key := posKey{file: f.Pos.Filename, line: f.Pos.Line}
		matched := false
		for i, w := range wants[key] {
			if w.consumed || !w.re.MatchString(f.Message) {
				continue
			}
			wants[key][i].consumed = true
			matched = true
			break
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, f)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.consumed {
				t.Errorf("%s: %s:%d: expected diagnostic matching %q was not reported", a.Name, key.file, key.line, w.re)
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	re       *regexp.Regexp
	consumed bool
}

// collectWants scans every loaded file for // want comments.
func collectWants(t *testing.T, pkgs []*load.Package) map[posKey][]want {
	t.Helper()
	wants := make(map[posKey][]want)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "// want ")
					if idx < 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, q := range wantRe.FindAllString(c.Text[idx+len("// want "):], -1) {
						re, err := regexp.Compile(q[1 : len(q)-1])
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, q, err)
						}
						key := posKey{file: pos.Filename, line: pos.Line}
						wants[key] = append(wants[key], want{re: re})
					}
				}
			}
		}
	}
	return wants
}

func copyTree(from, to string) error {
	return filepath.Walk(from, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(from, path)
		if err != nil {
			return err
		}
		dst := filepath.Join(to, rel)
		if info.IsDir() {
			return os.MkdirAll(dst, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(dst, data, 0o644)
	})
}
