// Package analysis is the repo's static-invariant framework: a
// deliberately small, stdlib-only mirror of the
// golang.org/x/tools/go/analysis API (Analyzer, Pass, Diagnostic)
// that cmd/imlint drives over the module.
//
// Why not depend on x/tools directly? The build environment pins the
// module graph to the standard library (no network module fetches),
// and the five invariant passes below need nothing the stdlib
// go/ast + go/types stack doesn't already provide: full type
// information comes from `go list -export` export data (see the load
// subpackage), and none of the passes use cross-package facts. The
// API shape is kept deliberately congruent with x/tools so the passes
// port mechanically if the dependency ever lands; until then go.mod
// stays pinned to stdlib-only and the tool version is the module
// itself.
//
// The suite encodes invariants prose review keeps missing under
// refactor pressure (see DESIGN.md "Static invariant enforcement"):
//
//   - determinism: kernel/codec packages must not let map iteration
//     order or ambient entropy (math/rand globals, wall-clock-as-seed)
//     reach serialization, hashing, or returned orderings.
//   - lockcheck: *Locked functions document "caller holds the lock";
//     they must not re-acquire it, and their call sites must be
//     dominated by the acquisition they document.
//   - envelope: HTTP handlers fail through the one JSON error
//     envelope, never raw http.Error / WriteHeader(4xx|5xx).
//   - endian: codec packages are little-endian only and CRC with the
//     Castagnoli polynomial only.
//   - meteredio: cluster I/O flows through wire.Conn / wire.Meter so
//     measured-communication accounting cannot drift from reality.
//
// A diagnostic is suppressed by an
//
//	//imlint:ignore <pass> <reason>
//
// comment on the flagged line or the line directly above it; the
// reason is mandatory and empty reasons are themselves diagnosed.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant-checking pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and in
	// //imlint:ignore comments. Lower-case, no spaces.
	Name string

	// Doc is the one-paragraph description `imlint help` prints.
	Doc string

	// Run applies the pass to one package and reports findings
	// through pass.Report. The returned error aborts the whole run
	// (loader-level breakage), not an individual finding.
	Run func(pass *Pass) error
}

// A Pass is the interface between one Analyzer and one package being
// checked: the syntax trees, the type information, and the Report
// sink.
type Pass struct {
	Analyzer *Analyzer

	// Fset maps token.Pos values in Files to file positions.
	Fset *token.FileSet

	// Files holds the package's non-test syntax trees, parsed with
	// comments.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo carries Types, Defs, Uses and Selections for every
	// expression in Files.
	TypesInfo *types.Info

	// Report delivers one finding. The checker attaches the analyzer
	// name and applies //imlint:ignore suppression.
	Report func(Diagnostic)
}

// Reportf is the convenience formatter every pass uses.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: sprintf(format, args...)})
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string

	// Analyzer is filled in by the checker so formatted output and
	// suppression matching know which pass spoke.
	Analyzer string
}
