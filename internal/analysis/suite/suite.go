// Package suite assembles the repo's invariant analyzers and the
// package scope each one patrols. cmd/imlint and the CI lint job are
// thin shells over this package, so "what does the linter check,
// where" has exactly one definition.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/checker"
	"repro/internal/analysis/passes/determinism"
	"repro/internal/analysis/passes/endian"
	"repro/internal/analysis/passes/envelope"
	"repro/internal/analysis/passes/lockcheck"
	"repro/internal/analysis/passes/meteredio"
)

// Analyzers returns the five invariant passes in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		endian.Analyzer,
		envelope.Analyzer,
		lockcheck.Analyzer,
		meteredio.Analyzer,
	}
}

// DefaultScope maps each pass to the packages whose contracts it
// encodes (import-path suffixes; see checker.Scope):
//
//   - determinism patrols the kernel and codec packages whose output
//     must replay byte-identically, plus the serving layers whose JSON
//     listings must be stably ordered.
//   - lockcheck is unscoped: the *Locked convention is repo-wide.
//   - envelope patrols the two HTTP surfaces (nodes and router).
//   - endian patrols the two codec packages (.imsnap/.imdelta/.impool
//     and the wire protocol).
//   - meteredio patrols the wire transport and its cluster consumer.
func DefaultScope() checker.Scope {
	return checker.Scope{
		"determinism": {
			"internal/imm", "internal/rrr", "internal/diffusion",
			"internal/dist", "internal/ingest", "internal/graph",
			"internal/wire", "internal/serve", "internal/route",
		},
		"lockcheck": nil, // everywhere
		"envelope":  {"internal/serve", "internal/route"},
		"endian":    {"internal/ingest", "internal/wire"},
		"meteredio": {"internal/wire", "internal/dist"},
	}
}
