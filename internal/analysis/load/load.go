// Package load turns Go package patterns into type-checked syntax
// trees using only the standard library and the go command.
//
// The approach is the one `go vet` itself uses: `go list -export`
// compiles (or reuses from the build cache) every package in the
// dependency graph and reports the export-data file of each, and the
// stdlib gc importer (go/importer.ForCompiler with a lookup function)
// resolves imports from those files. Source is parsed and type-checked
// only for the packages actually being linted; dependencies — stdlib
// included — are consumed as export data, which keeps a whole-module
// load under a second and works fully offline.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one type-checked root package (a package matched by the
// load patterns, as opposed to a dependency consumed as export data).
type Package struct {
	PkgPath string
	Name    string
	Dir     string

	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listEntry mirrors the `go list -json` fields the loader consumes.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Packages loads, parses and type-checks every non-test package
// matching patterns, with dir as the working directory for the go
// command. The returned slice follows `go list` order, so repeated
// runs over an unchanged tree see identical package and diagnostic
// order.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list: %v\n%s", err, stderr.Bytes())
	}

	byPath := make(map[string]*listEntry)
	var order []*listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		ent := e
		byPath[e.ImportPath] = &ent
		order = append(order, &ent)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := byPath[path]
		if !ok || e.Export == "" {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(e.Export)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, e := range order {
		if e.Standard || e.DepOnly {
			continue
		}
		if e.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", e.ImportPath, e.Error.Err)
		}
		if len(e.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range e.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("load: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(e.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("load: type-checking %s: %v", e.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   e.ImportPath,
			Name:      e.Name,
			Dir:       e.Dir,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}
