// Package a is the envelope pass's fixture: handlers that bypass the
// JSON error envelope versus the idioms that stay legal.
package a

import (
	"encoding/json"
	"net/http"
)

// plainError uses the stdlib helper: positive.
func plainError(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `http.Error bypasses the JSON error envelope`
}

// rawNamedStatus writes a named error constant: positive, and the
// message carries the resolved code.
func rawNamedStatus(w http.ResponseWriter) {
	w.WriteHeader(http.StatusInternalServerError) // want `raw WriteHeader\(500\) bypasses the JSON error envelope`
}

// rawLiteralStatus writes an integer literal: positive.
func rawLiteralStatus(w http.ResponseWriter) {
	w.WriteHeader(404) // want `raw WriteHeader\(404\) bypasses the JSON error envelope`
}

// created writes a success status: negative (only 4xx/5xx bypass the
// error envelope).
func created(w http.ResponseWriter) {
	w.WriteHeader(http.StatusCreated)
}

// forwarded relays a backend's status verbatim: negative (the value is
// not a constant; the proxied body is already enveloped upstream).
func forwarded(w http.ResponseWriter, backendStatus int) {
	w.WriteHeader(backendStatus)
}

// writeErrorEnvelope is the envelope implementation itself: its raw
// WriteHeader is the point, exempted by the directive.
//
//imlint:envelope-writer
func writeErrorEnvelope(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	if status == 0 {
		status = 500
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]string{"code": code, "message": msg},
	})
}

// enveloped routes through the shared writer: negative.
func enveloped(w http.ResponseWriter) {
	writeErrorEnvelope(w, 404, "not_found", "no such graph")
}

// suppressed pins the suppression round-trip: silent.
func suppressed(w http.ResponseWriter) {
	http.Error(w, "pprof passthrough", 503) //imlint:ignore envelope fixture pinning the suppression round-trip
}
