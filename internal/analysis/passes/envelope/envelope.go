// Package envelope enforces the HTTP error contract of the serving
// surface: every failure a handler emits goes through the one shared
// JSON envelope — {"error":{"code":...,"message":...}} — so clients,
// the sharding router, and the smoke tests can rely on a single error
// shape across the whole fleet.
//
// Two constructs bypass the envelope and are flagged:
//
//   - http.Error(w, ...): writes text/plain with no code field.
//   - w.WriteHeader(<constant 4xx/5xx>): a raw error status whose body
//     (if any) is whatever the handler writes next, not the envelope.
//
// Forwarding a backend's status verbatim (w.WriteHeader(resp.status))
// stays legal because the value is not a constant — the proxied body
// is already enveloped by the node that produced it. The function that
// implements the envelope itself is declared with
//
//	//imlint:envelope-writer
//
// on its doc comment, which exempts its own raw writes.
package envelope

import (
	"go/ast"
	"go/constant"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "envelope",
	Doc:  "handlers must emit errors through the shared JSON envelope, never http.Error or raw 4xx/5xx WriteHeader",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, ok := analysis.FuncDocHasDirective(fn, "envelope-writer"); ok {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if analysis.IsPkgFunc(pass.TypesInfo, call, "net/http", "Error") {
			pass.Reportf(call.Pos(), "http.Error bypasses the JSON error envelope; use the shared envelope writer (serve.WriteErrorEnvelope)")
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "WriteHeader" || len(call.Args) != 1 {
			return true
		}
		tv, ok := pass.TypesInfo.Types[call.Args[0]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
			return true
		}
		if code, ok := constant.Int64Val(tv.Value); ok && code >= 400 && code <= 599 {
			pass.Reportf(call.Pos(), "raw WriteHeader(%d) bypasses the JSON error envelope; use the shared envelope writer (serve.WriteErrorEnvelope)", code)
		}
		return true
	})
}
