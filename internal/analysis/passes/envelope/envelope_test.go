package envelope_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/envelope"
)

func TestEnvelope(t *testing.T) {
	analysistest.Run(t, "testdata", envelope.Analyzer, "a")
}
