package endian_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/endian"
)

func TestEndian(t *testing.T) {
	analysistest.Run(t, "testdata", endian.Analyzer, "a")
}
