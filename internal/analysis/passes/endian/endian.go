// Package endian enforces the codec contracts of the .imsnap /
// .imdelta / .impool formats and the wire protocol: the byte order is
// little-endian everywhere, checksums are CRC32 with the Castagnoli
// polynomial everywhere, and functions that write sections compute a
// checksum.
//
// Three checks:
//
//  1. Any use of binary.BigEndian or binary.NativeEndian is flagged.
//     The on-disk and on-wire formats are defined as little-endian;
//     NativeEndian would make snapshots non-portable between hosts,
//     and a single BigEndian field silently corrupts every CRC that
//     covers it.
//  2. Any use of the IEEE or Koopman CRC32 polynomial — crc32.IEEE,
//     crc32.NewIEEE, crc32.ChecksumIEEE, crc32.IEEETable, or a
//     crc32.MakeTable argument other than crc32.Castagnoli — is
//     flagged. Mixing polynomials between writer and reader produces
//     checksums that never match; Castagnoli (hardware-accelerated
//     SSE4.2/ARMv8) is the repo-wide choice.
//  3. A writer function — name starting with "write"/"Write", taking
//     an io.Writer, and actually calling Write — must reference a
//     CRC32 operation or table, so a new section writer cannot land
//     without checksum coverage. Writers whose checksums are computed
//     by a sibling (payload.writeTo / payload.crc) or that emit
//     padding outside CRC coverage carry an //imlint:ignore endian
//     suppression explaining exactly that.
package endian

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "endian",
	Doc:  "codec packages are little-endian only, CRC32-Castagnoli only, and section writers must checksum",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		checkByteOrderAndPolynomial(pass, f)
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkWriterHasCRC(pass, fn)
			}
		}
	}
	return nil
}

// forbiddenCRCNames are hash/crc32 identifiers that hard-code a
// non-Castagnoli polynomial.
var forbiddenCRCNames = map[string]bool{
	"IEEE": true, "IEEETable": true, "NewIEEE": true, "ChecksumIEEE": true,
	"Koopman": true,
}

func checkByteOrderAndPolynomial(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			obj := pass.TypesInfo.Uses[n.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "encoding/binary":
				if obj.Name() == "BigEndian" || obj.Name() == "NativeEndian" {
					pass.Reportf(n.Pos(), "binary.%s in a codec package; the .imsnap/.impool/wire formats are defined as little-endian", obj.Name())
				}
			case "hash/crc32":
				if forbiddenCRCNames[obj.Name()] {
					pass.Reportf(n.Pos(), "crc32.%s uses a non-Castagnoli polynomial; codec checksums are CRC32-Castagnoli everywhere", obj.Name())
				}
			}
		case *ast.CallExpr:
			if analysis.IsPkgFunc(pass.TypesInfo, n, "hash/crc32", "MakeTable") && len(n.Args) == 1 {
				if sel, ok := n.Args[0].(*ast.SelectorExpr); ok {
					if obj := pass.TypesInfo.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "hash/crc32" {
						// crc32.Castagnoli is the contract; any other
						// crc32.* polynomial constant was already
						// flagged by the selector check above.
						return true
					}
				}
				pass.Reportf(n.Pos(), "crc32.MakeTable with a non-Castagnoli polynomial; codec checksums are CRC32-Castagnoli everywhere")
			}
		}
		return true
	})
}

// checkWriterHasCRC flags section-writer functions with no checksum
// reference.
func checkWriterHasCRC(pass *analysis.Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	if !strings.HasPrefix(name, "write") && !strings.HasPrefix(name, "Write") {
		return
	}
	if !hasWriterParam(pass, fn) || !callsWrite(fn.Body) {
		return
	}
	if referencesCRC(pass, fn.Body) {
		return
	}
	pass.Reportf(fn.Pos(), "%s writes to an io.Writer but never touches a CRC32 checksum; every codec section write pairs with a CRC32-Castagnoli update", name)
}

func hasWriterParam(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	for _, field := range fn.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "io" && obj.Name() == "Writer" {
				return true
			}
		}
	}
	return false
}

func callsWrite(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && strings.HasPrefix(sel.Sel.Name, "Write") {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// referencesCRC reports whether body mentions any hash/crc32 object or
// any value whose type involves crc32.Table (the cached package-level
// castagnoli table).
func referencesCRC(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return !found
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return !found
		}
		if obj.Pkg() != nil && obj.Pkg().Path() == "hash/crc32" {
			found = true
			return false
		}
		if t := obj.Type(); t != nil && strings.Contains(t.String(), "hash/crc32.Table") {
			found = true
			return false
		}
		return true
	})
	return found
}
