// Package a is the endian pass's fixture: byte-order and CRC32
// polynomial contracts for the codec packages.
package a

import (
	"encoding/binary"
	"hash/crc32"
	"io"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// writeHeader is the blessed shape — little-endian fields, Castagnoli
// checksum: negative.
func writeHeader(w io.Writer, magic uint32, n uint64) error {
	var buf [12]byte
	binary.LittleEndian.PutUint32(buf[0:4], magic)
	binary.LittleEndian.PutUint64(buf[4:12], n)
	sum := crc32.Checksum(buf[:], castagnoli)
	_ = sum
	_, err := w.Write(buf[:])
	return err
}

// writeRaw writes with no checksum and in big-endian order: two
// positives, one per broken contract.
func writeRaw(w io.Writer, n uint64) error { // want `writeRaw writes to an io.Writer but never touches a CRC32 checksum`
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], n) // want `binary.BigEndian in a codec package`
	_, err := w.Write(buf[:])
	return err
}

// sumIEEE uses the wrong polynomial: positive.
func sumIEEE(b []byte) uint32 {
	return crc32.ChecksumIEEE(b) // want `crc32.ChecksumIEEE uses a non-Castagnoli polynomial`
}

// tableLiteral smuggles the IEEE polynomial in as a literal: positive
// (the MakeTable check, since no crc32 selector names it).
var tableLiteral = crc32.MakeTable(0xedb88320) // want `crc32.MakeTable with a non-Castagnoli polynomial`

// nativeOrder would make snapshots non-portable: positive.
func nativeOrder(b []byte) uint64 {
	return binary.NativeEndian.Uint64(b) // want `binary.NativeEndian in a codec package`
}

// readHeader only reads; the writer-CRC rule does not apply: negative.
func readHeader(b []byte) uint32 {
	return binary.LittleEndian.Uint32(b)
}

// writePadding emits alignment bytes outside CRC coverage — the
// documented by-design exception, suppressed with a reason: silent.
//
//imlint:ignore endian padding bytes are outside CRC coverage by format design
func writePadding(w io.Writer, n int) error {
	pad := make([]byte, n)
	_, err := w.Write(pad)
	return err
}
