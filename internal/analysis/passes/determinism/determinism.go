// Package determinism flags constructs that let nondeterminism leak
// into code whose entire contract is byte-identical replay: map
// iteration order reaching ordering-sensitive sinks, math/rand global
// state, and the wall clock used as data.
//
// The repo's load-bearing claim (paper §parallel-equivalence, DESIGN
// "Determinism") is that every kernel, rank count, worker count, warm
// pool, repair and thaw produces the same seed sets as the sequential
// reference. The differential and fuzz tests catch violations after
// the fact; this pass catches the three constructs that cause nearly
// all of them at compile time:
//
//  1. `for ... range m` over a map whose loop body feeds an
//     ordering-sensitive sink — a Write/Encode/Fprint/hash call, a
//     channel send, or an append whose target is never subsequently
//     sorted. Aggregations (counters, min/max, building another map)
//     are order-insensitive and stay clean, as does the canonical
//     collect-then-sort idiom.
//  2. Any use of math/rand (or math/rand/v2) package-level functions.
//     All sampling must flow through internal/rng's slot-indexed
//     streams; explicit constructors (rand.New, rand.NewSource, ...)
//     are tolerated because deterministic code seeds them from fixed
//     values — seeding them from the clock is caught by rule 3.
//  3. The wall clock converted to a number: time.Now().UnixNano() and
//     friends. Bare time.Now() stays legal — duration measurement for
//     Result timing fields is fine — but the instant's numeric value
//     is entropy and must never become a seed, an ID, or payload.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "flag map-iteration order, math/rand globals, and clock-derived values reaching deterministic kernels",
	Run:  run,
}

// sinkMethods are call names whose argument order is observable:
// serialization, hashing, and stream output.
var sinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "EncodeToken": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Update": true, "Checksum": true, "Sum": true, "Sum32": true, "Sum64": true,
}

// randConstructors are the math/rand names that build explicit,
// seedable state and therefore stay legal.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
	"Rand": true, "Source": true, "Source64": true, "Zipf": true,
	"PCG": true, "ChaCha8": true,
}

// clockToNumber are the time.Time methods that turn an instant into a
// plain number — the wall clock escaping as data.
var clockToNumber = map[string]bool{
	"Unix": true, "UnixMilli": true, "UnixMicro": true, "UnixNano": true,
	"Nanosecond": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkMapRanges(pass, fn)
			}
		}
		checkEntropy(pass, f)
	}
	return nil
}

// checkMapRanges inspects every map-keyed range statement in fn
// (closures included: a sort inside the same declaration still
// re-establishes order).
func checkMapRanges(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, fn, rs)
		return true
	})
}

func checkMapRangeBody(pass *analysis.Pass, fn *ast.FuncDecl, rs *ast.RangeStmt) {
	// appendTargets collects the objects the loop body appends to;
	// they are tolerated iff a later sort re-establishes order. Direct
	// sinks report once per range statement: one finding per root
	// cause, not one per Write call in the body.
	appendTargets := map[types.Object]ast.Expr{}
	sinkReported := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if !sinkReported {
				sinkReported = true
				pass.Reportf(rs.For, "map iteration order reaches a channel send; receivers observe a nondeterministic sequence")
			}
			return true
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sinkMethods[sel.Sel.Name] {
				if !sinkReported {
					sinkReported = true
					pass.Reportf(rs.For, "map iteration order reaches ordering-sensitive sink %s.%s without an intervening sort", analysis.ExprString(sel.X), sel.Sel.Name)
				}
				return true
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass.TypesInfo, call) || i >= len(n.Lhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						appendTargets[obj] = id
					}
				}
			}
		}
		return true
	})
	for obj, at := range appendTargets {
		if !sortedWithin(pass, fn.Body, obj) {
			pass.Reportf(at.Pos(), "slice %s accumulates map-iteration results and is never sorted; callers observe a nondeterministic order", obj.Name())
		}
	}
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedWithin reports whether obj appears as an argument (or inside
// an argument) of a sorting call anywhere in body. Sorting through the
// sort or slices packages and methods/functions with "Sort" in the
// name all count.
func sortedWithin(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSortingCall(pass.TypesInfo, call) {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(pass.TypesInfo, arg, obj) {
				found = true
				return false
			}
		}
		// Method form: byName(out).Sort().
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && mentionsObject(pass.TypesInfo, sel.X, obj) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isSortingCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if obj := info.Uses[fun.Sel]; obj != nil && obj.Pkg() != nil {
			p := obj.Pkg().Path()
			if p == "sort" || p == "slices" {
				return true
			}
		}
		return strings.Contains(fun.Sel.Name, "Sort")
	case *ast.Ident:
		return strings.Contains(fun.Name, "Sort")
	}
	return false
}

func mentionsObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

// checkEntropy flags math/rand globals and clock-to-number
// conversions anywhere in the file.
func checkEntropy(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj != nil && obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if !randConstructors[obj.Name()] {
					pass.Reportf(sel.Pos(), "use of math/rand global %s; all sampling must flow through internal/rng slot-indexed streams", obj.Name())
				}
			}
		}
		// time.Now().UnixNano() and friends: the receiver of a
		// clock-to-number method is itself a direct time.Now() call.
		if clockToNumber[sel.Sel.Name] {
			if recv, ok := sel.X.(*ast.CallExpr); ok && analysis.IsPkgFunc(pass.TypesInfo, recv, "time", "Now") {
				pass.Reportf(sel.Pos(), "wall clock escapes as data (time.Now().%s()); deterministic code must derive values from internal/rng or explicit inputs", sel.Sel.Name)
			}
		}
		return true
	})
}
