// Package a is the determinism pass's fixture: each function is one
// positive (// want) or negative (clean) case.
package a

import (
	"bytes"
	"math/rand"
	"sort"
	"time"
)

// listingsUnsorted leaks map order to its caller: positive.
func listingsUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `slice out accumulates map-iteration results and is never sorted`
	}
	return out
}

// listingsSorted is the canonical collect-then-sort idiom: negative.
func listingsSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// listingsSortSlice sorts through sort.Slice: negative.
func listingsSortSlice(m map[string]int) []int {
	vals := make([]int, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// encodeDirect streams keys in map order: positive.
func encodeDirect(m map[string]int, buf *bytes.Buffer) {
	for k := range m { // want `map iteration order reaches ordering-sensitive sink buf.WriteString`
		buf.WriteString(k)
	}
}

// sendOut leaks map order through a channel: positive.
func sendOut(m map[string]int, ch chan string) {
	for k := range m { // want `map iteration order reaches a channel send`
		ch <- k
	}
}

// countValues aggregates order-insensitively: negative.
func countValues(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// invert builds another map: negative (maps are order-insensitive).
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// globalRand samples from process-global state: positive.
func globalRand() int {
	return rand.Intn(10) // want `use of math/rand global Intn`
}

// seededRand builds explicit seedable state: negative.
func seededRand() *rand.Rand {
	return rand.New(rand.NewSource(1))
}

// clockSeed turns the wall clock into a number: positive.
func clockSeed() int64 {
	return time.Now().UnixNano() // want `wall clock escapes as data`
}

// elapsed measures a duration, never exposing the instant's value:
// negative.
func elapsed() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// suppressed carries a violation and the mandatory-reason suppression:
// the round-trip must stay silent.
func suppressed() int {
	return rand.Intn(10) //imlint:ignore determinism fixture pinning the suppression round-trip
}
