// Package a is the lockcheck pass's fixture: *Locked conventions,
// the locked-by annotation, and the domination heuristic's idioms.
package a

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

// bumpLocked re-acquires the mutex its name documents as held:
// positive (self-deadlock).
func (s *S) bumpLocked() {
	s.mu.Lock() // want `bumpLocked acquires s.mu, which its name documents the caller already holds`
	s.n++
}

func (s *S) addLocked(d int) {
	s.n += d
}

// Add holds the mutex across the call: negative.
func (s *S) Add(d int) {
	s.mu.Lock()
	s.addLocked(d)
	s.mu.Unlock()
}

// AddDefer uses the defer idiom: negative (a deferred release runs at
// return, not before the call).
func (s *S) AddDefer(d int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addLocked(d)
}

// AddChecked releases only on the early-exit path: negative (the
// unlock-and-return idiom never reaches the call site).
func (s *S) AddChecked(d int) {
	s.mu.Lock()
	if d < 0 {
		s.mu.Unlock()
		return
	}
	s.addLocked(d)
	s.mu.Unlock()
}

// AddWrong never acquires: positive.
func (s *S) AddWrong(d int) {
	s.addLocked(d) // want `call to addLocked is not dominated by s.mu.Lock\(\)`
}

// AddAfterUnlock acquires and releases before the call: positive.
func (s *S) AddAfterUnlock(d int) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.addLocked(d) // want `call to addLocked is not dominated by s.mu.Lock\(\)`
}

// mergeLocked calling addLocked propagates the obligation outward:
// negative inside, and Merge discharges it.
func (s *S) mergeLocked(o int) {
	s.addLocked(o)
}

func (s *S) Merge(o int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mergeLocked(o)
}

type R struct {
	mu sync.RWMutex
	v  int
}

func (r *R) peekLocked() int { return r.v }

// Peek read-locks: negative (RLock satisfies domination).
func (r *R) Peek() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.peekLocked()
}

// P carries its own mutex; M drains it under the caller-held p.mu, so
// the guard lives on the parameter and must be annotated.
type P struct {
	mu sync.Mutex
	v  int
}

type M struct{ total int }

// drainLocked moves p's value into m. Caller holds p.mu.
//
//imlint:locked-by p.mu
func (m *M) drainLocked(p *P) {
	m.total += p.v
	p.v = 0
}

// Drain locks the parameter's mutex: negative.
func (m *M) Drain(p *P) {
	p.mu.Lock()
	m.drainLocked(p)
	p.mu.Unlock()
}

// DrainWrong never locks p.mu: positive, and the message names the
// substituted parameter guard, not a receiver field.
func (m *M) DrainWrong(p *P) {
	m.drainLocked(p) // want `call to drainLocked is not dominated by p.mu.Lock\(\)`
}

// U carries two mutexes; the annotation's bare-field shorthand picks
// the non-default one.
type U struct {
	mu    sync.Mutex
	runMu sync.Mutex
	n     int
}

//imlint:locked-by runMu
func (u *U) stepLocked() { u.n++ }

// Step holds the annotated mutex: negative.
func (u *U) Step() {
	u.runMu.Lock()
	u.stepLocked()
	u.runMu.Unlock()
}

// StepWrong holds the wrong mutex: positive.
func (u *U) StepWrong() {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.stepLocked() // want `call to stepLocked is not dominated by u.runMu.Lock\(\)`
}

// suppressedCall documents an acquisition the heuristic cannot see and
// suppresses with a reason: silent.
func (s *S) suppressedCall(d int) {
	lockBoth(s)
	s.addLocked(d) //imlint:ignore lockcheck lockBoth acquires s.mu on behalf of the caller
	s.mu.Unlock()
}

func lockBoth(s *S) { s.mu.Lock() }
