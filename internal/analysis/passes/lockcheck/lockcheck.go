// Package lockcheck enforces the repo's *Locked naming convention:
// a function whose name ends in "Locked" documents that its caller
// already holds a specific mutex.
//
// Two invariants follow, and both have shipped as real deadlocks or
// races in systems like this one:
//
//  1. The *Locked function must not itself acquire the mutex it
//     documents as held — with sync.Mutex that is an instant
//     self-deadlock, with RWMutex an upgrade deadlock under
//     contention.
//  2. Every call site of a *Locked function must be dominated by an
//     acquisition of that same mutex (Lock or RLock on the same
//     receiver path, not released in between), or sit inside another
//     *Locked function so the obligation propagates outward.
//
// Which mutex a *Locked function means is inferred: the receiver's
// single sync.Mutex/RWMutex field (by convention "mu"). When the
// guard is not a receiver field — it belongs to a parameter, or to a
// nested struct — the function declares it explicitly:
//
//	//imlint:locked-by p.mu
//	func (c *Cluster) ensureConnLocked(p *peerConn) error { ... }
//
// The analysis is a positional AST heuristic, not a full
// happens-before proof: an acquisition anywhere earlier in the
// enclosing function body (with no later release at the same path,
// deferred releases excluded) satisfies the check. Constructions the
// heuristic cannot see — locks taken by a helper, conditional
// acquisition — use //imlint:ignore lockcheck with a reason.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "check *Locked functions: no self-acquisition of the documented mutex, and call sites dominated by it",
	Run:  run,
}

// lockedFunc describes one *Locked declaration and the guard it
// documents.
type lockedFunc struct {
	decl *ast.FuncDecl
	// guardPath is the guard split at dots: ["s","mu"] or ["p","mu"].
	// The first element names the receiver or a parameter; call-site
	// checking substitutes the concrete argument for it.
	guardPath []string
	// paramIndex is the index of the parameter the guard hangs off,
	// or -1 when it is the receiver.
	paramIndex int
}

func run(pass *analysis.Pass) error {
	locked := map[types.Object]*lockedFunc{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !strings.HasSuffix(fn.Name.Name, "Locked") || fn.Body == nil {
				continue
			}
			lf := resolveGuard(pass, fn)
			if lf == nil {
				continue // no inferable guard: nothing to check against
			}
			if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
				locked[obj] = lf
			}
			checkSelfAcquire(pass, lf)
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkCallSites(pass, fn, locked)
		}
	}
	return nil
}

// resolveGuard determines which mutex fn documents as held. An
// explicit //imlint:locked-by wins; otherwise the receiver's single
// mutex-typed field is the guard.
func resolveGuard(pass *analysis.Pass, fn *ast.FuncDecl) *lockedFunc {
	if arg, ok := analysis.FuncDocHasDirective(fn, "locked-by"); ok && arg != "" {
		path := strings.Split(arg, ".")
		if len(path) == 1 && fn.Recv != nil && len(fn.Recv.List[0].Names) > 0 {
			// Bare field name: shorthand for <receiver>.<field>.
			path = []string{fn.Recv.List[0].Names[0].Name, path[0]}
		}
		lf := &lockedFunc{decl: fn, guardPath: path, paramIndex: -1}
		if fn.Recv == nil || len(fn.Recv.List[0].Names) == 0 || fn.Recv.List[0].Names[0].Name != path[0] {
			lf.paramIndex = paramIndexOf(fn, path[0])
			if lf.paramIndex < 0 {
				pass.Reportf(fn.Pos(), "//imlint:locked-by %s names neither the receiver nor a parameter of %s", strings.Join(path, "."), fn.Name.Name)
				return nil
			}
		}
		return lf
	}
	if fn.Recv == nil || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	recvName := fn.Recv.List[0].Names[0].Name
	field := mutexFieldOf(pass, fn.Recv.List[0].Type)
	if field == "" {
		return nil
	}
	return &lockedFunc{decl: fn, guardPath: []string{recvName, field}, paramIndex: -1}
}

func paramIndexOf(fn *ast.FuncDecl, name string) int {
	i := 0
	for _, f := range fn.Type.Params.List {
		for _, n := range f.Names {
			if n.Name == name {
				return i
			}
			i++
		}
		if len(f.Names) == 0 {
			i++
		}
	}
	return -1
}

// mutexFieldOf returns the name of the mutex field of the receiver
// struct, preferring the conventional "mu", or "" when there is none.
func mutexFieldOf(pass *analysis.Pass, recvType ast.Expr) string {
	t := pass.TypesInfo.TypeOf(recvType)
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	first := ""
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !analysis.IsMutexType(f.Type()) {
			continue
		}
		if f.Name() == "mu" {
			return "mu"
		}
		if first == "" {
			first = f.Name()
		}
	}
	return first
}

// checkSelfAcquire flags acquisitions of the documented guard inside
// the *Locked body itself.
func checkSelfAcquire(pass *analysis.Pass, lf *lockedFunc) {
	guard := strings.Join(lf.guardPath, ".")
	ast.Inspect(lf.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if analysis.ExprString(sel.X) == guard {
			pass.Reportf(call.Pos(), "%s acquires %s, which its name documents the caller already holds (self-deadlock)", lf.decl.Name.Name, guard)
		}
		return true
	})
}

// lockEvent is one Lock/RLock/Unlock/RUnlock call on a rendered
// selector path.
type lockEvent struct {
	pos     token.Pos
	path    string
	acquire bool
}

// checkCallSites verifies every call to a known *Locked function is
// dominated by an acquisition of the substituted guard.
func checkCallSites(pass *analysis.Pass, fn *ast.FuncDecl, locked map[types.Object]*lockedFunc) {
	events := collectLockEvents(fn.Body)
	callerIsLocked := strings.HasSuffix(fn.Name.Name, "Locked")
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var calleeIdent *ast.Ident
		var recvExpr ast.Expr
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			calleeIdent, recvExpr = fun.Sel, fun.X
		case *ast.Ident:
			calleeIdent = fun
		default:
			return true
		}
		lf := locked[pass.TypesInfo.Uses[calleeIdent]]
		if lf == nil || lf.decl == fn {
			return true
		}
		// Obligation propagates: a *Locked caller passes the held
		// lock through to its *Locked callees.
		if callerIsLocked {
			return true
		}
		guard := substituteGuard(lf, call, recvExpr)
		if guard == "" {
			return true
		}
		if !heldAt(events, guard, call.Pos()) {
			pass.Reportf(call.Pos(), "call to %s is not dominated by %s.Lock(); the *Locked suffix documents that the caller must hold it", calleeIdent.Name, guard)
		}
		return true
	})
}

// substituteGuard maps the declared guard path onto the call site: the
// receiver element becomes the call's receiver expression, a parameter
// element becomes the corresponding argument.
func substituteGuard(lf *lockedFunc, call *ast.CallExpr, recvExpr ast.Expr) string {
	rest := strings.Join(lf.guardPath[1:], ".")
	var base string
	if lf.paramIndex >= 0 {
		if lf.paramIndex >= len(call.Args) {
			return ""
		}
		base = analysis.ExprString(call.Args[lf.paramIndex])
	} else if recvExpr != nil {
		base = analysis.ExprString(recvExpr)
	} else {
		base = lf.guardPath[0] // plain function call in the same scope
	}
	if base == "" || base == "?" {
		return ""
	}
	if rest == "" {
		return base
	}
	return base + "." + rest
}

// collectLockEvents gathers Lock/RLock/Unlock/RUnlock calls in body.
// Two classes of release never invalidate domination at an interior
// call site and are excluded:
//
//   - deferred releases (defer mu.Unlock()): they run at return;
//   - the unlock-and-bail idiom (mu.Unlock() immediately followed by
//     return/break/continue/panic): control never reaches the call
//     site being checked on that path.
func collectLockEvents(body *ast.BlockStmt) []lockEvent {
	var events []lockEvent
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.DeferStmt); ok {
			return false
		}
		stmts := stmtListOf(n)
		if stmts == nil {
			return true
		}
		for i, st := range stmts {
			es, ok := st.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			switch sel.Sel.Name {
			case "Lock", "RLock":
				events = append(events, lockEvent{pos: call.Pos(), path: analysis.ExprString(sel.X), acquire: true})
			case "Unlock", "RUnlock":
				if i+1 < len(stmts) && terminates(stmts[i+1]) {
					continue
				}
				events = append(events, lockEvent{pos: call.Pos(), path: analysis.ExprString(sel.X), acquire: false})
			}
		}
		return true
	})
	return events
}

// stmtListOf returns n's statement list when n owns one.
func stmtListOf(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

// terminates reports whether st unconditionally leaves the enclosing
// statement list.
func terminates(st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return st.Tok == token.BREAK || st.Tok == token.CONTINUE || st.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// heldAt reports whether the last Lock/Unlock event on path before pos
// is an acquisition.
func heldAt(events []lockEvent, path string, pos token.Pos) bool {
	held := false
	for _, e := range events {
		if e.pos >= pos || e.path != path {
			continue
		}
		held = e.acquire
	}
	return held
}
