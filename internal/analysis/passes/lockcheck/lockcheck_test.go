package lockcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, "testdata", lockcheck.Analyzer, "a")
}
