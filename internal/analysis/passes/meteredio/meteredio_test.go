package meteredio_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/meteredio"
)

func TestMeteredIO(t *testing.T) {
	analysistest.Run(t, "testdata", meteredio.Analyzer, "a", "wire")
}
