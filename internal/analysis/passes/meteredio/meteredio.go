// Package meteredio enforces the measured-communication contract:
// every byte the cluster moves is accounted by wire.Meter, so the
// "measured" columns the harness and /v1/stats report cannot drift
// from what actually crossed the network.
//
// The rule: outside the wire package's own Conn/Meter implementation,
// nothing reads or writes a raw net.Conn. All traffic flows through
// wire.Conn's framed, CRC-checked, metered Read/WriteFrame calls.
// Flagged constructs:
//
//   - method calls Read/Write/ReadFrom/WriteTo on a value whose static
//     type is net.Conn (or a concrete *net.TCPConn / *net.UnixConn)
//   - io.Copy / io.ReadFull / io.ReadAll / io.WriteString where a raw
//     conn is the source or destination
//
// Dialing, closing, and setting deadlines on a raw conn stay legal —
// those move no payload bytes. Methods whose receiver is the wire
// package's own Conn type are the metering implementation and are
// exempt.
package meteredio

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "meteredio",
	Doc:  "raw net.Conn reads/writes outside wire.Conn/wire.Meter break measured-comm accounting",
	Run:  run,
}

// rawIOMethods are the conn methods that move payload bytes.
var rawIOMethods = map[string]bool{
	"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true,
}

// ioHelpers are the io-package functions that move bytes between
// arbitrary readers and writers.
var ioHelpers = map[string]bool{
	"Copy": true, "CopyN": true, "CopyBuffer": true,
	"ReadFull": true, "ReadAll": true, "ReadAtLeast": true,
	"WriteString": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if isWireImplementation(pass, fn) {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// isWireImplementation reports whether fn is a method of the wire
// package's own Conn or Meter types — the one place raw conn I/O is
// the point.
func isWireImplementation(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if pass.Pkg.Name() != "wire" || fn.Recv == nil {
		return false
	}
	t := pass.TypesInfo.TypeOf(fn.Recv.List[0].Type)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Conn" || named.Obj().Name() == "Meter"
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && rawIOMethods[sel.Sel.Name] && isRawConn(pass, sel.X) {
			pass.Reportf(call.Pos(), "direct %s on a raw net.Conn bypasses wire.Conn metering; measured-comm accounting drifts from reality", sel.Sel.Name)
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && ioHelpers[sel.Sel.Name] {
			if obj := pass.TypesInfo.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "io" {
				for _, arg := range call.Args {
					if isRawConn(pass, arg) {
						pass.Reportf(call.Pos(), "io.%s over a raw net.Conn bypasses wire.Conn metering; measured-comm accounting drifts from reality", sel.Sel.Name)
						break
					}
				}
			}
		}
		return true
	})
}

// isRawConn reports whether e's static type is the net.Conn interface
// or a concrete net connection type.
func isRawConn(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "net" {
		return false
	}
	switch obj.Name() {
	case "Conn", "TCPConn", "UnixConn", "UDPConn":
		return true
	}
	return false
}
