// Package wire is the meteredio pass's exemption fixture: the metering
// implementation itself is the one place raw conn I/O is the point.
package wire

import "net"

// Meter counts bytes.
type Meter struct{ in, out int64 }

// Conn is the metered wrapper; its methods touch the raw conn by
// design and are exempt.
type Conn struct {
	c net.Conn
	m *Meter
}

// ReadFrame reads from the underlying raw conn: negative (receiver is
// wire.Conn).
func (c *Conn) ReadFrame(buf []byte) (int, error) {
	n, err := c.c.Read(buf)
	c.m.in += int64(n)
	return n, err
}

// WriteFrame writes to the underlying raw conn: negative.
func (c *Conn) WriteFrame(b []byte) (int, error) {
	n, err := c.c.Write(b)
	c.m.out += int64(n)
	return n, err
}

// sniff is a plain function in the wire package, not a Conn/Meter
// method — the exemption does not extend to it: positive.
func sniff(c net.Conn) (byte, error) {
	var b [1]byte
	_, err := c.Read(b[:]) // want `direct Read on a raw net.Conn bypasses wire.Conn metering`
	return b[0], err
}
