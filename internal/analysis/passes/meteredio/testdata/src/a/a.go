// Package a is the meteredio pass's fixture: raw net.Conn traffic
// outside the wire package versus the control-plane calls that move no
// payload bytes.
package a

import (
	"io"
	"net"
	"time"
)

// rawRead moves payload bytes around the meter: positive.
func rawRead(c net.Conn, buf []byte) (int, error) {
	return c.Read(buf) // want `direct Read on a raw net.Conn bypasses wire.Conn metering`
}

// rawWrite on a concrete TCP conn: positive.
func rawWrite(c *net.TCPConn, b []byte) (int, error) {
	return c.Write(b) // want `direct Write on a raw net.Conn bypasses wire.Conn metering`
}

// helperRead moves bytes through an io helper with a raw conn
// argument: positive.
func helperRead(c net.Conn, buf []byte) error {
	_, err := io.ReadFull(c, buf) // want `io.ReadFull over a raw net.Conn bypasses wire.Conn metering`
	return err
}

// deadlines is control-plane only — no payload bytes move: negative.
func deadlines(c net.Conn) error {
	if err := c.SetReadDeadline(time.Time{}); err != nil {
		return err
	}
	return c.Close()
}

// dial constructs the conn; the caller is expected to wrap it in
// wire.Conn before any I/O: negative.
func dial(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr)
}

// bufferCopy moves bytes between non-conn endpoints: negative (the
// helper rule only fires when a raw conn is an argument).
func bufferCopy(dst io.Writer, src io.Reader) (int64, error) {
	return io.Copy(dst, src)
}

// suppressed pins the suppression round-trip: silent.
func suppressed(c net.Conn) (int, error) {
	var b [1]byte
	return c.Read(b[:]) //imlint:ignore meteredio fixture pinning the suppression round-trip
}
