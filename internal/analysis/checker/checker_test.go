package checker

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

func TestScopeAppliesTo(t *testing.T) {
	scope := Scope{
		"envelope": {"internal/serve", "internal/route"},
		"endian":   nil,
	}
	cases := []struct {
		name, pkg string
		want      bool
	}{
		{"envelope", "repro/internal/serve", true},
		{"envelope", "repro/internal/route", true},
		{"envelope", "repro/internal/imm", false},
		// Suffix matching is per whole path segment, not per byte.
		{"envelope", "repro/internal/serve2", false},
		{"envelope", "repro/xinternal/serve", false},
		// Exact match without any prefix.
		{"envelope", "internal/serve", true},
		// nil scope entry and absent analyzer both mean "everywhere".
		{"endian", "repro/internal/imm", true},
		{"lockcheck", "repro/internal/imm", true},
	}
	for _, c := range cases {
		if got := scope.AppliesTo(c.name, c.pkg); got != c.want {
			t.Errorf("AppliesTo(%q, %q) = %v, want %v", c.name, c.pkg, got, c.want)
		}
	}
}

// parseOnlyPackage builds a load.Package from source text without
// type-checking — enough for suppression scanning and for analyzers
// that only look at the AST.
func parseOnlyPackage(t *testing.T, src string) *load.Package {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "a.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &load.Package{
		PkgPath: "example/a",
		Name:    "a",
		Dir:     dir,
		Fset:    fset,
		Files:   []*ast.File{f},
	}
}

func TestMalformedSuppressionIsAFinding(t *testing.T) {
	pkg := parseOnlyPackage(t, `package a

//imlint:ignore
func missingEverything() {}

//imlint:ignore determinism
func missingReason() {}

//imlint:ignore determinism has a reason, well formed
func wellFormed() {}
`)
	findings, err := Run([]*load.Package{pkg}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Analyzer != "imlint" {
			t.Errorf("finding attributed to %q, want pseudo-analyzer \"imlint\"", f.Analyzer)
		}
		if !strings.Contains(f.Message, "malformed suppression") {
			t.Errorf("unexpected message %q", f.Message)
		}
	}
	if findings[0].Pos.Line != 3 || findings[1].Pos.Line != 6 {
		t.Errorf("findings at lines %d and %d, want 3 and 6", findings[0].Pos.Line, findings[1].Pos.Line)
	}
}

// lineReporter flags every function declaration — a minimal analyzer
// for exercising suppression coverage and pass scoping.
func lineReporter(name string) *analysis.Analyzer {
	a := &analysis.Analyzer{Name: name, Doc: "test analyzer"}
	a.Run = func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fn, ok := d.(*ast.FuncDecl); ok {
					pass.Reportf(fn.Pos(), "func %s flagged", fn.Name.Name)
				}
			}
		}
		return nil
	}
	return a
}

func TestSuppressionCoversOwnAndNextLine(t *testing.T) {
	pkg := parseOnlyPackage(t, `package a

//imlint:ignore probe suppressed by the line above
func above() {}

func unsuppressed() {}

func trailing() {} //imlint:ignore probe suppressed at end of line

//imlint:ignore otherpass wrong pass name does not silence probe
func wrongPass() {}
`)
	findings, err := Run([]*load.Package{pkg}, []*analysis.Analyzer{lineReporter("probe")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, f := range findings {
		if f.Analyzer != "probe" {
			t.Fatalf("unexpected analyzer %q in %v", f.Analyzer, f)
		}
		names = append(names, f.Message)
	}
	want := []string{"func unsuppressed flagged", "func wrongPass flagged"}
	if len(names) != len(want) {
		t.Fatalf("got findings %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("finding %d = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestScopeFiltersPasses(t *testing.T) {
	pkg := parseOnlyPackage(t, `package a

func f() {}
`)
	scope := Scope{"probe": {"internal/serve"}}
	findings, err := Run([]*load.Package{pkg}, []*analysis.Analyzer{lineReporter("probe")}, scope)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("out-of-scope package produced findings: %v", findings)
	}
}

func TestFindingsSortedByPosition(t *testing.T) {
	pkg := parseOnlyPackage(t, `package a

func b() {}

func a() {}
`)
	findings, err := Run([]*load.Package{pkg}, []*analysis.Analyzer{lineReporter("zprobe"), lineReporter("aprobe")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 4 {
		t.Fatalf("got %d findings, want 4", len(findings))
	}
	for i := 1; i < len(findings); i++ {
		p, q := findings[i-1], findings[i]
		if p.Pos.Line > q.Pos.Line || (p.Pos.Line == q.Pos.Line && p.Analyzer > q.Analyzer) {
			t.Errorf("findings out of order at %d: %v before %v", i, p, q)
		}
	}
}
