// Package checker runs a set of analyzers over loaded packages,
// applying per-pass package scoping and //imlint:ignore suppression,
// and renders findings in the conventional file:line:col form.
package checker

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Scope maps an analyzer name to the package paths it applies to.
// Paths are matched as import-path suffixes on whole segments
// ("internal/serve" matches "repro/internal/serve" but not
// "repro/internal/serve2"). An analyzer absent from the scope — or
// mapped to nil — runs over every package.
type Scope map[string][]string

// AppliesTo reports whether the named analyzer runs over pkgPath.
func (s Scope) AppliesTo(name, pkgPath string) bool {
	pats, ok := s[name]
	if !ok || len(pats) == 0 {
		return true
	}
	for _, pat := range pats {
		if pkgPath == pat || strings.HasSuffix(pkgPath, "/"+pat) {
			return true
		}
	}
	return false
}

// A Finding is one reported, unsuppressed diagnostic with its position
// resolved.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// Run applies every analyzer to every in-scope package and returns the
// surviving findings sorted by position. Suppression comments that are
// missing their mandatory reason are themselves findings, so a bare
// //imlint:ignore can never silently disable a pass.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer, scope Scope) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		sup, malformed := suppressions(pkg)
		findings = append(findings, malformed...)
		for _, a := range analyzers {
			if !scope.AppliesTo(a.Name, pkg.PkgPath) {
				continue
			}
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("checker: %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				if sup.covers(a.Name, pos) {
					continue
				}
				findings = append(findings, Finding{Pos: pos, Analyzer: a.Name, Message: d.Message})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// ignoreDirective is the suppression comment prefix. The full form is
//
//	//imlint:ignore <pass> <reason>
//
// and it silences <pass> findings on its own line and on the line
// directly below it (so it can ride at end-of-line or stand above the
// flagged statement).
const ignoreDirective = "//imlint:ignore"

// suppressionSet records, per file and line, which analyzers are
// silenced.
type suppressionSet map[string]map[int]map[string]bool

func (s suppressionSet) covers(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer]
}

func (s suppressionSet) add(file string, line int, analyzer string) {
	if s[file] == nil {
		s[file] = make(map[int]map[string]bool)
	}
	if s[file][line] == nil {
		s[file][line] = make(map[string]bool)
	}
	s[file][line][analyzer] = true
}

// suppressions scans a package's comments for ignore directives.
// Malformed directives (no pass name, or no reason) come back as
// findings attributed to the pseudo-analyzer "imlint".
func suppressions(pkg *load.Package) (suppressionSet, []Finding) {
	set := make(suppressionSet)
	var malformed []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignoreDirective)
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) < 2 {
					malformed = append(malformed, Finding{
						Pos:      pos,
						Analyzer: "imlint",
						Message:  "malformed suppression: want //imlint:ignore <pass> <reason>",
					})
					continue
				}
				set.add(pos.Filename, pos.Line, fields[0])
				set.add(pos.Filename, pos.Line+1, fields[0])
			}
		}
	}
	return set, malformed
}

// FileOf returns the *ast.File of pos within pkg, for passes that need
// file-level context (imports, comment maps).
func FileOf(pkg *load.Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
