package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

func sprintf(format string, args ...any) string {
	if len(args) == 0 {
		return format
	}
	return fmt.Sprintf(format, args...)
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name, resolved through the type checker (so aliased imports
// and shadowed identifiers are handled correctly).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// PkgObjectUse resolves id to the package-level object it uses, or nil.
func PkgObjectUse(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return nil
}

// RootIdent walks a selector / index / call chain down to its base
// identifier: s.pool.shards[i].mu → s. Returns nil when the base is
// not a plain identifier (a function result, a composite literal...).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return nil
		}
	}
}

// ExprString renders a selector chain as source-ish text (s.mu,
// pe.disk.f). Non-chain expressions render as "?".
func ExprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return ExprString(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return ExprString(x.X)
	case *ast.StarExpr:
		return ExprString(x.X)
	case *ast.IndexExpr:
		return ExprString(x.X) + "[...]"
	default:
		return "?"
	}
}

// IsMutexType reports whether t (or *t) is sync.Mutex or sync.RWMutex.
func IsMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// FuncDocHasDirective scans fn's doc comment for a "//imlint:<name>"
// directive and returns its trailing argument text.
func FuncDocHasDirective(fn *ast.FuncDecl, name string) (string, bool) {
	if fn.Doc == nil {
		return "", false
	}
	prefix := "//imlint:" + name
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, prefix) {
			return strings.TrimSpace(strings.TrimPrefix(c.Text, prefix)), true
		}
	}
	return "", false
}
