// Package memmodel provides a logical address space for instrumentation.
//
// The NUMA cost model and the cache simulator both need addresses for the
// arrays the algorithms touch, but taking real pointers with unsafe would
// tie the instrumentation to the Go allocator and garbage collector. A
// logical address space is deterministic across runs and platforms: each
// tracked array is registered as a Region with a base address and element
// size, and Region.Addr(i) maps index i to a stable 64-bit byte address.
// Regions are aligned and padded so distinct arrays never share a cache
// line or a page, mirroring a careful aligned-allocation discipline.
package memmodel

import "fmt"

// Common granularities used by consumers of the address space.
const (
	CacheLineBytes = 64
	PageBytes      = 4096
)

// Region is a contiguous span of the logical address space representing
// one array.
type Region struct {
	Name     string
	Base     uint64
	ElemSize uint64
	Length   uint64 // number of elements
}

// Addr returns the byte address of element i.
func (r Region) Addr(i int64) uint64 {
	return r.Base + uint64(i)*r.ElemSize
}

// Bytes returns the total footprint of the region in bytes.
func (r Region) Bytes() uint64 { return r.ElemSize * r.Length }

// End returns the first byte address past the region.
func (r Region) End() uint64 { return r.Base + r.Bytes() }

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool {
	return addr >= r.Base && addr < r.End()
}

// Space allocates Regions sequentially. The zero value starts allocating
// at a non-zero base so that address 0 never appears (it is reserved as
// "untracked").
type Space struct {
	next    uint64
	regions []Region
}

// NewSpace returns an empty address space.
func NewSpace() *Space { return &Space{next: PageBytes} }

// Alloc reserves a page-aligned region of length elements of elemSize
// bytes each.
func (s *Space) Alloc(name string, length int64, elemSize int) Region {
	if length < 0 || elemSize <= 0 {
		panic(fmt.Sprintf("memmodel: invalid Alloc(%q, %d, %d)", name, length, elemSize))
	}
	if s.next == 0 {
		s.next = PageBytes
	}
	r := Region{Name: name, Base: s.next, ElemSize: uint64(elemSize), Length: uint64(length)}
	s.regions = append(s.regions, r)
	s.next = alignUp(r.End()+PageBytes, PageBytes) // guard page between regions
	return r
}

// Regions returns all allocated regions in allocation order.
func (s *Space) Regions() []Region { return s.regions }

// Find returns the region containing addr, if any.
func (s *Space) Find(addr uint64) (Region, bool) {
	for _, r := range s.regions {
		if r.Contains(addr) {
			return r, true
		}
	}
	return Region{}, false
}

// TotalBytes returns the sum of all region footprints (excluding guard
// padding).
func (s *Space) TotalBytes() uint64 {
	var total uint64
	for _, r := range s.regions {
		total += r.Bytes()
	}
	return total
}

func alignUp(v, align uint64) uint64 {
	return (v + align - 1) &^ (align - 1)
}

// LineOf returns the cache-line index of addr.
func LineOf(addr uint64) uint64 { return addr / CacheLineBytes }

// PageOf returns the page index of addr.
func PageOf(addr uint64) uint64 { return addr / PageBytes }
