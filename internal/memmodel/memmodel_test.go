package memmodel

import (
	"testing"
	"testing/quick"
)

func TestAllocDisjointAndAligned(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("a", 1000, 8)
	b := s.Alloc("b", 17, 1)
	c := s.Alloc("c", 1, 64)
	regions := []Region{a, b, c}
	for i, r := range regions {
		if r.Base%PageBytes != 0 {
			t.Fatalf("region %d base %#x not page aligned", i, r.Base)
		}
		if r.Base == 0 {
			t.Fatalf("region %d allocated at address 0", i)
		}
		for j, o := range regions {
			if i == j {
				continue
			}
			if r.Base < o.End() && o.Base < r.End() {
				t.Fatalf("regions %d and %d overlap", i, j)
			}
		}
	}
}

func TestGuardPageBetweenRegions(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("a", 1, 1)
	b := s.Alloc("b", 1, 1)
	if PageOf(b.Base)-PageOf(a.End()) < 1 {
		t.Fatalf("no guard page between consecutive regions: a end %#x b base %#x", a.End(), b.Base)
	}
}

func TestAddrArithmetic(t *testing.T) {
	s := NewSpace()
	r := s.Alloc("counters", 100, 8)
	if r.Addr(0) != r.Base {
		t.Fatal("Addr(0) != Base")
	}
	if r.Addr(5)-r.Addr(4) != 8 {
		t.Fatal("element stride wrong")
	}
	if r.Bytes() != 800 {
		t.Fatalf("Bytes = %d", r.Bytes())
	}
}

func TestContainsAndFind(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("a", 10, 4)
	b := s.Alloc("b", 10, 4)
	if !a.Contains(a.Addr(9)) || a.Contains(a.End()) {
		t.Fatal("Contains boundary wrong")
	}
	if got, ok := s.Find(b.Addr(3)); !ok || got.Name != "b" {
		t.Fatalf("Find returned %v %v", got, ok)
	}
	if _, ok := s.Find(0); ok {
		t.Fatal("Find(0) should miss — address 0 is reserved")
	}
}

func TestZeroValueSpaceUsable(t *testing.T) {
	var s Space
	r := s.Alloc("x", 4, 8)
	if r.Base == 0 {
		t.Fatal("zero-value Space allocated at 0")
	}
}

func TestTotalBytes(t *testing.T) {
	s := NewSpace()
	s.Alloc("a", 10, 8)
	s.Alloc("b", 3, 4)
	if got := s.TotalBytes(); got != 92 {
		t.Fatalf("TotalBytes = %d, want 92", got)
	}
}

func TestLinePageHelpers(t *testing.T) {
	if LineOf(0) != 0 || LineOf(63) != 0 || LineOf(64) != 1 {
		t.Fatal("LineOf wrong")
	}
	if PageOf(4095) != 0 || PageOf(4096) != 1 {
		t.Fatal("PageOf wrong")
	}
}

func TestAllocPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc with elemSize 0 did not panic")
		}
	}()
	NewSpace().Alloc("bad", 1, 0)
}

func TestAddrWithinRegionProperty(t *testing.T) {
	s := NewSpace()
	r := s.Alloc("p", 1<<16, 8)
	f := func(i uint16) bool {
		return r.Contains(r.Addr(int64(i)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
