// Package counter implements the global vertex-occurrence counter at the
// heart of EFFICIENTIMM's Find_Most_Influential_Set: a flat array of
// 64-bit counters updated with fine-grained atomic adds (the paper's
// `lock incq` discipline — one quadword locked per update, no wider
// locking), and the two-step parallel argmax reduction (per-worker
// regional maxima, then a reduction over the regions).
package counter

import (
	"sync"
	"sync/atomic"
)

// Counter is a global occurrence counter over n vertices. All methods
// except Reset and the reductions are safe for concurrent use.
type Counter struct {
	counts []int64
}

// New returns a counter for n vertices, all zero.
func New(n int32) *Counter {
	return &Counter{counts: make([]int64, n)}
}

// Len returns the number of vertices covered.
func (c *Counter) Len() int32 { return int32(len(c.counts)) }

// Inc atomically increments the count of vertex v.
func (c *Counter) Inc(v int32) { atomic.AddInt64(&c.counts[v], 1) }

// Dec atomically decrements the count of vertex v.
func (c *Counter) Dec(v int32) { atomic.AddInt64(&c.counts[v], -1) }

// Get atomically reads the count of vertex v.
func (c *Counter) Get(v int32) int64 { return atomic.LoadInt64(&c.counts[v]) }

// Reset zeroes all counters. Callers must quiesce writers first.
func (c *Counter) Reset() {
	for i := range c.counts {
		c.counts[i] = 0
	}
}

// Raw exposes the backing slice for instrumented kernels (address
// generation for the cache simulator). Do not mutate concurrently with
// atomic updates through the Counter API.
func (c *Counter) Raw() []int64 { return c.counts }

// AddFrom accumulates other's counts into c — the reduction step an
// allreduce of per-rank occurrence counters performs at the root rank.
// The receiver must be quiesced; other is read atomically. Panics if the
// two counters cover different vertex counts.
func (c *Counter) AddFrom(other *Counter) {
	if len(other.counts) != len(c.counts) {
		panic("counter: AddFrom length mismatch")
	}
	for i := range c.counts {
		c.counts[i] += atomic.LoadInt64(&other.counts[i])
	}
}

// Snapshot copies the current counts into dst (allocating if nil) and
// returns it.
func (c *Counter) Snapshot(dst []int64) []int64 {
	if cap(dst) < len(c.counts) {
		dst = make([]int64, len(c.counts))
	}
	dst = dst[:len(c.counts)]
	for i := range c.counts {
		dst[i] = atomic.LoadInt64(&c.counts[i])
	}
	return dst
}

// Regional is the per-worker partial result of the first reduction step.
type Regional struct {
	Vertex int32
	Count  int64
}

// ArgMax runs the paper's two-step parallel reduction with p workers:
// each worker scans a contiguous vertex range for its regional maximum,
// then the p regional maxima are reduced sequentially (p is small). Ties
// break toward the lower vertex id so results are deterministic.
func (c *Counter) ArgMax(p int) Regional {
	n := len(c.counts)
	if n == 0 {
		return Regional{Vertex: -1}
	}
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	regions := make([]Regional, p)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		lo, hi := w*n/p, (w+1)*n/p
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			best := Regional{Vertex: int32(lo), Count: atomic.LoadInt64(&c.counts[lo])}
			for v := lo + 1; v < hi; v++ {
				if cnt := atomic.LoadInt64(&c.counts[v]); cnt > best.Count {
					best = Regional{Vertex: int32(v), Count: cnt}
				}
			}
			regions[w] = best
		}(w, lo, hi)
	}
	wg.Wait()
	best := regions[0]
	for _, r := range regions[1:] {
		if r.Count > best.Count || (r.Count == best.Count && r.Vertex < best.Vertex) {
			best = r
		}
	}
	return best
}

// SequentialArgMax is the reference single-pass scan used by tests and by
// the 1-worker configurations.
func (c *Counter) SequentialArgMax() Regional {
	if len(c.counts) == 0 {
		return Regional{Vertex: -1}
	}
	best := Regional{Vertex: 0, Count: c.counts[0]}
	for v := 1; v < len(c.counts); v++ {
		if c.counts[v] > best.Count {
			best = Regional{Vertex: int32(v), Count: c.counts[v]}
		}
	}
	return best
}

// UpdateStrategy selects how counts are corrected after a seed is chosen
// and its covered RRR sets are retired.
type UpdateStrategy int

const (
	// Decrement walks every covered set and decrements each member — the
	// straightforward scheme, quadratic-ish on skewed data where the top
	// seed covers most sets.
	Decrement UpdateStrategy = iota
	// Rebuild zeroes the counter and re-adds only surviving sets.
	Rebuild
	// AdaptiveUpdate picks Decrement or Rebuild per selection round by
	// comparing the work of each: decrement touches the covered sets,
	// rebuild touches the surviving ones. This is the paper's "Adaptive
	// Vertex Occurrence Counter Update".
	AdaptiveUpdate
)

func (u UpdateStrategy) String() string {
	switch u {
	case Decrement:
		return "decrement"
	case Rebuild:
		return "rebuild"
	case AdaptiveUpdate:
		return "adaptive"
	default:
		return "unknown"
	}
}

// ChooseRebuild reports whether the adaptive strategy should rebuild,
// given the total member count of covered sets versus surviving sets.
// The decision is pure work comparison: rebuilding re-adds survivors
// plus a zeroing pass, decrementing touches covered members.
func ChooseRebuild(coveredMembers, survivingMembers, vertices int64) bool {
	rebuildWork := survivingMembers + vertices/8 // zeroing is a cheap streaming pass
	return rebuildWork < coveredMembers
}
