// Package counter implements the global vertex-occurrence counter at the
// heart of EFFICIENTIMM's Find_Most_Influential_Set: a flat array of
// 64-bit counters updated with fine-grained atomic adds (the paper's
// `lock incq` discipline — one quadword locked per update, no wider
// locking), and the two-step parallel argmax reduction (per-worker
// regional maxima, then a reduction over the regions). Key types:
// Counter (the array plus ArgMax/AddFrom for the distributed
// allreduce), UpdateStrategy with ChooseRebuild (the adaptive
// decrement-vs-rebuild retirement of §IV.C), and GainHeap/GainLess (the
// max-heaps behind CELF's lazy selection). The argmax and heap order
// share one tie-break — gain descending, vertex id ascending — which is
// the invariant that keeps every selection kernel byte-identical.
package counter

import (
	"sync"
	"sync/atomic"
)

// Counter is a global occurrence counter over n vertices. All methods
// except Reset and the reductions are safe for concurrent use.
type Counter struct {
	counts []int64
}

// New returns a counter for n vertices, all zero.
func New(n int32) *Counter {
	return &Counter{counts: make([]int64, n)}
}

// Len returns the number of vertices covered.
func (c *Counter) Len() int32 { return int32(len(c.counts)) }

// Inc atomically increments the count of vertex v.
func (c *Counter) Inc(v int32) { atomic.AddInt64(&c.counts[v], 1) }

// Dec atomically decrements the count of vertex v.
func (c *Counter) Dec(v int32) { atomic.AddInt64(&c.counts[v], -1) }

// Get atomically reads the count of vertex v.
func (c *Counter) Get(v int32) int64 { return atomic.LoadInt64(&c.counts[v]) }

// Reset zeroes all counters. Callers must quiesce writers first.
func (c *Counter) Reset() {
	for i := range c.counts {
		c.counts[i] = 0
	}
}

// Raw exposes the backing slice for instrumented kernels (address
// generation for the cache simulator). Do not mutate concurrently with
// atomic updates through the Counter API.
func (c *Counter) Raw() []int64 { return c.counts }

// AddFrom accumulates other's counts into c — the reduction step an
// allreduce of per-rank occurrence counters performs at the root rank.
// The receiver must be quiesced; other is read atomically. Panics if the
// two counters cover different vertex counts.
func (c *Counter) AddFrom(other *Counter) {
	if len(other.counts) != len(c.counts) {
		panic("counter: AddFrom length mismatch")
	}
	for i := range c.counts {
		c.counts[i] += atomic.LoadInt64(&other.counts[i])
	}
}

// Snapshot copies the current counts into dst (allocating if nil) and
// returns it.
func (c *Counter) Snapshot(dst []int64) []int64 {
	if cap(dst) < len(c.counts) {
		dst = make([]int64, len(c.counts))
	}
	dst = dst[:len(c.counts)]
	for i := range c.counts {
		dst[i] = atomic.LoadInt64(&c.counts[i])
	}
	return dst
}

// Regional is the per-worker partial result of the first reduction step.
type Regional struct {
	Vertex int32
	Count  int64
}

// ArgMax runs the paper's two-step parallel reduction with p workers:
// each worker scans a contiguous vertex range for its regional maximum,
// then the p regional maxima are reduced sequentially (p is small). Ties
// break toward the lower vertex id so results are deterministic.
func (c *Counter) ArgMax(p int) Regional {
	n := len(c.counts)
	if n == 0 {
		return Regional{Vertex: -1}
	}
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	regions := make([]Regional, p)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		lo, hi := w*n/p, (w+1)*n/p
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			best := Regional{Vertex: int32(lo), Count: atomic.LoadInt64(&c.counts[lo])}
			for v := lo + 1; v < hi; v++ {
				if cnt := atomic.LoadInt64(&c.counts[v]); cnt > best.Count {
					best = Regional{Vertex: int32(v), Count: cnt}
				}
			}
			regions[w] = best
		}(w, lo, hi)
	}
	wg.Wait()
	best := regions[0]
	for _, r := range regions[1:] {
		if r.Count > best.Count || (r.Count == best.Count && r.Vertex < best.Vertex) {
			best = r
		}
	}
	return best
}

// SequentialArgMax is the reference single-pass scan used by tests and by
// the 1-worker configurations.
func (c *Counter) SequentialArgMax() Regional {
	if len(c.counts) == 0 {
		return Regional{Vertex: -1}
	}
	best := Regional{Vertex: 0, Count: c.counts[0]}
	for v := 1; v < len(c.counts); v++ {
		if c.counts[v] > best.Count {
			best = Regional{Vertex: int32(v), Count: c.counts[v]}
		}
	}
	return best
}

// GainItem is one candidate in a lazy-greedy (CELF) selection: a vertex
// and its cached marginal gain (an upper bound once coverage advances —
// marginal coverage gain is non-increasing under the greedy).
type GainItem struct {
	Gain   int64
	Vertex int32
}

// GainLess is the CELF priority order: higher gain first, ties toward
// the lower vertex id. The tie-break matches ArgMax, which is what makes
// lazy selection return byte-identical seeds to the eager argmax scan at
// any worker count. Exported so the selection kernel reduces per-shard
// heap tops under exactly the heap's own order.
func GainLess(a, b GainItem) bool {
	return a.Gain > b.Gain || (a.Gain == b.Gain && a.Vertex < b.Vertex)
}

// GainHeap is a deterministic binary max-heap of GainItems used as the
// per-shard priority queue of the parallel CELF selection. It supports
// exactly the operations that selection needs — bulk build, peek, pop,
// and re-keying the current top — so there is no position index to
// maintain.
type GainHeap struct {
	items []GainItem
}

// NewGainHeap returns an empty heap with capacity for hint items.
func NewGainHeap(hint int) *GainHeap {
	return &GainHeap{items: make([]GainItem, 0, hint)}
}

// Len returns the number of queued candidates.
func (h *GainHeap) Len() int { return len(h.items) }

// Append adds an item without restoring heap order; call Init after the
// bulk load. Splitting build this way keeps construction O(n).
func (h *GainHeap) Append(gain int64, vertex int32) {
	h.items = append(h.items, GainItem{Gain: gain, Vertex: vertex})
}

// Init establishes the heap invariant over all appended items.
func (h *GainHeap) Init() {
	for i := len(h.items)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// Top returns the best candidate without removing it.
func (h *GainHeap) Top() (GainItem, bool) {
	if len(h.items) == 0 {
		return GainItem{}, false
	}
	return h.items[0], true
}

// Pop removes and returns the best candidate.
func (h *GainHeap) Pop() (GainItem, bool) {
	if len(h.items) == 0 {
		return GainItem{}, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return top, true
}

// UpdateTop re-keys the current top with a recomputed gain and restores
// the invariant — the CELF lazy-reinsertion step. Panics on an empty
// heap.
func (h *GainHeap) UpdateTop(gain int64) {
	h.items[0].Gain = gain
	h.siftDown(0)
}

func (h *GainHeap) siftDown(i int) {
	n := len(h.items)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		best := l
		if r := l + 1; r < n && GainLess(h.items[r], h.items[l]) {
			best = r
		}
		if !GainLess(h.items[best], h.items[i]) {
			return
		}
		h.items[i], h.items[best] = h.items[best], h.items[i]
		i = best
	}
}

// UpdateStrategy selects how counts are corrected after a seed is chosen
// and its covered RRR sets are retired.
type UpdateStrategy int

const (
	// Decrement walks every covered set and decrements each member — the
	// straightforward scheme, quadratic-ish on skewed data where the top
	// seed covers most sets.
	Decrement UpdateStrategy = iota
	// Rebuild zeroes the counter and re-adds only surviving sets.
	Rebuild
	// AdaptiveUpdate picks Decrement or Rebuild per selection round by
	// comparing the work of each: decrement touches the covered sets,
	// rebuild touches the surviving ones. This is the paper's "Adaptive
	// Vertex Occurrence Counter Update".
	AdaptiveUpdate
)

func (u UpdateStrategy) String() string {
	switch u {
	case Decrement:
		return "decrement"
	case Rebuild:
		return "rebuild"
	case AdaptiveUpdate:
		return "adaptive"
	default:
		return "unknown"
	}
}

// ChooseRebuild reports whether the adaptive strategy should rebuild,
// given the total member count of covered sets versus surviving sets.
// The decision is pure work comparison: rebuilding re-adds survivors
// plus a zeroing pass, decrementing touches covered members.
func ChooseRebuild(coveredMembers, survivingMembers, vertices int64) bool {
	rebuildWork := survivingMembers + vertices/8 // zeroing is a cheap streaming pass
	return rebuildWork < coveredMembers
}
