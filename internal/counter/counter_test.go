package counter

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestIncDecGet(t *testing.T) {
	c := New(10)
	c.Inc(3)
	c.Inc(3)
	c.Dec(3)
	if got := c.Get(3); got != 1 {
		t.Fatalf("Get = %d, want 1", got)
	}
	if got := c.Get(0); got != 0 {
		t.Fatalf("untouched counter = %d", got)
	}
}

func TestConcurrentIncrementsExact(t *testing.T) {
	const n, workers, per = 128, 8, 10000
	c := New(n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.NewStream(1, w)
			for i := 0; i < per; i++ {
				c.Inc(int32(r.Intn(n)))
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for v := int32(0); v < n; v++ {
		total += c.Get(v)
	}
	if total != workers*per {
		t.Fatalf("total = %d, want %d (no lost updates)", total, workers*per)
	}
}

func TestArgMaxMatchesSequential(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 30; trial++ {
		n := int32(r.Intn(500) + 1)
		c := New(n)
		for i := 0; i < 2000; i++ {
			c.Inc(int32(r.Intn(int(n))))
		}
		seq := c.SequentialArgMax()
		for _, p := range []int{1, 2, 4, 7, 16} {
			par := c.ArgMax(p)
			if par.Count != seq.Count {
				t.Fatalf("trial %d p=%d: parallel count %d != sequential %d", trial, p, par.Count, seq.Count)
			}
			if c.Get(par.Vertex) != seq.Count {
				t.Fatalf("trial %d p=%d: argmax vertex %d does not hold max", trial, p, par.Vertex)
			}
		}
	}
}

func TestArgMaxDeterministicTieBreak(t *testing.T) {
	c := New(100)
	c.Inc(10)
	c.Inc(50)
	c.Inc(90)
	// All tied at 1; both reductions must pick the lowest id... the
	// sequential scan keeps the first maximum.
	seq := c.SequentialArgMax()
	if seq.Vertex != 10 {
		t.Fatalf("sequential tie-break picked %d", seq.Vertex)
	}
	for _, p := range []int{1, 2, 4, 16} {
		if got := c.ArgMax(p); got.Vertex != 10 {
			t.Fatalf("p=%d tie-break picked %d, want 10", p, got.Vertex)
		}
	}
}

func TestArgMaxEmptyAndTiny(t *testing.T) {
	if got := New(0).ArgMax(4); got.Vertex != -1 {
		t.Fatalf("empty argmax = %+v", got)
	}
	c := New(1)
	c.Inc(0)
	if got := c.ArgMax(8); got.Vertex != 0 || got.Count != 1 {
		t.Fatalf("single argmax = %+v", got)
	}
}

func TestSnapshotAndReset(t *testing.T) {
	c := New(5)
	c.Inc(2)
	s := c.Snapshot(nil)
	if len(s) != 5 || s[2] != 1 {
		t.Fatalf("snapshot = %v", s)
	}
	c.Reset()
	if c.Get(2) != 0 {
		t.Fatal("Reset failed")
	}
	if s[2] != 1 {
		t.Fatal("snapshot aliased to live counter")
	}
	// Reuse path.
	c.Inc(4)
	s2 := c.Snapshot(s)
	if s2[4] != 1 || s2[2] != 0 {
		t.Fatalf("reused snapshot = %v", s2)
	}
}

func TestArgMaxProperty(t *testing.T) {
	f := func(raw []uint8, pRaw uint8) bool {
		c := New(256)
		for _, v := range raw {
			c.Inc(int32(v))
		}
		p := int(pRaw%16) + 1
		got := c.ArgMax(p)
		if len(raw) == 0 {
			return got.Count == 0
		}
		// got must hold the true maximum count.
		var maxCount int64
		for v := int32(0); v < 256; v++ {
			if c.Get(v) > maxCount {
				maxCount = c.Get(v)
			}
		}
		return got.Count == maxCount && c.Get(got.Vertex) == maxCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestChooseRebuild(t *testing.T) {
	// Heavy skew: covered sets hold nearly everything → rebuild wins.
	if !ChooseRebuild(1_000_000, 1_000, 10_000) {
		t.Fatal("should rebuild under heavy skew")
	}
	// Light seed: covered few → decrement wins.
	if ChooseRebuild(1_000, 1_000_000, 10_000) {
		t.Fatal("should decrement when coverage is light")
	}
}

func TestUpdateStrategyString(t *testing.T) {
	if Decrement.String() != "decrement" || Rebuild.String() != "rebuild" || AdaptiveUpdate.String() != "adaptive" {
		t.Fatal("String() wrong")
	}
}

func BenchmarkInc(b *testing.B) {
	c := New(1 << 16)
	for i := 0; i < b.N; i++ {
		c.Inc(int32(i & (1<<16 - 1)))
	}
}

func BenchmarkArgMax(b *testing.B) {
	c := New(1 << 18)
	r := rng.New(1)
	for i := 0; i < 1<<18; i++ {
		c.Inc(int32(r.Intn(1 << 18)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ArgMax(4)
	}
}

func TestAddFrom(t *testing.T) {
	a, b := New(5), New(5)
	a.Inc(0)
	a.Inc(3)
	b.Inc(3)
	b.Inc(4)
	a.AddFrom(b)
	want := []int64{1, 0, 0, 2, 1}
	for v, w := range want {
		if got := a.Get(int32(v)); got != w {
			t.Fatalf("vertex %d: got %d want %d", v, got, w)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch not detected")
		}
	}()
	a.AddFrom(New(4))
}

func TestGainHeapOrdering(t *testing.T) {
	h := NewGainHeap(8)
	for _, it := range []GainItem{{3, 5}, {9, 2}, {3, 1}, {9, 7}, {0, 0}} {
		h.Append(it.Gain, it.Vertex)
	}
	h.Init()
	want := []GainItem{{9, 2}, {9, 7}, {3, 1}, {3, 5}, {0, 0}}
	for i, w := range want {
		got, ok := h.Pop()
		if !ok || got != w {
			t.Fatalf("pop %d = %+v, want %+v", i, got, w)
		}
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("pop from empty heap succeeded")
	}
	if _, ok := h.Top(); ok {
		t.Fatal("top of empty heap succeeded")
	}
}

func TestGainHeapUpdateTop(t *testing.T) {
	h := NewGainHeap(4)
	h.Append(10, 4)
	h.Append(8, 1)
	h.Append(6, 9)
	h.Init()
	h.UpdateTop(7) // 10@4 decays to 7@4: 8@1 must surface
	if top, _ := h.Top(); top != (GainItem{8, 1}) {
		t.Fatalf("top after decay = %+v", top)
	}
	h.UpdateTop(7) // 8@1 decays to 7@1: ties with 7@4, lower id wins
	if top, _ := h.Top(); top != (GainItem{7, 1}) {
		t.Fatalf("tie-break top = %+v", top)
	}
}

func TestGainHeapMatchesArgMaxOrder(t *testing.T) {
	// Popping a fully fresh heap must enumerate vertices in exactly the
	// order repeated ArgMax-with-retirement would visit them.
	r := rng.NewStream(31, 2)
	n := int32(300)
	c := New(n)
	for i := 0; i < 4000; i++ {
		c.Inc(int32(r.Uint64() % uint64(n)))
	}
	h := NewGainHeap(int(n))
	for v := int32(0); v < n; v++ {
		h.Append(c.Get(v), v)
	}
	h.Init()
	raw := c.Raw()
	for i := 0; i < int(n); i++ {
		got, ok := h.Pop()
		if !ok {
			t.Fatal("heap exhausted early")
		}
		best := c.ArgMax(3)
		if best.Vertex != got.Vertex || best.Count != got.Gain {
			t.Fatalf("pop %d: heap %+v vs argmax %+v", i, got, best)
		}
		raw[best.Vertex] = -1
	}
}
