package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// coverage checks every index in [0,n) was visited exactly once.
func coverage(t *testing.T, name string, n int, run func(mark func(i int))) {
	t.Helper()
	counts := make([]int32, n)
	run(func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("%s: index %d visited %d times", name, i, c)
		}
	}
}

func TestStaticCoversAllIndices(t *testing.T) {
	for _, p := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 5, 100, 1000} {
			coverage(t, "Static", n, func(mark func(int)) {
				Static(p, n, func(_, s, e int) {
					for i := s; i < e; i++ {
						mark(i)
					}
				})
			})
		}
	}
}

func TestStaticPartitionsAreContiguousAndOrdered(t *testing.T) {
	type rng struct{ s, e int }
	var mu sync.Mutex
	var got []rng
	Static(4, 100, func(_, s, e int) {
		mu.Lock()
		got = append(got, rng{s, e})
		mu.Unlock()
	})
	if len(got) != 4 {
		t.Fatalf("%d ranges, want 4", len(got))
	}
	total := 0
	for _, r := range got {
		total += r.e - r.s
	}
	if total != 100 {
		t.Fatalf("ranges cover %d, want 100", total)
	}
}

func TestStaticMoreWorkersThanItems(t *testing.T) {
	coverage(t, "Static", 3, func(mark func(int)) {
		Static(16, 3, func(_, s, e int) {
			for i := s; i < e; i++ {
				mark(i)
			}
		})
	})
}

func TestDynamicCoversAllIndices(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		for _, chunk := range []int{1, 3, 64, 1000} {
			coverage(t, "Dynamic", 500, func(mark func(int)) {
				Dynamic(p, 500, chunk, func(_, s, e int) {
					for i := s; i < e; i++ {
						mark(i)
					}
				})
			})
		}
	}
}

func TestDynamicHandlesZeroAndNegative(t *testing.T) {
	called := false
	Dynamic(4, 0, 16, func(_, _, _ int) { called = true })
	Dynamic(0, -5, 0, func(_, _, _ int) { called = true })
	if called {
		t.Fatal("callback invoked for empty range")
	}
}

func TestForEach(t *testing.T) {
	coverage(t, "ForEach", 300, func(mark func(int)) {
		ForEach(4, 300, func(_, i int) { mark(i) })
	})
}

func TestDynamicBalancesSkewedWork(t *testing.T) {
	// One in 50 items is 100x more expensive. Dynamic scheduling must
	// spread the expensive items; verify all workers execute something.
	const n = 500
	perWorker := make([]int64, 4)
	Dynamic(4, n, 1, func(w, s, e int) {
		for i := s; i < e; i++ {
			if i%50 == 0 {
				time.Sleep(200 * time.Microsecond)
			}
			atomic.AddInt64(&perWorker[w], 1)
		}
	})
	var total int64
	for _, c := range perWorker {
		total += c
	}
	if total != n {
		t.Fatalf("executed %d, want %d", total, n)
	}
}

func TestDequeLIFOFIFO(t *testing.T) {
	var d Deque
	for i := int64(0); i < 3; i++ {
		d.Push(i)
	}
	if j, ok := d.Pop(); !ok || j != 2 {
		t.Fatalf("Pop = %d,%v want 2", j, ok)
	}
	if j, ok := d.Steal(); !ok || j != 0 {
		t.Fatalf("Steal = %d,%v want 0", j, ok)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
	if j, ok := d.Pop(); !ok || j != 1 {
		t.Fatalf("Pop = %d,%v want 1", j, ok)
	}
	if _, ok := d.Pop(); ok {
		t.Fatal("Pop on empty succeeded")
	}
	if _, ok := d.Steal(); ok {
		t.Fatal("Steal on empty succeeded")
	}
}

func TestDequeConcurrentNoLossNoDup(t *testing.T) {
	var d Deque
	const n = 10000
	for i := int64(0); i < n; i++ {
		d.Push(i)
	}
	seen := make([]int32, n)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				var j int64
				var ok bool
				if w%2 == 0 {
					j, ok = d.Pop()
				} else {
					j, ok = d.Steal()
				}
				if !ok {
					return
				}
				atomic.AddInt32(&seen[j], 1)
			}
		}(w)
	}
	wg.Wait()
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("job %d executed %d times", i, c)
		}
	}
}

func TestWorkStealingExecutesAllJobs(t *testing.T) {
	const n = 2000
	seen := make([]int32, n)
	executed := WorkStealing(8, n, func(_ int, job int64) {
		atomic.AddInt32(&seen[job], 1)
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("job %d executed %d times", i, c)
		}
	}
	var total int64
	for _, e := range executed {
		total += e
	}
	if total != n {
		t.Fatalf("executed total %d, want %d", total, n)
	}
}

func TestWorkStealingBalancesSkew(t *testing.T) {
	// Seed all slow jobs onto worker 0's deque (jobs 0..p-1 round robin
	// means job%8==0 lands on worker 0); peers must steal some.
	const n, p = 400, 8
	executed := WorkStealing(p, n, func(_ int, job int64) {
		if job%int64(p) == 0 {
			time.Sleep(300 * time.Microsecond)
		}
	})
	if executed[0] == n/p {
		// Worker 0 kept all its slow jobs and did nothing else only if
		// no stealing happened anywhere; with 50 slow jobs and 2 cores
		// some steal activity is overwhelmingly likely.
		t.Logf("worker 0 executed exactly its seed share; stealing may not have triggered")
	}
	var total int64
	for _, e := range executed {
		total += e
	}
	if total != n {
		t.Fatalf("executed %d, want %d", total, n)
	}
}

func TestWorkStealingSingleWorker(t *testing.T) {
	var count int64
	WorkStealing(1, 100, func(_ int, _ int64) { atomic.AddInt64(&count, 1) })
	if count != 100 {
		t.Fatalf("count = %d", count)
	}
}

func TestWorkStealingZeroJobs(t *testing.T) {
	executed := WorkStealing(4, 0, func(_ int, _ int64) { t.Error("callback on zero jobs") })
	if len(executed) != 4 {
		t.Fatalf("executed slice len %d", len(executed))
	}
}
