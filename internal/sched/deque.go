package sched

import (
	"sync"
)

// Deque is a double-ended work queue for one owner with thief access:
// the owner pushes and pops at the bottom (LIFO, cache-friendly), idle
// workers steal from the top (FIFO, takes the oldest — largest-granule —
// job). A mutex guards both ends; at the paper's job granularity
// (hundreds of RRR sets per job batch) lock cost is negligible next to
// job cost, and a mutex keeps the invariant trivially correct.
type Deque struct {
	mu   sync.Mutex
	jobs []int64
}

// Push adds a job at the bottom.
func (d *Deque) Push(job int64) {
	d.mu.Lock()
	d.jobs = append(d.jobs, job)
	d.mu.Unlock()
}

// Pop removes the most recently pushed job. ok is false when empty.
func (d *Deque) Pop() (job int64, ok bool) {
	d.mu.Lock()
	if n := len(d.jobs); n > 0 {
		job = d.jobs[n-1]
		d.jobs = d.jobs[:n-1]
		ok = true
	}
	d.mu.Unlock()
	return job, ok
}

// Steal removes the oldest job. ok is false when empty.
func (d *Deque) Steal() (job int64, ok bool) {
	d.mu.Lock()
	if len(d.jobs) > 0 {
		job = d.jobs[0]
		d.jobs = d.jobs[1:]
		ok = true
	}
	d.mu.Unlock()
	return job, ok
}

// Len returns the current queue length.
func (d *Deque) Len() int {
	d.mu.Lock()
	n := len(d.jobs)
	d.mu.Unlock()
	return n
}

// WorkStealing runs jobs 0..n-1 on p workers using per-worker deques
// seeded round-robin, the producer/consumer scheme from the paper's
// "Dynamic Job Balancing": a worker drains its own queue first and then
// steals from the queue of the busiest peer. Stats reports per-worker
// executed-job counts so experiments can quantify balance.
func WorkStealing(p int, n int64, fn func(worker int, job int64)) (executed []int64) {
	if p < 1 {
		p = 1
	}
	executed = make([]int64, p)
	if n <= 0 {
		return executed
	}
	deques := make([]*Deque, p)
	for i := range deques {
		deques[i] = &Deque{}
	}
	for j := int64(0); j < n; j++ {
		deques[j%int64(p)].Push(j)
	}
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if job, ok := deques[w].Pop(); ok {
					fn(w, job)
					executed[w]++
					continue
				}
				// Steal from the currently longest queue. The scan is
				// racy but only advisory; emptiness is re-checked by
				// Steal itself.
				victim, best := -1, 0
				for v := 0; v < p; v++ {
					if v == w {
						continue
					}
					if l := deques[v].Len(); l > best {
						victim, best = v, l
					}
				}
				if victim < 0 {
					return
				}
				if job, ok := deques[victim].Steal(); ok {
					fn(w, job)
					executed[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	return executed
}
