// Package sched provides the parallel execution primitives used by both
// IMM engines: a static range partitioner (the Ripples baseline's
// OpenMP-style "static" schedule), a dynamic chunked parallel-for (an
// atomic work cursor, the OpenMP "dynamic" schedule), and a
// producer/consumer work-stealing pool implementing the paper's dynamic
// job balancing for RRR-set generation.
//
// Workers are plain goroutines. The worker count is a parameter, not
// GOMAXPROCS: the experiments sweep 1..128 simulated workers on a small
// machine, with per-worker accounted work standing in for per-core time.
package sched

import (
	"sync"
	"sync/atomic"
)

// Static runs fn(worker, start, end) on p workers, giving worker w the
// contiguous range [w*n/p, (w+1)*n/p). This reproduces the baseline's
// fixed partitioning, including its imbalance when item costs vary.
func Static(p, n int, fn func(worker, start, end int)) {
	if p < 1 {
		p = 1
	}
	if n <= 0 {
		return
	}
	if p > n {
		p = n
	}
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		start := w * n / p
		end := (w + 1) * n / p
		if start == end {
			continue
		}
		wg.Add(1)
		go func(w, s, e int) {
			defer wg.Done()
			fn(w, s, e)
		}(w, start, end)
	}
	wg.Wait()
}

// Dynamic runs fn(worker, start, end) over [0,n) in chunks claimed from a
// shared atomic cursor. Chunk is the claim granularity; values of 16-64
// amortize the atomic while keeping tail imbalance small.
func Dynamic(p, n, chunk int, fn func(worker, start, end int)) {
	if p < 1 {
		p = 1
	}
	if chunk < 1 {
		chunk = 1
	}
	if n <= 0 {
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				start := int(cursor.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				fn(w, start, end)
			}
		}(w)
	}
	wg.Wait()
}

// ForEach is Dynamic with per-item granularity, for convenience in tests
// and examples.
func ForEach(p, n int, fn func(worker, i int)) {
	Dynamic(p, n, 16, func(w, s, e int) {
		for i := s; i < e; i++ {
			fn(w, i)
		}
	})
}
