package serve

// HTTP/JSON front-end over Server: four endpoints, one handler each,
// mounted by Handler. cmd/immserver is a thin flag-parsing shell around
// this so the protocol is testable with net/http/httptest.
//
//	GET  /healthz          liveness + registered graph count
//	GET  /graphs           the GraphInfo list
//	GET  /stats            the Stats counters
//	GET  /query?graph=&k=&eps=&seed=[&model=]   one seed-set query
//	POST /query            the same query as a QueryRequest JSON body

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Handler returns the HTTP front-end for s.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/graphs", s.handleGraphs)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/query", s.handleQuery)
	return mux
}

// healthResponse is the /healthz payload.
type healthResponse struct {
	Status string `json:"status"`
	Graphs int    `json:"graphs"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Graphs: s.GraphCount()})
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.Graphs())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	switch r.Method {
	case http.MethodGet:
		var err error
		if req, err = queryFromURL(r); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	case http.MethodPost:
		// Same defaults as the GET form: fields absent from the JSON
		// body keep the pre-seeded values (the decoder only overwrites
		// what the body names).
		req = QueryRequest{Epsilon: 0.5, Seed: 1}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("invalid JSON body: %v", err))
			return
		}
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST only")
		return
	}
	res, err := s.Query(req)
	if err != nil {
		// Validation and unknown-graph errors are the client's; there is
		// no server-side failure mode distinct from them at this layer.
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// queryFromURL parses the GET form of a query. k is required; epsilon
// defaults to the paper's 0.5 and seed to 1, matching imm.Defaults.
func queryFromURL(r *http.Request) (QueryRequest, error) {
	q := r.URL.Query()
	req := QueryRequest{
		Graph:   q.Get("graph"),
		Model:   q.Get("model"),
		Epsilon: 0.5,
		Seed:    1,
	}
	if req.Graph == "" {
		return req, fmt.Errorf("missing graph parameter")
	}
	k, err := strconv.Atoi(q.Get("k"))
	if err != nil {
		return req, fmt.Errorf("invalid k parameter %q", q.Get("k"))
	}
	req.K = k
	if v := q.Get("eps"); v != "" {
		if req.Epsilon, err = strconv.ParseFloat(v, 64); err != nil {
			return req, fmt.Errorf("invalid eps parameter %q", v)
		}
	}
	if v := q.Get("seed"); v != "" {
		if req.Seed, err = strconv.ParseUint(v, 10, 64); err != nil {
			return req, fmt.Errorf("invalid seed parameter %q", v)
		}
	}
	return req, nil
}

// errorResponse is the JSON error payload every endpoint uses.
type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}
