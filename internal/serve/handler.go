package serve

// HTTP/JSON front-end over Server, mounted by Handler. cmd/immserver is
// a thin flag-parsing shell around this so the protocol is testable
// with net/http/httptest.
//
//	GET  /healthz          liveness + registered graph count
//	GET  /graphs           the GraphInfo list
//	GET  /stats            the Stats counters
//	GET  /query?graph=&k=[&eps=&seed=&model=]    one seed-set query
//	POST /query            the same query as a QueryRequest JSON body
//	POST /batch            {"queries":[...]} → per-member results
//	POST /jobs             async query: QueryRequest body → Job (202)
//	GET  /jobs             every retained job, oldest first
//	GET  /jobs/{id}        one job's state and, once done, its result
//
// Failures map through the serve sentinels: unknown graph or job 404,
// validation 400, admission overflow 429 (with Retry-After), shutdown
// 503 — and only a genuine engine failure reports 500.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// maxBatchQueries bounds one POST /batch body: enough for any sensible
// round-trip amortization, small enough that a single request cannot
// monopolize the planner.
const maxBatchQueries = 1024

// Handler returns the HTTP front-end for s.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/graphs", s.handleGraphs)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJobByID)
	return mux
}

// healthResponse is the /healthz payload.
type healthResponse struct {
	Status string `json:"status"`
	Graphs int    `json:"graphs"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Graphs: s.GraphCount()})
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.Graphs())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	switch r.Method {
	case http.MethodGet:
		var err error
		if req, err = queryFromURL(r); err != nil {
			writeError(w, err)
			return
		}
	case http.MethodPost:
		var err error
		if req, err = decodeQueryBody(r); err != nil {
			writeError(w, err)
			return
		}
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST only")
		return
	}
	res, err := s.Query(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// BatchRequest is the POST /batch body. Members take the same defaults
// as a POST /query body (eps=0.5, seed=1 when absent) and the same
// unknown-field rejection.
type BatchRequest struct {
	Queries []json.RawMessage `json:"queries"`
}

// BatchResponse is the POST /batch answer: one item per query, in
// request order. Member failures are reported inline so one bad member
// does not fail its neighbors; the HTTP status is 200 whenever the
// batch itself was well-formed.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var body BatchRequest
	if err := dec.Decode(&body); err != nil {
		writeError(w, fmt.Errorf("serve: %w: invalid JSON body: %v", ErrInvalidQuery, err))
		return
	}
	if len(body.Queries) == 0 {
		writeError(w, fmt.Errorf("serve: %w: batch holds no queries", ErrInvalidQuery))
		return
	}
	if len(body.Queries) > maxBatchQueries {
		writeError(w, fmt.Errorf("serve: %w: batch holds %d queries, max %d", ErrInvalidQuery, len(body.Queries), maxBatchQueries))
		return
	}
	reqs := make([]QueryRequest, len(body.Queries))
	for i, raw := range body.Queries {
		mdec := json.NewDecoder(bytes.NewReader(raw))
		mdec.DisallowUnknownFields()
		req := defaultQueryRequest()
		if err := mdec.Decode(&req); err != nil {
			writeError(w, fmt.Errorf("serve: %w: query %d: %v", ErrInvalidQuery, i, err))
			return
		}
		reqs[i] = req
	}
	writeJSON(w, http.StatusOK, BatchResponse{Results: s.QueryBatch(reqs)})
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		req, err := decodeQueryBody(r)
		if err != nil {
			writeError(w, err)
			return
		}
		job, err := s.SubmitJob(req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job)
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.Jobs())
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/jobs/")
	job, ok := s.Job(id)
	if !ok {
		writeError(w, fmt.Errorf("serve: %w %q", ErrUnknownJob, id))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// defaultQueryRequest pre-seeds the fields a request body may omit:
// epsilon defaults to the paper's 0.5 and seed to 1, matching
// imm.Defaults.
func defaultQueryRequest() QueryRequest {
	return QueryRequest{Epsilon: 0.5, Seed: 1}
}

// decodeQueryBody parses a POST JSON body into a QueryRequest. Fields
// absent from the body keep the pre-seeded defaults (the decoder only
// overwrites what the body names); unknown fields are rejected for the
// same reason the GET parser rejects unknown parameters — a misspelled
// "eps" for "epsilon" must fail loudly, not silently run with the
// default.
func decodeQueryBody(r *http.Request) (QueryRequest, error) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	req := defaultQueryRequest()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("serve: %w: invalid JSON body: %v", ErrInvalidQuery, err)
	}
	return req, nil
}

// queryFromURL parses the GET form of a query. k is required; epsilon
// and seed default as in defaultQueryRequest. Unknown parameters are
// rejected outright — a misspelled key (epsilon= for eps=) must fail
// loudly, not silently run with the default — and eps must be a finite
// number at parse time, not merely range-checked later.
func queryFromURL(r *http.Request) (QueryRequest, error) {
	q := r.URL.Query()
	for key := range q {
		switch key {
		case "graph", "model", "k", "eps", "seed":
		default:
			return QueryRequest{}, fmt.Errorf("serve: %w: unknown query parameter %q (accepted: graph, model, k, eps, seed)", ErrInvalidQuery, key)
		}
	}
	req := defaultQueryRequest()
	req.Graph = q.Get("graph")
	req.Model = q.Get("model")
	if req.Graph == "" {
		return req, fmt.Errorf("serve: %w: missing graph parameter", ErrInvalidQuery)
	}
	k, err := strconv.Atoi(q.Get("k"))
	if err != nil {
		return req, fmt.Errorf("serve: %w: invalid k parameter %q", ErrInvalidQuery, q.Get("k"))
	}
	req.K = k
	if v := q.Get("eps"); v != "" {
		eps, err := strconv.ParseFloat(v, 64)
		if err != nil || math.IsNaN(eps) || math.IsInf(eps, 0) {
			return req, fmt.Errorf("serve: %w: eps parameter %q is not a finite number", ErrInvalidQuery, v)
		}
		req.Epsilon = eps
	}
	if v := q.Get("seed"); v != "" {
		if req.Seed, err = strconv.ParseUint(v, 10, 64); err != nil {
			return req, fmt.Errorf("serve: %w: invalid seed parameter %q", ErrInvalidQuery, v)
		}
	}
	return req, nil
}

// statusForError maps a Server error to its HTTP status through the
// serve sentinels. Anything that wraps no sentinel is a genuine
// server-side failure: 500.
func statusForError(err error) int {
	switch {
	case errors.Is(err, ErrUnknownGraph), errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, ErrInvalidQuery):
		return http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeError reports err with its mapped status. Backpressure rejections
// carry Retry-After so well-behaved clients pace themselves instead of
// hammering the admission queue.
func writeError(w http.ResponseWriter, err error) {
	code := statusForError(err)
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	httpError(w, code, err.Error())
}

// errorResponse is the JSON error payload every endpoint uses.
type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}
