package serve

// HTTP/JSON front-end over Server, mounted by Handler. cmd/immserver is
// a thin flag-parsing shell around this so the protocol is testable
// with net/http/httptest.
//
// The surface is versioned: every endpoint lives under /v1/, and the
// original unprefixed paths remain as aliases of the same handlers so
// existing clients and scripts keep working.
//
//	GET  /v1/healthz          liveness + registered graph count
//	GET  /v1/graphs           the GraphInfo list
//	GET  /v1/stats            the Stats counters
//	GET  /v1/query?graph=&k=[&eps=&seed=&model=]    one seed-set query
//	POST /v1/query            the same query as a QueryRequest JSON body
//	POST /v1/batch            {"queries":[...]} → per-member results
//	POST /v1/jobs             async query: QueryRequest body → Job (202)
//	GET  /v1/jobs             every retained job, oldest first
//	GET  /v1/jobs/{id}        one job's state and, once done, its result
//	POST /v1/pools/save       freeze resident pools to .impool snapshots
//
// Routing is by Go 1.22 method-qualified mux patterns, so method
// dispatch lives in the route table rather than in per-handler checks.
//
// Every error response — handler failures, unknown paths, and wrong
// methods alike — carries the one envelope:
//
//	{"error": {"code": "<machine_code>", "message": "<human text>"}}
//
// Failures map through the serve sentinels: unknown graph or job 404
// (unknown_graph/unknown_job), validation 400 (invalid_query),
// admission overflow 429 (overloaded, with Retry-After), shutdown 503
// (shutting_down) — and only a genuine engine failure reports 500
// (internal). The mux-level fallbacks use not_found and
// method_not_allowed.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
)

// maxBatchQueries bounds one POST /batch body: enough for any sensible
// round-trip amortization, small enough that a single request cannot
// monopolize the planner.
const maxBatchQueries = 1024

// Handler returns the HTTP front-end for s: the /v1/ surface (queries,
// jobs, and the graph-lifecycle endpoints), the deprecated unprefixed
// aliases of the original surface, and the envelope fallbacks for
// unknown paths and disallowed methods.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, p := range []string{"/v1", ""} {
		// The unversioned aliases are deprecated: they answer exactly as
		// before, but carry Deprecation headers and count in
		// /v1/stats.legacy_requests. New endpoints exist only under /v1.
		wrap := func(h http.HandlerFunc) http.HandlerFunc { return h }
		if p == "" {
			wrap = s.legacy
		}
		mux.HandleFunc("GET "+p+"/healthz", wrap(s.handleHealth))
		mux.HandleFunc("GET "+p+"/stats", wrap(s.handleStats))
		mux.HandleFunc("GET "+p+"/query", wrap(s.handleQueryGet))
		mux.HandleFunc("POST "+p+"/query", wrap(s.handleQueryPost))
		mux.HandleFunc("POST "+p+"/batch", wrap(s.handleBatch))
		mux.HandleFunc("GET "+p+"/jobs", wrap(s.handleJobsList))
		mux.HandleFunc("POST "+p+"/jobs", wrap(s.handleJobSubmit))
		mux.HandleFunc("GET "+p+"/jobs/{id}", wrap(s.handleJobByID))
	}
	// The graph collection: /v1 serves the lifecycle-shaped response
	// ({"graphs": [...]}); the legacy alias keeps the original bare
	// array so pre-/v1 clients parse unchanged until removal.
	mux.HandleFunc("GET /v1/graphs", s.handleGraphsV1)
	mux.HandleFunc("GET /graphs", s.legacy(s.handleGraphs))
	// Graph lifecycle, /v1 only.
	mux.HandleFunc("POST /v1/graphs", s.handleGraphRegister)
	mux.HandleFunc("GET /v1/graphs/{name}", s.handleGraphGet)
	mux.HandleFunc("DELETE /v1/graphs/{name}", s.handleGraphDelete)
	mux.HandleFunc("POST /v1/graphs/{name}/edges", s.handleGraphEdges)
	// Pool persistence, /v1 only.
	mux.HandleFunc("POST /v1/pools/save", s.handlePoolsSave)
	return EnvelopeFallbacks(mux)
}

// LegacyDeprecation is the Deprecation header value (RFC 9745
// @unix-timestamp form) stamped on every unversioned-alias response:
// the date the aliases were deprecated in favor of /v1. README's
// "Legacy paths" section records the removal timeline.
const LegacyDeprecation = "@1786147200" // 2026-08-08T00:00:00Z

// legacy wraps an unversioned-alias handler: the response gains the
// Deprecation header and a Successor-Version header naming the /v1
// replacement, and the hit counts in Stats.LegacyRequests.
//
// Earlier releases misspelled the header as "Sucessor-Version"; the
// typo'd form rode alongside the corrected one for exactly one release
// and is now gone. Scrapers must key on Successor-Version.
func (s *Server) legacy(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", LegacyDeprecation)
		w.Header().Set("Successor-Version", "/v1"+r.URL.Path)
		s.mu.Lock()
		s.stats.LegacyRequests++
		s.mu.Unlock()
		h(w, r)
	}
}

// EnvelopeFallbacks wraps mux so its built-in plain-text 404 and 405
// responses become envelope errors like every other failure. The mux is
// probed first: an empty pattern means no route applies, and replaying
// the request against a sink recovers which built-in status (and Allow
// header) the mux chose without writing its plain-text body to the
// client. Exported so the sharding router's mux shares the contract.
func EnvelopeFallbacks(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h, pattern := mux.Handler(r)
		if pattern != "" {
			mux.ServeHTTP(w, r)
			return
		}
		probe := &statusProbe{header: make(http.Header)}
		h.ServeHTTP(probe, r)
		if probe.code == http.StatusMethodNotAllowed {
			if allow := probe.header.Get("Allow"); allow != "" {
				w.Header().Set("Allow", allow)
			}
			WriteErrorEnvelope(w, http.StatusMethodNotAllowed, "method_not_allowed",
				fmt.Sprintf("method %s not allowed for %s", r.Method, r.URL.Path))
			return
		}
		WriteErrorEnvelope(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("no such endpoint %s", r.URL.Path))
	})
}

// statusProbe captures the status code and headers a handler would have
// written, discarding the body.
type statusProbe struct {
	header http.Header
	code   int
}

func (p *statusProbe) Header() http.Header { return p.header }
func (p *statusProbe) WriteHeader(code int) {
	if p.code == 0 {
		p.code = code
	}
}
func (p *statusProbe) Write(b []byte) (int, error) {
	p.WriteHeader(http.StatusOK)
	return len(b), nil
}

// healthResponse is the /healthz payload.
type healthResponse struct {
	Status string `json:"status"`
	Graphs int    `json:"graphs"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Graphs: s.GraphCount()})
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Graphs())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleQueryGet(w http.ResponseWriter, r *http.Request) {
	req, err := queryFromURL(r)
	if err != nil {
		writeError(w, err)
		return
	}
	s.serveQuery(w, req)
}

func (s *Server) handleQueryPost(w http.ResponseWriter, r *http.Request) {
	req, err := decodeQueryBody(r)
	if err != nil {
		writeError(w, err)
		return
	}
	s.serveQuery(w, req)
}

func (s *Server) serveQuery(w http.ResponseWriter, req QueryRequest) {
	res, err := s.Query(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// BatchRequest is the POST /batch body. Members take the same defaults
// as a POST /query body (eps=0.5, seed=1 when absent) and the same
// unknown-field rejection.
type BatchRequest struct {
	Queries []json.RawMessage `json:"queries"`
}

// BatchResponse is the POST /batch answer: one item per query, in
// request order. Member failures are reported inline so one bad member
// does not fail its neighbors; the HTTP status is 200 whenever the
// batch itself was well-formed.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var body BatchRequest
	if err := dec.Decode(&body); err != nil {
		writeError(w, fmt.Errorf("serve: %w: invalid JSON body: %v", ErrInvalidQuery, err))
		return
	}
	if len(body.Queries) == 0 {
		writeError(w, fmt.Errorf("serve: %w: batch holds no queries", ErrInvalidQuery))
		return
	}
	if len(body.Queries) > maxBatchQueries {
		writeError(w, fmt.Errorf("serve: %w: batch holds %d queries, max %d", ErrInvalidQuery, len(body.Queries), maxBatchQueries))
		return
	}
	reqs := make([]QueryRequest, len(body.Queries))
	for i, raw := range body.Queries {
		mdec := json.NewDecoder(bytes.NewReader(raw))
		mdec.DisallowUnknownFields()
		req := defaultQueryRequest()
		if err := mdec.Decode(&req); err != nil {
			writeError(w, fmt.Errorf("serve: %w: query %d: %v", ErrInvalidQuery, i, err))
			return
		}
		reqs[i] = req
	}
	writeJSON(w, http.StatusOK, BatchResponse{Results: s.QueryBatch(reqs)})
}

// PoolsSaveRequest is the optional POST /v1/pools/save body; with no
// body (or an empty dir) the server's configured PoolDir is the target.
type PoolsSaveRequest struct {
	Dir string `json:"dir"`
}

// PoolsSaveResponse reports one save sweep.
type PoolsSaveResponse struct {
	Saved int    `json:"saved"`
	Dir   string `json:"dir"`
}

func (s *Server) handlePoolsSave(w http.ResponseWriter, r *http.Request) {
	var body PoolsSaveRequest
	if r.ContentLength != 0 {
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&body); err != nil {
			writeError(w, fmt.Errorf("serve: %w: invalid JSON body: %v", ErrInvalidQuery, err))
			return
		}
	}
	dir := body.Dir
	if dir == "" {
		dir = s.opt.PoolDir
	}
	saved, err := s.SavePools(dir)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, PoolsSaveResponse{Saved: saved, Dir: dir})
}

func (s *Server) handleJobsList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := decodeQueryBody(r)
	if err != nil {
		writeError(w, err)
		return
	}
	job, err := s.SubmitJob(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.Job(id)
	if !ok {
		writeError(w, fmt.Errorf("serve: %w %q", ErrUnknownJob, id))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// defaultQueryRequest pre-seeds the fields a request body may omit:
// epsilon defaults to the paper's 0.5 and seed to 1, matching
// imm.Defaults.
func defaultQueryRequest() QueryRequest {
	return QueryRequest{Epsilon: 0.5, Seed: 1}
}

// decodeQueryBody parses a POST JSON body into a QueryRequest. Fields
// absent from the body keep the pre-seeded defaults (the decoder only
// overwrites what the body names); unknown fields are rejected for the
// same reason the GET parser rejects unknown parameters — a misspelled
// "eps" for "epsilon" must fail loudly, not silently run with the
// default.
func decodeQueryBody(r *http.Request) (QueryRequest, error) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	req := defaultQueryRequest()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("serve: %w: invalid JSON body: %v", ErrInvalidQuery, err)
	}
	return req, nil
}

// queryFromURL parses the GET form of a query. k is required; epsilon
// and seed default as in defaultQueryRequest. Unknown parameters are
// rejected outright — a misspelled key (epsilon= for eps=) must fail
// loudly, not silently run with the default — and eps must be a finite
// number at parse time, not merely range-checked later.
func queryFromURL(r *http.Request) (QueryRequest, error) {
	q := r.URL.Query()
	for key := range q {
		switch key {
		case "graph", "model", "k", "eps", "seed":
		default:
			return QueryRequest{}, fmt.Errorf("serve: %w: unknown query parameter %q (accepted: graph, model, k, eps, seed)", ErrInvalidQuery, key)
		}
	}
	req := defaultQueryRequest()
	req.Graph = q.Get("graph")
	req.Model = q.Get("model")
	if req.Graph == "" {
		return req, fmt.Errorf("serve: %w: missing graph parameter", ErrInvalidQuery)
	}
	k, err := strconv.Atoi(q.Get("k"))
	if err != nil {
		return req, fmt.Errorf("serve: %w: invalid k parameter %q", ErrInvalidQuery, q.Get("k"))
	}
	req.K = k
	if v := q.Get("eps"); v != "" {
		eps, err := strconv.ParseFloat(v, 64)
		if err != nil || math.IsNaN(eps) || math.IsInf(eps, 0) {
			return req, fmt.Errorf("serve: %w: eps parameter %q is not a finite number", ErrInvalidQuery, v)
		}
		req.Epsilon = eps
	}
	if v := q.Get("seed"); v != "" {
		if req.Seed, err = strconv.ParseUint(v, 10, 64); err != nil {
			return req, fmt.Errorf("serve: %w: invalid seed parameter %q", ErrInvalidQuery, v)
		}
	}
	return req, nil
}

// statusForError maps a Server error to its HTTP status through the
// serve sentinels. Anything that wraps no sentinel is a genuine
// server-side failure: 500.
func statusForError(err error) int {
	switch {
	case errors.Is(err, ErrUnknownGraph), errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, ErrInvalidQuery), errors.Is(err, ErrInvalidDelta):
		return http.StatusBadRequest
	case errors.Is(err, ErrGraphExists):
		return http.StatusConflict
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// codeForError maps a Server error to its machine-readable envelope
// code through the serve sentinels.
func codeForError(err error) string {
	switch {
	case errors.Is(err, ErrUnknownGraph):
		return "unknown_graph"
	case errors.Is(err, ErrUnknownJob):
		return "unknown_job"
	case errors.Is(err, ErrInvalidQuery):
		return "invalid_query"
	case errors.Is(err, ErrInvalidDelta):
		return "invalid_delta"
	case errors.Is(err, ErrGraphExists):
		return "graph_exists"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, ErrShuttingDown):
		return "shutting_down"
	default:
		return "internal"
	}
}

// writeError reports err with its mapped status and code. Backpressure
// rejections carry Retry-After so well-behaved clients pace themselves
// instead of hammering the admission queue.
func writeError(w http.ResponseWriter, err error) {
	status := statusForError(err)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	WriteErrorEnvelope(w, status, codeForError(err), err.Error())
}

// ErrorBody is the payload inside the error envelope: a stable
// machine-readable code plus the human-readable message.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorResponse is the unified JSON error envelope every endpoint — and
// the cluster router in front of a fleet of them — uses for every
// failure: {"error":{"code":"...","message":"..."}}.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// WriteErrorEnvelope writes the unified error envelope. Exported so
// front-ends layered over this surface (the sharding router) fail with
// the same shape the backends do.
func WriteErrorEnvelope(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, ErrorResponse{Error: ErrorBody{Code: code, Message: message}})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}
