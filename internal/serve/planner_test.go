package serve

// Tests of the batched query planner, admission control, and shutdown
// draining. The concurrency tests use generous gather windows so that
// scheduling jitter cannot split a deliberate burst across drains.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
)

// TestBatchSharedExtension is the tentpole regression: N concurrent
// distinct-k queries on one warm pool must gather into one batch,
// perform exactly one shared θ-extension (exactly one member generates,
// everyone else reads its own θ-prefix), and still answer every member
// byte-identically to a cold run. Run under -race in CI.
func TestBatchSharedExtension(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	opt := Options{
		Workers:      2,
		MaxTheta:     8000,
		QueryWorkers: 16,
		GatherWindow: 300 * time.Millisecond,
	}
	s := testServer(t, opt, map[string]*graph.Graph{"g": g})

	// Warm the pool so the burst extends instead of building.
	warmup := QueryRequest{Graph: "g", K: 3, Epsilon: 0.8, Seed: 1}
	if _, err := s.Query(warmup); err != nil {
		t.Fatal(err)
	}

	reqs := []QueryRequest{
		{Graph: "g", K: 4, Epsilon: 0.6, Seed: 1},
		{Graph: "g", K: 20, Epsilon: 0.4, Seed: 1}, // largest requirement: the one extender
		{Graph: "g", K: 8, Epsilon: 0.5, Seed: 1},
		{Graph: "g", K: 12, Epsilon: 0.5, Seed: 1},
		{Graph: "g", K: 16, Epsilon: 0.5, Seed: 1},
	}
	results := make([]*QueryResult, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req QueryRequest) {
			defer wg.Done()
			res, err := s.Query(req)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i, req)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	generators := 0
	for i, res := range results {
		cold := coldRun(t, g, opt, reqs[i])
		if !reflect.DeepEqual(res.Seeds, cold.Seeds) || res.Theta != cold.Theta {
			t.Fatalf("member %d (k=%d): served %v/θ=%d != cold %v/θ=%d",
				i, reqs[i].K, res.Seeds, res.Theta, cold.Seeds, cold.Theta)
		}
		if !res.Warm {
			t.Fatalf("member %d not served warm: %+v", i, res)
		}
		if res.BatchSize != len(reqs) {
			t.Fatalf("member %d answered in a batch of %d, want %d (burst split)", i, res.BatchSize, len(reqs))
		}
		if res.GeneratedSets > 0 {
			generators++
			if reqs[i].K != 20 {
				t.Fatalf("member %d (k=%d) generated %d sets; only k=20 should extend", i, reqs[i].K, res.GeneratedSets)
			}
		}
	}
	if generators != 1 {
		t.Fatalf("%d members generated sets, want exactly 1 shared extension", generators)
	}

	st := s.Stats()
	if st.SharedExtensions != 1 {
		t.Fatalf("stats report %d shared extensions, want 1: %+v", st.SharedExtensions, st)
	}
	if st.BatchedQueries != int64(len(reqs)) || st.MaxBatchSize != len(reqs) {
		t.Fatalf("batch accounting off: %+v", st)
	}
	if st.SharedSets == 0 {
		t.Fatalf("no shared-extension savings recorded: %+v", st)
	}
	if st.Batches < 2 { // warm-up drain + the burst drain
		t.Fatalf("batches = %d, want >= 2", st.Batches)
	}
}

// TestAdmissionBackpressure pins the 429 path: with one worker, no wait
// queue, and a slow in-flight query, the overflow query is rejected
// with ErrOverloaded — and over HTTP that is a 429 with Retry-After.
func TestAdmissionBackpressure(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	opt := Options{
		Workers:      2,
		MaxTheta:     4000,
		QueryWorkers: 1,
		QueueDepth:   -1, // no waiting: reject when the worker is busy
		GatherWindow: 400 * time.Millisecond,
	}
	s := testServer(t, opt, map[string]*graph.Graph{"g": g})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	release := make(chan struct{})
	go func() {
		defer close(release)
		if _, err := s.Query(QueryRequest{Graph: "g", K: 5, Epsilon: 0.5, Seed: 1}); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(100 * time.Millisecond) // let the slow query take the slot

	if _, err := s.Query(QueryRequest{Graph: "g", K: 7, Epsilon: 0.5, Seed: 2}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow query returned %v, want ErrOverloaded", err)
	}
	resp, err := http.Get(ts.URL + "/query?graph=g&k=7&eps=0.5&seed=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow over HTTP: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	<-release
	if st := s.Stats(); st.Rejected != 2 {
		t.Fatalf("rejected = %d, want 2: %+v", st.Rejected, st)
	}

	// With the slot free again, the same query succeeds.
	if _, err := s.Query(QueryRequest{Graph: "g", K: 7, Epsilon: 0.5, Seed: 2}); err != nil {
		t.Fatalf("post-backpressure query failed: %v", err)
	}
}

// TestQueryBatchExceedsAdmission pins the batch admission contract: a
// well-formed batch larger than the admission capacity executes in
// waves instead of partially failing with inline overload errors (the
// batch body is its queue, not the bounded admission queue).
func TestQueryBatchExceedsAdmission(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	opt := Options{
		Workers:      2,
		MaxTheta:     4000,
		QueryWorkers: 1,
		QueueDepth:   -1, // a bounded query would be rejected outright
		GatherWindow: -1,
	}
	s := testServer(t, opt, map[string]*graph.Graph{"g": g})
	reqs := []QueryRequest{
		{Graph: "g", K: 4, Epsilon: 0.6, Seed: 1},
		{Graph: "g", K: 8, Epsilon: 0.5, Seed: 1},
		{Graph: "g", K: 6, Epsilon: 0.5, Seed: 2},
		{Graph: "g", K: 10, Epsilon: 0.5, Seed: 2},
	}
	items := s.QueryBatch(reqs)
	for i, item := range items {
		if item.Error != "" || item.Result == nil {
			t.Fatalf("member %d of an over-capacity batch failed: %+v", i, item)
		}
		cold := coldRun(t, g, opt, reqs[i])
		if !reflect.DeepEqual(item.Result.Seeds, cold.Seeds) {
			t.Fatalf("member %d: %v != cold %v", i, item.Result.Seeds, cold.Seeds)
		}
	}
	if st := s.Stats(); st.Rejected != 0 {
		t.Fatalf("batch members were rejected by admission: %+v", st)
	}
}

// TestShutdownDrains pins the drain contract: in-flight work finishes,
// work queued at admission is rejected cleanly, new work is refused,
// and finished job results stay readable.
func TestShutdownDrains(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	opt := Options{
		Workers:      2,
		MaxTheta:     4000,
		QueryWorkers: 1,
		GatherWindow: 400 * time.Millisecond, // keeps the in-flight query slow
	}
	s := testServer(t, opt, map[string]*graph.Graph{"g": g})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// A job that finishes before shutdown: its result must survive.
	done, err := s.SubmitJob(QueryRequest{Graph: "g", K: 4, Epsilon: 0.6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, s, done.ID)

	var inflightErr, queuedErr error
	var inflightRes *QueryResult
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // in-flight: holds the only worker slot through the gather window
		defer wg.Done()
		inflightRes, inflightErr = s.Query(QueryRequest{Graph: "g", K: 5, Epsilon: 0.5, Seed: 1})
	}()
	time.Sleep(100 * time.Millisecond)
	go func() { // queued at admission behind the in-flight query
		defer wg.Done()
		_, queuedErr = s.Query(QueryRequest{Graph: "g", K: 6, Epsilon: 0.5, Seed: 2})
	}()
	// A job submitted during the burst: it waits for a slot behind the
	// in-flight query, and shutdown must drain it to completion rather
	// than fail it.
	queuedJob, err := s.SubmitJob(QueryRequest{Graph: "g", K: 7, Epsilon: 0.6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	wg.Wait()

	if inflightErr != nil || inflightRes == nil {
		t.Fatalf("in-flight query did not finish cleanly: %v", inflightErr)
	}
	cold := coldRun(t, g, opt, QueryRequest{Graph: "g", K: 5, Epsilon: 0.5, Seed: 1})
	if !reflect.DeepEqual(inflightRes.Seeds, cold.Seeds) {
		t.Fatalf("drained in-flight answer diverged: %v != %v", inflightRes.Seeds, cold.Seeds)
	}
	if !errors.Is(queuedErr, ErrShuttingDown) {
		t.Fatalf("queued query returned %v, want ErrShuttingDown", queuedErr)
	}
	// The queued job drained: Shutdown returned only after it ran.
	if job, ok := s.Job(queuedJob.ID); !ok || job.State != JobDone || job.Result == nil {
		t.Fatalf("job queued at shutdown did not drain to completion: %+v (ok=%v)", job, ok)
	}

	// New work is refused — as 503 over HTTP — and submissions too.
	if _, err := s.Query(QueryRequest{Graph: "g", K: 5, Epsilon: 0.5, Seed: 1}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown query returned %v, want ErrShuttingDown", err)
	}
	if _, err := s.SubmitJob(QueryRequest{Graph: "g", K: 5, Epsilon: 0.5, Seed: 1}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown job returned %v, want ErrShuttingDown", err)
	}
	resp, err := http.Get(ts.URL + "/query?graph=g&k=5&eps=0.5&seed=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown HTTP query: status %d, want 503", resp.StatusCode)
	}

	// Finished results remain readable during and after drain.
	job, ok := s.Job(done.ID)
	if !ok || job.State != JobDone || job.Result == nil {
		t.Fatalf("finished job unreadable after shutdown: %+v (ok=%v)", job, ok)
	}
	resp, err = http.Get(ts.URL + "/jobs/" + done.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s after shutdown: status %d", done.ID, resp.StatusCode)
	}
	// Shutdown is idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestJobLifecycle pins the async API at the Go level: a job's answer
// is byte-identical to the synchronous one, and validation failures are
// rejected at submit time with the right sentinel.
func TestJobLifecycle(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	s := testServer(t, Options{Workers: 2, MaxTheta: 4000}, map[string]*graph.Graph{"g": g})
	req := QueryRequest{Graph: "g", K: 6, Epsilon: 0.5, Seed: 4}

	sync1, err := s.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	job, err := s.SubmitJob(req)
	if err != nil {
		t.Fatal(err)
	}
	job = waitJob(t, s, job.ID)
	if job.State != JobDone || job.Result == nil {
		t.Fatalf("job = %+v", job)
	}
	if !reflect.DeepEqual(job.Result.Seeds, sync1.Seeds) || job.Result.Theta != sync1.Theta {
		t.Fatalf("async answer %v/θ=%d != sync %v/θ=%d", job.Result.Seeds, job.Result.Theta, sync1.Seeds, sync1.Theta)
	}
	if !job.Result.Warm {
		t.Fatal("repeat job did not hit the warm pool")
	}

	if _, err := s.SubmitJob(QueryRequest{Graph: "nope", K: 3, Epsilon: 0.5}); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("unknown-graph job returned %v", err)
	}
	if _, err := s.SubmitJob(QueryRequest{Graph: "g", K: 0, Epsilon: 0.5}); !errors.Is(err, ErrInvalidQuery) {
		t.Fatalf("invalid job returned %v", err)
	}
	if _, ok := s.Job("job-12345"); ok {
		t.Fatal("unknown job id resolved")
	}
	st := s.Stats()
	if st.JobsSubmitted != 1 || st.JobsDone != 1 || st.JobsFailed != 0 {
		t.Fatalf("job stats = %+v", st)
	}
}

func waitJob(t *testing.T, s *Server, id string) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		job, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if job.State == JobDone || job.State == JobFailed {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, job.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
