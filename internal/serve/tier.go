package serve

// The disk tier: demotion, promotion, and pool-snapshot persistence.
//
// With Options.PoolDir set the LRU becomes two-tier. When resident
// bytes exceed PoolBudgetBytes, the eviction scan no longer drops cold
// pools — it demotes them: the victim's engine is frozen into a
// versioned .impool snapshot (internal/ingest), the file is installed
// under PoolDir, and the engine pointer is released so the RAM returns
// to the budget while the entry stays registered with a disk pointer.
// The next query on a demoted pool promotes it back: the snapshot is
// memory-mapped, validated against the graph's current delta epoch and
// content fingerprint, and thawed into a warm engine whose set payloads
// alias the mapping — no resampling, no copy, and the answer is
// byte-identical to both the demoted engine's and a cold run's (the
// freeze/thaw contract internal/imm/persist.go establishes and
// TestDemotedPoolAnswersIdentically pins).
//
// The same snapshot format powers instant-warm restarts: POST
// /v1/pools/save (or Server.SavePools) freezes every resident pool to
// disk, and a restarted server with -pool-dir rehydrates the directory
// at boot — entries appear with only disk pointers and promote lazily
// on first touch, so a SIGKILLed server answers its next query warm.
//
// Lock order everywhere here matches the planner: pe.mu first, then
// s.mu. Demotion candidates are therefore only *selected* under s.mu
// (inside evictLocked, which also releases their budget bytes
// immediately and marks them demoting so one demotion runs per entry);
// the freeze itself runs after the registry unlocks, taking the
// engine mutex so an in-flight batch drains before its pool freezes.
//
// A demoted snapshot can go stale: a delta advances the graph epoch,
// or an operator restarts onto different graph content. Promotion
// validates before thawing and treats any failure — stale binding,
// corrupt file, unreadable file — the same way: count it, drop the
// disk pointer, and fall through to cold regeneration. Staleness is
// never an error a client sees; it only costs the regeneration that
// would have happened anyway.

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/imm"
	"repro/internal/ingest"
)

// diskPool is one pool's disk-tier residue: an .impool snapshot on
// disk. The pointer (and its fields) are guarded by the server mutex.
type diskPool struct {
	path  string
	epoch int64 // graph epoch the snapshot was frozen at
	bytes int64 // file size, reported as Stats.DiskBytes
}

// poolFileName maps a pool key to its snapshot file name. The graph
// name is path-escaped (it may hold separators), the seed appended
// after the last dash — parsePoolFileName splits on the last dash with
// an all-digit suffix, so graph names containing dashes stay
// unambiguous.
func poolFileName(key poolKey) string {
	return url.PathEscape(key.graph) + "-" + strconv.FormatUint(key.seed, 10) + ingest.PoolSnapshotExt
}

// parsePoolFileName inverts poolFileName.
func parsePoolFileName(name string) (poolKey, bool) {
	stem, ok := strings.CutSuffix(name, ingest.PoolSnapshotExt)
	if !ok {
		return poolKey{}, false
	}
	i := strings.LastIndexByte(stem, '-')
	if i <= 0 {
		return poolKey{}, false
	}
	seed, err := strconv.ParseUint(stem[i+1:], 10, 64)
	if err != nil {
		return poolKey{}, false
	}
	graph, err := url.PathUnescape(stem[:i])
	if err != nil || graph == "" {
		return poolKey{}, false
	}
	return poolKey{graph: graph, seed: seed}, true
}

// writePoolFileAtomic writes st to dir/name via a temp file and rename,
// so a crash mid-write never leaves a half-written snapshot where the
// rehydration scan would find it, and returns the file size.
func writePoolFileAtomic(dir, name string, st *imm.PoolState) (int64, error) {
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := ingest.WritePoolSnapshot(tmp, st); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	size := ingest.PoolSnapshotSize(st)
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return 0, err
	}
	return size, nil
}

// demoteEntries freezes each marked victim to the disk tier. Callers
// (execute, after evictLocked marked the victims and released s.mu)
// pass entries whose demoting flag they own.
func (s *Server) demoteEntries(victims []*poolEntry) {
	for _, pe := range victims {
		s.demote(pe)
	}
}

// demote freezes one marked victim's engine into PoolDir and releases
// the engine. On any failure the entry is dropped entirely — the pool
// regenerates cold on next touch, exactly as a plain eviction.
func (s *Server) demote(pe *poolEntry) {
	pe.mu.Lock()
	defer pe.mu.Unlock()

	s.mu.Lock()
	eng := pe.eng
	epoch := pe.epoch
	alive := s.pools[pe.key] == pe
	s.mu.Unlock()
	if eng == nil || !alive {
		// Never built, already demoted by an earlier pass, or removed
		// (RemoveGraph) while we waited on the engine mutex.
		s.mu.Lock()
		pe.demoting = false
		s.mu.Unlock()
		return
	}

	name := poolFileName(pe.key)
	st, err := eng.Freeze(epoch)
	var size int64
	if err == nil {
		size, err = writePoolFileAtomic(s.opt.PoolDir, name, st)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	pe.demoting = false
	if err != nil {
		if s.pools[pe.key] == pe {
			s.removeEntryLocked(pe)
			s.stats.Evictions++
		}
		return
	}
	pe.eng = nil
	// A batch that ran while we waited for the engine mutex may have
	// re-accounted the pool; the RAM is free now either way.
	s.usedBytes -= pe.bytes
	pe.bytes = 0
	pe.disk = &diskPool{path: filepath.Join(s.opt.PoolDir, name), epoch: epoch, bytes: size}
	s.stats.Demotions++
}

// tryPromote attempts to thaw pe's disk snapshot into a warm engine.
// Callers hold pe.mu with pe.eng == nil. On success the engine is
// installed (warm, current epoch) and true is returned; on any failure
// — stale epoch, changed graph content, corrupt or unreadable file —
// the disk pointer and file are dropped, the failure counted, and the
// caller falls through to a cold build.
func (s *Server) tryPromote(ge *graphEntry, pe *poolEntry, opt imm.Options) bool {
	s.mu.Lock()
	disk := pe.disk
	g := ge.g
	epoch := ge.info.Epoch
	s.mu.Unlock()
	if disk == nil {
		return false
	}

	st, _, err := ingest.MapPoolSnapshotFile(disk.path)
	if err == nil {
		err = ingest.ValidatePoolGraph(st, g, epoch)
	}
	var eng *imm.WarmEngine
	if err == nil {
		eng, err = imm.ThawWarmEngine(g, opt, st)
	}
	if err != nil {
		os.Remove(disk.path)
		s.mu.Lock()
		if pe.disk == disk {
			pe.disk = nil
		}
		s.stats.PromoteFailures++
		s.mu.Unlock()
		return false
	}
	if s.opt.RemoteGen != nil {
		eng.SetRemote(s.opt.RemoteGen(ge.info.Name, g, opt))
	}
	pe.eng = eng
	s.mu.Lock()
	pe.epoch = epoch
	s.stats.Promotions++
	s.mu.Unlock()
	return true
}

// dropDiskLocked discards pe's disk-tier snapshot (pointer and file),
// if any. Callers hold s.mu.
func (s *Server) dropDiskLocked(pe *poolEntry) {
	if pe.disk != nil {
		os.Remove(pe.disk.path)
		pe.disk = nil
	}
}

// SavePools freezes every resident warm pool into dir as .impool
// snapshots and returns how many it wrote. With dir empty it defaults
// to Options.PoolDir. Entries whose engine is not built (placeholders,
// already-demoted pools) are skipped — their state is either nothing or
// already on disk. When dir is the server's own PoolDir the written
// snapshot also becomes the entry's disk-tier copy.
func (s *Server) SavePools(dir string) (int, error) {
	if dir == "" {
		dir = s.opt.PoolDir
	}
	if dir == "" {
		return 0, fmt.Errorf("serve: %w: no pool directory configured and none given", ErrInvalidQuery)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}

	s.mu.Lock()
	entries := make([]*poolEntry, 0, len(s.pools))
	for _, pe := range s.pools {
		entries = append(entries, pe)
	}
	s.mu.Unlock()
	// Save in key order, not map order: a save sweep that races an
	// eviction or a crash truncates at a deterministic point, and two
	// sweeps over the same pools write files in the same sequence.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].key.graph != entries[j].key.graph {
			return entries[i].key.graph < entries[j].key.graph
		}
		return entries[i].key.seed < entries[j].key.seed
	})

	saved := 0
	for _, pe := range entries {
		pe.mu.Lock()
		s.mu.Lock()
		eng := pe.eng
		epoch := pe.epoch
		alive := s.pools[pe.key] == pe
		s.mu.Unlock()
		if eng == nil || !alive {
			pe.mu.Unlock()
			continue
		}
		name := poolFileName(pe.key)
		st, err := eng.Freeze(epoch)
		var size int64
		if err == nil {
			size, err = writePoolFileAtomic(dir, name, st)
		}
		if err != nil {
			pe.mu.Unlock()
			return saved, fmt.Errorf("serve: save pool %s/%d: %w", pe.key.graph, pe.key.seed, err)
		}
		if dir == s.opt.PoolDir && s.opt.PoolDir != "" {
			s.mu.Lock()
			pe.disk = &diskPool{path: filepath.Join(dir, name), epoch: epoch, bytes: size}
			s.mu.Unlock()
		}
		pe.mu.Unlock()
		saved++
	}

	s.mu.Lock()
	s.stats.PoolsSaved += int64(saved)
	s.mu.Unlock()
	return saved, nil
}

// LoadPools scans Options.PoolDir for .impool snapshots of registered
// graphs and registers each as a disk-tier pool entry: no engine is
// built and no payload bytes are read (only the snapshot header and
// metadata block), so boot stays fast — the first query on each pool
// promotes it via mmap, answering warm with zero generated sets.
// Snapshots for unregistered graphs are left on disk untouched (their
// graph may be registered later); unreadable or misnamed files are
// skipped. Returns how many pools were rehydrated.
func (s *Server) LoadPools() (int, error) {
	if s.opt.PoolDir == "" {
		return 0, nil
	}
	dirents, err := os.ReadDir(s.opt.PoolDir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}

	loaded := 0
	for _, de := range dirents {
		if de.IsDir() {
			continue
		}
		key, ok := parsePoolFileName(de.Name())
		if !ok {
			continue
		}
		path := filepath.Join(s.opt.PoolDir, de.Name())
		info, err := ingest.ReadPoolSnapshotInfoFile(path)
		if err != nil {
			continue // corrupt or foreign file; promotion would reject it anyway
		}

		s.mu.Lock()
		_, registered := s.graphs[key.graph]
		_, exists := s.pools[key]
		if !registered || exists {
			s.mu.Unlock()
			continue
		}
		pe := &poolEntry{
			key:  key,
			disk: &diskPool{path: path, epoch: info.Epoch, bytes: info.Bytes},
		}
		s.pools[key] = pe
		// Rehydrated entries enter at the LRU cold end: they cost no RAM
		// until promoted, and a budget squeeze should prefer dropping a
		// never-touched disk entry over a hot resident pool.
		pe.elem = s.lru.PushBack(pe)
		s.stats.Rehydrated++
		s.mu.Unlock()
		loaded++
	}
	return loaded, nil
}
