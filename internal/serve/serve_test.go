package serve

import (
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/imm"
	"repro/internal/ingest"
)

func testGraph(t testing.TB, scale int, model graph.Model) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(scale, 6), model, 42)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testServer(t testing.TB, opt Options, graphs map[string]*graph.Graph) *Server {
	t.Helper()
	s := NewServer(opt)
	for name, g := range graphs {
		if _, err := s.AddGraph(name, g, 42); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// coldRun computes the reference answer the server must reproduce,
// deriving the engine configuration through the same mapping the server
// uses.
func coldRun(t testing.TB, g *graph.Graph, opt Options, req QueryRequest) *imm.Result {
	t.Helper()
	o := opt.EngineOptions()
	o.K = req.K
	o.Epsilon = req.Epsilon
	o.Seed = req.Seed
	res, err := imm.Run(g, o)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestQueryMatchesColdRun(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	opt := Options{Workers: 2, MaxTheta: 6000}
	s := testServer(t, opt, map[string]*graph.Graph{"g": g})

	queries := []QueryRequest{
		{Graph: "g", K: 10, Epsilon: 0.5, Seed: 1},
		{Graph: "g", K: 10, Epsilon: 0.5, Seed: 1}, // warm repeat
		{Graph: "g", K: 4, Epsilon: 0.7, Seed: 1},  // truncated view
		{Graph: "g", K: 20, Epsilon: 0.4, Seed: 1}, // θ extension
		{Graph: "g", K: 10, Epsilon: 0.5, Seed: 9}, // different pool
	}
	for i, req := range queries {
		res, err := s.Query(req)
		if err != nil {
			t.Fatal(err)
		}
		cold := coldRun(t, g, opt, req)
		if !reflect.DeepEqual(res.Seeds, cold.Seeds) || res.Theta != cold.Theta || res.Coverage != cold.Coverage {
			t.Fatalf("query %d: served %v/θ=%d != cold %v/θ=%d", i, res.Seeds, res.Theta, cold.Seeds, cold.Theta)
		}
		if wantWarm := i == 1 || i == 2 || i == 3; res.Warm != wantWarm {
			t.Fatalf("query %d: warm=%v, want %v", i, res.Warm, wantWarm)
		}
	}
	st := s.Stats()
	if st.ColdMisses != 2 || st.WarmHits != 3 {
		t.Fatalf("stats misses/hits = %d/%d, want 2/3", st.ColdMisses, st.WarmHits)
	}
	if st.ReusedSets == 0 || st.ReusedBytes == 0 {
		t.Fatalf("warm hits reused nothing: %+v", st)
	}
}

// TestWarmRepeatGeneratesNothing pins the amortization contract of the
// serving layer: an exact repeat consumes only the warm pool.
func TestWarmRepeatGeneratesNothing(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	s := testServer(t, Options{Workers: 2, MaxTheta: 6000}, map[string]*graph.Graph{"g": g})
	req := QueryRequest{Graph: "g", K: 10, Epsilon: 0.5, Seed: 1}

	first, err := s.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Warm || first.GeneratedSets == 0 {
		t.Fatalf("cold query: warm=%v generated=%d", first.Warm, first.GeneratedSets)
	}
	second, err := s.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Warm || second.GeneratedSets != 0 || second.ReusedSets != second.Theta {
		t.Fatalf("warm repeat: warm=%v generated=%d reused=%d θ=%d",
			second.Warm, second.GeneratedSets, second.ReusedSets, second.Theta)
	}
	if !reflect.DeepEqual(first.Seeds, second.Seeds) {
		t.Fatalf("warm seeds diverged: %v vs %v", first.Seeds, second.Seeds)
	}
}

// TestConcurrentQueries exercises the server under -race: identical
// queries (which must coalesce or serialize) interleaved with distinct
// queries across two graphs and several pools.
func TestConcurrentQueries(t *testing.T) {
	gIC := testGraph(t, 8, graph.IC)
	gLT := testGraph(t, 8, graph.LT)
	s := testServer(t, Options{Workers: 2, MaxTheta: 4000},
		map[string]*graph.Graph{"ic": gIC, "lt": gLT})

	reqs := []QueryRequest{
		{Graph: "ic", K: 10, Epsilon: 0.5, Seed: 1},
		{Graph: "ic", K: 10, Epsilon: 0.5, Seed: 1}, // identical: coalesce or warm-hit
		{Graph: "ic", K: 5, Epsilon: 0.6, Seed: 1},  // same pool, distinct query
		{Graph: "ic", K: 10, Epsilon: 0.5, Seed: 2}, // distinct pool
		{Graph: "lt", K: 8, Epsilon: 0.5, Seed: 1},  // distinct graph
		{Graph: "lt", K: 8, Epsilon: 0.5, Seed: 1},  // identical again
	}
	const rounds = 4
	var wg sync.WaitGroup
	results := make([][]*QueryResult, rounds)
	for round := 0; round < rounds; round++ {
		results[round] = make([]*QueryResult, len(reqs))
		for i, req := range reqs {
			wg.Add(1)
			go func(round, i int, req QueryRequest) {
				defer wg.Done()
				res, err := s.Query(req)
				if err != nil {
					t.Error(err)
					return
				}
				results[round][i] = res
			}(round, i, req)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	// Every occurrence of the same query must have produced the same
	// seeds, however it was served (cold, warm, or coalesced).
	for i := range reqs {
		want := results[0][i].Seeds
		for round := 1; round < rounds; round++ {
			if !reflect.DeepEqual(results[round][i].Seeds, want) {
				t.Fatalf("request %d round %d: seeds %v != %v", i, round, results[round][i].Seeds, want)
			}
		}
	}
	// And they must match a cold run.
	for i, req := range reqs {
		g := gIC
		if req.Graph == "lt" {
			g = gLT
		}
		cold := coldRun(t, g, Options{Workers: 2, MaxTheta: 4000}, req)
		if !reflect.DeepEqual(results[0][i].Seeds, cold.Seeds) {
			t.Fatalf("request %d: served %v != cold %v", i, results[0][i].Seeds, cold.Seeds)
		}
	}
}

// TestEvictionUnderBytePressure pins the LRU byte budget: with a budget
// below the footprint of all pools together, old pools are dropped,
// re-querying them is a cold miss again, and answers stay identical.
func TestEvictionUnderBytePressure(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	probe := testServer(t, Options{Workers: 2, MaxTheta: 4000}, map[string]*graph.Graph{"g": g})
	res, err := probe.Query(QueryRequest{Graph: "g", K: 8, Epsilon: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	onePool := res.PoolBytes
	if onePool == 0 {
		t.Fatal("probe pool has no resident bytes")
	}

	// Budget for two pools; query three seeds round-robin.
	s := testServer(t, Options{Workers: 2, MaxTheta: 4000, PoolBudgetBytes: 2*onePool + onePool/2},
		map[string]*graph.Graph{"g": g})
	var first []*QueryResult
	for _, seed := range []uint64{1, 2, 3} {
		r, err := s.Query(QueryRequest{Graph: "g", K: 8, Epsilon: 0.5, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		first = append(first, r)
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under byte pressure: %+v", st)
	}
	if st.PoolBytes > st.BudgetBytes {
		t.Fatalf("resident %d bytes exceeds budget %d", st.PoolBytes, st.BudgetBytes)
	}
	// Seed 1 was evicted (least recently used): the repeat is cold but
	// byte-identical.
	r, err := s.Query(QueryRequest{Graph: "g", K: 8, Epsilon: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Warm {
		t.Fatal("evicted pool reported a warm hit")
	}
	if !reflect.DeepEqual(r.Seeds, first[0].Seeds) {
		t.Fatalf("post-eviction seeds %v != original %v", r.Seeds, first[0].Seeds)
	}
}

// TestOverBudgetPoolNotSelfEvicted is the regression test for the
// eviction defect: a pool whose footprint alone exceeds the byte budget
// must not be evicted by the very query that just populated it (the
// budget transiently overshoots instead, as for pinned pools) — the bug
// made every repeat query on such a pool regenerate from scratch
// forever. LRU pressure from *other* pools must still evict it.
func TestOverBudgetPoolNotSelfEvicted(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	s := testServer(t, Options{Workers: 2, MaxTheta: 4000, PoolBudgetBytes: 1},
		map[string]*graph.Graph{"g": g})
	req := QueryRequest{Graph: "g", K: 8, Epsilon: 0.5, Seed: 1}

	first, err := s.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Warm || first.PoolBytes <= 1 {
		t.Fatalf("cold probe = %+v", first)
	}
	second, err := s.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Warm || second.GeneratedSets != 0 {
		t.Fatalf("repeat on the over-budget pool went cold (the self-eviction bug): %+v", second)
	}
	if !reflect.DeepEqual(second.Seeds, first.Seeds) {
		t.Fatalf("warm seeds diverged: %v vs %v", second.Seeds, first.Seeds)
	}
	if st := s.Stats(); st.Evictions != 0 {
		t.Fatalf("the resident pool was evicted %d times with no competitor: %+v", st.Evictions, st)
	}

	// A query on a different pool makes the first pool the LRU victim:
	// the budget still works, it just never evicts the in-use entry.
	if _, err := s.Query(QueryRequest{Graph: "g", K: 8, Epsilon: 0.5, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Evictions != 1 || st.Pools != 1 {
		t.Fatalf("LRU pressure did not evict the idle pool: %+v", st)
	}
	third, err := s.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	if third.Warm {
		t.Fatal("evicted pool reported a warm hit")
	}
	if !reflect.DeepEqual(third.Seeds, first.Seeds) {
		t.Fatalf("post-eviction seeds %v != original %v", third.Seeds, first.Seeds)
	}
}

func TestQueryValidation(t *testing.T) {
	g := testGraph(t, 7, graph.IC)
	s := testServer(t, Options{Workers: 1, MaxTheta: 2000}, map[string]*graph.Graph{"g": g})
	cases := []struct {
		req  QueryRequest
		want error
	}{
		{QueryRequest{Graph: "missing", K: 5, Epsilon: 0.5, Seed: 1}, ErrUnknownGraph},
		{QueryRequest{Graph: "g", K: 0, Epsilon: 0.5, Seed: 1}, ErrInvalidQuery},
		{QueryRequest{Graph: "g", K: 5, Epsilon: 1.5, Seed: 1}, ErrInvalidQuery},
		{QueryRequest{Graph: "g", K: 5, Epsilon: math.NaN(), Seed: 1}, ErrInvalidQuery},
		{QueryRequest{Graph: "g", K: 5, Epsilon: 0.5, Model: "LT"}, ErrInvalidQuery}, // mismatch (graph is IC)
	}
	for i, c := range cases {
		if _, err := s.Query(c.req); !errors.Is(err, c.want) {
			t.Fatalf("case %d: query %+v returned %v, want %v", i, c.req, err, c.want)
		}
	}
	if _, err := s.Query(QueryRequest{Graph: "g", K: 5, Epsilon: 0.5, Seed: 1, Model: "IC"}); err != nil {
		t.Fatalf("matching explicit model rejected: %v", err)
	}
}

func TestRegistry(t *testing.T) {
	g := testGraph(t, 7, graph.IC)
	s := NewServer(Options{})
	if _, err := s.AddGraph("g", g, 42); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddGraph("g", g, 42); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if _, err := s.AddGraph("", g, 42); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := s.AddGraph("nil", nil, 42); err == nil {
		t.Fatal("nil graph accepted")
	}

	// Snapshot round-trip into the registry.
	path := filepath.Join(t.TempDir(), "g.imsnap")
	if err := ingest.WriteSnapshotFile(path, g, 42); err != nil {
		t.Fatal(err)
	}
	info, err := s.AddSnapshot("snap", path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Nodes != g.N || info.Edges != g.M || info.WeightSeed != 42 {
		t.Fatalf("snapshot info %+v does not match graph (n=%d m=%d)", info, g.N, g.M)
	}
	if _, err := s.AddSnapshot("bad", filepath.Join(t.TempDir(), "missing.imsnap")); err == nil {
		t.Fatal("missing snapshot accepted")
	}

	graphs := s.Graphs()
	if len(graphs) != 2 || graphs[0].Name != "g" || graphs[1].Name != "snap" {
		t.Fatalf("unexpected graph list %+v", graphs)
	}

	// A snapshot-registered graph serves the same answer as the
	// in-memory original.
	req := QueryRequest{Graph: "g", K: 5, Epsilon: 0.5, Seed: 1}
	a, err := s.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	req.Graph = "snap"
	b, err := s.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Seeds, b.Seeds) {
		t.Fatalf("snapshot answer %v != in-memory answer %v", b.Seeds, a.Seeds)
	}
}
