package serve

// The batched query planner and its admission control.
//
// Concurrency shape: a query first passes admission (a bounded worker
// pool with a bounded wait queue — the backpressure seam), then joins
// its pool's wait queue. The first query to reach an idle pool becomes
// the drainer: it waits one gather window for concurrent queries on the
// same pool to pile up, then repeatedly drains the whole queue as one
// batch until the queue is empty — "whoever holds the pool drains the
// waiting queue". Each batch is answered by imm.WarmEngine.AnswerBatch:
// one shared θ-extension sized by the largest member, every member read
// from its own θ-prefix, so a mixed-k/mixed-ε burst pays one generation
// pass instead of a serialized convoy of incremental extensions.
//
// Async execution rides the same path: SubmitJob validates up front,
// records a job, and runs the query on its own goroutine with unbounded
// admission (the jobs table is its queue). Shutdown closes admission —
// queued-but-unadmitted work is rejected with ErrShuttingDown, admitted
// work drains, and finished job results stay readable.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/imm"
)

// admitMode selects a query's admission behavior.
type admitMode int

const (
	// admitBounded is the synchronous /query contract: join the wait
	// queue if it has room, fail fast with ErrOverloaded otherwise, and
	// give up with ErrShuttingDown when shutdown begins.
	admitBounded admitMode = iota
	// admitBatch is the /batch contract: members wait for a worker slot
	// without the queue bound (the batch body, capped by the handler, is
	// their queue), but shutdown still rejects the not-yet-admitted
	// remainder — their failure is reported inline.
	admitBatch
	// admitJob is the async contract: the job was accepted at submit
	// time, so it waits for a slot unconditionally — shutdown drains it
	// to completion instead of failing it.
	admitJob
)

// admission is the bounded query worker pool: slots cap concurrent
// execution, waiting/maxWait bound the queue of queries blocked on a
// free slot.
type admission struct {
	slots chan struct{}

	mu      sync.Mutex
	waiting int
	maxWait int
}

func newAdmission(workers, queue int) *admission {
	return &admission{slots: make(chan struct{}, workers), maxWait: queue}
}

// acquire takes a worker slot, waiting (or failing) per mode.
func (a *admission) acquire(mode admitMode, closed <-chan struct{}) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	a.mu.Lock()
	if mode == admitBounded && a.waiting >= a.maxWait {
		a.mu.Unlock()
		return fmt.Errorf("serve: %w: %d queries executing and %d waiting", ErrOverloaded, cap(a.slots), a.waiting)
	}
	a.waiting++
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		a.waiting--
		a.mu.Unlock()
	}()
	if mode == admitJob {
		a.slots <- struct{}{}
		return nil
	}
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-closed:
		return fmt.Errorf("serve: %w", ErrShuttingDown)
	}
}

func (a *admission) release() { <-a.slots }

// gauges returns (in-flight, queued) for Stats.
func (a *admission) gauges() (int, int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.slots), a.waiting
}

// batchWaiter is one query waiting to be answered by its pool's next
// batch drain.
type batchWaiter struct {
	req  QueryRequest
	done chan struct{}
	res  *QueryResult
	err  error
}

// begin registers one unit of accepted work for shutdown draining,
// rejecting it when shutdown has already begun.
func (s *Server) begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("serve: %w", ErrShuttingDown)
	}
	s.wg.Add(1)
	return nil
}

func (s *Server) end() { s.wg.Done() }

// Shutdown stops admitting work and drains what was accepted: new
// queries and job submissions fail with ErrShuttingDown, synchronous
// queries and batch members still waiting at admission are rejected
// cleanly, while in-flight batches and every already-submitted job —
// queued or running — run to completion, and finished job results
// remain readable (Job, Jobs, Stats, and Graphs never close). It
// returns nil once every accepted unit of work has finished, or
// ctx.Err() if the context expires first (the work keeps draining in
// the background).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.closedCh)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// drainPool is the batch leader's loop: wait out the gather window,
// then answer the pool's whole wait queue batch by batch until it is
// empty. The leader is itself a member of the first batch.
func (s *Server) drainPool(ge *graphEntry, pe *poolEntry) {
	if w := s.opt.GatherWindow; w > 0 {
		time.Sleep(w)
	}
	pe.mu.Lock()
	defer pe.mu.Unlock()
	for {
		pe.qmu.Lock()
		batch := pe.waiters
		if len(batch) == 0 {
			pe.draining = false
			pe.qmu.Unlock()
			return
		}
		pe.waiters = nil
		pe.qmu.Unlock()
		s.runBatch(ge, pe, batch)
	}
}

// runBatch answers one drained batch on the pool's engine. Callers hold
// pe.mu. Per-member validation already happened at query entry, so an
// engine error here is a genuine server-side failure shared by every
// member.
func (s *Server) runBatch(ge *graphEntry, pe *poolEntry, batch []*batchWaiter) {
	fail := func(err error) {
		for _, w := range batch {
			w.err = err
			close(w.done)
		}
	}
	warm := pe.eng != nil
	if !warm {
		// Disk tier first: a demoted or rehydrated pool promotes via
		// mmap instead of regenerating — still warm, zero generated
		// sets, byte-identical answers (the freeze/thaw contract).
		warm = s.tryPromote(ge, pe, s.queryOptions(batch[0].req))
	}
	if pe.eng == nil {
		opt := s.queryOptions(batch[0].req)
		// Snapshot the registry's current graph and epoch under the
		// server mutex: a concurrent delta swaps ge.g, and its repair
		// pass finds engines built against the pre-swap graph by the
		// epoch recorded here.
		s.mu.Lock()
		g := ge.g
		pe.epoch = ge.info.Epoch
		s.mu.Unlock()
		eng, err := imm.NewWarmEngine(g, opt)
		if err != nil {
			fail(err)
			return
		}
		if s.opt.RemoteGen != nil {
			// Cluster mode: let worker ranks generate this pool's slot
			// chunks. Slot determinism keeps the pool — and every answer
			// from it — byte-identical to local generation, so this is
			// purely a placement decision.
			eng.SetRemote(s.opt.RemoteGen(ge.info.Name, g, opt))
		}
		pe.eng = eng
	}
	queries := make([]imm.BatchQuery, len(batch))
	for i, w := range batch {
		queries[i] = imm.BatchQuery{K: w.req.K, Epsilon: w.req.Epsilon}
	}
	rep, err := pe.eng.AnswerBatch(s.queryOptions(batch[0].req), queries)
	if err != nil {
		fail(err)
		return
	}

	var sharedSets int64
	for i, w := range batch {
		a := rep.Answers[i]
		w.res = &QueryResult{
			Graph:   w.req.Graph,
			Model:   ge.info.Model,
			K:       w.req.K,
			Epsilon: w.req.Epsilon,
			Seed:    w.req.Seed,

			Seeds:    a.Res.Seeds,
			Theta:    a.Res.Theta,
			Rounds:   a.Res.Rounds,
			Coverage: a.Res.Coverage,

			Warm:          warm,
			BatchSize:     len(batch),
			ReusedSets:    a.ReusedSets,
			GeneratedSets: a.GeneratedSets,
			SharedSets:    a.SharedSets,
			ReusedBytes:   a.ReusedBytes,
			PoolBytes:     rep.PoolBytes,
		}
		sharedSets += a.SharedSets
		close(w.done)
	}

	s.mu.Lock()
	s.stats.Batches++
	if len(batch) > s.stats.MaxBatchSize {
		s.stats.MaxBatchSize = len(batch)
	}
	if len(batch) > 1 {
		s.stats.BatchedQueries += int64(len(batch))
		s.stats.SharedExtensions += int64(rep.Extensions)
		s.stats.SharedSets += sharedSets
	}
	s.mu.Unlock()
}

// BatchItem is one member's outcome in a QueryBatch answer: exactly one
// of Result and Error is set; Code accompanies Error with the same
// machine-readable code the error envelope carries, so batch clients
// dispatch on member failures without string matching.
type BatchItem struct {
	Result *QueryResult `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
	Code   string       `json:"code,omitempty"`
}

// QueryBatch answers many queries in one call. Members run through the
// regular planner concurrently, so members that target the same (graph,
// seed) pool gather into shared-extension batches; members targeting
// different pools simply run in parallel. Members wait for worker slots
// without the bounded queue's rejection — the batch body (capped by
// the HTTP handler) is their queue, so a well-formed batch larger than
// the admission capacity executes in waves instead of partially
// failing with overload errors or crowding synchronous queries out of
// the wait queue. Failures are reported per member — one bad request
// does not poison its neighbors.
func (s *Server) QueryBatch(reqs []QueryRequest) []BatchItem {
	items := make([]BatchItem, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.query(reqs[i], admitBatch)
			if err != nil {
				items[i].Error = err.Error()
				items[i].Code = codeForError(err)
				return
			}
			items[i].Result = res
		}(i)
	}
	wg.Wait()
	return items
}

// JobState is the lifecycle of an async query.
type JobState string

const (
	// JobQueued means the job is accepted but not yet executing.
	JobQueued JobState = "queued"
	// JobRunning means the job's query is admitted or waiting for a
	// worker slot.
	JobRunning JobState = "running"
	// JobDone means the job finished and Result is set.
	JobDone JobState = "done"
	// JobFailed means the job finished and Error is set.
	JobFailed JobState = "failed"
)

// Job is the public view of one async query — what GET /jobs/{id}
// returns.
type Job struct {
	ID      string       `json:"id"`
	State   JobState     `json:"state"`
	Request QueryRequest `json:"request"`
	Result  *QueryResult `json:"result,omitempty"`
	Error   string       `json:"error,omitempty"`
}

// jobEntry is the registry record of one job; the embedded Job is
// guarded by Server.mu.
type jobEntry struct {
	seq int64
	job Job
}

// maxRetainedJobs bounds the jobs table: when a submission would exceed
// it, the oldest finished job is pruned (running jobs are never
// dropped).
const maxRetainedJobs = 4096

// SubmitJob validates req, registers an async job for it, and starts
// executing on a background goroutine. The job waits for a worker slot
// without the bounded queue's rejection — the jobs table is its queue —
// which is what makes it the right front door for long cold queries
// during bursts; a job accepted here runs to completion even if
// Shutdown begins while it is still waiting for a slot (Shutdown's
// drain covers it). Poll the returned id with Job.
func (s *Server) SubmitJob(req QueryRequest) (Job, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Job{}, fmt.Errorf("serve: %w", ErrShuttingDown)
	}
	if _, err := s.checkRequestLocked(req); err != nil {
		s.mu.Unlock()
		return Job{}, err
	}
	s.jobSeq++
	id := fmt.Sprintf("job-%d", s.jobSeq)
	je := &jobEntry{seq: s.jobSeq, job: Job{ID: id, State: JobQueued, Request: req}}
	s.jobs[id] = je
	s.pruneJobsLocked()
	s.stats.JobsSubmitted++
	s.wg.Add(1)         // the job goroutine is accepted work: Shutdown waits for it
	submitted := je.job // copy before unlocking: the goroutine mutates je.job
	s.mu.Unlock()

	go func() {
		defer s.wg.Done()
		s.mu.Lock()
		je.job.State = JobRunning
		s.mu.Unlock()
		res, err := s.query(req, admitJob)
		s.mu.Lock()
		if err != nil {
			je.job.State = JobFailed
			je.job.Error = err.Error()
			s.stats.JobsFailed++
		} else {
			je.job.State = JobDone
			je.job.Result = res
			s.stats.JobsDone++
		}
		s.mu.Unlock()
	}()
	return submitted, nil
}

// Job returns the current view of one async job.
func (s *Server) Job(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	je, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return je.job, true
}

// Jobs lists every retained job, oldest first.
func (s *Server) Jobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*jobEntry, 0, len(s.jobs))
	for _, je := range s.jobs {
		out = append(out, je)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	jobs := make([]Job, len(out))
	for i, je := range out {
		jobs[i] = je.job
	}
	return jobs
}

// pruneJobsLocked evicts the oldest finished job when the table is
// over its retention cap.
func (s *Server) pruneJobsLocked() {
	if len(s.jobs) <= maxRetainedJobs {
		return
	}
	var victim *jobEntry
	for _, je := range s.jobs {
		if je.job.State != JobDone && je.job.State != JobFailed {
			continue
		}
		if victim == nil || je.seq < victim.seq {
			victim = je
		}
	}
	if victim != nil {
		delete(s.jobs, victim.job.ID)
	}
}
