package serve

// Graph lifecycle: registration, removal, and streaming edge deltas
// with incremental warm-pool repair.
//
// Epoch semantics: every registered graph carries an epoch counter,
// 0 at registration and incremented by each delta that changes the
// graph. ApplyDelta swaps the registry's CSR pointer under the server
// mutex, then walks this graph's warm pools and repairs each one under
// its engine mutex — so a batch that is mid-drain finishes on the old
// epoch (in-flight queries drain on the epoch they started on), and
// the delta call does not return until every resident pool answers for
// the new epoch. Pools the byte budget evicted before the delta simply
// regenerate cold on the post-delta graph when next queried — the
// fallback needs no special casing because eviction already removes
// the entry entirely.
//
// Repair correctness is internal/imm's contract: a repaired pool is
// byte-identical to a pool generated cold on the post-delta graph, so
// a delta never changes what any future query answers — only how much
// resampling it costs.

import (
	"fmt"
	"time"

	"repro/internal/graph"
)

// DeltaResult reports one applied delta: the post-delta graph shape,
// what the delta changed (and silently dropped, outside strict mode),
// and what the warm-pool repair pass did.
type DeltaResult struct {
	Graph     string    `json:"graph"`
	Epoch     int64     `json:"epoch"`
	UpdatedAt time.Time `json:"updated_at"`
	Nodes     int32     `json:"nodes"`
	Edges     int64     `json:"edges"`

	// Changed reports whether the delta modified the graph at all; a
	// no-op delta (everything dropped or empty) leaves the epoch alone.
	Changed bool  `json:"changed"`
	Added   int64 `json:"added"`
	Removed int64 `json:"removed"`

	DroppedSelfLoops  int64 `json:"dropped_self_loops,omitempty"`
	DroppedDuplicates int64 `json:"dropped_duplicates,omitempty"`
	MissingRemovals   int64 `json:"missing_removals,omitempty"`

	// DirtyVertices is how many vertices had their in-segment changed —
	// the invalidation frontier pool repair works from.
	DirtyVertices int `json:"dirty_vertices"`
	// PoolsRepaired counts this graph's warm pools patched in place;
	// SetsResampled the slots resampled across them; FullResamples the
	// pools that fell back to whole-pool regeneration (vertex growth).
	PoolsRepaired int64 `json:"pools_repaired"`
	SetsResampled int64 `json:"sets_resampled"`
	FullResamples int64 `json:"full_resamples"`
}

// RemoveGraph unregisters name and evicts every warm pool keyed to it,
// returning the removed graph's info and how many pools were dropped.
// Queries already executing against the graph drain on the entries
// they hold; new queries fail with ErrUnknownGraph.
func (s *Server) RemoveGraph(name string) (GraphInfo, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ge, ok := s.graphs[name]
	if !ok {
		return GraphInfo{}, 0, fmt.Errorf("serve: %w %q", ErrUnknownGraph, name)
	}
	delete(s.graphs, name)
	s.stats.Graphs = len(s.graphs)
	evicted := 0
	for key, pe := range s.pools {
		if key.graph != name {
			continue
		}
		// Pinned entries are unregistered too: the in-flight queries
		// keep their engine pointers and finish normally, and execute's
		// registry check keeps them from re-accounting a removed entry.
		s.removeEntryLocked(pe)
		s.stats.Evictions++
		evicted++
	}
	return ge.info, evicted, nil
}

// GraphByName returns one registered graph's info.
func (s *Server) GraphByName(name string) (GraphInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ge, ok := s.graphs[name]
	if !ok {
		return GraphInfo{}, fmt.Errorf("serve: %w %q", ErrUnknownGraph, name)
	}
	return ge.info, nil
}

// ApplyDelta applies one edge delta to the named graph: a new CSR
// epoch is built with graph.ApplyDelta, the registry is swapped to it,
// and every resident warm pool of the graph is repaired in place
// (invalid slots resampled, everything else retained) so subsequent
// queries answer for the post-delta graph — byte-identical to a server
// that had loaded the post-delta graph cold. Concurrent deltas on the
// same graph serialize; concurrent queries either drain on the old
// epoch (if their batch started first) or see the new one.
func (s *Server) ApplyDelta(name string, d graph.Delta, opt graph.DeltaOptions) (*DeltaResult, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()

	s.mu.Lock()
	ge, ok := s.graphs[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("serve: %w %q", ErrUnknownGraph, name)
	}

	ge.deltaMu.Lock()
	defer ge.deltaMu.Unlock()
	s.mu.Lock()
	g := ge.g
	s.mu.Unlock()

	ng, rep, err := graph.ApplyDelta(g, d, opt)
	if err != nil {
		return nil, fmt.Errorf("serve: %w: %v", ErrInvalidDelta, err)
	}
	res := &DeltaResult{
		Graph:             name,
		Nodes:             rep.NewN,
		Edges:             rep.NewM,
		Changed:           rep.Changed(),
		Added:             rep.Added,
		Removed:           rep.Removed,
		DroppedSelfLoops:  rep.DroppedSelfLoops,
		DroppedDuplicates: rep.DroppedDuplicates,
		MissingRemovals:   rep.MissingRemovals,
		DirtyVertices:     len(rep.Dirty),
	}

	s.mu.Lock()
	if !rep.Changed() {
		// No-op: the registry (and every pool) already answers for this
		// graph; only the delta counter moves.
		s.stats.Deltas++
		res.Epoch, res.UpdatedAt = ge.info.Epoch, ge.info.UpdatedAt
		s.mu.Unlock()
		return res, nil
	}
	ge.g = ng
	ge.info.Nodes, ge.info.Edges = ng.N, ng.M
	ge.info.Epoch++
	ge.info.UpdatedAt = time.Now().UTC()
	epoch := ge.info.Epoch
	res.Epoch, res.UpdatedAt = epoch, ge.info.UpdatedAt
	s.stats.Deltas++
	s.stats.DeltaEdgesAdded += rep.Added
	s.stats.DeltaEdgesRemoved += rep.Removed
	s.mu.Unlock()

	// Repair every resident pool of this graph. The scan repeats until
	// no pool lags the new epoch: entries created while we repair are
	// built from the already-swapped registry graph (the drainer
	// snapshots graph and epoch together), so the loop converges.
	for {
		var stale *poolEntry
		s.mu.Lock()
		for key, pe := range s.pools {
			if key.graph == name && pe.epoch < epoch {
				stale = pe
				break
			}
		}
		s.mu.Unlock()
		if stale == nil {
			return res, nil
		}
		s.repairPool(name, stale, ng, rep, epoch, res)
	}
}

// repairPool brings one pool entry up to the given epoch. Taking the
// engine mutex first means any batch mid-drain finishes on the old
// epoch before the repair lands — the epoch drain barrier.
func (s *Server) repairPool(name string, pe *poolEntry, ng *graph.Graph, rep *graph.DeltaReport, epoch int64, res *DeltaResult) {
	pe.mu.Lock()
	defer pe.mu.Unlock()

	s.mu.Lock()
	if pe.epoch >= epoch || s.pools[pe.key] != pe {
		// Already current (a drainer built it from the new graph), or
		// evicted/removed since the scan — an evicted pool regenerates
		// cold on the post-delta graph when next queried.
		s.mu.Unlock()
		return
	}
	pe.epoch = epoch
	eng := pe.eng
	// Any disk-tier snapshot was frozen at a pre-delta epoch: repair
	// fixes only the resident engine, so the file is stale either way.
	// Dropping it here (rather than letting promotion reject it later)
	// keeps the disk tier from answering for dead epochs even if this
	// process crashes before the pool is saved again.
	s.dropDiskLocked(pe)
	s.mu.Unlock()
	if eng == nil {
		// Entry with no resident engine: a placeholder whose first batch
		// failed, or a demoted/rehydrated pool whose snapshot we just
		// discarded. The next drainer builds cold from the current graph.
		return
	}

	rr, err := eng.ApplyDelta(ng, rep)
	if err != nil {
		// Repair cannot legitimately fail here (the model never changes
		// across a delta); if it somehow does, drop the pool so it
		// rebuilds cold rather than serve a stale epoch.
		pe.eng = nil
		s.mu.Lock()
		if s.pools[pe.key] == pe {
			s.removeEntryLocked(pe)
			s.stats.Evictions++
		}
		s.mu.Unlock()
		return
	}
	if s.opt.RemoteGen != nil {
		// Repair detaches the remote slot generator (it was constructed
		// against the old graph); re-attach one for the new epoch. Only
		// the pool policy and RNG seed shape remote generation.
		o := s.base
		o.Seed = pe.key.seed
		eng.SetRemote(s.opt.RemoteGen(name, ng, o))
	}

	bytes := eng.PhysicalFootprint().TotalBytes() + eng.OverheadBytes()
	s.mu.Lock()
	if s.pools[pe.key] == pe {
		s.usedBytes += bytes - pe.bytes
		pe.bytes = bytes
	}
	s.stats.RepairedPools++
	s.stats.RepairedSets += rr.Resampled
	if rr.FullResample {
		s.stats.FullResamples++
	}
	s.mu.Unlock()

	res.PoolsRepaired++
	res.SetsResampled += rr.Resampled
	if rr.FullResample {
		res.FullResamples++
	}
}
