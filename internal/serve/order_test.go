package serve

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// TestGraphsListingStableOrder pins the listing contract the imlint
// determinism pass guards: the graph registry is map-backed, but every
// listing of it — library Graphs() and GET /v1/graphs — comes out
// sorted by name, identically on every call.
func TestGraphsListingStableOrder(t *testing.T) {
	g := testGraph(t, 6, graph.IC)
	s := NewServer(Options{Workers: 1, MaxTheta: 2000})
	for _, name := range []string{"zeta", "alpha", "mu", "beta", "kappa"} {
		if _, err := s.AddGraph(name, g, 42); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"alpha", "beta", "kappa", "mu", "zeta"}

	for i := 0; i < 5; i++ {
		var names []string
		for _, info := range s.Graphs() {
			names = append(names, info.Name)
		}
		if !reflect.DeepEqual(names, want) {
			t.Fatalf("Graphs() call %d: order %v, want %v", i, names, want)
		}
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 0; i < 5; i++ {
		var resp GraphsResponse
		getJSON(t, ts.URL+"/v1/graphs", 200, &resp)
		var names []string
		for _, info := range resp.Graphs {
			names = append(names, info.Name)
		}
		if !reflect.DeepEqual(names, want) {
			t.Fatalf("/v1/graphs call %d: order %v, want %v", i, names, want)
		}
	}
}

// TestSavePoolsDeterministicOrder pins SavePools's write sequence: the
// pool table is map-keyed, but snapshots land on disk in (graph, seed)
// order, so two sweeps over the same pools write files in the same
// sequence and an interrupted sweep truncates at a deterministic point.
func TestSavePoolsDeterministicOrder(t *testing.T) {
	g := testGraph(t, 6, graph.IC)
	s := testServer(t, Options{Workers: 1, MaxTheta: 2000},
		map[string]*graph.Graph{"zz": g, "aa": g, "mm": g})

	// Two pools per graph, created in an order unrelated to the sort.
	for _, q := range []QueryRequest{
		{Graph: "zz", K: 2, Epsilon: 0.5, Seed: 7},
		{Graph: "aa", K: 2, Epsilon: 0.5, Seed: 9},
		{Graph: "mm", K: 2, Epsilon: 0.5, Seed: 1},
		{Graph: "zz", K: 2, Epsilon: 0.5, Seed: 2},
	} {
		if _, err := s.Query(q); err != nil {
			t.Fatal(err)
		}
	}

	dir := t.TempDir()
	saved, err := s.SavePools(dir)
	if err != nil {
		t.Fatal(err)
	}
	if saved != 4 {
		t.Fatalf("saved %d pools, want 4", saved)
	}

	// The files' modification times must be non-decreasing along the
	// (graph, seed) sort — the map-random write order this regression
	// guards against interleaves them.
	keys := []poolKey{
		{graph: "aa", seed: 9},
		{graph: "mm", seed: 1},
		{graph: "zz", seed: 2},
		{graph: "zz", seed: 7},
	}
	var prev os.FileInfo
	for _, key := range keys {
		fi, err := os.Stat(filepath.Join(dir, poolFileName(key)))
		if err != nil {
			t.Fatalf("pool %s/%d not saved: %v", key.graph, key.seed, err)
		}
		if prev != nil && fi.ModTime().Before(prev.ModTime()) {
			t.Fatalf("pool %s written before its (graph,seed) predecessor %s: %v < %v",
				fi.Name(), prev.Name(), fi.ModTime(), prev.ModTime())
		}
		prev = fi
	}
}
