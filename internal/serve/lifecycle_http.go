package serve

// The /v1 graph-lifecycle HTTP surface:
//
//	GET    /v1/graphs               registered graphs ({"graphs":[...]})
//	POST   /v1/graphs               register from snapshot path or inline edges (201)
//	GET    /v1/graphs/{name}        one graph's info, including epoch
//	DELETE /v1/graphs/{name}        unregister + evict its warm pools
//	POST   /v1/graphs/{name}/edges  apply an edge delta (inline or .imdelta path)
//
// Failures ride the unified envelope: unknown names 404, malformed
// bodies and rejected deltas 400 (invalid_query / invalid_delta),
// duplicate registrations 409 (graph_exists).

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/graph"
	"repro/internal/ingest"
)

// maxInlineEdges bounds one inline registration or delta body: ample
// for interactive updates, small enough that bulk loads go through the
// snapshot/.imdelta codecs instead of JSON.
const maxInlineEdges = 1 << 20

// GraphsResponse is the GET /v1/graphs payload, reshaped around
// GraphInfo (the legacy /graphs alias still returns the bare array).
type GraphsResponse struct {
	Graphs []GraphInfo `json:"graphs"`
}

func (s *Server) handleGraphsV1(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, GraphsResponse{Graphs: s.Graphs()})
}

// RegisterGraphRequest is the POST /v1/graphs body. Exactly one source
// must be given: Snapshot (a server-side .imsnap path) or Edges (an
// inline [src,dst] list, weighted from Model and WeightSeed exactly
// like edge-list ingestion).
type RegisterGraphRequest struct {
	Name     string `json:"name"`
	Snapshot string `json:"snapshot,omitempty"`

	Model string     `json:"model,omitempty"`
	Nodes int32      `json:"nodes,omitempty"` // optional floor; grown to max id + 1
	Edges [][2]int32 `json:"edges,omitempty"`
	// WeightSeed derives the diffusion weights of an inline edge list
	// (defaults to 1, matching the ingestion default).
	WeightSeed uint64 `json:"weight_seed,omitempty"`
}

func (s *Server) handleGraphRegister(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	req := RegisterGraphRequest{WeightSeed: 1}
	if err := dec.Decode(&req); err != nil {
		writeError(w, fmt.Errorf("serve: %w: invalid JSON body: %v", ErrInvalidQuery, err))
		return
	}
	if req.Name == "" {
		writeError(w, fmt.Errorf("serve: %w: missing graph name", ErrInvalidQuery))
		return
	}
	var info GraphInfo
	var err error
	switch {
	case req.Snapshot != "" && req.Edges != nil:
		writeError(w, fmt.Errorf("serve: %w: give either a snapshot path or inline edges, not both", ErrInvalidQuery))
		return
	case req.Snapshot != "":
		info, err = s.AddSnapshot(req.Name, req.Snapshot)
	case len(req.Edges) > 0:
		info, err = s.registerInline(req)
	default:
		writeError(w, fmt.Errorf("serve: %w: a registration needs a snapshot path or an inline edge list", ErrInvalidQuery))
		return
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// registerInline builds a graph from an inline edge list and registers
// it. Self-loops and duplicates are dropped exactly as edge-list
// ingestion drops them.
func (s *Server) registerInline(req RegisterGraphRequest) (GraphInfo, error) {
	if len(req.Edges) > maxInlineEdges {
		return GraphInfo{}, fmt.Errorf("serve: %w: inline edge list holds %d edges, max %d (use a snapshot)", ErrInvalidQuery, len(req.Edges), maxInlineEdges)
	}
	if req.Model == "" {
		return GraphInfo{}, fmt.Errorf("serve: %w: inline registration needs a model (IC or LT)", ErrInvalidQuery)
	}
	model, err := graph.ParseModel(req.Model)
	if err != nil {
		return GraphInfo{}, fmt.Errorf("serve: %w: %v", ErrInvalidQuery, err)
	}
	n := req.Nodes
	edges := make([]graph.Edge, len(req.Edges))
	for i, e := range req.Edges {
		if e[0] < 0 || e[1] < 0 {
			return GraphInfo{}, fmt.Errorf("serve: %w: edge %d has a negative endpoint (%d, %d)", ErrInvalidQuery, i, e[0], e[1])
		}
		edges[i] = graph.Edge{Src: e[0], Dst: e[1]}
		if e[0] >= n {
			n = e[0] + 1
		}
		if e[1] >= n {
			n = e[1] + 1
		}
	}
	g, err := graph.FromEdges(n, edges, model, req.WeightSeed)
	if err != nil {
		return GraphInfo{}, fmt.Errorf("serve: %w: %v", ErrInvalidQuery, err)
	}
	return s.AddGraph(req.Name, g, req.WeightSeed)
}

func (s *Server) handleGraphGet(w http.ResponseWriter, r *http.Request) {
	info, err := s.GraphByName(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// RemoveGraphResponse is the DELETE /v1/graphs/{name} payload.
type RemoveGraphResponse struct {
	Graph        GraphInfo `json:"graph"`
	PoolsEvicted int       `json:"pools_evicted"`
}

func (s *Server) handleGraphDelete(w http.ResponseWriter, r *http.Request) {
	info, evicted, err := s.RemoveGraph(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, RemoveGraphResponse{Graph: info, PoolsEvicted: evicted})
}

// DeltaRequest is the POST /v1/graphs/{name}/edges body. Exactly one
// source: File (a server-side .imdelta path) or the inline
// Add/AddProb/Remove lists. Strict selects fail-on-drop application
// (the DedupeStrict policy); otherwise self-loops, duplicates, and
// absent removals are counted and dropped.
type DeltaRequest struct {
	File string `json:"file,omitempty"`

	Add     [][2]int32 `json:"add,omitempty"`
	AddProb []float32  `json:"add_prob,omitempty"`
	Remove  [][2]int32 `json:"remove,omitempty"`
	// Seed derives weights for added edges (and re-derives LT
	// in-segments of dirty vertices); inline deltas only — a .imdelta
	// file carries its own.
	Seed uint64 `json:"seed,omitempty"`

	Strict bool `json:"strict,omitempty"`
}

func (s *Server) handleGraphEdges(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req DeltaRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, fmt.Errorf("serve: %w: invalid JSON body: %v", ErrInvalidQuery, err))
		return
	}
	var d graph.Delta
	switch {
	case req.File != "" && (req.Add != nil || req.Remove != nil || req.AddProb != nil):
		writeError(w, fmt.Errorf("serve: %w: give either a .imdelta file or inline edges, not both", ErrInvalidQuery))
		return
	case req.File != "":
		var err error
		if d, _, err = ingest.ReadDeltaFile(req.File); err != nil {
			writeError(w, fmt.Errorf("serve: %w: %v", ErrInvalidDelta, err))
			return
		}
	default:
		if len(req.Add)+len(req.Remove) > maxInlineEdges {
			writeError(w, fmt.Errorf("serve: %w: inline delta holds %d edges, max %d (use a .imdelta file)", ErrInvalidQuery, len(req.Add)+len(req.Remove), maxInlineEdges))
			return
		}
		d = graph.Delta{AddProb: req.AddProb, Seed: req.Seed}
		for _, e := range req.Add {
			d.Add = append(d.Add, graph.Edge{Src: e[0], Dst: e[1]})
		}
		for _, e := range req.Remove {
			d.Remove = append(d.Remove, graph.Edge{Src: e[0], Dst: e[1]})
		}
	}
	res, err := s.ApplyDelta(name, d, graph.DeltaOptions{Strict: req.Strict})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}
