package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/graph"
)

func testHTTP(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	g := testGraph(t, 8, graph.IC)
	s := testServer(t, Options{Workers: 2, MaxTheta: 4000}, map[string]*graph.Graph{"g": g})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, wantCode int, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantCode)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
}

func TestHTTPEndpoints(t *testing.T) {
	_, ts := testHTTP(t)

	var health healthResponse
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &health)
	if health.Status != "ok" || health.Graphs != 1 {
		t.Fatalf("health = %+v", health)
	}

	var graphs []GraphInfo
	getJSON(t, ts.URL+"/graphs", http.StatusOK, &graphs)
	if len(graphs) != 1 || graphs[0].Name != "g" || graphs[0].Model != "IC" {
		t.Fatalf("graphs = %+v", graphs)
	}

	var cold QueryResult
	getJSON(t, ts.URL+"/query?graph=g&k=8&eps=0.5&seed=1", http.StatusOK, &cold)
	if len(cold.Seeds) != 8 || cold.Warm {
		t.Fatalf("cold query = %+v", cold)
	}

	// POST form of the identical query: warm, same seeds.
	body, _ := json.Marshal(QueryRequest{Graph: "g", K: 8, Epsilon: 0.5, Seed: 1})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query: status %d", resp.StatusCode)
	}
	var warm QueryResult
	if err := json.NewDecoder(resp.Body).Decode(&warm); err != nil {
		t.Fatal(err)
	}
	if !warm.Warm || !reflect.DeepEqual(warm.Seeds, cold.Seeds) {
		t.Fatalf("warm POST = %+v, cold seeds %v", warm, cold.Seeds)
	}

	// A POST body omitting epsilon and seed gets the same defaults as
	// the GET form (eps=0.5, seed=1): identical query, identical seeds.
	resp, err = http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte(`{"graph":"g","k":8}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query without eps/seed: status %d", resp.StatusCode)
	}
	var defaulted QueryResult
	if err := json.NewDecoder(resp.Body).Decode(&defaulted); err != nil {
		t.Fatal(err)
	}
	if defaulted.Epsilon != 0.5 || defaulted.Seed != 1 || !reflect.DeepEqual(defaulted.Seeds, cold.Seeds) {
		t.Fatalf("POST defaults diverged from GET: %+v", defaulted)
	}

	var stats Stats
	getJSON(t, ts.URL+"/stats", http.StatusOK, &stats)
	if stats.Queries != 3 || stats.WarmHits != 2 || stats.Pools != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, ts := testHTTP(t)
	for _, url := range []string{
		"/query?graph=missing&k=5",    // unknown graph
		"/query?graph=g",              // missing k
		"/query?graph=g&k=nope",       // bad k
		"/query?graph=g&k=5&eps=2",    // bad epsilon
		"/query?graph=g&k=5&seed=x",   // bad seed
		"/query?k=5",                  // missing graph
		"/query?graph=g&k=5&model=LT", // model mismatch
	} {
		var e errorResponse
		getJSON(t, ts.URL+url, http.StatusBadRequest, &e)
		if e.Error == "" {
			t.Fatalf("GET %s: empty error payload", url)
		}
	}

	// Wrong methods.
	resp, err := http.Post(ts.URL+"/healthz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz: status %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/query", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /query: status %d", resp.StatusCode)
	}
}
