package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
)

func testHTTP(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	g := testGraph(t, 8, graph.IC)
	s := testServer(t, Options{Workers: 2, MaxTheta: 4000}, map[string]*graph.Graph{"g": g})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, wantCode int, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantCode)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
}

func postJSON(t *testing.T, url string, body string, wantCode int, v any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantCode)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("POST %s: decode: %v", url, err)
		}
	}
}

func TestHTTPEndpoints(t *testing.T) {
	_, ts := testHTTP(t)

	var health healthResponse
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &health)
	if health.Status != "ok" || health.Graphs != 1 {
		t.Fatalf("health = %+v", health)
	}

	var graphs []GraphInfo
	getJSON(t, ts.URL+"/graphs", http.StatusOK, &graphs)
	if len(graphs) != 1 || graphs[0].Name != "g" || graphs[0].Model != "IC" {
		t.Fatalf("graphs = %+v", graphs)
	}

	var cold QueryResult
	getJSON(t, ts.URL+"/query?graph=g&k=8&eps=0.5&seed=1", http.StatusOK, &cold)
	if len(cold.Seeds) != 8 || cold.Warm {
		t.Fatalf("cold query = %+v", cold)
	}

	// POST form of the identical query: warm, same seeds.
	body, _ := json.Marshal(QueryRequest{Graph: "g", K: 8, Epsilon: 0.5, Seed: 1})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query: status %d", resp.StatusCode)
	}
	var warm QueryResult
	if err := json.NewDecoder(resp.Body).Decode(&warm); err != nil {
		t.Fatal(err)
	}
	if !warm.Warm || !reflect.DeepEqual(warm.Seeds, cold.Seeds) {
		t.Fatalf("warm POST = %+v, cold seeds %v", warm, cold.Seeds)
	}

	// A POST body omitting epsilon and seed gets the same defaults as
	// the GET form (eps=0.5, seed=1): identical query, identical seeds.
	var defaulted QueryResult
	postJSON(t, ts.URL+"/query", `{"graph":"g","k":8}`, http.StatusOK, &defaulted)
	if defaulted.Epsilon != 0.5 || defaulted.Seed != 1 || !reflect.DeepEqual(defaulted.Seeds, cold.Seeds) {
		t.Fatalf("POST defaults diverged from GET: %+v", defaulted)
	}

	var stats Stats
	getJSON(t, ts.URL+"/stats", http.StatusOK, &stats)
	if stats.Queries != 3 || stats.WarmHits != 2 || stats.Pools != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Batches != 3 || stats.MaxBatchSize != 1 {
		t.Fatalf("sequential queries miscounted as batches: %+v", stats)
	}
}

// TestHTTPStatusCodes pins the error → status mapping of every parse
// and validation branch: unknown graph 404, client mistakes 400, and
// nothing collapsing into a blanket code.
func TestHTTPStatusCodes(t *testing.T) {
	_, ts := testHTTP(t)
	cases := []struct {
		url      string
		want     int
		code     string // required machine code of the envelope
		contains string // required substring of the error message
	}{
		{"/query?graph=missing&k=5", http.StatusNotFound, "unknown_graph", "unknown graph"},
		{"/query?graph=g", http.StatusBadRequest, "invalid_query", "invalid k"},
		{"/query?graph=g&k=nope", http.StatusBadRequest, "invalid_query", "invalid k"},
		{"/query?graph=g&k=0", http.StatusBadRequest, "invalid_query", "k must be positive"},
		{"/query?graph=g&k=-3", http.StatusBadRequest, "invalid_query", "k must be positive"},
		{"/query?graph=g&k=5&eps=2", http.StatusBadRequest, "invalid_query", "epsilon must lie in (0,1)"},
		{"/query?graph=g&k=5&eps=NaN", http.StatusBadRequest, "invalid_query", "not a finite number"},
		{"/query?graph=g&k=5&eps=Inf", http.StatusBadRequest, "invalid_query", "not a finite number"},
		{"/query?graph=g&k=5&eps=-Inf", http.StatusBadRequest, "invalid_query", "not a finite number"},
		{"/query?graph=g&k=5&seed=x", http.StatusBadRequest, "invalid_query", "invalid seed"},
		{"/query?k=5", http.StatusBadRequest, "invalid_query", "missing graph"},
		{"/query?graph=g&k=5&model=LT", http.StatusBadRequest, "invalid_query", "requested LT"},
		// Misspelled/unknown keys must fail loudly, listing the accepted
		// ones — not silently run with defaults.
		{"/query?graph=g&k=5&epsilon=0.3", http.StatusBadRequest, "invalid_query", "graph, model, k, eps, seed"},
		{"/query?graph=g&k=5&sead=9", http.StatusBadRequest, "invalid_query", "unknown query parameter"},
		// Unknown paths get the same envelope from the mux fallback.
		{"/nope", http.StatusNotFound, "not_found", "/nope"},
		{"/v1/nope", http.StatusNotFound, "not_found", "/v1/nope"},
	}
	for _, c := range cases {
		for _, prefix := range []string{"", "/v1"} {
			url := c.url
			if prefix != "" {
				if strings.HasPrefix(url, "/v1/") {
					continue // already versioned
				}
				url = prefix + url
			}
			var e ErrorResponse
			getJSON(t, ts.URL+url, c.want, &e)
			if e.Error.Code != c.code {
				t.Fatalf("GET %s: code %q, want %q", url, e.Error.Code, c.code)
			}
			if !strings.Contains(e.Error.Message, c.contains) {
				t.Fatalf("GET %s: error %q does not mention %q", url, e.Error.Message, c.contains)
			}
		}
	}

	// The POST form maps through the same sentinels.
	var e ErrorResponse
	postJSON(t, ts.URL+"/query", `{"graph":"missing","k":5}`, http.StatusNotFound, &e)
	if e.Error.Code != "unknown_graph" || !strings.Contains(e.Error.Message, "unknown graph") {
		t.Fatalf("POST unknown graph: %+v", e)
	}
	postJSON(t, ts.URL+"/query", `{"graph":"g","k":5,"epsilon":7}`, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/query", `not json`, http.StatusBadRequest, nil)
	// The POST form also rejects misspelled fields instead of silently
	// running with defaults — the same contract as the GET parser.
	e = ErrorResponse{}
	postJSON(t, ts.URL+"/query", `{"graph":"g","k":5,"eps":0.3}`, http.StatusBadRequest, &e)
	if e.Error.Code != "invalid_query" || !strings.Contains(e.Error.Message, "eps") {
		t.Fatalf("POST misspelled field: %+v", e)
	}
	postJSON(t, ts.URL+"/jobs", `{"graph":"g","k":5,"sead":9}`, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/batch", `{"queries":[{"graph":"g","k":5,"eps":0.3}]}`, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/batch", `{"querys":[{"graph":"g","k":5}]}`, http.StatusBadRequest, nil)

	// Wrong methods get the envelope too, on both surfaces.
	for _, target := range []string{"/healthz", "/v1/healthz"} {
		resp, err := http.Post(ts.URL+target, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		e = ErrorResponse{}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("POST %s: envelope decode: %v", target, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed || e.Error.Code != "method_not_allowed" {
			t.Fatalf("POST %s: status %d code %q", target, resp.StatusCode, e.Error.Code)
		}
		if resp.Header.Get("Allow") == "" {
			t.Fatalf("POST %s: missing Allow header", target)
		}
	}
	for _, target := range []string{"/query", "/batch", "/jobs", "/v1/query", "/v1/batch", "/v1/jobs"} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+target, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		e = ErrorResponse{}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("DELETE %s: envelope decode: %v", target, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed || e.Error.Code != "method_not_allowed" {
			t.Fatalf("DELETE %s: status %d code %q", target, resp.StatusCode, e.Error.Code)
		}
	}
}

// TestV1Aliases pins that the /v1 surface and the legacy unprefixed
// paths are the same endpoints: identical answers, identical stats
// accounting, and the full job lifecycle reachable through /v1.
func TestV1Aliases(t *testing.T) {
	_, ts := testHTTP(t)

	var health healthResponse
	getJSON(t, ts.URL+"/v1/healthz", http.StatusOK, &health)
	if health.Status != "ok" || health.Graphs != 1 {
		t.Fatalf("/v1/healthz = %+v", health)
	}
	var graphs GraphsResponse
	getJSON(t, ts.URL+"/v1/graphs", http.StatusOK, &graphs)
	if len(graphs.Graphs) != 1 || graphs.Graphs[0].Name != "g" {
		t.Fatalf("/v1/graphs = %+v", graphs)
	}

	var legacy, v1 QueryResult
	getJSON(t, ts.URL+"/query?graph=g&k=8&eps=0.5&seed=1", http.StatusOK, &legacy)
	getJSON(t, ts.URL+"/v1/query?graph=g&k=8&eps=0.5&seed=1", http.StatusOK, &v1)
	if !reflect.DeepEqual(v1.Seeds, legacy.Seeds) || v1.Theta != legacy.Theta {
		t.Fatalf("/v1/query diverged from /query: %v vs %v", v1.Seeds, legacy.Seeds)
	}
	if !v1.Warm {
		t.Fatal("/v1/query after /query with the same key should hit the same pool")
	}

	var br BatchResponse
	postJSON(t, ts.URL+"/v1/batch", `{"queries":[{"graph":"g","k":8,"seed":1}]}`, http.StatusOK, &br)
	if len(br.Results) != 1 || br.Results[0].Result == nil || !reflect.DeepEqual(br.Results[0].Result.Seeds, legacy.Seeds) {
		t.Fatalf("/v1/batch = %+v", br)
	}

	var job Job
	postJSON(t, ts.URL+"/v1/jobs", `{"graph":"g","k":8,"seed":1}`, http.StatusAccepted, &job)
	deadline := time.Now().Add(10 * time.Second)
	for job.State != JobDone && job.State != JobFailed {
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish: %+v", job.ID, job)
		}
		time.Sleep(10 * time.Millisecond)
		getJSON(t, ts.URL+"/v1/jobs/"+job.ID, http.StatusOK, &job)
	}
	if job.State != JobDone || !reflect.DeepEqual(job.Result.Seeds, legacy.Seeds) {
		t.Fatalf("/v1 job lifecycle = %+v", job)
	}
	var jobs []Job
	getJSON(t, ts.URL+"/v1/jobs", http.StatusOK, &jobs)
	if len(jobs) != 1 {
		t.Fatalf("/v1/jobs list = %+v", jobs)
	}

	var stats Stats
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &stats)
	if stats.Pools != 1 {
		t.Fatalf("aliases created distinct pools: %+v", stats)
	}
}

// TestStatusForError pins the sentinel → status table, including the
// default: an error wrapping no sentinel is a genuine engine failure
// and must surface as 500, never as a client error.
func TestStatusForError(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{fmt.Errorf("serve: %w %q", ErrUnknownGraph, "g"), http.StatusNotFound},
		{fmt.Errorf("serve: %w %q", ErrUnknownJob, "job-9"), http.StatusNotFound},
		{fmt.Errorf("serve: %w: k", ErrInvalidQuery), http.StatusBadRequest},
		{fmt.Errorf("serve: %w", ErrOverloaded), http.StatusTooManyRequests},
		{fmt.Errorf("serve: %w", ErrShuttingDown), http.StatusServiceUnavailable},
		{errors.New("rrr generation blew up"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := statusForError(c.err); got != c.want {
			t.Fatalf("statusForError(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestHTTPBatch(t *testing.T) {
	_, ts := testHTTP(t)

	// Reference answers, one query at a time.
	var ref5, ref8 QueryResult
	getJSON(t, ts.URL+"/query?graph=g&k=5&eps=0.6&seed=2", http.StatusOK, &ref5)
	getJSON(t, ts.URL+"/query?graph=g&k=8&eps=0.5&seed=2", http.StatusOK, &ref8)

	// The same two queries in one round-trip, plus a bad member whose
	// failure must stay inline. Defaults apply per member (the k=8
	// member omits eps).
	var br BatchResponse
	postJSON(t, ts.URL+"/batch",
		`{"queries":[
			{"graph":"g","k":5,"epsilon":0.6,"seed":2},
			{"graph":"g","k":8,"seed":2},
			{"graph":"missing","k":3}
		]}`,
		http.StatusOK, &br)
	if len(br.Results) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(br.Results))
	}
	if br.Results[0].Result == nil || !reflect.DeepEqual(br.Results[0].Result.Seeds, ref5.Seeds) {
		t.Fatalf("batch member 0 = %+v, want seeds %v", br.Results[0], ref5.Seeds)
	}
	if br.Results[1].Result == nil || !reflect.DeepEqual(br.Results[1].Result.Seeds, ref8.Seeds) {
		t.Fatalf("batch member 1 = %+v, want seeds %v", br.Results[1], ref8.Seeds)
	}
	if br.Results[2].Result != nil || !strings.Contains(br.Results[2].Error, "unknown graph") {
		t.Fatalf("batch member 2 = %+v, want inline unknown-graph error", br.Results[2])
	}
	if br.Results[2].Code != "unknown_graph" {
		t.Fatalf("batch member 2 code = %q, want unknown_graph", br.Results[2].Code)
	}
	if br.Results[0].Code != "" || br.Results[1].Code != "" {
		t.Fatalf("successful members must carry no error code: %+v", br.Results[:2])
	}

	// Malformed batches are rejected as a whole.
	postJSON(t, ts.URL+"/batch", `{"queries":[]}`, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/batch", `{"queries":"nope"}`, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/batch", `garbage`, http.StatusBadRequest, nil)
}

func TestHTTPJobs(t *testing.T) {
	_, ts := testHTTP(t)

	var ref QueryResult
	getJSON(t, ts.URL+"/query?graph=g&k=6&eps=0.5&seed=3", http.StatusOK, &ref)

	var job Job
	postJSON(t, ts.URL+"/jobs", `{"graph":"g","k":6,"epsilon":0.5,"seed":3}`, http.StatusAccepted, &job)
	if job.ID == "" || (job.State != JobQueued && job.State != JobRunning) {
		t.Fatalf("submitted job = %+v", job)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		getJSON(t, ts.URL+"/jobs/"+job.ID, http.StatusOK, &job)
		if job.State == JobDone || job.State == JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish: %+v", job.ID, job)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if job.State != JobDone || job.Result == nil {
		t.Fatalf("job finished badly: %+v", job)
	}
	if !reflect.DeepEqual(job.Result.Seeds, ref.Seeds) || job.Result.Theta != ref.Theta {
		t.Fatalf("job result %v/θ=%d != sync result %v/θ=%d", job.Result.Seeds, job.Result.Theta, ref.Seeds, ref.Theta)
	}

	var jobs []Job
	getJSON(t, ts.URL+"/jobs", http.StatusOK, &jobs)
	if len(jobs) != 1 || jobs[0].ID != job.ID {
		t.Fatalf("jobs list = %+v", jobs)
	}

	// Bad submissions fail at submit time with the mapped status.
	postJSON(t, ts.URL+"/jobs", `{"graph":"missing","k":3}`, http.StatusNotFound, nil)
	postJSON(t, ts.URL+"/jobs", `{"graph":"g","k":0}`, http.StatusBadRequest, nil)
	// Unknown job ids are 404.
	getJSON(t, ts.URL+"/jobs/job-999", http.StatusNotFound, nil)
}
