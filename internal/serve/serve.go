// Package serve is the warm-pool query service: a long-running engine
// that holds a registry of ingested graphs and answers (graph, k, ε,
// seed) seed-set queries by reusing per-graph sharded RRR pools across
// queries instead of sampling from scratch per invocation.
//
// Key types: Server (the registry plus the warm-pool cache), Options
// (engine configuration shared by every query), QueryRequest/QueryResult
// (the query protocol, also the HTTP JSON schema), Job (the async query
// protocol), and Stats (the service counters the /stats endpoint
// reports).
//
// Invariants:
//
//   - Served answers are byte-identical to a cold imm.Run with the same
//     (graph, model, k, epsilon, rngSeed): pools are reused through
//     imm.WarmEngine, whose limited-view selection replays exactly the
//     cold θ trajectory (see internal/imm/warm.go for the argument).
//   - One warm engine exists per (graph, rngSeed) pair. Concurrent
//     queries against the same pool are gathered into a batch and
//     answered by one shared θ-extension (imm.WarmEngine.AnswerBatch);
//     queries against different pools run concurrently.
//   - Identical concurrent queries are deduplicated single-flight: one
//     leader computes, followers receive a copy of its result.
//   - Execution is bounded: at most QueryWorkers queries run at once,
//     at most QueueDepth wait for a slot, and the overflow is rejected
//     with ErrOverloaded (backpressure, not collapse).
//   - Resident pool bytes across all warm engines are bounded by
//     Options.PoolBudgetBytes with least-recently-used eviction;
//     in-flight pools — and the pool the finishing query just used —
//     are never evicted.
package serve

import (
	"container/list"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/imm"
	"repro/internal/ingest"
)

// DefaultPoolBudgetBytes bounds resident warm-pool bytes when
// Options.PoolBudgetBytes is zero: 1 GiB, roomy for dozens of
// laptop-scale pools while still exercising eviction under load.
const DefaultPoolBudgetBytes = 1 << 30

// DefaultQueueDepth is the admission wait-queue bound applied when
// Options.QueueDepth is zero: generous enough that ordinary bursts
// queue rather than bounce, small enough that a stampede sheds load
// instead of accumulating unbounded latency.
const DefaultQueueDepth = 256

// DefaultGatherWindow is the batch gather window applied when
// Options.GatherWindow is zero: long enough for a concurrent burst to
// coalesce into one shared extension, short enough to be noise against
// any real query's selection cost.
const DefaultGatherWindow = 2 * time.Millisecond

// Options configures a Server. The engine-shaping fields apply to every
// query; per-query parameters (k, ε, RNG seed) arrive in QueryRequest.
type Options struct {
	// Workers is the per-query parallelism. <= 0 means 1 (matching
	// imm.Options normalization).
	Workers int
	// Pool selects the RRR pool representation for every warm pool.
	Pool imm.PoolKind
	// Selection selects the seed-selection kernel.
	Selection imm.SelectionKind
	// MaxTheta caps sampling per query (0 = per-theory). It participates
	// in the cold-equivalence contract: a cold run must use the same cap.
	MaxTheta int64
	// PoolBudgetBytes bounds the summed resident footprint of all warm
	// pools; least-recently-used pools are dropped when a query pushes
	// past it. 0 means DefaultPoolBudgetBytes.
	PoolBudgetBytes int64
	// PoolDir, when non-empty, enables the two-tier pool cache: pools
	// squeezed out by PoolBudgetBytes are demoted to .impool snapshots
	// under this directory instead of dropped, and promoted back via
	// mmap on next touch. It is also the default target of SavePools and
	// the directory LoadPools rehydrates at boot (see tier.go).
	PoolDir string

	// QueryWorkers bounds how many queries execute (or wait inside a
	// pool batch) at once. <= 0 means 4 × runtime.GOMAXPROCS(0):
	// members hold a worker slot while they gather but idle doing so,
	// and same-pool engine runs serialize anyway, so admission
	// oversubscribes the cores to let bursts batch. Batching across a
	// concurrent burst needs QueryWorkers at least as large as the
	// burst.
	QueryWorkers int
	// QueueDepth bounds how many queries may wait for a worker slot
	// beyond the ones executing; the overflow fails fast with
	// ErrOverloaded. 0 means DefaultQueueDepth; negative disables
	// waiting entirely (no slot free → immediate rejection). Async jobs
	// wait for a slot regardless of the bound — their queue is the jobs
	// table itself.
	QueueDepth int
	// GatherWindow is how long the first query to reach an idle pool
	// waits for concurrent queries on the same pool to join its batch
	// before draining. 0 means DefaultGatherWindow; negative disables
	// gathering (the leader drains immediately, batching only what
	// arrived while a previous drain held the pool).
	GatherWindow time.Duration

	// RemoteGen, when non-nil, supplies a distributed slot generator for
	// each newly built warm pool (name is the registry graph name, opt
	// the engine options including the pool's RNG seed) — the hook the
	// cluster mode of immserver uses to source pool extensions from
	// worker ranks (dist.Cluster.PoolGenerator matches this signature).
	// Returning nil keeps that pool purely local. The generator contract
	// (imm.SlotGenerator) guarantees attached and detached answers are
	// byte-identical; only where the sampling runs changes.
	RemoteGen func(name string, g *graph.Graph, opt imm.Options) imm.SlotGenerator
	// WireMeter, when non-nil, reports the cluster transport's measured
	// bytes-on-the-wire totals for Stats.
	WireMeter func() (bytesSent, bytesReceived, messages int64)
	// RemoteFailovers, when non-nil, reports how many remote generation
	// chunks fell back to local sampling, for Stats.
	RemoteFailovers func() int64
}

// EngineOptions returns the imm options a server configured by o runs
// every query with (the per-query K, Epsilon, and Seed still to be
// filled in). It is the one place the serve→imm mapping lives: cold
// reference runs that must match served answers byte-for-byte should
// derive their options here rather than re-deriving them from
// imm.Defaults.
func (o Options) EngineOptions() imm.Options {
	b := imm.Defaults()
	b.Engine = imm.Efficient // warm reuse requires the Efficient engine
	b.Workers = o.Workers
	b.Pool = o.Pool
	b.Selection = o.Selection
	b.MaxTheta = o.MaxTheta
	return b
}

// GraphInfo describes one registered graph.
type GraphInfo struct {
	Name  string `json:"name"`
	Nodes int32  `json:"nodes"`
	Edges int64  `json:"edges"`
	Model string `json:"model"`
	// WeightSeed is the diffusion-weight provenance (the ingestion seed,
	// recorded in .imsnap headers). It is distinct from a query's RNG
	// seed, which seeds RRR sampling only.
	WeightSeed uint64 `json:"weight_seed"`
	// Epoch counts the graph's applied deltas: 0 at registration,
	// incremented by every delta that changes the graph. A pool built
	// or repaired at epoch e answers queries for the epoch-e CSR.
	Epoch int64 `json:"epoch"`
	// UpdatedAt is when the graph last changed: registration time, then
	// the wall time of each applied delta.
	UpdatedAt time.Time `json:"updated_at"`
}

// QueryRequest identifies one seed-set query. Graph, K, Epsilon and
// Seed form the query key; Model, when non-empty, is validated against
// the registered graph's model (a mismatch is an error, never a silent
// reweighting).
type QueryRequest struct {
	Graph   string  `json:"graph"`
	Model   string  `json:"model,omitempty"`
	K       int     `json:"k"`
	Epsilon float64 `json:"epsilon"`
	Seed    uint64  `json:"seed"`
}

// QueryResult is a served answer plus its reuse accounting.
type QueryResult struct {
	Graph   string  `json:"graph"`
	Model   string  `json:"model"`
	K       int     `json:"k"`
	Epsilon float64 `json:"epsilon"`
	Seed    uint64  `json:"seed"`

	Seeds    []int32 `json:"seeds"`
	Theta    int64   `json:"theta"`
	Rounds   int     `json:"rounds"`
	Coverage float64 `json:"coverage"`

	// Warm reports whether the query found an already-built warm engine
	// for its (graph, seed) — every member of the batch that builds the
	// engine (however many gathered) is cold; Coalesced reports the
	// query was answered by an identical in-flight query's result
	// rather than its own engine run.
	Warm      bool `json:"warm"`
	Coalesced bool `json:"coalesced"`
	// BatchSize is how many queries the answering batch held (1 when
	// the query had the pool to itself).
	BatchSize int `json:"batch_size"`
	// ReusedSets counts the RRR sets the query consumed without
	// generating them (min(θ, pool size when the query ran)); Generated-
	// Sets the sets its own trajectory added; SharedSets the reused sets
	// that another member of the same batch generated on this query's
	// behalf; ReusedBytes the resident bytes of the reused prefix.
	ReusedSets    int64 `json:"reused_sets"`
	GeneratedSets int64 `json:"generated_sets"`
	SharedSets    int64 `json:"shared_sets"`
	ReusedBytes   int64 `json:"reused_bytes"`
	// PoolBytes is the pool's full resident footprint after the query —
	// set payloads, inverted-index postings, and the engine overhead
	// (fused counter, coverage scratch). This is the quantity the byte
	// budget accounts.
	PoolBytes int64 `json:"pool_bytes"`

	// WallMS is the query's full service latency: admission wait,
	// gather window, and the (possibly shared) engine run.
	WallMS float64 `json:"wall_ms"`
}

// Stats are the service counters, all cumulative since construction
// except the gauges Graphs/Pools/PoolBytes/InFlight/QueueDepth.
type Stats struct {
	Graphs      int   `json:"graphs"`
	Pools       int   `json:"pools"`
	PoolBytes   int64 `json:"pool_bytes"`
	BudgetBytes int64 `json:"budget_bytes"`

	// InFlight counts queries holding a worker slot right now;
	// QueueDepth the queries waiting for one.
	InFlight   int `json:"in_flight"`
	QueueDepth int `json:"queue_depth"`

	Queries       int64 `json:"queries"`
	WarmHits      int64 `json:"warm_hits"`
	ColdMisses    int64 `json:"cold_misses"`
	Coalesced     int64 `json:"coalesced"`
	Rejected      int64 `json:"rejected"`
	Evictions     int64 `json:"evictions"`
	ReusedSets    int64 `json:"reused_sets"`
	GeneratedSets int64 `json:"generated_sets"`
	ReusedBytes   int64 `json:"reused_bytes"`

	// The disk tier (Options.PoolDir). Demotions counts pools frozen to
	// disk under budget pressure; Promotions pools mapped back into RAM
	// on touch; PromoteFailures promotions that fell through to a cold
	// rebuild (stale epoch, changed graph content, or a corrupt file);
	// Rehydrated disk pools registered at boot by LoadPools; PoolsSaved
	// snapshots written by SavePools. DiskPools/DiskBytes gauge the
	// snapshots currently backing entries.
	Demotions       int64 `json:"demotions"`
	Promotions      int64 `json:"promotions"`
	PromoteFailures int64 `json:"promote_failures"`
	Rehydrated      int64 `json:"rehydrated"`
	PoolsSaved      int64 `json:"pools_saved"`
	DiskPools       int   `json:"disk_pools"`
	DiskBytes       int64 `json:"disk_bytes"`

	// Batches counts planner drains of any size; BatchedQueries the
	// queries answered in drains of two or more; SharedExtensions the
	// physical pool extensions performed inside such multi-member drains
	// (the "one shared θ-extension" the planner amortizes a burst onto);
	// SharedSets the samples members consumed that a same-batch peer
	// generated for them — the shared-extension savings.
	Batches          int64 `json:"batches"`
	BatchedQueries   int64 `json:"batched_queries"`
	MaxBatchSize     int   `json:"max_batch_size"`
	SharedExtensions int64 `json:"shared_extensions"`
	SharedSets       int64 `json:"shared_sets"`

	JobsSubmitted int64 `json:"jobs_submitted"`
	JobsDone      int64 `json:"jobs_done"`
	JobsFailed    int64 `json:"jobs_failed"`

	// Deltas counts applied graph deltas (no-ops included);
	// DeltaEdgesAdded/DeltaEdgesRemoved the edges they changed.
	// RepairedPools counts warm pools patched in place after a delta,
	// RepairedSets the slots those repairs resampled, and FullResamples
	// the repairs that degenerated to whole-pool regeneration (vertex
	// growth changes every slot's root draw).
	Deltas            int64 `json:"deltas"`
	DeltaEdgesAdded   int64 `json:"delta_edges_added"`
	DeltaEdgesRemoved int64 `json:"delta_edges_removed"`
	RepairedPools     int64 `json:"repaired_pools"`
	RepairedSets      int64 `json:"repaired_sets"`
	FullResamples     int64 `json:"full_resamples"`

	// LegacyRequests counts hits on the deprecated unversioned path
	// aliases (every request outside /v1). See the Deprecation headers
	// the handler attaches to those responses.
	LegacyRequests int64 `json:"legacy_requests"`

	// WireBytesSent/WireBytesReceived/WireMessages are the cluster
	// transport's measured bytes-on-the-wire totals (frame headers
	// included; all zero on single-node servers). RemoteFailovers counts
	// remote pool-extension chunks that fell back to local sampling.
	WireBytesSent     int64 `json:"wire_bytes_sent"`
	WireBytesReceived int64 `json:"wire_bytes_received"`
	WireMessages      int64 `json:"wire_messages"`
	RemoteFailovers   int64 `json:"remote_failovers"`
}

// HitRatio is the fraction of executed (non-coalesced) queries that
// found a warm pool.
func (s Stats) HitRatio() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.WarmHits) / float64(s.Queries)
}

// poolKey identifies one warm pool: pool contents are a pure function
// of (graph, engine policy, RNG seed), and the policy is fixed
// server-wide, so (graph, seed) is the whole key.
type poolKey struct {
	graph string
	seed  uint64
}

// flightKey identifies one query for single-flight deduplication.
// Epsilon participates via its IEEE-754 bits: exact equality is the
// contract (nearby epsilons are different queries).
type flightKey struct {
	graph   string
	k       int
	epsBits uint64
	seed    uint64
}

// inflight is one in-progress query leaders publish their result on.
type inflight struct {
	done chan struct{}
	res  *QueryResult
	err  error
}

// poolEntry is one warm pool plus its cache bookkeeping. The engine
// mutex serializes batch drains; the wait queue (qmu, waiters,
// draining) hands concurrent queries to whichever member drains; the
// registry fields (bytes, elem, pinned) are guarded by the server
// mutex.
type poolEntry struct {
	key poolKey

	mu  sync.Mutex // serializes engine use (held by the draining member)
	eng *imm.WarmEngine

	qmu      sync.Mutex
	waiters  []*batchWaiter
	draining bool

	bytes  int64         // footprint last accounted into Server.usedBytes
	elem   *list.Element // position in the LRU list
	pinned int           // queries currently using the entry; > 0 blocks eviction
	// epoch is the graph epoch the entry's engine was built or last
	// repaired at (guarded by the server mutex; recorded when the
	// drainer snapshots the graph). ApplyDelta's repair pass finds
	// stale pools by comparing it against the registry epoch.
	epoch int64
	// disk points at the entry's .impool snapshot when one backs it
	// (demoted, saved, or rehydrated); demoting marks a victim whose
	// freeze is in progress so eviction picks it only once. Both are
	// guarded by the server mutex.
	disk     *diskPool
	demoting bool
}

// enqueue appends w to the entry's wait queue and reports whether the
// caller became the drainer (the first waiter on an idle pool; everyone
// else is answered by an existing drainer's next sweep).
func (pe *poolEntry) enqueue(w *batchWaiter) (leader bool) {
	pe.qmu.Lock()
	defer pe.qmu.Unlock()
	pe.waiters = append(pe.waiters, w)
	if !pe.draining {
		pe.draining = true
		return true
	}
	return false
}

// graphEntry is one registered graph. The graph pointer and info are
// guarded by the server mutex (a delta swaps the pointer); deltaMu
// serializes delta applications on this graph so every pool advances
// one epoch at a time.
type graphEntry struct {
	g       *graph.Graph
	info    GraphInfo
	deltaMu sync.Mutex
}

// Server is the warm-pool query service. Construct with NewServer,
// register graphs with AddGraph/AddSnapshot, then call Query, QueryBatch
// or SubmitJob from any number of goroutines. Shutdown drains it.
type Server struct {
	opt  Options
	base imm.Options // per-query template; K/Epsilon/Seed overwritten

	adm *admission
	wg  sync.WaitGroup // accepted work: queries, jobs

	mu        sync.Mutex
	closed    bool
	closedCh  chan struct{}
	graphs    map[string]*graphEntry
	pools     map[poolKey]*poolEntry
	lru       *list.List // front = most recently used *poolEntry
	usedBytes int64
	flight    map[flightKey]*inflight
	jobs      map[string]*jobEntry
	jobSeq    int64
	stats     Stats
}

// NewServer returns an empty Server configured by opt.
func NewServer(opt Options) *Server {
	if opt.PoolBudgetBytes <= 0 {
		opt.PoolBudgetBytes = DefaultPoolBudgetBytes
	}
	if opt.QueryWorkers <= 0 {
		opt.QueryWorkers = 4 * runtime.GOMAXPROCS(0)
	}
	switch {
	case opt.QueueDepth == 0:
		opt.QueueDepth = DefaultQueueDepth
	case opt.QueueDepth < 0:
		opt.QueueDepth = 0 // no waiting: reject when every worker is busy
	}
	switch {
	case opt.GatherWindow == 0:
		opt.GatherWindow = DefaultGatherWindow
	case opt.GatherWindow < 0:
		opt.GatherWindow = 0 // drain immediately
	}
	base := opt.EngineOptions()
	return &Server{
		opt:      opt,
		base:     base,
		adm:      newAdmission(opt.QueryWorkers, opt.QueueDepth),
		closedCh: make(chan struct{}),
		graphs:   make(map[string]*graphEntry),
		pools:    make(map[poolKey]*poolEntry),
		lru:      list.New(),
		flight:   make(map[flightKey]*inflight),
		jobs:     make(map[string]*jobEntry),
	}
}

// AddGraph registers g under name. Names are unique; re-registering is
// an error (drop-and-replace would silently invalidate warm pools).
func (s *Server) AddGraph(name string, g *graph.Graph, weightSeed uint64) (GraphInfo, error) {
	if name == "" {
		return GraphInfo{}, fmt.Errorf("serve: empty graph name")
	}
	if g == nil || g.N == 0 {
		return GraphInfo{}, fmt.Errorf("serve: graph %q is empty", name)
	}
	info := GraphInfo{Name: name, Nodes: g.N, Edges: g.M, Model: g.Model().String(), WeightSeed: weightSeed, UpdatedAt: time.Now().UTC()}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.graphs[name]; ok {
		return GraphInfo{}, fmt.Errorf("serve: %w: %q", ErrGraphExists, name)
	}
	s.graphs[name] = &graphEntry{g: g, info: info}
	s.stats.Graphs = len(s.graphs)
	return info, nil
}

// AddSnapshot loads a .imsnap snapshot from path and registers it under
// name — the production ingestion path: parse once offline, serve from
// the binary snapshot thereafter.
func (s *Server) AddSnapshot(name, path string) (GraphInfo, error) {
	g, info, err := ingest.ReadSnapshotFile(path)
	if err != nil {
		return GraphInfo{}, fmt.Errorf("serve: snapshot %s: %w", path, err)
	}
	return s.AddGraph(name, g, info.Seed)
}

// GraphCount returns the number of registered graphs — the cheap count
// accessor liveness probes want (Graphs copies and sorts the registry).
func (s *Server) GraphCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.graphs)
}

// Graphs lists the registered graphs, sorted by name.
func (s *Server) Graphs() []GraphInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]GraphInfo, 0, len(s.graphs))
	for _, ge := range s.graphs {
		out = append(out, ge.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Stats returns a snapshot of the service counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Graphs = len(s.graphs)
	st.Pools = len(s.pools)
	st.PoolBytes = s.usedBytes
	st.BudgetBytes = s.opt.PoolBudgetBytes
	for _, pe := range s.pools {
		if pe.disk != nil {
			st.DiskPools++
			st.DiskBytes += pe.disk.bytes
		}
	}
	st.InFlight, st.QueueDepth = s.adm.gauges()
	if s.opt.WireMeter != nil {
		st.WireBytesSent, st.WireBytesReceived, st.WireMessages = s.opt.WireMeter()
	}
	if s.opt.RemoteFailovers != nil {
		st.RemoteFailovers = s.opt.RemoteFailovers()
	}
	return st
}

// checkRequestLocked validates req against the registry. Callers hold
// s.mu. Every failure wraps a sentinel so front-ends can map it.
func (s *Server) checkRequestLocked(req QueryRequest) (*graphEntry, error) {
	if req.K <= 0 {
		return nil, fmt.Errorf("serve: %w: k must be positive, got %d", ErrInvalidQuery, req.K)
	}
	if !(req.Epsilon > 0 && req.Epsilon < 1) { // also rejects NaN
		return nil, fmt.Errorf("serve: %w: epsilon must lie in (0,1), got %v", ErrInvalidQuery, req.Epsilon)
	}
	ge, ok := s.graphs[req.Graph]
	if !ok {
		return nil, fmt.Errorf("serve: %w %q", ErrUnknownGraph, req.Graph)
	}
	if req.Model != "" && req.Model != ge.info.Model {
		return nil, fmt.Errorf("serve: %w: graph %q holds a %s graph but the query requested %s", ErrInvalidQuery, req.Graph, ge.info.Model, req.Model)
	}
	return ge, nil
}

// Query answers one seed-set query, reusing the (graph, seed) warm pool
// when one exists and creating it otherwise. Concurrent queries on the
// same pool are gathered into one batch and share a single θ-extension;
// identical concurrent queries coalesce onto a single engine run. Safe
// for concurrent use.
func (s *Server) Query(req QueryRequest) (*QueryResult, error) {
	return s.query(req, admitBounded)
}

// query is Query with the admission mode explicit (see admitMode).
// admitJob callers were accepted — and registered with the shutdown
// WaitGroup — at submit time, so they bypass begin() and drain to
// completion even after shutdown starts.
func (s *Server) query(req QueryRequest, mode admitMode) (*QueryResult, error) {
	if mode != admitJob {
		if err := s.begin(); err != nil {
			return nil, err
		}
		defer s.end()
	}

	fkey := flightKey{graph: req.Graph, k: req.K, epsBits: math.Float64bits(req.Epsilon), seed: req.Seed}
	s.mu.Lock()
	ge, err := s.checkRequestLocked(req)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	if fl, ok := s.flight[fkey]; ok {
		// Coalesce onto the identical in-flight query.
		s.stats.Coalesced++
		s.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, fl.err
		}
		res := *fl.res
		res.Coalesced = true
		return &res, nil
	}
	fl := &inflight{done: make(chan struct{})}
	s.flight[fkey] = fl
	s.mu.Unlock()

	res, err := s.execute(ge, req, mode)

	s.mu.Lock()
	delete(s.flight, fkey)
	s.mu.Unlock()
	fl.res, fl.err = res, err
	close(fl.done)
	return res, err
}

// execute runs one admitted, non-coalesced query through the pool
// planner and accounts the outcome.
func (s *Server) execute(ge *graphEntry, req QueryRequest, mode admitMode) (*QueryResult, error) {
	start := time.Now()
	if err := s.adm.acquire(mode, s.closedCh); err != nil {
		s.mu.Lock()
		s.stats.Rejected++
		s.mu.Unlock()
		return nil, err
	}
	defer s.adm.release()

	s.mu.Lock()
	pkey := poolKey{graph: req.Graph, seed: req.Seed}
	pe, ok := s.pools[pkey]
	if !ok {
		// Register a placeholder only; the engine itself is built by the
		// draining member under the entry's own mutex — construction
		// allocates O(N) (the fused counter), which must not stall the
		// registry. Warm/cold is decided there too: every member of the
		// batch that builds the engine is cold.
		pe = &poolEntry{key: pkey}
		s.pools[pkey] = pe
		pe.elem = s.lru.PushFront(pe)
	} else {
		s.lru.MoveToFront(pe.elem)
	}
	s.stats.Queries++
	pe.pinned++
	s.mu.Unlock()

	w := &batchWaiter{req: req, done: make(chan struct{})}
	if pe.enqueue(w) {
		s.drainPool(ge, pe)
	} else {
		<-w.done
	}
	res, err := w.res, w.err

	var demote []*poolEntry
	s.mu.Lock()
	pe.pinned--
	if err == nil {
		res.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
		if res.Warm {
			s.stats.WarmHits++
		} else {
			s.stats.ColdMisses++
		}
		// Re-account the pool's footprint and enforce the byte budget.
		// res.PoolBytes was measured inside the drain under the engine
		// mutex; re-reading the engine here would race with a concurrent
		// batch on the same pool. The pool only ever grows, so take the
		// monotonic max — two queries finishing out of order must not let
		// the smaller, staler measurement overwrite the larger one. An
		// entry RemoveGraph unregistered mid-flight is skipped: its bytes
		// already left the budget.
		if res.PoolBytes > pe.bytes && s.pools[pe.key] == pe {
			s.usedBytes += res.PoolBytes - pe.bytes
			pe.bytes = res.PoolBytes
		}
		s.stats.ReusedSets += res.ReusedSets
		s.stats.GeneratedSets += res.GeneratedSets
		s.stats.ReusedBytes += res.ReusedBytes
		demote = s.evictLocked(pe)
	} else if pe.pinned == 0 && pe.bytes == 0 && pe.disk == nil && s.pools[pe.key] == pe {
		// The query failed, no query ever succeeded on this entry
		// (successful queries always account a positive footprint), and
		// nobody else is using it: drop the placeholder so later queries
		// start clean instead of inheriting a dead entry. (The map check
		// guards against unregistering a successor entry after
		// RemoveGraph already dropped this one.)
		s.removeEntryLocked(pe)
	}
	s.mu.Unlock()
	s.demoteEntries(demote)
	return res, err
}

// queryOptions builds the imm options for one query from the server
// template.
func (s *Server) queryOptions(req QueryRequest) imm.Options {
	o := s.base
	o.K = req.K
	o.Epsilon = req.Epsilon
	o.Seed = req.Seed
	return o
}

// removeEntryLocked unregisters a pool entry, returns its bytes to the
// budget, and discards any disk-tier snapshot backing it.
func (s *Server) removeEntryLocked(pe *poolEntry) {
	s.lru.Remove(pe.elem)
	delete(s.pools, pe.key)
	s.usedBytes -= pe.bytes
	s.dropDiskLocked(pe)
}

// evictLocked reclaims least-recently-used pools until resident bytes
// fit the budget. Pinned (in-flight) pools are skipped, and so is keep
// — the pool the finishing query just used: evicting it would make a
// single over-budget pool its own victim and turn every repeat query
// into a cold regeneration (the budget may transiently overshoot
// instead, exactly as it already does for pinned pools). At least one
// pool may therefore remain over budget, which is the correct behavior
// when a single pool exceeds the budget on its own.
//
// Without a disk tier victims are dropped outright. With
// Options.PoolDir set they are demoted instead: their budget bytes are
// released here (so admission of the triggering query is never blocked
// on disk I/O) and the entries are returned for the caller to freeze
// to disk after the registry unlocks — the freeze needs the engine
// mutex, which must never be taken under s.mu.
func (s *Server) evictLocked(keep *poolEntry) (demote []*poolEntry) {
	for s.usedBytes > s.opt.PoolBudgetBytes {
		victim := (*poolEntry)(nil)
		for e := s.lru.Back(); e != nil; e = e.Prev() {
			pe := e.Value.(*poolEntry)
			if pe.pinned != 0 || pe == keep {
				continue
			}
			if s.opt.PoolDir != "" && (pe.demoting || pe.bytes == 0) {
				continue // freeze in progress, or nothing resident to demote
			}
			victim = pe
			break
		}
		if victim == nil {
			return demote // everything resident is in flight or just-used
		}
		if s.opt.PoolDir != "" {
			victim.demoting = true
			s.usedBytes -= victim.bytes
			victim.bytes = 0
			demote = append(demote, victim)
			continue
		}
		s.removeEntryLocked(victim)
		s.stats.Evictions++
	}
	return demote
}
