// Package serve is the warm-pool query service: a long-running engine
// that holds a registry of ingested graphs and answers (graph, k, ε,
// seed) seed-set queries by reusing per-graph sharded RRR pools across
// queries instead of sampling from scratch per invocation.
//
// Key types: Server (the registry plus the warm-pool cache), Options
// (engine configuration shared by every query), QueryRequest/QueryResult
// (the query protocol, also the HTTP JSON schema), and Stats (the
// service counters the /stats endpoint reports).
//
// Invariants:
//
//   - Served answers are byte-identical to a cold imm.Run with the same
//     (graph, model, k, epsilon, rngSeed): pools are reused through
//     imm.WarmEngine, whose limited-view selection replays exactly the
//     cold θ trajectory (see internal/imm/warm.go for the argument).
//   - One warm engine exists per (graph, rngSeed) pair, serving one
//     query at a time under its own mutex; queries against different
//     pools run concurrently.
//   - Identical concurrent queries are deduplicated single-flight: one
//     leader computes, followers receive a copy of its result.
//   - Resident pool bytes across all warm engines are bounded by
//     Options.PoolBudgetBytes with least-recently-used eviction;
//     in-flight pools are never evicted.
package serve

import (
	"container/list"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/imm"
	"repro/internal/ingest"
)

// DefaultPoolBudgetBytes bounds resident warm-pool bytes when
// Options.PoolBudgetBytes is zero: 1 GiB, roomy for dozens of
// laptop-scale pools while still exercising eviction under load.
const DefaultPoolBudgetBytes = 1 << 30

// Options configures a Server. The engine-shaping fields apply to every
// query; per-query parameters (k, ε, RNG seed) arrive in QueryRequest.
type Options struct {
	// Workers is the per-query parallelism. <= 0 means 1 (matching
	// imm.Options normalization).
	Workers int
	// Pool selects the RRR pool representation for every warm pool.
	Pool imm.PoolKind
	// Selection selects the seed-selection kernel.
	Selection imm.SelectionKind
	// MaxTheta caps sampling per query (0 = per-theory). It participates
	// in the cold-equivalence contract: a cold run must use the same cap.
	MaxTheta int64
	// PoolBudgetBytes bounds the summed resident footprint of all warm
	// pools; least-recently-used pools are dropped when a query pushes
	// past it. 0 means DefaultPoolBudgetBytes.
	PoolBudgetBytes int64
}

// EngineOptions returns the imm options a server configured by o runs
// every query with (the per-query K, Epsilon, and Seed still to be
// filled in). It is the one place the serve→imm mapping lives: cold
// reference runs that must match served answers byte-for-byte should
// derive their options here rather than re-deriving them from
// imm.Defaults.
func (o Options) EngineOptions() imm.Options {
	b := imm.Defaults()
	b.Engine = imm.Efficient // warm reuse requires the Efficient engine
	b.Workers = o.Workers
	b.Pool = o.Pool
	b.Selection = o.Selection
	b.MaxTheta = o.MaxTheta
	return b
}

// GraphInfo describes one registered graph.
type GraphInfo struct {
	Name  string `json:"name"`
	Nodes int32  `json:"nodes"`
	Edges int64  `json:"edges"`
	Model string `json:"model"`
	// WeightSeed is the diffusion-weight provenance (the ingestion seed,
	// recorded in .imsnap headers). It is distinct from a query's RNG
	// seed, which seeds RRR sampling only.
	WeightSeed uint64 `json:"weight_seed"`
}

// QueryRequest identifies one seed-set query. Graph, K, Epsilon and
// Seed form the query key; Model, when non-empty, is validated against
// the registered graph's model (a mismatch is an error, never a silent
// reweighting).
type QueryRequest struct {
	Graph   string  `json:"graph"`
	Model   string  `json:"model,omitempty"`
	K       int     `json:"k"`
	Epsilon float64 `json:"epsilon"`
	Seed    uint64  `json:"seed"`
}

// QueryResult is a served answer plus its reuse accounting.
type QueryResult struct {
	Graph   string  `json:"graph"`
	Model   string  `json:"model"`
	K       int     `json:"k"`
	Epsilon float64 `json:"epsilon"`
	Seed    uint64  `json:"seed"`

	Seeds    []int32 `json:"seeds"`
	Theta    int64   `json:"theta"`
	Rounds   int     `json:"rounds"`
	Coverage float64 `json:"coverage"`

	// Warm reports whether the query found an already-built warm engine
	// for its (graph, seed) — a query that races another cold miss onto
	// the same fresh registry entry and ends up building the engine
	// itself is cold; Coalesced reports the query was answered by an
	// identical in-flight query's result rather than its own engine run.
	Warm      bool `json:"warm"`
	Coalesced bool `json:"coalesced"`
	// ReusedSets counts the RRR sets the query consumed without
	// generating them (min(θ, pool size at query start)); GeneratedSets
	// the sets it added; ReusedBytes the resident bytes of the reused
	// prefix.
	ReusedSets    int64 `json:"reused_sets"`
	GeneratedSets int64 `json:"generated_sets"`
	ReusedBytes   int64 `json:"reused_bytes"`
	// PoolBytes is the pool's full resident footprint after the query —
	// set payloads, inverted-index postings, and the engine overhead
	// (fused counter, coverage scratch). This is the quantity the byte
	// budget accounts.
	PoolBytes int64 `json:"pool_bytes"`

	WallMS float64 `json:"wall_ms"`
}

// Stats are the service counters, all cumulative since construction
// except the gauges Graphs/Pools/PoolBytes.
type Stats struct {
	Graphs      int   `json:"graphs"`
	Pools       int   `json:"pools"`
	PoolBytes   int64 `json:"pool_bytes"`
	BudgetBytes int64 `json:"budget_bytes"`

	Queries       int64 `json:"queries"`
	WarmHits      int64 `json:"warm_hits"`
	ColdMisses    int64 `json:"cold_misses"`
	Coalesced     int64 `json:"coalesced"`
	Evictions     int64 `json:"evictions"`
	ReusedSets    int64 `json:"reused_sets"`
	GeneratedSets int64 `json:"generated_sets"`
	ReusedBytes   int64 `json:"reused_bytes"`
}

// HitRatio is the fraction of executed (non-coalesced) queries that
// found a warm pool.
func (s Stats) HitRatio() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.WarmHits) / float64(s.Queries)
}

// poolKey identifies one warm pool: pool contents are a pure function
// of (graph, engine policy, RNG seed), and the policy is fixed
// server-wide, so (graph, seed) is the whole key.
type poolKey struct {
	graph string
	seed  uint64
}

// flightKey identifies one query for single-flight deduplication.
// Epsilon participates via its IEEE-754 bits: exact equality is the
// contract (nearby epsilons are different queries).
type flightKey struct {
	graph   string
	k       int
	epsBits uint64
	seed    uint64
}

// inflight is one in-progress query leaders publish their result on.
type inflight struct {
	done chan struct{}
	res  *QueryResult
	err  error
}

// poolEntry is one warm pool plus its cache bookkeeping. The engine
// mutex serializes queries; the registry fields (bytes, elem, pinned)
// are guarded by the server mutex.
type poolEntry struct {
	key poolKey

	mu  sync.Mutex // serializes engine use
	eng *imm.WarmEngine

	bytes  int64         // footprint last accounted into Server.usedBytes
	elem   *list.Element // position in the LRU list
	pinned int           // queries currently using the entry; > 0 blocks eviction
}

// graphEntry is one registered graph.
type graphEntry struct {
	g    *graph.Graph
	info GraphInfo
}

// Server is the warm-pool query service. Construct with NewServer,
// register graphs with AddGraph/AddSnapshot, then call Query from any
// number of goroutines.
type Server struct {
	opt  Options
	base imm.Options // per-query template; K/Epsilon/Seed overwritten

	mu        sync.Mutex
	graphs    map[string]*graphEntry
	pools     map[poolKey]*poolEntry
	lru       *list.List // front = most recently used *poolEntry
	usedBytes int64
	flight    map[flightKey]*inflight
	stats     Stats
}

// NewServer returns an empty Server configured by opt.
func NewServer(opt Options) *Server {
	if opt.PoolBudgetBytes <= 0 {
		opt.PoolBudgetBytes = DefaultPoolBudgetBytes
	}
	base := opt.EngineOptions()
	return &Server{
		opt:    opt,
		base:   base,
		graphs: make(map[string]*graphEntry),
		pools:  make(map[poolKey]*poolEntry),
		lru:    list.New(),
		flight: make(map[flightKey]*inflight),
	}
}

// AddGraph registers g under name. Names are unique; re-registering is
// an error (drop-and-replace would silently invalidate warm pools).
func (s *Server) AddGraph(name string, g *graph.Graph, weightSeed uint64) (GraphInfo, error) {
	if name == "" {
		return GraphInfo{}, fmt.Errorf("serve: empty graph name")
	}
	if g == nil || g.N == 0 {
		return GraphInfo{}, fmt.Errorf("serve: graph %q is empty", name)
	}
	info := GraphInfo{Name: name, Nodes: g.N, Edges: g.M, Model: g.Model().String(), WeightSeed: weightSeed}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.graphs[name]; ok {
		return GraphInfo{}, fmt.Errorf("serve: graph %q already registered", name)
	}
	s.graphs[name] = &graphEntry{g: g, info: info}
	s.stats.Graphs = len(s.graphs)
	return info, nil
}

// AddSnapshot loads a .imsnap snapshot from path and registers it under
// name — the production ingestion path: parse once offline, serve from
// the binary snapshot thereafter.
func (s *Server) AddSnapshot(name, path string) (GraphInfo, error) {
	g, info, err := ingest.ReadSnapshotFile(path)
	if err != nil {
		return GraphInfo{}, fmt.Errorf("serve: snapshot %s: %w", path, err)
	}
	return s.AddGraph(name, g, info.Seed)
}

// GraphCount returns the number of registered graphs — the cheap count
// accessor liveness probes want (Graphs copies and sorts the registry).
func (s *Server) GraphCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.graphs)
}

// Graphs lists the registered graphs, sorted by name.
func (s *Server) Graphs() []GraphInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]GraphInfo, 0, len(s.graphs))
	for _, ge := range s.graphs {
		out = append(out, ge.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Stats returns a snapshot of the service counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Graphs = len(s.graphs)
	st.Pools = len(s.pools)
	st.PoolBytes = s.usedBytes
	st.BudgetBytes = s.opt.PoolBudgetBytes
	return st
}

// Query answers one seed-set query, reusing the (graph, seed) warm pool
// when one exists and creating it otherwise. Identical concurrent
// queries coalesce onto a single engine run. Safe for concurrent use.
func (s *Server) Query(req QueryRequest) (*QueryResult, error) {
	if req.K <= 0 {
		return nil, fmt.Errorf("serve: k must be positive, got %d", req.K)
	}
	if !(req.Epsilon > 0 && req.Epsilon < 1) { // also rejects NaN
		return nil, fmt.Errorf("serve: epsilon must lie in (0,1), got %v", req.Epsilon)
	}
	fkey := flightKey{graph: req.Graph, k: req.K, epsBits: math.Float64bits(req.Epsilon), seed: req.Seed}

	s.mu.Lock()
	ge, ok := s.graphs[req.Graph]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: unknown graph %q", req.Graph)
	}
	if req.Model != "" && req.Model != ge.info.Model {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: graph %q holds a %s graph but the query requested %s", req.Graph, ge.info.Model, req.Model)
	}
	if fl, ok := s.flight[fkey]; ok {
		// Coalesce onto the identical in-flight query.
		s.stats.Coalesced++
		s.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, fl.err
		}
		res := *fl.res
		res.Coalesced = true
		return &res, nil
	}
	fl := &inflight{done: make(chan struct{})}
	s.flight[fkey] = fl

	pkey := poolKey{graph: req.Graph, seed: req.Seed}
	pe, ok := s.pools[pkey]
	if !ok {
		// Register a placeholder only; the engine itself is built in
		// runQuery under the entry's own mutex — construction allocates
		// O(N) (the fused counter), which must not stall the registry.
		// Warm/cold is decided there too: a query that races another
		// cold miss onto the same placeholder may still be the one that
		// builds the engine, and must not report a warm hit.
		pe = &poolEntry{key: pkey}
		s.pools[pkey] = pe
		pe.elem = s.lru.PushFront(pe)
	} else {
		s.lru.MoveToFront(pe.elem)
	}
	s.stats.Queries++
	pe.pinned++
	s.mu.Unlock()

	res, err := s.runQuery(ge, pe, req)

	s.mu.Lock()
	pe.pinned--
	if err == nil {
		if res.Warm {
			s.stats.WarmHits++
		} else {
			s.stats.ColdMisses++
		}
		// Re-account the pool's footprint and enforce the byte budget.
		// res.PoolBytes was measured inside runQuery under the engine
		// mutex; re-reading the engine here would race with a concurrent
		// query on the same pool. The pool only ever grows, so take the
		// monotonic max — two queries finishing out of order must not let
		// the smaller, staler measurement overwrite the larger one.
		if res.PoolBytes > pe.bytes {
			s.usedBytes += res.PoolBytes - pe.bytes
			pe.bytes = res.PoolBytes
		}
		s.stats.ReusedSets += res.ReusedSets
		s.stats.GeneratedSets += res.GeneratedSets
		s.stats.ReusedBytes += res.ReusedBytes
		s.evictLocked()
	} else if pe.pinned == 0 && pe.bytes == 0 {
		// The query failed, no query ever succeeded on this entry
		// (successful queries always account a positive footprint), and
		// nobody else is using it: drop the placeholder so later queries
		// start clean instead of inheriting a dead entry.
		s.removeEntryLocked(pe)
	}
	delete(s.flight, fkey)
	s.mu.Unlock()

	fl.res, fl.err = res, err
	close(fl.done)
	return res, err
}

// queryOptions builds the imm options for one query from the server
// template.
func (s *Server) queryOptions(req QueryRequest) imm.Options {
	o := s.base
	o.K = req.K
	o.Epsilon = req.Epsilon
	o.Seed = req.Seed
	return o
}

// runQuery executes the query on its (serialized) warm engine, building
// the engine first if this entry has never run one (the cold-miss path,
// or a retry after a failed construction). Warm means the engine — not
// just the registry entry — already existed when this query got the
// pool.
func (s *Server) runQuery(ge *graphEntry, pe *poolEntry, req QueryRequest) (*QueryResult, error) {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	start := time.Now()
	warm := pe.eng != nil
	if !warm {
		eng, err := imm.NewWarmEngine(ge.g, s.queryOptions(req))
		if err != nil {
			return nil, err
		}
		pe.eng = eng
	}
	physBefore := pe.eng.PhysicalSets()
	pe.eng.BeginQuery()
	res, err := imm.RunEngine(ge.g, s.queryOptions(req), pe.eng)
	if err != nil {
		return nil, err
	}
	reused := res.Theta
	if physBefore < reused {
		reused = physBefore
	}
	return &QueryResult{
		Graph:   req.Graph,
		Model:   ge.info.Model,
		K:       req.K,
		Epsilon: req.Epsilon,
		Seed:    req.Seed,

		Seeds:    res.Seeds,
		Theta:    res.Theta,
		Rounds:   res.Rounds,
		Coverage: res.Coverage,

		Warm:          warm,
		ReusedSets:    reused,
		GeneratedSets: pe.eng.PhysicalSets() - physBefore,
		ReusedBytes:   pe.eng.FootprintUpTo(reused).TotalBytes(),
		PoolBytes:     pe.eng.PhysicalFootprint().TotalBytes() + pe.eng.OverheadBytes(),

		WallMS: float64(time.Since(start)) / float64(time.Millisecond),
	}, nil
}

// removeEntryLocked unregisters a pool entry and returns its bytes to
// the budget.
func (s *Server) removeEntryLocked(pe *poolEntry) {
	s.lru.Remove(pe.elem)
	delete(s.pools, pe.key)
	s.usedBytes -= pe.bytes
}

// evictLocked drops least-recently-used pools until resident bytes fit
// the budget. Pinned (in-flight) pools are skipped; at least one pool
// may therefore remain over budget, which is the correct behavior when
// a single pool exceeds the budget on its own.
func (s *Server) evictLocked() {
	for s.usedBytes > s.opt.PoolBudgetBytes {
		victim := (*poolEntry)(nil)
		for e := s.lru.Back(); e != nil; e = e.Prev() {
			pe := e.Value.(*poolEntry)
			if pe.pinned == 0 {
				victim = pe
				break
			}
		}
		if victim == nil {
			return // everything resident is in flight
		}
		s.removeEntryLocked(victim)
		s.stats.Evictions++
	}
}
