package serve

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/imm"
)

// startRankWorkers boots n loopback worker ranks and returns a connected
// root Cluster over them (closed via t.Cleanup).
func startRankWorkers(t *testing.T, n int) *dist.Cluster {
	t.Helper()
	opt := dist.ClusterOptions{
		DialTimeout:  2 * time.Second,
		FrameTimeout: 30 * time.Second,
		DialRetries:  1,
		Backoff:      10 * time.Millisecond,
	}
	peers := []string{"root.invalid:0"}
	for i := 0; i < n; i++ {
		rs, err := dist.ListenRank("127.0.0.1:0", opt)
		if err != nil {
			t.Fatal(err)
		}
		go rs.Serve()
		t.Cleanup(func() { rs.Close() })
		peers = append(peers, rs.Addr())
	}
	cl, err := dist.Connect(dist.ClusterConfig{Rank: 0, Peers: peers}, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// clusterServeOptions wires a cluster into serve options the way
// immserver's cluster mode does.
func clusterServeOptions(opt Options, cl *dist.Cluster) Options {
	opt.RemoteGen = func(name string, g *graph.Graph, o imm.Options) imm.SlotGenerator {
		return cl.PoolGenerator(name, g, imm.PolicyFromOptions(o), o.Seed)
	}
	opt.WireMeter = cl.MeterTotals
	opt.RemoteFailovers = cl.Failovers
	return opt
}

// TestClusterServeByteIdentical pins the serving-path half of the
// networked contract: a server whose warm pools are filled by remote
// worker ranks answers byte-identically to a purely local server and to
// a cold imm.Run, while the wire meter proves the samples actually
// travelled.
func TestClusterServeByteIdentical(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	base := Options{Workers: 2, MaxTheta: 6000}
	cl := startRankWorkers(t, 2)

	local := testServer(t, base, map[string]*graph.Graph{"g": g})
	remote := testServer(t, clusterServeOptions(base, cl), map[string]*graph.Graph{"g": g})

	queries := []QueryRequest{
		{Graph: "g", K: 10, Epsilon: 0.5, Seed: 1},
		{Graph: "g", K: 10, Epsilon: 0.5, Seed: 1}, // warm repeat
		{Graph: "g", K: 20, Epsilon: 0.4, Seed: 1}, // θ extension over the wire
		{Graph: "g", K: 6, Epsilon: 0.5, Seed: 9},  // second pool
	}
	for i, req := range queries {
		want, err := local.Query(req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := remote.Query(req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Seeds, want.Seeds) || got.Theta != want.Theta ||
			got.Rounds != want.Rounds || got.Coverage != want.Coverage {
			t.Fatalf("query %d: cluster answer diverged:\n got seeds=%v θ=%d rounds=%d cov=%v\nwant seeds=%v θ=%d rounds=%d cov=%v",
				i, got.Seeds, got.Theta, got.Rounds, got.Coverage,
				want.Seeds, want.Theta, want.Rounds, want.Coverage)
		}
		cold := coldRun(t, g, base, req)
		if !reflect.DeepEqual(got.Seeds, cold.Seeds) || got.Theta != cold.Theta {
			t.Fatalf("query %d: cluster answer diverged from cold run", i)
		}
	}

	st := remote.Stats()
	if st.WireBytesSent == 0 || st.WireBytesReceived == 0 || st.WireMessages == 0 {
		t.Fatalf("expected measured wire traffic, got stats %+v", st)
	}
	if st.RemoteFailovers != 0 {
		t.Fatalf("healthy workers should not fail over, got %d", st.RemoteFailovers)
	}
	if lst := local.Stats(); lst.WireBytesSent != 0 || lst.WireMessages != 0 {
		t.Fatalf("local server should report zero wire traffic, got %+v", lst)
	}
}

// TestClusterServeFailover pins that a server keeps answering — still
// byte-identically — when its worker rank dies mid-service: the pool
// generator regenerates lost chunks locally.
func TestClusterServeFailover(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	base := Options{Workers: 2, MaxTheta: 6000}
	opt := dist.ClusterOptions{
		DialTimeout:  time.Second,
		FrameTimeout: 30 * time.Second,
		DialRetries:  0,
		Backoff:      5 * time.Millisecond,
	}
	rs, err := dist.ListenRank("127.0.0.1:0", opt)
	if err != nil {
		t.Fatal(err)
	}
	go rs.Serve()
	cl, err := dist.Connect(dist.ClusterConfig{Rank: 0, Peers: []string{"root.invalid:0", rs.Addr()}}, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	remote := testServer(t, clusterServeOptions(base, cl), map[string]*graph.Graph{"g": g})
	req := QueryRequest{Graph: "g", K: 10, Epsilon: 0.5, Seed: 1}
	if _, err := remote.Query(req); err != nil {
		t.Fatal(err)
	}
	if cl.Failovers() != 0 {
		t.Fatalf("healthy worker should serve without failover, got %d", cl.Failovers())
	}

	// Kill the only worker, then force a fresh pool on a new seed so the
	// generator must fan out — and fail over — for its remote chunk.
	rs.Close()
	req2 := QueryRequest{Graph: "g", K: 10, Epsilon: 0.5, Seed: 2}
	got, err := remote.Query(req2)
	if err != nil {
		t.Fatal(err)
	}
	local := testServer(t, base, map[string]*graph.Graph{"g": g})
	if want, err := local.Query(req2); err != nil {
		t.Fatal(err)
	} else if !reflect.DeepEqual(got.Seeds, want.Seeds) || got.Theta != want.Theta {
		t.Fatalf("failover answer diverged from local: got %v want %v", got.Seeds, want.Seeds)
	}
	if remote.Stats().RemoteFailovers == 0 {
		t.Fatal("expected failover counter to advance after worker loss")
	}
}
