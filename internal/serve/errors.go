package serve

import "errors"

// Sentinel errors of the query service. Every error Server returns
// wraps exactly one of these (or is a genuine engine failure, which
// wraps none), so front-ends can map failures to transport-level
// outcomes with errors.Is instead of string matching — the HTTP handler
// turns them into 404/400/429/503 and reserves 500 for the unwrapped
// remainder.
var (
	// ErrUnknownGraph marks a query against a graph name the registry
	// does not hold (HTTP 404).
	ErrUnknownGraph = errors.New("unknown graph")
	// ErrInvalidQuery marks client-side validation failures: k ≤ 0,
	// ε outside (0,1), a model mismatch, or a malformed parameter
	// (HTTP 400).
	ErrInvalidQuery = errors.New("invalid query")
	// ErrOverloaded marks an admission rejection: every query worker is
	// busy and the wait queue is full (HTTP 429 with Retry-After).
	ErrOverloaded = errors.New("server overloaded")
	// ErrShuttingDown marks work rejected because Shutdown has begun
	// (HTTP 503). In-flight and already-queued work still completes.
	ErrShuttingDown = errors.New("server shutting down")
	// ErrUnknownJob marks a lookup of a job id that was never issued or
	// has been pruned (HTTP 404).
	ErrUnknownJob = errors.New("unknown job")
	// ErrGraphExists marks a registration under a name the registry
	// already holds (HTTP 409) — drop-and-replace would silently
	// invalidate warm pools, so replacement is an explicit DELETE + POST.
	ErrGraphExists = errors.New("graph already registered")
	// ErrInvalidDelta marks a malformed or rejected edge delta: strict
	// violations (self-loops, duplicates, absent removals), out-of-range
	// endpoints, or a mismatched probability vector (HTTP 400).
	ErrInvalidDelta = errors.New("invalid delta")
)
