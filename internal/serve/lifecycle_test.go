package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/imm"
	"repro/internal/ingest"
)

// firstEdges returns up to k existing directed edges of g, for deltas
// that remove real edges.
func firstEdges(g *graph.Graph, k int) []graph.Edge {
	var out []graph.Edge
	for u := int32(0); u < g.N && len(out) < k; u++ {
		for p := g.OutIndex[u]; p < g.OutIndex[u+1] && len(out) < k; p++ {
			out = append(out, graph.Edge{Src: u, Dst: g.OutEdges[p]})
		}
	}
	return out
}

// freshEdges returns up to k directed (src,dst) pairs absent from g.
func freshEdges(g *graph.Graph, k int) []graph.Edge {
	present := make(map[[2]int32]bool, g.M)
	for u := int32(0); u < g.N; u++ {
		for p := g.OutIndex[u]; p < g.OutIndex[u+1]; p++ {
			present[[2]int32{u, g.OutEdges[p]}] = true
		}
	}
	var out []graph.Edge
	for u := int32(0); u < g.N && len(out) < k; u++ {
		for v := int32(0); v < g.N && len(out) < k; v++ {
			if u != v && !present[[2]int32{u, v}] {
				out = append(out, graph.Edge{Src: u, Dst: v})
				present[[2]int32{u, v}] = true
			}
		}
	}
	return out
}

// TestApplyDeltaRepairsWarmPools pins the serving-layer repair
// contract across models and pool kinds: after a delta, a query on the
// surviving warm pool answers exactly what a cold server loaded with
// the post-delta graph answers, and the pool itself is retained (warm
// hit), not regenerated.
func TestApplyDeltaRepairsWarmPools(t *testing.T) {
	for _, model := range []graph.Model{graph.IC, graph.LT} {
		for _, pool := range []imm.PoolKind{imm.PoolSlices, imm.PoolCompressed} {
			t.Run(model.String()+"/"+pool.String(), func(t *testing.T) {
				g := testGraph(t, 8, model)
				opt := Options{Workers: 2, MaxTheta: 4000, Pool: pool}
				s := testServer(t, opt, map[string]*graph.Graph{"g": g})
				req := QueryRequest{Graph: "g", K: 10, Epsilon: 0.5, Seed: 7}
				if _, err := s.Query(req); err != nil {
					t.Fatal(err)
				}

				d := graph.Delta{Add: freshEdges(g, 12), Remove: firstEdges(g, 9), Seed: 99}
				res, err := s.ApplyDelta("g", d, graph.DeltaOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Changed || res.Epoch != 1 || res.PoolsRepaired != 1 {
					t.Fatalf("delta result = %+v", res)
				}
				if res.UpdatedAt.IsZero() {
					t.Fatal("delta result has zero updated_at")
				}
				if info, err := s.GraphByName("g"); err != nil || info.Epoch != 1 || info.Edges != res.Edges {
					t.Fatalf("GraphByName after delta = %+v, %v", info, err)
				}

				warm, err := s.Query(req)
				if err != nil {
					t.Fatal(err)
				}
				if !warm.Warm {
					t.Fatal("query after repair should hit the retained (repaired) pool")
				}

				ng, _, err := graph.ApplyDelta(g, d, graph.DeltaOptions{})
				if err != nil {
					t.Fatal(err)
				}
				cold := testServer(t, opt, map[string]*graph.Graph{"g": ng})
				want, err := cold.Query(req)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(warm.Seeds, want.Seeds) || warm.Theta != want.Theta {
					t.Fatalf("repaired pool diverged from cold post-delta pool:\nrepaired: seeds=%v theta=%d\ncold:     seeds=%v theta=%d",
						warm.Seeds, warm.Theta, want.Seeds, want.Theta)
				}

				st := s.Stats()
				if st.Deltas != 1 || st.RepairedPools != 1 {
					t.Fatalf("stats after delta = %+v", st)
				}
			})
		}
	}
}

// TestApplyDeltaEvictedPool pins the cold-fallback path: a pool the
// byte budget evicted before the delta is simply absent during repair,
// and the next query regenerates it cold on the post-delta graph.
func TestApplyDeltaEvictedPool(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	// A 1-byte budget keeps only the pool in active use: the second
	// query's drain evicts the first query's pool (the LRU victim).
	opt := Options{Workers: 2, MaxTheta: 4000, PoolBudgetBytes: 1}
	s := testServer(t, opt, map[string]*graph.Graph{"g": g})
	req := QueryRequest{Graph: "g", K: 10, Epsilon: 0.5, Seed: 7}
	if _, err := s.Query(req); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(QueryRequest{Graph: "g", K: 10, Epsilon: 0.5, Seed: 8}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Evictions == 0 || st.Pools != 1 {
		t.Fatalf("second query should evict the first pool, stats = %+v", st)
	}

	d := graph.Delta{Add: freshEdges(g, 5), Seed: 3}
	res, err := s.ApplyDelta("g", d, graph.DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PoolsRepaired != 1 {
		t.Fatalf("only the resident pool should be repaired, result = %+v", res)
	}

	got, err := s.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Warm {
		t.Fatal("query on evicted pool after delta should be a cold rebuild")
	}
	ng, _, err := graph.ApplyDelta(g, d, graph.DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := coldRun(t, ng, opt, req)
	if !reflect.DeepEqual(got.Seeds, want.Seeds) {
		t.Fatalf("cold rebuild after delta = %v, want %v", got.Seeds, want.Seeds)
	}
}

// TestRemoveGraph pins DELETE semantics at the Server level: pools are
// evicted, byte accounting returns to zero, and the name is free for
// re-registration.
func TestRemoveGraph(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	s := testServer(t, Options{Workers: 2, MaxTheta: 4000}, map[string]*graph.Graph{"g": g})
	for seed := uint64(1); seed <= 3; seed++ {
		if _, err := s.Query(QueryRequest{Graph: "g", K: 5, Epsilon: 0.5, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Pools != 3 {
		t.Fatalf("expected 3 resident pools, stats = %+v", st)
	}

	info, evicted, err := s.RemoveGraph("g")
	if err != nil || info.Name != "g" || evicted != 3 {
		t.Fatalf("RemoveGraph = %+v, %d, %v", info, evicted, err)
	}
	st := s.Stats()
	if st.Pools != 0 || st.PoolBytes != 0 || st.Graphs != 0 {
		t.Fatalf("stats after removal = %+v", st)
	}
	if _, err := s.Query(QueryRequest{Graph: "g", K: 5, Epsilon: 0.5, Seed: 1}); !isUnknownGraph(err) {
		t.Fatalf("query after removal = %v, want ErrUnknownGraph", err)
	}
	if _, _, err := s.RemoveGraph("g"); !isUnknownGraph(err) {
		t.Fatalf("double removal = %v, want ErrUnknownGraph", err)
	}
	if _, err := s.AddGraph("g", g, 42); err != nil {
		t.Fatalf("re-registering a removed name: %v", err)
	}
}

// TestLifecycleHTTP drives the full /v1 graph lifecycle over HTTP:
// register (inline and from snapshot), inspect, stream a delta, and
// delete — including the error envelope for the failure cases.
func TestLifecycleHTTP(t *testing.T) {
	_, ts := testHTTP(t)

	// Register a small inline graph.
	var info GraphInfo
	postJSON(t, ts.URL+"/v1/graphs",
		`{"name":"tiny","model":"IC","edges":[[0,1],[1,2],[2,0],[0,2]],"weight_seed":5}`,
		http.StatusCreated, &info)
	if info.Name != "tiny" || info.Nodes != 3 || info.Edges != 4 || info.Epoch != 0 {
		t.Fatalf("inline registration = %+v", info)
	}
	if info.UpdatedAt.IsZero() {
		t.Fatal("registration should stamp updated_at")
	}

	// Register from a snapshot file.
	g := testGraph(t, 6, graph.LT)
	snap := filepath.Join(t.TempDir(), "g.imsnap")
	if err := ingest.WriteSnapshotFile(snap, g, 42); err != nil {
		t.Fatal(err)
	}
	postJSON(t, ts.URL+"/v1/graphs", `{"name":"snapped","snapshot":`+quoteJSON(snap)+`}`,
		http.StatusCreated, &info)
	if info.Name != "snapped" || info.Nodes != g.N || info.Model != "LT" {
		t.Fatalf("snapshot registration = %+v", info)
	}

	var graphs GraphsResponse
	getJSON(t, ts.URL+"/v1/graphs", http.StatusOK, &graphs)
	if len(graphs.Graphs) != 3 {
		t.Fatalf("expected 3 graphs, got %+v", graphs)
	}

	// Duplicate name → 409 graph_exists.
	checkError(t, "POST", ts.URL+"/v1/graphs", `{"name":"tiny","model":"IC","edges":[[0,1]]}`,
		http.StatusConflict, "graph_exists")
	// Neither source, both sources, unknown field → 400 invalid_query.
	checkError(t, "POST", ts.URL+"/v1/graphs", `{"name":"x"}`, http.StatusBadRequest, "invalid_query")
	checkError(t, "POST", ts.URL+"/v1/graphs",
		`{"name":"x","snapshot":"p","edges":[[0,1]]}`, http.StatusBadRequest, "invalid_query")
	checkError(t, "POST", ts.URL+"/v1/graphs", `{"name":"x","bogus":1}`, http.StatusBadRequest, "invalid_query")

	// GET one graph.
	getJSON(t, ts.URL+"/v1/graphs/tiny", http.StatusOK, &info)
	if info.Name != "tiny" || info.Epoch != 0 {
		t.Fatalf("GET /v1/graphs/tiny = %+v", info)
	}
	checkError(t, "GET", ts.URL+"/v1/graphs/nope", "", http.StatusNotFound, "unknown_graph")

	// Warm a pool, then stream a delta; epoch bumps and the pool is
	// repaired in place.
	var qr QueryResult
	getJSON(t, ts.URL+"/v1/query?graph=tiny&k=2&eps=0.5&seed=1", http.StatusOK, &qr)
	var dr DeltaResult
	postJSON(t, ts.URL+"/v1/graphs/tiny/edges", `{"add":[[1,0],[2,1]],"seed":11}`, http.StatusOK, &dr)
	if !dr.Changed || dr.Epoch != 1 || dr.Added != 2 || dr.PoolsRepaired != 1 {
		t.Fatalf("delta over HTTP = %+v", dr)
	}
	getJSON(t, ts.URL+"/v1/graphs/tiny", http.StatusOK, &info)
	if info.Epoch != 1 || info.Edges != 6 {
		t.Fatalf("graph info after delta = %+v", info)
	}

	// Strict mode rejects a self-loop; silent mode drops and reports it.
	checkError(t, "POST", ts.URL+"/v1/graphs/tiny/edges", `{"add":[[1,1]],"strict":true}`,
		http.StatusBadRequest, "invalid_delta")
	postJSON(t, ts.URL+"/v1/graphs/tiny/edges", `{"add":[[1,1]]}`, http.StatusOK, &dr)
	if dr.Changed || dr.DroppedSelfLoops != 1 || dr.Epoch != 1 {
		t.Fatalf("silent self-loop delta = %+v", dr)
	}
	// A delta from a .imdelta file.
	dpath := filepath.Join(t.TempDir(), "d.imdelta")
	if err := ingest.WriteDeltaFile(dpath, graph.Delta{Add: []graph.Edge{{Src: 0, Dst: 3}}, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	postJSON(t, ts.URL+"/v1/graphs/tiny/edges", `{"file":`+quoteJSON(dpath)+`}`, http.StatusOK, &dr)
	if !dr.Changed || dr.Epoch != 2 || dr.Nodes != 4 {
		t.Fatalf("file delta = %+v", dr)
	}
	checkError(t, "POST", ts.URL+"/v1/graphs/tiny/edges", `{"file":"no/such.imdelta"}`,
		http.StatusBadRequest, "invalid_delta")
	checkError(t, "POST", ts.URL+"/v1/graphs/nope/edges", `{"add":[[0,1]]}`,
		http.StatusNotFound, "unknown_graph")

	// DELETE evicts the graph's pools and unregisters the name.
	var del RemoveGraphResponse
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/tiny", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&del); err != nil {
		t.Fatal(err)
	}
	if del.Graph.Name != "tiny" || del.PoolsEvicted != 1 {
		t.Fatalf("DELETE /v1/graphs/tiny = %+v", del)
	}
	checkError(t, "GET", ts.URL+"/v1/graphs/tiny", "", http.StatusNotFound, "unknown_graph")
}

// TestLegacyDeprecationHeaders pins the deprecation contract on the
// unversioned aliases: RFC 9745 Deprecation plus the successor pointer
// on every legacy hit, neither on /v1, and the legacy_requests counter.
func TestLegacyDeprecationHeaders(t *testing.T) {
	s, ts := testHTTP(t)

	resp, err := http.Get(ts.URL + "/graphs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("Deprecation"); got != LegacyDeprecation {
		t.Fatalf("legacy Deprecation header = %q, want %q", got, LegacyDeprecation)
	}
	if got := resp.Header.Get("Successor-Version"); got != "/v1/graphs" {
		t.Fatalf("legacy Successor-Version header = %q, want /v1/graphs", got)
	}
	// Regression for the header typo: the misspelled "Sucessor-Version"
	// form shipped for exactly one migration release and must now be gone.
	if got := resp.Header.Get("Sucessor-Version"); got != "" {
		t.Fatalf("misspelled compat header still emitted: %q", got)
	}

	resp, err = http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "" ||
		resp.Header.Get("Successor-Version") != "" || resp.Header.Get("Sucessor-Version") != "" {
		t.Fatal("/v1 endpoints must not carry deprecation headers")
	}

	getJSON(t, ts.URL+"/query?graph=g&k=5&eps=0.5&seed=1", http.StatusOK, nil)
	getJSON(t, ts.URL+"/v1/query?graph=g&k=5&eps=0.5&seed=1", http.StatusOK, nil)
	if st := s.Stats(); st.LegacyRequests != 2 {
		t.Fatalf("legacy_requests = %d, want 2 (one /graphs, one /query)", st.LegacyRequests)
	}
}

func isUnknownGraph(err error) bool {
	return err != nil && errors.Is(err, ErrUnknownGraph)
}

// checkError performs a request expecting the JSON error envelope.
func checkError(t *testing.T, method, url, body string, wantCode int, wantErrCode string) {
	t.Helper()
	var rd *http.Request
	var err error
	if body != "" {
		rd, err = http.NewRequest(method, url, strings.NewReader(body))
	} else {
		rd, err = http.NewRequest(method, url, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		rd.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(rd)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("%s %s: decode envelope: %v", method, url, err)
	}
	if resp.StatusCode != wantCode || env.Error.Code != wantErrCode {
		t.Fatalf("%s %s: status %d code %q, want %d %q", method, url, resp.StatusCode, env.Error.Code, wantCode, wantErrCode)
	}
}

func quoteJSON(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// TestLifecycleEndpointsAreV1Only pins that the new lifecycle routes do
// not exist on the unversioned surface.
func TestLifecycleEndpointsAreV1Only(t *testing.T) {
	_, ts := testHTTP(t)
	resp, err := http.Post(ts.URL+"/graphs", "application/json", strings.NewReader(`{"name":"x","model":"IC","edges":[[0,1]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusCreated {
		t.Fatal("POST /graphs must not register graphs; lifecycle is /v1-only")
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/graphs/g", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("DELETE /graphs/{name} must not exist; lifecycle is /v1-only")
	}
}
