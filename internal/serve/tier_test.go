package serve

// Two-tier (RAM + disk) pool LRU tests. The recurring correctness bar:
// a pool answered from the disk tier — demoted and promoted back, or
// rehydrated after a restart — must answer byte-identically to the
// resident pool it was frozen from AND to a cold imm.Run on the same
// graph epoch. Staleness (delta-advanced epoch, different graph
// content) must fall back to cold regeneration, never a wrong answer.

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestPoolFileNameRoundTrip(t *testing.T) {
	keys := []poolKey{
		{graph: "g", seed: 1},
		{graph: "web-Google", seed: 42},         // dash in the name
		{graph: "a-b-c-9", seed: 7},             // dashes and a trailing digit
		{graph: "social/us-east", seed: 123456}, // path separator
		{graph: "100", seed: 0},                 // all-digit name
		{graph: "snap 2024 (v2)", seed: 9},      // spaces and parens
		{graph: strings.Repeat("x", 100), seed: 1},
	}
	for _, key := range keys {
		name := poolFileName(key)
		if strings.ContainsRune(name, os.PathSeparator) {
			t.Fatalf("file name %q for %+v contains a path separator", name, key)
		}
		got, ok := parsePoolFileName(name)
		if !ok || got != key {
			t.Fatalf("round trip %+v -> %q -> %+v (ok=%v)", key, name, got, ok)
		}
	}
	for _, bad := range []string{
		"",                 // empty
		"g-1",              // wrong extension
		"g-1.imsnap",       // snapshot, not pool
		"g.impool",         // no seed
		"-1.impool",        // empty graph
		"g-x.impool",       // non-numeric seed
		"g-1.impool.tmp42", // leftover temp file
	} {
		if key, ok := parsePoolFileName(bad); ok {
			t.Fatalf("parsePoolFileName(%q) accepted as %+v", bad, key)
		}
	}
}

// tierProbe measures one pool's resident footprint so tier tests can
// size budgets that force demotion deterministically.
func tierProbe(t *testing.T, g *graph.Graph) int64 {
	t.Helper()
	probe := testServer(t, Options{Workers: 2, MaxTheta: 4000}, map[string]*graph.Graph{"g": g})
	res, err := probe.Query(QueryRequest{Graph: "g", K: 8, Epsilon: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.PoolBytes == 0 {
		t.Fatal("probe pool has no resident bytes")
	}
	return res.PoolBytes
}

// TestDemotedPoolAnswersIdentically pins the tentpole contract: under
// byte pressure with a pool directory, cold pools demote to .impool
// snapshots instead of being dropped, and the next query on a demoted
// pool promotes it back via mmap — warm, zero generated sets, and
// byte-identical to both the original answer and a cold run.
func TestDemotedPoolAnswersIdentically(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	onePool := tierProbe(t, g)
	dir := t.TempDir()
	opt := Options{Workers: 2, MaxTheta: 4000, PoolBudgetBytes: 2*onePool + onePool/2, PoolDir: dir}
	s := testServer(t, opt, map[string]*graph.Graph{"g": g})

	var first []*QueryResult
	for _, seed := range []uint64{1, 2, 3} {
		r, err := s.Query(QueryRequest{Graph: "g", K: 8, Epsilon: 0.5, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		first = append(first, r)
	}
	st := s.Stats()
	if st.Demotions == 0 {
		t.Fatalf("no demotions under byte pressure with a pool dir: %+v", st)
	}
	if st.Evictions != 0 {
		t.Fatalf("tiered mode evicted instead of demoting: %+v", st)
	}
	if st.DiskPools == 0 || st.DiskBytes == 0 {
		t.Fatalf("demotion left no disk-tier accounting: %+v", st)
	}
	if st.PoolBytes > st.BudgetBytes {
		t.Fatalf("resident %d bytes exceeds budget %d after demotion", st.PoolBytes, st.BudgetBytes)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("pool dir after demotion: entries=%d err=%v", len(ents), err)
	}

	// Seed 1 was demoted (least recently used). The repeat must be a
	// warm promotion: no resampling at all.
	r, err := s.Query(QueryRequest{Graph: "g", K: 8, Epsilon: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Warm || r.GeneratedSets != 0 {
		t.Fatalf("promoted pool did not answer warm: warm=%v generated=%d", r.Warm, r.GeneratedSets)
	}
	if !reflect.DeepEqual(r.Seeds, first[0].Seeds) || r.Theta != first[0].Theta {
		t.Fatalf("promoted answer diverged: %v/θ=%d vs %v/θ=%d", r.Seeds, r.Theta, first[0].Seeds, first[0].Theta)
	}
	cold := coldRun(t, g, opt, QueryRequest{Graph: "g", K: 8, Epsilon: 0.5, Seed: 1})
	if !reflect.DeepEqual(r.Seeds, cold.Seeds) {
		t.Fatalf("promoted seeds %v != cold %v", r.Seeds, cold.Seeds)
	}
	if st = s.Stats(); st.Promotions == 0 {
		t.Fatalf("warm answer without a recorded promotion: %+v", st)
	}
}

// TestTwoTierSecondTenantPressure extends the PR 5 self-eviction
// regression family to tiered mode: a pool whose footprint alone
// exceeds the budget is never demoted by its own query, LRU pressure
// from a second tenant demotes (not evicts) it, and the comeback query
// is a promotion rather than a cold rebuild.
func TestTwoTierSecondTenantPressure(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	s := testServer(t, Options{Workers: 2, MaxTheta: 4000, PoolBudgetBytes: 1, PoolDir: t.TempDir()},
		map[string]*graph.Graph{"g": g})
	req := QueryRequest{Graph: "g", K: 8, Epsilon: 0.5, Seed: 1}

	first, err := s.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Warm || second.GeneratedSets != 0 {
		t.Fatalf("repeat on the over-budget pool went cold (self-demotion): %+v", second)
	}
	if st := s.Stats(); st.Demotions != 0 || st.Evictions != 0 {
		t.Fatalf("resident pool demoted with no competitor: %+v", st)
	}

	// The second tenant makes seed 1 the LRU victim: demoted, not evicted.
	if _, err := s.Query(QueryRequest{Graph: "g", K: 8, Epsilon: 0.5, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Demotions != 1 || st.Evictions != 0 {
		t.Fatalf("second tenant pressure: want 1 demotion 0 evictions, got %+v", st)
	}
	if st.Pools != 2 {
		t.Fatalf("demotion dropped the entry: %+v", st)
	}

	third, err := s.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	if !third.Warm || third.GeneratedSets != 0 {
		t.Fatalf("comeback query did not promote: %+v", third)
	}
	if !reflect.DeepEqual(third.Seeds, first.Seeds) {
		t.Fatalf("promoted seeds %v != original %v", third.Seeds, first.Seeds)
	}
}

// TestSaveAndRehydrateAcrossServers pins the instant-warm restart path:
// save pools, shut the server down, boot a fresh one on the same pool
// directory, and the first query answers warm with zero generated sets
// and byte-identical seeds.
func TestSaveAndRehydrateAcrossServers(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	dir := t.TempDir()
	opt := Options{Workers: 2, MaxTheta: 4000, PoolDir: dir}
	req := QueryRequest{Graph: "g", K: 8, Epsilon: 0.5, Seed: 1}

	s1 := testServer(t, opt, map[string]*graph.Graph{"g": g})
	first, err := s1.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	saved, err := s1.SavePools("")
	if err != nil || saved != 1 {
		t.Fatalf("SavePools = %d, %v", saved, err)
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2 := testServer(t, opt, map[string]*graph.Graph{"g": g})
	loaded, err := s2.LoadPools()
	if err != nil || loaded != 1 {
		t.Fatalf("LoadPools = %d, %v", loaded, err)
	}
	st := s2.Stats()
	if st.Rehydrated != 1 || st.DiskPools != 1 || st.PoolBytes != 0 {
		t.Fatalf("rehydrated entry accounting: %+v", st)
	}
	r, err := s2.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Warm || r.GeneratedSets != 0 {
		t.Fatalf("first post-restart query not instant-warm: warm=%v generated=%d", r.Warm, r.GeneratedSets)
	}
	if !reflect.DeepEqual(r.Seeds, first.Seeds) || r.Theta != first.Theta {
		t.Fatalf("restart answer diverged: %v/θ=%d vs %v/θ=%d", r.Seeds, r.Theta, first.Seeds, first.Theta)
	}
	cold := coldRun(t, g, opt, req)
	if !reflect.DeepEqual(r.Seeds, cold.Seeds) {
		t.Fatalf("restart seeds %v != cold %v", r.Seeds, cold.Seeds)
	}
}

// TestDemotedPoolSurvivesShutdownReload is the demote-then-restart
// variant: the snapshot written by budget-pressure demotion (not an
// explicit save) must rehydrate and answer warm in the next process.
func TestDemotedPoolSurvivesShutdownReload(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	onePool := tierProbe(t, g)
	dir := t.TempDir()
	opt := Options{Workers: 2, MaxTheta: 4000, PoolBudgetBytes: 2*onePool + onePool/2, PoolDir: dir}

	s1 := testServer(t, opt, map[string]*graph.Graph{"g": g})
	var first []*QueryResult
	for _, seed := range []uint64{1, 2, 3} {
		r, err := s1.Query(QueryRequest{Graph: "g", K: 8, Epsilon: 0.5, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		first = append(first, r)
	}
	if st := s1.Stats(); st.Demotions == 0 {
		t.Fatalf("setup did not demote: %+v", st)
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2 := testServer(t, opt, map[string]*graph.Graph{"g": g})
	loaded, err := s2.LoadPools()
	if err != nil || loaded == 0 {
		t.Fatalf("LoadPools after demotion = %d, %v", loaded, err)
	}
	r, err := s2.Query(QueryRequest{Graph: "g", K: 8, Epsilon: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Warm || r.GeneratedSets != 0 {
		t.Fatalf("demoted snapshot did not survive restart warm: %+v", r)
	}
	if !reflect.DeepEqual(r.Seeds, first[0].Seeds) {
		t.Fatalf("post-reload seeds %v != original %v", r.Seeds, first[0].Seeds)
	}
}

// TestStaleSnapshotRejected pins the two staleness paths: a delta
// advancing the graph epoch drops this graph's disk snapshots (repair
// cannot fix a file), and a snapshot binding different graph content is
// rejected at promotion — both fall back to a cold build with correct
// post-change answers, never a stale one.
func TestStaleSnapshotRejected(t *testing.T) {
	t.Run("delta-advanced epoch", func(t *testing.T) {
		g := testGraph(t, 8, graph.IC)
		dir := t.TempDir()
		opt := Options{Workers: 2, MaxTheta: 4000, PoolDir: dir}
		s := testServer(t, opt, map[string]*graph.Graph{"g": g})
		req := QueryRequest{Graph: "g", K: 8, Epsilon: 0.5, Seed: 1}
		if _, err := s.Query(req); err != nil {
			t.Fatal(err)
		}
		if saved, err := s.SavePools(""); err != nil || saved != 1 {
			t.Fatalf("SavePools = %d, %v", saved, err)
		}

		d := graph.Delta{Add: freshEdges(g, 8), Seed: 5}
		res, err := s.ApplyDelta("g", d, graph.DeltaOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Epoch != 1 {
			t.Fatalf("delta epoch = %d, want 1", res.Epoch)
		}
		// The repair pass must have discarded the epoch-0 snapshot: the
		// disk tier never answers for dead epochs, even across a crash.
		if st := s.Stats(); st.DiskPools != 0 {
			t.Fatalf("stale snapshot still registered after delta: %+v", st)
		}
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 0 {
			t.Fatalf("stale snapshot file survived the delta: %v", ents)
		}

		// The repaired pool still answers identically to a cold run on
		// the post-delta graph.
		ng, _, err := graph.ApplyDelta(g, d, graph.DeltaOptions{})
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Query(req)
		if err != nil {
			t.Fatal(err)
		}
		cold := coldRun(t, ng, opt, req)
		if !reflect.DeepEqual(r.Seeds, cold.Seeds) {
			t.Fatalf("post-delta seeds %v != cold %v", r.Seeds, cold.Seeds)
		}
	})

	t.Run("different graph content", func(t *testing.T) {
		gA := testGraph(t, 8, graph.IC)
		// Same shape, different RMAT seed: different edges and weights,
		// so the snapshot's content checksum cannot match.
		gB, err := gen.RMAT(gen.DefaultRMAT(8, 6), graph.IC, 77)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		opt := Options{Workers: 2, MaxTheta: 4000, PoolDir: dir}
		req := QueryRequest{Graph: "g", K: 8, Epsilon: 0.5, Seed: 1}

		s1 := testServer(t, opt, map[string]*graph.Graph{"g": gA})
		if _, err := s1.Query(req); err != nil {
			t.Fatal(err)
		}
		if saved, err := s1.SavePools(""); err != nil || saved != 1 {
			t.Fatalf("SavePools = %d, %v", saved, err)
		}
		if err := s1.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}

		// Same graph name, different content: the snapshot's checksum
		// binding no longer matches, so promotion must reject it and the
		// query must build cold against the graph actually registered.
		s2 := testServer(t, opt, map[string]*graph.Graph{"g": gB})
		if loaded, err := s2.LoadPools(); err != nil || loaded != 1 {
			t.Fatalf("LoadPools = %d, %v", loaded, err)
		}
		r, err := s2.Query(req)
		if err != nil {
			t.Fatal(err)
		}
		if r.Warm {
			t.Fatal("stale snapshot served a warm answer for different graph content")
		}
		cold := coldRun(t, gB, opt, req)
		if !reflect.DeepEqual(r.Seeds, cold.Seeds) {
			t.Fatalf("seeds %v != cold %v on the actual graph", r.Seeds, cold.Seeds)
		}
		st := s2.Stats()
		if st.PromoteFailures == 0 {
			t.Fatalf("stale rejection not counted: %+v", st)
		}
		if st.DiskPools != 0 {
			t.Fatalf("rejected snapshot still registered: %+v", st)
		}
	})
}

// TestConcurrentDemotePromoteRace runs concurrent queries over more
// pools than the budget holds, so demotion, promotion, and cold builds
// race on the same entries (exercised under -race). Every answer for a
// seed must be identical, however its pool was served.
func TestConcurrentDemotePromoteRace(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	onePool := tierProbe(t, g)
	s := testServer(t,
		Options{Workers: 2, MaxTheta: 4000, PoolBudgetBytes: onePool + onePool/2, PoolDir: t.TempDir()},
		map[string]*graph.Graph{"g": g})

	seeds := []uint64{1, 2, 3}
	const rounds = 4
	results := make([][]*QueryResult, rounds)
	var wg sync.WaitGroup
	for round := 0; round < rounds; round++ {
		results[round] = make([]*QueryResult, len(seeds))
		for i, seed := range seeds {
			wg.Add(1)
			go func(round, i int, seed uint64) {
				defer wg.Done()
				r, err := s.Query(QueryRequest{Graph: "g", K: 8, Epsilon: 0.5, Seed: seed})
				if err != nil {
					t.Error(err)
					return
				}
				results[round][i] = r
			}(round, i, seed)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i, seed := range seeds {
		want := results[0][i].Seeds
		for round := 1; round < rounds; round++ {
			if !reflect.DeepEqual(results[round][i].Seeds, want) {
				t.Fatalf("seed %d round %d: %v != %v", seed, round, results[round][i].Seeds, want)
			}
		}
		cold := coldRun(t, g, Options{Workers: 2, MaxTheta: 4000},
			QueryRequest{Graph: "g", K: 8, Epsilon: 0.5, Seed: seed})
		if !reflect.DeepEqual(want, cold.Seeds) {
			t.Fatalf("seed %d: served %v != cold %v", seed, want, cold.Seeds)
		}
	}
	if st := s.Stats(); st.PoolBytes > st.BudgetBytes+onePool {
		// Transient overshoot of one in-flight pool is legal (pinned
		// entries are never victims); unbounded growth is not.
		t.Fatalf("budget lost under racing demotion: %+v", st)
	}
}

// TestRemoveGraphDropsSnapshots pins disk-tier cleanup: unregistering a
// graph removes its .impool files along with the pool entries.
func TestRemoveGraphDropsSnapshots(t *testing.T) {
	g := testGraph(t, 8, graph.IC)
	dir := t.TempDir()
	s := testServer(t, Options{Workers: 2, MaxTheta: 4000, PoolDir: dir},
		map[string]*graph.Graph{"g": g})
	if _, err := s.Query(QueryRequest{Graph: "g", K: 8, Epsilon: 0.5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if saved, err := s.SavePools(""); err != nil || saved != 1 {
		t.Fatalf("SavePools = %d, %v", saved, err)
	}
	if _, _, err := s.RemoveGraph("g"); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("snapshots survived graph removal: %v", ents)
	}
}

// TestPoolsSaveEndpoint covers POST /v1/pools/save: explicit directory,
// the no-directory error, and that a saved snapshot is a real .impool
// file named for its pool key.
func TestPoolsSaveEndpoint(t *testing.T) {
	_, ts := testHTTP(t) // no PoolDir configured

	getJSON(t, ts.URL+"/v1/query?graph=g&k=8&eps=0.5&seed=1", http.StatusOK, nil)

	// No configured dir and none given: invalid_query envelope.
	postJSON(t, ts.URL+"/v1/pools/save", `{}`, http.StatusBadRequest, nil)

	dir := t.TempDir()
	dirJSON, err := json.Marshal(dir)
	if err != nil {
		t.Fatal(err)
	}
	var save PoolsSaveResponse
	postJSON(t, ts.URL+"/v1/pools/save", `{"dir":`+string(dirJSON)+`}`, http.StatusOK, &save)
	if save.Saved != 1 || save.Dir != dir {
		t.Fatalf("pools/save = %+v", save)
	}
	path := filepath.Join(dir, poolFileName(poolKey{graph: "g", seed: 1}))
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("saved snapshot missing: %v", err)
	}

	// Unknown body fields are rejected like every other endpoint.
	postJSON(t, ts.URL+"/v1/pools/save", `{"dirr":"x"}`, http.StatusBadRequest, nil)
}
