// Package stats provides the combinatorial and statistical helpers used
// by the IMM martingale bounds and by the benchmark harness: LogCNK
// (log-gamma-stable ln C(n,k), the binomial term in λ' and λ*) and
// small descriptive summaries (mean, max, percentiles) for the Table I
// coverage characterization. Everything here is pure and deterministic;
// no function holds state or consumes randomness, which is what lets
// every engine and front-end share the same θ arithmetic bit for bit.
package stats

import (
	"math"
	"sort"
)

// LogCNK returns ln(C(n, k)), the natural log of the binomial
// coefficient, computed with log-gamma so it is stable for the graph
// sizes IMM sees (n up to tens of millions). It returns 0 for k <= 0 or
// k >= n, matching the convention used by the Ripples code base.
func LogCNK(n, k int64) float64 {
	if k <= 0 || k >= n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return lg - lk - lnk
}

// Summary accumulates count/mean/variance online using Welford's
// algorithm and tracks min and max. The zero value is ready to use.
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds x into the summary.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of samples.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean, or 0 with no samples.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest sample, or 0 with no samples.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample, or 0 with no samples.
func (s *Summary) Max() float64 { return s.max }

// Var returns the unbiased sample variance, or 0 for fewer than two
// samples.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Var()) }

// Merge folds another summary into s, as if all its samples had been
// added directly (Chan et al. parallel variance combination).
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	n := s.n + o.n
	d := o.mean - s.mean
	s.m2 += o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	s.mean += d * float64(o.n) / float64(n)
	s.n = n
}

// Percentile returns the p'th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. xs is sorted in place.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	if p <= 0 {
		return xs[0]
	}
	if p >= 100 {
		return xs[len(xs)-1]
	}
	rank := p / 100 * float64(len(xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return xs[lo]
	}
	frac := rank - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// GeometricMean returns the geometric mean of positive values; zero or
// negative entries are skipped. The harness uses it to aggregate speedups
// the way the paper reports "average 5.9x over 8 datasets".
func GeometricMean(xs []float64) float64 {
	var logSum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// HarmonicMean returns the harmonic mean of positive values; zero or
// negative entries are skipped.
func HarmonicMean(xs []float64) float64 {
	var invSum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			invSum += 1 / x
			n++
		}
	}
	if invSum == 0 {
		return 0
	}
	return float64(n) / invSum
}
