package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLogCNKSmallValues(t *testing.T) {
	cases := []struct {
		n, k int64
		want float64
	}{
		{5, 2, math.Log(10)},
		{10, 3, math.Log(120)},
		{52, 5, math.Log(2598960)},
		{100, 50, 66.78384165201749},
	}
	for _, c := range cases {
		got := LogCNK(c.n, c.k)
		if !almostEq(got, c.want, 1e-6*math.Max(1, math.Abs(c.want))) {
			t.Errorf("LogCNK(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestLogCNKEdges(t *testing.T) {
	for _, c := range [][2]int64{{10, 0}, {10, 10}, {10, -1}, {10, 11}, {0, 0}} {
		if got := LogCNK(c[0], c[1]); got != 0 {
			t.Errorf("LogCNK(%d,%d) = %v, want 0", c[0], c[1], got)
		}
	}
}

func TestLogCNKSymmetry(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int64(nRaw%200) + 2
		k := int64(kRaw) % n
		return almostEq(LogCNK(n, k), LogCNK(n, n-k), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogCNKPascal(t *testing.T) {
	// C(n,k) = C(n-1,k-1) + C(n-1,k) in log space.
	for n := int64(3); n < 60; n++ {
		for k := int64(1); k < n; k++ {
			lhs := math.Exp(LogCNK(n, k))
			rhs := math.Exp(LogCNK(n-1, k-1)) + math.Exp(LogCNK(n-1, k))
			if !almostEq(lhs, rhs, 1e-6*rhs) {
				t.Fatalf("Pascal identity fails at n=%d k=%d: %v vs %v", n, k, lhs, rhs)
			}
		}
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if !almostEq(s.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v", s.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if !almostEq(s.Var(), 32.0/7.0, 1e-12) {
		t.Fatalf("Var = %v", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.N() != 0 {
		t.Fatal("zero-value summary not neutral")
	}
	s.Add(3)
	if s.Var() != 0 || s.Mean() != 3 || s.Min() != 3 || s.Max() != 3 {
		t.Fatal("single-sample summary wrong")
	}
}

func TestSummaryMergeEquivalence(t *testing.T) {
	f := func(a, b []float64) bool {
		var all, left, right Summary
		for _, x := range a {
			if math.IsNaN(x) || math.Abs(x) > 1e100 {
				return true // avoid overflow in the m2 cross term
			}
			all.Add(x)
			left.Add(x)
		}
		for _, x := range b {
			if math.IsNaN(x) || math.Abs(x) > 1e100 {
				return true
			}
			all.Add(x)
			right.Add(x)
		}
		left.Merge(&right)
		if left.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(all.Mean()))
		return almostEq(left.Mean(), all.Mean(), 1e-6*scale) &&
			almostEq(left.Var(), all.Var(), 1e-4*math.Max(1, all.Var())) &&
			left.Min() == all.Min() && left.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	if got := Percentile(append([]float64(nil), xs...), 0); got != 15 {
		t.Fatalf("P0 = %v", got)
	}
	if got := Percentile(append([]float64(nil), xs...), 100); got != 50 {
		t.Fatalf("P100 = %v", got)
	}
	if got := Percentile(append([]float64(nil), xs...), 50); got != 35 {
		t.Fatalf("P50 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	// 25th percentile of 5 sorted values interpolates between ranks 1 and 2.
	if got := Percentile(append([]float64(nil), xs...), 25); !almostEq(got, 20, 1e-12) {
		t.Fatalf("P25 = %v", got)
	}
}

func TestGeometricMean(t *testing.T) {
	if got := GeometricMean([]float64{1, 4}); !almostEq(got, 2, 1e-12) {
		t.Fatalf("gm = %v", got)
	}
	if got := GeometricMean([]float64{2, 0, 8, -3}); !almostEq(got, 4, 1e-12) {
		t.Fatalf("gm with skips = %v", got)
	}
	if got := GeometricMean(nil); got != 0 {
		t.Fatalf("gm empty = %v", got)
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{1, 2, 4}); !almostEq(got, 3.0/1.75, 1e-12) {
		t.Fatalf("hm = %v", got)
	}
	if got := HarmonicMean(nil); got != 0 {
		t.Fatalf("hm empty = %v", got)
	}
}
