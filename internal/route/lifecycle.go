package route

// Graph lifecycle at the router. Queries shard by pool key, but
// lifecycle writes broadcast to the whole fleet: the ring can hand any
// (graph, seed) key to any node, so every node must hold every graph.
// Broadcasting keeps the fleet convergent without the router owning
// any state — registration tolerates per-node graph_exists replies
// (so a retry after a partial failure converges), deletion tolerates
// per-node unknown_graph replies, and a delta that lands on only part
// of the fleet is reported as partial_update so the caller knows to
// re-apply or re-register.
//
// Reads are epoch-aware: GET /v1/graphs/{name} fans out and answers
// with the highest epoch any node reports, and the /v1/graphs union
// keeps the max-epoch entry per name, so a node that lags on deltas
// can never mask the fleet's progress.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"

	"repro/internal/serve"
)

// nodeReply is one node's captured answer to a broadcast.
type nodeReply struct {
	status     int
	retryAfter string
	body       []byte
}

// broadcast sends method+path+body to every node concurrently.
func (rt *Router) broadcast(method, path string, body []byte) []nodeReply {
	out := make([]nodeReply, len(rt.nodes))
	var wg sync.WaitGroup
	for i := range rt.nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, retryAfter, b := rt.forwardPath(i, method, path, body)
			out[i] = nodeReply{status: status, retryAfter: retryAfter, body: b}
		}(i)
	}
	wg.Wait()
	return out
}

// writeReply passes one node's reply through verbatim.
func writeReply(w http.ResponseWriter, rep nodeReply) {
	if rep.retryAfter != "" {
		w.Header().Set("Retry-After", rep.retryAfter)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(rep.status)
	w.Write(rep.body)
}

func graphPath(name string) string { return "/v1/graphs/" + url.PathEscape(name) }

// handleGraphsV1 unions the fleet's registries in the /v1 shape.
func (rt *Router) handleGraphsV1(w http.ResponseWriter, r *http.Request) {
	replies := rt.fanOut("/v1/graphs", func(node, status int, body []byte) any {
		if status != http.StatusOK {
			return fmt.Errorf("node %s: HTTP %d", rt.nodes[node], status)
		}
		var gr serve.GraphsResponse
		if err := json.Unmarshal(body, &gr); err != nil {
			return err
		}
		return gr.Graphs
	})
	out, reached := unionGraphs(replies)
	if reached == 0 {
		serve.WriteErrorEnvelope(w, http.StatusServiceUnavailable, "node_unavailable", "no node is reachable")
		return
	}
	writeJSON(w, http.StatusOK, serve.GraphsResponse{Graphs: out})
}

// handleGraphRegister broadcasts a registration. Nodes that already
// hold the name answer graph_exists and count as registered — a retry
// after a node failure converges instead of failing forever — so the
// call succeeds when every node holds the graph and at least one
// registered it now; it is a conflict only when no node was missing it.
func (rt *Router) handleGraphRegister(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		return
	}
	replies := rt.broadcast(http.MethodPost, "/v1/graphs", body)
	var created *serve.GraphInfo
	fail := -1
	for i, rep := range replies {
		switch rep.status {
		case http.StatusCreated:
			if created == nil {
				var info serve.GraphInfo
				if json.Unmarshal(rep.body, &info) == nil {
					created = &info
				}
			}
		case http.StatusConflict:
			// Already registered on this node; convergent.
		default:
			if fail < 0 {
				fail = i
			}
		}
	}
	switch {
	case fail >= 0:
		writeReply(w, replies[fail])
	case created != nil:
		writeJSON(w, http.StatusCreated, created)
	default:
		writeReply(w, replies[0]) // every node: graph_exists
	}
}

// handleGraphGet answers with the highest epoch any node reports.
func (rt *Router) handleGraphGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	replies := rt.fanOut(graphPath(name), func(node, status int, body []byte) any {
		if status != http.StatusOK {
			return nil
		}
		var info serve.GraphInfo
		if err := json.Unmarshal(body, &info); err != nil {
			return nil
		}
		return info
	})
	var best *serve.GraphInfo
	for i := range replies {
		if info, ok := replies[i].(serve.GraphInfo); ok && (best == nil || info.Epoch > best.Epoch) {
			best = &info
		}
	}
	if best == nil {
		serve.WriteErrorEnvelope(w, http.StatusNotFound, "unknown_graph",
			fmt.Sprintf("unknown graph %q on every node", name))
		return
	}
	writeJSON(w, http.StatusOK, best)
}

// handleGraphDelete broadcasts a deletion, summing evicted pools;
// nodes that never held the graph answer unknown_graph and are
// tolerated. Only when every node answers unknown_graph is the graph
// truly unknown.
func (rt *Router) handleGraphDelete(w http.ResponseWriter, r *http.Request) {
	replies := rt.broadcast(http.MethodDelete, graphPath(r.PathValue("name")), nil)
	var merged *serve.RemoveGraphResponse
	fail := -1
	for i, rep := range replies {
		switch rep.status {
		case http.StatusOK:
			var res serve.RemoveGraphResponse
			if json.Unmarshal(rep.body, &res) != nil {
				continue
			}
			if merged == nil {
				merged = &res
			} else {
				merged.PoolsEvicted += res.PoolsEvicted
			}
		case http.StatusNotFound:
			// This node never held it; convergent.
		default:
			if fail < 0 {
				fail = i
			}
		}
	}
	switch {
	case fail >= 0:
		writeReply(w, replies[fail])
	case merged != nil:
		writeJSON(w, http.StatusOK, merged)
	default:
		writeReply(w, replies[0]) // every node: unknown_graph
	}
}

// handleGraphEdges broadcasts a delta. Every node applies the same
// deterministic delta, so the per-graph fields of the merged result
// agree across replies; the repair counters sum over the fleet's
// pools. A delta that reaches only part of the fleet leaves nodes on
// different epochs — that is surfaced as partial_update (the caller
// re-applies, or re-registers the graph to reconverge) rather than
// silently reporting success.
func (rt *Router) handleGraphEdges(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		return
	}
	name := r.PathValue("name")
	replies := rt.broadcast(http.MethodPost, graphPath(name)+"/edges", body)
	var merged *serve.DeltaResult
	applied, fail := 0, -1
	for i, rep := range replies {
		switch rep.status {
		case http.StatusOK:
			var res serve.DeltaResult
			if json.Unmarshal(rep.body, &res) != nil {
				continue
			}
			applied++
			if merged == nil {
				merged = &res
			} else {
				merged.PoolsRepaired += res.PoolsRepaired
				merged.SetsResampled += res.SetsResampled
				merged.FullResamples += res.FullResamples
			}
		case http.StatusNotFound:
			// This node does not hold the graph; it has no pools for it
			// either, so skipping it loses nothing.
		default:
			if fail < 0 {
				fail = i
			}
		}
	}
	switch {
	case fail >= 0 && applied > 0:
		code, msg := unwrapEnvelope(replies[fail].body, replies[fail].status)
		serve.WriteErrorEnvelope(w, http.StatusBadGateway, "partial_update",
			fmt.Sprintf("delta applied on %d/%d nodes; node %s failed with %s: %s — re-apply to reconverge",
				applied, len(rt.nodes), rt.nodes[fail], code, msg))
	case fail >= 0:
		writeReply(w, replies[fail])
	case merged != nil:
		writeJSON(w, http.StatusOK, merged)
	default:
		writeReply(w, replies[0]) // every node: unknown_graph
	}
}

// unionGraphs merges per-node graph lists, keeping the max-epoch entry
// per name, and reports how many nodes answered.
func unionGraphs(replies []any) ([]serve.GraphInfo, int) {
	byName := make(map[string]serve.GraphInfo)
	reached := 0
	for _, rep := range replies {
		graphs, ok := rep.([]serve.GraphInfo)
		if !ok {
			continue
		}
		reached++
		for _, g := range graphs {
			if cur, ok := byName[g.Name]; !ok || g.Epoch > cur.Epoch {
				byName[g.Name] = g
			}
		}
	}
	out := make([]serve.GraphInfo, 0, len(byName))
	for _, g := range byName {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, reached
}

// findHolder polls the fleet for a node that holds graph, preferring
// the highest epoch; skip (the ring owner that just answered
// unknown_graph) is excluded. This is the recovery path for graphs
// registered after boot directly on some nodes rather than through the
// router's broadcast.
func (rt *Router) findHolder(graph string, skip int) (int, bool) {
	replies := rt.fanOut(graphPath(graph), func(node, status int, body []byte) any {
		if status != http.StatusOK {
			return nil
		}
		var info serve.GraphInfo
		if err := json.Unmarshal(body, &info); err != nil {
			return nil
		}
		return info
	})
	best, bestEpoch := -1, int64(-1)
	for i := range replies {
		if i == skip {
			continue
		}
		if info, ok := replies[i].(serve.GraphInfo); ok && (best < 0 || info.Epoch > bestEpoch) {
			best, bestEpoch = i, info.Epoch
		}
	}
	return best, best >= 0
}

// readBody drains the request body, writing the invalid_query envelope
// on failure.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		serve.WriteErrorEnvelope(w, http.StatusBadRequest, "invalid_query", "unreadable request body")
		return nil, err
	}
	return body, nil
}
