package route

import (
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/serve"
)

// TestFleetGraphListingStableOrder pins the fleet-aggregation contract
// the imlint determinism pass guards: unionGraphs merges per-node graph
// lists through a map, but the router's /v1/graphs answer comes out
// sorted by name — identically on every call, whichever node answers
// first — with the max-epoch entry winning per name.
func TestFleetGraphListingStableOrder(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(6, 6), graph.IC, 42)
	if err != nil {
		t.Fatal(err)
	}

	// Three nodes holding overlapping, unsorted graph subsets.
	sets := [][]string{
		{"zeta", "mm"},
		{"alpha", "mm"},
		{"kappa", "beta", "alpha"},
	}
	urls := make([]string, len(sets))
	for i, names := range sets {
		s := serve.NewServer(serve.Options{Workers: 1, MaxTheta: 2000})
		for _, name := range names {
			if _, err := s.AddGraph(name, g, 42); err != nil {
				t.Fatal(err)
			}
		}
		b := httptest.NewServer(s.Handler())
		t.Cleanup(b.Close)
		urls[i] = b.URL
	}
	rt, err := New(Options{Nodes: urls, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	want := []string{"alpha", "beta", "kappa", "mm", "zeta"}
	for i := 0; i < 5; i++ {
		var resp serve.GraphsResponse
		getJSON(t, ts.URL+"/v1/graphs", 200, &resp)
		var names []string
		for _, info := range resp.Graphs {
			names = append(names, info.Name)
		}
		if !reflect.DeepEqual(names, want) {
			t.Fatalf("fleet /v1/graphs call %d: order %v, want %v", i, names, want)
		}
	}
}

// TestFleetStatsNodeOrder pins the router's /v1/stats shape: one entry
// per node, in configured node order, every call.
func TestFleetStatsNodeOrder(t *testing.T) {
	rt, ts, _ := testFleet(t, 3)
	for i := 0; i < 3; i++ {
		var resp StatsResponse
		getJSON(t, ts.URL+"/v1/stats", 200, &resp)
		if len(resp.Nodes) != len(rt.nodes) {
			t.Fatalf("stats call %d: %d node entries, want %d", i, len(resp.Nodes), len(rt.nodes))
		}
		for j, ns := range resp.Nodes {
			if ns.Node != rt.nodes[j] {
				t.Fatalf("stats call %d: node %d is %q, want %q", i, j, ns.Node, rt.nodes[j])
			}
		}
	}
}
