package route

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/serve"
)

func postJSON(t *testing.T, url, body string, wantCode int, v any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantCode)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("POST %s: decode: %v", url, err)
		}
	}
}

// TestRouterLifecycleBroadcast pins that lifecycle writes through the
// router reach every node: a registration is visible on each backend,
// a delta advances every node's epoch (repair counters summed across
// the fleet), and a deletion removes the graph everywhere.
func TestRouterLifecycleBroadcast(t *testing.T) {
	_, ts, backends := testFleet(t, 3)

	var info serve.GraphInfo
	postJSON(t, ts.URL+"/v1/graphs",
		`{"name":"h","model":"IC","edges":[[0,1],[1,2],[2,0],[0,2]],"weight_seed":9}`,
		http.StatusCreated, &info)
	if info.Name != "h" || info.Nodes != 3 {
		t.Fatalf("router registration = %+v", info)
	}
	for i, b := range backends {
		getJSON(t, b.URL+"/v1/graphs/h", http.StatusOK, &info)
		if info.Name != "h" || info.Epoch != 0 {
			t.Fatalf("node %d after broadcast registration: %+v", i, info)
		}
	}
	// A duplicate registration conflicts on every node → 409 through.
	var e serve.ErrorResponse
	resp, err := http.Post(ts.URL+"/v1/graphs", "application/json",
		strings.NewReader(`{"name":"h","model":"IC","edges":[[0,1]]}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || e.Error.Code != "graph_exists" {
		t.Fatalf("duplicate broadcast registration: status %d code %q", resp.StatusCode, e.Error.Code)
	}

	// Warm a pool somewhere in the fleet, then stream a delta through
	// the router: every node's epoch advances.
	getJSON(t, ts.URL+"/v1/query?graph=h&k=2&eps=0.5&seed=1", http.StatusOK, nil)
	var dr serve.DeltaResult
	postJSON(t, ts.URL+"/v1/graphs/h/edges", `{"add":[[1,0],[2,1]],"seed":3}`, http.StatusOK, &dr)
	if !dr.Changed || dr.Epoch != 1 || dr.PoolsRepaired != 1 {
		t.Fatalf("router delta = %+v", dr)
	}
	for i, b := range backends {
		getJSON(t, b.URL+"/v1/graphs/h", http.StatusOK, &info)
		if info.Epoch != 1 || info.Edges != 6 {
			t.Fatalf("node %d after broadcast delta: %+v", i, info)
		}
	}
	// The router's epoch-aware GET agrees.
	getJSON(t, ts.URL+"/v1/graphs/h", http.StatusOK, &info)
	if info.Epoch != 1 {
		t.Fatalf("router GET after delta = %+v", info)
	}
	// The union keeps both graphs.
	var graphs serve.GraphsResponse
	getJSON(t, ts.URL+"/v1/graphs", http.StatusOK, &graphs)
	if len(graphs.Graphs) != 2 {
		t.Fatalf("union after registration = %+v", graphs)
	}

	// Deletion removes the graph from every node.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/h", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var del serve.RemoveGraphResponse
	if err := json.NewDecoder(resp.Body).Decode(&del); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || del.Graph.Name != "h" || del.PoolsEvicted != 1 {
		t.Fatalf("router delete: status %d %+v", resp.StatusCode, del)
	}
	for i, b := range backends {
		r2, err := http.Get(b.URL + "/v1/graphs/h")
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusNotFound {
			t.Fatalf("node %d still holds deleted graph (status %d)", i, r2.StatusCode)
		}
	}
}

// TestRouterFindsPostBootGraph pins the unknown-graph recovery path:
// a graph registered after boot directly on one backend — not through
// the router — is still routable. The ring owner answers
// unknown_graph, the router polls the fleet for a holder, and the
// query is re-forwarded there.
func TestRouterFindsPostBootGraph(t *testing.T) {
	rt, ts, backends := testFleet(t, 3)

	// Register "fresh" on a node that is NOT the ring owner for the
	// queried pool key, so the first forward must miss.
	const seed = 1
	owner := rt.Owner("fresh", seed)
	target := -1
	for i, b := range backends {
		if b.URL != owner {
			target = i
			break
		}
	}
	var info serve.GraphInfo
	postJSON(t, backends[target].URL+"/v1/graphs",
		`{"name":"fresh","model":"IC","edges":[[0,1],[1,2],[2,0]],"weight_seed":7}`,
		http.StatusCreated, &info)

	var qr serve.QueryResult
	getJSON(t, ts.URL+"/v1/query?graph=fresh&k=2&eps=0.5&seed=1", http.StatusOK, &qr)
	if len(qr.Seeds) != 2 {
		t.Fatalf("re-forwarded query = %+v", qr)
	}

	// A graph no node holds still fails with unknown_graph.
	var e serve.ErrorResponse
	getJSON(t, ts.URL+"/v1/query?graph=nowhere&k=2&eps=0.5&seed=1", http.StatusNotFound, &e)
	if e.Error.Code != "unknown_graph" {
		t.Fatalf("missing graph code = %q", e.Error.Code)
	}
}

// TestRouterLegacyDeprecation pins the deprecation headers on the
// router's own unversioned aliases.
func TestRouterLegacyDeprecation(t *testing.T) {
	_, ts, _ := testFleet(t, 1)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != serve.LegacyDeprecation ||
		resp.Header.Get("Successor-Version") != "/v1/healthz" {
		t.Fatalf("legacy router headers = %q / %q",
			resp.Header.Get("Deprecation"), resp.Header.Get("Successor-Version"))
	}
	// The misspelled "Sucessor-Version" header's one-release migration
	// window has closed; it must be gone.
	if got := resp.Header.Get("Sucessor-Version"); got != "" {
		t.Fatalf("misspelled compat header still emitted: %q", got)
	}
	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "" {
		t.Fatal("/v1 router endpoints must not carry deprecation headers")
	}
}
