// Package route is the sharding query router: a thin HTTP front-end
// that owns no pools and no graphs, only a consistent-hash ring mapping
// (graph, rngSeed) — the warm-pool key — onto a fleet of immserver
// nodes. Every query for one pool key always lands on the same node, so
// the fleet's aggregate warm-pool capacity scales with node count while
// each pool is built exactly once.
//
// Correctness leans on the serving layer's determinism contract: any
// node answers any query byte-identically (pools are pure functions of
// (graph, policy, seed)), so routing is purely a placement decision —
// the ring optimizes warmth, it can never change an answer.
//
// The router serves the same /v1 (and legacy) surface as the nodes:
// /query and /batch shard by pool key (batch members fan out to their
// owners and reassemble in order), /jobs route by pool key with the
// job id carrying a node prefix ("n2-job-7") so polls find their way
// back, /graphs unions the fleet's registries, /stats reports per-node
// counters, /healthz probes the fleet. Identical concurrent queries
// dedup single-flight at the router before any connection is opened.
//
// Failure semantics: a node that cannot be reached yields the unified
// error envelope with code "node_unavailable" (HTTP 503, Retry-After
// set) for the requests it owns — batch members inline — while
// requests owned by healthy nodes keep serving.
package route

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/serve"
)

// DefaultVirtualNodes is the per-node ring multiplicity when
// Options.VirtualNodes is zero: enough points that pool keys spread
// within a few percent of even across small fleets.
const DefaultVirtualNodes = 128

// DefaultTimeout bounds one forwarded request when Options.Timeout is
// zero. Cold pool builds on large graphs are minutes, not seconds, so
// the default is generous; the ring, not the timeout, provides load
// isolation.
const DefaultTimeout = 10 * time.Minute

// Options configures a Router.
type Options struct {
	// Nodes are the backend base URLs (e.g. "http://127.0.0.1:7601"),
	// one per immserver. Order is identity: the ring hashes the URL
	// strings, so a stable node list keeps pool placement stable.
	Nodes []string
	// VirtualNodes is the ring multiplicity per node; 0 means
	// DefaultVirtualNodes.
	VirtualNodes int
	// Timeout bounds one forwarded request; 0 means DefaultTimeout.
	Timeout time.Duration
	// Client overrides the forwarding HTTP client (tests); when nil a
	// client with Timeout is used.
	Client *http.Client
}

// ringSlot is one virtual node on the hash ring.
type ringSlot struct {
	hash uint64
	node int
}

// flight is one in-progress deduplicated query: followers wait on done
// and replay the leader's captured response.
type flight struct {
	done       chan struct{}
	status     int
	retryAfter string
	body       []byte
}

// Router shards queries across a fleet of serve nodes. Construct with
// New, mount Handler. Safe for concurrent use.
type Router struct {
	nodes  []string
	ring   []ringSlot
	client *http.Client

	mu     sync.Mutex
	flight map[string]*flight
}

// New validates opt and builds the ring.
func New(opt Options) (*Router, error) {
	if len(opt.Nodes) == 0 {
		return nil, fmt.Errorf("route: router needs at least one node URL")
	}
	seen := make(map[string]int, len(opt.Nodes))
	for i, n := range opt.Nodes {
		if n == "" {
			return nil, fmt.Errorf("route: node %d has an empty URL", i)
		}
		if !strings.HasPrefix(n, "http://") && !strings.HasPrefix(n, "https://") {
			return nil, fmt.Errorf("route: node %d URL %q must start with http:// or https://", i, n)
		}
		if j, dup := seen[n]; dup {
			return nil, fmt.Errorf("route: nodes %d and %d share URL %q", j, i, n)
		}
		seen[n] = i
	}
	vnodes := opt.VirtualNodes
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	timeout := opt.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{Timeout: timeout}
	}
	rt := &Router{
		nodes:  append([]string(nil), opt.Nodes...),
		ring:   make([]ringSlot, 0, len(opt.Nodes)*vnodes),
		client: client,
		flight: make(map[string]*flight),
	}
	for i, n := range rt.nodes {
		for v := 0; v < vnodes; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", n, v)
			rt.ring = append(rt.ring, ringSlot{hash: h.Sum64(), node: i})
		}
	}
	sort.Slice(rt.ring, func(i, j int) bool { return rt.ring[i].hash < rt.ring[j].hash })
	return rt, nil
}

// Nodes returns the backend URLs, in registration order.
func (rt *Router) Nodes() []string { return append([]string(nil), rt.nodes...) }

// Owner returns the node URL that owns the (graph, seed) pool key —
// where every query for that warm pool is routed.
func (rt *Router) Owner(graph string, seed uint64) string {
	return rt.nodes[rt.owner(graph, seed)]
}

func (rt *Router) owner(graph string, seed uint64) int {
	h := fnv.New64a()
	io.WriteString(h, graph)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], seed)
	h.Write(b[:])
	key := h.Sum64()
	i := sort.Search(len(rt.ring), func(i int) bool { return rt.ring[i].hash >= key })
	if i == len(rt.ring) {
		i = 0
	}
	return rt.ring[i].node
}

// Handler returns the router's HTTP front-end: the same versioned
// surface the nodes serve, with the same envelope fallbacks.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, p := range []string{"/v1", ""} {
		// The unversioned aliases carry the same deprecation headers the
		// nodes stamp; new endpoints exist only under /v1.
		wrap := func(h http.HandlerFunc) http.HandlerFunc { return h }
		if p == "" {
			wrap = legacy
		}
		mux.HandleFunc("GET "+p+"/healthz", wrap(rt.handleHealth))
		mux.HandleFunc("GET "+p+"/stats", wrap(rt.handleStats))
		mux.HandleFunc("GET "+p+"/query", wrap(rt.handleQuery))
		mux.HandleFunc("POST "+p+"/query", wrap(rt.handleQuery))
		mux.HandleFunc("POST "+p+"/batch", wrap(rt.handleBatch))
		mux.HandleFunc("GET "+p+"/jobs", wrap(rt.handleJobsList))
		mux.HandleFunc("POST "+p+"/jobs", wrap(rt.handleJobSubmit))
		mux.HandleFunc("GET "+p+"/jobs/{id}", wrap(rt.handleJobByID))
	}
	mux.HandleFunc("GET /v1/graphs", rt.handleGraphsV1)
	mux.HandleFunc("GET /graphs", legacy(rt.handleGraphs))
	// Graph lifecycle, /v1 only: writes broadcast to the whole fleet so
	// every node can serve any pool key the ring assigns it.
	mux.HandleFunc("POST /v1/graphs", rt.handleGraphRegister)
	mux.HandleFunc("GET /v1/graphs/{name}", rt.handleGraphGet)
	mux.HandleFunc("DELETE /v1/graphs/{name}", rt.handleGraphDelete)
	mux.HandleFunc("POST /v1/graphs/{name}/edges", rt.handleGraphEdges)
	return serve.EnvelopeFallbacks(mux)
}

// legacy stamps the deprecation headers the serving nodes use on the
// router's own unversioned aliases.
func legacy(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", serve.LegacyDeprecation)
		w.Header().Set("Successor-Version", "/v1"+r.URL.Path)
		h(w, r)
	}
}

// queryIdentity extracts the routing and dedup identity of one query
// request without fully validating it — validation is the owner node's
// job; the router only needs the pool key and a canonical dedup key.
type queryIdentity struct {
	req QueryRequestView
	ok  bool
}

// QueryRequestView mirrors the fields of serve.QueryRequest the router
// inspects, with the same body defaults (eps=0.5, seed=1).
type QueryRequestView struct {
	Graph   string  `json:"graph"`
	Model   string  `json:"model"`
	K       int     `json:"k"`
	Epsilon float64 `json:"epsilon"`
	Seed    uint64  `json:"seed"`
}

func defaultView() QueryRequestView { return QueryRequestView{Epsilon: 0.5, Seed: 1} }

// parseIdentity recovers the pool key from a GET query string or a POST
// body. Unparseable requests return ok=false; they are forwarded to an
// arbitrary-but-deterministic owner (node of the empty key) so the
// backend can reject them with its precise validation error.
func parseIdentity(r *http.Request, body []byte) queryIdentity {
	v := defaultView()
	if r.Method == http.MethodGet {
		q := r.URL.Query()
		v.Graph = q.Get("graph")
		v.Model = q.Get("model")
		v.K, _ = strconv.Atoi(q.Get("k"))
		if s := q.Get("eps"); s != "" {
			if f, err := strconv.ParseFloat(s, 64); err == nil {
				v.Epsilon = f
			}
		}
		if s := q.Get("seed"); s != "" {
			if u, err := strconv.ParseUint(s, 10, 64); err == nil {
				v.Seed = u
			}
		}
		return queryIdentity{req: v, ok: v.Graph != ""}
	}
	if err := json.Unmarshal(body, &v); err != nil {
		return queryIdentity{}
	}
	return queryIdentity{req: v, ok: v.Graph != ""}
}

// dedupKey is the single-flight identity: exact pool key plus the query
// parameters, epsilon by its IEEE-754 bits (the same exactness contract
// as the backend's coalescing).
func (id queryIdentity) dedupKey() string {
	return fmt.Sprintf("%s\x00%s\x00%d\x00%x\x00%d", id.req.Graph, id.req.Model, id.req.K,
		math.Float64bits(id.req.Epsilon), id.req.Seed)
}

// handleQuery routes one query to its pool owner, deduplicating
// identical concurrent requests single-flight: one leader forwards,
// followers replay its captured response without opening a connection.
func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	var body []byte
	if r.Method == http.MethodPost {
		var err error
		if body, err = io.ReadAll(r.Body); err != nil {
			serve.WriteErrorEnvelope(w, http.StatusBadRequest, "invalid_query", "unreadable request body")
			return
		}
	}
	id := parseIdentity(r, body)
	node := rt.owner(id.req.Graph, id.req.Seed)
	key := r.Method + "\x00" + id.dedupKey()

	rt.mu.Lock()
	if fl, inFlight := rt.flight[key]; inFlight && id.ok {
		rt.mu.Unlock()
		<-fl.done
		replay(w, fl)
		return
	}
	fl := &flight{done: make(chan struct{})}
	if id.ok {
		rt.flight[key] = fl
	}
	rt.mu.Unlock()

	fl.status, fl.retryAfter, fl.body = rt.forward(node, r, body)
	// The ring decides placement, but only nodes know which graphs they
	// hold: a graph registered after boot directly on some nodes (not
	// through the router's broadcast) is invisible to the owner. On an
	// unknown-graph refusal, poll the fleet for a holder and re-forward
	// — the freshly registered graph becomes routable with no restart.
	if fl.status == http.StatusNotFound && id.ok {
		if code, _ := unwrapEnvelope(fl.body, fl.status); code == "unknown_graph" {
			if alt, ok := rt.findHolder(id.req.Graph, node); ok {
				fl.status, fl.retryAfter, fl.body = rt.forward(alt, r, body)
			}
		}
	}

	if id.ok {
		rt.mu.Lock()
		delete(rt.flight, key)
		rt.mu.Unlock()
	}
	close(fl.done)
	replay(w, fl)
}

func replay(w http.ResponseWriter, fl *flight) {
	if fl.retryAfter != "" {
		w.Header().Set("Retry-After", fl.retryAfter)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(fl.status)
	w.Write(fl.body)
}

// forward performs one request against a node and captures the reply.
// Transport failure — the node is down or unreachable — yields the
// node_unavailable envelope; in-protocol backend errors pass through
// verbatim (they already carry the envelope).
func (rt *Router) forward(node int, r *http.Request, body []byte) (status int, retryAfter string, respBody []byte) {
	url := rt.nodes[node] + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(r.Method, url, rd)
	if err != nil {
		return http.StatusInternalServerError, "", envelope("internal", err.Error())
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return http.StatusServiceUnavailable, "1",
			envelope("node_unavailable", fmt.Sprintf("node %s is unreachable: %v", rt.nodes[node], err))
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return http.StatusServiceUnavailable, "1",
			envelope("node_unavailable", fmt.Sprintf("node %s reply truncated: %v", rt.nodes[node], err))
	}
	return resp.StatusCode, resp.Header.Get("Retry-After"), b
}

// envelope renders one unified error envelope body.
func envelope(code, message string) []byte {
	b, _ := json.Marshal(serve.ErrorResponse{Error: serve.ErrorBody{Code: code, Message: message}})
	return b
}

// handleBatch fans a batch out to each member's pool owner and
// reassembles the answers in request order. Members owned by an
// unreachable node fail inline with code node_unavailable; members on
// healthy nodes still serve.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var batch serve.BatchRequest
	if err := dec.Decode(&batch); err != nil {
		serve.WriteErrorEnvelope(w, http.StatusBadRequest, "invalid_query", fmt.Sprintf("invalid JSON body: %v", err))
		return
	}
	if len(batch.Queries) == 0 {
		serve.WriteErrorEnvelope(w, http.StatusBadRequest, "invalid_query", "batch holds no queries")
		return
	}

	// Group member indices by owner; unparseable members go to the empty
	// key's owner, whose backend reports the precise validation error.
	groups := make(map[int][]int)
	for i, raw := range batch.Queries {
		v := defaultView()
		_ = json.Unmarshal(raw, &v)
		n := rt.owner(v.Graph, v.Seed)
		groups[n] = append(groups[n], i)
	}

	items := make([]serve.BatchItem, len(batch.Queries))
	var wg sync.WaitGroup
	for node, idxs := range groups {
		wg.Add(1)
		go func(node int, idxs []int) {
			defer wg.Done()
			sub := serve.BatchRequest{Queries: make([]json.RawMessage, len(idxs))}
			for j, i := range idxs {
				sub.Queries[j] = batch.Queries[i]
			}
			body, _ := json.Marshal(sub)
			status, _, resp := rt.forward(node, r, body)
			if status != http.StatusOK {
				code, msg := unwrapEnvelope(resp, status)
				for _, i := range idxs {
					items[i] = serve.BatchItem{Error: msg, Code: code}
				}
				return
			}
			var br serve.BatchResponse
			if err := json.Unmarshal(resp, &br); err != nil || len(br.Results) != len(idxs) {
				for _, i := range idxs {
					items[i] = serve.BatchItem{Error: fmt.Sprintf("node %s returned a malformed batch reply", rt.nodes[node]), Code: "internal"}
				}
				return
			}
			for j, i := range idxs {
				items[i] = br.Results[j]
			}
		}(node, idxs)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, serve.BatchResponse{Results: items})
}

// unwrapEnvelope extracts (code, message) from an envelope body,
// synthesizing one when the body is not an envelope.
func unwrapEnvelope(body []byte, status int) (code, message string) {
	var e serve.ErrorResponse
	if err := json.Unmarshal(body, &e); err == nil && e.Error.Code != "" {
		return e.Error.Code, e.Error.Message
	}
	return "internal", fmt.Sprintf("backend error (HTTP %d)", status)
}

// jobID carries the owning node through the job id: "n<idx>-<local id>".
func (rt *Router) jobID(node int, local string) string { return fmt.Sprintf("n%d-%s", node, local) }

// parseJobID splits a router job id back into (node, local id).
func (rt *Router) parseJobID(id string) (node int, local string, ok bool) {
	if !strings.HasPrefix(id, "n") {
		return 0, "", false
	}
	rest := id[1:]
	dash := strings.IndexByte(rest, '-')
	if dash <= 0 {
		return 0, "", false
	}
	n, err := strconv.Atoi(rest[:dash])
	if err != nil || n < 0 || n >= len(rt.nodes) {
		return 0, "", false
	}
	return n, rest[dash+1:], true
}

func (rt *Router) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		serve.WriteErrorEnvelope(w, http.StatusBadRequest, "invalid_query", "unreadable request body")
		return
	}
	id := parseIdentity(r, body)
	node := rt.owner(id.req.Graph, id.req.Seed)
	status, retryAfter, resp := rt.forward(node, r, body)
	if status != http.StatusAccepted {
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write(resp)
		return
	}
	var job serve.Job
	if err := json.Unmarshal(resp, &job); err != nil {
		serve.WriteErrorEnvelope(w, http.StatusInternalServerError, "internal",
			fmt.Sprintf("node %s returned a malformed job", rt.nodes[node]))
		return
	}
	job.ID = rt.jobID(node, job.ID)
	writeJSON(w, http.StatusAccepted, job)
}

func (rt *Router) handleJobByID(w http.ResponseWriter, r *http.Request) {
	node, local, ok := rt.parseJobID(r.PathValue("id"))
	if !ok {
		serve.WriteErrorEnvelope(w, http.StatusNotFound, "unknown_job",
			fmt.Sprintf("unknown job %q (router job ids look like n0-job-1)", r.PathValue("id")))
		return
	}
	path := strings.TrimSuffix(r.URL.Path, r.PathValue("id")) + local
	status, _, resp := rt.forwardPath(node, http.MethodGet, path, nil)
	if status != http.StatusOK {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write(resp)
		return
	}
	var job serve.Job
	if err := json.Unmarshal(resp, &job); err != nil {
		serve.WriteErrorEnvelope(w, http.StatusInternalServerError, "internal",
			fmt.Sprintf("node %s returned a malformed job", rt.nodes[node]))
		return
	}
	job.ID = rt.jobID(node, job.ID)
	writeJSON(w, http.StatusOK, job)
}

func (rt *Router) handleJobsList(w http.ResponseWriter, r *http.Request) {
	replies := rt.fanOut(r.URL.Path, func(node int, status int, body []byte) any {
		if status != http.StatusOK {
			return fmt.Errorf("node %s: HTTP %d", rt.nodes[node], status)
		}
		var jobs []serve.Job
		if err := json.Unmarshal(body, &jobs); err != nil {
			return err
		}
		for i := range jobs {
			jobs[i].ID = rt.jobID(node, jobs[i].ID)
		}
		return jobs
	})
	out := make([]serve.Job, 0)
	for _, rep := range replies {
		if jobs, ok := rep.([]serve.Job); ok {
			out = append(out, jobs...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleGraphs(w http.ResponseWriter, r *http.Request) {
	replies := rt.fanOut(r.URL.Path, func(node int, status int, body []byte) any {
		if status != http.StatusOK {
			return fmt.Errorf("node %s: HTTP %d", rt.nodes[node], status)
		}
		var graphs []serve.GraphInfo
		if err := json.Unmarshal(body, &graphs); err != nil {
			return err
		}
		return graphs
	})
	out, reached := unionGraphs(replies)
	if reached == 0 {
		serve.WriteErrorEnvelope(w, http.StatusServiceUnavailable, "node_unavailable", "no node is reachable")
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// NodeStats is one node's entry in the router's /stats answer.
type NodeStats struct {
	Node  string       `json:"node"`
	Stats *serve.Stats `json:"stats,omitempty"`
	Error string       `json:"error,omitempty"`
}

// StatsResponse is the router's /stats payload: per-node counters, in
// node order.
type StatsResponse struct {
	Nodes []NodeStats `json:"nodes"`
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	replies := rt.fanOut(r.URL.Path, func(node int, status int, body []byte) any {
		if status != http.StatusOK {
			return fmt.Errorf("node %s: HTTP %d", rt.nodes[node], status)
		}
		var st serve.Stats
		if err := json.Unmarshal(body, &st); err != nil {
			return err
		}
		return &st
	})
	out := StatsResponse{Nodes: make([]NodeStats, len(rt.nodes))}
	for i, rep := range replies {
		out.Nodes[i] = NodeStats{Node: rt.nodes[i]}
		switch v := rep.(type) {
		case *serve.Stats:
			out.Nodes[i].Stats = v
		case error:
			out.Nodes[i].Error = v.Error()
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// HealthResponse is the router's /healthz payload.
type HealthResponse struct {
	Status  string `json:"status"`
	Nodes   int    `json:"nodes"`
	Healthy int    `json:"healthy"`
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	replies := rt.fanOut(r.URL.Path, func(node int, status int, body []byte) any {
		return status == http.StatusOK
	})
	healthy := 0
	for _, rep := range replies {
		if ok, _ := rep.(bool); ok {
			healthy++
		}
	}
	if healthy == 0 {
		serve.WriteErrorEnvelope(w, http.StatusServiceUnavailable, "node_unavailable", "no node is reachable")
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Nodes: len(rt.nodes), Healthy: healthy})
}

// fanOut GETs path on every node concurrently and maps each reply; a
// transport failure maps (node, 503, envelope) like any backend error.
func (rt *Router) fanOut(path string, f func(node, status int, body []byte) any) []any {
	out := make([]any, len(rt.nodes))
	var wg sync.WaitGroup
	for i := range rt.nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _, body := rt.forwardPath(i, http.MethodGet, path, nil)
			out[i] = f(i, status, body)
		}(i)
	}
	wg.Wait()
	return out
}

// forwardPath is forward for router-initiated requests (no inbound
// request to mirror); body may be nil.
func (rt *Router) forwardPath(node int, method, path string, body []byte) (status int, retryAfter string, respBody []byte) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, rt.nodes[node]+path, rd)
	if err != nil {
		return http.StatusInternalServerError, "", envelope("internal", err.Error())
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return http.StatusServiceUnavailable, "1",
			envelope("node_unavailable", fmt.Sprintf("node %s is unreachable: %v", rt.nodes[node], err))
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return http.StatusServiceUnavailable, "1",
			envelope("node_unavailable", fmt.Sprintf("node %s reply truncated: %v", rt.nodes[node], err))
	}
	return resp.StatusCode, resp.Header.Get("Retry-After"), b
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
