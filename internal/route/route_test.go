package route

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/serve"
)

// testFleet boots n serve backends over one shared graph registry and a
// router in front of them. Returns the router, its HTTP server, and the
// backend test servers (index-aligned with router nodes).
func testFleet(t *testing.T, n int) (*Router, *httptest.Server, []*httptest.Server) {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(8, 6), graph.IC, 42)
	if err != nil {
		t.Fatal(err)
	}
	backends := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range backends {
		s := serve.NewServer(serve.Options{Workers: 2, MaxTheta: 4000})
		if _, err := s.AddGraph("g", g, 42); err != nil {
			t.Fatal(err)
		}
		backends[i] = httptest.NewServer(s.Handler())
		t.Cleanup(backends[i].Close)
		urls[i] = backends[i].URL
	}
	rt, err := New(Options{Nodes: urls, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts, backends
}

func getJSON(t *testing.T, url string, wantCode int, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantCode)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp
}

// seedsOwnedBy finds a seed whose (g, seed) pool key the given node
// owns.
func seedOwnedBy(t *testing.T, rt *Router, nodeURL string) uint64 {
	t.Helper()
	for seed := uint64(1); seed < 10000; seed++ {
		if rt.Owner("g", seed) == nodeURL {
			return seed
		}
	}
	t.Fatalf("no seed in [1,10000) owned by %s", nodeURL)
	return 0
}

// TestRouterShardsQueries pins the core contract: routed answers are
// byte-identical to direct backend answers (routing is placement, not
// semantics), repeats of one pool key land warm on the same node, and
// the ring spreads keys across the fleet.
func TestRouterShardsQueries(t *testing.T) {
	rt, ts, backends := testFleet(t, 3)

	owners := make(map[string]bool)
	for seed := uint64(1); seed <= 6; seed++ {
		url := fmt.Sprintf("/v1/query?graph=g&k=8&eps=0.5&seed=%d", seed)
		var routed serve.QueryResult
		getJSON(t, ts.URL+url, http.StatusOK, &routed)

		// Direct answer from any backend must match — take backend 0.
		var direct serve.QueryResult
		getJSON(t, backends[0].URL+url, http.StatusOK, &direct)
		if !reflect.DeepEqual(routed.Seeds, direct.Seeds) || routed.Theta != direct.Theta {
			t.Fatalf("seed %d: routed answer diverged from direct: %v vs %v", seed, routed.Seeds, direct.Seeds)
		}

		// A repeat must hit the same node's now-warm pool.
		var warm serve.QueryResult
		getJSON(t, ts.URL+url, http.StatusOK, &warm)
		if !warm.Warm || !reflect.DeepEqual(warm.Seeds, routed.Seeds) {
			t.Fatalf("seed %d: routed repeat not warm (warm=%v)", seed, warm.Warm)
		}
		owners[rt.Owner("g", seed)] = true
	}
	if len(owners) < 2 {
		t.Fatalf("6 seeds all landed on one node; ring is not spreading (owners=%v)", owners)
	}
}

// TestRouterFailover pins the failure contract: a down node yields the
// 503 node_unavailable envelope (with Retry-After) for the pool keys it
// owns — inline for batch members — while keys owned by healthy nodes
// keep serving.
func TestRouterFailover(t *testing.T) {
	rt, ts, backends := testFleet(t, 2)
	deadSeed := seedOwnedBy(t, rt, backends[0].URL)
	liveSeed := seedOwnedBy(t, rt, backends[1].URL)
	backends[0].Close()

	var e serve.ErrorResponse
	resp := getJSON(t, ts.URL+fmt.Sprintf("/v1/query?graph=g&k=8&seed=%d", deadSeed),
		http.StatusServiceUnavailable, &e)
	if e.Error.Code != "node_unavailable" {
		t.Fatalf("dead node error code = %q, want node_unavailable", e.Error.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("node_unavailable response missing Retry-After")
	}

	var res serve.QueryResult
	getJSON(t, ts.URL+fmt.Sprintf("/v1/query?graph=g&k=8&seed=%d", liveSeed), http.StatusOK, &res)
	if len(res.Seeds) != 8 {
		t.Fatalf("healthy node answer = %+v", res)
	}

	// Batch: the dead member fails inline, the live member serves.
	body := fmt.Sprintf(`{"queries":[{"graph":"g","k":8,"seed":%d},{"graph":"g","k":8,"seed":%d}]}`, deadSeed, liveSeed)
	bresp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	var br serve.BatchResponse
	if err := json.NewDecoder(bresp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if bresp.StatusCode != http.StatusOK || len(br.Results) != 2 {
		t.Fatalf("batch status %d results %+v", bresp.StatusCode, br.Results)
	}
	if br.Results[0].Code != "node_unavailable" || br.Results[0].Result != nil {
		t.Fatalf("dead member = %+v, want inline node_unavailable", br.Results[0])
	}
	if br.Results[1].Result == nil || len(br.Results[1].Result.Seeds) != 8 {
		t.Fatalf("live member = %+v", br.Results[1])
	}

	// Health still reports ok with one healthy node; stats carries the
	// dead node's error inline.
	var h HealthResponse
	getJSON(t, ts.URL+"/v1/healthz", http.StatusOK, &h)
	if h.Nodes != 2 || h.Healthy != 1 {
		t.Fatalf("health = %+v", h)
	}
	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &st)
	if len(st.Nodes) != 2 || st.Nodes[0].Error == "" || st.Nodes[1].Stats == nil {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRouterSingleFlight pins the dedup: identical concurrent queries
// reach the backend exactly once; followers replay the leader's bytes.
func TestRouterSingleFlight(t *testing.T) {
	var hits atomic.Int64
	release := make(chan struct{})
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		<-release
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"seeds":[1,2,3]}`)
	}))
	t.Cleanup(backend.Close)
	rt, err := New(Options{Nodes: []string{backend.URL}, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	const clients = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Get(ts.URL + "/v1/query?graph=g&k=8&seed=1")
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var body map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			if resp.StatusCode != http.StatusOK || len(body["seeds"].([]any)) != 3 {
				t.Errorf("client %d: status %d body %v", i, resp.StatusCode, body)
			}
		}(i)
	}
	close(start)
	// Let every client reach the router before the backend responds.
	deadline := time.Now().Add(5 * time.Second)
	for hits.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // give followers time to pile onto the flight
	close(release)
	wg.Wait()
	if got := hits.Load(); got != 1 {
		t.Fatalf("backend saw %d requests for one identical concurrent query, want 1", got)
	}
}

// TestRouterJobs pins the prefixed job id round-trip: submit through
// the router, poll through the router, list through the router.
func TestRouterJobs(t *testing.T) {
	_, ts, _ := testFleet(t, 2)

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"graph":"g","k":6,"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	var job serve.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if !strings.HasPrefix(job.ID, "n") || !strings.Contains(job.ID, "-job-") {
		t.Fatalf("router job id %q lacks node prefix", job.ID)
	}

	deadline := time.Now().Add(10 * time.Second)
	for job.State != serve.JobDone && job.State != serve.JobFailed {
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish: %+v", job.ID, job)
		}
		time.Sleep(10 * time.Millisecond)
		getJSON(t, ts.URL+"/v1/jobs/"+job.ID, http.StatusOK, &job)
	}
	if job.State != serve.JobDone || job.Result == nil || len(job.Result.Seeds) != 6 {
		t.Fatalf("job = %+v", job)
	}

	var jobs []serve.Job
	getJSON(t, ts.URL+"/v1/jobs", http.StatusOK, &jobs)
	if len(jobs) != 1 || jobs[0].ID != job.ID {
		t.Fatalf("jobs list = %+v", jobs)
	}

	var e serve.ErrorResponse
	getJSON(t, ts.URL+"/v1/jobs/n0-job-999", http.StatusNotFound, &e)
	if e.Error.Code != "unknown_job" {
		t.Fatalf("unknown job code = %q", e.Error.Code)
	}
	getJSON(t, ts.URL+"/v1/jobs/garbage", http.StatusNotFound, &e)
	if e.Error.Code != "unknown_job" {
		t.Fatalf("malformed job id code = %q", e.Error.Code)
	}
}

// TestRouterSurface pins the aggregation endpoints and the envelope
// fallbacks on the router's own mux.
func TestRouterSurface(t *testing.T) {
	_, ts, _ := testFleet(t, 2)

	var graphs serve.GraphsResponse
	getJSON(t, ts.URL+"/v1/graphs", http.StatusOK, &graphs)
	if len(graphs.Graphs) != 1 || graphs.Graphs[0].Name != "g" {
		t.Fatalf("graphs = %+v", graphs)
	}
	var legacy []serve.GraphInfo
	getJSON(t, ts.URL+"/graphs", http.StatusOK, &legacy)
	if len(legacy) != 1 || legacy[0].Name != "g" {
		t.Fatalf("legacy graphs = %+v", legacy)
	}

	var e serve.ErrorResponse
	getJSON(t, ts.URL+"/v1/nope", http.StatusNotFound, &e)
	if e.Error.Code != "not_found" {
		t.Fatalf("unknown path code = %q", e.Error.Code)
	}
	resp, err := http.Post(ts.URL+"/v1/healthz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	e = serve.ErrorResponse{}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || e.Error.Code != "method_not_allowed" {
		t.Fatalf("POST healthz: status %d code %q", resp.StatusCode, e.Error.Code)
	}

	// Validation errors from the owner node pass through the router
	// with their envelope intact.
	e = serve.ErrorResponse{}
	getJSON(t, ts.URL+"/v1/query?graph=missing&k=5", http.StatusNotFound, &e)
	if e.Error.Code != "unknown_graph" {
		t.Fatalf("forwarded validation code = %q", e.Error.Code)
	}
}

// TestNewValidation pins the constructor's option checks.
func TestNewValidation(t *testing.T) {
	cases := []Options{
		{},
		{Nodes: []string{""}},
		{Nodes: []string{"127.0.0.1:7601"}}, // missing scheme
		{Nodes: []string{"http://a:1", "http://a:1"}},
	}
	for i, opt := range cases {
		if _, err := New(opt); err == nil {
			t.Fatalf("case %d: New accepted invalid options %+v", i, opt)
		}
	}
	if _, err := New(Options{Nodes: []string{"http://a:1", "http://b:1"}}); err != nil {
		t.Fatal(err)
	}
}
