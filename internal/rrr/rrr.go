// Package rrr implements the random reverse-reachable (RRR) set storage
// used by the IMM engines, including the paper's adaptive representation:
// sparse sets are sorted vertex lists (cheap to sort, O(log n)
// membership, 4 bytes/vertex), dense sets are bitmaps (O(1) membership,
// n/8 bytes regardless of occupancy). EFFICIENTIMM switches per set based
// on a size threshold so that the giant SCC-driven sets get bitmap
// treatment while the long tail of small sets stays compact.
package rrr

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
)

// Set is one random reverse-reachable set over a graph with a fixed
// vertex count.
type Set interface {
	// Contains reports whether vertex v is in the set.
	Contains(v int32) bool
	// Size returns the number of vertices in the set.
	Size() int
	// ForEach calls fn for each vertex in ascending order.
	ForEach(fn func(v int32))
	// Vertices appends the members in ascending order to dst.
	Vertices(dst []int32) []int32
	// Bytes returns the exact memory footprint of the representation.
	Bytes() int64
	// Kind names the representation ("list" or "bitmap").
	Kind() string
}

// ListSet is a sorted vertex list — Ripples' only representation, and
// EFFICIENTIMM's choice below the density threshold.
type ListSet struct {
	verts []int32 // sorted ascending, unique
}

// NewListSet builds a ListSet from vertices, sorting and deduplicating a
// copy.
func NewListSet(vertices []int32) *ListSet {
	vs := append([]int32(nil), vertices...)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	// Dedup in place.
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != vs[i-1] {
			out = append(out, v)
		}
	}
	return &ListSet{verts: out}
}

// newListSetSorted adopts an already-sorted unique slice without copying;
// used by the sampling hot path, which produces sorted output itself.
func newListSetSorted(vertices []int32) *ListSet { return &ListSet{verts: vertices} }

// Contains uses binary search, the O(log n) probe the paper charges the
// baseline for.
func (s *ListSet) Contains(v int32) bool {
	i := sort.Search(len(s.verts), func(i int) bool { return s.verts[i] >= v })
	return i < len(s.verts) && s.verts[i] == v
}

// Size returns the member count.
func (s *ListSet) Size() int { return len(s.verts) }

// ForEach visits members in ascending order.
func (s *ListSet) ForEach(fn func(v int32)) {
	for _, v := range s.verts {
		fn(v)
	}
}

// Vertices appends the members to dst.
func (s *ListSet) Vertices(dst []int32) []int32 { return append(dst, s.verts...) }

// Bytes is 4 bytes per member.
func (s *ListSet) Bytes() int64 { return int64(len(s.verts)) * 4 }

// Kind returns "list".
func (s *ListSet) Kind() string { return "list" }

// Raw exposes the sorted member slice for streaming kernels (the
// set-partitioned counter update iterates it directly).
func (s *ListSet) Raw() []int32 { return s.verts }

// BitmapSet is a dense bitmap over the vertex space with a cached
// cardinality, EFFICIENTIMM's choice above the density threshold.
type BitmapSet struct {
	bits *bitset.Bitset
	size int
}

// NewBitmapSet builds a BitmapSet over n vertices from the given members.
func NewBitmapSet(n int32, vertices []int32) *BitmapSet {
	b := bitset.New(int(n))
	size := 0
	for _, v := range vertices {
		if !b.TestAndSet(int(v)) {
			size++
		}
	}
	return &BitmapSet{bits: b, size: size}
}

// Contains is a single bit probe.
func (s *BitmapSet) Contains(v int32) bool { return s.bits.Test(int(v)) }

// Size returns the cached cardinality.
func (s *BitmapSet) Size() int { return s.size }

// ForEach visits members in ascending order.
func (s *BitmapSet) ForEach(fn func(v int32)) {
	s.bits.ForEach(func(i int) { fn(int32(i)) })
}

// Vertices appends the members to dst.
func (s *BitmapSet) Vertices(dst []int32) []int32 { return s.bits.AppendIndices(dst) }

// Bytes is one bit per graph vertex, rounded to whole words.
func (s *BitmapSet) Bytes() int64 { return int64(len(s.bits.Words())) * 8 }

// Kind returns "bitmap".
func (s *BitmapSet) Kind() string { return "bitmap" }

// Words exposes the backing words for trace-driven cache simulation.
func (s *BitmapSet) Words() []uint64 { return s.bits.Words() }

// Policy decides representations for new sets.
type Policy struct {
	// Adaptive enables per-set switching. When false every set is a
	// ListSet (the Ripples behaviour).
	Adaptive bool
	// DensityThreshold is the |set|/n fraction above which a bitmap is
	// used. The paper derives the break-even point from equal footprint:
	// a list costs 32 bits/member, a bitmap 1 bit/vertex, so footprint
	// parity is at density 1/32 ≈ 3%. The default of 1/16 biases toward
	// lists, accounting for the bitmap's lost sort-free iteration.
	DensityThreshold float64
}

// DefaultPolicy returns the adaptive policy with the 1/16 threshold.
func DefaultPolicy() Policy { return Policy{Adaptive: true, DensityThreshold: 1.0 / 16} }

// ListOnlyPolicy returns the Ripples-style fixed representation.
func ListOnlyPolicy() Policy { return Policy{Adaptive: false} }

// Build materializes a set from a sorted, unique member slice, choosing
// the representation per the policy. The slice is adopted when a list is
// chosen, so callers must not reuse it.
func (p Policy) Build(n int32, sortedVerts []int32) Set {
	if p.Adaptive && n > 0 && float64(len(sortedVerts)) >= p.DensityThreshold*float64(n) {
		return NewBitmapSet(n, sortedVerts)
	}
	return newListSetSorted(sortedVerts)
}

// Stats summarizes a collection of sets, driving Table I (coverage) and
// the Twitter7 footprint analysis.
type Stats struct {
	Count       int
	TotalSize   int64
	MaxSize     int
	TotalBytes  int64
	Bitmaps     int
	Lists       int
	AvgCoverage float64 // mean |set|/n
	MaxCoverage float64 // max |set|/n
}

// Summarize computes Stats over sets on a graph with n vertices.
func Summarize(n int32, sets []Set) Stats {
	var st Stats
	st.Count = len(sets)
	for _, s := range sets {
		sz := s.Size()
		st.TotalSize += int64(sz)
		if sz > st.MaxSize {
			st.MaxSize = sz
		}
		st.TotalBytes += s.Bytes()
		switch s.Kind() {
		case "bitmap":
			st.Bitmaps++
		default:
			st.Lists++
		}
	}
	if n > 0 && st.Count > 0 {
		st.AvgCoverage = float64(st.TotalSize) / float64(st.Count) / float64(n)
		st.MaxCoverage = float64(st.MaxSize) / float64(n)
	}
	return st
}

// FootprintBytes computes the storage needed for a hypothetical workload
// of count sets of meanSize vertices over an n-vertex graph under the
// policy, without materializing anything. This is the analytical model
// behind the Twitter7 OOM row of Table III: Ripples must hold every set
// as a list, while the adaptive policy prices dense sets as bitmaps only
// when cheaper.
func (p Policy) FootprintBytes(n int32, count int64, meanSize float64) int64 {
	listBytes := meanSize * 4
	if !p.Adaptive {
		return int64(listBytes * float64(count))
	}
	bitmapBytes := float64((int64(n) + 63) / 64 * 8)
	if meanSize >= p.DensityThreshold*float64(n) && bitmapBytes < listBytes {
		return int64(bitmapBytes * float64(count))
	}
	return int64(listBytes * float64(count))
}

// String renders the stats for logs.
func (st Stats) String() string {
	return fmt.Sprintf("sets=%d avg|R|=%.1f max|R|=%d avgCov=%.1f%% maxCov=%.1f%% bytes=%d (lists=%d bitmaps=%d)",
		st.Count, float64(st.TotalSize)/float64(max(st.Count, 1)), st.MaxSize,
		st.AvgCoverage*100, st.MaxCoverage*100, st.TotalBytes, st.Lists, st.Bitmaps)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
