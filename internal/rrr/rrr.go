// Package rrr implements the random reverse-reachable (RRR) set storage
// used by the IMM engines, including the paper's adaptive representation:
// sparse sets are sorted vertex lists (cheap to sort, O(log n)
// membership, 4 bytes/vertex), dense sets are bitmaps (O(1) membership,
// n/8 bytes regardless of occupancy). EFFICIENTIMM switches per set based
// on a size threshold so that the giant SCC-driven sets get bitmap
// treatment while the long tail of small sets stays compact.
//
// Key types: Set (the representation-agnostic interface: Size, Contains,
// ForEach, Bytes), ListSet, BitmapSet, and CompressedSet (delta-varint
// member lists for the compressed pool), with Policy/BuildScratch as the
// single representation-choice dispatch every generation path shares.
// Whatever the representation, a Set's member sequence is the sorted
// unique vertex list — the invariant that makes pools interchangeable
// without affecting selection.
package rrr

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/bitset"
	"repro/internal/compress"
)

// Set is one random reverse-reachable set over a graph with a fixed
// vertex count.
type Set interface {
	// Contains reports whether vertex v is in the set.
	Contains(v int32) bool
	// Size returns the number of vertices in the set.
	Size() int
	// ForEach calls fn for each vertex in ascending order.
	ForEach(fn func(v int32))
	// Vertices appends the members in ascending order to dst.
	Vertices(dst []int32) []int32
	// Bytes returns the exact memory footprint of the representation.
	Bytes() int64
	// Kind names the representation ("list" or "bitmap").
	Kind() string
}

// ListSet is a sorted vertex list — Ripples' only representation, and
// EFFICIENTIMM's choice below the density threshold.
type ListSet struct {
	verts []int32 // sorted ascending, unique
}

// NewListSet builds a ListSet from vertices, sorting and deduplicating a
// copy.
func NewListSet(vertices []int32) *ListSet {
	vs := append([]int32(nil), vertices...)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	// Dedup in place.
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != vs[i-1] {
			out = append(out, v)
		}
	}
	return &ListSet{verts: out}
}

// newListSetSorted adopts an already-sorted unique slice without copying;
// used by the sampling hot path, which produces sorted output itself.
func newListSetSorted(vertices []int32) *ListSet { return &ListSet{verts: vertices} }

// AdoptSortedList adopts an already strictly-sorted unique member slice
// without copying or validating it. This is the pool-snapshot thaw seam:
// the caller (the .impool codec) has already validated sortedness and
// range, and the slice may alias a memory-mapped file. The set never
// writes to the slice.
func AdoptSortedList(sorted []int32) *ListSet { return newListSetSorted(sorted) }

// Contains uses binary search, the O(log n) probe the paper charges the
// baseline for.
func (s *ListSet) Contains(v int32) bool {
	i := sort.Search(len(s.verts), func(i int) bool { return s.verts[i] >= v })
	return i < len(s.verts) && s.verts[i] == v
}

// Size returns the member count.
func (s *ListSet) Size() int { return len(s.verts) }

// ForEach visits members in ascending order.
func (s *ListSet) ForEach(fn func(v int32)) {
	for _, v := range s.verts {
		fn(v)
	}
}

// Vertices appends the members to dst. The appended elements are copies;
// unlike Raw, the returned slice never aliases the set's backing
// storage beyond dst's own capacity.
func (s *ListSet) Vertices(dst []int32) []int32 { return append(dst, s.verts...) }

// Bytes is 4 bytes per member.
func (s *ListSet) Bytes() int64 { return int64(len(s.verts)) * 4 }

// Kind returns "list".
func (s *ListSet) Kind() string { return "list" }

// Raw exposes the sorted member slice for streaming kernels (the
// set-partitioned counter update iterates it directly).
//
// Ownership contract: the returned slice aliases the set's backing
// storage, which the set does not own exclusively — arena-built sets
// (Arena.NewSortedList, Policy.BuildArena) share bump-allocated blocks
// whose contents are overwritten when the arena is Reset. Callers may
// read the slice only while the set itself is valid and must never
// write to or retain it past the producing arena's lifetime; use
// Detach (or Vertices) for a copy that survives arena reuse.
func (s *ListSet) Raw() []int32 { return s.verts }

// Detach returns a ListSet backed by freshly owned storage, breaking any
// aliasing with arena blocks. Pools that retain sets beyond the
// lifetime of the arena that produced them store Detach()ed copies;
// sets already backed by private storage are simply deep-copied.
func (s *ListSet) Detach() *ListSet {
	return &ListSet{verts: append([]int32(nil), s.verts...)}
}

// BitmapSet is a dense bitmap over the vertex space with a cached
// cardinality, EFFICIENTIMM's choice above the density threshold.
type BitmapSet struct {
	bits *bitset.Bitset
	size int
}

// NewBitmapSet builds a BitmapSet over n vertices from the given members.
func NewBitmapSet(n int32, vertices []int32) *BitmapSet {
	b := bitset.New(int(n))
	size := 0
	for _, v := range vertices {
		if !b.TestAndSet(int(v)) {
			size++
		}
	}
	return &BitmapSet{bits: b, size: size}
}

// NewBitmapSetUnique builds a BitmapSet from a duplicate-free member
// list, skipping NewBitmapSet's per-bit test-and-set: bits are OR-folded
// word-at-a-time (bitset.SetMany). The generation paths use it because
// sampler output is deduplicated by the visited bitmap by construction.
func NewBitmapSetUnique(n int32, unique []int32) *BitmapSet {
	b := bitset.New(int(n))
	b.SetMany(unique)
	return &BitmapSet{bits: b, size: len(unique)}
}

// AdoptBitmap adopts an existing word row as a BitmapSet over n vertices
// with a pre-counted cardinality, without copying or validating it. This
// is the pool-snapshot thaw seam: the codec has already checked the word
// count, the trailing-bit zeros, and the popcount; the words may alias a
// memory-mapped file. The set never writes to the words.
func AdoptBitmap(n int32, words []uint64, size int) *BitmapSet {
	return &BitmapSet{bits: bitset.FromWords(words, int(n)), size: size}
}

// Contains is a single bit probe.
func (s *BitmapSet) Contains(v int32) bool { return s.bits.Test(int(v)) }

// Size returns the cached cardinality.
func (s *BitmapSet) Size() int { return s.size }

// ForEach visits members in ascending order.
func (s *BitmapSet) ForEach(fn func(v int32)) {
	s.bits.ForEach(func(i int) { fn(int32(i)) })
}

// Vertices appends the members to dst.
func (s *BitmapSet) Vertices(dst []int32) []int32 { return s.bits.AppendIndices(dst) }

// Bytes is one bit per graph vertex, rounded to whole words.
func (s *BitmapSet) Bytes() int64 { return int64(len(s.bits.Words())) * 8 }

// Kind returns "bitmap".
func (s *BitmapSet) Kind() string { return "bitmap" }

// Words exposes the backing words for trace-driven cache simulation.
func (s *BitmapSet) Words() []uint64 { return s.bits.Words() }

// CompressedSet is a delta-varint-encoded sorted vertex list — the
// HBMax-style compressed representation at pool granularity (no per-set
// entropy-coder header, unlike compress.Set). It trades byte-at-a-time
// decode on iteration for roughly a quarter of the ListSet footprint on
// social-graph RRR sets, whose deltas are small. Membership probes are
// O(|set|) scans; the compressed pool's selection path never issues
// them (it walks an inverted index instead), so only legacy scan-mode
// selection pays the decode tax.
type CompressedSet struct {
	data  []byte
	count int32
}

// NewCompressedSet builds a CompressedSet from vertices, sorting and
// deduplicating a scratch copy before encoding.
func NewCompressedSet(vertices []int32) *CompressedSet {
	vs := append([]int32(nil), vertices...)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != vs[i-1] {
			out = append(out, v)
		}
	}
	return NewCompressedSorted(out)
}

// NewCompressedSorted encodes an already strictly-sorted unique member
// slice. The slice is not retained.
func NewCompressedSorted(sorted []int32) *CompressedSet {
	return &CompressedSet{data: compress.AppendPlain(nil, sorted), count: int32(len(sorted))}
}

// AdoptCompressed adopts an already-encoded delta-varint payload (the
// compress.AppendPlain plain encoding, exactly what Encoded returns)
// with a pre-decoded member count, without copying or validating it.
// This is the pool-snapshot thaw seam: the codec has already decoded the
// payload once to validate count, sortedness, and range; the bytes may
// alias a memory-mapped file. The set never writes to the payload.
func AdoptCompressed(data []byte, count int32) *CompressedSet {
	return &CompressedSet{data: data, count: count}
}

// Encoded exposes the delta-varint payload for serialization. The
// returned slice aliases the set's backing storage and must not be
// mutated.
func (s *CompressedSet) Encoded() []byte { return s.data }

// Contains scans the delta stream, stopping at the first member >= v.
func (s *CompressedSet) Contains(v int32) bool { return compress.PlainContains(s.data, v) }

// Size returns the member count without decoding.
func (s *CompressedSet) Size() int { return int(s.count) }

// ForEach decodes and visits members in ascending order without
// materializing the list.
func (s *CompressedSet) ForEach(fn func(v int32)) { _ = compress.ForEachPlain(s.data, fn) }

// Vertices appends the decoded members to dst.
func (s *CompressedSet) Vertices(dst []int32) []int32 {
	out, err := compress.DecodePlain(s.data, dst)
	if err != nil {
		return dst
	}
	return out
}

// Bytes is the encoded payload size.
func (s *CompressedSet) Bytes() int64 { return int64(len(s.data)) }

// Kind returns "compressed".
func (s *CompressedSet) Kind() string { return "compressed" }

// Policy decides representations for new sets.
type Policy struct {
	// Adaptive enables per-set switching. When false every set is a
	// ListSet (the Ripples behaviour).
	Adaptive bool
	// DensityThreshold is the |set|/n fraction above which a bitmap is
	// used. The paper derives the break-even point from equal footprint:
	// a list costs 32 bits/member, a bitmap 1 bit/vertex, so footprint
	// parity is at density 1/32 ≈ 3%. The default of 1/16 biases toward
	// lists, accounting for the bitmap's lost sort-free iteration.
	DensityThreshold float64
	// Compress switches sub-threshold sets from plain sorted lists to
	// delta-varint CompressedSets (the compressed-pool representation).
	// Dense sets still become bitset rows when Adaptive is on.
	Compress bool
}

// DefaultPolicy returns the adaptive policy with the 1/16 threshold.
func DefaultPolicy() Policy { return Policy{Adaptive: true, DensityThreshold: 1.0 / 16} }

// ListOnlyPolicy returns the Ripples-style fixed representation.
func ListOnlyPolicy() Policy { return Policy{Adaptive: false} }

// CompressedPolicy returns the compressed-pool policy: delta-encoded
// member lists below the adaptive density threshold, bitset rows above
// it.
func CompressedPolicy() Policy {
	p := DefaultPolicy()
	p.Compress = true
	return p
}

// Build materializes a set from a sorted, unique member slice, choosing
// the representation per the policy. The slice is adopted when a list is
// chosen, so callers must not reuse it.
func (p Policy) Build(n int32, sortedVerts []int32) Set {
	if p.Adaptive && n > 0 && float64(len(sortedVerts)) >= p.DensityThreshold*float64(n) {
		return NewBitmapSet(n, sortedVerts)
	}
	if p.Compress {
		return NewCompressedSorted(sortedVerts)
	}
	return newListSetSorted(sortedVerts)
}

// BuildScratch materializes a set from an unsorted, unique scratch
// buffer — the sampler's reusable output — choosing the representation
// per the policy. The buffer may be reordered in place but is never
// retained, so callers reuse it across sets; only the list
// representation pays a copy (bitmaps and compressed sets re-encode
// into their own storage). This is the single representation dispatch
// both generation paths go through, so engine pools and Build-made sets
// can never disagree on the policy semantics.
func (p Policy) BuildScratch(n int32, buf []int32) Set {
	if p.Adaptive && n > 0 && float64(len(buf)) >= p.DensityThreshold*float64(n) {
		return NewBitmapSetUnique(n, buf) // needs no order
	}
	slices.Sort(buf)
	if p.Compress {
		return NewCompressedSorted(buf)
	}
	return newListSetSorted(append([]int32(nil), buf...))
}

// BuildArena is BuildScratch with arena-resident list storage: the fused
// kernel's per-worker representation dispatch. List sets — the common
// case — are copied into a's bump-allocated blocks with their headers
// carved from the same arena, eliminating both per-set allocations.
// Bitmap and compressed sets still build private storage (they are the
// rare dense/compressed tail and their encoders own their buffers).
// The buffer may be reordered in place but is never retained. A nil
// arena degrades to BuildScratch. Representation choice is identical to
// BuildScratch, so fused and materialized pools agree set-for-set.
func (p Policy) BuildArena(n int32, buf []int32, a *Arena) Set {
	if a == nil {
		return p.BuildScratch(n, buf)
	}
	if p.Adaptive && n > 0 && float64(len(buf)) >= p.DensityThreshold*float64(n) {
		return NewBitmapSetUnique(n, buf) // needs no order
	}
	slices.Sort(buf)
	if p.Compress {
		return NewCompressedSorted(buf)
	}
	return a.NewSortedList(buf)
}

// Stats summarizes a collection of sets, driving Table I (coverage) and
// the Twitter7 footprint analysis.
type Stats struct {
	Count       int
	TotalSize   int64
	MaxSize     int
	TotalBytes  int64
	Bitmaps     int
	Lists       int
	Compressed  int
	AvgCoverage float64 // mean |set|/n
	MaxCoverage float64 // max |set|/n
}

// Add folds one set into the running totals. Callers that do not hold
// their sets in a flat slice (the sharded pool) accumulate through Add
// and then call Finalize; Summarize composes the two for slices.
func (st *Stats) Add(s Set) {
	sz := s.Size()
	st.Count++
	st.TotalSize += int64(sz)
	if sz > st.MaxSize {
		st.MaxSize = sz
	}
	st.TotalBytes += s.Bytes()
	switch s.Kind() {
	case "bitmap":
		st.Bitmaps++
	case "compressed":
		st.Compressed++
	default:
		st.Lists++
	}
}

// Finalize computes the coverage ratios once every set has been Added.
func (st *Stats) Finalize(n int32) {
	if n > 0 && st.Count > 0 {
		st.AvgCoverage = float64(st.TotalSize) / float64(st.Count) / float64(n)
		st.MaxCoverage = float64(st.MaxSize) / float64(n)
	}
}

// Summarize computes Stats over sets on a graph with n vertices.
func Summarize(n int32, sets []Set) Stats {
	var st Stats
	for _, s := range sets {
		st.Add(s)
	}
	st.Finalize(n)
	return st
}

// FootprintBytes computes the storage needed for a hypothetical workload
// of count sets of meanSize vertices over an n-vertex graph under the
// policy, without materializing anything. This is the analytical model
// behind the Twitter7 OOM row of Table III: Ripples must hold every set
// as a list, while the adaptive policy prices dense sets as bitmaps only
// when cheaper.
func (p Policy) FootprintBytes(n int32, count int64, meanSize float64) int64 {
	listBytes := meanSize * 4
	if !p.Adaptive {
		return int64(listBytes * float64(count))
	}
	bitmapBytes := float64((int64(n) + 63) / 64 * 8)
	if meanSize >= p.DensityThreshold*float64(n) && bitmapBytes < listBytes {
		return int64(bitmapBytes * float64(count))
	}
	return int64(listBytes * float64(count))
}

// String renders the stats for logs.
func (st Stats) String() string {
	return fmt.Sprintf("sets=%d avg|R|=%.1f max|R|=%d avgCov=%.1f%% maxCov=%.1f%% bytes=%d (lists=%d bitmaps=%d compressed=%d)",
		st.Count, float64(st.TotalSize)/float64(max(st.Count, 1)), st.MaxSize,
		st.AvgCoverage*100, st.MaxCoverage*100, st.TotalBytes, st.Lists, st.Bitmaps, st.Compressed)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
