package rrr

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestListSetBasics(t *testing.T) {
	s := NewListSet([]int32{5, 1, 3, 1, 5})
	if s.Size() != 3 {
		t.Fatalf("Size = %d, want 3 after dedup", s.Size())
	}
	for _, v := range []int32{1, 3, 5} {
		if !s.Contains(v) {
			t.Fatalf("missing %d", v)
		}
	}
	for _, v := range []int32{0, 2, 4, 6} {
		if s.Contains(v) {
			t.Fatalf("phantom %d", v)
		}
	}
	if s.Kind() != "list" || s.Bytes() != 12 {
		t.Fatalf("Kind/Bytes = %s/%d", s.Kind(), s.Bytes())
	}
}

func TestListSetOrderedIteration(t *testing.T) {
	s := NewListSet([]int32{9, 2, 7})
	var got []int32
	s.ForEach(func(v int32) { got = append(got, v) })
	if len(got) != 3 || got[0] != 2 || got[1] != 7 || got[2] != 9 {
		t.Fatalf("ForEach order = %v", got)
	}
	vs := s.Vertices([]int32{100})
	if len(vs) != 4 || vs[0] != 100 || vs[1] != 2 {
		t.Fatalf("Vertices = %v", vs)
	}
}

func TestBitmapSetBasics(t *testing.T) {
	s := NewBitmapSet(100, []int32{5, 1, 3, 1})
	if s.Size() != 3 {
		t.Fatalf("Size = %d", s.Size())
	}
	if !s.Contains(1) || s.Contains(2) {
		t.Fatal("membership wrong")
	}
	if s.Kind() != "bitmap" {
		t.Fatal("Kind wrong")
	}
	// 100 bits → 2 words → 16 bytes, independent of occupancy.
	if s.Bytes() != 16 {
		t.Fatalf("Bytes = %d, want 16", s.Bytes())
	}
}

func TestRepresentationsAgreeProperty(t *testing.T) {
	f := func(raw []uint16, probe uint16) bool {
		const n = 1 << 16
		verts := make([]int32, len(raw))
		for i, r := range raw {
			verts[i] = int32(r)
		}
		list := NewListSet(verts)
		bm := NewBitmapSet(n, verts)
		if list.Size() != bm.Size() {
			return false
		}
		if list.Contains(int32(probe)) != bm.Contains(int32(probe)) {
			return false
		}
		a := list.Vertices(nil)
		b := bm.Vertices(nil)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicySwitching(t *testing.T) {
	p := DefaultPolicy()
	const n = 1600
	small := make([]int32, 50) // density 1/32 < 1/16 → list
	for i := range small {
		small[i] = int32(i)
	}
	dense := make([]int32, 200) // density 1/8 > 1/16 → bitmap
	for i := range dense {
		dense[i] = int32(i)
	}
	if got := p.Build(n, small); got.Kind() != "list" {
		t.Fatalf("small set stored as %s", got.Kind())
	}
	if got := p.Build(n, dense); got.Kind() != "bitmap" {
		t.Fatalf("dense set stored as %s", got.Kind())
	}
}

func TestListOnlyPolicyNeverBitmaps(t *testing.T) {
	p := ListOnlyPolicy()
	all := make([]int32, 1000)
	for i := range all {
		all[i] = int32(i)
	}
	if got := p.Build(1000, all); got.Kind() != "list" {
		t.Fatalf("list-only policy produced %s", got.Kind())
	}
}

func TestPolicyBuildAdoptsSortedSlice(t *testing.T) {
	p := ListOnlyPolicy()
	verts := []int32{1, 5, 9}
	s := p.Build(100, verts)
	if !s.Contains(5) || s.Size() != 3 {
		t.Fatal("adopted slice semantics wrong")
	}
}

func TestSummarize(t *testing.T) {
	const n = 100
	sets := []Set{
		NewListSet([]int32{1, 2, 3}),
		NewListSet([]int32{4}),
		NewBitmapSet(n, []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}),
	}
	st := Summarize(n, sets)
	if st.Count != 3 || st.TotalSize != 14 || st.MaxSize != 10 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Lists != 2 || st.Bitmaps != 1 {
		t.Fatalf("kind counts = %+v", st)
	}
	if st.MaxCoverage != 0.1 {
		t.Fatalf("MaxCoverage = %v", st.MaxCoverage)
	}
	wantAvg := 14.0 / 3 / 100
	if diff := st.AvgCoverage - wantAvg; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("AvgCoverage = %v, want %v", st.AvgCoverage, wantAvg)
	}
	if st.String() == "" {
		t.Fatal("String empty")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st := Summarize(100, nil)
	if st.Count != 0 || st.AvgCoverage != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
}

func TestFootprintModelAdaptiveWins(t *testing.T) {
	// Twitter7-scale: 41.6M vertices, dense sets of ~60% coverage.
	const n = int32(41_652_230)
	meanSize := 0.6 * float64(n)
	const count = 10000
	ripples := ListOnlyPolicy().FootprintBytes(n, count, meanSize)
	adaptive := DefaultPolicy().FootprintBytes(n, count, meanSize)
	if adaptive >= ripples {
		t.Fatalf("adaptive footprint %d not below list-only %d", adaptive, ripples)
	}
	// The ratio must approach 32x (4 bytes/member vs 1 bit/vertex at 60%
	// coverage ≈ 19.2x).
	if ratio := float64(ripples) / float64(adaptive); ratio < 10 {
		t.Fatalf("footprint ratio = %v, want > 10", ratio)
	}
}

func TestFootprintModelSparseKeepsLists(t *testing.T) {
	const n = int32(1 << 20)
	sparse := 100.0 // tiny sets
	a := DefaultPolicy().FootprintBytes(n, 1000, sparse)
	l := ListOnlyPolicy().FootprintBytes(n, 1000, sparse)
	if a != l {
		t.Fatalf("sparse adaptive %d != list-only %d", a, l)
	}
}

func TestLargeRandomSetsConsistency(t *testing.T) {
	r := rng.New(7)
	const n = 10000
	verts := make([]int32, 0, 3000)
	for i := 0; i < 3000; i++ {
		verts = append(verts, int32(r.Intn(n)))
	}
	list := NewListSet(verts)
	bm := NewBitmapSet(n, verts)
	sorted := append([]int32(nil), verts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := 0; i < 100; i++ {
		v := int32(r.Intn(n))
		want := false
		for _, s := range sorted {
			if s == v {
				want = true
				break
			}
		}
		if list.Contains(v) != want || bm.Contains(v) != want {
			t.Fatalf("membership of %d wrong", v)
		}
	}
}

func TestCompressedSetBasics(t *testing.T) {
	var _ Set = (*CompressedSet)(nil)
	s := NewCompressedSet([]int32{9, 2, 7, 2})
	if s.Size() != 3 {
		t.Fatalf("Size = %d", s.Size())
	}
	if !s.Contains(7) || s.Contains(5) {
		t.Fatal("membership wrong")
	}
	var got []int32
	s.ForEach(func(v int32) { got = append(got, v) })
	if len(got) != 3 || got[0] != 2 || got[1] != 7 || got[2] != 9 {
		t.Fatalf("ForEach = %v", got)
	}
	if s.Kind() != "compressed" {
		t.Fatalf("Kind = %q", s.Kind())
	}
	vs := s.Vertices([]int32{1})
	if len(vs) != 4 || vs[0] != 1 || vs[1] != 2 {
		t.Fatalf("Vertices = %v", vs)
	}
	if s.Bytes() <= 0 || s.Bytes() >= 12 {
		t.Fatalf("Bytes = %d, want in (0, 12)", s.Bytes())
	}
}

func TestCompressedSetAgreesWithList(t *testing.T) {
	r := rng.NewStream(5, 1)
	const n = 4096
	for trial := 0; trial < 30; trial++ {
		var verts []int32
		seen := map[int32]bool{}
		count := int(r.Uint64()%200) + 1
		for len(verts) < count {
			v := int32(r.Uint64() % n)
			if !seen[v] {
				seen[v] = true
				verts = append(verts, v)
			}
		}
		list := NewListSet(verts)
		cs := NewCompressedSet(verts)
		if list.Size() != cs.Size() {
			t.Fatalf("sizes diverge: %d vs %d", list.Size(), cs.Size())
		}
		for v := int32(0); v < n; v += 7 {
			if list.Contains(v) != cs.Contains(v) {
				t.Fatalf("membership of %d diverges", v)
			}
		}
		lv, cv := list.Vertices(nil), cs.Vertices(nil)
		for i := range lv {
			if lv[i] != cv[i] {
				t.Fatalf("iteration diverges at %d", i)
			}
		}
		if cs.Bytes() > list.Bytes() {
			t.Fatalf("compressed %dB above list %dB for %d members", cs.Bytes(), list.Bytes(), list.Size())
		}
	}
}

func TestCompressedPolicyBuild(t *testing.T) {
	p := CompressedPolicy()
	n := int32(1024)
	sparse := p.Build(n, []int32{1, 5, 9})
	if sparse.Kind() != "compressed" {
		t.Fatalf("sparse kind = %q", sparse.Kind())
	}
	dense := make([]int32, 200)
	for i := range dense {
		dense[i] = int32(i)
	}
	if got := p.Build(n, dense); got.Kind() != "bitmap" {
		t.Fatalf("dense kind = %q, want bitmap under adaptive threshold", got.Kind())
	}
	// Compression without the adaptive switch: everything compressed.
	flat := Policy{Compress: true}
	if got := flat.Build(n, dense); got.Kind() != "compressed" {
		t.Fatalf("non-adaptive compress kind = %q", got.Kind())
	}
}

func TestSummarizeCountsCompressed(t *testing.T) {
	n := int32(256)
	sets := []Set{
		NewListSet([]int32{1, 2}),
		NewCompressedSet([]int32{3, 4, 5}),
		NewBitmapSet(n, []int32{0, 64, 128}),
	}
	st := Summarize(n, sets)
	if st.Lists != 1 || st.Compressed != 1 || st.Bitmaps != 1 {
		t.Fatalf("kind counts wrong: %+v", st)
	}
	if st.TotalSize != 8 {
		t.Fatalf("TotalSize = %d", st.TotalSize)
	}
}
