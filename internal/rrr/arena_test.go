package rrr

import (
	"testing"
)

func TestArenaNewSortedListCopies(t *testing.T) {
	a := NewArena()
	src := []int32{1, 4, 9}
	s := a.NewSortedList(src)
	src[0] = 99 // caller scratch reuse must not leak into the set
	if got := s.Raw(); got[0] != 1 || got[1] != 4 || got[2] != 9 {
		t.Fatalf("arena list aliases caller scratch: %v", got)
	}
	if s.Size() != 3 || !s.Contains(4) || s.Contains(2) {
		t.Fatal("arena-backed list misbehaves as a Set")
	}
}

func TestArenaResetReusesStorage(t *testing.T) {
	a := NewArena()
	first := a.NewSortedList([]int32{10, 20, 30})
	detached := first.Detach()
	grown := a.Bytes()

	a.Reset()
	// The next set lands in the same block the first occupied.
	second := a.NewSortedList([]int32{7, 8, 9})
	if a.Bytes() != grown {
		t.Fatalf("Reset grew the arena: %d -> %d", grown, a.Bytes())
	}
	if raw := first.Raw(); raw[0] != 7 {
		t.Fatalf("expected first set's storage to be overwritten after Reset, got %v", raw)
	}
	if d := detached.Raw(); d[0] != 10 || d[1] != 20 || d[2] != 30 {
		t.Fatalf("Detach()ed copy did not survive arena reuse: %v", d)
	}
	if second.Raw()[2] != 9 {
		t.Fatal("post-reset set corrupt")
	}
}

func TestArenaLargeAllocation(t *testing.T) {
	a := NewArena()
	before := a.NewSortedList([]int32{1, 2}) // occupy a cursor block first
	big := make([]int32, arenaBlockInts+100) // forces the dedicated-block path
	for i := range big {
		big[i] = int32(i)
	}
	s := a.NewSortedList(big)
	after := a.NewSortedList([]int32{5, 6, 7}) // must keep bumping in the old block
	if s.Size() != len(big) || s.Raw()[len(big)-1] != int32(len(big)-1) {
		t.Fatal("dedicated-block list corrupt")
	}
	if before.Raw()[0] != 1 || after.Raw()[0] != 5 {
		t.Fatal("dedicated-block insertion disturbed bump allocation")
	}
	if a.SlackBytes() < 0 || a.Bytes() < int64(4*len(big)) {
		t.Fatalf("accounting wrong: bytes=%d slack=%d", a.Bytes(), a.SlackBytes())
	}
}

func TestBuildArenaMatchesBuildScratch(t *testing.T) {
	const n = 128
	policies := []Policy{
		{Adaptive: false},
		DefaultPolicy(),
		{Adaptive: true, DensityThreshold: 1.0 / 16, Compress: true},
	}
	inputs := [][]int32{
		{3, 1, 2},                          // sparse: list (or compressed)
		{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 10}, // dense enough for adaptive bitmap
	}
	for pi, p := range policies {
		for ii, in := range inputs {
			a := NewArena()
			scratch := p.BuildScratch(n, append([]int32(nil), in...))
			arena := p.BuildArena(n, append([]int32(nil), in...), a)
			nilArena := p.BuildArena(n, append([]int32(nil), in...), nil)
			for _, got := range []Set{arena, nilArena} {
				if got.Kind() != scratch.Kind() {
					t.Fatalf("policy %d input %d: kind %s != scratch kind %s", pi, ii, got.Kind(), scratch.Kind())
				}
				if got.Size() != scratch.Size() {
					t.Fatalf("policy %d input %d: size diverged", pi, ii)
				}
				want := scratch.Vertices(nil)
				have := got.Vertices(nil)
				for i := range want {
					if want[i] != have[i] {
						t.Fatalf("policy %d input %d: members %v != %v", pi, ii, have, want)
					}
				}
			}
		}
	}
}

func TestDetachBreaksAliasing(t *testing.T) {
	s := newListSetSorted([]int32{1, 2, 3})
	d := s.Detach()
	s.verts[0] = 42
	if d.Raw()[0] != 1 {
		t.Fatal("Detach shares backing storage")
	}
}
