package rrr

// Arena is a bump allocator for RRR set storage: vertex payloads and
// ListSet headers are carved out of large blocks instead of being
// allocated per set. The fused generation kernel gives each worker one
// arena, turning the two allocations the materializing path pays per
// list set (the vertex copy and the header) into amortized block
// allocations — the dominant term in the ≥10x allocation reduction on
// the generation path.
//
// Lifetime: sets built from an arena alias its blocks, so the arena must
// outlive every set carved from it. In the engines the arenas hang off
// the generation workers, which live exactly as long as the pool — the
// sets and their storage die together. Reset rewinds the arena for
// reuse (transient pools, tests); after Reset, previously returned sets
// observe overwritten storage, which is the aliasing hazard documented
// on ListSet.Raw and defended against by ListSet.Detach.
//
// An Arena is single-owner: no method is safe for concurrent use.
type Arena struct {
	// blocks hold vertex payloads. blocks[bi][:off] is live; blocks
	// before bi are full. Blocks are never moved or freed (Reset only
	// rewinds the cursor), so carved slices stay valid.
	blocks [][]int32
	bi     int
	off    int

	// hdrs are ListSet header slabs with the same cursor discipline.
	hdrs [][]ListSet
	hbi  int
	hoff int

	vertsLive int64 // vertices handed out since construction/Reset
	hdrsLive  int64 // headers handed out since construction/Reset
}

const (
	// arenaBlockInts sizes vertex blocks (256 KiB). Large enough that
	// block allocation is rare, small enough that a 1-worker run on a
	// tiny graph doesn't strand megabytes.
	arenaBlockInts = 64 << 10
	// arenaHdrCount sizes header slabs.
	arenaHdrCount = 4 << 10
	// listSetHeaderBytes is the accounting size of one ListSet header
	// (a slice header on 64-bit).
	listSetHeaderBytes = 24
)

// NewArena returns an empty arena. Blocks are allocated on demand.
func NewArena() *Arena { return &Arena{} }

// alloc returns a length-n slice of arena storage. Requests larger than
// the block size get a dedicated exact-size block so no space is
// stranded.
func (a *Arena) alloc(n int) []int32 {
	if n > arenaBlockInts {
		// Dedicated block, inserted before the cursor so the current
		// block's free tail stays usable.
		blk := make([]int32, n)
		a.blocks = append(a.blocks, nil)
		copy(a.blocks[a.bi+1:], a.blocks[a.bi:])
		a.blocks[a.bi] = blk
		a.bi++
		a.vertsLive += int64(n)
		return blk
	}
	for {
		if a.bi < len(a.blocks) {
			blk := a.blocks[a.bi]
			if a.off+n <= len(blk) {
				s := blk[a.off : a.off+n : a.off+n]
				a.off += n
				a.vertsLive += int64(n)
				return s
			}
			a.bi++
			a.off = 0
			continue
		}
		a.blocks = append(a.blocks, make([]int32, arenaBlockInts))
	}
}

// newHeader returns a pointer to a fresh ListSet header in arena
// storage.
func (a *Arena) newHeader() *ListSet {
	if a.hbi == len(a.hdrs) {
		a.hdrs = append(a.hdrs, make([]ListSet, arenaHdrCount))
	}
	h := &a.hdrs[a.hbi][a.hoff]
	a.hoff++
	if a.hoff == arenaHdrCount {
		a.hbi++
		a.hoff = 0
	}
	a.hdrsLive++
	return h
}

// NewSortedList copies an already-sorted unique member slice into arena
// storage and returns a ListSet header also living in the arena. The
// returned set is valid until the arena is Reset.
func (a *Arena) NewSortedList(sorted []int32) *ListSet {
	vs := a.alloc(len(sorted))
	copy(vs, sorted)
	h := a.newHeader()
	h.verts = vs
	return h
}

// Reset rewinds the arena, keeping its blocks for reuse. Every set
// previously carved from the arena becomes invalid: its storage will be
// overwritten by subsequent allocations.
func (a *Arena) Reset() {
	a.bi, a.off = 0, 0
	a.hbi, a.hoff = 0, 0
	a.vertsLive, a.hdrsLive = 0, 0
}

// Bytes returns the total capacity the arena holds, live or not.
func (a *Arena) Bytes() int64 {
	var b int64
	for _, blk := range a.blocks {
		b += int64(len(blk)) * 4
	}
	b += int64(len(a.hdrs)) * arenaHdrCount * listSetHeaderBytes
	return b
}

// SlackBytes returns capacity not covered by live sets — the arena's
// contribution to a warm engine's memory overhead beyond what the sets
// themselves account for.
func (a *Arena) SlackBytes() int64 {
	return a.Bytes() - a.vertsLive*4 - a.hdrsLive*listSetHeaderBytes
}
