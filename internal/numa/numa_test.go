package numa

import (
	"sync"
	"testing"

	"repro/internal/memmodel"
)

func mustSystem(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem(PerlmutterLike())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTopologyValidate(t *testing.T) {
	if err := PerlmutterLike().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := PerlmutterLike()
	bad.Sockets = 3 // 8 nodes not divisible by 3
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid topology accepted")
	}
	bad2 := PerlmutterLike()
	bad2.InterSocketRemote = 1
	if err := bad2.Validate(); err == nil {
		t.Fatal("inverted latencies accepted")
	}
}

func TestCoreAndSocketMapping(t *testing.T) {
	topo := PerlmutterLike()
	if topo.TotalCores() != 128 {
		t.Fatalf("TotalCores = %d, want 128", topo.TotalCores())
	}
	if topo.NodeOfCore(0) != 0 || topo.NodeOfCore(15) != 0 || topo.NodeOfCore(16) != 1 || topo.NodeOfCore(127) != 7 {
		t.Fatal("NodeOfCore mapping wrong")
	}
	if topo.SocketOfNode(0) != 0 || topo.SocketOfNode(3) != 0 || topo.SocketOfNode(4) != 1 || topo.SocketOfNode(7) != 1 {
		t.Fatal("SocketOfNode mapping wrong")
	}
}

func TestPlacementPolicies(t *testing.T) {
	s := mustSystem(t)
	sp := memmodel.NewSpace()
	rz := sp.Alloc("zero", 100*memmodel.PageBytes, 1)
	ri := sp.Alloc("inter", 100*memmodel.PageBytes, 1)
	rl := sp.Alloc("local", 100*memmodel.PageBytes, 1)
	s.Place(rz, NodeZero, 0)
	s.Place(ri, Interleave, 0)
	s.Place(rl, Local, 5)

	for p := int64(0); p < 100; p++ {
		if got := s.OwnerOf(rz.Addr(p * memmodel.PageBytes)); got != 0 {
			t.Fatalf("NodeZero page %d owned by %d", p, got)
		}
		if got := s.OwnerOf(rl.Addr(p * memmodel.PageBytes)); got != 5 {
			t.Fatalf("Local page %d owned by %d, want 5", p, got)
		}
	}
	// Interleave must hit all 8 nodes roughly evenly.
	counts := make([]int, 8)
	for p := int64(0); p < 800; p++ {
		counts[s.OwnerOf(ri.Addr(p*memmodel.PageBytes%int64(ri.Bytes())))]++
	}
	for n, c := range counts {
		if c == 0 {
			t.Fatalf("interleave never placed a page on node %d", n)
		}
	}
}

func TestOwnerOfUnregisteredAddr(t *testing.T) {
	s := mustSystem(t)
	if got := s.OwnerOf(123456); got != 0 {
		t.Fatalf("unregistered address owned by %d, want 0", got)
	}
}

func TestLatencyOrdering(t *testing.T) {
	s := mustSystem(t)
	local := s.latency(0, 0) // core 0 on node 0
	intra := s.latency(0, 1) // node 1, same socket
	inter := s.latency(0, 7) // node 7, other socket
	if !(local < intra && intra < inter) {
		t.Fatalf("latency ordering violated: %v %v %v", local, intra, inter)
	}
}

func TestAccessorLocalVsRemoteCost(t *testing.T) {
	s := mustSystem(t)
	sp := memmodel.NewSpace()
	r := sp.Alloc("buf", 10*memmodel.PageBytes, 1)
	s.Place(r, Local, 0)

	localAcc := s.NewAccessor(0)            // core 0 lives on node 0
	remoteAcc := s.NewAccessor(press(7, s)) // a core on node 7
	for i := 0; i < 100; i++ {
		localAcc.Touch(r.Addr(0))
		remoteAcc.Touch(r.Addr(0))
	}
	if localAcc.Cost >= remoteAcc.Cost {
		t.Fatalf("local cost %v not cheaper than remote %v", localAcc.Cost, remoteAcc.Cost)
	}
	if localAcc.LocalFraction() != 1 {
		t.Fatalf("local fraction = %v, want 1", localAcc.LocalFraction())
	}
	if remoteAcc.LocalFraction() != 0 {
		t.Fatalf("remote local fraction = %v, want 0", remoteAcc.LocalFraction())
	}
}

// press returns a core id on the requested node.
func press(node int, s *System) int { return node * s.Topo.CoresPerNode }

func TestContentionPremium(t *testing.T) {
	s := mustSystem(t)
	sp := memmodel.NewSpace()
	hot := sp.Alloc("hot", 64*memmodel.PageBytes, 1)
	spread := sp.Alloc("spread", 64*memmodel.PageBytes, 1)
	s.Place(hot, NodeZero, 0)
	s.Place(spread, Interleave, 0)

	// Both accessors run on node 0; one hammers node 0 only, the other
	// spreads across all nodes. Despite remote latency, the node0-only
	// pattern must end up costlier per access once contention kicks in
	// than a perfectly interleaved pattern is penalized.
	a := s.NewAccessor(0)
	for i := int64(0); i < 64*memmodel.PageBytes; i += 64 {
		a.Touch(hot.Addr(i))
	}
	premium := a.Cost/float64(a.Accesses) - s.Topo.LocalLatency
	if premium <= 0 {
		t.Fatalf("no contention premium for node-0-only traffic (cost/access=%v)", a.Cost/float64(a.Accesses))
	}
}

func TestTouchNMatchesRepeatedTouch(t *testing.T) {
	s := mustSystem(t)
	sp := memmodel.NewSpace()
	r := sp.Alloc("x", 4096, 1)
	s.Place(r, Local, 0)
	a := s.NewAccessor(0)
	b := s.NewAccessor(0)
	for i := 0; i < 50; i++ {
		a.Touch(r.Addr(0))
	}
	b.TouchN(r.Addr(0), 50)
	if a.Accesses != b.Accesses {
		t.Fatalf("access counts differ: %d vs %d", a.Accesses, b.Accesses)
	}
	// Costs use slightly different contention sampling; they must agree
	// within a few percent.
	diff := a.Cost - b.Cost
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.1*a.Cost {
		t.Fatalf("TouchN cost %v too far from repeated Touch %v", b.Cost, a.Cost)
	}
}

func TestFlushAndImbalance(t *testing.T) {
	s := mustSystem(t)
	sp := memmodel.NewSpace()
	r := sp.Alloc("r", 4096, 1)
	s.Place(r, NodeZero, 0)
	a := s.NewAccessor(0)
	for i := 0; i < 100; i++ {
		a.Touch(r.Addr(0))
	}
	a.Flush()
	loads := s.NodeLoads()
	if loads[0] != 100 {
		t.Fatalf("node 0 load = %d, want 100", loads[0])
	}
	// Flushing again without new accesses must not double count.
	a.Flush()
	if got := s.NodeLoads()[0]; got != 100 {
		t.Fatalf("double flush changed load to %d", got)
	}
	if imb := s.LoadImbalance(); imb != 8 {
		t.Fatalf("imbalance = %v, want 8 (all traffic on one of 8 nodes)", imb)
	}
}

func TestConcurrentFlush(t *testing.T) {
	s := mustSystem(t)
	sp := memmodel.NewSpace()
	r := sp.Alloc("r", 4096, 1)
	s.Place(r, NodeZero, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a := s.NewAccessor(w * 16)
			for i := 0; i < 1000; i++ {
				a.Touch(r.Addr(0))
			}
			a.Flush()
		}(w)
	}
	wg.Wait()
	if got := s.NodeLoads()[0]; got != 8000 {
		t.Fatalf("concurrent flush total = %d, want 8000", got)
	}
}

func TestInterleaveReducesImbalanceVsNodeZero(t *testing.T) {
	// The motivating property for Table II: with node-0 placement all
	// traffic lands on one node; interleaving spreads it.
	run := func(policy Policy) float64 {
		s := mustSystem(t)
		sp := memmodel.NewSpace()
		r := sp.Alloc("graph", 1024*memmodel.PageBytes, 1)
		s.Place(r, policy, 0)
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				a := s.NewAccessor(w * 16)
				for i := int64(0); i < 4096; i++ {
					a.Touch(r.Addr((i * 997 * memmodel.PageBytes) % int64(r.Bytes())))
				}
				a.Flush()
			}(w)
		}
		wg.Wait()
		return s.LoadImbalance()
	}
	if zero, inter := run(NodeZero), run(Interleave); inter >= zero {
		t.Fatalf("interleave imbalance %v not better than node-zero %v", inter, zero)
	}
}

func TestCoreOfWorkerScatter(t *testing.T) {
	topo := PerlmutterLike()
	total := topo.Nodes * topo.CoresPerNode
	// Full occupancy is the identity; fewer workers scatter across the
	// core range instead of packing one node.
	if c := topo.CoreOfWorker(total, 5); c != 5 {
		t.Fatalf("full occupancy core = %d, want 5", c)
	}
	seen := map[int]bool{}
	for w := 0; w < 8; w++ {
		c := topo.CoreOfWorker(8, w)
		if c < 0 || c >= total {
			t.Fatalf("worker %d core %d out of range", w, c)
		}
		seen[topo.NodeOfCore(c)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("8 workers landed on %d node(s); scatter expected", len(seen))
	}
}

func TestPinShardsCoversAndBalances(t *testing.T) {
	topo := PerlmutterLike()
	for _, workers := range []int{1, 2, 4, 8, 16, 128} {
		pins := topo.PinShards(16, workers)
		if len(pins) != workers {
			t.Fatalf("w=%d: %d owner slots", workers, len(pins))
		}
		seen := make([]bool, 16)
		maxLoad, minLoad := 0, 16+1
		for _, shards := range pins {
			if len(shards) > maxLoad {
				maxLoad = len(shards)
			}
			if len(shards) < minLoad {
				minLoad = len(shards)
			}
			for _, s := range shards {
				if s < 0 || s >= 16 || seen[s] {
					t.Fatalf("w=%d: shard %d missing or doubly owned", workers, s)
				}
				seen[s] = true
			}
		}
		for s, ok := range seen {
			if !ok {
				t.Fatalf("w=%d: shard %d unowned", workers, s)
			}
		}
		if workers <= 16 && maxLoad-minLoad > 1 {
			t.Fatalf("w=%d: shard load spread %d..%d", workers, minLoad, maxLoad)
		}
	}
}

func TestPinShardsDeterministic(t *testing.T) {
	topo := PerlmutterLike()
	a, b := topo.PinShards(16, 6), topo.PinShards(16, 6)
	for w := range a {
		if len(a[w]) != len(b[w]) {
			t.Fatal("pinning not deterministic")
		}
		for i := range a[w] {
			if a[w][i] != b[w][i] {
				t.Fatal("pinning not deterministic")
			}
		}
	}
}
