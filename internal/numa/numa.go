// Package numa simulates a multi-socket NUMA memory system.
//
// The paper's EfficientIMM relies on numactl/mbind to interleave the
// graph across 8 NUMA nodes and to keep per-worker structures (visited
// bitmaps, RRR set buffers) on the worker's local node. Go offers no
// portable page placement, and this environment has two cores, so the
// NUMA behaviour is reproduced as a cost model instead: pages of a
// logical address space (internal/memmodel) are owned by nodes according
// to a placement policy, and each instrumented access is charged a
// local or remote latency plus a contention premium on the owning node's
// memory controller. The totals drive the Table II reproduction and the
// modeled-runtime scaling curves.
//
// The default latencies follow published EPYC (Zen3) figures: ~90ns local
// DRAM, ~2.1x for a remote same-socket NUMA domain, ~3x across sockets.
// Only the ratios matter for the reproduction.
package numa

import (
	"fmt"
	"sync/atomic"

	"repro/internal/memmodel"
)

// Topology describes the simulated machine.
type Topology struct {
	Nodes        int // NUMA nodes
	CoresPerNode int
	Sockets      int // nodes are split evenly across sockets

	// Access latencies in abstract time units (calibrated as ~ns).
	LocalLatency      float64 // same node
	IntraSocketRemote float64 // different node, same socket
	InterSocketRemote float64 // different socket

	// ContentionWeight scales the queueing premium added per access when
	// many workers hammer the same node's memory controller.
	ContentionWeight float64
}

// PerlmutterLike returns the topology of the paper's evaluation machine:
// dual-socket 64-core EPYC with 4 NUMA domains per socket (8 total,
// 16 cores each).
func PerlmutterLike() Topology {
	return Topology{
		Nodes: 8, CoresPerNode: 16, Sockets: 2,
		LocalLatency: 90, IntraSocketRemote: 190, InterSocketRemote: 280,
		ContentionWeight: 0.35,
	}
}

// Validate reports whether the topology is internally consistent.
func (t Topology) Validate() error {
	if t.Nodes < 1 || t.CoresPerNode < 1 || t.Sockets < 1 {
		return fmt.Errorf("numa: nodes/cores/sockets must be positive")
	}
	if t.Nodes%t.Sockets != 0 {
		return fmt.Errorf("numa: %d nodes not divisible by %d sockets", t.Nodes, t.Sockets)
	}
	if t.LocalLatency <= 0 || t.IntraSocketRemote < t.LocalLatency || t.InterSocketRemote < t.IntraSocketRemote {
		return fmt.Errorf("numa: latencies must satisfy local <= intra-socket <= inter-socket")
	}
	return nil
}

// TotalCores returns the number of cores in the machine.
func (t Topology) TotalCores() int { return t.Nodes * t.CoresPerNode }

// NodeOfCore maps a core id to its NUMA node (cores are numbered
// node-major, as numactl does on the paper's machine).
func (t Topology) NodeOfCore(core int) int {
	return (core / t.CoresPerNode) % t.Nodes
}

// SocketOfNode maps a node to its socket.
func (t Topology) SocketOfNode(node int) int {
	return node / (t.Nodes / t.Sockets)
}

// CoreOfWorker maps worker w of a p-worker pool to the core it is pinned
// to under a scatter placement (srun --cpu-bind=cores with spread
// binding, the paper's launch configuration): workers are spaced evenly
// across the machine's cores, so up to Nodes workers land on distinct
// NUMA nodes before any node hosts two. With p >= TotalCores the
// mapping wraps round-robin.
func (t Topology) CoreOfWorker(workers, w int) int {
	total := t.TotalCores()
	if workers < 1 {
		workers = 1
	}
	if workers >= total {
		return w % total
	}
	return (w % workers) * total / workers
}

// PinShards assigns pool shards to owning workers, the placement the
// fused generation kernel uses for its index-merge stage: each shard has
// exactly one owner (single-writer, so per-shard structures need no
// locking), shards are interleaved across NUMA nodes round-robin —
// matching the pool's Interleave page placement, so shard s's postings
// live on node s mod Nodes — and each shard's owner is the least-loaded
// worker pinned (per CoreOfWorker) to that node. When no worker sits on
// the shard's node (few workers), the globally least-loaded worker owns
// it. Deterministic: ties break toward the lowest worker id. Returns
// one shard list per worker.
func (t Topology) PinShards(shards, workers int) [][]int {
	if workers < 1 {
		workers = 1
	}
	own := make([][]int, workers)
	node := make([]int, workers)
	for w := range node {
		node[w] = t.NodeOfCore(t.CoreOfWorker(workers, w))
	}
	load := make([]int, workers)
	for s := 0; s < shards; s++ {
		target := s % t.Nodes
		best := -1
		for w := 0; w < workers; w++ {
			if node[w] == target && (best < 0 || load[w] < load[best]) {
				best = w
			}
		}
		if best < 0 {
			for w := 0; w < workers; w++ {
				if best < 0 || load[w] < load[best] {
					best = w
				}
			}
		}
		own[best] = append(own[best], s)
		load[best]++
	}
	return own
}

// Policy chooses the owning node of each page of a region.
type Policy int

const (
	// NodeZero places every page on node 0 — the first-touch outcome of
	// the unoptimized baseline, where the loading thread faults all
	// pages in before the parallel region starts.
	NodeZero Policy = iota
	// Interleave round-robins pages across all nodes (numactl
	// --interleave=all), the paper's placement for the shared graph.
	Interleave
	// Local places the whole region on a specific node — the mbind
	// treatment of per-worker bitmaps and RRR buffers.
	Local
)

func (p Policy) String() string {
	switch p {
	case NodeZero:
		return "node0"
	case Interleave:
		return "interleave"
	case Local:
		return "local"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Placement records who owns each page of one region.
type Placement struct {
	region memmodel.Region
	policy Policy
	node   int // for Local
	nodes  int
}

// System couples a topology with region placements and per-node
// contention accounting. Accesses are recorded through Accessor values,
// one per worker, which keep hot counters local and fold into the system
// on Flush.
type System struct {
	Topo       Topology
	placements []Placement
	// nodeLoad counts accesses routed to each node; read by the
	// contention model. Updated in batches by Accessor.Flush.
	nodeLoad []atomic.Int64
}

// NewSystem returns a System for the topology.
func NewSystem(topo Topology) (*System, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	return &System{Topo: topo, nodeLoad: make([]atomic.Int64, topo.Nodes)}, nil
}

// Place registers a region with a placement policy. For Local, node is
// the owning node; other policies ignore it.
func (s *System) Place(r memmodel.Region, policy Policy, node int) {
	if node < 0 || node >= s.Topo.Nodes {
		node = 0
	}
	s.placements = append(s.placements, Placement{region: r, policy: policy, node: node, nodes: s.Topo.Nodes})
}

// OwnerOf returns the node owning the page containing addr. Unregistered
// addresses default to node 0 (first touch by the main goroutine).
func (s *System) OwnerOf(addr uint64) int {
	for _, p := range s.placements {
		if p.region.Contains(addr) {
			switch p.policy {
			case NodeZero:
				return 0
			case Interleave:
				return int(memmodel.PageOf(addr-p.region.Base) % uint64(p.nodes))
			case Local:
				return p.node
			}
		}
	}
	return 0
}

// latency returns the raw (uncontended) cost of core accessing node.
func (s *System) latency(core, node int) float64 {
	myNode := s.Topo.NodeOfCore(core)
	if myNode == node {
		return s.Topo.LocalLatency
	}
	if s.Topo.SocketOfNode(myNode) == s.Topo.SocketOfNode(node) {
		return s.Topo.IntraSocketRemote
	}
	return s.Topo.InterSocketRemote
}

// NodeLoads returns a snapshot of per-node access counts.
func (s *System) NodeLoads() []int64 {
	out := make([]int64, len(s.nodeLoad))
	for i := range s.nodeLoad {
		out[i] = s.nodeLoad[i].Load()
	}
	return out
}

// LoadImbalance returns max/mean of the per-node access counts, the
// headline symptom of node-0-only placement. Returns 0 with no accesses.
func (s *System) LoadImbalance() float64 {
	loads := s.NodeLoads()
	var sum, max int64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(loads))
	return float64(max) / mean
}

// Accessor is the per-worker access recorder. Not safe for concurrent
// use; create one per worker.
type Accessor struct {
	sys  *System
	core int

	// Totals accumulated locally.
	Accesses int64
	Cost     float64 // latency units including contention premium
	local    int64
	remote   int64
	perNode  []int64
	flushed  []int64
}

// NewAccessor returns an accessor for the given core (worker) id.
func (s *System) NewAccessor(core int) *Accessor {
	return &Accessor{
		sys:     s,
		core:    core % s.Topo.TotalCores(),
		perNode: make([]int64, s.Topo.Nodes),
		flushed: make([]int64, s.Topo.Nodes),
	}
}

// Touch records one memory access to addr and returns its modeled cost.
// The contention premium grows with the share of total traffic hitting
// the owning node beyond its fair share: perfectly interleaved traffic
// pays nothing, node-0-only traffic pays ~ContentionWeight*(Nodes-1)
// extra per access.
func (a *Accessor) Touch(addr uint64) float64 {
	node := a.sys.OwnerOf(addr)
	cost := a.sys.latency(a.core, node)
	a.Accesses++
	a.perNode[node]++
	// Contention: compare this worker's traffic share to the fair share.
	share := float64(a.perNode[node]) / float64(a.Accesses)
	fair := 1.0 / float64(a.sys.Topo.Nodes)
	if share > fair {
		cost += a.sys.Topo.LocalLatency * a.sys.Topo.ContentionWeight * (share - fair) / fair
	}
	a.Cost += cost
	if node == a.sys.Topo.NodeOfCore(a.core) {
		a.local++
	} else {
		a.remote++
	}
	return cost
}

// TouchN records n accesses with identical placement (e.g. a streaming
// scan of one region) in O(1).
func (a *Accessor) TouchN(addr uint64, n int64) float64 {
	if n <= 0 {
		return 0
	}
	node := a.sys.OwnerOf(addr)
	cost := a.sys.latency(a.core, node)
	a.Accesses += n
	a.perNode[node] += n
	share := float64(a.perNode[node]) / float64(a.Accesses)
	fair := 1.0 / float64(a.sys.Topo.Nodes)
	if share > fair {
		cost += a.sys.Topo.LocalLatency * a.sys.Topo.ContentionWeight * (share - fair) / fair
	}
	total := cost * float64(n)
	a.Cost += total
	if node == a.sys.Topo.NodeOfCore(a.core) {
		a.local += n
	} else {
		a.remote += n
	}
	return total
}

// LocalFraction returns the fraction of this worker's accesses that were
// node-local.
func (a *Accessor) LocalFraction() float64 {
	if a.Accesses == 0 {
		return 0
	}
	return float64(a.local) / float64(a.Accesses)
}

// Flush folds the accessor's per-node counts (since the previous Flush)
// into the shared system counters. Call at phase boundaries. The local
// counters are preserved so the contention shares stay meaningful across
// the worker's whole lifetime.
func (a *Accessor) Flush() {
	for node, c := range a.perNode {
		if delta := c - a.flushed[node]; delta > 0 {
			a.sys.nodeLoad[node].Add(delta)
			a.flushed[node] = c
		}
	}
}
