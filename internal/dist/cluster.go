package dist

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/ingest"
	"repro/internal/wire"
)

// ClusterConfig places one process in a networked cluster: Rank is its
// position, Peers[i] is the wire address (host:port) where rank i's
// worker listens. Rank 0 is the root — it runs the driver (θ estimation,
// selection, the HTTP front-end) and dials Peers[1:]; every other rank
// listens on Peers[Rank] and serves generation rounds. This is the one
// validated struct the CLIs, the facade, and the library share.
type ClusterConfig struct {
	Rank  int
	Peers []string
}

// Ranks returns the cluster size.
func (c ClusterConfig) Ranks() int { return len(c.Peers) }

// Validate checks the shape: at least one peer, a rank within range, and
// non-empty distinct addresses.
func (c ClusterConfig) Validate() error {
	if len(c.Peers) == 0 {
		return fmt.Errorf("dist: cluster needs at least one peer address")
	}
	if c.Rank < 0 || c.Rank >= len(c.Peers) {
		return fmt.Errorf("dist: rank %d out of range for %d peers", c.Rank, len(c.Peers))
	}
	seen := make(map[string]int, len(c.Peers))
	for i, p := range c.Peers {
		if p == "" {
			return fmt.Errorf("dist: peer %d has an empty address", i)
		}
		if j, dup := seen[p]; dup {
			return fmt.Errorf("dist: peers %d and %d share address %q", j, i, p)
		}
		seen[p] = i
	}
	return nil
}

// ClusterOptions tunes the transport behaviour of a networked cluster.
type ClusterOptions struct {
	// DialTimeout bounds one TCP connect attempt.
	DialTimeout time.Duration
	// FrameTimeout bounds each frame write and each reply read on the
	// root's connections. It must cover a worker's whole generation
	// round, so it is a compute budget, not a network RTT.
	FrameTimeout time.Duration
	// DialRetries is how many times a failed dial or broken exchange is
	// retried (with Backoff doubling between attempts) before the caller
	// falls back to local generation.
	DialRetries int
	// Backoff is the initial retry delay.
	Backoff time.Duration
}

// DefaultClusterOptions returns transport settings suited to LAN and
// loopback clusters.
func DefaultClusterOptions() ClusterOptions {
	return ClusterOptions{
		DialTimeout:  5 * time.Second,
		FrameTimeout: 2 * time.Minute,
		DialRetries:  3,
		Backoff:      100 * time.Millisecond,
	}
}

func (o ClusterOptions) normalized() ClusterOptions {
	def := DefaultClusterOptions()
	if o.DialTimeout <= 0 {
		o.DialTimeout = def.DialTimeout
	}
	if o.FrameTimeout <= 0 {
		o.FrameTimeout = def.FrameTimeout
	}
	if o.DialRetries < 0 {
		o.DialRetries = def.DialRetries
	}
	if o.Backoff <= 0 {
		o.Backoff = def.Backoff
	}
	return o
}

// sharedGraph is a graph the root has serialized for broadcast: its
// content-derived wire name and the snapshot bytes shipped to workers.
type sharedGraph struct {
	name string
	snap []byte
}

// peerConn is the root's connection to one worker rank: a mutex-guarded
// wire.Conn plus the set of graph names already shipped over it, which
// resets when the connection is re-established.
type peerConn struct {
	addr string

	mu      sync.Mutex
	conn    *wire.Conn
	shipped map[string]bool
}

// Cluster is the root side of a networked distributed run: one framed
// TCP connection per non-root rank, a shared bytes-on-the-wire meter,
// and the graph broadcast cache. Methods are safe for concurrent use;
// calls to distinct ranks proceed in parallel (one lock per peer).
type Cluster struct {
	cfg   ClusterConfig
	opt   ClusterOptions
	meter wire.Meter
	peers []*peerConn // index 1..Ranks-1; peers[0] is nil (the root itself)

	// failovers counts remote chunks the serving-path pool generator
	// redid locally (the driver path accounts its own in Comm.Failovers).
	failovers atomic.Int64

	mu     sync.Mutex
	shared map[*graph.Graph]*sharedGraph
}

// Connect establishes the root's connections to every worker rank in
// cfg.Peers[1:], performing the protocol handshake on each. cfg.Rank
// must be 0. A cluster of one rank is valid and holds no connections.
// Workers that are down at Connect time fail the call; workers that die
// later trigger reconnect-with-backoff and, if that fails, per-round
// local failover.
func Connect(cfg ClusterConfig, opt ClusterOptions) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Rank != 0 {
		return nil, fmt.Errorf("dist: Connect is the root's call; rank %d should ServeRank", cfg.Rank)
	}
	c := &Cluster{
		cfg:    cfg,
		opt:    opt.normalized(),
		peers:  make([]*peerConn, len(cfg.Peers)),
		shared: make(map[*graph.Graph]*sharedGraph),
	}
	for r := 1; r < len(cfg.Peers); r++ {
		c.peers[r] = &peerConn{addr: cfg.Peers[r]}
		p := c.peers[r]
		p.mu.Lock()
		err := c.ensureConnLocked(p)
		p.mu.Unlock()
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("dist: rank %d (%s): %w", r, p.addr, err)
		}
	}
	return c, nil
}

// Ranks returns the cluster size, including the root.
func (c *Cluster) Ranks() int { return len(c.cfg.Peers) }

// MeterTotals returns the measured bytes-on-the-wire totals (frame
// headers included) across every peer connection since Connect.
func (c *Cluster) MeterTotals() (bytesSent, bytesReceived, messages int64) {
	return c.meter.Totals()
}

// Failovers returns how many remote chunks the pool generator has redone
// locally after worker failures.
func (c *Cluster) Failovers() int64 { return c.failovers.Load() }

// Close closes every peer connection.
func (c *Cluster) Close() error {
	var first error
	for _, p := range c.peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		if p.conn != nil {
			if err := p.conn.Close(); err != nil && first == nil {
				first = err
			}
			p.conn = nil
		}
		p.mu.Unlock()
	}
	return first
}

// ensureConnLocked dials and handshakes p if it has no live connection.
// Caller holds p.mu.
//
//imlint:locked-by p.mu
func (c *Cluster) ensureConnLocked(p *peerConn) error {
	if p.conn != nil {
		return nil
	}
	backoff := c.opt.Backoff
	var lastErr error
	for attempt := 0; attempt <= c.opt.DialRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		nc, err := net.DialTimeout("tcp", p.addr, c.opt.DialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		conn := wire.NewConn(nc, c.opt.FrameTimeout, &c.meter)
		hello := wire.EncodeHello(wire.Hello{Tag: fmt.Sprintf("root@%s", c.cfg.Peers[0])})
		if _, err := conn.Call(wire.MsgHello, hello, wire.MsgHelloAck); err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		p.conn = conn
		p.shipped = make(map[string]bool)
		return nil
	}
	return fmt.Errorf("dial %s: %w", p.addr, lastErr)
}

// share serializes g once and returns its broadcast identity. The wire
// name is content-derived (hint plus snapshot checksum), so two roots —
// or one root across reconnects — can never alias different graphs under
// one worker-cache key.
func (c *Cluster) share(g *graph.Graph, hint string, seed uint64) (*sharedGraph, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sg, ok := c.shared[g]; ok {
		return sg, nil
	}
	var buf bytes.Buffer
	buf.Grow(int(ingest.SnapshotSize(g)))
	if err := ingest.WriteSnapshot(&buf, g, seed); err != nil {
		return nil, fmt.Errorf("dist: serialize graph for broadcast: %w", err)
	}
	snap := buf.Bytes()
	sum := crc32.Checksum(snap, crc32.MakeTable(crc32.Castagnoli))
	if hint == "" {
		hint = "g"
	}
	sg := &sharedGraph{name: fmt.Sprintf("%s@%08x", hint, sum), snap: snap}
	c.shared[g] = sg
	return sg, nil
}

// callRank performs one request/reply exchange with a worker rank,
// shipping the graph first if this connection has not seen it. A
// transport failure tears the connection down and retries once through a
// fresh dial (with backoff) before giving up — the reconnect path that
// lets a restarted worker rejoin mid-run.
func (c *Cluster) callRank(rank int, sg *sharedGraph, req wire.MsgType, payload []byte, want wire.MsgType) ([]byte, error) {
	if rank <= 0 || rank >= len(c.peers) {
		return nil, fmt.Errorf("dist: no peer connection for rank %d", rank)
	}
	p := c.peers[rank]
	p.mu.Lock()
	defer p.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if err := c.ensureConnLocked(p); err != nil {
			return nil, err
		}
		if sg != nil && !p.shipped[sg.name] {
			if _, err := p.conn.Call(wire.MsgGraph, wire.EncodeGraph(sg.name, sg.snap), wire.MsgGraphAck); err != nil {
				lastErr = err
				if isRemote(err) {
					return nil, err
				}
				p.conn.Close()
				p.conn = nil
				continue
			}
			p.shipped[sg.name] = true
		}
		body, err := p.conn.Call(req, payload, want)
		if err == nil {
			return body, nil
		}
		lastErr = err
		if isRemote(err) {
			// The worker answered in-protocol: the connection is healthy
			// and a retry would fail identically.
			return nil, err
		}
		p.conn.Close()
		p.conn = nil
	}
	return nil, lastErr
}

func isRemote(err error) bool {
	_, ok := err.(*wire.RemoteError)
	return ok
}

// Round asks a worker rank to generate slots [lo, lo+count) of g with
// the given sampling seed and return its chunk; wantCounter additionally
// requests the rank's dense occurrence counter (the allreduce
// contribution — the driver path wants it, the serving path folds
// counts locally and skips the n×8-byte payload).
func (c *Cluster) Round(rank int, g *graph.Graph, hint string, seed uint64, lo, count int64, wantCounter bool) (wire.RoundReply, error) {
	sg, err := c.share(g, hint, seed)
	if err != nil {
		return wire.RoundReply{}, err
	}
	req := wire.EncodeRound(wire.Round{Graph: sg.name, Seed: seed, Lo: lo, Count: count, WantCounter: wantCounter})
	body, err := c.callRank(rank, sg, wire.MsgRound, req, wire.MsgRoundReply)
	if err != nil {
		return wire.RoundReply{}, err
	}
	rep, err := wire.DecodeRoundReply(body)
	if err != nil {
		return wire.RoundReply{}, err
	}
	if int64(len(rep.Sets)) != count {
		return wire.RoundReply{}, fmt.Errorf("dist: rank %d returned %d sets, want %d", rank, len(rep.Sets), count)
	}
	if rep.Counts != nil && int32(len(rep.Counts)) != g.N {
		return wire.RoundReply{}, fmt.Errorf("dist: rank %d counter has %d entries, want %d", rank, len(rep.Counts), g.N)
	}
	return rep, nil
}

// BroadcastSeeds sends a selection result to every connected worker —
// the SeedBroadcast phase on the wire. Best-effort: a dead worker does
// not fail the call (the result is already decided at the root), it just
// reports how many ranks were reached.
func (c *Cluster) BroadcastSeeds(seeds []int32, coverage float64) (reached int) {
	payload := wire.EncodeSeeds(wire.Seeds{Seeds: seeds, Coverage: coverage})
	for r := 1; r < len(c.peers); r++ {
		if _, err := c.callRank(r, nil, wire.MsgSeeds, payload, wire.MsgSeedsAck); err == nil {
			reached++
		}
	}
	return reached
}
